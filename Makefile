# Build/test entry points for the sketchsp reproduction. `make ci` is the
# PR gate: vet, the tier-1 suite, and a race-detector pass over the
# packages that exercise the persistent worker pool.

GO ?= go

.PHONY: ci build test vet race bench bench-json

ci: vet test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The planner/executor worker pool and the solvers that reuse plans are the
# concurrency-sensitive surface; race-check them on every PR. The service
# suite (plan cache, single-flight, eviction/cancellation hammers) runs
# twice so a lucky interleaving on the first pass doesn't mask a race.
race:
	$(GO) test -race ./internal/core/... ./internal/solver/...
	$(GO) test -race -count=2 ./internal/service/...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Scheduler A/B on skewed sparsity; records (benchmark name, ns/op, GFlops,
# measured imbalance ratio) per scheduler into BENCH_PR2.json.
bench-json:
	$(GO) run ./cmd/spmmbench -skew -scale 0.05 -json BENCH_PR2.json
	$(GO) test -run - -bench BenchmarkServiceHit -benchtime 100x .
	$(GO) run ./cmd/spmmbench -serve -scale 0.05 -json BENCH_PR3.json
	$(GO) run ./cmd/spmmbench -serve-http -scale 0.05 -json BENCH_PR4.json
