# Build/test entry points for the sketchsp reproduction. `make ci` is the
# PR gate: vet, the tier-1 suite, and a race-detector pass over the
# packages that exercise the persistent worker pool.

GO ?= go

.PHONY: ci build test vet race bench bench-json fuzz-smoke test-shard-faults

ci: vet test race test-shard-faults fuzz-smoke

build:
	$(GO) build ./...

# -shuffle=on randomises test (and subtest-parent) execution order every
# run, so inter-test state leaks can't hide behind a lucky fixed order.
test: build
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# The planner/executor worker pool and the solvers that reuse plans are the
# concurrency-sensitive surface; race-check them on every PR. The service
# suite (plan cache, single-flight, eviction/cancellation hammers) runs
# twice so a lucky interleaving on the first pass doesn't mask a race. The
# obs registry's scrape-while-incrementing suite and the server's /metrics
# e2e reconcile ride the same gate: metric counters sit on every hot path.
race:
	$(GO) test -race ./internal/core/... ./internal/solver/...
	$(GO) test -race -count=2 ./internal/service/...
	$(GO) test -race ./internal/obs/... ./internal/server/...
	$(GO) test -race ./internal/shard/...
	$(GO) test -race -count=2 ./internal/store/...
	$(GO) test -race -count=2 ./internal/jobs/...

# The coordinator fault suite: hedging (fires/wins/loser-cancelled/
# duplicate-rejected), dynamic membership mid-fan-out, churn under load,
# ring movement properties, and batch fan-out — twice under the race
# detector, because every one of these paths is timer-vs-response
# concurrency and a lucky first interleaving must not green the gate.
test-shard-faults:
	$(GO) test -race -count=2 -run 'TestHedge|TestDuplicate|TestMembership|TestWatchPeers|TestBatch|TestRing' ./internal/shard/

# Short coverage-guided run of the wire fuzzer (v4 frames: solve and
# job-status messages included); the committed corpus seeds always replay,
# this adds a few seconds of mutation on top as a PR smoke.
fuzz-smoke:
	$(GO) test ./internal/wire -run FuzzWireRoundtrip -fuzz FuzzWireRoundtrip -fuzztime 5s

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Scheduler A/B on skewed sparsity; records (benchmark name, ns/op, GFlops,
# measured imbalance ratio) per scheduler into BENCH_PR2.json. The PR5
# record repeats the HTTP replay with -scrape, folding the /metrics series
# (cache traffic, shed, stage latency sums) into the JSON. The PR6 record
# replays the same mix through a shard coordinator over 1/2/4 loopback
# sketchd worker processes and writes the scaling curve. The PR8 record is
# the content-addressed A/B: repeat sketches of one ~2 MB matrix inline vs
# by fingerprint, plus the incremental ΔA patch, with bit-identity checks.
# The PR9 record is the solve-surface A/B: direct SAP-QR vs served cold vs
# served warm preconditioner cache, plus an async job round-trip.
bench-json:
	$(GO) run ./cmd/spmmbench -skew -scale 0.05 -json BENCH_PR2.json
	$(GO) test -run - -bench BenchmarkServiceHit -benchtime 100x .
	$(GO) run ./cmd/spmmbench -serve -scale 0.05 -json BENCH_PR3.json
	$(GO) run ./cmd/spmmbench -serve-http -scale 0.05 -json BENCH_PR4.json
	$(GO) run ./cmd/spmmbench -serve-http -scrape -scale 0.05 -json BENCH_PR5.json
	$(GO) run ./cmd/spmmbench -serve-shard -json BENCH_PR6.json
	$(GO) run ./cmd/spmmbench -skew -scale 0.05 -json BENCH_PR7.json
	$(GO) run ./cmd/spmmbench -byref -requests 200 -json BENCH_PR8.json
	$(GO) run ./cmd/spmmbench -serve-solve -json BENCH_PR9.json
	$(GO) run ./cmd/spmmbench -serve-shard-faults -json BENCH_PR10.json
