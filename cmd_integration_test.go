package sketchsp_test

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"sketchsp"
)

// runCmd builds and runs one of the repo's commands with `go run`.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestSpmmbenchTable1Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := runCmd(t, "./cmd/spmmbench", "-table", "1", "-scale", "0.01")
	for _, want := range []string{"TABLE I", "mk-12", "mesh_deform", "cis-n4c6-b4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpmmbenchFig5Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	out := runCmd(t, "./cmd/spmmbench", "-fig", "5", "-scale", "0.01", "-spydir", dir)
	if !strings.Contains(out, "FIGURE 5") {
		t.Fatalf("missing figure header:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 3 {
		t.Fatalf("expected 3 PGM files, got %d (%v)", len(entries), err)
	}
}

func TestLsqbenchTable8Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := runCmd(t, "./cmd/lsqbench", "-table", "8", "-scale", "0.01")
	for _, want := range []string{"TABLE VIII", "rail2586", "landmark"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalysisbenchModelIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := runCmd(t, "./cmd/analysisbench")
	for _, want := range []string{"roofline model", "Eq.(5)", "sqrt(M) headline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSketchCLIIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	in := dir + "/a.mtx"
	outPath := dir + "/ahat.mtx"
	a := sketchsp.RandomUniform(300, 25, 0.1, 5)
	if err := sketchsp.WriteMatrixMarketFile(in, a); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "./cmd/sketch", "-gamma", "3", "-dist", "pm1", "-seed", "9", in, outPath)
	if !strings.Contains(out, "sketched 300x25") {
		t.Fatalf("unexpected CLI output: %s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "%%MatrixMarket matrix array real general\n75 25\n") {
		t.Fatalf("bad sketch file header: %.60s", data)
	}
	// Determinism end to end: the CLI must agree with the library.
	ahat, _, err := sketchsp.Sketch(a, 75, sketchsp.SketchOptions{
		Dist: sketchsp.Rademacher, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2+75*25 {
		t.Fatalf("sketch file has %d lines", len(lines))
	}
	first := strings.TrimSpace(lines[2])
	want := ahat.At(0, 0)
	var got float64
	if _, err := fmt.Sscan(first, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CLI sketch[0,0] = %v, library says %v", got, want)
	}
}
