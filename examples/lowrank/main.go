// Low-rank approximation example: the other headline application of the
// paper's primitive (§I lists "low-rank approximation, matrix
// decomposition" alongside regression). A randomized SVD needs a sample
// matrix Y = A·Ω for a random Ω — which is exactly a sketch of Aᵀ, so the
// on-the-fly engine provides the range finder without ever storing Ω.
// Leverage scores (the pylspack statistic) come from the same machinery.
//
// Run with:
//
//	go run ./examples/lowrank
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sketchsp"
)

func main() {
	// A matrix that is sparse AND genuinely near rank 5: every row is a
	// noisy scale of one of five sparse prototype rows. (Masking a dense
	// low-rank matrix would NOT work — a random mask is itself full rank.)
	m, n, rank := 30000, 400, 5
	r := rand.New(rand.NewSource(2))
	protos := make([][]int, rank)
	pvals := make([][]float64, rank)
	for t := 0; t < rank; t++ {
		for len(protos[t]) < 12 {
			protos[t] = append(protos[t], r.Intn(n))
			pvals[t] = append(pvals[t], 1+r.NormFloat64())
		}
	}
	coo := sketchsp.NewCOO(m, n, m*12)
	for i := 0; i < m; i++ {
		t := i % rank
		scale := math.Pow(2.5, float64(rank-t)) * (1 + 0.05*r.NormFloat64())
		for k, j := range protos[t] {
			coo.Append(i, j, scale*pvals[t][k])
		}
	}
	a := coo.ToCSC()
	fmt.Printf("A: %d x %d, nnz = %d, planted rank ≈ %d\n", a.M, a.N, a.NNZ(), rank)

	res, err := sketchsp.RandSVD(a, rank, 8, 2, sketchsp.SketchOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("randomized SVD: %v total (sketch %v)\n", res.Total, res.SketchTime)
	fmt.Printf("top singular values: ")
	for _, s := range res.Sigma {
		fmt.Printf("%.3g ", s)
	}
	fmt.Println()

	// Residual check: relative error on sampled columns.
	var num, den float64
	y := make([]float64, a.M)
	for _, j := range []int{0, n / 3, n / 2, n - 1} {
		e := make([]float64, a.N)
		e[j] = 1
		a.MulVec(e, y) // column j of A
		w := make([]float64, len(res.Sigma))
		for t := range w {
			w[t] = res.Sigma[t] * res.V.At(j, t)
		}
		for i := 0; i < a.M; i++ {
			var approx float64
			for t := range w {
				approx += res.U.At(i, t) * w[t]
			}
			d := y[i] - approx
			num += d * d
			den += y[i] * y[i]
		}
	}
	fmt.Printf("sampled relative residual: %.2e (rank-5 structure captured)\n", math.Sqrt(num/den))

	// Leverage scores need a full-column-rank matrix (the exactly-rank-5
	// demo matrix has none); use an interval-cover matrix where a handful
	// of rows carry unusually long support and should dominate.
	lcoo := sketchsp.NewCOO(20000, 200, 20000*6)
	for i := 0; i < 20000; i++ {
		l := 1 + int(5*r.ExpFloat64())
		if i%4000 == 0 {
			l = 150 // planted high-leverage rows
		}
		if l > 200 {
			l = 200
		}
		start := r.Intn(200 - l + 1)
		for j := start; j < start+l; j++ {
			lcoo.Append(i, j, 1+0.1*r.NormFloat64())
		}
	}
	la := lcoo.ToCSC()
	scores, err := sketchsp.LeverageScores(la, 128, sketchsp.SolveOptions{Gamma: 4})
	if err != nil {
		log.Fatal(err)
	}
	var sum, maxS float64
	arg := 0
	for i, s := range scores {
		sum += s
		if s > maxS {
			maxS, arg = s, i
		}
	}
	fmt.Printf("leverage scores on a %dx%d cover matrix: Σ = %.1f (≈ n = %d)\n",
		la.M, la.N, sum, la.N)
	fmt.Printf("max score %.3g at row %d (planted high-leverage rows sit at multiples of 4000)\n", maxS, arg)
}
