// Underdetermined example: the paper's footnote-2 case. For a wide,
// full-row-rank A (more unknowns than equations), the problem of interest
// is the minimum-norm solution of the consistent system A·x = b. The same
// sketch-and-precondition machinery applies after transposing the roles:
// sketch Aᵀ (which is tall), factor the sketch, and run LSQR on the
// left-preconditioned system — O(1) iterations regardless of how
// ill-conditioned A·Aᵀ is.
//
// Run with:
//
//	go run ./examples/underdetermined
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sketchsp"
)

func main() {
	// A wide system: 200 equations, 40000 unknowns, built as the
	// transpose of an interval matrix so AAᵀ is genuinely
	// ill-conditioned.
	coo := sketchsp.NewCOO(40000, 200, 40000*12)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40000; i++ {
		l := 1 + int(10*r.ExpFloat64())
		if l > 200 {
			l = 200
		}
		start := r.Intn(200 - l + 1)
		for j := start; j < start+l; j++ {
			coo.Append(i, j, 1)
		}
	}
	a := coo.ToCSC().Transpose() // 200 × 40000
	fmt.Printf("A: %d x %d (wide), nnz = %d\n", a.M, a.N, a.NNZ())

	// Any b is consistent for a full-row-rank wide A.
	b := make([]float64, a.M)
	for i := range b {
		b[i] = r.NormFloat64()
	}

	x, info, err := sketchsp.SolveMinNorm(a, b, sketchsp.SolveOptions{Gamma: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-norm solve: %v total (sketch %v, factor %v, LSQR %v), %d iterations\n",
		info.Total, info.SketchTime, info.FactorTime, info.IterTime, info.Iters)

	// Verify feasibility ‖Ax − b‖ and report ‖x‖.
	ax := make([]float64, a.M)
	a.MulVec(x, ax)
	var res, xn float64
	for i := range ax {
		d := ax[i] - b[i]
		res += d * d
	}
	for _, v := range x {
		xn += v * v
	}
	fmt.Printf("‖Ax − b‖ = %.2e   ‖x‖ = %.4f\n", math.Sqrt(res), math.Sqrt(xn))
	// Minimality check: perturb x along an exact null-space direction
	// (e minus the min-norm solution of A·y = A·e) — feasibility is
	// preserved while the norm can only grow.
	e := make([]float64, a.N)
	for i := range e {
		e[i] = r.NormFloat64() * 0.01
	}
	ae := make([]float64, a.M)
	a.MulVec(e, ae)
	y, _, err := sketchsp.SolveMinNorm(a, ae, sketchsp.SolveOptions{Gamma: 2})
	if err != nil {
		log.Fatal(err)
	}
	x2 := append([]float64(nil), x...)
	for i := range x2 {
		x2[i] += e[i] - y[i] // null-space component of e
	}
	ax2 := make([]float64, a.M)
	a.MulVec(x2, ax2)
	var res2, xn2 float64
	for i := range ax2 {
		d := ax2[i] - b[i]
		res2 += d * d
	}
	for _, v := range x2 {
		xn2 += v * v
	}
	fmt.Printf("\nnull-space perturbed: ‖Ax − b‖ = %.2e (still feasible)   ‖x‖ = %.4f (> %.4f)\n",
		math.Sqrt(res2), math.Sqrt(xn2), math.Sqrt(xn))
}
