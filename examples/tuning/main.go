// Tuning example: how kernel choice and block sizes interact with the
// sparsity pattern — the Table VI story. Algorithm 3 (kji over CSC) is
// oblivious to the pattern; Algorithm 4 (jki over blocked CSR) regenerates
// far fewer random numbers but its access pattern tracks the matrix
// structure, so it wins on row-concentrated patterns and loses on
// column-concentrated ones. The example also sweeps b_n to show the
// generation-count trade-off of §III-B.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"sketchsp"
)

func sketchTime(a *sketchsp.CSC, d int, opts sketchsp.SketchOptions) (time.Duration, sketchsp.SketchStats) {
	sk, err := sketchsp.NewSketcher(d, opts)
	if err != nil {
		log.Fatal(err)
	}
	ahat := sketchsp.NewDense(d, a.N)
	best := time.Duration(1<<63 - 1)
	var bestStats sketchsp.SketchStats
	for trial := 0; trial < 3; trial++ {
		st := sk.SketchInto(ahat, a)
		if st.Total < best {
			best = st.Total
			bestStats = st
		}
	}
	return best, bestStats
}

func main() {
	m, n := 20000, 1000
	d := 3 * n

	patterns := []struct {
		name  string
		build func() *sketchsp.CSC
	}{
		{"dense-rows (Abnormal_A-like)", func() *sketchsp.CSC {
			// every 200th row dense → Alg4 reuses one generation per
			// dense row across n columns.
			coo := sketchsp.NewCOO(m, n, (m/400+1)*n)
			for i := 0; i < m; i += 200 {
				for j := 0; j < n; j++ {
					coo.Append(i, j, 0.5)
				}
			}
			return coo.ToCSC()
		}},
		{"uniform", func() *sketchsp.CSC {
			return sketchsp.RandomUniform(m, n, 5e-3, 1)
		}},
		{"dense-columns (Abnormal_C-like)", func() *sketchsp.CSC {
			// every 40th column dense → every row nonempty in every
			// slab: Alg4 regenerates constantly and scatters.
			coo := sketchsp.NewCOO(m, n, (n/40+1)*m)
			for j := 0; j < n; j += 40 {
				for i := 0; i < m; i++ {
					coo.Append(i, j, 0.5)
				}
			}
			return coo.ToCSC()
		}},
	}

	fmt.Println("kernel choice vs sparsity pattern (times in seconds, uniform (-1,1) entries as in Table VI):")
	for _, p := range patterns {
		a := p.build()
		t3, s3 := sketchTime(a, d, sketchsp.SketchOptions{
			Algorithm: sketchsp.Alg3, Dist: sketchsp.Uniform11, Seed: 1, Workers: 1})
		t4, s4 := sketchTime(a, d, sketchsp.SketchOptions{
			Algorithm: sketchsp.Alg4, Dist: sketchsp.Uniform11, Seed: 1, Workers: 1})
		fmt.Printf("  %-32s nnz=%-9d alg3 %8.4fs (%9d samples)   alg4 %8.4fs (%9d samples)\n",
			p.name, a.NNZ(), t3.Seconds(), s3.Samples, t4.Seconds(), s4.Samples)
	}

	fmt.Println("\nblock-width sweep on the uniform matrix (Algorithm 4):")
	fmt.Println("wider slabs → fewer regenerations (each nonempty row per slab costs one")
	fmt.Println("column of S), but worse locality in Â; §III-B's b_n trade-off:")
	a := sketchsp.RandomUniform(m, n, 5e-3, 1)
	for _, bn := range []int{50, 200, 800, 1000} {
		t4, st := sketchTime(a, d, sketchsp.SketchOptions{
			Algorithm: sketchsp.Alg4, Dist: sketchsp.Uniform11, Seed: 1, Workers: 1, BlockN: bn})
		fmt.Printf("  b_n = %-5d  %8.4fs   %12d samples  (convert %v)\n",
			bn, t4.Seconds(), st.Samples, st.ConvertTime)
	}
}
