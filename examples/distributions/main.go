// Distributions example: the Figure 4 story. The sketching operation is
// identical up to the distribution of S's entries, but the cost of
// producing those entries ranges over an order of magnitude: ±1 needs one
// random bit per entry, the scaling trick reuses the base generator's raw
// 32-bit integers, uniform (-1,1) needs a conversion per entry, and
// Gaussians need the polar transform (several uniforms plus a log and a
// sqrt). Pre-generating S turns all of that into memory traffic instead —
// which is exactly what blocking + recomputation is designed to avoid.
//
// Run with:
//
//	go run ./examples/distributions
package main

import (
	"fmt"
	"log"
	"time"

	"sketchsp"
)

func main() {
	a := sketchsp.RandomUniform(60000, 2000, 2e-3, 9)
	d := 3 * a.N
	flops := 2 * float64(d) * float64(a.NNZ())
	fmt.Printf("A: %dx%d nnz=%d, d=%d (%.2f Gflop per sketch)\n\n",
		a.M, a.N, a.NNZ(), d, flops/1e9)

	dists := []struct {
		name string
		dist sketchsp.Distribution
	}{
		{"±1 (one bit per entry)", sketchsp.Rademacher},
		{"scaling trick (raw int32)", sketchsp.ScaledInt},
		{"uniform (-1,1)", sketchsp.Uniform11},
		{"gaussian (polar method)", sketchsp.Gaussian},
	}
	fmt.Println("on-the-fly generation, Algorithm 4:")
	var base float64
	for _, dc := range dists {
		sk, err := sketchsp.NewSketcher(d, sketchsp.SketchOptions{
			Algorithm: sketchsp.Alg4, Dist: dc.dist, Seed: 3, Workers: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		ahat := sketchsp.NewDense(d, a.N)
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			if st := sk.SketchInto(ahat, a); st.Total < best {
				best = st.Total
			}
		}
		gf := flops / best.Seconds() / 1e9
		if base == 0 {
			base = best.Seconds()
		}
		fmt.Printf("  %-28s %8.4fs  %6.2f GF/s  (%.2fx the ±1 time)\n",
			dc.name, best.Seconds(), gf, best.Seconds()/base)
	}

	// The same sketches are statistically interchangeable: check the
	// effective distortion each achieves for range(A) on a small problem.
	small := sketchsp.RandomUniform(5000, 100, 5e-3, 4)
	fmt.Println("\nsketch quality (effective distortion for range(A), gamma=3 — theory 0.577):")
	for _, dc := range dists {
		dd, err := sketchsp.EffectiveDistortion(small, 3*small.N, sketchsp.SketchOptions{
			Dist: dc.dist, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %.3f\n", dc.name, dd)
	}
	fmt.Println("\ncheaper distributions do not degrade the sketch — which is why the")
	fmt.Println("paper defaults to ±1 and uniform rather than Gaussian entries.")
}
