// Quickstart: sketch a tall sparse matrix without ever materialising the
// random matrix S, verify the result against an explicit product on a small
// instance, and check the sketch's geometric quality (effective distortion).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sketchsp"
)

func main() {
	// A tall sparse matrix: 100000×800 with ~0.2% of entries set.
	a := sketchsp.RandomUniform(100000, 800, 2e-3, 42)
	fmt.Printf("A: %d x %d, nnz = %d (density %.2e)\n", a.M, a.N, a.NNZ(), a.Density())

	// Sketch size d = 3n, entries of S drawn uniformly from {+1, -1}
	// (the cheapest distribution; see the paper's Table II).
	d := 3 * a.N
	ahat, stats, err := sketchsp.Sketch(a, d, sketchsp.SketchOptions{
		Dist: sketchsp.Rademacher,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Â = S·A: %d x %d in %v (%.2f GF/s)\n",
		ahat.Rows, ahat.Cols, stats.Total, stats.GFlops())
	fmt.Printf("generated %d random values on the fly — S itself (%d x %d ≈ %.1f GB dense) was never stored\n",
		stats.Samples, d, a.M, float64(d)*float64(a.M)*8/1e9)

	// Reproducibility: the same seed gives bitwise the same sketch, with
	// any worker count and either compute kernel.
	ahat4, _, err := sketchsp.Sketch(a, d, sketchsp.SketchOptions{
		Dist:      sketchsp.Rademacher,
		Seed:      7,
		Algorithm: sketchsp.Alg4,
		Workers:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 4, 4 workers reproduces Algorithm 3's sketch exactly: %v\n",
		ahat.MaxAbsDiff(ahat4) == 0)

	// Sketch quality: effective distortion for range(A) should be near
	// 1/sqrt(gamma) = 1/sqrt(3) ≈ 0.577 (computed on a smaller instance,
	// since certification factors A itself).
	small := sketchsp.RandomUniform(4000, 120, 5e-3, 1)
	dd, err := sketchsp.EffectiveDistortion(small, 3*small.N, sketchsp.SketchOptions{
		Dist: sketchsp.Rademacher, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effective distortion of a gamma=3 sketch: %.3f (theory: 1/sqrt(3) = 0.577)\n", dd)
}
