// Least-squares example: the paper's §V-C pipeline end to end. Builds an
// ill-conditioned, strongly overdetermined sparse problem whose conditioning
// survives column equilibration (the rail-matrix regime), then solves it
// with all three methods the paper compares — sketch-and-precondition
// (SAP-QR), LSQR with a diagonal preconditioner, and a direct sparse QR —
// reporting time, iterations, workspace memory, and the backward-error
// metric of Table X.
//
// Run with:
//
//	go run ./examples/leastsquares
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sketchsp"
)

func main() {
	// Interval set-cover structure (the rail shape): conditioning grows
	// with n and a diagonal preconditioner cannot remove it.
	m, n := 60000, 150
	coo := sketchsp.NewCOO(m, n, m*10)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < m; i++ {
		l := 1 + int(8*r.ExpFloat64())
		if l > n {
			l = n
		}
		start := r.Intn(n - l + 1)
		for j := start; j < start+l; j++ {
			coo.Append(i, j, 1)
		}
	}
	a := coo.ToCSC()

	// b = A·x_true + noise, so the residual is genuinely nonzero.
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(xTrue, b)
	for i := range b {
		b[i] += 0.1 * r.NormFloat64()
	}
	fmt.Printf("problem: %d x %d, nnz = %d\n\n", a.M, a.N, a.NNZ())

	opts := sketchsp.SolveOptions{Gamma: 2} // d = 2n sketch, as in the paper
	for _, method := range []sketchsp.Method{sketchsp.SAPQR, sketchsp.LSQRD, sketchsp.Direct} {
		x, info, err := sketchsp.SolveLeastSquares(method, a, b, opts)
		if err != nil {
			log.Fatalf("%v: %v", method, err)
		}
		fmt.Printf("%-24v total %-12v iters %-5d workspace %8.2f MB   error metric %.2e\n",
			method, info.Total, info.Iters,
			float64(info.MemoryBytes)/1e6, sketchsp.LeastSquaresError(a, x, b))
		if method == sketchsp.SAPQR {
			fmt.Printf("%24s   (sketch %v, factor %v, LSQR %v)\n", "",
				info.SketchTime, info.FactorTime, info.IterTime)
		}
	}
	fmt.Println("\nthe SAP pattern to look for: few iterations regardless of conditioning,")
	fmt.Println("workspace ≈ a (gamma+1)·n × n dense matrix, far below the direct factors.")
}
