// Command lsqbench regenerates the paper's least-squares evaluation:
// Tables VIII–XI and Figure 6. The seven Table VIII matrices are synthetic
// stand-ins matched to the published dimensions, sparsity and conditioning
// regimes (see DESIGN.md §1); the reproduction targets are the qualitative
// relationships — SAP's flat iteration counts, its speedups over LSQR-D and
// the direct solver on highly overdetermined problems, the accuracy parity
// of Table X, and the workspace-memory ordering of Table XI.
//
// Usage:
//
//	lsqbench -all
//	lsqbench -table 9 -scale 0.02
//	lsqbench -fig 6
package main

import (
	"flag"
	"fmt"
	"os"

	"sketchsp/internal/bench"
	"sketchsp/internal/core"
	"sketchsp/internal/linalg"
	"sketchsp/internal/plot"
	"sketchsp/internal/rng"
	"sketchsp/internal/solver"
)

var (
	scale   = flag.Float64("scale", 0.05, "linear matrix scale (1 = paper size; the direct solver and SVD dominate cost as this grows)")
	seed    = flag.Int64("seed", 1, "workload generation seed")
	table   = flag.Int("table", 0, "regenerate one table (8–11)")
	fig     = flag.Int("fig", 0, "regenerate one figure (6)")
	all     = flag.Bool("all", false, "run every table and figure")
	workers = flag.Int("workers", 0, "sketching workers (0 = GOMAXPROCS; paper used 32 threads)")
	gamma   = flag.Float64("gamma", 2, "sketch size factor d = gamma*n (paper: 2)")
	figDir  = flag.String("figdir", "", "also write Figure 6 as an SVG chart into this directory")
	csvOut  = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
)

// result caches one solver run for reuse across tables.
type result struct {
	x    []float64
	info solver.Info
	err  error
}

type row struct {
	w       bench.LSWorkload
	lsqrd   result
	sap     result
	direct  result
	sapName string
}

func main() {
	flag.Parse()
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *all || *table == 8 {
		table8()
	}
	needRows := *all || *table == 9 || *table == 10 || *table == 11 || *fig == 6
	if !needRows {
		return
	}
	rows := solveAll()
	if *all || *table == 9 {
		table9(rows)
	}
	if *all || *table == 10 {
		table10(rows)
	}
	if *all || *table == 11 {
		table11(rows)
	}
	if *all || *fig == 6 {
		fig6(rows)
	}
}

func table8() {
	t := bench.NewTable(fmt.Sprintf(
		"TABLE VIII — least-squares test data (stand-ins at scale %g; paper size/nnz/cond in parentheses)", *scale),
		"A", "m", "n", "nnz(A)", "cond est", "mem(A) MB", "density", "paper (m, n, nnz, cond)")
	for _, w := range bench.LSWorkloads(*scale, *seed) {
		cond := linalg.CondEstimate(w.A)
		sp := w.Spec
		t.AddRow(w.Name, w.A.M, w.A.N, w.A.NNZ(),
			fmt.Sprintf("%.3g", cond),
			float64(w.A.MemoryBytes())/1e6,
			fmt.Sprintf("%.2e", w.A.Density()),
			fmt.Sprintf("(%d, %d, %d, %.3g)", sp.M, sp.N, sp.NNZ, sp.Cond))
	}
	emit(t)
}

func solveAll() []row {
	opts := solver.Options{
		Gamma: *gamma,
		Sketch: core.Options{
			Seed: uint64(*seed), Workers: *workers, Dist: rng.Uniform11,
		},
	}
	var rows []row
	for _, w := range bench.LSWorkloads(*scale, *seed) {
		r := row{w: w, sapName: "SAP-QR"}
		var x []float64
		var info solver.Info
		var err error
		if w.UseSVD {
			r.sapName = "SAP-SVD"
			x, info, err = solver.SolveSAPSVD(w.A, w.B, opts)
		} else {
			x, info, err = solver.SolveSAPQR(w.A, w.B, opts)
		}
		r.sap = result{x, info, err}
		x, info, err = solver.SolveLSQRD(w.A, w.B, opts)
		r.lsqrd = result{x, info, err}
		x, info, err = solver.SolveDirect(w.A, w.B, opts)
		r.direct = result{x, info, err}
		rows = append(rows, r)
	}
	return rows
}

func table9(rows []row) {
	t := bench.NewTable("TABLE IX — runtime and iteration counts",
		"A", "LSQR-D time", "LSQR-D iter", "method", "sketch(s)", "SAP time", "SAP iter", "Direct time")
	for _, r := range rows {
		t.AddRow(r.w.Name,
			r.lsqrd.info.Total, r.lsqrd.info.Iters,
			r.sapName, r.sap.info.SketchTime, r.sap.info.Total, r.sap.info.Iters,
			r.direct.info.Total)
		reportErr(r)
	}
	emit(t)
}

func table10(rows []row) {
	t := bench.NewTable("TABLE X — numerical error ‖Aᵀ(Ax−b)‖/(‖A‖_F·‖Ax−b‖)",
		"A", "LSQR-D", "SAP", "Direct")
	for _, r := range rows {
		em := func(res result) string {
			if res.err != nil {
				return "err"
			}
			return fmt.Sprintf("%.2e", solver.ErrorMetric(r.w.A, res.x, r.w.B))
		}
		t.AddRow(r.w.Name, em(r.lsqrd), em(r.sap), em(r.direct))
	}
	emit(t)
}

func table11(rows []row) {
	t := bench.NewTable("TABLE XI — workspace memory (MB)",
		"A", "SAP", "Direct (SuiteSparse-like)", "mem(A)")
	for _, r := range rows {
		t.AddRow(r.w.Name,
			float64(r.sap.info.MemoryBytes)/1e6,
			float64(r.direct.info.MemoryBytes)/1e6,
			float64(r.w.A.MemoryBytes())/1e6)
	}
	emit(t)
}

func fig6(rows []row) {
	t := bench.NewTable("FIGURE 6 — speedups over SAP: t(LSQR-D)/t(SAP) and t(Direct)/t(SAP)",
		"A", "LSQR-D / SAP", "Direct / SAP")
	var labels []string
	var g1, g2 []float64
	for _, r := range rows {
		sap := r.sap.info.Total.Seconds()
		if sap == 0 {
			continue
		}
		v1 := r.lsqrd.info.Total.Seconds() / sap
		v2 := r.direct.info.Total.Seconds() / sap
		t.AddRow(r.w.Name, v1, v2)
		labels = append(labels, r.w.Name)
		g1 = append(g1, v1)
		g2 = append(g2, v2)
	}
	emit(t)
	if *figDir != "" && len(labels) > 0 {
		path := *figDir + "/fig6.svg"
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsqbench:", err)
			return
		}
		bars := plot.Bars{
			Title:   "Figure 6 — speedup of SAP over LSQR-D and the direct solver",
			YLabel:  "time ratio (vs SAP)",
			Labels:  labels,
			RefLine: 1,
			Groups: []plot.Series{
				{Name: "LSQR-D / SAP", Y: g1},
				{Name: "Direct / SAP", Y: g2},
			},
		}
		if err := bars.WriteSVG(f); err != nil {
			fmt.Fprintln(os.Stderr, "lsqbench:", err)
		}
		f.Close()
		fmt.Printf("(wrote %s)\n", path)
	}
}

// emit prints a table in the selected format.
func emit(t *bench.Table) {
	if *csvOut {
		fmt.Println("# " + t.Title)
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}

func reportErr(r row) {
	for _, res := range []result{r.lsqrd, r.sap, r.direct} {
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "lsqbench: %s: %v\n", r.w.Name, res.err)
		}
	}
}
