package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/obs"
	"sketchsp/internal/server"
	"sketchsp/internal/service"
)

// The -serve-http mode replays the same skew-popularity workload as -serve,
// but over a real loopback HTTP server speaking the wire codec: each client
// goroutine encodes its CSC input, POSTs it to 127.0.0.1, and decodes the
// sketch back. Reported next to the server-side (in-process) latency
// histogram, the client-side end-to-end quantiles isolate what the network
// layer costs — codec, HTTP framing, loopback TCP — and the /stats byte
// counters give the wire traffic per request, which stays O(nnz(A) + d·n)
// because S never crosses the network.

var serveHTTP = flag.Bool("serve-http", false, "replay the -serve workload over a loopback HTTP server (wire codec end to end)")

// -scrape folds the server's /metrics exposition into the JSON record, so a
// bench run documents the full counter state (shed, cache traffic, stage
// latencies) alongside the latency summary — and doubles as an end-to-end
// check that the exposition parses.
var scrape = flag.Bool("scrape", false, "with -serve-http: scrape /metrics after the replay and fold the series into the JSON record")

// serveHTTPRecord is the JSON schema of a -serve-http run (BENCH_PR4.json).
type serveHTTPRecord struct {
	Clients        int     `json:"clients"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	CacheCap       int     `json:"cache_capacity"`
	Matrices       int     `json:"matrices"`
	HitRate        float64 `json:"hit_rate"`
	WallMS         float64 `json:"wall_ms"`
	ThroughputS    float64 `json:"requests_per_s"`
	E2EP50us       int64   `json:"e2e_p50_us"`
	E2EP95us       int64   `json:"e2e_p95_us"`
	E2EP99us       int64   `json:"e2e_p99_us"`
	E2EMeanUS      int64   `json:"e2e_mean_us"`
	InprocP50us    int64   `json:"inproc_p50_us"`
	InprocP95us    int64   `json:"inproc_p95_us"`
	InprocP99us    int64   `json:"inproc_p99_us"`
	InprocMeanUS   int64   `json:"inproc_mean_us"`
	WireOverheadUS int64   `json:"wire_overhead_mean_us"`
	BytesInPerReq  int64   `json:"bytes_in_per_request"`
	BytesOutPerReq int64   `json:"bytes_out_per_request"`
	// Metrics holds the scraped /metrics series (-scrape only): every
	// sketchsp_* sample except the histogram buckets, keyed exactly as
	// exposed (counters, gauges, histogram _sum/_count).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// scrapeMetrics pulls /metrics and keeps the non-bucket sketchsp_* series.
func scrapeMetrics(base string) map[string]float64 {
	res, err := http.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: scrape:", err)
		return nil
	}
	defer res.Body.Close()
	mm, err := obs.ParseText(res.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: scrape parse:", err)
		return nil
	}
	out := make(map[string]float64)
	for k, v := range mm {
		if strings.HasPrefix(k, "sketchsp_") && !strings.Contains(k, "_bucket{") {
			out[k] = v
		}
	}
	return out
}

// quantileExact returns the q-quantile of sorted durations.
func quantileExact(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func serveHTTPSuite() {
	wls := serveWorkloads()
	svc := service.New(service.Config{
		Capacity:    *cacheCap,
		MaxInFlight: *inFlight,
	})
	defer svc.Close()
	srv := server.New(svc, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "spmmbench: serve:", err)
		}
	}()
	base := "http://" + l.Addr().String()

	// Same cumulative popularity table as -serve.
	cum := make([]float64, len(wls))
	total := 0.0
	for i, w := range wls {
		total += w.weight
		cum[i] = total
	}
	pick := func(r *rand.Rand) int {
		x := r.Float64() * total
		for i, c := range cum {
			if x < c {
				return i
			}
		}
		return len(wls) - 1
	}

	var issued, failed atomic.Int64
	budget := int64(*requests)
	lats := make([][]time.Duration, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Generous retries: overload shed is the server's job; the
			// replay should measure it as latency, not as errors.
			cl := client.New(base, client.Config{
				MaxRetries:  20,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
			})
			r := rand.New(rand.NewSource(int64(*seed)*1000 + int64(c)))
			ctx := context.Background()
			for issued.Add(1) <= budget {
				w := wls[pick(r)]
				t0 := time.Now()
				if _, _, err := cl.Sketch(ctx, w.a, w.d, w.opts); err != nil {
					failed.Add(1)
					continue
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := srv.Stats()
	st := snap.Service
	lookups := st.Hits + st.Misses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(st.Hits) / float64(lookups)
	}

	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var e2eMean time.Duration
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		e2eMean = sum / time.Duration(len(all))
	}
	e2eP50 := quantileExact(all, 0.50)
	e2eP95 := quantileExact(all, 0.95)
	e2eP99 := quantileExact(all, 0.99)

	var bytesInPerReq, bytesOutPerReq int64
	if snap.Server.Requests > 0 {
		bytesInPerReq = snap.Server.BytesIn / snap.Server.Requests
		bytesOutPerReq = snap.Server.BytesOut / snap.Server.Requests
	}

	fmt.Printf("\nSERVE-HTTP SUITE — %d requests over loopback HTTP, %d clients, cache %d/%d matrices, GOMAXPROCS=%d\n",
		st.Requests, *clients, *cacheCap, len(wls), runtime.GOMAXPROCS(0))
	fmt.Printf("  wall %v  (%.0f req/s)   hit rate %.1f%%   errors %d   rejections %d (absorbed by retry)\n",
		wall.Round(time.Millisecond), float64(st.Requests)/wall.Seconds(),
		100*hitRate, failed.Load(), st.Rejections)
	fmt.Printf("  e2e latency      mean %v   p50 %v   p95 %v   p99 %v\n",
		e2eMean, e2eP50, e2eP95, e2eP99)
	fmt.Printf("  in-process       mean %v   p50 %v   p95 %v   p99 %v\n",
		st.LatencyMean, st.LatencyP50, st.LatencyP95, st.LatencyP99)
	fmt.Printf("  wire overhead    mean %v (e2e - in-process: codec + HTTP + loopback TCP)\n",
		e2eMean-st.LatencyMean)
	fmt.Printf("  traffic          %d B/request in, %d B/request out (S never crosses the wire)\n",
		bytesInPerReq, bytesOutPerReq)

	var scraped map[string]float64
	if *scrape {
		scraped = scrapeMetrics(base)
		fmt.Printf("  metrics          %d series scraped from /metrics (shed %v, plan executes %v)\n",
			len(scraped), scraped["sketchsp_service_shed_total"], scraped["sketchsp_plan_executes_total"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: shutdown:", err)
	}
	cancel()
	<-serveDone

	if *jsonOut != "" {
		rec := serveHTTPRecord{
			Clients:        *clients,
			Requests:       st.Requests,
			Errors:         failed.Load(),
			CacheCap:       *cacheCap,
			Matrices:       len(wls),
			HitRate:        hitRate,
			WallMS:         float64(wall.Microseconds()) / 1000,
			ThroughputS:    float64(st.Requests) / wall.Seconds(),
			E2EP50us:       e2eP50.Microseconds(),
			E2EP95us:       e2eP95.Microseconds(),
			E2EP99us:       e2eP99.Microseconds(),
			E2EMeanUS:      e2eMean.Microseconds(),
			InprocP50us:    st.LatencyP50.Microseconds(),
			InprocP95us:    st.LatencyP95.Microseconds(),
			InprocP99us:    st.LatencyP99.Microseconds(),
			InprocMeanUS:   st.LatencyMean.Microseconds(),
			WireOverheadUS: (e2eMean - st.LatencyMean).Microseconds(),
			BytesInPerReq:  bytesInPerReq,
			BytesOutPerReq: bytesOutPerReq,
			Metrics:        scraped,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}
