package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/server"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// The -byref mode is the repeat-traffic A/B for the content-addressed
// layer (BENCH_PR8.json): the same matrix is sketched over and over, first
// inline (every request ships the full CSC body) and then by reference
// (one upload, then fingerprint-sized frames). Both phases go through the
// same loopback HTTP server and the same wire codec, and the replay
// asserts the two answers are bit-identical — by-reference changes bytes
// on the wire, never bits in Â. A final PATCH phase applies a small ΔA
// and sketches the merged matrix by its new fingerprint, measuring the
// incremental-update traffic against a full re-upload.

var byref = flag.Bool("byref", false, "replay repeat sketches of one matrix inline vs by-reference (content-addressed A/B)")

// byrefRecord is the JSON schema of a -byref run (BENCH_PR8.json).
type byrefRecord struct {
	Clients  int   `json:"clients"`
	Requests int64 `json:"requests_per_phase"`
	MatrixM  int   `json:"matrix_m"`
	MatrixN  int   `json:"matrix_n"`
	NNZ      int   `json:"matrix_nnz"`
	D        int   `json:"sketch_d"`

	// The headline: bytes the server reads per repeat request, per phase.
	MatrixFrameBytes  int64   `json:"matrix_frame_bytes"`
	InlineBytesPerReq int64   `json:"inline_bytes_in_per_request"`
	ByRefBytesPerReq  int64   `json:"byref_bytes_in_per_request"`
	PayloadReduction  float64 `json:"payload_reduction_x"`
	BitIdentical      bool    `json:"bit_identical"`

	InlineP50us int64   `json:"inline_e2e_p50_us"`
	InlineP99us int64   `json:"inline_e2e_p99_us"`
	ByRefP50us  int64   `json:"byref_e2e_p50_us"`
	ByRefP99us  int64   `json:"byref_e2e_p99_us"`
	InlineReqS  float64 `json:"inline_requests_per_s"`
	ByRefReqS   float64 `json:"byref_requests_per_s"`

	// PATCH phase: ship ΔA, sketch the merged matrix by its fingerprint.
	DeltaNNZ          int   `json:"delta_nnz"`
	DeltaFrameBytes   int64 `json:"delta_frame_bytes"`
	PatchBitIdentical bool  `json:"patch_bit_identical"`
}

// byrefReplay hammers fn from *clients goroutines until budget requests
// are done, returning sorted e2e latencies and the wall time.
func byrefReplay(budget int64, fn func(c int) error) ([]time.Duration, time.Duration) {
	var issued int64
	var mu sync.Mutex
	var all []time.Duration
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lats []time.Duration
			for {
				mu.Lock()
				if issued >= budget {
					mu.Unlock()
					break
				}
				issued++
				mu.Unlock()
				t0 := time.Now()
				if err := fn(c); err != nil {
					fmt.Fprintln(os.Stderr, "spmmbench: byref replay:", err)
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			all = append(all, lats...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, wall
}

func byrefSuite() {
	// Sized so the inline frame is ~2.0 MB: 24 + 8·(n+1) + 16·nnz bytes.
	const (
		m   = 50000
		n   = 2000
		nnz = 125000
		d   = 64
	)
	a := sparse.PowerLaw(m, n, nnz, 1.0, *seed)
	intValues(a)
	opts := core.Options{Dist: rng.Rademacher, Source: rng.SourceBatchXoshiro, Seed: uint64(*seed), Workers: 2}
	frame, err := wire.EncodeMatrixPutFrame(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	matrixFrameBytes := int64(len(frame))

	svc := service.New(service.Config{Capacity: *cacheCap, MaxInFlight: *inFlight})
	defer svc.Close()
	srv := server.New(svc, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "spmmbench: serve:", err)
		}
	}()
	base := "http://" + l.Addr().String()
	cls := make([]*client.Client, *clients)
	for i := range cls {
		cls[i] = client.New(base, client.Config{MaxRetries: 20, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	}
	ctx := context.Background()
	budget := int64(*requests)

	// Phase 1 — inline: every request carries the full matrix body.
	var refAhat *dense.Matrix
	var refMu sync.Mutex
	before := srv.Stats().Server
	inlineLats, inlineWall := byrefReplay(budget, func(c int) error {
		ahat, _, err := cls[c].Sketch(ctx, a, d, opts)
		if err != nil {
			return err
		}
		refMu.Lock()
		if refAhat == nil {
			refAhat = ahat
		}
		refMu.Unlock()
		return nil
	})
	after := srv.Stats().Server
	inlinePerReq := int64(0)
	if reqs := after.Requests - before.Requests; reqs > 0 {
		inlinePerReq = (after.BytesIn - before.BytesIn) / reqs
	}

	// Phase 2 — by reference: seed once (upload), then replay fingerprints.
	seedAhat, _, err := cls[0].SketchCached(ctx, a, d, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: byref seed:", err)
		os.Exit(1)
	}
	bitOK := bitEqual(refAhat, seedAhat)
	fp := a.Fingerprint()
	before = srv.Stats().Server
	byrefLats, byrefWall := byrefReplay(budget, func(c int) error {
		ahat, _, err := cls[c].SketchRef(ctx, fp, d, opts)
		if err != nil {
			return err
		}
		if !bitEqual(refAhat, ahat) {
			return fmt.Errorf("by-ref answer diverged from inline")
		}
		return nil
	})
	after = srv.Stats().Server
	byrefPerReq := int64(0)
	if reqs := after.Requests - before.Requests; reqs > 0 {
		byrefPerReq = (after.BytesIn - before.BytesIn) / reqs
	}

	// Phase 3 — PATCH: a small ΔA, then one by-ref sketch of the merge.
	delta := sparse.RandomUniform(m, n, 50.0/(float64(m)*float64(n)), *seed+1)
	intValues(delta)
	deltaFrame, err := wire.EncodeMatrixDeltaFrame(&wire.MatrixDelta{Fp: fp, Delta: delta})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	sum, err := sparse.Add(a, delta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	// PATCH needs the base matrix resident (a sketch served from a warm
	// plan cache does not imply store residency); the explicit PUT is
	// idempotent and what a patching client does anyway.
	if _, err := cls[0].PutMatrix(ctx, a); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: put:", err)
	}
	patchOK := false
	if info, err := cls[0].PatchMatrix(ctx, fp, delta); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: patch:", err)
	} else if got, _, err := cls[0].SketchRef(ctx, info.Fp, d, opts); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: patched sketch:", err)
	} else {
		want, _, err := svc.Sketch(ctx, sum, d, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
		} else {
			patchOK = bitEqual(want, got)
		}
	}

	reduction := 0.0
	if byrefPerReq > 0 {
		reduction = float64(inlinePerReq) / float64(byrefPerReq)
	}
	fmt.Printf("\nBY-REF SUITE — %d repeat sketches of one %dx%d matrix (nnz=%d, d=%d), %d clients, GOMAXPROCS=%d\n",
		budget, m, n, nnz, d, *clients, runtime.GOMAXPROCS(0))
	fmt.Printf("  inline    %8d B/request in   wall %v (%.0f req/s)   p50 %v  p99 %v\n",
		inlinePerReq, inlineWall.Round(time.Millisecond), float64(budget)/inlineWall.Seconds(),
		quantileExact(inlineLats, 0.50), quantileExact(inlineLats, 0.99))
	fmt.Printf("  by-ref    %8d B/request in   wall %v (%.0f req/s)   p50 %v  p99 %v\n",
		byrefPerReq, byrefWall.Round(time.Millisecond), float64(budget)/byrefWall.Seconds(),
		quantileExact(byrefLats, 0.50), quantileExact(byrefLats, 0.99))
	fmt.Printf("  payload   %.0fx smaller (matrix frame %d B -> %d B SketchRef frame)   bit-identical %v\n",
		reduction, matrixFrameBytes, wire.SketchRefWireSize, bitOK)
	fmt.Printf("  patch     ΔA nnz=%d in a %d B frame vs %d B re-upload   merged sketch bit-identical %v\n",
		delta.NNZ(), len(deltaFrame), matrixFrameBytes, patchOK)

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: shutdown:", err)
	}
	cancel()
	<-serveDone

	if *jsonOut != "" {
		rec := byrefRecord{
			Clients:           *clients,
			Requests:          budget,
			MatrixM:           m,
			MatrixN:           n,
			NNZ:               a.NNZ(),
			D:                 d,
			MatrixFrameBytes:  matrixFrameBytes,
			InlineBytesPerReq: inlinePerReq,
			ByRefBytesPerReq:  byrefPerReq,
			PayloadReduction:  reduction,
			BitIdentical:      bitOK,
			InlineP50us:       quantileExact(inlineLats, 0.50).Microseconds(),
			InlineP99us:       quantileExact(inlineLats, 0.99).Microseconds(),
			ByRefP50us:        quantileExact(byrefLats, 0.50).Microseconds(),
			ByRefP99us:        quantileExact(byrefLats, 0.99).Microseconds(),
			InlineReqS:        float64(budget) / inlineWall.Seconds(),
			ByRefReqS:         float64(budget) / byrefWall.Seconds(),
			DeltaNNZ:          delta.NNZ(),
			DeltaFrameBytes:   int64(len(deltaFrame)),
			PatchBitIdentical: patchOK,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}

// intValues rewrites the matrix values to small nonzero integers: with a
// ±1 sketch, every partial sum stays an exact integer, so the incremental
// Â + S·ΔA served after a PATCH is bit-identical to a one-shot of A+ΔA —
// the regime the metamorphic suite pins. (With arbitrary reals the two
// association orders may differ in the last ulp.)
func intValues(a *sparse.CSC) {
	for k := range a.Val {
		v := float64(k%9 - 4)
		if v == 0 {
			v = 5
		}
		a.Val[k] = v
	}
}

// bitEqual compares two sketches by Float64bits.
func bitEqual(a, b *dense.Matrix) bool {
	if a == nil || b == nil || a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if math.Float64bits(ca[i]) != math.Float64bits(cb[i]) {
				return false
			}
		}
	}
	return true
}
