package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/shard"
)

// The -serve-shard mode measures what the coordinator/worker split buys on
// the BENCH_PR4 replay mix: the same six Zipf-weighted matrices, replayed
// through an in-process coordinator fanning nnz-balanced column shards out
// to 1, 2 and 4 sketchd *worker processes* on loopback.
//
// What scales on this host — and what cannot: on a multi-core cluster the
// split buys compute parallelism; on this single-core benchmark host it
// cannot (the workers time-share one CPU), so the curve isolates the other
// — and in cache-bound serving regimes dominant — axis: aggregate
// plan-cache capacity. The request profile is deliberately plan-build-heavy
// (small d, tiny BlockN, Algorithm 4, so the CSC→BlockedCSR conversion at
// plan time dominates the cheap execute), the shard count is fixed across
// worker counts (so the shard fingerprints, and hence the plan-cache keys,
// are identical in every configuration), and each worker's cache is sized
// well below the full shard-plan working set. One worker must hold every
// shard of every matrix and thrashes; four workers hold a quarter each —
// consistent-hash routing pins each shard to one worker — and serve from
// cache. The JSON record names this mechanism explicitly so nobody reads
// the curve as single-core compute scaling.

var (
	serveShard       = flag.Bool("serve-shard", false, "replay the -serve workload through a shard coordinator over 1/2/4 loopback sketchd worker processes")
	shardCounts      = flag.String("shard-workers", "1,2,4", "with -serve-shard: comma-separated worker counts to sweep")
	shardsPerReq     = flag.Int("shards", 4, "with -serve-shard: column shards per request (fixed across worker counts so plan keys stay identical)")
	shardWorkerCache = flag.Int("shard-cache", 10, "with -serve-shard: per-worker plan cache capacity (below the full shard working set)")
	shardD           = flag.Int("shard-d", 16, "with -serve-shard: sketch rows d (small keeps execute cheap relative to plan build)")
)

// shardCurvePoint is one worker-count measurement of the scaling curve.
type shardCurvePoint struct {
	Workers     int     `json:"workers"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	WallMS      float64 `json:"wall_ms"`
	ThroughputS float64 `json:"requests_per_s"`
	E2EP50us    int64   `json:"e2e_p50_us"`
	E2EP95us    int64   `json:"e2e_p95_us"`
	HitRate     float64 `json:"worker_cache_hit_rate"`
	PlanBuilds  float64 `json:"worker_plan_builds"`
	Speedup     float64 `json:"speedup_vs_1_worker"`
}

// serveShardRecord is the JSON schema of a -serve-shard run (BENCH_PR6.json).
type serveShardRecord struct {
	Mechanism     string            `json:"mechanism"`
	Host          string            `json:"host"`
	Shards        int               `json:"shards_per_request"`
	Scale         float64           `json:"scale"`
	WorkerCache   int               `json:"per_worker_cache_capacity"`
	ShardPlanKeys int               `json:"shard_plan_keys_total"`
	D             int               `json:"d"`
	Clients       int               `json:"clients"`
	Matrices      int               `json:"matrices"`
	Curve         []shardCurvePoint `json:"curve"`
	Speedup4v1    float64           `json:"speedup_4_workers_vs_1"`
}

// buildSketchdBin compiles the daemon into a temp dir for the subprocess
// workers.
func buildSketchdBin() (string, func(), error) {
	dir, err := os.MkdirTemp("", "spmmbench-sketchd")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "sketchd")
	cmd := exec.Command("go", "build", "-o", bin, "sketchsp/cmd/sketchd")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("go build sketchd: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

// startShardWorker launches one sketchd worker and returns its URL and a
// stop function (SIGTERM, bounded wait). Extra flags (e.g. -fault-delay
// for the straggler A/B) are appended verbatim.
func startShardWorker(bin string, cache int, extra ...string) (string, func(), error) {
	dir, err := os.MkdirTemp("", "spmmbench-worker")
	if err != nil {
		return "", nil, err
	}
	addrFile := filepath.Join(dir, "addr")
	// The generous queue keeps admission control out of the measurement:
	// with the default tiny queue a single worker sheds most of the fan-in
	// and the curve would conflate retry storms with cache behaviour.
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-cache", fmt.Sprint(cache),
		"-max-queue", "64"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
		os.RemoveAll(dir)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			return "http://" + strings.TrimSpace(string(b)), stop, nil
		}
		if time.Now().After(deadline) {
			stop()
			return "", nil, fmt.Errorf("worker never published %s", addrFile)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// shardSuiteDefaults applies the shard suites' flag defaults. The replay
// mix shares -scale with -serve, but the shard suites default larger:
// plan-build cost grows as m·n while the fixed per-request cost (wire
// transfer, decode, execute) grows as nnz, so the bigger default keeps the
// cache-miss penalty — the thing the worker count amortises — comfortably
// above the transport floor. An explicit -scale still wins. -clients
// defaults lower too: enough concurrency to keep the single CPU fed, few
// enough that the one-worker point measures cache thrash rather than
// fan-in queueing.
func shardSuiteDefaults() {
	scaleSet, clientsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scale":
			scaleSet = true
		case "clients":
			clientsSet = true
		}
	})
	if !scaleSet {
		*scale = 0.12
	}
	if !clientsSet {
		*clients = 4
	}
}

// shardReplayMix is the Zipf-weighted replay shared by -serve-shard and
// -serve-shard-faults: the -serve matrices under a plan-build-heavy option
// set (Algorithm 4 with a tiny BlockN maximises per-plan conversion work,
// the small fixed -shard-d keeps the execute cheap — so a cache miss costs
// a multiple of a hit).
type shardReplayMix struct {
	wls  []serveWorkload
	opts core.Options
	pick func(r *rand.Rand) int
}

func newShardReplayMix() shardReplayMix {
	wls := serveWorkloads()
	cum := make([]float64, len(wls))
	total := 0.0
	for i, w := range wls {
		total += w.weight
		cum[i] = total
	}
	return shardReplayMix{
		wls: wls,
		opts: core.Options{
			Algorithm: core.Alg4, Seed: uint64(*seed),
			BlockN: 1, Workers: 1, Sched: core.SchedWeighted,
		},
		pick: func(r *rand.Rand) int {
			x := r.Float64() * total
			for i, c := range cum {
				if x < c {
					return i
				}
			}
			return len(wls) - 1
		},
	}
}

// replayThroughCoordinator replays nRequests draws of the mix through an
// existing coordinator with nClients goroutines and returns the sorted
// per-request latencies, the wall time, and the failure count.
func replayThroughCoordinator(coord *shard.Coordinator, mix shardReplayMix, nRequests, nClients int) ([]time.Duration, time.Duration, int64) {
	ctx := context.Background()
	var issued, failed atomic.Int64
	budget := int64(nRequests)
	lats := make([][]time.Duration, nClients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(*seed)*1000 + int64(c)))
			for issued.Add(1) <= budget {
				w := mix.wls[mix.pick(r)]
				t0 := time.Now()
				if _, _, err := coord.Sketch(ctx, w.a, *shardD, mix.opts); err != nil {
					failed.Add(1)
					continue
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sortDurations(all)
	return all, wall, failed.Load()
}

// runShardCurve measures one scaling curve: for each worker count, start
// that many sketchd processes, replay the mix through a fresh coordinator,
// and record throughput/latency plus fleet-wide cache traffic.
func runShardCurve(bin string, mix shardReplayMix, counts []int, shardCfg shard.Config) []shardCurvePoint {
	var curve []shardCurvePoint
	for _, nw := range counts {
		urls := make([]string, nw)
		stops := make([]func(), nw)
		for i := 0; i < nw; i++ {
			url, stop, err := startShardWorker(bin, *shardWorkerCache)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spmmbench:", err)
				os.Exit(1)
			}
			urls[i] = url
			stops[i] = stop
		}
		cfg := shardCfg
		cfg.Peers = urls
		cfg.Shards = *shardsPerReq
		cfg.Client = client.Config{MaxRetries: 20, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
		coord, err := shard.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			os.Exit(1)
		}

		// Warmup pass: touch every matrix once so every configuration
		// starts with whatever fits resident — the steady state a serving
		// deployment lives in, and the regime the capacity argument is
		// about.
		ctx := context.Background()
		for _, w := range mix.wls {
			if _, _, err := coord.Sketch(ctx, w.a, *shardD, mix.opts); err != nil {
				fmt.Fprintln(os.Stderr, "spmmbench: warmup:", err)
				os.Exit(1)
			}
		}

		all, wall, nfailed := replayThroughCoordinator(coord, mix, *requests, *clients)

		// Worker-side cache traffic, summed over the fleet.
		var hits, misses, builds float64
		for _, u := range urls {
			mm := scrapeMetrics(u)
			hits += mm["sketchsp_service_cache_hits_total"]
			misses += mm["sketchsp_service_cache_misses_total"]
			builds += mm["sketchsp_service_plan_builds_total"]
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = hits / (hits + misses)
		}

		done := int64(len(all))
		pt := shardCurvePoint{
			Workers:     nw,
			Requests:    done,
			Errors:      nfailed,
			WallMS:      float64(wall.Microseconds()) / 1000,
			ThroughputS: float64(done) / wall.Seconds(),
			E2EP50us:    quantileExact(all, 0.50).Microseconds(),
			E2EP95us:    quantileExact(all, 0.95).Microseconds(),
			HitRate:     hitRate,
			PlanBuilds:  builds,
		}
		if len(curve) > 0 && curve[0].ThroughputS > 0 {
			pt.Speedup = pt.ThroughputS / curve[0].ThroughputS
		} else {
			pt.Speedup = 1
		}
		curve = append(curve, pt)
		fmt.Printf("  %d worker(s): %6.0f req/s   wall %8v   p50 %8v   p95 %8v   hit rate %5.1f%%   plan builds %5.0f   speedup %.2fx\n",
			nw, pt.ThroughputS, wall.Round(time.Millisecond),
			quantileExact(all, 0.50), quantileExact(all, 0.95),
			100*hitRate, builds, pt.Speedup)

		coord.Close()
		for _, stop := range stops {
			stop()
		}
	}
	return curve
}

func parseWorkerCounts() []int {
	var counts []int
	for _, s := range strings.Split(*shardCounts, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "spmmbench: bad -shard-workers entry %q\n", s)
			os.Exit(1)
		}
		counts = append(counts, n)
	}
	return counts
}

func serveShardSuite() {
	shardSuiteDefaults()
	mix := newShardReplayMix()

	bin, cleanupBin, err := buildSketchdBin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	defer cleanupBin()

	counts := parseWorkerCounts()

	fmt.Printf("\nSERVE-SHARD SUITE — %d requests/point, %d clients, %d shards/request, per-worker cache %d, %d shard-plan keys, GOMAXPROCS=%d\n",
		*requests, *clients, *shardsPerReq, *shardWorkerCache, *shardsPerReq*len(mix.wls), runtime.GOMAXPROCS(0))
	fmt.Printf("  (single-core host: the curve measures aggregate plan-cache capacity + shard routing affinity, not compute parallelism)\n")

	curve := runShardCurve(bin, mix, counts, shard.Config{})

	speedup := 0.0
	if len(curve) > 1 && curve[0].ThroughputS > 0 {
		speedup = curve[len(curve)-1].ThroughputS / curve[0].ThroughputS
	}
	fmt.Printf("  %d-worker vs 1-worker speedup: %.2fx\n", curve[len(curve)-1].Workers, speedup)

	if *jsonOut != "" {
		rec := serveShardRecord{
			Mechanism: "aggregate plan-cache capacity + consistent-hash shard affinity on a single-core host " +
				"(fixed shard count keeps plan keys identical across worker counts; one worker thrashes its cache, " +
				"four workers hold the working set; NOT compute parallelism)",
			Host:          fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
			Shards:        *shardsPerReq,
			Scale:         *scale,
			WorkerCache:   *shardWorkerCache,
			ShardPlanKeys: *shardsPerReq * len(mix.wls),
			D:             *shardD,
			Clients:       *clients,
			Matrices:      len(mix.wls),
			Curve:         curve,
			Speedup4v1:    speedup,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
