package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/shard"
	"sketchsp/internal/sparse"
)

// The -serve-shard-faults mode is the fault-tolerance companion to
// -serve-shard (BENCH_PR10.json): the same scaling curve re-run for
// regression tracking, then two experiments the PR6 suite could not
// express because the coordinator had no hedging and no dynamic
// membership:
//
//   - Straggler A/B: three workers, one started with -fault-delay so every
//     sketch on it arrives late. The same replay runs once with hedging off
//     and once with -hedge-quantile/-hedge-max-delay on, at equal request
//     counts. Without hedging nearly every request waits out the straggler
//     (a request dodges it only if none of its shards hash there); with
//     hedging the coordinator re-sends the laggard shard to the next ring
//     peer after the hedge delay and takes the first valid answer. The
//     record keeps both latency profiles, the hedge counters, and a
//     bit-identity check against the single-process plan — hedging must buy
//     tail latency without touching a single bit.
//
//   - Membership replay: a replay during which the third worker is
//     administratively removed and re-added mid-traffic. Zero requests may
//     fail — in-flight fan-outs complete against their membership snapshot
//     and new ones route around the change.
var (
	serveShardFaults    = flag.Bool("serve-shard-faults", false, "run the shard fault suite: scaling curve + straggler hedging A/B + membership-change replay (BENCH_PR10)")
	faultStragglerDelay = flag.Duration("fault-straggler-delay", 60*time.Millisecond, "with -serve-shard-faults: injected per-sketch delay on the straggler worker")
	faultHedgeQuantile  = flag.Float64("fault-hedge-quantile", 0.9, "with -serve-shard-faults: hedge quantile for the hedged arm")
	faultHedgeMaxDelay  = flag.Duration("fault-hedge-max-delay", 25*time.Millisecond, "with -serve-shard-faults: hedge delay cap for the hedged arm (also the cold-start delay)")
	faultRequests       = flag.Int("fault-requests", 120, "with -serve-shard-faults: requests per straggler arm and per membership replay")
)

// stragglerArm is one side of the hedging A/B.
type stragglerArm struct {
	Hedged       bool    `json:"hedged"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	WallMS       float64 `json:"wall_ms"`
	P50us        int64   `json:"e2e_p50_us"`
	P95us        int64   `json:"e2e_p95_us"`
	P99us        int64   `json:"e2e_p99_us"`
	Hedges       float64 `json:"hedges"`
	HedgeWins    float64 `json:"hedge_wins"`
	BitIdentical bool    `json:"bit_identical_vs_direct"`
}

// shardFaultsRecord is the JSON schema of a -serve-shard-faults run
// (BENCH_PR10.json).
type shardFaultsRecord struct {
	Mechanism        string            `json:"mechanism"`
	Host             string            `json:"host"`
	Shards           int               `json:"shards_per_request"`
	Scale            float64           `json:"scale"`
	D                int               `json:"d"`
	Clients          int               `json:"clients"`
	Curve            []shardCurvePoint `json:"curve"`
	CurveSpeedup     float64           `json:"curve_speedup_last_vs_1"`
	StragglerDelayMS float64           `json:"straggler_delay_ms"`
	HedgeQuantile    float64           `json:"hedge_quantile"`
	HedgeMaxDelayMS  float64           `json:"hedge_max_delay_ms"`
	Unhedged         stragglerArm      `json:"unhedged"`
	Hedged           stragglerArm      `json:"hedged"`
	HedgedP99Ratio   float64           `json:"hedged_p99_over_unhedged_p99"`
	MembershipReqs   int64             `json:"membership_replay_requests"`
	MembershipFailed int64             `json:"membership_replay_failed"`
	PeerChanges      float64           `json:"membership_peer_changes"`
}

// coordCounters renders an in-process coordinator's registry and returns
// the flat sample map (counters and gauges, no buckets).
func coordCounters(coord *shard.Coordinator) map[string]float64 {
	var buf bytes.Buffer
	if err := coord.Registry().WriteText(&buf); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: registry:", err)
		return nil
	}
	mm, err := obs.ParseText(&buf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: registry parse:", err)
		return nil
	}
	return mm
}

// directReference computes the single-process Â for one workload.
func directReference(mix shardReplayMix, i int) (*dense.Matrix, error) {
	w := mix.wls[i]
	p, err := core.NewPlan(w.a, *shardD, mix.opts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	ahat := dense.NewMatrix(*shardD, w.a.N)
	if _, err := p.Execute(ahat); err != nil {
		return nil, err
	}
	return ahat, nil
}

func matricesBitEqual(got, want *dense.Matrix) bool {
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return false
	}
	for j := 0; j < want.Cols; j++ {
		for i := 0; i < want.Rows; i++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// stragglerMix is the replay for the hedging A/B: small matrices under the
// default algorithm, so per-request compute is a few milliseconds and the
// injected straggler delay is the tail. The plan-heavy -serve-shard mix
// would be wrong here twice over: its compute exceeds the straggler delay
// (so the delay is not the tail hedging should cut), and on a single-core
// host a hedge's duplicated plan build steals CPU from the request it is
// trying to rescue. Hedging pays when the backup has idle capacity and the
// laggard's latency is waiting, not work — which is exactly a straggling
// peer, and exactly this mix.
func stragglerMix() shardReplayMix {
	wls := make([]serveWorkload, 4)
	for i := range wls {
		wls[i] = serveWorkload{
			name:   fmt.Sprintf("straggler-%d", i),
			a:      sparse.RandomUniform(3000, 300, 0.01, *seed+int64(10+i)),
			weight: 1,
		}
	}
	return shardReplayMix{
		wls:  wls,
		opts: core.Options{Seed: uint64(*seed), Workers: 1, Sched: core.SchedWeighted},
		pick: func(r *rand.Rand) int { return r.Intn(len(wls)) },
	}
}

// runStragglerArm replays the mix through a fresh coordinator over the
// given (straggler-containing) worker fleet, hedged or not, and checks the
// merged sketches bit for bit against the direct plan.
func runStragglerArm(urls []string, mix shardReplayMix, refs []*dense.Matrix, hedged bool) stragglerArm {
	cfg := shard.Config{
		Peers:  urls,
		Shards: *shardsPerReq,
		Client: client.Config{MaxRetries: 20, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	}
	if hedged {
		cfg.HedgeQuantile = *faultHedgeQuantile
		cfg.HedgeMaxDelay = *faultHedgeMaxDelay
	}
	coord, err := shard.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	defer coord.Close()

	// Two warmup passes: the first fills the worker plan caches, the
	// second pushes every peer's latency window past the cold-start
	// minimum so the hedged arm hedges off measured quantiles, not the
	// cap, for most of the replay.
	ctx := context.Background()
	bitOK := true
	for pass := 0; pass < 3; pass++ {
		for i := range mix.wls {
			got, _, err := coord.Sketch(ctx, mix.wls[i].a, *shardD, mix.opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spmmbench: straggler warmup:", err)
				os.Exit(1)
			}
			if pass == 0 && !matricesBitEqual(got, refs[i]) {
				bitOK = false
			}
		}
	}

	// Sequential replay: on this single-core host concurrent clients add
	// queueing noise that swamps the latency windows the hedge delay is
	// derived from (every RPC looks like a laggard and hedges storm). One
	// client keeps the per-RPC latency distribution stationary, so the
	// A/B isolates the straggler — the thing hedging is for.
	all, wall, nfailed := replayThroughCoordinator(coord, mix, *faultRequests, 1)
	mm := coordCounters(coord)
	arm := stragglerArm{
		Hedged:       hedged,
		Requests:     int64(len(all)),
		Errors:       nfailed,
		WallMS:       float64(wall.Microseconds()) / 1000,
		P50us:        quantileExact(all, 0.50).Microseconds(),
		P95us:        quantileExact(all, 0.95).Microseconds(),
		P99us:        quantileExact(all, 0.99).Microseconds(),
		Hedges:       mm["sketchsp_shard_hedges_total"],
		HedgeWins:    mm["sketchsp_shard_hedge_wins_total"],
		BitIdentical: bitOK,
	}
	mode := "unhedged"
	if hedged {
		mode = "hedged  "
	}
	fmt.Printf("  %s: %4d req   wall %8v   p50 %8v   p95 %8v   p99 %8v   hedges %4.0f (won %4.0f)   errors %d   bit-identical %v\n",
		mode, arm.Requests, wall.Round(time.Millisecond),
		quantileExact(all, 0.50), quantileExact(all, 0.95), quantileExact(all, 0.99),
		arm.Hedges, arm.HedgeWins, arm.Errors, arm.BitIdentical)
	return arm
}

// runMembershipReplay replays the mix through a 3-worker coordinator while
// the third worker is removed and re-added mid-traffic via the PeerAdmin
// surface — the same code path POST/DELETE /v1/peers drives on a daemon.
func runMembershipReplay(urls []string, mix shardReplayMix) (reqs, nfailed int64, peerChanges float64) {
	coord, err := shard.New(shard.Config{
		Peers:  urls,
		Shards: *shardsPerReq,
		Client: client.Config{MaxRetries: 20, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	defer coord.Close()
	ctx := context.Background()
	for _, w := range mix.wls {
		if _, _, err := coord.Sketch(ctx, w.a, *shardD, mix.opts); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench: membership warmup:", err)
			os.Exit(1)
		}
	}

	type result struct {
		lats    int
		nfailed int64
	}
	done := make(chan result, 1)
	go func() {
		all, _, f := replayThroughCoordinator(coord, mix, *faultRequests, *clients)
		done <- result{len(all), f}
	}()

	// Drive the membership change off the live request counter so both
	// changes genuinely land mid-replay regardless of host speed.
	third := urls[len(urls)-1]
	waitReq := func(n float64) bool {
		deadline := time.Now().Add(2 * time.Minute)
		for coordCounters(coord)["sketchsp_shard_requests_total"] < n {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(5 * time.Millisecond)
		}
		return true
	}
	if waitReq(float64(*faultRequests) / 3) {
		if err := coord.RemovePeer(third); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench: remove peer:", err)
		}
	}
	if waitReq(2 * float64(*faultRequests) / 3) {
		if err := coord.AddPeer(third); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench: add peer:", err)
		}
	}
	r := <-done
	changes := coordCounters(coord)["sketchsp_shard_peer_changes_total"]
	fmt.Printf("  membership replay: %d requests, %d failed, %0.f peer changes (remove + re-add of %s mid-replay)\n",
		r.lats+int(r.nfailed), r.nfailed, changes, third)
	return int64(r.lats) + r.nfailed, r.nfailed, changes
}

func serveShardFaultsSuite() {
	shardSuiteDefaults()
	mix := newShardReplayMix()

	bin, cleanupBin, err := buildSketchdBin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	defer cleanupBin()

	fmt.Printf("\nSERVE-SHARD-FAULTS SUITE — %d requests/arm, %d clients, %d shards/request, straggler delay %v, hedge q=%.2f cap=%v, GOMAXPROCS=%d\n",
		*faultRequests, *clients, *shardsPerReq, *faultStragglerDelay,
		*faultHedgeQuantile, *faultHedgeMaxDelay, runtime.GOMAXPROCS(0))

	// Phase 1: the PR6 scaling curve, re-run for regression tracking.
	fmt.Printf(" scaling curve (%d requests/point):\n", *requests)
	curve := runShardCurve(bin, mix, parseWorkerCounts(), shard.Config{})
	curveSpeedup := 0.0
	if len(curve) > 1 && curve[0].ThroughputS > 0 {
		curveSpeedup = curve[len(curve)-1].ThroughputS / curve[0].ThroughputS
	}

	// Phase 2: straggler A/B on a fixed 3-worker fleet whose third member
	// delays every sketch.
	fmt.Printf(" straggler A/B:\n")
	var urls []string
	var stops []func()
	for i := 0; i < 3; i++ {
		extra := []string{}
		if i == 2 {
			extra = []string{"-fault-delay", faultStragglerDelay.String()}
		}
		url, stop, err := startShardWorker(bin, *shardWorkerCache, extra...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			os.Exit(1)
		}
		urls = append(urls, url)
		stops = append(stops, stop)
	}
	smix := stragglerMix()
	refs := make([]*dense.Matrix, len(smix.wls))
	for i := range smix.wls {
		if refs[i], err = directReference(smix, i); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench: direct reference:", err)
			os.Exit(1)
		}
	}
	unhedged := runStragglerArm(urls, smix, refs, false)
	hedged := runStragglerArm(urls, smix, refs, true)
	for _, stop := range stops {
		stop()
	}
	ratio := 0.0
	if unhedged.P99us > 0 {
		ratio = float64(hedged.P99us) / float64(unhedged.P99us)
	}
	fmt.Printf("  hedged p99 / unhedged p99 = %.3f\n", ratio)

	// Phase 3: membership change mid-replay on a healthy 3-worker fleet.
	fmt.Printf(" membership replay:\n")
	urls, stops = nil, nil
	for i := 0; i < 3; i++ {
		url, stop, err := startShardWorker(bin, *shardWorkerCache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			os.Exit(1)
		}
		urls = append(urls, url)
		stops = append(stops, stop)
	}
	mReqs, mFailed, mChanges := runMembershipReplay(urls, mix)
	for _, stop := range stops {
		stop()
	}

	if *jsonOut != "" {
		rec := shardFaultsRecord{
			Mechanism: "tail-at-scale hedging + dynamic membership on the PR6 shard fleet: the straggler A/B holds " +
				"request count and bits constant and varies only the hedge policy, so the p99 gap is pure hedging; " +
				"the membership replay removes and re-adds a live worker mid-traffic and must lose zero requests",
			Host:             fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
			Shards:           *shardsPerReq,
			Scale:            *scale,
			D:                *shardD,
			Clients:          *clients,
			Curve:            curve,
			CurveSpeedup:     curveSpeedup,
			StragglerDelayMS: float64(faultStragglerDelay.Microseconds()) / 1000,
			HedgeQuantile:    *faultHedgeQuantile,
			HedgeMaxDelayMS:  float64(faultHedgeMaxDelay.Microseconds()) / 1000,
			Unhedged:         unhedged,
			Hedged:           hedged,
			HedgedP99Ratio:   ratio,
			MembershipReqs:   mReqs,
			MembershipFailed: mFailed,
			PeerChanges:      mChanges,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}
