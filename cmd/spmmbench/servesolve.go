package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/server"
	"sketchsp/internal/service"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// The -serve-solve mode is the preconditioner-cache A/B for the solve
// surface (BENCH_PR9.json): the same least-squares problem is solved over
// loopback HTTP, first against a cold service (the request pays the sketch
// + QR factorization) and then repeatedly against the warm preconditioner
// cache (the request pays only the LSQR iterations). A direct in-process
// solver.Solve anchors the comparison, and the replay asserts every served
// solution is bit-identical to the direct one — caching changes the cost,
// never the answer. A final async round-trip exercises the job surface on
// the same problem.

var serveSolve = flag.Bool("serve-solve", false, "replay repeat solves of one problem: direct vs served cold vs served warm precond cache")

// solveRecord is the JSON schema of a -serve-solve run (BENCH_PR9.json).
type solveRecord struct {
	MatrixM int `json:"matrix_m"`
	MatrixN int `json:"matrix_n"`
	NNZ     int `json:"matrix_nnz"`
	Iters   int `json:"lsqr_iters"`

	DirectUs     int64   `json:"direct_solve_us"`
	ColdUs       int64   `json:"served_cold_us"`
	WarmUs       int64   `json:"served_warm_us"`
	WarmRequests int     `json:"warm_requests"`
	WarmSpeedup  float64 `json:"warm_over_cold_speedup_x"`

	BitIdentical      bool `json:"bit_identical"`
	WarmPrecondCached bool `json:"warm_precond_cached"`
	AsyncBitIdentical bool `json:"async_bit_identical"`

	Residual float64 `json:"residual"`
}

func serveSolveSuite() {
	// Tall enough that the preconditioner build (sketch + QR of the d×n
	// sketch) dominates a single solve, so the cache A/B has signal.
	const (
		m      = 200000
		n      = 1000
		perRow = 8
	)
	a := sparse.FixedRowNNZ(m, n, perRow, *seed)
	r := rand.New(rand.NewSource(*seed + 1))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(x, b)
	for i := range b {
		b[i] += 1e-3 * r.NormFloat64()
	}
	sketchOpts := core.Options{Dist: rng.Rademacher, Source: rng.SourceBatchXoshiro, Seed: uint64(*seed), Workers: runtime.GOMAXPROCS(0)}

	// Anchor: the direct in-process solve (cold by construction).
	directStart := time.Now()
	want, info, err := solver.Solve(solver.MethodSAPQR, a, b, solver.Options{Sketch: sketchOpts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: direct solve:", err)
		os.Exit(1)
	}
	directUs := time.Since(directStart).Microseconds()

	svc := service.New(service.Config{Capacity: *cacheCap, MaxInFlight: *inFlight})
	defer svc.Close()
	srv := server.New(svc, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "spmmbench: serve:", err)
		}
	}()
	cl := client.New("http://"+l.Addr().String(), client.Config{})
	ctx := context.Background()
	req := &wire.SolveRequest{Method: wire.SolveSAPQR, A: a, B: b, Opts: sketchOpts}

	solveOnce := func() (*wire.SolveResponse, int64, error) {
		t0 := time.Now()
		resp, err := cl.Solve(ctx, req)
		return resp, time.Since(t0).Microseconds(), err
	}

	// Served cold: the first request builds sketch + QR + iterates.
	coldResp, coldUs, err := solveOnce()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: served cold solve:", err)
		os.Exit(1)
	}
	bitOK := vecBitEqual(want, coldResp.X)

	// Served warm: every further request replays the cached factor.
	const warmRounds = 5
	var warmTotal int64
	warmCached := true
	for i := 0; i < warmRounds; i++ {
		resp, us, err := solveOnce()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench: served warm solve:", err)
			os.Exit(1)
		}
		warmTotal += us
		bitOK = bitOK && vecBitEqual(want, resp.X)
		warmCached = warmCached && resp.Info.PrecondCached
	}
	warmUs := warmTotal / warmRounds

	// Async round-trip through the job manager, same bits expected.
	asyncOK := false
	if id, err := cl.SolveAsync(ctx, req); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: async solve:", err)
	} else if resp, err := cl.JobWait(ctx, id, time.Millisecond); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: job wait:", err)
	} else {
		asyncOK = vecBitEqual(want, resp.X)
	}

	speedup := 0.0
	if warmUs > 0 {
		speedup = float64(coldUs) / float64(warmUs)
	}
	fmt.Printf("\nSOLVE SUITE — SAP-QR on %dx%d (nnz=%d), %d LSQR iters, GOMAXPROCS=%d\n",
		m, n, a.NNZ(), info.Iters, runtime.GOMAXPROCS(0))
	fmt.Printf("  direct        %8d us\n", directUs)
	fmt.Printf("  served cold   %8d us   (precond built on first request)\n", coldUs)
	fmt.Printf("  served warm   %8d us   (mean of %d, precond cached %v)  %.1fx faster than cold\n",
		warmUs, warmRounds, warmCached, speedup)
	fmt.Printf("  bit-identical %v (sync)   %v (async job)   residual %.3g\n", bitOK, asyncOK, coldResp.Info.Residual)

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench: shutdown:", err)
	}
	cancel()
	<-serveDone

	if *jsonOut != "" {
		rec := solveRecord{
			MatrixM:           m,
			MatrixN:           n,
			NNZ:               a.NNZ(),
			Iters:             info.Iters,
			DirectUs:          directUs,
			ColdUs:            coldUs,
			WarmUs:            warmUs,
			WarmRequests:      warmRounds,
			WarmSpeedup:       speedup,
			BitIdentical:      bitOK,
			WarmPrecondCached: warmCached,
			AsyncBitIdentical: asyncOK,
			Residual:          coldResp.Info.Residual,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}

// vecBitEqual compares two solution vectors by Float64bits.
func vecBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
