// Command spmmbench regenerates the paper's SpMM evaluation: Tables I–VII
// and Figures 4–5. Each experiment prints a table shaped like the paper's;
// absolute times depend on the host, but the qualitative orderings (who
// wins, by roughly what factor) are the reproduction targets recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	spmmbench -all                  # run everything at the default scale
//	spmmbench -table 2 -scale 0.1   # one table, custom matrix scale
//	spmmbench -fig 4                # the Figure 4 density sweep
//	spmmbench -skew -json out.json  # scheduler A/B on skewed inputs
//	spmmbench -serve -clients 8     # concurrent sketch-service replay
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sketchsp/internal/analysis"
	"sketchsp/internal/baseline"
	"sketchsp/internal/bench"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/plot"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

var (
	scale   = flag.Float64("scale", 0.05, "linear matrix scale (1 = paper size; S for the pre-generated baselines needs ~(3n·m·8·scale²) bytes)")
	seed    = flag.Int64("seed", 1, "workload generation seed")
	trials  = flag.Int("trials", 3, "timing trials per cell (best kept)")
	table   = flag.Int("table", 0, "regenerate one table (1–7)")
	fig     = flag.Int("fig", 0, "regenerate one figure (4 or 5)")
	all     = flag.Bool("all", false, "run every table and figure")
	threads = flag.Int("threads", 0, "max worker count for Table VII (0 = 32, the paper's sweep)")
	spyDir  = flag.String("spydir", "", "also write Figure 5 spy plots as PGM images into this directory")
	figDir  = flag.String("figdir", "", "also write Figure 4 as an SVG chart into this directory")
	csvOut  = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	skew    = flag.Bool("skew", false, "run the scheduler A/B suite on skewed sparsity (uniform vs AbnormalB/Banded/power-law)")
	jsonOut = flag.String("json", "", "with -skew or -serve: also write the records as JSON to this file")
)

func main() {
	flag.Parse()
	if !*all && *table == 0 && *fig == 0 && !*skew && !*serve && !*serveHTTP && !*serveShard && !*serveShardFaults && !*byref && !*serveSolve {
		flag.Usage()
		os.Exit(2)
	}
	run := func(id int, f func()) {
		if *all || *table == id {
			f()
		}
	}
	run(1, table1)
	run(2, table2)
	run(3, func() { tableSampleBreakdown(3, core.DefaultBlockNAlg3, "Frontera-config") })
	run(4, table4)
	run(5, func() { tableSampleBreakdown(5, core.DefaultBlockNAlg4, "Perlmutter-config") })
	run(6, table6)
	run(7, table7)
	if *all || *fig == 4 {
		fig4()
	}
	if *all || *fig == 5 {
		fig5()
	}
	if *all || *skew {
		skewSuite()
	}
	if *serve {
		serveSuite()
	}
	if *serveHTTP {
		serveHTTPSuite()
	}
	if *serveShard {
		serveShardSuite()
	}
	if *serveShardFaults {
		serveShardFaultsSuite()
	}
	if *byref {
		byrefSuite()
	}
	if *serveSolve {
		serveSolveSuite()
	}
}

// skewRecord is one (workload, scheduler) measurement of the skew suite —
// the JSON schema consumed by the bench-json Make target. Records from the
// sketch-family A/B carry suite="family" plus the dist/sparsity/speedup
// fields; scheduler A/B records leave them zero.
type skewRecord struct {
	Name      string  `json:"name"`
	Scheduler string  `json:"scheduler"`
	NsOp      int64   `json:"ns_op"`
	GFlops    float64 `json:"gflops"`
	Imbalance float64 `json:"imbalance"`
	Suite     string  `json:"suite,omitempty"`
	Dist      string  `json:"dist,omitempty"`
	Sparsity  int     `json:"sparsity,omitempty"`
	Speedup   float64 `json:"speedup_vs_dense,omitempty"`
}

// skewSuite races the PR-1 uniform shared-channel scheduler against the
// nnz-aware weighted work-stealing scheduler on four sparsity shapes. On a
// uniform matrix the two must tie (the weighted partition degenerates to
// the grid); on the skewed shapes the uniform scheduler's measured
// imbalance approaches the worker count while the weighted one stays near
// 1 — which converts into wall-clock speedup on multi-core hosts (see
// EXPERIMENTS.md for the single-core caveat).
func skewSuite() {
	workers := *threads
	if workers == 0 {
		workers = 8
	}
	m := int(400000 * *scale)
	n := int(30000 * *scale)
	nnz := int(6e6 * *scale)
	if m < 2000 {
		m = 2000
	}
	if n < 300 {
		n = 300
	}
	if nnz < 20000 {
		nnz = 20000
	}
	d := (3 * n) / 5
	density := float64(nnz) / (float64(m) * float64(n))
	inputs := []struct {
		name string
		a    *sparse.CSC
	}{
		{"uniform", sparse.RandomUniform(m, n, density, *seed)},
		{"abnormalB", sparse.AbnormalB(m, n, nnz, 2998.0/3000.0, *seed)},
		{"banded", sparse.Banded(m, n, n/50+1, 0.5, *seed)},
		{"powerlaw-1.6", sparse.PowerLaw(m, n, nnz, 1.6, *seed)},
	}
	scheds := []core.Scheduler{core.SchedUniform, core.SchedNoSteal, core.SchedWeighted}

	t := bench.NewTable(fmt.Sprintf(
		"SKEW SUITE — scheduler A/B at %d workers (GOMAXPROCS=%d on this host; wall-clock speedup needs ≥%d cores)",
		workers, runtime.GOMAXPROCS(0), workers),
		"pattern", "scheduler", "time", "GF/s", "imbalance", "pred.imb", "tasks", "steals", "speedup")
	var records []skewRecord
	for _, in := range inputs {
		var base time.Duration
		for _, sc := range scheds {
			tm := mustTime(in.a, d, core.Options{
				Algorithm: core.Alg3, Seed: uint64(*seed), Workers: workers,
				BlockD: d, BlockN: 500, Sched: sc,
			})
			if sc == core.SchedUniform {
				base = tm.Execute
			}
			speedup := "1.00x"
			if base > 0 && tm.Execute > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(base)/float64(tm.Execute))
			}
			t.AddRow(in.name, sc.String(), tm.Execute,
				fmt.Sprintf("%.2f", tm.Stats.GFlops()),
				fmt.Sprintf("%.2f", tm.Stats.Imbalance),
				fmt.Sprintf("%.2f", tm.PlanStats.PredictedImbalance),
				tm.PlanStats.Tasks, tm.Stats.Steals, speedup)
			records = append(records, skewRecord{
				Name:      in.name,
				Scheduler: sc.String(),
				NsOp:      tm.Execute.Nanoseconds(),
				GFlops:    tm.Stats.GFlops(),
				Imbalance: tm.Stats.Imbalance,
			})
		}
	}
	emit(t)
	records = append(records, familySuite(inputs, d, workers)...)
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}

// familySuite is the sketch-family A/B riding on the skew suite's inputs:
// dense distributions vs SJLT (default s = ⌈√d⌉) vs CountSketch (s = 1) at
// EQUAL sketch dimension d, so the speedup column is purely the scatter
// kernels touching s rows per stored entry instead of d. The wall-time
// ratio tracks d/s minus dispatch overhead — at the suite's d it should
// sit far above the 4x floor recorded in EXPERIMENTS.md.
func familySuite(inputs []struct {
	name string
	a    *sparse.CSC
}, d, workers int) []skewRecord {
	families := []struct {
		label    string
		dist     rng.Distribution
		sparsity int
	}{
		{"dense-uniform", rng.Uniform11, 0},
		{"dense-rademacher", rng.Rademacher, 0},
		{"sjlt-default-s", rng.SJLT, 0},
		{"countsketch", rng.CountSketch, 0},
	}
	t := bench.NewTable(fmt.Sprintf(
		"SKETCH FAMILY A/B — dense vs sparse sketches at equal d=%d, %d workers", d, workers),
		"pattern", "family", "s", "time", "GF/s", "speedup-vs-dense")
	var records []skewRecord
	for _, in := range inputs {
		var base time.Duration
		for _, fam := range families {
			tm := mustTime(in.a, d, core.Options{
				Algorithm: core.Alg3, Dist: fam.dist, Sparsity: fam.sparsity,
				Seed: uint64(*seed), Workers: workers, BlockD: d, BlockN: 500,
			})
			if fam.dist == rng.Uniform11 {
				base = tm.Execute
			}
			speedup := 1.0
			if base > 0 && tm.Execute > 0 {
				speedup = float64(base) / float64(tm.Execute)
			}
			t.AddRow(in.name, fam.label, tm.PlanStats.Sparsity, tm.Execute,
				fmt.Sprintf("%.2f", tm.Stats.GFlops()),
				fmt.Sprintf("%.2fx", speedup))
			records = append(records, skewRecord{
				Name:      in.name,
				Scheduler: core.SchedWeighted.String(),
				NsOp:      tm.Execute.Nanoseconds(),
				GFlops:    tm.Stats.GFlops(),
				Imbalance: tm.Stats.Imbalance,
				Suite:     "family",
				Dist:      fam.dist.String(),
				Sparsity:  tm.PlanStats.Sparsity,
				Speedup:   speedup,
			})
		}
	}
	emit(t)
	return records
}

func workloads() []bench.SpMMWorkload {
	return bench.SpMMWorkloads(*scale, *seed)
}

// table1 prints the properties of the generated stand-ins next to the
// published Table I values.
func table1() {
	t := bench.NewTable("TABLE I — SpMM test data (generated stand-ins at scale "+
		fmt.Sprint(*scale)+"; paper values in parentheses)",
		"Matrices", "d", "m", "n", "nnz(A)", "density", "paper (d, m, n, nnz)")
	for _, w := range workloads() {
		sp := w.Spec
		t.AddRow(w.Name, w.D, w.A.M, w.A.N, w.A.NNZ(),
			fmt.Sprintf("%.2e", w.A.Density()),
			fmt.Sprintf("(%d, %d, %d, %d)", 3*sp.N, sp.M, sp.N, sp.NNZ))
	}
	emit(t)
}

// table2 compares Algorithm 3 against the pre-generated-S library baselines
// (sequential, b_n = 500, b_d = 3000).
func table2() {
	t := bench.NewTable("TABLE II — Algorithm 3 vs library-style SpMM (seconds, sequential)\n"+
		"(the paper's (-1,1) used 32-bit values; our scaled-int column is the closest equivalent)",
		"Matrices", "MKL-style", "Eigen-style", "Julia-style", "Alg3 (-1,1)", "Alg3 (scaled)", "Alg3 (±1)")
	for _, w := range workloads() {
		sk := mustSketcher(w.D, core.Options{
			Seed: uint64(*seed), Workers: 1,
			BlockD: core.DefaultBlockD, BlockN: core.DefaultBlockNAlg3,
		})
		// The baselines read a pre-generated S; generation time is not
		// charged (as in the paper, which favours the baselines).
		s := sk.MaterializeS(w.A.M)
		at := w.A.Transpose().ToCSR()
		out := dense.NewMatrix(w.D, w.A.N)
		tMKL := bench.BestOf(*trials, func() { baseline.MKLStyle(s, at, out) })
		tEigen := bench.BestOf(*trials, func() { baseline.EigenStyle(s, w.A, out) })
		tJulia := bench.BestOf(*trials, func() { baseline.JuliaStyle(s, w.A, out) })
		s = nil // release S before timing the on-the-fly kernels
		at = nil
		runtime.GC()

		t3u := timeSketch(w, core.Alg3, rng.Uniform11, core.DefaultBlockNAlg3)
		t3s := timeSketch(w, core.Alg3, rng.ScaledInt, core.DefaultBlockNAlg3)
		t3p := timeSketch(w, core.Alg3, rng.Rademacher, core.DefaultBlockNAlg3)
		t.AddRow(w.Name, tMKL, tEigen, tJulia, t3u, t3s, t3p)
	}
	emit(t)
}

// tableSampleBreakdown is Tables III and V: total vs sample time for both
// algorithms under one blocking config. Times are steady-state executes of
// a reused plan, so Alg4's conversion is excluded from both columns.
func tableSampleBreakdown(id, bn int, label string) {
	t := bench.NewTable(fmt.Sprintf("TABLE %s — sample vs total time, %s (b_n=%d, b_d=%d)",
		roman(id), label, bn, core.DefaultBlockD),
		"Matrices", "Algorithm", "total time", "sample time")
	for _, alg := range []core.Algorithm{core.Alg3, core.Alg4} {
		name := "Algorithm 3"
		if alg == core.Alg4 {
			name = "Algorithm 4"
		}
		for _, w := range workloads() {
			tm := mustTime(w.A, w.D, core.Options{
				Algorithm: alg, Seed: uint64(*seed), Workers: 1, Timed: true,
				BlockD: core.DefaultBlockD, BlockN: bn,
			})
			t.AddRow(w.Name, name, tm.Stats.Total, tm.Stats.SampleTime)
		}
	}
	emit(t)
}

// table4 is the Perlmutter-style comparison: baselines vs Algorithm 4 with
// the format-conversion time listed separately (b_n = 1200).
func table4() {
	t := bench.NewTable("TABLE IV — Algorithm 4 vs libraries (seconds, sequential, b_n=1200)",
		"Matrices", "Julia-style", "Eigen-style", "Alg4 (-1,1)", "Alg4 (±1)", "format conversion")
	for _, w := range workloads() {
		sk := mustSketcher(w.D, core.Options{
			Seed: uint64(*seed), Workers: 1,
			BlockD: core.DefaultBlockD, BlockN: core.DefaultBlockNAlg4,
		})
		s := sk.MaterializeS(w.A.M)
		out := dense.NewMatrix(w.D, w.A.N)
		tJulia := bench.BestOf(*trials, func() { baseline.JuliaStyle(s, w.A, out) })
		tEigen := bench.BestOf(*trials, func() { baseline.EigenStyle(s, w.A, out) })
		s = nil
		runtime.GC()

		// Conversion cost falls out of the plan stats: it is charged once
		// at plan time, exactly the quantity Table IV lists separately.
		tm4u := mustTime(w.A, w.D, alg4Opts(rng.Uniform11))
		tm4p := mustTime(w.A, w.D, alg4Opts(rng.Rademacher))
		t.AddRow(w.Name, tJulia, tEigen, tm4u.Execute, tm4p.Execute, tm4u.Convert)
	}
	emit(t)
}

// table6 races the two algorithms on the exotic Table VI patterns.
func table6() {
	t := bench.NewTable("TABLE VI — exotic sparsity patterns (seconds)",
		"Problem", "Algorithm", "conversion time", "compute time")
	for _, w := range bench.AbnormalWorkloads(*scale*4, *seed) {
		t3 := timeSketch(w, core.Alg3, rng.Uniform11, core.DefaultBlockNAlg3)
		t.AddRow(w.Name, "Algorithm 3", "N/A", t3)

		tm4 := mustTime(w.A, w.D, alg4Opts(rng.Uniform11))
		t.AddRow(w.Name, "Algorithm 4", tm4.Convert, tm4.Execute)
	}
	emit(t)
	// The AlgAuto inspector's verdicts under this host's measured h
	// (§III-B cost model; see EXPERIMENTS.md).
	h := analysis.EstimateH(1<<22, 1)
	fmt.Printf("AlgAuto inspector picks at measured h = %.2f:\n", h)
	for _, w := range bench.AbnormalWorkloads(*scale*4, *seed) {
		pick := core.ChooseAlgorithm(w.A, w.D, core.Options{}, h, 0)
		fmt.Printf("  %-12s -> %v\n", w.Name, pick)
	}
	fmt.Println()
}

// table7 is the parallel-scaling sweep with the paper's two blocking setups
// on the shar_te2-b2 stand-in. (On a single-core host the sweep runs but
// cannot show speedup; see EXPERIMENTS.md.)
func table7() {
	maxT := *threads
	if maxT == 0 {
		maxT = 32
	}
	ws := workloads()
	w := ws[2] // shar_te2-b2
	setups := []struct {
		name   string
		bd, bn int
	}{
		{"setup1", core.DefaultBlockD, core.DefaultBlockNAlg3},
		{"setup2", w.D, 100}, // taller blocks, narrower slabs: RNG offload
	}
	t := bench.NewTable(fmt.Sprintf(
		"TABLE VII — parallel scaling on %s (GOMAXPROCS=%d on this host)",
		w.Name, runtime.GOMAXPROCS(0)),
		"threads",
		"Alg4/up1 time", "Alg4/up1 GF", "Alg3/up1 time", "Alg3/up1 GF",
		"Alg4/up2 time", "Alg4/up2 GF", "Alg3/up2 time", "Alg3/up2 GF")
	for th := 1; th <= maxT; th *= 2 {
		row := []interface{}{th}
		for _, setup := range setups {
			for _, alg := range []core.Algorithm{core.Alg4, core.Alg3} {
				tm := mustTime(w.A, w.D, core.Options{
					Algorithm: alg, Seed: uint64(*seed),
					Workers: th, BlockD: setup.bd, BlockN: setup.bn,
				})
				row = append(row, tm.Stats.Total, tm.Stats.GFlops())
			}
		}
		// Column order per setup: Alg4 then Alg3, matching the paper.
		t.AddRow(row...)
	}
	emit(t)
}

// fig4 sweeps nonzero density and prints percent-of-peak for the five
// S-generation methods, Algorithm 4 (the paper's Perlmutter experiment).
func fig4() {
	peak := measurePeak()
	fmt.Printf("FIGURE 4 — %% of peak vs density (Algorithm 4; measured peak %.2f GF/s)\n", peak)
	names := []string{"gaussian-fly", "pregen-mem", "(-1,1)-fly", "scaling-trick", "pm1-fly", "junk-bound"}
	t := bench.NewTable("", append([]string{"density"}, names...)...)
	m := int(20000 * *scale * 4)
	n := int(4000 * *scale * 4)
	if m < 2000 {
		m = 2000
	}
	if n < 400 {
		n = 400
	}
	d := 3 * n
	densities := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}
	series := make([]plot.Series, len(names))
	for i := range series {
		series[i].Name = names[i]
	}
	for _, density := range densities {
		a := sparse.RandomUniform(m, n, density, *seed)
		flops := 2 * float64(d) * float64(a.NNZ())
		vals := []float64{
			pctVal(flops, timeSketchD(a, d, rng.Gaussian), peak),
			pctVal(flops, timePregen(a, d), peak),
			pctVal(flops, timeSketchD(a, d, rng.Uniform11), peak),
			pctVal(flops, timeSketchD(a, d, rng.ScaledInt), peak),
			pctVal(flops, timeSketchD(a, d, rng.Rademacher), peak),
			// "junk" upper bound (§V-A): simple addition, no RNG.
			pctVal(flops, timeSketchD(a, d, rng.Junk), peak),
		}
		row := []interface{}{fmt.Sprintf("%.0e", density)}
		for i, v := range vals {
			row = append(row, fmt.Sprintf("%.1f%%", v))
			series[i].X = append(series[i].X, density)
			series[i].Y = append(series[i].Y, v)
		}
		t.AddRow(row...)
	}
	emit(t)
	if *figDir != "" {
		path := *figDir + "/fig4.svg"
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		chart := plot.Chart{
			Title:  "Figure 4 — percent of peak vs density (Algorithm 4)",
			XLabel: "nonzero density", YLabel: "% of peak", LogX: true,
			Series: series,
		}
		if err := chart.WriteSVG(f); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
		}
		f.Close()
		fmt.Printf("(wrote %s)\n", path)
	}
}

// fig5 prints ASCII spy plots of three stand-ins (the paper's Figure 5).
func fig5() {
	ws := workloads()
	for _, idx := range []int{2, 3, 4} { // shar_te2-b2, mesh_deform, cis-n4c6-b4
		w := ws[idx]
		fmt.Printf("FIGURE 5 — sparsity pattern of %s (%dx%d, nnz=%d)\n",
			w.Name, w.A.M, w.A.N, w.A.NNZ())
		fmt.Println(sparse.Spy(w.A, 20, 60))
		if *spyDir != "" {
			path := *spyDir + "/" + w.Name + ".pgm"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spmmbench:", err)
				continue
			}
			if err := sparse.WriteSpyPGM(f, w.A, 400, 400); err != nil {
				fmt.Fprintln(os.Stderr, "spmmbench:", err)
			}
			f.Close()
			fmt.Printf("(wrote %s)\n", path)
		}
	}
}

// ---- helpers ----

// emit prints a table in the selected format.
func emit(t *bench.Table) {
	if *csvOut {
		fmt.Println("# " + t.Title)
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}

func mustSketcher(d int, opts core.Options) *core.Sketcher {
	sk, err := core.NewSketcher(d, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	return sk
}

// mustTime runs bench.TimeSketch (plan once, best-of executes) or exits.
func mustTime(a *sparse.CSC, d int, opts core.Options) bench.SketchTiming {
	tm, err := bench.TimeSketch(a, d, opts, *trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmmbench:", err)
		os.Exit(1)
	}
	return tm
}

// alg4Opts is the standard Table IV/VI Algorithm 4 configuration.
func alg4Opts(dist rng.Distribution) core.Options {
	return core.Options{
		Algorithm: core.Alg4, Dist: dist, Seed: uint64(*seed), Workers: 1,
		BlockD: core.DefaultBlockD, BlockN: core.DefaultBlockNAlg4,
	}
}

func timeSketch(w bench.SpMMWorkload, alg core.Algorithm, dist rng.Distribution, bn int) time.Duration {
	tm := mustTime(w.A, w.D, core.Options{
		Algorithm: alg, Dist: dist, Seed: uint64(*seed), Workers: 1,
		BlockD: core.DefaultBlockD, BlockN: bn,
	})
	return tm.Execute
}

// timeSketchD times an Algorithm 4 steady-state execute (the plan absorbs
// the conversion, matching the figure's compute-only series).
func timeSketchD(a *sparse.CSC, d int, dist rng.Distribution) time.Duration {
	return mustTime(a, d, alg4Opts(dist)).Execute
}

func timePregen(a *sparse.CSC, d int) time.Duration {
	sk := mustSketcher(d, core.Options{Seed: uint64(*seed), Workers: 1})
	s := sk.MaterializeS(a.M)
	out := dense.NewMatrix(d, a.N)
	dt := bench.BestOf(*trials, func() { baseline.EigenStyle(s, a, out) })
	runtime.GC()
	return dt
}

func pctVal(flops float64, dt time.Duration, peakGF float64) float64 {
	if dt <= 0 || peakGF <= 0 {
		return 0
	}
	gf := flops / dt.Seconds() / 1e9
	return 100 * gf / peakGF
}

func measurePeak() float64 {
	res := analysis.RunStream(1<<20, 1)
	return res.PeakGFs
}

func roman(n int) string {
	switch n {
	case 3:
		return "III"
	case 5:
		return "V"
	default:
		return fmt.Sprint(n)
	}
}
