package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sketchsp/internal/bench"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
)

// The -serve mode replays a mixed multi-matrix workload through the
// concurrent sketch service: several client goroutines issue requests whose
// matrix popularity follows a Zipf-ish law (a couple of hot matrices, a
// tail of cold ones), the cache capacity sits below the matrix count so
// evictions keep flowing, and the run ends with the ServiceStats snapshot —
// hit rate, builds/evictions, latency quantiles, per-entry imbalance — plus
// an in-process measurement of the cache-hit path (ns/op, allocs/op,
// mirroring BenchmarkServiceHit). With -json the record set is written out
// (the bench-json Make target appends it to BENCH_PR3.json).

var (
	serve     = flag.Bool("serve", false, "replay a mixed multi-matrix workload through the concurrent sketch service")
	clients   = flag.Int("clients", 8, "with -serve: concurrent client goroutines")
	requests  = flag.Int("requests", 300, "with -serve: total requests replayed")
	cacheCap  = flag.Int("cache", 4, "with -serve: plan-cache capacity (below the matrix count to force evictions)")
	inFlight  = flag.Int("inflight", 0, "with -serve: MaxInFlight admission bound (0 = GOMAXPROCS)")
	hitBenchN = flag.Int("hitbench", 50, "with -serve: iterations of the cache-hit micro-measurement (0 disables)")
)

// serveWorkload is one matrix of the replay mix.
type serveWorkload struct {
	name   string
	a      *sparse.CSC
	d      int
	opts   core.Options
	weight float64 // relative popularity
}

// serveRecord is the JSON schema of a -serve run.
type serveRecord struct {
	Clients     int     `json:"clients"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	CacheCap    int     `json:"cache_capacity"`
	Matrices    int     `json:"matrices"`
	HitRate     float64 `json:"hit_rate"`
	Builds      int64   `json:"builds"`
	Evictions   int64   `json:"evictions"`
	Cancels     int64   `json:"cancels"`
	Rejections  int64   `json:"rejections"`
	WallMS      float64 `json:"wall_ms"`
	ThroughputS float64 `json:"requests_per_s"`
	P50us       int64   `json:"latency_p50_us"`
	P95us       int64   `json:"latency_p95_us"`
	P99us       int64   `json:"latency_p99_us"`
	MeanUS      int64   `json:"latency_mean_us"`
	HitNsOp     int64   `json:"hit_bench_ns_op"`
	HitAllocsOp float64 `json:"hit_bench_allocs_op"`
}

func serveWorkloads() []serveWorkload {
	m := int(200000 * *scale)
	n := int(15000 * *scale)
	nnz := int(3e6 * *scale)
	if m < 2000 {
		m = 2000
	}
	if n < 200 {
		n = 200
	}
	if nnz < 20000 {
		nnz = 20000
	}
	density := float64(nnz) / (float64(m) * float64(n))
	base := core.Options{Algorithm: core.AlgAuto, Seed: uint64(*seed), Sched: core.SchedWeighted}
	mk := func(name string, a *sparse.CSC, weight float64) serveWorkload {
		return serveWorkload{name: name, a: a, d: (3 * a.N) / 5, opts: base, weight: weight}
	}
	// Two hot matrices, a warm middle, a cold tail — with the default
	// -cache 4 the tail keeps evicting the middle while the hot pair stays
	// resident, which is the regime a plan cache is for.
	return []serveWorkload{
		mk("hot-uniform", sparse.RandomUniform(m, n, density, *seed), 8),
		mk("hot-powerlaw", sparse.PowerLaw(m, n, nnz, 1.6, *seed+1), 5),
		mk("warm-banded", sparse.Banded(m/2, n, n/50+1, 0.5, *seed+2), 3),
		mk("warm-uniform-wide", sparse.RandomUniform(m/2, 2*n, density/2, *seed+3), 2),
		mk("cold-abnormalB", sparse.AbnormalB(m/2, n, nnz/2, 2998.0/3000.0, *seed+4), 1),
		mk("cold-uniform-small", sparse.RandomUniform(m/4, n/2, density*2, *seed+5), 1),
	}
}

func serveSuite() {
	wls := serveWorkloads()
	// RequestTimeout stays 0: a service deadline wraps every context in
	// WithTimeout, which allocates and would pollute the cache-hit
	// allocs/op measurement below.
	svc := service.New(service.Config{
		Capacity:    *cacheCap,
		MaxInFlight: *inFlight,
	})
	defer svc.Close()

	// Cumulative popularity table for the Zipf-ish draw.
	cum := make([]float64, len(wls))
	total := 0.0
	for i, w := range wls {
		total += w.weight
		cum[i] = total
	}
	pick := func(r *rand.Rand) int {
		x := r.Float64() * total
		for i, c := range cum {
			if x < c {
				return i
			}
		}
		return len(wls) - 1
	}

	var issued, failed atomic.Int64
	budget := int64(*requests)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(*seed)*1000 + int64(c)))
			outs := make(map[int]*dense.Matrix, len(wls))
			ctx := context.Background()
			for issued.Add(1) <= budget {
				i := pick(r)
				w := wls[i]
				out, ok := outs[i]
				if !ok {
					out = dense.NewMatrix(w.d, w.a.N)
					outs[i] = out
				}
				if _, err := svc.SketchInto(ctx, out, w.a, w.d, w.opts); err != nil {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	st := svc.Stats()

	lookups := st.Hits + st.Misses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(st.Hits) / float64(lookups)
	}
	fmt.Printf("\nSERVE SUITE — %d requests, %d clients, cache %d/%d matrices, GOMAXPROCS=%d\n",
		st.Requests, *clients, *cacheCap, len(wls), runtime.GOMAXPROCS(0))
	fmt.Printf("  wall %v  (%.0f req/s)   hit rate %.1f%%   builds %d   evictions %d   errors %d\n",
		wall.Round(time.Millisecond), float64(st.Requests)/wall.Seconds(),
		100*hitRate, st.Builds, st.Evictions, failed.Load())
	fmt.Printf("  latency mean %v   p50 %v   p95 %v   p99 %v   max %v\n",
		st.LatencyMean, st.LatencyP50, st.LatencyP95, st.LatencyP99, st.LatencyMax)

	t := bench.NewTable("resident cache entries (MRU first)",
		"matrix", "nnz", "d", "alg", "executes", "steals", "imb.mean", "imb.max", "pred.imb")
	for _, e := range st.Entries {
		name := fmt.Sprintf("%dx%d", e.M, e.N)
		for _, w := range wls {
			if w.a.M == e.M && w.a.N == e.N && w.a.NNZ() == e.NNZ {
				name = w.name
				break
			}
		}
		t.AddRow(name, e.NNZ, e.D, e.Plan.Algorithm.String(), e.Executes, e.Steals,
			fmt.Sprintf("%.2f", e.MeanImbalance),
			fmt.Sprintf("%.2f", e.MaxImbalance),
			fmt.Sprintf("%.2f", e.Plan.PredictedImbalance))
	}
	emit(t)

	// Cache-hit micro-measurement: single caller, hottest matrix resident,
	// tight loop — the in-process twin of BenchmarkServiceHit. Allocations
	// are counted via MemStats mallocs, so 0.0 here is the same guarantee
	// the AllocsPerRun test pins.
	var hitNS int64
	var hitAllocs float64
	if *hitBenchN > 0 {
		w := wls[0]
		out := dense.NewMatrix(w.d, w.a.N)
		ctx := context.Background()
		if _, err := svc.SketchInto(ctx, out, w.a, w.d, w.opts); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench: hit bench warmup:", err)
		} else {
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			for i := 0; i < *hitBenchN; i++ {
				if _, err := svc.SketchInto(ctx, out, w.a, w.d, w.opts); err != nil {
					fmt.Fprintln(os.Stderr, "spmmbench: hit bench:", err)
					break
				}
			}
			dt := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			hitNS = dt.Nanoseconds() / int64(*hitBenchN)
			hitAllocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(*hitBenchN)
			fmt.Printf("\ncache-hit path (%s): %d ns/op   %.1f allocs/op over %d iterations\n",
				w.name, hitNS, hitAllocs, *hitBenchN)
		}
	}

	if *jsonOut != "" {
		rec := serveRecord{
			Clients:     *clients,
			Requests:    st.Requests,
			Errors:      failed.Load(),
			CacheCap:    *cacheCap,
			Matrices:    len(wls),
			HitRate:     hitRate,
			Builds:      st.Builds,
			Evictions:   st.Evictions,
			Cancels:     st.Cancels,
			Rejections:  st.Rejections,
			WallMS:      float64(wall.Microseconds()) / 1000,
			ThroughputS: float64(st.Requests) / wall.Seconds(),
			P50us:       st.LatencyP50.Microseconds(),
			P95us:       st.LatencyP95.Microseconds(),
			P99us:       st.LatencyP99.Microseconds(),
			MeanUS:      st.LatencyMean.Microseconds(),
			HitNsOp:     hitNS,
			HitAllocsOp: hitAllocs,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spmmbench:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", *jsonOut)
	}
}
