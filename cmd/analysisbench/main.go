// Command analysisbench exercises the paper's §III performance model:
// it prints the roofline/CI tables (Eqs. 4–7), the √M-over-GEMM headline
// factor, a STREAM bandwidth + RNG-rate measurement of the host (the role
// STREAMBenchmark.jl plays in §V), and a cache-simulator validation showing
// the data movement that on-the-fly generation removes.
//
// Usage:
//
//	analysisbench            # model tables with default parameters
//	analysisbench -stream    # measure this host's bandwidth and RNG rate
//	analysisbench -cachesim  # trace the kernels through the LRU cache model
package main

import (
	"flag"
	"fmt"
	"math"

	"sketchsp/internal/analysis"
	"sketchsp/internal/bench"
	"sketchsp/internal/sparse"
)

var (
	doStream = flag.Bool("stream", false, "run the STREAM-style bandwidth and RNG-rate measurement")
	doCache  = flag.Bool("cachesim", false, "run the cache-simulator validation")
	doModel  = flag.Bool("model", true, "print the roofline-model tables")
	doTune   = flag.Bool("tune", false, "run the b_n auto-tuner demo (§III-B sample-count minimisation)")
	cacheM   = flag.Float64("M", 1<<17, "model cache size in doubles")
	hCost    = flag.Float64("h", 0.05, "relative cost of generating one random number")
	balance  = flag.Float64("B", 40, "machine balance (flops per double moved)")
)

func main() {
	flag.Parse()
	if *doModel {
		modelTables()
	}
	if *doStream {
		stream()
	}
	if *doCache {
		cacheSim()
	}
	if *doTune {
		tune()
	}
}

// tune demonstrates §III-B's "one could tune b_n to minimize the number of
// random variables generated": rank slab widths for Algorithm 4 on a
// row-concentrated matrix, using this host's measured h.
func tune() {
	h := analysis.EstimateH(1<<22, 2)
	fmt.Printf("b_n auto-tuner (measured h = %.3g on this host)\n", h)
	for _, wl := range []struct {
		name string
		a    *sparse.CSC
	}{
		{"uniform 20000x2000 rho=2.5e-3", sparse.RandomUniform(20000, 2000, 2.5e-3, 1)},
		{"dense-rows (Abnormal_A-like)", sparse.AbnormalA(20000, 2000, 200, 2)},
	} {
		d := 3 * wl.a.N
		t := bench.NewTable(wl.name, "b_n", "predicted samples", "model cost")
		for _, r := range analysis.TuneBlockN(wl.a, d, h, nil) {
			t.AddRow(r.BlockN, r.Samples, r.Cost)
		}
		fmt.Println(t)
	}
}

func modelTables() {
	t := bench.NewTable(fmt.Sprintf(
		"§III-A roofline model (M=%.3g doubles, h=%.3g, B=%.3g): optimal blocks and CI vs density",
		*cacheM, *hCost, *balance),
		"rho", "d1*", "m1*", "n1*", "CI", "frac-of-peak", "CI/GEMM-CI")
	for _, rho := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 0.9} {
		m := analysis.Model{M: *cacheM, H: *hCost, Rho: rho, B: *balance}
		d1, m1, n1, ci := m.OptimalBlocks()
		frac := m.FractionOfPeak(ci)
		t.AddRow(fmt.Sprintf("%.0e", rho),
			fmt.Sprintf("%.3g", d1), fmt.Sprintf("%.3g", m1), fmt.Sprintf("%.3g", n1),
			ci, frac, ci/m.GEMMCI())
	}
	fmt.Println(t)

	small := analysis.Model{M: *cacheM, H: *hCost, Rho: 1e-6, B: *balance}
	fmt.Printf("Eq.(5) small-rho CI          : %.4g\n", small.SmallRhoCI())
	fmt.Printf("Eq.(7) large-rho frac-of-peak: %.4g (rho=0.9)\n",
		analysis.Model{M: *cacheM, H: *hCost, Rho: 0.9, B: *balance}.LargeRhoFractionOfPeak())
	hFree := analysis.Model{M: *cacheM, H: 1e-9, Rho: 1e-6, B: *balance}
	fmt.Printf("sqrt(M) headline (h→0)       : speedup over GEMM bound = %.4g (√M/2 = %.4g)\n\n",
		hFree.SpeedupOverGEMMBound(), 0.5*math.Sqrt(*cacheM))
}

func stream() {
	fmt.Println("STREAM-style measurement (best of 3, 16 Mi-double vectors):")
	res := analysis.RunStream(1<<24, 3)
	t := bench.NewTable("", "kernel", "value")
	t.AddRow("copy GB/s", res.CopyGBs)
	t.AddRow("scale GB/s", res.ScaleGBs)
	t.AddRow("add GB/s", res.AddGBs)
	t.AddRow("triad GB/s", res.TriadGBs)
	t.AddRow("RNG short-vector Gsamples/s", res.RNGShortGSs)
	t.AddRow("in-cache peak GF/s", res.PeakGFs)
	t.AddRow("machine balance B", res.MachineBalance())
	// The paper's h: cost of one random number relative to one memory
	// access (one double moved at triad bandwidth).
	if res.RNGShortGSs > 0 && res.TriadGBs > 0 {
		memPerDouble := 8 / (res.TriadGBs * 1e9)
		genPerSample := 1 / (res.RNGShortGSs * 1e9)
		t.AddRow("measured h (gen/memaccess)", genPerSample/memPerDouble)
	}
	fmt.Println(t)
}

func cacheSim() {
	fmt.Println("Cache-simulator validation: one-level LRU, 64-byte lines")
	a := sparse.RandomUniform(2000, 200, 0.02, 1)
	d := 3 * a.N
	t := bench.NewTable(fmt.Sprintf("matrix %dx%d nnz=%d, d=%d, blocks (64, 16)", a.M, a.N, a.NNZ(), d),
		"kernel", "cache lines", "misses", "moved MB", "samples", "CI(h=0.05)")
	for _, lines := range []int{1 << 8, 1 << 10, 1 << 12} {
		for _, k := range []string{"alg3-fly", "alg4-fly", "pregen"} {
			c := analysis.NewCache(lines)
			var tr analysis.Traffic
			switch k {
			case "alg3-fly":
				tr = analysis.TraceAlg3(a, d, 64, 16, c)
			case "alg4-fly":
				tr = analysis.TraceAlg4(a, d, 64, 16, c)
			default:
				tr = analysis.TracePregen(a, d, 64, 16, c)
			}
			t.AddRow(k, lines, tr.Misses, float64(tr.Misses)*64/1e6, tr.Samples, tr.CI(0.05))
		}
	}
	fmt.Println(t)
}
