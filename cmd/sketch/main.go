// Command sketch computes Â = S·A for a MatrixMarket sparse matrix using
// the on-the-fly sketching kernels, writing the dense sketch in
// MatrixMarket array format.
//
// Usage:
//
//	sketch -gamma 3 -dist pm1 -alg 3 in.mtx out.mtx
//	sketch -d 5000 -seed 7 -workers 8 in.mtx out.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

var (
	gamma   = flag.Float64("gamma", 3, "sketch size factor: d = ceil(gamma*n) (ignored if -d is set)")
	dFlag   = flag.Int("d", 0, "explicit sketch size d (rows of S)")
	distF   = flag.String("dist", "uniform", "entry distribution: uniform | pm1 | gaussian | scaled-int | sjlt | countsketch")
	sparsF  = flag.Int("sparsity", 0, "nonzeros per S column for -dist sjlt (0 = ceil(sqrt(d)); countsketch is always 1)")
	algF    = flag.Int("alg", 3, "compute kernel: 3 (kji/CSC) or 4 (jki/blocked CSR)")
	seed    = flag.Uint64("seed", 0, "RNG seed (same seed + blocking → same sketch)")
	source  = flag.String("rng", "xoshiro", "RNG engine: xoshiro | philox (philox is blocking-independent)")
	workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	bn      = flag.Int("bn", 0, "block size b_n (0 = default)")
	bd      = flag.Int("bd", 0, "block size b_d (0 = default)")
	quiet   = flag.Bool("q", false, "suppress the stats line")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: sketch [flags] in.mtx out.mtx")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1)); err != nil {
		fmt.Fprintln(os.Stderr, "sketch:", err)
		os.Exit(1)
	}
}

func run(inPath, outPath string) error {
	a, err := sparse.ReadMatrixMarketFile(inPath)
	if err != nil {
		return err
	}
	d := *dFlag
	if d == 0 {
		d = int(*gamma*float64(a.N) + 0.999999)
	}
	dist, err := rng.ParseDistribution(*distF)
	if err != nil {
		return err
	}
	var alg core.Algorithm
	switch *algF {
	case 3:
		alg = core.Alg3
	case 4:
		alg = core.Alg4
	default:
		return fmt.Errorf("unknown algorithm %d (want 3 or 4)", *algF)
	}
	var src rng.SourceKind
	switch *source {
	case "xoshiro":
		src = rng.SourceBatchXoshiro
	case "philox":
		src = rng.SourcePhilox
	default:
		return fmt.Errorf("unknown rng %q (want xoshiro or philox)", *source)
	}

	sk, err := core.NewSketcher(d, core.Options{
		Algorithm: alg, Dist: dist, Source: src, Seed: *seed,
		BlockN: *bn, BlockD: *bd, Workers: *workers, Sparsity: *sparsF,
	})
	if err != nil {
		return err
	}
	t0 := time.Now()
	ahat, st := sk.Sketch(a)
	if !*quiet {
		fmt.Printf("sketched %dx%d (nnz=%d) -> %dx%d in %v (%.2f GF/s, %d samples, dist=%v, %v)\n",
			a.M, a.N, a.NNZ(), d, a.N, time.Since(t0), st.GFlops(), st.Samples, dist, alg)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := sparse.WriteDenseMatrixMarket(f, ahat.Rows, ahat.Cols, ahat.Data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
