// Command sketchd serves sketch requests over HTTP: a thin shell around
// internal/server wiring flags to the service/server configs and turning
// SIGTERM/SIGINT into a graceful drain — /healthz flips to 503, in-flight
// sketches finish (bounded by -drain-timeout), then the plan cache is
// released. GET /metrics serves the Prometheus text exposition of every
// layer's counters and stage histograms; -pprof additionally mounts
// net/http/pprof under /debug/pprof/.
//
// Quick start:
//
//	sketchd -addr :7464 -cache 64 -max-inflight 8 -max-queue 64
//
// and from Go, sketchsp.NewClient("http://host:7464", sketchsp.ClientConfig{}).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sketchsp/internal/server"
	"sketchsp/internal/service"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:7464", "listen address (host:port)")
		cache          = flag.Int("cache", 32, "plan cache capacity (distinct matrix/option keys)")
		maxInFlight    = flag.Int("max-inflight", 0, "concurrent executes admitted (0 = GOMAXPROCS)")
		maxQueue       = flag.Int("max-queue", 0, "waiters admitted beyond in-flight before load shed (0 = 4x in-flight)")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline cap (0 = none; client header can only tighten)")
		maxBody        = flag.Int64("max-body", 1<<30, "largest accepted request body in bytes")
		maxSketch      = flag.Int64("max-sketch", 1<<30, "largest sketch (8*d*n bytes) a request may demand")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		pprofOn        = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving port")
	)
	flag.Parse()
	if args := flag.Args(); len(args) != 0 {
		fmt.Fprintf(os.Stderr, "sketchd: unexpected arguments %q\n", args)
		flag.Usage()
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Capacity:       *cache,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *requestTimeout,
	})
	srv := server.New(svc, server.Config{
		MaxBodyBytes:   *maxBody,
		MaxSketchBytes: *maxSketch,
		RequestTimeout: *requestTimeout,
		Pprof:          *pprofOn,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sketchd: listen %s: %v", *addr, err)
	}
	log.Printf("sketchd: serving on http://%s (cache=%d inflight=%d queue=%d pprof=%v)",
		l.Addr(), *cache, *maxInFlight, *maxQueue, *pprofOn)

	// Serve until a termination signal, then drain: stop accepting, let
	// in-flight requests finish, and only then release the plan cache.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("sketchd: %v received, draining (timeout %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("sketchd: drain incomplete: %v", err)
		}
		if serveErr := <-errc; serveErr != nil && serveErr != http.ErrServerClosed {
			log.Printf("sketchd: serve: %v", serveErr)
		}
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatalf("sketchd: serve: %v", err)
		}
	}
	svc.Close()
	log.Printf("sketchd: stopped")
}
