// Command sketchd serves sketch requests over HTTP: a thin shell around
// internal/server wiring flags to the service/server configs and turning
// SIGTERM/SIGINT into a graceful drain — /healthz flips to 503, in-flight
// sketches finish (bounded by -drain-timeout), then the plan cache is
// released. GET /metrics serves the Prometheus text exposition of every
// layer's counters and stage histograms; -pprof additionally mounts
// net/http/pprof under /debug/pprof/.
//
// Quick start (single worker):
//
//	sketchd -addr :7464 -cache 64 -max-inflight 8 -max-queue 64
//
// and from Go, sketchsp.NewClient("http://host:7464", sketchsp.ClientConfig{}).
//
// Coordinator mode (-peers): instead of executing locally, the daemon
// splits every request into nnz-balanced column shards, routes each shard
// to a worker by consistent hashing on the shard's matrix fingerprint
// (so re-submitted matrices hit the same workers' plan caches), and
// merges the bit-exact partial sketches:
//
//	sketchd -addr :7464 -peers http://w1:7464,http://w2:7464,http://w3:7464
//
// The coordinator speaks the same protocol as a worker — clients need no
// changes — and /metrics serves the sketchsp_shard_* families instead of
// the local service ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sketchsp/internal/jobs"
	"sketchsp/internal/server"
	"sketchsp/internal/service"
	"sketchsp/internal/shard"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:7464", "listen address (host:port)")
		addrFile       = flag.String("addr-file", "", "write the bound address to this file once listening (for :0 in scripts/tests)")
		cache          = flag.Int("cache", 32, "plan cache capacity (distinct matrix/option keys)")
		maxInFlight    = flag.Int("max-inflight", 0, "concurrent executes admitted (0 = GOMAXPROCS)")
		maxQueue       = flag.Int("max-queue", 0, "waiters admitted beyond in-flight before load shed (0 = 4x in-flight)")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline cap (0 = none; client header can only tighten)")
		maxBody        = flag.Int64("max-body", 1<<30, "largest accepted request body in bytes")
		maxSketch      = flag.Int64("max-sketch", 1<<30, "largest sketch (8*d*n bytes) a request may demand")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		pprofOn        = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving port")
		storeMB        = flag.Int64("store-mb", 0, "content-addressed matrix store budget in MiB (0 = default 256, negative = unbounded)")
		sketchCacheMB  = flag.Int64("sketch-cache-mb", 0, "cached-sketch (Â) budget in MiB for by-reference serving (0 = default 64, negative = unbounded)")
		precondMB      = flag.Int64("precond-cache-mb", 0, "preconditioner-factor cache budget in MiB behind /v1/solve (0 = default 32, negative = unbounded)")

		solveSyncNNZ = flag.Int("solve-sync-nnz", 0, "nnz threshold above which POST /v1/solve queues a job instead of solving inline (0 = default 1M, negative = always async)")
		jobWorkers   = flag.Int("jobs", 0, "concurrent async solve jobs (0 = default 2)")
		jobQueue     = flag.Int("job-queue", 0, "queued async solves before Submit sheds with overloaded (0 = default 64)")
		jobTTL       = flag.Duration("job-ttl", 0, "how long a finished job's result stays fetchable (0 = default 10m)")
		jobResultMB  = flag.Int64("job-results-mb", 0, "summed result budget of finished jobs in MiB (0 = default 256, negative = unbounded)")

		peers         = flag.String("peers", "", "comma-separated worker base URLs; non-empty switches to coordinator mode")
		peersFile     = flag.String("peers-file", "", "file of worker base URLs (newline/comma separated, # comments); switches to coordinator mode, mutually exclusive with -peers")
		peersWatch    = flag.Duration("peers-watch", 2*time.Second, "poll interval for -peers-file membership updates (0 = read once)")
		shards        = flag.Int("shards", 0, "column shards per request in coordinator mode (0 = one per peer)")
		peerCooldown  = flag.Duration("peer-cooldown", 5*time.Second, "how long a failed peer is avoided by shard routing")
		hedgeQuantile = flag.Float64("hedge-quantile", 0, "latency quantile after which a slow shard RPC is hedged to the next peer (0 = off; try 0.95)")
		hedgeMaxDelay = flag.Duration("hedge-max-delay", 100*time.Millisecond, "hedge delay cap, also used while a peer's latency window is cold")
		shardBatch    = flag.Bool("shard-batch", true, "group same-peer shards of a request into one batch frame")

		faultDelay = flag.Duration("fault-delay", 0, "TESTING: delay every sketch on this worker (straggler injection for hedging benchmarks)")
	)
	flag.Parse()
	if args := flag.Args(); len(args) != 0 {
		fmt.Fprintf(os.Stderr, "sketchd: unexpected arguments %q\n", args)
		flag.Usage()
		os.Exit(2)
	}

	// The two modes share every transport knob; they differ only in the
	// Backend behind the handler and in what cleanup runs after the drain.
	var (
		srv     *server.Server
		cleanup func()
		mode    string
	)
	cfg := server.Config{
		MaxBodyBytes:   *maxBody,
		MaxSketchBytes: *maxSketch,
		RequestTimeout: *requestTimeout,
		Pprof:          *pprofOn,
		SolveSyncNNZ:   *solveSyncNNZ,
		Jobs: jobs.Config{
			Workers:        *jobWorkers,
			MaxQueue:       *jobQueue,
			ResultTTL:      *jobTTL,
			MaxResultBytes: *jobResultMB << 20,
		},
	}
	if *peers != "" && *peersFile != "" {
		log.Fatalf("sketchd: -peers and -peers-file are mutually exclusive")
	}
	if *peers != "" || *peersFile != "" {
		var peerList []string
		if *peersFile != "" {
			var err error
			if peerList, err = shard.ReadPeersFile(*peersFile); err != nil {
				log.Fatalf("sketchd: peers-file: %v", err)
			}
		} else {
			for _, p := range strings.Split(*peers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					peerList = append(peerList, p)
				}
			}
		}
		coord, err := shard.New(shard.Config{
			Peers:         peerList,
			Shards:        *shards,
			PeerCooldown:  *peerCooldown,
			HedgeQuantile: *hedgeQuantile,
			HedgeMaxDelay: *hedgeMaxDelay,
			DisableBatch:  !*shardBatch,
			StoreBytes:    *storeMB << 20,
		})
		if err != nil {
			log.Fatalf("sketchd: coordinator: %v", err)
		}
		cfg.Metrics = coord.Registry()
		srv = server.NewBackend(coord, cfg)
		stopWatch := func() {}
		if *peersFile != "" && *peersWatch > 0 {
			stopWatch = coord.WatchPeersFile(*peersFile, *peersWatch)
		}
		cleanup = func() { stopWatch(); coord.Close() }
		mode = fmt.Sprintf("coordinator over %d peers, %d shards/request", len(coord.Peers()), *shards)
	} else {
		svc := service.New(service.Config{
			Capacity:          *cache,
			MaxInFlight:       *maxInFlight,
			MaxQueue:          *maxQueue,
			RequestTimeout:    *requestTimeout,
			StoreBytes:        *storeMB << 20,
			SketchCacheBytes:  *sketchCacheMB << 20,
			PrecondCacheBytes: *precondMB << 20,
		})
		if *faultDelay > 0 {
			// Straggler injection for hedging A/Bs: same service, same
			// handler, every sketch just arrives late. Metrics still come
			// from the real service underneath.
			cfg.Metrics = svc.Registry()
			srv = server.NewBackend(&delayBackend{inner: svc, delay: *faultDelay}, cfg)
			mode = fmt.Sprintf("worker (cache=%d inflight=%d queue=%d fault-delay=%v)", *cache, *maxInFlight, *maxQueue, *faultDelay)
		} else {
			srv = server.New(svc, cfg)
			mode = fmt.Sprintf("worker (cache=%d inflight=%d queue=%d)", *cache, *maxInFlight, *maxQueue)
		}
		cleanup = svc.Close
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sketchd: listen %s: %v", *addr, err)
	}
	if *addrFile != "" {
		// Atomic publish: scripts polling -addr-file never read a partial
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("sketchd: addr-file: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatalf("sketchd: addr-file: %v", err)
		}
	}
	log.Printf("sketchd: serving on http://%s as %s (pprof=%v)", l.Addr(), mode, *pprofOn)

	// Serve until a termination signal, then drain: stop accepting, let
	// in-flight requests finish, and only then release the backend.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("sketchd: %v received, draining (timeout %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("sketchd: drain incomplete: %v", err)
		}
		if serveErr := <-errc; serveErr != nil && serveErr != http.ErrServerClosed {
			log.Printf("sketchd: serve: %v", serveErr)
		}
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatalf("sketchd: serve: %v", err)
		}
	}
	cleanup()
	log.Printf("sketchd: stopped")
}
