package main

import (
	"context"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
)

// delayBackend is the -fault-delay straggler: a real service whose every
// sketch call arrives late. It exists for hedging A/B benchmarks and the
// cluster fault e2e — one worker started with -fault-delay 60ms turns a
// healthy cluster into the tail-at-scale scenario the coordinator's
// hedging is built for, without touching any production code path. The
// sleep is context-aware so a hedged-away (cancelled) request releases
// immediately instead of occupying an execute slot.
type delayBackend struct {
	inner service.Backend
	delay time.Duration
}

func (b *delayBackend) sleep(ctx context.Context) error {
	t := time.NewTimer(b.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (b *delayBackend) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	if err := b.sleep(ctx); err != nil {
		return nil, core.Stats{}, err
	}
	return b.inner.Sketch(ctx, a, d, opts)
}

func (b *delayBackend) SketchBatch(ctx context.Context, reqs []service.Request) []service.Response {
	if err := b.sleep(ctx); err != nil {
		resps := make([]service.Response, len(reqs))
		for i := range resps {
			resps[i] = service.Response{Err: err}
		}
		return resps
	}
	return b.inner.SketchBatch(ctx, reqs)
}

func (b *delayBackend) Close() { b.inner.Close() }
