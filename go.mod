module sketchsp

go 1.22
