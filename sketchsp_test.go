package sketchsp_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"sketchsp"
)

// TestFacadeTypedErrors pins the public error contract: Sketch and NewPlan
// return typed errors — never panic — on d ≤ 0 and on nil or structurally
// empty (zero-value) CSC inputs, matchable with errors.Is.
func TestFacadeTypedErrors(t *testing.T) {
	valid := sketchsp.RandomUniform(100, 20, 0.1, 1)
	cases := []struct {
		name string
		a    *sketchsp.CSC
		d    int
		want error
	}{
		{"nil matrix", nil, 10, sketchsp.ErrNilMatrix},
		{"zero d", valid, 0, sketchsp.ErrInvalidSketchSize},
		{"negative d", valid, -7, sketchsp.ErrInvalidSketchSize},
		{"empty zero-value CSC", &sketchsp.CSC{}, 10, sketchsp.ErrInvalidMatrix},
		{"nil matrix and bad d", nil, -1, sketchsp.ErrNilMatrix},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ahat, _, err := sketchsp.Sketch(tc.a, tc.d, sketchsp.SketchOptions{})
			if !errors.Is(err, tc.want) {
				t.Fatalf("Sketch error = %v, want errors.Is(%v)", err, tc.want)
			}
			if ahat != nil {
				t.Fatal("Sketch returned a matrix alongside an error")
			}
			p, err := sketchsp.NewPlan(tc.a, tc.d, sketchsp.SketchOptions{})
			if !errors.Is(err, tc.want) {
				t.Fatalf("NewPlan error = %v, want errors.Is(%v)", err, tc.want)
			}
			if p != nil {
				t.Fatal("NewPlan returned a plan alongside an error")
			}
		})
	}
}

// TestFacadeService smoke-tests the exported Service surface end to end:
// cache behaviour is visible through ServiceStats and results match the
// one-shot facade path bit for bit.
func TestFacadeService(t *testing.T) {
	svc := sketchsp.NewService(sketchsp.ServiceConfig{Capacity: 4})
	defer svc.Close()
	a := sketchsp.RandomUniform(1500, 80, 0.02, 42)
	d := 120
	opts := sketchsp.SketchOptions{Dist: sketchsp.Rademacher, Seed: 3, Workers: 2}

	want, _, err := sketchsp.Sketch(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		got, _, err := svc.Sketch(ctx, a, d, opts)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for j := 0; j < want.Cols; j++ {
			wc, gc := want.Col(j), got.Col(j)
			for k := range wc {
				if math.Float64bits(wc[k]) != math.Float64bits(gc[k]) {
					t.Fatalf("request %d: bit mismatch at (%d,%d)", i, k, j)
				}
			}
		}
	}
	st := svc.Stats()
	if st.Builds != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats builds/hits/misses = %d/%d/%d, want 1/2/1",
			st.Builds, st.Hits, st.Misses)
	}
	if _, _, err := svc.Sketch(ctx, nil, d, opts); !errors.Is(err, sketchsp.ErrNilMatrix) {
		t.Fatalf("service nil matrix error = %v", err)
	}
}

func TestSketchPublicAPI(t *testing.T) {
	a := sketchsp.RandomUniform(2000, 100, 0.02, 42)
	d := 3 * a.N
	ahat, stats, err := sketchsp.Sketch(a, d, sketchsp.SketchOptions{
		Dist: sketchsp.Rademacher,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ahat.Rows != d || ahat.Cols != a.N {
		t.Fatalf("sketch is %dx%d, want %dx%d", ahat.Rows, ahat.Cols, d, a.N)
	}
	if stats.Flops != 2*int64(d)*int64(a.NNZ()) {
		t.Fatalf("flops %d", stats.Flops)
	}
	if stats.Samples == 0 {
		t.Fatal("no samples generated")
	}
}

func TestSketchInvalidD(t *testing.T) {
	a := sketchsp.RandomUniform(10, 5, 0.3, 1)
	if _, _, err := sketchsp.Sketch(a, 0, sketchsp.SketchOptions{}); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestSketcherAlgorithmsAgreePublic(t *testing.T) {
	a := sketchsp.RandomUniform(500, 60, 0.05, 7)
	d := 2 * a.N
	a3, _, err := sketchsp.Sketch(a, d, sketchsp.SketchOptions{Algorithm: sketchsp.Alg3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a4, _, err := sketchsp.Sketch(a, d, sketchsp.SketchOptions{Algorithm: sketchsp.Alg4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a3.MaxAbsDiff(a4) != 0 {
		t.Fatal("Alg3 and Alg4 sketches differ through the public API")
	}
}

func TestSolveLeastSquaresPublicAPI(t *testing.T) {
	a := sketchsp.RandomUniform(1000, 30, 0.1, 9)
	xTrue := make([]float64, 30)
	for i := range xTrue {
		xTrue[i] = float64(i%5) - 2
	}
	// b = A·x + noise, as in the paper: with a genuinely nonzero residual
	// the backward-error metric is meaningful.
	b := make([]float64, 1000)
	a.MulVec(xTrue, b)
	for i := range b {
		b[i] += math.Sin(float64(i) * 0.7) // deterministic "noise"
	}
	var ref []float64
	for _, m := range []sketchsp.Method{sketchsp.SAPQR, sketchsp.SAPSVD, sketchsp.LSQRD, sketchsp.Direct} {
		x, info, err := sketchsp.SolveLeastSquares(m, a, b, sketchsp.SolveOptions{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !info.Converged {
			t.Fatalf("%v did not converge", m)
		}
		if e := sketchsp.LeastSquaresError(a, x, b); e > 1e-10 {
			t.Fatalf("%v: error metric %g", m, e)
		}
		if ref == nil {
			ref = x
			continue
		}
		for i := range ref {
			if math.Abs(x[i]-ref[i]) > 1e-7*math.Max(1, math.Abs(ref[i])) {
				t.Fatalf("%v: x[%d] = %g, first method says %g", m, i, x[i], ref[i])
			}
		}
	}
}

func TestCOOConstructionPublicAPI(t *testing.T) {
	coo := sketchsp.NewCOO(3, 2, 2)
	coo.Append(0, 0, 1.5)
	coo.Append(2, 1, -2)
	a := coo.ToCSC()
	if a.At(0, 0) != 1.5 || a.At(2, 1) != -2 {
		t.Fatal("COO→CSC round trip broken through facade")
	}
}

func TestNewCSCValidationPublicAPI(t *testing.T) {
	if _, err := sketchsp.NewCSC(2, 2, []int{0, 1}, []int{0}, []float64{1}); err == nil {
		t.Fatal("short ColPtr accepted")
	}
	a, err := sketchsp.NewCSC(2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Fatal("valid CSC rejected")
	}
}

func TestMatrixMarketPublicAPI(t *testing.T) {
	a := sketchsp.RandomUniform(20, 10, 0.2, 3)
	path := t.TempDir() + "/a.mtx"
	if err := sketchsp.WriteMatrixMarketFile(path, a); err != nil {
		t.Fatal(err)
	}
	back, err := sketchsp.ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatal("round trip lost entries")
	}
}

// The γ = 3 effective-distortion story: distortion should be near 1/√3 ≈
// 0.58 for a uniform sketch and must certify the sketch usable (< 1).
func TestEffectiveDistortion(t *testing.T) {
	a := sketchsp.RandomUniform(800, 40, 0.1, 11)
	for _, dist := range []sketchsp.Distribution{sketchsp.Uniform11, sketchsp.Rademacher} {
		dd, err := sketchsp.EffectiveDistortion(a, 3*a.N, sketchsp.SketchOptions{Dist: dist, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if dd <= 0 || dd >= 1 {
			t.Fatalf("%v: distortion %g outside (0,1)", dist, dd)
		}
		if math.Abs(dd-1/math.Sqrt(3)) > 0.35 {
			t.Fatalf("%v: distortion %g far from 1/√3", dist, dd)
		}
	}
	if _, err := sketchsp.EffectiveDistortion(a, a.N, sketchsp.SketchOptions{}); err == nil {
		t.Fatal("d ≤ n accepted for distortion")
	}
}

func TestRandSVDPublicAPI(t *testing.T) {
	a := sketchsp.RandomUniform(300, 40, 0.1, 21)
	res, err := sketchsp.RandSVD(a, 5, 5, 1, sketchsp.SketchOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Rows != 300 || res.U.Cols != 5 || res.V.Rows != 40 || len(res.Sigma) != 5 {
		t.Fatalf("factor shapes: U %dx%d V %dx%d sigma %d",
			res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols, len(res.Sigma))
	}
	for i := 1; i < 5; i++ {
		if res.Sigma[i] > res.Sigma[i-1] {
			t.Fatal("sigma not sorted")
		}
	}
}

func TestLeverageScoresPublicAPI(t *testing.T) {
	a := sketchsp.RandomUniform(500, 25, 0.15, 22)
	scores, err := sketchsp.LeverageScores(a, 64, sketchsp.SolveOptions{Gamma: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 500 {
		t.Fatalf("got %d scores", len(scores))
	}
	var sum float64
	for _, s := range scores {
		if s < 0 {
			t.Fatal("negative leverage score")
		}
		sum += s
	}
	if sum < 25.0/3 || sum > 25*3 {
		t.Fatalf("Σℓ = %g, want ≈ 25", sum)
	}
}

func TestPlanPublicAPI(t *testing.T) {
	a := sketchsp.RandomUniform(2000, 100, 0.02, 42)
	d := 3 * a.N
	opts := sketchsp.SketchOptions{Algorithm: sketchsp.AlgAuto, Seed: 1, Workers: 2}

	p, err := sketchsp.NewPlan(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ps := p.Stats()
	if ps.Algorithm != sketchsp.Alg3 && ps.Algorithm != sketchsp.Alg4 {
		t.Fatalf("plan left AlgAuto unresolved: %v", ps.Algorithm)
	}

	want, _, err := sketchsp.Sketch(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := sketchsp.NewDense(d, a.N)
	for rep := 0; rep < 2; rep++ {
		st, err := p.Execute(got)
		if err != nil {
			t.Fatal(err)
		}
		if st.ConvertTime != 0 {
			t.Fatalf("rep %d: Execute reported ConvertTime %v, want 0 (charged at plan time)", rep, st.ConvertTime)
		}
		if want.MaxAbsDiff(got) != 0 {
			t.Fatalf("rep %d: plan sketch differs from one-shot Sketch", rep)
		}
	}
	if _, err := p.Execute(sketchsp.NewDense(d-1, a.N)); err == nil {
		t.Fatal("dimension mismatch accepted by Plan.Execute")
	}
}
