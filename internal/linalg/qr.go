// Package linalg provides the dense factorizations the sketch-and-precondition
// least-squares solver needs: Householder QR, one-sided Jacobi SVD, and
// condition-number estimation. Everything is stdlib-only and sized for the
// d×n sketches the pipeline produces (d = γ·n for small γ), where O(d·n²)
// algorithms are the right tool.
package linalg

import (
	"fmt"
	"math"

	"sketchsp/internal/dense"
)

// QR is a Householder QR factorization A = Q·R of a tall matrix (rows ≥
// cols). The factored form stores the Householder vectors below the diagonal
// of the input copy and R on and above it, LAPACK-style.
type QR struct {
	fac *dense.Matrix // packed factors, rows×cols
	tau []float64     // Householder scalars, length cols
}

// NewQR computes the QR factorization of a (which is not modified).
// Panics if a has more columns than rows.
func NewQR(a *dense.Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: QR needs rows ≥ cols, got %dx%d", m, n))
	}
	fac := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		col := fac.Col(k)[k:]
		// Householder vector for column k.
		alpha := col[0]
		normx := dense.Nrm2(col)
		if normx == 0 {
			tau[k] = 0
			continue
		}
		beta := -math.Copysign(normx, alpha)
		tauK := (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := 1; i < len(col); i++ {
			col[i] *= scale
		}
		col[0] = beta
		tau[k] = tauK
		// Apply H = I - tau·v·vᵀ to trailing columns (v[0] = 1 implicit).
		for j := k + 1; j < n; j++ {
			cj := fac.Col(j)[k:]
			s := cj[0]
			for i := 1; i < len(col); i++ {
				s += col[i] * cj[i]
			}
			s *= tauK
			cj[0] -= s
			for i := 1; i < len(col); i++ {
				cj[i] -= s * col[i]
			}
		}
	}
	return &QR{fac: fac, tau: tau}
}

// R returns the upper-triangular factor as a fresh n×n matrix.
func (q *QR) R() *dense.Matrix {
	n := q.fac.Cols
	r := dense.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		src := q.fac.Col(j)
		dst := r.Col(j)
		for i := 0; i <= j; i++ {
			dst[i] = src[i]
		}
	}
	return r
}

// RDiagMin returns the smallest absolute diagonal entry of R, a cheap rank /
// conditioning probe.
func (q *QR) RDiagMin() float64 {
	minAbs := math.Inf(1)
	for j := 0; j < q.fac.Cols; j++ {
		if v := math.Abs(q.fac.At(j, j)); v < minAbs {
			minAbs = v
		}
	}
	return minAbs
}

// ApplyQT overwrites b (length rows) with Qᵀ·b.
func (q *QR) ApplyQT(b []float64) {
	m, n := q.fac.Rows, q.fac.Cols
	if len(b) != m {
		panic(fmt.Sprintf("linalg: ApplyQT len(b)=%d, want %d", len(b), m))
	}
	for k := 0; k < n; k++ {
		if q.tau[k] == 0 {
			continue
		}
		col := q.fac.Col(k)[k:]
		seg := b[k:]
		s := seg[0]
		for i := 1; i < len(col); i++ {
			s += col[i] * seg[i]
		}
		s *= q.tau[k]
		seg[0] -= s
		for i := 1; i < len(col); i++ {
			seg[i] -= s * col[i]
		}
	}
}

// ApplyQ overwrites b (length rows) with Q·b (the inverse of ApplyQT).
func (q *QR) ApplyQ(b []float64) {
	m, n := q.fac.Rows, q.fac.Cols
	if len(b) != m {
		panic(fmt.Sprintf("linalg: ApplyQ len(b)=%d, want %d", len(b), m))
	}
	for k := n - 1; k >= 0; k-- {
		if q.tau[k] == 0 {
			continue
		}
		col := q.fac.Col(k)[k:]
		seg := b[k:]
		s := seg[0]
		for i := 1; i < len(col); i++ {
			s += col[i] * seg[i]
		}
		s *= q.tau[k]
		seg[0] -= s
		for i := 1; i < len(col); i++ {
			seg[i] -= s * col[i]
		}
	}
}

// Solve returns the least-squares solution argmin ‖A·x − b‖₂ using the
// factorization: x = R⁻¹ (Qᵀb)[:n]. b is not modified.
func (q *QR) Solve(b []float64) []float64 {
	m, n := q.fac.Rows, q.fac.Cols
	if len(b) != m {
		panic(fmt.Sprintf("linalg: Solve len(b)=%d, want %d", len(b), m))
	}
	qtb := append([]float64(nil), b...)
	q.ApplyQT(qtb)
	x := qtb[:n]
	// Back substitution against the packed R.
	for j := n - 1; j >= 0; j-- {
		rj := q.fac.Col(j)
		if rj[j] == 0 {
			panic("linalg: QR solve on rank-deficient matrix")
		}
		x[j] /= rj[j]
		xj := x[j]
		for i := 0; i < j; i++ {
			x[i] -= rj[i] * xj
		}
	}
	return append([]float64(nil), x...)
}
