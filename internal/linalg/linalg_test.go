package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

func randMat(r *rand.Rand, rows, cols int) *dense.Matrix {
	m := dense.NewMatrix(rows, cols)
	for k := range m.Data {
		m.Data[k] = r.NormFloat64()
	}
	return m
}

func TestQRReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		m, n := 5+r.Intn(30), 2+r.Intn(10)
		if m < n {
			m = n
		}
		a := randMat(r, m, n)
		qr := NewQR(a)
		// Q·R must reproduce A: apply Q to padded R columns.
		rm := qr.R()
		for j := 0; j < n; j++ {
			col := make([]float64, m)
			copy(col, rm.Col(j))
			qr.ApplyQ(col)
			for i := 0; i < m; i++ {
				if math.Abs(col[i]-a.At(i, j)) > 1e-10 {
					t.Fatalf("trial %d: QR reconstruction off at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestQROrthogonality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m, n := 40, 12
	a := randMat(r, m, n)
	qr := NewQR(a)
	// QᵀQ = I: apply Qᵀ then Q to unit vectors and check round trip.
	for k := 0; k < m; k += 7 {
		e := make([]float64, m)
		e[k] = 1
		qr.ApplyQT(e)
		qr.ApplyQ(e)
		for i := 0; i < m; i++ {
			want := 0.0
			if i == k {
				want = 1
			}
			if math.Abs(e[i]-want) > 1e-12 {
				t.Fatalf("Q·Qᵀ·e%d not identity at %d", k, i)
			}
		}
	}
}

func TestQRSolveLeastSquares(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, n := 50, 8
	a := randMat(r, m, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	dense.Gemv(1, a, xTrue, 0, b)
	qr := NewQR(a)
	x := qr.Solve(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestQRSolveResidualOrthogonal(t *testing.T) {
	// For inconsistent systems, the residual must be orthogonal to
	// range(A): Aᵀ(Ax-b) = 0.
	r := rand.New(rand.NewSource(4))
	m, n := 30, 5
	a := randMat(r, m, n)
	b := make([]float64, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x := NewQR(a).Solve(b)
	res := make([]float64, m)
	dense.Gemv(1, a, x, 0, res)
	for i := range res {
		res[i] -= b[i]
	}
	atr := make([]float64, n)
	dense.GemvT(1, a, res, 0, atr)
	if nrm := dense.Nrm2(atr); nrm > 1e-10 {
		t.Fatalf("‖Aᵀr‖ = %g, residual not orthogonal to range", nrm)
	}
}

func TestQRWideMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	NewQR(dense.NewMatrix(2, 5))
}

func TestQRRankDeficientDetectable(t *testing.T) {
	a := dense.NewMatrix(4, 2)
	// Column 1 = 2 × column 0 → rank 1: RDiagMin must collapse to
	// rounding level so callers can detect the deficiency.
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	qr := NewQR(a)
	if qr.RDiagMin() > 1e-12 {
		t.Fatalf("RDiagMin = %g, rank deficiency invisible", qr.RDiagMin())
	}
}

func TestSVDReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		m, n := 6+r.Intn(20), 2+r.Intn(8)
		if m < n {
			m = n
		}
		a := randMat(r, m, n)
		svd := NewSVD(a, 0)
		if rec := svd.Reconstruct(); rec.MaxAbsDiff(a) > 1e-9 {
			t.Fatalf("trial %d: SVD reconstruction off by %g", trial, rec.MaxAbsDiff(a))
		}
	}
}

func TestSVDSingularValuesSortedNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randMat(r, 25, 10)
	svd := NewSVD(a, 0)
	for i, s := range svd.Sigma {
		if s < 0 {
			t.Fatalf("σ[%d] = %g < 0", i, s)
		}
		if i > 0 && s > svd.Sigma[i-1] {
			t.Fatalf("σ not sorted: σ[%d]=%g > σ[%d]=%g", i, s, i-1, svd.Sigma[i-1])
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMat(r, 30, 8)
	svd := NewSVD(a, 0)
	// UᵀU = I
	for i := 0; i < 8; i++ {
		for j := i; j < 8; j++ {
			d := dense.Dot(svd.U.Col(i), svd.U.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-10 {
				t.Fatalf("UᵀU[%d,%d] = %g", i, j, d)
			}
		}
	}
	// VᵀV = I
	for i := 0; i < 8; i++ {
		for j := i; j < 8; j++ {
			d := dense.Dot(svd.V.Col(i), svd.V.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-10 {
				t.Fatalf("VᵀV[%d,%d] = %g", i, j, d)
			}
		}
	}
}

func TestSVDKnownSingularValues(t *testing.T) {
	// Diagonal-ish matrix with known spectrum.
	a := dense.NewMatrix(6, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, 3)
	a.Set(2, 2, 1e-8)
	svd := NewSVD(a, 0)
	want := []float64{5, 3, 1e-8}
	for i, w := range want {
		if math.Abs(svd.Sigma[i]-w) > 1e-12*math.Max(1, w) {
			t.Fatalf("σ[%d] = %g, want %g", i, svd.Sigma[i], w)
		}
	}
	if c := svd.Cond(); math.Abs(c-5e8)/5e8 > 1e-6 {
		t.Fatalf("cond = %g, want 5e8", c)
	}
	if r := svd.Rank(1e-6); r != 2 {
		t.Fatalf("Rank(1e-6) = %d, want 2", r)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Explicit rank-2 matrix in R^{8x4}.
	r := rand.New(rand.NewSource(8))
	u := randMat(r, 8, 2)
	v := randMat(r, 4, 2)
	a := dense.NewMatrix(8, 4)
	dense.Gemm(1, u, v.Transpose(), 0, a)
	svd := NewSVD(a, 0)
	if svd.Sigma[2] > 1e-10*svd.Sigma[0] || svd.Sigma[3] > 1e-10*svd.Sigma[0] {
		t.Fatalf("rank-2 matrix has σ = %v", svd.Sigma)
	}
	if svd.Rank(1e-8) != 2 {
		t.Fatalf("Rank = %d, want 2", svd.Rank(1e-8))
	}
}

func TestSVDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 3+r.Intn(15), 1+r.Intn(6)
		if m < n {
			m = n
		}
		a := randMat(r, m, n)
		svd := NewSVD(a, 0)
		// ‖A‖_F² = Σσ².
		var ss float64
		for _, s := range svd.Sigma {
			ss += s * s
		}
		fn := a.FrobeniusNorm()
		return math.Abs(ss-fn*fn) <= 1e-8*math.Max(1, fn*fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSigmaMaxAgainstSVD(t *testing.T) {
	a := sparse.RandomUniform(200, 30, 0.1, 9)
	got := SigmaMax(a, 200)
	svd := NewSVD(a.ToDense(), 0)
	want := svd.Sigma[0]
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("SigmaMax = %g, SVD says %g", got, want)
	}
}

func TestSigmaMaxEmpty(t *testing.T) {
	if SigmaMax(sparse.NewCOO(5, 5, 0).ToCSC(), 10) != 0 {
		t.Fatal("empty matrix σmax != 0")
	}
}

func TestCondEstimateWellConditioned(t *testing.T) {
	a := sparse.RandomUniform(400, 20, 0.3, 10)
	c := CondEstimate(a)
	// Random tall matrices are well-conditioned: cond in low single digits.
	if c < 1 || c > 50 {
		t.Fatalf("cond estimate %g implausible for random tall matrix", c)
	}
}

func TestCondEstimateScaledColumns(t *testing.T) {
	a := sparse.RandomUniform(300, 10, 0.4, 11)
	// Scale one column down by 1e4: cond should rise to ≈1e4.
	_, vals := a.ColView(5)
	for i := range vals {
		vals[i] *= 1e-4
	}
	c := CondEstimate(a)
	if c < 1e3 || c > 1e6 {
		t.Fatalf("cond estimate %g, want ≈1e4", c)
	}
}

func TestBlockedQRMatchesUnblocked(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, dims := range [][2]int{{10, 5}, {40, 33}, {70, 70}, {200, 90}, {65, 64}} {
		m, n := dims[0], dims[1]
		a := randMat(r, m, n)
		ub := NewQR(a)
		bl := NewQRBlocked(a)
		// Same packed factors (the two algorithms apply identical
		// reflectors, just grouped differently — agreement to rounding).
		if diff := ub.fac.MaxAbsDiff(bl.fac); diff > 1e-11 {
			t.Fatalf("%dx%d: packed factors differ by %g", m, n, diff)
		}
		for j := 0; j < n; j++ {
			if math.Abs(ub.tau[j]-bl.tau[j]) > 1e-12 {
				t.Fatalf("%dx%d: tau[%d] %g vs %g", m, n, j, ub.tau[j], bl.tau[j])
			}
		}
	}
}

func TestBlockedQRSolve(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	m, n := 150, 70
	a := randMat(r, m, n)
	xTrue := randVec(r, n)
	b := make([]float64, m)
	dense.Gemv(1, a, xTrue, 0, b)
	x := NewQRBlocked(a).Solve(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestBlockedQRReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	m, n := 90, 50
	a := randMat(r, m, n)
	qr := NewQRBlocked(a)
	rm := qr.R()
	for j := 0; j < n; j += 7 {
		col := make([]float64, m)
		copy(col, rm.Col(j))
		qr.ApplyQ(col)
		for i := 0; i < m; i++ {
			if math.Abs(col[i]-a.At(i, j)) > 1e-10 {
				t.Fatalf("reconstruction off at (%d,%d)", i, j)
			}
		}
	}
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}
