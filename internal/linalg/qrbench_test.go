package linalg

import (
	"math/rand"
	"testing"
)

func benchQR(b *testing.B, blocked bool) {
	r := rand.New(rand.NewSource(1))
	a := randMat(r, 800, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocked {
			NewQRBlocked(a)
		} else {
			NewQR(a)
		}
	}
}

func BenchmarkQRUnblocked(b *testing.B) { benchQR(b, false) }
func BenchmarkQRBlocked(b *testing.B)   { benchQR(b, true) }
