package linalg

import (
	"fmt"
	"math"

	"sketchsp/internal/dense"
)

// SVD is a thin singular value decomposition A = U·Σ·Vᵀ of a tall matrix
// (rows ≥ cols), computed by one-sided Jacobi rotations — simple, robust for
// the modest n of the d×n sketches, and accurate for small singular values
// (which is why the paper's SAP-SVD path exists at all: near-singular
// problems).
type SVD struct {
	// U is rows×cols with orthonormal columns.
	U *dense.Matrix
	// Sigma holds the singular values in non-increasing order.
	Sigma []float64
	// V is cols×cols orthogonal.
	V *dense.Matrix
}

// NewSVD computes the thin SVD of a (not modified). maxSweeps bounds the
// Jacobi sweeps (20 is ample for double precision; pass 0 for the default).
func NewSVD(a *dense.Matrix, maxSweeps int) *SVD {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: SVD needs rows ≥ cols, got %dx%d", m, n))
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	u := a.Clone()
	v := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	// One-sided Jacobi: orthogonalise pairs of columns of U, accumulating
	// the rotations into V, until all pairs are numerically orthogonal.
	const tol = 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				up, uq := u.Col(p), u.Col(q)
				alpha := dense.Dot(up, up)
				beta := dense.Dot(uq, uq)
				gamma := dense.Dot(up, uq)
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotateCols(up, uq, c, s)
				rotateCols(v.Col(p), v.Col(q), c, s)
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are the column norms of the rotated U; normalise.
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		sigma[j] = dense.Nrm2(u.Col(j))
		if sigma[j] > 0 {
			dense.Scal(1/sigma[j], u.Col(j))
		}
	}

	// Sort σ descending, permuting U and V columns alongside.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if sigma[order[j]] > sigma[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	us := dense.NewMatrix(m, n)
	vs := dense.NewMatrix(n, n)
	sig := make([]float64, n)
	for i, o := range order {
		copy(us.Col(i), u.Col(o))
		copy(vs.Col(i), v.Col(o))
		sig[i] = sigma[o]
	}
	return &SVD{U: us, Sigma: sig, V: vs}
}

// rotateCols applies the Givens rotation [c s; -s c] to the column pair.
func rotateCols(x, y []float64, c, s float64) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// Cond returns σmax/σmin (infinite when σmin is zero).
func (s *SVD) Cond() float64 {
	n := len(s.Sigma)
	if n == 0 {
		return 0
	}
	if s.Sigma[n-1] == 0 {
		return math.Inf(1)
	}
	return s.Sigma[0] / s.Sigma[n-1]
}

// Rank returns the number of singular values above σmax·rtol.
func (s *SVD) Rank(rtol float64) int {
	if len(s.Sigma) == 0 {
		return 0
	}
	thresh := s.Sigma[0] * rtol
	r := 0
	for _, v := range s.Sigma {
		if v > thresh {
			r++
		}
	}
	return r
}

// Reconstruct returns U·Σ·Vᵀ (tests).
func (s *SVD) Reconstruct() *dense.Matrix {
	m, n := s.U.Rows, s.U.Cols
	us := dense.NewMatrix(m, n)
	for j := 0; j < n; j++ {
		copy(us.Col(j), s.U.Col(j))
		dense.Scal(s.Sigma[j], us.Col(j))
	}
	out := dense.NewMatrix(m, n)
	dense.Gemm(1, us, s.V.Transpose(), 0, out)
	return out
}
