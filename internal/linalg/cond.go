package linalg

import (
	"math"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// SigmaMax estimates the largest singular value of a sparse matrix by power
// iteration on AᵀA. iters=0 selects a default that is plenty for the 2–3
// digit accuracy the property tables need.
func SigmaMax(a *sparse.CSC, iters int) float64 {
	if a.M == 0 || a.N == 0 || a.NNZ() == 0 {
		return 0
	}
	if iters <= 0 {
		iters = 60
	}
	v := make([]float64, a.N)
	// Deterministic quasi-random start vector (avoids a seed parameter and
	// is never orthogonal to the top singular vector in practice).
	for i := range v {
		v[i] = math.Sin(float64(i)*1.61803398875 + 0.5)
	}
	u := make([]float64, a.M)
	var sigma float64
	for it := 0; it < iters; it++ {
		a.MulVec(v, u)
		a.MulVecT(u, v)
		nv := dense.Nrm2(v)
		if nv == 0 {
			return 0
		}
		dense.Scal(1/nv, v)
		sigma = math.Sqrt(nv)
	}
	return sigma
}

// CondEstimate estimates cond₂(A) of a sparse tall matrix via a sketch-free
// dense route when n is small, falling back to the SVD of AᵀA's Cholesky-like
// compression: it forms the n×n Gram matrix G = AᵀA densely and takes the
// square root of cond(G). Adequate down to cond(A) ≈ 1e8; beyond that the
// Gram matrix saturates at ~1/ε and the estimate is reported as a lower
// bound, which matches how the extreme Table VIII conditions (1e14–1e18)
// behave in double precision anyway.
func CondEstimate(a *sparse.CSC) float64 {
	n := a.N
	if n == 0 || a.NNZ() == 0 {
		return 0
	}
	g := dense.NewMatrix(n, n)
	// G = AᵀA via column dot products: cols are sorted sparse vectors.
	for i := 0; i < n; i++ {
		ri, vi := a.ColView(i)
		for j := i; j < n; j++ {
			rj, vj := a.ColView(j)
			s := sparseDot(ri, vi, rj, vj)
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	svd := NewSVD(g, 0)
	if svd.Sigma[n-1] <= 0 {
		return math.Inf(1)
	}
	c := math.Sqrt(svd.Sigma[0] / svd.Sigma[n-1])
	// Past ~1e16 the Gram matrix's small eigenvalues are pure rounding
	// noise; anything larger just means "numerically singular".
	if c > 1e16 {
		return math.Inf(1)
	}
	return c
}

// sparseDot computes the dot product of two sorted sparse vectors.
func sparseDot(ri []int, vi []float64, rj []int, vj []float64) float64 {
	var s float64
	p, q := 0, 0
	for p < len(ri) && q < len(rj) {
		switch {
		case ri[p] == rj[q]:
			s += vi[p] * vj[q]
			p++
			q++
		case ri[p] < rj[q]:
			p++
		default:
			q++
		}
	}
	return s
}
