package linalg

import (
	"fmt"

	"sketchsp/internal/dense"
)

// Blocked Householder QR with the compact-WY representation: panels of
// width qrPanel are factored with the unblocked kernel, then the trailing
// matrix is updated as C ← (I − V·T·Vᵀ)ᵀ·C using matrix-matrix products.
// For the d×n sketches the SAP pipeline factors (n in the hundreds to
// thousands) this is several times faster than the column-at-a-time
// update, because the bulk of the flops move into GEMM-shaped loops.

// qrPanel is the panel width; 32 balances panel overhead against update
// efficiency for the sketch shapes in this package.
const qrPanel = 32

// NewQRBlocked computes the same factorization as NewQR using the blocked
// algorithm. The packed representation is identical (Householder vectors
// below the diagonal, R above, tau scalars), so all QR methods apply.
func NewQRBlocked(a *dense.Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: QR needs rows ≥ cols, got %dx%d", m, n))
	}
	fac := a.Clone()
	tau := make([]float64, n)
	q := &QR{fac: fac, tau: tau}

	tbuf := dense.NewMatrix(qrPanel, qrPanel)
	for k := 0; k < n; k += qrPanel {
		nb := qrPanel
		if k+nb > n {
			nb = n - k
		}
		// Factor the panel fac[k:, k:k+nb] with the unblocked kernel.
		panelQR(fac, tau, k, nb)
		if k+nb < n {
			// Build T for the panel's compact-WY form and update the
			// trailing columns.
			t := tbuf.View(0, 0, nb, nb)
			formT(fac, tau, k, nb, t)
			applyWYT(fac, k, nb, t, k+nb, n)
		}
	}
	return q
}

// panelQR runs unblocked Householder QR on fac[k:, k:k+nb], updating only
// the panel's own columns.
func panelQR(fac *dense.Matrix, tau []float64, k, nb int) {
	m := fac.Rows
	for j := k; j < k+nb; j++ {
		col := fac.Col(j)[j:]
		alpha := col[0]
		normx := dense.Nrm2(col)
		if normx == 0 {
			tau[j] = 0
			continue
		}
		beta := -copysign(normx, alpha)
		tauJ := (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := 1; i < len(col); i++ {
			col[i] *= scale
		}
		col[0] = beta
		tau[j] = tauJ
		// Apply to the remaining panel columns only.
		for c := j + 1; c < k+nb; c++ {
			cc := fac.Col(c)[j:]
			s := cc[0]
			for i := 1; i < m-j; i++ {
				s += col[i] * cc[i]
			}
			s *= tauJ
			cc[0] -= s
			for i := 1; i < m-j; i++ {
				cc[i] -= s * col[i]
			}
		}
	}
}

// formT builds the nb×nb upper-triangular T with
// (I − τ₁v₁v₁ᵀ)…(I − τ_nb v_nb v_nbᵀ) = I − V·T·Vᵀ, where V is the panel's
// unit-lower-trapezoidal Householder matrix (LAPACK dlarft, forward
// columnwise).
func formT(fac *dense.Matrix, tau []float64, k, nb int, t *dense.Matrix) {
	m := fac.Rows
	t.Zero()
	for j := 0; j < nb; j++ {
		tj := tau[k+j]
		t.Set(j, j, tj)
		if j == 0 || tj == 0 {
			continue
		}
		// w = −τⱼ · Vᵀ(:, 0:j) · vⱼ  (vⱼ has implicit 1 at row k+j).
		vj := fac.Col(k + j)
		for c := 0; c < j; c++ {
			vc := fac.Col(k + c)
			// Dot over rows k+j … m−1; vc[k+j] is explicit (below its
			// diagonal), vj's leading 1 at row k+j multiplies vc[k+j].
			s := vc[k+j]
			for i := k + j + 1; i < m; i++ {
				s += vc[i] * vj[i]
			}
			t.Set(c, j, -tj*s)
		}
		// T(0:j, j) = T(0:j, 0:j) · w (triangular multiply in place).
		for r := 0; r < j; r++ {
			var s float64
			for c := r; c < j; c++ {
				s += t.At(r, c) * t.At(c, j)
			}
			t.Set(r, j, s)
		}
	}
}

// applyWYT computes C ← (I − V·T·Vᵀ)ᵀ·C = C − V·Tᵀ·Vᵀ·C for the trailing
// columns C = fac[k:, j0:j1], with V the panel at column k. The panel is
// expanded once into an explicit unit-lower-trapezoidal matrix so the two
// large products run through the fused GEMM kernels.
func applyWYT(fac *dense.Matrix, k, nb int, t *dense.Matrix, j0, j1 int) {
	m := fac.Rows
	rows := m - k
	cols := j1 - j0
	// Expand V (rows × nb): copy the panel's strict lower part, unit
	// diagonal, zeros above.
	v := dense.NewMatrix(rows, nb)
	for p := 0; p < nb; p++ {
		src := fac.Col(k + p)
		dst := v.Col(p)
		dst[p] = 1
		copy(dst[p+1:], src[k+p+1:m])
	}
	cview := fac.View(k, j0, rows, cols)

	// W = Vᵀ·C (nb × cols).
	w := dense.NewMatrix(nb, cols)
	dense.GemmTN(1, v, cview, 0, w)

	// W ← Tᵀ·W (T upper triangular ⇒ Tᵀ lower; small, do it in place).
	for c := 0; c < cols; c++ {
		wc := w.Col(c)
		for r := nb - 1; r >= 0; r-- {
			s := 0.0
			for p := 0; p <= r; p++ {
				s += t.At(p, r) * wc[p]
			}
			wc[r] = s
		}
	}

	// C ← C − V·W.
	dense.Gemm(-1, v, w, 1, cview)
}

func copysign(x, y float64) float64 {
	if y < 0 {
		if x < 0 {
			return x
		}
		return -x
	}
	if x < 0 {
		return -x
	}
	return x
}
