package analysis

import (
	"math/rand"
	"testing"
)

func TestLPTAssignBasics(t *testing.T) {
	// Classic LPT instance: weights {7,6,5,4,3} on 2 workers. Greedy trace:
	// 7→w0{7,0}, 6→w1{7,6}, 5→w1{7,11}, 4→w0{11,11}, 3→w0 (tie, lowest
	// index) → {14,11}. Makespan 14 vs the optimum 13 ({7,6} | {5,4,3}) —
	// the canonical instance showing LPT is a 4/3-approximation, not exact.
	weights := []int64{3, 7, 5, 6, 4}
	assign, loads := LPTAssign(weights, 2)
	if len(assign) != 5 || len(loads) != 2 {
		t.Fatalf("shape: assign %d loads %d", len(assign), len(loads))
	}
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != 25 {
		t.Fatalf("loads sum %d, want 25", sum)
	}
	// Per-bin loads must equal the sum of assigned weights.
	check := make([]int64, 2)
	for i, w := range assign {
		if w < 0 || w > 1 {
			t.Fatalf("assign[%d]=%d out of range", i, w)
		}
		check[w] += weights[i]
	}
	for w := range check {
		if check[w] != loads[w] {
			t.Fatalf("bin %d: recomputed %d != reported %d", w, check[w], loads[w])
		}
	}
	if loads[0] != 14 || loads[1] != 11 {
		t.Fatalf("loads %v, want the LPT trace {14, 11}", loads)
	}
}

func TestLPTAssignDeterministicTies(t *testing.T) {
	weights := []int64{5, 5, 5, 5}
	a1, l1 := LPTAssign(weights, 4)
	a2, l2 := LPTAssign(weights, 4)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("LPT assignment not deterministic")
		}
	}
	for w := range l1 {
		if l1[w] != l2[w] || l1[w] != 5 {
			t.Fatalf("loads %v, want all 5", l1)
		}
	}
	// Lowest-index tie-break: the first (equal-weight) task goes to worker 0.
	if a1[0] != 0 {
		t.Fatalf("first task on worker %d, want 0 (lowest-index ties)", a1[0])
	}
}

func TestLPTAssignDegenerate(t *testing.T) {
	if a, l := LPTAssign(nil, 4); len(a) != 0 || len(l) != 4 {
		t.Fatal("empty weights")
	}
	// workers < 1 clamps to 1.
	_, l := LPTAssign([]int64{1, 2, 3}, 0)
	if len(l) != 1 || l[0] != 6 {
		t.Fatalf("workers=0: loads %v", l)
	}
	// More workers than tasks: heaviest tasks land on distinct bins.
	_, l = LPTAssign([]int64{9, 1}, 5)
	nonzero := 0
	for _, v := range l {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Fatalf("loads %v, want 2 nonzero bins", l)
	}
}

func TestLPTBeatsRoundRobinOnSkew(t *testing.T) {
	// One huge task plus many small: round-robin in index order piles the
	// big task together with 1/w of the small ones; LPT isolates it.
	rng := rand.New(rand.NewSource(7))
	weights := make([]int64, 33)
	weights[0] = 10000
	for i := 1; i < len(weights); i++ {
		weights[i] = int64(10 + rng.Intn(90))
	}
	workers := 4
	_, loads := LPTAssign(weights, workers)
	lpt := Imbalance(loads)

	rr := make([]int64, workers)
	for i, w := range weights {
		rr[i%workers] += w
	}
	if rrImb := Imbalance(rr); lpt >= rrImb {
		t.Fatalf("LPT imbalance %.3f not better than round-robin %.3f", lpt, rrImb)
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		loads []int64
		want  float64
	}{
		{[]int64{10, 10, 10, 10}, 1.0},
		{[]int64{40, 0, 0, 0}, 4.0},
		{[]int64{30, 10}, 1.5},
		{[]int64{}, 0},
		{[]int64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := Imbalance(c.loads); got != c.want {
			t.Fatalf("Imbalance(%v) = %g, want %g", c.loads, got, c.want)
		}
	}
}

func TestPredictImbalance(t *testing.T) {
	if PredictImbalance(nil, 8) != 0 {
		t.Fatal("empty weights should predict 0")
	}
	// Perfectly divisible work predicts 1.0.
	if got := PredictImbalance([]int64{5, 5, 5, 5}, 4); got != 1.0 {
		t.Fatalf("uniform prediction %g, want 1.0", got)
	}
	// A single monolithic task on 4 workers cannot be balanced: ratio = 4.
	if got := PredictImbalance([]int64{100}, 4); got != 4.0 {
		t.Fatalf("monolith prediction %g, want 4.0", got)
	}
}
