// Package analysis implements the paper's §III performance model: the
// computational-intensity (CI) optimization of Eq. (4) with its small-ρ and
// large-ρ closed forms (Eqs. 5–7), a STREAM-style bandwidth benchmark for
// estimating machine balance, and a one-level LRU cache simulator that
// measures the actual data movement of the kernels to validate the model.
package analysis

import (
	"fmt"
	"math"
)

// Model carries the §III-A machine/model parameters.
type Model struct {
	// M is the cache size in matrix entries (doubles), the paper's M.
	M float64
	// H is the cost of generating one random number relative to one
	// memory access, the paper's h. The interesting regime is h < 1.
	H float64
	// Rho is the nonzero density of the uniformly sparse matrix.
	Rho float64
	// B is the machine balance: peak flops divided by memory bandwidth
	// in entries/second.
	B float64
}

// Validate checks the model parameters are in the analysable regime.
func (mo Model) Validate() error {
	if mo.M <= 0 || mo.B <= 0 {
		return fmt.Errorf("analysis: M=%g and B=%g must be positive", mo.M, mo.B)
	}
	if mo.Rho < 0 || mo.Rho > 1 {
		return fmt.Errorf("analysis: rho=%g outside [0,1]", mo.Rho)
	}
	if mo.H < 0 {
		return fmt.Errorf("analysis: h=%g negative", mo.H)
	}
	return nil
}

// CI returns the computational intensity of one blocked step with block
// sizes (d1, m1, n1): useful flops divided by (memory movement + h·samples),
// the quantity Eq. (4) maximises. Blocks violating the cache constraint
// d1·n1 + m1·n1·ρ ≤ M return 0.
func (mo Model) CI(d1, m1, n1 float64) float64 {
	if d1 <= 0 || m1 <= 0 || n1 <= 0 {
		return 0
	}
	if d1*n1+m1*n1*mo.Rho > mo.M {
		return 0
	}
	flops := 2 * mo.Rho * d1 * m1 * n1
	cost := mo.M + mo.H*d1*m1*(1-math.Pow(1-mo.Rho, n1))
	return flops / cost
}

// OptimalBlocks numerically minimises the reciprocal CI of Eq. (4) under
// the cache constraint, using the paper's substitution d1 = M/(2·n1),
// m1 = M/(2·n1·ρ) and a log-spaced scan over n1. It returns the optimal
// block sizes and the attained CI.
func (mo Model) OptimalBlocks() (d1, m1, n1, ci float64) {
	if mo.Rho == 0 {
		return mo.M / 2, mo.M / 2, 1, 0
	}
	bestCI := -1.0
	bestN1 := 1.0
	// n1 ranges from 1 to the largest value keeping d1 ≥ 1.
	maxN1 := mo.M / 2
	if maxN1 < 1 {
		maxN1 = 1
	}
	steps := 400
	for i := 0; i <= steps; i++ {
		n1c := math.Exp(math.Log(maxN1) * float64(i) / float64(steps))
		d1c := mo.M / (2 * n1c)
		m1c := mo.M / (2 * n1c * mo.Rho)
		c := mo.CI(d1c, m1c, n1c)
		if c > bestCI {
			bestCI = c
			bestN1 = n1c
		}
	}
	d1 = mo.M / (2 * bestN1)
	m1 = mo.M / (2 * bestN1 * mo.Rho)
	return d1, m1, bestN1, bestCI
}

// SmallRhoCI is Eq. (5): the CI at the optimal n1 = 1 when ρ → 0,
// 2M/(4 + M·h).
func (mo Model) SmallRhoCI() float64 {
	return 2 * mo.M / (4 + mo.M*mo.H)
}

// LargeRhoN1 is the ρ → 1 minimiser n1 = √(h·M)/(2√ρ) from §III-A2.
func (mo Model) LargeRhoN1() float64 {
	return math.Sqrt(mo.H*mo.M) / (2 * math.Sqrt(mo.Rho))
}

// LargeRhoFractionOfPeak is Eq. (7): √(M·ρ)/(2·B·√h), the theoretical
// fraction of machine peak in the dense regime.
func (mo Model) LargeRhoFractionOfPeak() float64 {
	return math.Sqrt(mo.M*mo.Rho) / (2 * mo.B * math.Sqrt(mo.H))
}

// FractionOfPeak converts a CI into a fraction of machine peak under the
// roofline model: min(1, CI/B).
func (mo Model) FractionOfPeak(ci float64) float64 {
	f := ci / mo.B
	if f > 1 {
		return 1
	}
	return f
}

// GEMMCI is the classical √M computational-intensity bound for
// cache-blocked GEMM, the reference Eq. (6) beats by a factor of √M.
func (mo Model) GEMMCI() float64 {
	return math.Sqrt(mo.M)
}

// GEMMFractionOfPeak is the GEMM bound expressed as a fraction of peak
// (√M/B, clamped at 1).
func (mo Model) GEMMFractionOfPeak() float64 {
	f := mo.GEMMCI() / mo.B
	if f > 1 {
		return 1
	}
	return f
}

// SpeedupOverGEMMBound is the headline √M factor of the abstract: the ratio
// of the small-ρ sketching CI (Eq. 5, which with h → 0 tends to M/2) to the
// GEMM CI bound √M — i.e. √M/2 when generation is cheap. CIs are compared
// unclamped: the claim is about admissible data movement, not about any
// particular machine's roofline ceiling.
func (mo Model) SpeedupOverGEMMBound() float64 {
	return mo.SmallRhoCI() / mo.GEMMCI()
}
