package analysis

import (
	"testing"
	"testing/quick"

	"sketchsp/internal/sparse"
)

func TestPredictAlg4SamplesExact(t *testing.T) {
	// Cross-check the O(nnz) predictor against the blocked structure.
	f := func(seed int64, bnRaw uint8) bool {
		a := sparse.RandomUniform(60, 40, 0.08, seed)
		bn := 1 + int(bnRaw)%40
		d := 24
		want := int64(0)
		blocked := sparse.NewBlockedCSR(a, bn)
		for _, blk := range blocked.Blocks {
			for i := 0; i < blk.M; i++ {
				if blk.RowPtr[i+1] > blk.RowPtr[i] {
					want += int64(d)
				}
			}
		}
		return PredictAlg4Samples(a, d, bn) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPredictAlg4MatchesKernelCount(t *testing.T) {
	a := sparse.RandomUniform(300, 90, 0.04, 7)
	d := 60
	bn := 17
	// TraceAlg4 counts the same quantity per (block-row, slab) pair; with
	// a single block row they must agree.
	tr := TraceAlg4(a, d, d, bn, NewCache(1<<12))
	if got := PredictAlg4Samples(a, d, bn); got != tr.Samples {
		t.Fatalf("predictor %d != traced %d", got, tr.Samples)
	}
}

func TestPredictSamplesMonotoneInWidth(t *testing.T) {
	// Wider slabs can only merge nonempty-row sets: samples must be
	// non-increasing as bn doubles through divisors of the count.
	a := sparse.RandomUniform(500, 128, 0.03, 9)
	d := 32
	prev := int64(1 << 62)
	for _, bn := range []int{8, 16, 32, 64, 128} {
		s := PredictAlg4Samples(a, d, bn)
		if s > prev {
			t.Fatalf("samples grew from %d to %d at bn=%d", prev, s, bn)
		}
		prev = s
	}
}

func TestPredictAlg3Samples(t *testing.T) {
	a := sparse.RandomUniform(100, 50, 0.1, 3)
	if got := PredictAlg3Samples(a, 30); got != int64(30*a.NNZ()) {
		t.Fatalf("Alg3 samples %d", got)
	}
	// Alg4 never generates more than Alg3.
	if PredictAlg4Samples(a, 30, 10) > PredictAlg3Samples(a, 30) {
		t.Fatal("Alg4 predictor exceeds Alg3")
	}
}

func TestTuneBlockNRanksByCost(t *testing.T) {
	a := sparse.RandomUniform(2000, 256, 0.01, 5)
	res := TuneBlockN(a, 3*a.N, 0.5, nil)
	if len(res) == 0 {
		t.Fatal("no candidates evaluated")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Cost < res[i-1].Cost {
			t.Fatalf("results not sorted at %d", i)
		}
	}
	// With h > 0 the winner should favour fewer samples: its sample count
	// must be within the candidate minimum.
	minSamples := res[0].Samples
	for _, r := range res {
		if r.Samples < minSamples {
			minSamples = r.Samples
		}
	}
	if res[0].Samples != minSamples {
		t.Fatalf("winner generates %d samples, best candidate %d", res[0].Samples, minSamples)
	}
}

func TestTuneBlockNSkipsBadCandidates(t *testing.T) {
	a := sparse.RandomUniform(50, 20, 0.2, 1)
	res := TuneBlockN(a, 40, 1, []int{-3, 0, 10, 500})
	if len(res) != 1 || res[0].BlockN != 10 {
		t.Fatalf("candidate filtering wrong: %+v", res)
	}
}

func TestDefaultBlockNCandidates(t *testing.T) {
	c := DefaultBlockNCandidates(100)
	if len(c) == 0 || c[len(c)-1] != 100 {
		t.Fatalf("candidates %v must end at n", c)
	}
	if DefaultBlockNCandidates(0) != nil {
		t.Fatal("n=0 should give nil")
	}
	if c := DefaultBlockNCandidates(5); len(c) == 0 {
		t.Fatalf("tiny n gave no candidates: %v", c)
	}
}

func TestEstimateHFinite(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement in -short mode")
	}
	h := EstimateH(1<<18, 1)
	if h <= 0 || h > 1e3 {
		t.Fatalf("implausible h = %g", h)
	}
}
