package analysis

import (
	"fmt"
	"math"
)

// Non-uniform pattern analysis — the paper's §VI names extending §III-A
// beyond uniform densities as future work: "there are certainly other
// well-behaved patterns that can be analyzed". This file carries that out
// for two such families, the row-concentrated and column-concentrated
// patterns of Table VI (Abnormal_A and Abnormal_C), for which the expected
// generation counts have closed forms.

// RowConcentratedModel analyses matrices in which a fraction f of the rows
// are dense (every entry present) and the remaining rows are empty —
// Abnormal_A with stride 1/f. Overall density ρ = f.
type RowConcentratedModel struct {
	// M, H, B as in Model.
	M, H, B float64
	// F is the fraction of dense rows (= the overall density).
	F float64
}

// Validate checks parameters.
func (mo RowConcentratedModel) Validate() error {
	if mo.M <= 0 || mo.B <= 0 {
		return fmt.Errorf("analysis: M=%g and B=%g must be positive", mo.M, mo.B)
	}
	if mo.F <= 0 || mo.F > 1 {
		return fmt.Errorf("analysis: dense-row fraction %g outside (0,1]", mo.F)
	}
	if mo.H < 0 {
		return fmt.Errorf("analysis: h=%g negative", mo.H)
	}
	return nil
}

// CI returns the computational intensity of one (d1, m1, n1) block. For
// this pattern a block's nonzeros all sit in its f·m1 dense rows, so a
// sample-reusing kernel (Algorithm 4) generates d1 values for exactly f·m1
// rows regardless of n1 — unlike the uniform case, where the nonempty-row
// count 1−(1−ρ)^{n1} keeps growing with the slab width. Generation cost per
// flop therefore falls as 1/n1 with NO sparsity-pattern penalty: this is
// the best case for recomputation, which is exactly what Table VI measures
// (Algorithm 4 twice as fast as Algorithm 3 on Abnormal_A).
func (mo RowConcentratedModel) CI(d1, m1, n1 float64) float64 {
	if d1 <= 0 || m1 <= 0 || n1 <= 0 {
		return 0
	}
	// Dense rows of the block occupy f·m1·n1 entries; cache must hold the
	// block of Â plus the nonzeros.
	if d1*n1+mo.F*m1*n1 > mo.M {
		return 0
	}
	flops := 2 * mo.F * d1 * m1 * n1
	cost := mo.M + mo.H*d1*m1*mo.F
	return flops / cost
}

// OptimalBlocks maximises CI under the cache constraint. The structure
// mirrors Model.OptimalBlocks: substitute the binding constraint and scan
// n1.
func (mo RowConcentratedModel) OptimalBlocks() (d1, m1, n1, ci float64) {
	bestCI := -1.0
	bestN1 := 1.0
	maxN1 := mo.M / 2
	steps := 400
	for i := 0; i <= steps; i++ {
		n1c := math.Exp(math.Log(maxN1) * float64(i) / float64(steps))
		d1c := mo.M / (2 * n1c)
		m1c := mo.M / (2 * n1c * mo.F)
		c := mo.CI(d1c, m1c, n1c)
		if c > bestCI {
			bestCI = c
			bestN1 = n1c
		}
	}
	d1 = mo.M / (2 * bestN1)
	m1 = mo.M / (2 * bestN1 * mo.F)
	return d1, m1, bestN1, bestCI
}

// LimitCI is the closed-form n1 → M/(2·d1) limit: as the slab widens, the
// per-flop generation cost vanishes and CI approaches
// 2·f·d1·m1·n1 / (M + h·d1·m1·f) with d1·n1 = M/2, m1·f = d1 — i.e.
// CI → M / (2 + h·M/(2·n1)) → M/2 per entry moved as n1 grows. In the
// fully-amortised limit the kernel is bounded only by moving A and Â once:
// CI_max = M/2·(1/(1 + h·d1/n1·…)) ≈ M/2 for any h — recomputation is
// asymptotically free on this pattern.
func (mo RowConcentratedModel) LimitCI() float64 {
	return mo.M / 2
}

// ColumnConcentratedModel analyses matrices in which a fraction g of the
// columns are dense and the rest empty — Abnormal_C with stride 1/g.
type ColumnConcentratedModel struct {
	M, H, B float64
	// G is the fraction of dense columns (= the overall density).
	G float64
}

// Validate checks parameters.
func (mo ColumnConcentratedModel) Validate() error {
	if mo.M <= 0 || mo.B <= 0 {
		return fmt.Errorf("analysis: M=%g and B=%g must be positive", mo.M, mo.B)
	}
	if mo.G <= 0 || mo.G > 1 {
		return fmt.Errorf("analysis: dense-column fraction %g outside (0,1]", mo.G)
	}
	if mo.H < 0 {
		return fmt.Errorf("analysis: h=%g negative", mo.H)
	}
	return nil
}

// CI for the column-concentrated pattern: every row of every slab that
// contains a dense column is nonempty, so the sample-reusing kernel
// regenerates for ALL m1 rows of every slab containing work — reuse never
// amortises beyond the g·n1 dense columns actually present. With slab
// width n1, samples per block are d1·m1 whenever g·n1 ≥ 1 and the flops
// are only 2·g·d1·m1·n1: the generation term no longer shrinks relative to
// the work as the slab widens. This is the worst case for Algorithm 4 —
// the paper's Table VI shows it losing to Algorithm 3 exactly here.
func (mo ColumnConcentratedModel) CI(d1, m1, n1 float64) float64 {
	if d1 <= 0 || m1 <= 0 || n1 <= 0 {
		return 0
	}
	if d1*n1+mo.G*m1*n1 > mo.M {
		return 0
	}
	flops := 2 * mo.G * d1 * m1 * n1
	// Samples: d1·m1 per slab if it holds at least one dense column
	// (probability min(1, g·n1) of a uniformly placed slab).
	occ := math.Min(1, mo.G*n1)
	cost := mo.M + mo.H*d1*m1*occ
	return flops / cost
}

// SampleRatioVsRowConcentrated quantifies how much more generation the
// column-concentrated pattern forces at equal density and blocking: the
// ratio of expected samples (min(1, g·n1)·m1) to the row-concentrated
// pattern's (f·m1) with f = g.
func (mo ColumnConcentratedModel) SampleRatioVsRowConcentrated(n1 float64) float64 {
	return math.Min(1, mo.G*n1) / mo.G
}
