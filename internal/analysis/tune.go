package analysis

import (
	"fmt"
	"math"

	"sketchsp/internal/sparse"
)

// PredictAlg4Samples counts exactly how many random values Algorithm 4
// would generate for matrix a with sketch size d and slab width bn: for
// every vertical slab, d samples per row that has at least one nonzero in
// that slab (§III-B — the quantity the paper says one could tune b_n to
// minimise). The count is exact and costs O(nnz + m·⌈n/bn⌉) without
// building the blocked structure.
func PredictAlg4Samples(a *sparse.CSC, d, bn int) int64 {
	if bn <= 0 {
		panic(fmt.Sprintf("analysis: PredictAlg4Samples bn=%d", bn))
	}
	lastSeen := make([]int, a.M) // slab index+1 of the last slab touching row i
	var nonempty int64
	nb := (a.N + bn - 1) / bn
	for blk := 0; blk < nb; blk++ {
		j0 := blk * bn
		j1 := j0 + bn
		if j1 > a.N {
			j1 = a.N
		}
		for p := a.ColPtr[j0]; p < a.ColPtr[j1]; p++ {
			r := a.RowIdx[p]
			if lastSeen[r] != blk+1 {
				lastSeen[r] = blk + 1
				nonempty++
			}
		}
	}
	return nonempty * int64(d)
}

// PredictAlg3Samples is the (blocking-independent) sample count of
// Algorithm 3: d per nonzero.
func PredictAlg3Samples(a *sparse.CSC, d int) int64 {
	return int64(d) * int64(a.NNZ())
}

// TuneResult is one evaluated candidate of TuneBlockN.
type TuneResult struct {
	BlockN  int
	Samples int64
	// Cost is the §III-B model cost in "memory-access equivalents":
	// h·samples for generation plus the streaming traffic of A and Â
	// (Â is revisited once per block-row per slab).
	Cost float64
}

// TuneBlockN evaluates candidate slab widths for Algorithm 4 under the
// cost model of §III-B and returns them ranked with the best first. h is
// the relative cost of generating one random value (measure it with
// RunStream; 0 selects 1). The model charges
//
//	cost(bn) = h·samples(bn) + nnz(A)·(1 + d/8) + d·n·⌈hint⌉
//
// where the Â term reflects one streaming pass per slab (the d/8 term is
// the per-nonzero line traffic of updating a d-vector in Â). It is a
// ranking heuristic, not a simulator — use Cache/TraceAlg4 for exact
// traffic.
func TuneBlockN(a *sparse.CSC, d int, h float64, candidates []int) []TuneResult {
	if h <= 0 {
		h = 1
	}
	if len(candidates) == 0 {
		candidates = DefaultBlockNCandidates(a.N)
	}
	out := make([]TuneResult, 0, len(candidates))
	for _, bn := range candidates {
		if bn <= 0 || bn > a.N {
			continue
		}
		samples := PredictAlg4Samples(a, d, bn)
		traffic := float64(a.NNZ()) * (2 + float64(d)/8)
		cost := h*float64(samples) + traffic
		out = append(out, TuneResult{BlockN: bn, Samples: samples, Cost: cost})
	}
	// Insertion sort by cost (few candidates).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Cost < out[j-1].Cost; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DefaultBlockNCandidates returns a log-spaced candidate set in [16, n].
func DefaultBlockNCandidates(n int) []int {
	if n < 1 {
		return nil
	}
	var out []int
	for v := 16; v < n; v *= 2 {
		out = append(out, v)
	}
	out = append(out, n)
	if len(out) == 1 && n >= 1 {
		return []int{n}
	}
	return out
}

// EstimateH measures the paper's h on the current host: the cost of
// generating one uniform sample relative to streaming one double from
// memory (both from RunStream). Values below 1 put the host in the regime
// where on-the-fly generation beats pre-computation (§III-A).
func EstimateH(streamN, reps int) float64 {
	res := RunStream(streamN, reps)
	if res.RNGShortGSs <= 0 || res.TriadGBs <= 0 {
		return math.Inf(1)
	}
	memPerDouble := 8 / (res.TriadGBs * 1e9)
	genPerSample := 1 / (res.RNGShortGSs * 1e9)
	return genPerSample / memPerDouble
}
