package analysis

import (
	"math"
	"testing"

	"sketchsp/internal/sparse"
)

func TestRowConcentratedValidate(t *testing.T) {
	good := RowConcentratedModel{M: 1e5, H: 0.1, B: 10, F: 1e-3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []RowConcentratedModel{
		{M: 0, H: 0.1, B: 10, F: 0.1},
		{M: 1e5, H: 0.1, B: 10, F: 0},
		{M: 1e5, H: 0.1, B: 10, F: 2},
		{M: 1e5, H: -1, B: 10, F: 0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestColumnConcentratedValidate(t *testing.T) {
	if err := (ColumnConcentratedModel{M: 1e5, H: 0.1, B: 10, G: 1e-3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ColumnConcentratedModel{M: 1e5, H: 0.1, B: 10, G: 0}).Validate(); err == nil {
		t.Error("G=0 accepted")
	}
}

// The Table VI mechanism in model form: at equal density, blocking and h,
// the row-concentrated pattern admits strictly higher CI than the
// column-concentrated one once slabs are wider than one dense-column
// spacing.
func TestRowBeatsColumnConcentration(t *testing.T) {
	density := 1e-3
	row := RowConcentratedModel{M: 1 << 17, H: 0.5, B: 10, F: density}
	col := ColumnConcentratedModel{M: 1 << 17, H: 0.5, B: 10, G: density}
	d1, m1, n1 := 256.0, 65536.0, 64.0
	ciRow := row.CI(d1, m1, n1)
	ciCol := col.CI(d1, m1, n1)
	if ciRow <= ciCol {
		t.Fatalf("row CI %g not above column CI %g", ciRow, ciCol)
	}
	// And the sample ratio quantifies why.
	if r := col.SampleRatioVsRowConcentrated(n1); r <= 1 {
		t.Fatalf("sample ratio %g should exceed 1", r)
	}
}

// Recomputation is asymptotically free on dense-row patterns: optimal CI
// approaches the LimitCI M/2 as h shrinks, and stays within a modest factor
// even for h near 1.
func TestRowConcentratedLimit(t *testing.T) {
	mo := RowConcentratedModel{M: 1 << 16, H: 1e-6, B: 10, F: 1e-3}
	_, _, _, ci := mo.OptimalBlocks()
	if ci < 0.4*mo.LimitCI() {
		t.Fatalf("optimal CI %g far below the M/2 limit %g", ci, mo.LimitCI())
	}
	// At h = 1 (generation as expensive as a memory access) the optimum
	// degenerates to the GEMM-like √M/2 intensity — the model's sanity
	// check that recomputation only pays when h < 1.
	moH := RowConcentratedModel{M: 1 << 16, H: 1, B: 10, F: 1e-3}
	_, _, _, ciH := moH.OptimalBlocks()
	gemmLike := math.Sqrt(moH.M) / 2
	if ciH < 0.8*gemmLike || ciH > 1.3*gemmLike {
		t.Fatalf("h=1 CI %g, want ≈ √M/2 = %g", ciH, gemmLike)
	}
}

// Model vs. measurement: the predicted sample counts for the two patterns
// match PredictAlg4Samples on matching synthetic matrices.
func TestNonUniformModelsMatchPredictor(t *testing.T) {
	m, n := 5000, 1000
	d := 300
	stride := 100 // f = 1e-2
	bn := 50

	// Row-concentrated: samples = d × (dense rows) × (slabs), since every
	// dense row is nonempty in every slab.
	rowMat := sparse.AbnormalA(m, n, stride, 1)
	denseRows := (m + stride - 1) / stride
	slabs := (n + bn - 1) / bn
	wantRow := int64(d) * int64(denseRows) * int64(slabs)
	if got := PredictAlg4Samples(rowMat, d, bn); got != wantRow {
		t.Fatalf("row-concentrated samples %d, model says %d", got, wantRow)
	}

	// Column-concentrated with one dense column per slab: every row of
	// every such slab is nonempty → samples = d·m·slabs.
	colMat := sparse.AbnormalC(m, n, bn, 2) // stride = bn → 1 dense col/slab
	wantCol := int64(d) * int64(m) * int64(slabs)
	if got := PredictAlg4Samples(colMat, d, bn); got != wantCol {
		t.Fatalf("column-concentrated samples %d, model says %d", got, wantCol)
	}

	// The measured ratio matches SampleRatioVsRowConcentrated up to the
	// discretisation of dense rows.
	ratioMeasured := float64(wantCol) / float64(wantRow)
	g := 1.0 / float64(bn) // one dense column per bn columns
	model := ColumnConcentratedModel{M: 1, H: 0, B: 1, G: g}
	ratioModel := model.SampleRatioVsRowConcentrated(float64(bn)) *
		float64(m) / float64(denseRows) * g
	if math.Abs(ratioMeasured-ratioModel)/ratioModel > 0.05 {
		t.Fatalf("sample ratio measured %g, model %g", ratioMeasured, ratioModel)
	}
}

func TestColumnConcentratedCacheConstraint(t *testing.T) {
	mo := ColumnConcentratedModel{M: 100, H: 0.1, B: 1, G: 0.5}
	if ci := mo.CI(100, 100, 100); ci != 0 {
		t.Fatalf("constraint-violating block got CI %g", ci)
	}
}
