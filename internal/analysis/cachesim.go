package analysis

import (
	"sketchsp/internal/sparse"
)

// The cache simulator measures the actual data movement of the paper's
// kernels under the §III one-level cache model: a fully associative LRU
// cache of 64-byte lines in front of an infinite memory. Running the access
// trace of Algorithm 3 (on-the-fly S) against the pre-generated-S variant
// shows the traffic the recomputation trick removes, validating Eq. (4)'s
// accounting empirically.

// Cache is a fully associative LRU cache over 64-byte lines.
type Cache struct {
	capacity int
	nodes    map[uint64]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent
	// Misses counts line fills; Accesses counts all touches.
	Misses   int64
	Accesses int64
}

type lruNode struct {
	key        uint64
	prev, next *lruNode
}

// NewCache builds a cache holding `lines` 64-byte lines.
func NewCache(lines int) *Cache {
	if lines < 1 {
		lines = 1
	}
	return &Cache{capacity: lines, nodes: make(map[uint64]*lruNode, lines+1)}
}

// CapacityEntries returns the cache size in float64 entries (the model's M).
func (c *Cache) CapacityEntries() float64 { return float64(c.capacity) * 8 }

// Access touches one 8-byte element at address addr (byte granularity);
// returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> 6
	c.Accesses++
	if n, ok := c.nodes[line]; ok {
		c.moveToFront(n)
		return true
	}
	c.Misses++
	n := &lruNode{key: line}
	c.nodes[line] = n
	c.pushFront(n)
	if len(c.nodes) > c.capacity {
		evict := c.tail
		c.unlink(evict)
		delete(c.nodes, evict.key)
	}
	return false
}

func (c *Cache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// Address-space bases keep the traced arrays from aliasing.
const (
	baseAhat uint64 = 1 << 40
	baseAVal uint64 = 2 << 40
	baseAIdx uint64 = 3 << 40
	baseS    uint64 = 4 << 40
)

// Traffic summarises a traced kernel execution.
type Traffic struct {
	// Misses is the number of 64-byte line fills.
	Misses int64
	// Accesses is the number of element touches.
	Accesses int64
	// Samples is the number of random values generated on the fly.
	Samples int64
	// Flops is the useful floating-point work (2 per multiply-add).
	Flops int64
}

// MovedEntries returns data movement in float64 entries (8 per line).
func (t Traffic) MovedEntries() float64 { return float64(t.Misses) * 8 }

// CI returns the measured computational intensity under the model's
// combined cost: flops / (moved entries + h · samples).
func (t Traffic) CI(h float64) float64 {
	den := t.MovedEntries() + h*float64(t.Samples)
	if den == 0 {
		return 0
	}
	return float64(t.Flops) / den
}

// TraceAlg3 replays Algorithm 3's memory accesses (Â strided updates, CSC
// value+index reads, S regenerated — no S traffic) through the cache with
// outer blocking (bd, bn). The scratch vector v is assumed register/L1
// resident (it is d1 entries, by construction far below cache size).
func TraceAlg3(a *sparse.CSC, d, bd, bn int, cache *Cache) Traffic {
	var tr Traffic
	for j0 := 0; j0 < a.N; j0 += bn {
		j1 := min(a.N, j0+bn)
		for i0 := 0; i0 < d; i0 += bd {
			d1 := min(d, i0+bd) - i0
			for k := j0; k < j1; k++ {
				lo, hi := a.ColPtr[k], a.ColPtr[k+1]
				for p := lo; p < hi; p++ {
					cache.Access(baseAVal + uint64(p)*8)
					cache.Access(baseAIdx + uint64(p)*8)
					tr.Samples += int64(d1)
					colBase := baseAhat + uint64(k)*uint64(d)*8 + uint64(i0)*8
					for i := 0; i < d1; i++ {
						cache.Access(colBase + uint64(i)*8)
					}
					tr.Flops += 2 * int64(d1)
				}
			}
		}
	}
	tr.Misses = cache.Misses
	tr.Accesses = cache.Accesses
	return tr
}

// TraceAlg4 replays Algorithm 4's accesses: per nonempty slab row, one
// generation of d1 samples reused across the row's nonzeros.
func TraceAlg4(a *sparse.CSC, d, bd, bn int, cache *Cache) Traffic {
	var tr Traffic
	blocked := sparse.NewBlockedCSR(a, bn)
	for bk, slab := range blocked.Blocks {
		j0 := blocked.ColStart[bk]
		for i0 := 0; i0 < d; i0 += bd {
			d1 := min(d, i0+bd) - i0
			for j := 0; j < slab.M; j++ {
				lo, hi := slab.RowPtr[j], slab.RowPtr[j+1]
				if lo == hi {
					continue
				}
				tr.Samples += int64(d1)
				for p := lo; p < hi; p++ {
					cache.Access(baseAVal + uint64(p)*8)
					cache.Access(baseAIdx + uint64(p)*8)
					k := j0 + slab.ColIdx[p]
					colBase := baseAhat + uint64(k)*uint64(d)*8 + uint64(i0)*8
					for i := 0; i < d1; i++ {
						cache.Access(colBase + uint64(i)*8)
					}
					tr.Flops += 2 * int64(d1)
				}
			}
		}
	}
	tr.Misses = cache.Misses
	tr.Accesses = cache.Accesses
	return tr
}

// TracePregen replays the pre-generated-S variant: identical to Algorithm 3
// except each sample becomes a memory read of S (d×m column-major), which is
// the traffic recomputation eliminates.
func TracePregen(a *sparse.CSC, d, bd, bn int, cache *Cache) Traffic {
	var tr Traffic
	for j0 := 0; j0 < a.N; j0 += bn {
		j1 := min(a.N, j0+bn)
		for i0 := 0; i0 < d; i0 += bd {
			d1 := min(d, i0+bd) - i0
			for k := j0; k < j1; k++ {
				lo, hi := a.ColPtr[k], a.ColPtr[k+1]
				for p := lo; p < hi; p++ {
					cache.Access(baseAVal + uint64(p)*8)
					cache.Access(baseAIdx + uint64(p)*8)
					j := a.RowIdx[p]
					sColBase := baseS + uint64(j)*uint64(d)*8 + uint64(i0)*8
					colBase := baseAhat + uint64(k)*uint64(d)*8 + uint64(i0)*8
					for i := 0; i < d1; i++ {
						cache.Access(sColBase + uint64(i)*8)
						cache.Access(colBase + uint64(i)*8)
					}
					tr.Flops += 2 * int64(d1)
				}
			}
		}
	}
	tr.Misses = cache.Misses
	tr.Accesses = cache.Accesses
	return tr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
