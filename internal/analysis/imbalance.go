package analysis

import "container/heap"

// This file models parallel load balance for the nnz-aware scheduler the
// planner builds (ISSUE PR 2). The cost of a block task is proportional to
// nnz(slab)·d1 for both Algorithm 3 (d·nnz samples over the slab) and
// Algorithm 4 (the rank-1 update stream is nnz-proportional), so scheduling
// reduces to the classic multiprocessor scheduling problem on integer
// weights. LPTAssign implements the Longest-Processing-Time greedy rule,
// a 4/3-approximation to the optimal makespan, which the planner uses to
// prepack per-worker queues before work stealing smooths out the residual.

// LPTAssign distributes weights over `workers` bins with the LPT greedy
// rule: weights are considered heaviest-first and each goes to the currently
// lightest bin (lowest index on ties, so the assignment is deterministic).
// It returns assign[i] = bin of weights[i] and loads[w] = total weight in
// bin w. workers must be ≥ 1.
func LPTAssign(weights []int64, workers int) (assign []int, loads []int64) {
	if workers < 1 {
		workers = 1
	}
	assign = make([]int, len(weights))
	loads = make([]int64, workers)
	// Sort task indices heaviest-first, stable by index for determinism.
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	// Insertion-friendly stable sort by (-weight, index); task counts are
	// small (O(workers·tasksPerWorker)) so O(k log k) via heap would be
	// overkill relative to clarity — use a simple stable merge via sort.
	stableSortByWeightDesc(order, weights)

	h := make(binHeap, workers)
	for w := 0; w < workers; w++ {
		h[w] = bin{load: 0, idx: w}
	}
	heap.Init(&h)
	for _, i := range order {
		b := h[0]
		assign[i] = b.idx
		b.load += weights[i]
		h[0] = b
		heap.Fix(&h, 0)
	}
	for _, b := range h {
		loads[b.idx] = b.load
	}
	return assign, loads
}

type bin struct {
	load int64
	idx  int
}

// binHeap is a min-heap on (load, idx): ties break toward the lowest worker
// index so LPT assignment is fully deterministic.
type binHeap []bin

func (h binHeap) Len() int { return len(h) }
func (h binHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].idx < h[j].idx
}
func (h binHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *binHeap) Push(x interface{}) { *h = append(*h, x.(bin)) }
func (h *binHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func stableSortByWeightDesc(order []int, weights []int64) {
	// Merge sort on the index slice: stable, O(k log k), no allocation
	// pressure concerns at planner scale.
	tmp := make([]int, len(order))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if weights[order[j]] > weights[order[i]] {
				tmp[k] = order[j]
				j++
			} else {
				tmp[k] = order[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = order[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = order[j]
			j++
			k++
		}
		copy(order[lo:hi], tmp[lo:hi])
	}
	ms(0, len(order))
}

// Imbalance returns max(loads)/mean(loads) — the standard load-imbalance
// ratio (1.0 = perfectly balanced; T workers degrade to ~T when one bin
// holds everything). Returns 0 when loads is empty or all-zero, so callers
// can treat "no work" as undefined rather than balanced.
func Imbalance(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}

// PredictImbalance runs LPT over the task weights and reports the resulting
// load-imbalance ratio — the planner's a-priori estimate of how uneven the
// prepacked queues are before any stealing happens. A prediction near 1.0
// means the partition alone balances the work; a high value flags that the
// executor will lean on work stealing (or that the slab split failed, e.g. a
// single all-heavy column that cannot be subdivided).
func PredictImbalance(weights []int64, workers int) float64 {
	if len(weights) == 0 {
		return 0
	}
	_, loads := LPTAssign(weights, workers)
	return Imbalance(loads)
}
