package analysis

import (
	"time"

	"sketchsp/internal/rng"
)

// StreamResult reports the STREAM-style bandwidth measurements (§V's
// STREAMBenchmark.jl role: estimating the machine's data-movement rate) and
// the short-vector RNG fill rate that decides the Frontera-vs-Perlmutter
// Alg3/Alg4 split.
type StreamResult struct {
	// CopyGBs, ScaleGBs, AddGBs, TriadGBs are the four STREAM kernels'
	// sustained bandwidths in GB/s.
	CopyGBs, ScaleGBs, AddGBs, TriadGBs float64
	// RNGShortGSs is the rate of filling length-10000 vectors with
	// uniform (-1,1) samples, in gigasamples/s (the "short vectors"
	// measurement: blocking means the sketch only ever generates short
	// runs).
	RNGShortGSs float64
	// PeakGFs estimates attainable peak GFLOP/s with an in-cache
	// unrolled FMA loop.
	PeakGFs float64
}

// MachineBalance returns B = peak flops / bandwidth in doubles/s, the
// roofline-model denominator.
func (s StreamResult) MachineBalance() float64 {
	bw := s.TriadGBs * 1e9 / 8 // doubles per second
	if bw == 0 {
		return 0
	}
	return s.PeakGFs * 1e9 / bw
}

// RunStream measures the four STREAM kernels on vectors of n doubles
// (n should exceed the last-level cache; 1<<24 is a reasonable default),
// repeating `reps` times and keeping the best (standard STREAM practice).
func RunStream(n, reps int) StreamResult {
	if n < 1024 {
		n = 1024
	}
	if reps < 1 {
		reps = 3
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1.0
		b[i] = 2.0
		c[i] = 0.0
	}
	const scalar = 3.0
	best := func(bytes float64, f func()) float64 {
		var bestRate float64
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			f()
			dt := time.Since(t0).Seconds()
			if dt > 0 {
				if rate := bytes / dt / 1e9; rate > bestRate {
					bestRate = rate
				}
			}
		}
		return bestRate
	}
	res := StreamResult{}
	res.CopyGBs = best(16*float64(n), func() { copy(c, a) })
	res.ScaleGBs = best(16*float64(n), func() {
		for i := range b {
			b[i] = scalar * c[i]
		}
	})
	res.AddGBs = best(24*float64(n), func() {
		for i := range c {
			c[i] = a[i] + b[i]
		}
	})
	res.TriadGBs = best(24*float64(n), func() {
		for i := range a {
			a[i] = b[i] + scalar*c[i]
		}
	})
	res.RNGShortGSs = measureRNGShort()
	res.PeakGFs = measurePeakFlops()
	return res
}

// measureRNGShort times filling length-10000 vectors (the paper's probe for
// "generating short random vectors", which is what a blocked sketch does).
func measureRNGShort() float64 {
	s := rng.NewSampler(rng.NewBatchXoshiro(1), rng.Uniform11)
	buf := make([]float64, 10000)
	const fills = 2000
	t0 := time.Now()
	for i := 0; i < fills; i++ {
		s.SetState(0, uint64(i))
		s.Fill(buf)
	}
	dt := time.Since(t0).Seconds()
	if dt == 0 {
		return 0
	}
	return float64(fills) * 10000 / dt / 1e9
}

// measurePeakFlops runs an in-cache 8-way unrolled multiply-add loop as a
// rough attainable-peak probe for the roofline ceiling.
func measurePeakFlops() float64 {
	const n = 512 // 4 KiB, L1-resident
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1.0000001
		y[i] = 0.9999999
	}
	var acc0, acc1, acc2, acc3 float64 = 1, 1, 1, 1
	const iters = 20000
	t0 := time.Now()
	for it := 0; it < iters; it++ {
		for i := 0; i+4 <= n; i += 4 {
			acc0 = acc0*x[i] + y[i]
			acc1 = acc1*x[i+1] + y[i+1]
			acc2 = acc2*x[i+2] + y[i+2]
			acc3 = acc3*x[i+3] + y[i+3]
		}
	}
	dt := time.Since(t0).Seconds()
	sink := acc0 + acc1 + acc2 + acc3
	_ = sink
	if dt == 0 {
		return 0
	}
	return 2 * float64(iters) * float64(n) / dt / 1e9
}
