package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"sketchsp/internal/sparse"
)

func TestModelValidate(t *testing.T) {
	good := Model{M: 1e6, H: 0.1, Rho: 0.01, B: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Model{
		{M: 0, H: 0.1, Rho: 0.01, B: 10},
		{M: 1e6, H: -1, Rho: 0.01, B: 10},
		{M: 1e6, H: 0.1, Rho: 2, B: 10},
		{M: 1e6, H: 0.1, Rho: 0.01, B: 0},
	}
	for i, m := range bads {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestCIRespectsCacheConstraint(t *testing.T) {
	m := Model{M: 1000, H: 0.1, Rho: 0.01, B: 10}
	// d1·n1 + m1·n1·ρ must be ≤ M; violate it.
	if ci := m.CI(1000, 1000, 10); ci != 0 {
		t.Fatalf("constraint-violating block got CI %g", ci)
	}
	if ci := m.CI(100, 100, 5); ci <= 0 {
		t.Fatalf("feasible block got CI %g", ci)
	}
}

func TestOptimalBlocksBeatNaive(t *testing.T) {
	m := Model{M: 1 << 17, H: 0.05, Rho: 1e-3, B: 20}
	d1, m1, n1, ci := m.OptimalBlocks()
	if ci <= 0 {
		t.Fatal("no positive CI found")
	}
	// The optimum must beat arbitrary feasible alternatives.
	for _, alt := range [][3]float64{{16, 16, 16}, {100, 1000, 1}, {1000, 100, 8}} {
		if c := m.CI(alt[0], alt[1], alt[2]); c > ci*1.0001 {
			t.Fatalf("alt block %v CI %g beats 'optimal' %g", alt, c, ci)
		}
	}
	// Substitution identities: d1·n1 ≈ M/2 and m1 = d1/ρ.
	if math.Abs(d1*n1-m.M/2) > 1e-6*m.M {
		t.Fatalf("d1·n1 = %g, want M/2 = %g", d1*n1, m.M/2)
	}
	if math.Abs(m1*m.Rho-d1) > 1e-6*d1 {
		t.Fatalf("m1·ρ = %g, want d1 = %g", m1*m.Rho, d1)
	}
}

func TestSmallRhoLimit(t *testing.T) {
	// As ρ → 0 the optimal n1 approaches 1 and CI approaches Eq. (5).
	m := Model{M: 1 << 16, H: 0.1, Rho: 1e-7, B: 10}
	_, _, n1, ci := m.OptimalBlocks()
	if n1 > 2 {
		t.Fatalf("small-ρ optimal n1 = %g, want ≈1", n1)
	}
	want := m.SmallRhoCI()
	if math.Abs(ci-want)/want > 0.05 {
		t.Fatalf("small-ρ CI %g, Eq.(5) predicts %g", ci, want)
	}
}

func TestLargeRhoLimit(t *testing.T) {
	m := Model{M: 1 << 16, H: 0.5, Rho: 0.9, B: 10}
	_, _, n1, _ := m.OptimalBlocks()
	want := m.LargeRhoN1()
	if math.Abs(n1-want)/want > 0.25 {
		t.Fatalf("large-ρ optimal n1 = %g, §III-A2 predicts %g", n1, want)
	}
}

func TestSmallRhoCIFormula(t *testing.T) {
	m := Model{M: 100, H: 0.02, Rho: 1e-6, B: 1}
	// 2·100/(4 + 100·0.02) = 200/6.
	if got := m.SmallRhoCI(); math.Abs(got-200.0/6) > 1e-12 {
		t.Fatalf("SmallRhoCI = %g", got)
	}
}

func TestLargeRhoFractionOfPeakFormula(t *testing.T) {
	m := Model{M: 400, H: 0.25, Rho: 1, B: 10}
	// √(400·1)/(2·10·0.5) = 20/10 = 2 → clamps conceptually at caller.
	if got := m.LargeRhoFractionOfPeak(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("LargeRhoFractionOfPeak = %g", got)
	}
}

// The abstract's √M claim: with h → 0 the sketching CI beats the GEMM CI
// bound by Θ(√M), independent of machine balance.
func TestSqrtMSpeedupClaim(t *testing.T) {
	for _, b := range []float64{10, 100, 1 << 19} {
		m := Model{M: 1 << 20, H: 1e-9, Rho: 1e-6, B: b}
		sp := m.SpeedupOverGEMMBound()
		want := math.Sqrt(m.M) / 2
		if sp < want*0.8 || sp > want*1.2 {
			t.Fatalf("B=%g: speedup over GEMM bound %g, √M/2 = %g", b, sp, want)
		}
	}
}

func TestFractionOfPeakClamps(t *testing.T) {
	m := Model{M: 100, H: 0, Rho: 0.5, B: 1}
	if f := m.FractionOfPeak(1e12); f != 1 {
		t.Fatalf("fraction of peak %g > 1", f)
	}
}

func TestCacheLRUSemantics(t *testing.T) {
	c := NewCache(2) // two 64-byte lines
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(8) {
		t.Fatal("same-line access missed")
	}
	c.Access(64)  // second line
	c.Access(128) // evicts line 0 (LRU)
	if c.Access(0) {
		t.Fatal("evicted line still resident")
	}
	if !c.Access(128) {
		t.Fatal("recent line evicted")
	}
}

func TestCacheAccessCounting(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 100; i++ {
		c.Access(uint64(i) * 8)
	}
	if c.Accesses != 100 {
		t.Fatalf("accesses = %d", c.Accesses)
	}
	// 100 doubles = 800 bytes = 13 lines (ceil(800/64)).
	if c.Misses != 13 {
		t.Fatalf("misses = %d, want 13", c.Misses)
	}
}

// Traffic identity: Alg3 flop count equals 2·d·nnz and samples d·nnz.
func TestTraceAlg3Accounting(t *testing.T) {
	a := sparse.RandomUniform(200, 40, 0.05, 1)
	d := 60
	tr := TraceAlg3(a, d, 30, 10, NewCache(1<<10))
	if tr.Flops != 2*int64(d)*int64(a.NNZ()) {
		t.Fatalf("flops = %d, want %d", tr.Flops, 2*int64(d)*int64(a.NNZ()))
	}
	if tr.Samples != int64(d)*int64(a.NNZ()) {
		t.Fatalf("samples = %d, want %d", tr.Samples, int64(d)*int64(a.NNZ()))
	}
}

// The paper's core claim, measured: with S regenerated on the fly, the
// blocked kernel moves far less data than the pre-generated variant
// whenever S exceeds the cache.
func TestRecomputationReducesTraffic(t *testing.T) {
	a := sparse.RandomUniform(400, 80, 0.03, 2)
	d := 240
	lines := 1 << 9 // 4096 entries: S (d·m = 96000 entries) is far bigger
	bd, bn := 64, 16
	fly := TraceAlg3(a, d, bd, bn, NewCache(lines))
	pre := TracePregen(a, d, bd, bn, NewCache(lines))
	if fly.Misses >= pre.Misses {
		t.Fatalf("on-the-fly misses %d not below pregen %d", fly.Misses, pre.Misses)
	}
	// With cheap generation (h small) the measured CI ordering follows.
	if fly.CI(0.01) <= pre.CI(0.01) {
		t.Fatalf("on-the-fly CI %g not above pregen %g", fly.CI(0.01), pre.CI(0.01))
	}
}

// Alg4 generates strictly fewer samples than Alg3 on the same problem
// (§III-B), at equal flops.
func TestTraceAlg4FewerSamples(t *testing.T) {
	a := sparse.RandomUniform(300, 60, 0.05, 3)
	d := 120
	t3 := TraceAlg3(a, d, 60, 15, NewCache(1<<10))
	t4 := TraceAlg4(a, d, 60, 15, NewCache(1<<10))
	if t3.Flops != t4.Flops {
		t.Fatalf("flop counts differ: %d vs %d", t3.Flops, t4.Flops)
	}
	if t4.Samples >= t3.Samples {
		t.Fatalf("Alg4 samples %d not below Alg3 %d", t4.Samples, t3.Samples)
	}
}

// Property: measured CI never exceeds the model's optimal CI for the same
// effective cache and density (the model is an upper bound in its own
// accounting).
func TestMeasuredCIBelowModelBound(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		a := sparse.RandomUniform(200, 50, 0.05, seed)
		d := 100
		cache := NewCache(1 << 12)
		tr := TraceAlg3(a, d, 50, 10, cache)
		h := 0.05
		model := Model{M: cache.CapacityEntries(), H: h, Rho: a.Density(), B: 1}
		_, _, _, bound := model.OptimalBlocks()
		return tr.CI(h) <= bound*1.5 // slack for integer effects
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRunStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stream benchmark in -short mode")
	}
	res := RunStream(1<<18, 2)
	if res.CopyGBs <= 0 || res.TriadGBs <= 0 {
		t.Fatalf("bandwidths not measured: %+v", res)
	}
	if res.RNGShortGSs <= 0 {
		t.Fatal("RNG rate not measured")
	}
	if res.PeakGFs <= 0 {
		t.Fatal("peak not measured")
	}
	if res.MachineBalance() <= 0 {
		t.Fatal("machine balance not computable")
	}
}
