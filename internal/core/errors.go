package core

import (
	"errors"
	"fmt"

	"sketchsp/internal/sparse"
)

// Typed errors for the construction and execution surfaces. Callers match
// them with errors.Is; the concrete messages wrap these sentinels with the
// offending values. The facade re-exports them, so a serving layer can
// classify a failed request (bad argument vs closed plan) without string
// matching.
var (
	// ErrNilMatrix is returned when the sparse input matrix is nil.
	ErrNilMatrix = errors.New("core: nil input matrix")
	// ErrInvalidSketchSize is returned when the sketch size d is not
	// positive.
	ErrInvalidSketchSize = errors.New("core: sketch size must be positive")
	// ErrInvalidMatrix is returned when the CSC input is structurally
	// broken — e.g. the zero value &CSC{}, whose ColPtr is nil instead of
	// the required N+1-length prefix-sum array. (Degenerate but *valid*
	// shapes — 0×n, m×0, empty columns — are not errors; they sketch to
	// zero blocks.)
	ErrInvalidMatrix = errors.New("core: structurally invalid CSC matrix")
	// ErrBadOptions is returned for out-of-domain Options fields
	// (negative block sizes or worker counts, unknown scheduler).
	ErrBadOptions = errors.New("core: invalid options")
	// ErrPlanClosed is returned by Execute on a plan whose references have
	// all been released (or that was Closed directly).
	ErrPlanClosed = errors.New("core: plan is closed")
)

// quickValidate performs the cheap structural checks NewPlan relies on. The
// full O(nnz) CSC.Validate is the constructor's job; here we only reject
// inputs whose compressed arrays are inconsistent enough to make the
// planner or the kernels index out of bounds — the zero-value &CSC{} with
// its nil ColPtr, a ColPtr that does not cover all N columns, mismatched
// nnz arrays, or a non-monotone ColPtr whose column ranges index past the
// entry arrays (endpoints alone pass e.g. [0, 5, 2] with nnz=2, yet column
// 0 would read RowIdx[0:5] of a length-2 array). The scan is O(N) over
// ColPtr; it never walks the entries.
func quickValidate(a *sparse.CSC) error {
	switch {
	case a.M < 0 || a.N < 0:
		return fmt.Errorf("%w: negative dims %dx%d", ErrInvalidMatrix, a.M, a.N)
	case len(a.ColPtr) != a.N+1:
		return fmt.Errorf("%w: ColPtr len %d want %d", ErrInvalidMatrix, len(a.ColPtr), a.N+1)
	case a.ColPtr[0] != 0:
		return fmt.Errorf("%w: ColPtr[0]=%d want 0", ErrInvalidMatrix, a.ColPtr[0])
	case len(a.RowIdx) != len(a.Val):
		return fmt.Errorf("%w: len(RowIdx)=%d != len(Val)=%d", ErrInvalidMatrix, len(a.RowIdx), len(a.Val))
	case a.ColPtr[a.N] != len(a.Val):
		return fmt.Errorf("%w: ColPtr[N]=%d != nnz=%d", ErrInvalidMatrix, a.ColPtr[a.N], len(a.Val))
	}
	for j := 0; j < a.N; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] || a.ColPtr[j] < 0 || a.ColPtr[j+1] > len(a.RowIdx) {
			return fmt.Errorf("%w: ColPtr out of range at col %d", ErrInvalidMatrix, j)
		}
	}
	return nil
}
