package core

import (
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Metamorphic identities of the sketch Â = S·A. Unlike the golden pins
// (golden_test.go), these need no stored expectations: they assert relations
// that must hold between sketches of *related* inputs, so they keep working
// when the RNG stream legitimately changes — and they cover the full
// algorithm × scheduler × workers grid where golden vectors would explode.
//
// Exactness discipline. The kernels re-anchor the generator per (block row,
// global sparse row), so an entry S[i,j] is a pure function of (seed, d,
// BlockD, i, j) — it cannot depend on which columns of A are present, on
// BlockN, or on who executed the task. That makes column-slab consistency
// and zero-column invariance BIT-exact for every distribution. Linearity
// S·(A₁+A₂) = S·A₁ + S·A₂ additionally reorders floating-point additions,
// so it is bit-exact only when the arithmetic is: Rademacher (±1) and
// ScaledInt (int32 entries, power-of-two pre-scale) against small-integer
// A values keep every product and partial sum exactly representable;
// uniform and gaussian get a ulp-distance tolerance instead.

// metaGrid is the configuration grid every identity is checked on.
var (
	metaAlgs    = []Algorithm{Alg3, Alg4, AlgAuto}
	metaScheds  = []Scheduler{SchedWeighted, SchedNoSteal, SchedUniform}
	metaWorkers = []int{1, 2, 8}
)

// metaSparsity picks the test sparsity per distribution: s=4 for SJLT so
// the nonzero magnitude 1/√s = 0.5 is a power of two and linearity stays
// bit-exact (CountSketch is pinned to s=1, ±1, always exact); 0 for the
// dense distributions.
func metaSparsity(dist rng.Distribution) int {
	if dist == rng.SJLT {
		return 4
	}
	return 0
}

// patternedPair builds two matrices on one shared sparsity pattern with
// small-integer values, plus their exact sum. Shared pattern keeps the sum's
// pattern identical too, so all three sketches accumulate the same rows in
// the same order; values in {-4..4} keep ScaledInt/Rademacher arithmetic
// exact (products stay far below 2^53).
func patternedPair(m, n, perCol int, seed int64) (a1, a2, sum *sparse.CSC) {
	rnd := rand.New(rand.NewSource(seed))
	c1 := sparse.NewCOO(m, n, n*perCol)
	c2 := sparse.NewCOO(m, n, n*perCol)
	cs := sparse.NewCOO(m, n, n*perCol)
	for j := 0; j < n; j++ {
		for _, i := range rnd.Perm(m)[:perCol] {
			v1 := float64(rnd.Intn(9) - 4)
			v2 := float64(rnd.Intn(9) - 4)
			c1.Append(i, j, v1)
			c2.Append(i, j, v2)
			cs.Append(i, j, v1+v2)
		}
	}
	return c1.ToCSC(), c2.ToCSC(), cs.ToCSC()
}

// ulpDist is the number of representable float64 values between a and b:
// the bit patterns reinterpreted on the two's-complement number line, where
// adjacent floats (of either sign) differ by exactly 1. Equal values — and
// +0 vs -0 — report 0.
func ulpDist(a, b float64) uint64 {
	ia := int64(math.Float64bits(a))
	ib := int64(math.Float64bits(b))
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	if ia < ib {
		return uint64(ib - ia)
	}
	return uint64(ia - ib)
}

// TestMetamorphicLinearity: sketching is linear in A. With a shared
// sparsity pattern the three sketches are sums of the same S entries, so
// exact distributions must agree to the bit; uniform/gaussian reorder the
// rounding and get a tight ulp budget plus an absolute floor for entries
// cancellation drives toward zero.
func TestMetamorphicLinearity(t *testing.T) {
	a1, a2, asum := patternedPair(240, 36, 6, 7)
	const d = 33
	for _, dist := range []rng.Distribution{rng.ScaledInt, rng.Rademacher, rng.Uniform11, rng.Gaussian, rng.SJLT, rng.CountSketch} {
		exact := dist == rng.ScaledInt || dist == rng.Rademacher || rng.IsSparse(dist)
		for _, alg := range metaAlgs {
			for _, sched := range metaScheds {
				for _, workers := range metaWorkers {
					opts := Options{
						Algorithm: alg, Sched: sched, Workers: workers,
						Dist: dist, Seed: 4242, BlockD: 11, BlockN: 7,
						Sparsity: metaSparsity(dist),
					}
					sk := mustSketcher(t, d, opts)
					h1, _ := sk.Sketch(a1)
					h2, _ := sk.Sketch(a2)
					hs, _ := sk.Sketch(asum)
					for k := range hs.Data {
						got, want := hs.Data[k], h1.Data[k]+h2.Data[k]
						if got == want {
							continue
						}
						if exact {
							t.Fatalf("%v/%v/sched=%v/w=%d: S(A1+A2)[%d]=%g != SA1+SA2=%g (must be bit-exact)",
								dist, alg, sched, workers, k, got, want)
						}
						if ulpDist(got, want) > 2 && math.Abs(got-want) > 1e-12 {
							t.Fatalf("%v/%v/sched=%v/w=%d: S(A1+A2)[%d]=%g vs SA1+SA2=%g: %d ulps apart",
								dist, alg, sched, workers, k, got, want, ulpDist(got, want))
						}
					}
				}
			}
		}
	}
}

// TestMetamorphicColumnSlab: sketching a column slab of A equals the same
// columns of the full sketch, to the bit, because S[i,j] depends only on
// the global row index j — never on which columns ride along or how BlockN
// tiles them. BlockD is held fixed across the pair: the xoshiro checkpoint
// stream documents bd-dependence (only Philox is blocking-independent).
func TestMetamorphicColumnSlab(t *testing.T) {
	a := sparse.RandomUniform(260, 40, 0.08, 21)
	const d = 33
	slabs := [][2]int{{0, 40}, {0, 13}, {13, 29}, {29, 40}, {5, 6}, {17, 17}}
	for _, dist := range []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.Gaussian, rng.ScaledInt, rng.SJLT, rng.CountSketch} {
		for _, alg := range metaAlgs {
			for _, sched := range metaScheds {
				for _, workers := range metaWorkers {
					opts := Options{
						Algorithm: alg, Sched: sched, Workers: workers,
						Dist: dist, Seed: 99, BlockD: 11, BlockN: 7,
						Sparsity: metaSparsity(dist),
					}
					sk := mustSketcher(t, d, opts)
					full, _ := sk.Sketch(a)
					for _, s := range slabs {
						j0, j1 := s[0], s[1]
						part, _ := sk.Sketch(a.ColSlice(j0, j1))
						for i := 0; i < d; i++ {
							for j := j0; j < j1; j++ {
								if got, want := part.At(i, j-j0), full.At(i, j); got != want {
									t.Fatalf("%v/%v/sched=%v/w=%d: slab [%d:%d) Â[%d,%d]=%g != full %g",
										dist, alg, sched, workers, j0, j1, i, j, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// withZeroColumns embeds a's columns into a wider matrix, inserting an
// all-zero column after every stride-th column, and returns the wide matrix
// plus origCol[j'] = the source column of wide column j' (-1 for inserted
// zeros).
func withZeroColumns(a *sparse.CSC, stride int) (*sparse.CSC, []int) {
	c := sparse.NewCOO(a.M, a.N+a.N/stride, a.NNZ())
	var origCol []int
	wide := 0
	for j := 0; j < a.N; j++ {
		rows, vals := a.ColView(j)
		for k, i := range rows {
			c.Append(i, wide, vals[k])
		}
		origCol = append(origCol, j)
		wide++
		if (j+1)%stride == 0 {
			origCol = append(origCol, -1) // zero column: no entries appended
			wide++
		}
	}
	for wide < c.N {
		origCol = append(origCol, -1)
		wide++
	}
	return c.ToCSC(), origCol
}

// TestMetamorphicZeroColumnInvariance: interleaving empty columns must not
// perturb the surviving columns' sketches by a single bit — the kernels
// walk columns independently — and the empty columns must sketch to exact
// zeros (the output is zeroed, never accumulated into).
func TestMetamorphicZeroColumnInvariance(t *testing.T) {
	a := sparse.RandomUniform(200, 30, 0.1, 63)
	wide, origCol := withZeroColumns(a, 4)
	const d = 33
	for _, dist := range []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.Gaussian, rng.ScaledInt, rng.SJLT, rng.CountSketch} {
		for _, alg := range metaAlgs {
			for _, sched := range metaScheds {
				for _, workers := range metaWorkers {
					opts := Options{
						Algorithm: alg, Sched: sched, Workers: workers,
						Dist: dist, Seed: 7000, BlockD: 11, BlockN: 5,
						Sparsity: metaSparsity(dist),
					}
					sk := mustSketcher(t, d, opts)
					base, _ := sk.Sketch(a)
					padded, _ := sk.Sketch(wide)
					for jw, js := range origCol {
						for i := 0; i < d; i++ {
							got := padded.At(i, jw)
							if js < 0 {
								if got != 0 {
									t.Fatalf("%v/%v/sched=%v/w=%d: zero column %d has Â[%d]=%g",
										dist, alg, sched, workers, jw, i, got)
								}
								continue
							}
							if want := base.At(i, js); got != want {
								t.Fatalf("%v/%v/sched=%v/w=%d: column %d (orig %d) Â[%d]=%g != %g",
									dist, alg, sched, workers, jw, js, i, got, want)
							}
						}
					}
				}
			}
		}
	}
}
