package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sketchsp/internal/analysis"
	"sketchsp/internal/sparse"
)

// This file makes the plan nnz-aware. Uniform (b_d, b_n) blocking assigns
// every outer-block cell the same nominal cost, but the real cost of a cell
// is proportional to nnz(slab)·d1 for both kernels: Algorithm 3 generates
// d1 samples per stored entry of the slab, and Algorithm 4's rank-1 update
// stream is likewise entry-proportional. On skewed inputs (Abnormal_B,
// power-law column degrees) a uniform grid therefore hands one worker almost
// all the work. The planner counters this twice over:
//
//  1. Partition: the uniform column grid is refined at plan time — slabs far
//     above the nnz target split at nnz-balanced column boundaries, runs of
//     near-empty slabs fuse — aiming at ~schedTargetTasksPerWorker weighted
//     tasks per worker (colPartition).
//  2. Execution: tasks are prepacked into per-worker queues with the LPT
//     rule (analysis.LPTAssign) and idle workers steal from the heaviest
//     remaining victim (sched).
//
// Neither mechanism can change the sketch bits. Slab boundaries always fall
// on whole columns, every kernel call re-anchors the RNG at its own
// (block-row, sparse-row) checkpoint, and each Â column accumulates its
// contributions in ascending row order within exactly one task — so the
// floating-point sum order per output element is invariant under any
// repartition and any task-to-worker mapping. Splitting an Alg4 slab only
// increases the sample count (the same values are regenerated more often),
// never the values.

// Scheduler selects how a Plan maps block tasks onto workers.
type Scheduler int

const (
	// SchedWeighted is the default: nnz-weighted slab repartition, LPT
	// prepacked per-worker queues, and work stealing from the heaviest
	// remaining victim.
	SchedWeighted Scheduler = iota
	// SchedNoSteal keeps the weighted partition and LPT prepacking but
	// disables stealing — each worker runs exactly its own queue. Isolates
	// how much of the win comes from the static partition alone.
	SchedNoSteal
	// SchedUniform reproduces the PR-1 executor exactly: uniform b_n grid,
	// single shared task channel, no weights. Kept as the A/B baseline for
	// the skew benchmarks.
	SchedUniform
)

// String implements fmt.Stringer for Scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedWeighted:
		return "weighted-steal"
	case SchedNoSteal:
		return "weighted-nosteal"
	case SchedUniform:
		return "uniform-chan"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// schedTargetTasksPerWorker is how many weighted tasks per worker the
// partitioner aims for: enough surplus that LPT + stealing can smooth an
// unlucky split, few enough that per-task overhead stays negligible.
const schedTargetTasksPerWorker = 6

// targetSlabCount converts the per-worker task target into a column-slab
// target, accounting for the fact that every slab already yields one task
// per block row.
func targetSlabCount(workers, blockRows, n int) int {
	if n < 1 {
		return 1
	}
	if blockRows < 1 {
		blockRows = 1
	}
	t := (schedTargetTasksPerWorker*workers + blockRows - 1) / blockRows
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	return t
}

// colPartition refines the uniform width-bn column grid of a into an
// nnz-aware partition with roughly targetSlabs slabs. Heavy slabs (more
// than twice the ideal nnz share) are split at nnz-balanced column
// boundaries; runs of light adjacent slabs are fused while their combined
// nnz stays under the fuse cap. The cap is min(ideal share, mean grid-slab
// nnz) so that fusing never produces a slab heavier than an average uniform
// slab — on a uniform matrix the partition degenerates to the original
// cache-motivated grid. Splits are capped at column granularity: a single
// all-heavy column cannot be subdivided (stealing has to absorb that case).
func colPartition(a *sparse.CSC, bn, targetSlabs int) (colStart []int, splits, fuses int) {
	grid := sparse.UniformColSplit(a.N, bn)
	nSlabs0 := len(grid) - 1
	total := int64(a.NNZ())
	if nSlabs0 <= 0 || total == 0 || targetSlabs < 1 {
		return grid, 0, 0
	}
	ideal := total / int64(targetSlabs)
	if ideal < 1 {
		ideal = 1
	}
	gridMean := total / int64(nSlabs0)
	if gridMean < 1 {
		gridMean = 1
	}
	fuseCap := ideal
	if gridMean < fuseCap {
		fuseCap = gridMean
	}

	colStart = make([]int, 1, nSlabs0+1)
	for k := 0; k < nSlabs0; k++ {
		j0, j1 := grid[k], grid[k+1]
		w := int64(a.SlabNNZ(j0, j1))

		if w > 2*ideal && j1-j0 > 1 {
			// Split into ~w/ideal pieces at nnz-balanced column cuts.
			pieces := int((w + ideal - 1) / ideal)
			if pieces > j1-j0 {
				pieces = j1 - j0
			}
			splits++
			base := int64(a.ColPtr[j0])
			cut := j0
			for pc := 1; pc < pieces; pc++ {
				// First column index whose cumulative nnz passes the
				// pc-th share boundary.
				want := base + w*int64(pc)/int64(pieces)
				lo := sort.Search(j1-cut-1, func(x int) bool {
					return int64(a.ColPtr[cut+1+x]) >= want
				})
				nc := cut + 1 + lo
				if nc >= j1 {
					break
				}
				if nc > cut {
					colStart = append(colStart, nc)
					cut = nc
				}
			}
			colStart = append(colStart, j1)
			continue
		}

		// Fuse with the previous slab while the combined weight stays
		// light. Only merge grid slabs (never a freshly split piece back
		// into its neighbour's remainder — pieces of a split slab are
		// heavy by construction anyway).
		if n := len(colStart); n >= 2 {
			prev0 := colStart[n-2]
			combined := int64(a.SlabNNZ(prev0, j1))
			if combined <= fuseCap {
				colStart[n-1] = j1
				fuses++
				continue
			}
		}
		colStart = append(colStart, j1)
	}
	return colStart, splits, fuses
}

// makeWeightedTasks builds the outer-block task list over an arbitrary
// column partition, weighting each cell by nnz(slab)·d1 — the kernel cost
// model shared by Alg3 (sample count) and Alg4 (update stream length).
// For the sparse sketch family (sparsity s > 0) a cell's cost is
// nnz(slab)·s instead: the scatter kernels draw and write s entries per
// S column regardless of the block height, so d1 drops out of the weight.
// Slab-outer, block-row-inner order matches Algorithm 1's loop nesting and
// the PR-1 task order on a uniform partition.
func makeWeightedTasks(d, bd int, a *sparse.CSC, colStart []int, sparsity int) []blockTask {
	nSlabs := len(colStart) - 1
	blockRows := (d + bd - 1) / bd
	tasks := make([]blockTask, 0, nSlabs*blockRows)
	for k := 0; k < nSlabs; k++ {
		j0, j1 := colStart[k], colStart[k+1]
		nnz := int64(a.SlabNNZ(j0, j1))
		for i0 := 0; i0 < d; i0 += bd {
			d1 := bd
			if i0+d1 > d {
				d1 = d - i0
			}
			w := nnz * int64(d1)
			if sparsity > 0 {
				w = nnz * int64(sparsity)
			}
			tasks = append(tasks, blockTask{
				i0: i0, d1: d1, j0: j0, n1: j1 - j0,
				slab: k, weight: w,
			})
		}
	}
	return tasks
}

// padCounter is an atomic counter padded to its own cache line so that the
// per-worker cursor and remaining-weight arrays do not false-share.
type padCounter struct {
	v atomic.Int64
	_ [56]byte
}

// sched is the plan-time-built work-stealing state: per-worker FIFO queue
// segments over a shared task-index array, claimed by atomic cursor. All
// storage is allocated at plan time; Execute only resets counters, keeping
// the 0 allocs/op steady state.
type sched struct {
	order  []int  // task indices, grouped by owner, heaviest-first within
	qoff   []int  // worker w owns order[qoff[w]:qoff[w+1]]
	weight []int64 // task weight, indexed by task index
	loads  []int64 // initial per-worker total weight (reset template)
	cursor []padCounter
	remain []padCounter
}

// newSched prepacks the tasks into per-worker queues with the LPT rule.
// Heaviest tasks are claimed first within each queue, so a thief arriving
// late still picks up the large back-half items in a useful order.
func newSched(tasks []blockTask, workers int) *sched {
	weights := make([]int64, len(tasks))
	for i, t := range tasks {
		weights[i] = t.weight
	}
	assign, loads := analysis.LPTAssign(weights, workers)

	// Heaviest-first stable order over all tasks, then bucket by owner —
	// each queue segment inherits the heaviest-first order.
	byWeight := make([]int, len(tasks))
	for i := range byWeight {
		byWeight[i] = i
	}
	sort.SliceStable(byWeight, func(x, y int) bool {
		return weights[byWeight[x]] > weights[byWeight[y]]
	})

	s := &sched{
		order:  make([]int, 0, len(tasks)),
		qoff:   make([]int, workers+1),
		weight: weights,
		loads:  loads,
		cursor: make([]padCounter, workers),
		remain: make([]padCounter, workers),
	}
	for w := 0; w < workers; w++ {
		s.qoff[w] = len(s.order)
		for _, ti := range byWeight {
			if assign[ti] == w {
				s.order = append(s.order, ti)
			}
		}
	}
	s.qoff[workers] = len(s.order)
	return s
}

// reset re-arms the counters for a new Execute round. Callers publish the
// reset to workers via the round-start channel sends.
func (s *sched) reset() {
	for w := range s.cursor {
		s.cursor[w].v.Store(0)
		s.remain[w].v.Store(s.loads[w])
	}
}

// claim pops the next task index from worker q's queue (FIFO over the
// heaviest-first segment), or returns -1 when the queue is exhausted. Both
// the owner and thieves claim through the same cursor, so every task is
// executed exactly once; cursor overshoot past the segment end is harmless
// and cleared by the next reset.
func (s *sched) claim(q int) int {
	pos := int(s.cursor[q].v.Add(1) - 1)
	lo, hi := s.qoff[q], s.qoff[q+1]
	if pos >= hi-lo {
		return -1
	}
	ti := s.order[lo+pos]
	s.remain[q].v.Add(-s.weight[ti])
	return ti
}

// victim returns the worker (≠ self) with the most remaining queued weight,
// or -1 when every other queue is drained. The scan races with concurrent
// claims by design: a stale answer only costs the thief a failed claim, and
// claim/-1 keeps correctness independent of the choice.
func (s *sched) victim(self int) int {
	best, bestW := -1, int64(0)
	for w := range s.remain {
		if w == self {
			continue
		}
		if r := s.remain[w].v.Load(); r > bestW {
			best, bestW = w, r
		}
	}
	return best
}
