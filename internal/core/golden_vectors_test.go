package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Whole-sketch golden digests. golden_test.go pins individual entries of a
// couple of sketches; these pins fold EVERY bit of Â into one splitmix64
// digest per configuration, across the (dist, source, shape, workers)
// grid, so a perturbation anywhere in the RNG stream, the checkpoint
// mixing, a distribution transform, a scheduler's task shapes, or a
// kernel's accumulation order flips at least one digest. The sketch is a
// documented deterministic function of (seed, d, BlockD, dist, source) —
// worker count and scheduler must NOT change the digest (pairs of configs
// below differ only in those and share the expected value on purpose).
//
// If a digest breaks and the change is INTENTIONAL (a new RNG version, a
// documented accumulation-order change), the failure output prints every
// new digest — copy them in and call the break out in the release notes.
// Configs that share a `want` must KEEP sharing it; a pair drifting apart
// means determinism across workers/schedulers broke, which is never ok.

// digestMatrix chains the dimensions and the raw float64 bit patterns of m
// through the same splitmix64/Mix13 mixer the matrix fingerprint uses (one
// multiply-shift round per word, full avalanche).
func digestMatrix(m *dense.Matrix) uint64 {
	h := mix13(uint64(m.Rows), uint64(m.Cols))
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for _, v := range col {
			h = mix13(h, math.Float64bits(v))
		}
	}
	return h
}

func mix13(h, x uint64) uint64 {
	z := h + x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestGoldenSketchDigests(t *testing.T) {
	type cfg struct {
		name    string
		dist    rng.Distribution
		source  rng.SourceKind
		seed    uint64
		m, n    int
		density float64
		matSeed int64
		d       int
		opts    Options
		want    uint64
	}
	cases := []cfg{
		{name: "uniform/seq", dist: rng.Uniform11, seed: 1, m: 80, n: 16, density: 0.15, matSeed: 11, d: 24,
			opts: Options{BlockD: 8, BlockN: 5, Workers: 1},
			want: 0x1e9f719c7b1e52f4},
		{name: "uniform/par8-weighted", dist: rng.Uniform11, seed: 1, m: 80, n: 16, density: 0.15, matSeed: 11, d: 24,
			opts: Options{BlockD: 8, BlockN: 5, Workers: 8},
			want: 0x1e9f719c7b1e52f4}, // workers must not change the sketch
		{name: "uniform/par8-uniform-sched", dist: rng.Uniform11, seed: 1, m: 80, n: 16, density: 0.15, matSeed: 11, d: 24,
			opts: Options{BlockD: 8, BlockN: 5, Workers: 8, Sched: SchedUniform},
			want: 0x1e9f719c7b1e52f4}, // nor may the scheduler
		{name: "rademacher/seq", dist: rng.Rademacher, seed: 2, m: 80, n: 16, density: 0.15, matSeed: 11, d: 24,
			opts: Options{BlockD: 8, BlockN: 5, Workers: 1},
			want: 0xee12929bd58bdbc8},
		{name: "rademacher/alg4", dist: rng.Rademacher, seed: 2, m: 80, n: 16, density: 0.15, matSeed: 11, d: 24,
			opts: Options{Algorithm: Alg4, BlockD: 8, BlockN: 5, Workers: 2},
			want: 0xee12929bd58bdbc8}, // Alg3 == Alg4 bit-identical
		{name: "gaussian/seq", dist: rng.Gaussian, seed: 3, m: 120, n: 20, density: 0.1, matSeed: 17, d: 33,
			opts: Options{BlockD: 11, BlockN: 7, Workers: 1},
			want: 0x8f323c7669fdaa59},
		{name: "gaussian/par2-nosteal", dist: rng.Gaussian, seed: 3, m: 120, n: 20, density: 0.1, matSeed: 17, d: 33,
			opts: Options{BlockD: 11, BlockN: 7, Workers: 2, Sched: SchedNoSteal},
			want: 0x8f323c7669fdaa59},
		{name: "scaledint/seq", dist: rng.ScaledInt, seed: 4, m: 100, n: 12, density: 0.2, matSeed: 23, d: 16,
			opts: Options{BlockD: 16, BlockN: 4, Workers: 1},
			want: 0xc8e4f08c6cb99638},
		{name: "scaledint/blockd-split", dist: rng.ScaledInt, seed: 4, m: 100, n: 12, density: 0.2, matSeed: 23, d: 16,
			opts: Options{BlockD: 5, BlockN: 4, Workers: 1},
			want: 0x7c7319a600e73392}, // xoshiro checkpoints ARE BlockD-dependent
		{name: "philox/seq", dist: rng.Uniform11, source: rng.SourcePhilox, seed: 5, m: 90, n: 14, density: 0.12, matSeed: 29, d: 20,
			opts: Options{BlockD: 7, BlockN: 6, Workers: 1},
			want: 0x9c6797cc6e339a8b},
		{name: "philox/blockd-split", dist: rng.Uniform11, source: rng.SourcePhilox, seed: 5, m: 90, n: 14, density: 0.12, matSeed: 29, d: 20,
			opts: Options{BlockD: 20, BlockN: 3, Workers: 4},
			want: 0x9c6797cc6e339a8b}, // counter-based: blocking-independent
		{name: "uniform/auto", dist: rng.Uniform11, seed: 6, m: 200, n: 25, density: 0.08, matSeed: 31, d: 40,
			opts: Options{Algorithm: AlgAuto, BlockD: 10, BlockN: 9, Workers: 2},
			want: 0x218b4a140ccfc1f6},
		{name: "sjlt/seq", dist: rng.SJLT, seed: 7, m: 120, n: 18, density: 0.12, matSeed: 37, d: 28,
			opts: Options{BlockD: 9, BlockN: 5, Workers: 1, Sparsity: 4},
			want: 0x40ba0f6404ecb1a6},
		{name: "sjlt/par8-weighted", dist: rng.SJLT, seed: 7, m: 120, n: 18, density: 0.12, matSeed: 37, d: 28,
			opts: Options{BlockD: 9, BlockN: 5, Workers: 8, Sparsity: 4},
			want: 0x40ba0f6404ecb1a6}, // workers must not change the sketch
		{name: "sjlt/blockd-split", dist: rng.SJLT, seed: 7, m: 120, n: 18, density: 0.12, matSeed: 37, d: 28,
			opts: Options{BlockD: 28, BlockN: 3, Workers: 4, Sched: SchedUniform, Sparsity: 4},
			want: 0x40ba0f6404ecb1a6}, // sparse columns are drawn at a reserved checkpoint: BlockD-independent even on xoshiro
		{name: "sjlt/alg4-default-s", dist: rng.SJLT, seed: 8, m: 120, n: 18, density: 0.12, matSeed: 37, d: 28,
			opts: Options{Algorithm: Alg4, BlockD: 9, BlockN: 5, Workers: 2},
			want: 0x09883cdf24458bd8}, // Sparsity 0 resolves to ⌈√28⌉ = 6
		{name: "sjlt/alg3-default-s", dist: rng.SJLT, seed: 8, m: 120, n: 18, density: 0.12, matSeed: 37, d: 28,
			opts: Options{Algorithm: Alg3, BlockD: 9, BlockN: 5, Workers: 1},
			want: 0x09883cdf24458bd8}, // Alg3 == Alg4 bit-identical for the scatter kernels too
		{name: "countsketch/seq", dist: rng.CountSketch, seed: 9, m: 100, n: 14, density: 0.15, matSeed: 41, d: 20,
			opts: Options{BlockD: 7, BlockN: 4, Workers: 1},
			want: 0xe664d298e2a806c8},
		{name: "countsketch/philox-par4", dist: rng.CountSketch, source: rng.SourcePhilox, seed: 10, m: 100, n: 14, density: 0.15, matSeed: 41, d: 20,
			opts: Options{BlockD: 7, BlockN: 4, Workers: 4},
			want: 0xa0d6982e447b78c1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := sparse.RandomUniform(c.m, c.n, c.density, c.matSeed)
			opts := c.opts
			opts.Dist = c.dist
			opts.Source = c.source
			opts.Seed = c.seed
			sk := mustSketcher(t, c.d, opts)
			ahat, _ := sk.Sketch(a)
			if got := digestMatrix(ahat); got != c.want {
				t.Errorf("digest %#x, want %#x (RNG stream or accumulation order changed?)", got, c.want)
			}
		})
	}
}

// TestGoldenMatrixMarketFixture pins the full path from bytes on disk to
// sketch bits: the checked-in .mtx fixture must parse to the exact CSC
// structure below and sketch to the exact digest, so a parser change (value
// parsing, duplicate handling, column ordering) is as loud as a kernel one.
func TestGoldenMatrixMarketFixture(t *testing.T) {
	a, err := sparse.ReadMatrixMarketFile("testdata/golden_8x5.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if a.M != 8 || a.N != 5 || a.NNZ() != 13 {
		t.Fatalf("fixture parsed as %dx%d nnz=%d, want 8x5 nnz=13", a.M, a.N, a.NNZ())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("fixture CSC invalid: %v", err)
	}
	if got := a.ColPtr[4]; got != a.ColPtr[5]-3 {
		t.Fatalf("column 4 should hold the last 3 entries: ColPtr=%v", a.ColPtr)
	}
	// Column 3 (0-based) is empty by construction.
	if a.ColPtr[3] != a.ColPtr[4] {
		t.Fatalf("column 3 should be empty: ColPtr=%v", a.ColPtr)
	}
	sk := mustSketcher(t, 12, Options{Dist: rng.Rademacher, Seed: 77, BlockD: 5, BlockN: 2, Workers: 1})
	ahat, _ := sk.Sketch(a)
	if got, want := digestMatrix(ahat), uint64(0xf28e91a546d757a); got != want {
		t.Errorf("fixture sketch digest %#x, want %#x", got, want)
	}
}

// TestValidateColPtrBoundsRegression pins the PR-4 hardening of
// sparse.Validate: a ColPtr that is locally monotone at the front but
// indexes past the entry arrays before its decreasing step (here [0,5,2]
// with nnz=2) must be rejected by the per-column bounds check — the
// endpoint checks alone (ColPtr[0]==0, ColPtr[N]==nnz) pass it, and
// kernels iterating col 0 would read RowIdx[2:5] out of bounds.
func TestValidateColPtrBoundsRegression(t *testing.T) {
	a := &sparse.CSC{
		M: 4, N: 2,
		ColPtr: []int{0, 5, 2},
		RowIdx: []int{1, 3},
		Val:    []float64{1, 2},
	}
	err := a.Validate()
	if err == nil {
		t.Fatal("Validate accepted ColPtr [0,5,2] with nnz=2")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want the per-column bounds error, got: %v", err)
	}
	// The same structure must also be refused at plan construction, where
	// it would otherwise reach the kernels.
	if _, planErr := NewPlan(a, 8, Options{Workers: 1}); planErr == nil {
		t.Fatal("NewPlan accepted the out-of-bounds ColPtr")
	} else if !errors.Is(planErr, ErrInvalidMatrix) {
		t.Fatalf("NewPlan error %v, want ErrInvalidMatrix", planErr)
	}
}
