package core

import (
	"sketchsp/internal/analysis"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// AlgAuto asks the planner to inspect the matrix and pick between Alg3 and
// Alg4 with the §III-B cost model — a lightweight take on the
// inspector-executor idea the paper cites from MKL's sparse library.
const AlgAuto Algorithm = -1

// ChooseAlgorithm inspects a and picks the cheaper kernel for sketch size d
// under the blocking the options resolve to. The §III-B accounting, in
// memory-access equivalents:
//
//   - Algorithm 3 generates d·nnz samples at relative cost h each.
//   - Algorithm 4 generates d·(nonempty rows per slab) samples (counted
//     exactly), pays the blocked-CSR conversion O(m·⌈n/bn⌉ + nnz), and — on
//     random-access-sensitive hosts — a scatter penalty when the Â block
//     (d1×bn doubles) exceeds the cache: every nonzero then touches a cold
//     d1-entry column (d1/8 lines), which Algorithm 3's column-ordered walk
//     avoids.
//
// h is the relative cost of one random sample versus one memory access for
// the baseline uniform distribution; it is scaled by the configured
// distribution's measured per-sample cost (rng.DistCost), so a fused-±1
// Rademacher sketch is charged far less recomputation than a ziggurat
// Gaussian one. h ≤ 0 selects 1 (pessimistic for recomputation);
// cacheBytes ≤ 0 selects 32 MiB. The choice is a heuristic ranking, not a
// guarantee; Table VI's lesson — Algorithm 3 for wildly varying patterns —
// corresponds to the penalty term dominating.
func ChooseAlgorithm(a *sparse.CSC, d int, opts Options, h float64, cacheBytes int64) Algorithm {
	if h <= 0 {
		h = 1
	}
	h *= rng.DistCost(opts.Dist)
	if cacheBytes <= 0 {
		cacheBytes = 32 << 20
	}
	bd4, bn4 := resolveBlockSizes(d, a.N, Alg4, opts.BlockD, opts.BlockN)

	// Sparse sketch family: a column of S carries s nonzeros instead of d,
	// so both kernels' sample streams and Alg4's scattered writes shrink by
	// the density factor s/d. The same accounting with the terms scaled.
	density := 1.0
	if s := rng.SJLTSparsity(opts.Dist, opts.Sparsity, d); s > 0 && d > 0 {
		density = float64(s) / float64(d)
	}

	cost3 := h * float64(analysis.PredictAlg3Samples(a, d)) * density

	samples4 := float64(analysis.PredictAlg4Samples(a, d, bn4)) * density
	slabs := (a.N + bn4 - 1) / bn4
	conversion := float64(a.M*slabs + a.NNZ())
	cost4 := h*samples4 + conversion
	if int64(bd4)*int64(bn4)*8 > cacheBytes {
		// Â block spills the cache: charge Alg4's scattered rank-1
		// updates one cold column read per nonzero. A sparse S column
		// touches only the s/d fraction of the block's rows.
		cost4 += float64(a.NNZ()) * float64(bd4) / 8 * density
	}
	if cost4 < cost3 {
		return Alg4
	}
	return Alg3
}
