package core

import (
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Sparse-sketch-family (SJLT/CountSketch) plan-level tests: the scatter
// kernels against an explicit S·A product, the degenerate shapes (s ≥ d,
// s = 1, empty columns, 0×n, m×0), and the zero-alloc steady state of the
// sparse execute path.

// explicitSketch computes S·A from a materialised S, accumulating each
// output column in ascending sparse-row order — the same order both scatter
// kernels use — so for exact-arithmetic distributions the comparison is
// bit-for-bit.
func explicitSketch(s *dense.Matrix, a *sparse.CSC) *dense.Matrix {
	out := dense.NewMatrix(s.Rows, a.N)
	for k := 0; k < a.N; k++ {
		rows, vals := a.ColView(k)
		col := out.Col(k)
		for t, j := range rows {
			sj := s.Col(j)
			v := vals[t]
			for i := range col {
				col[i] += sj[i] * v
			}
		}
	}
	return out
}

// TestSJLTMatchesMaterializedS cross-checks the scatter kernels against the
// explicit product with the materialised sparse S, bit-exactly, for both
// algorithms, both sources, explicit and default sparsity.
func TestSJLTMatchesMaterializedS(t *testing.T) {
	a := sparse.RandomUniform(150, 22, 0.1, 91)
	cases := []struct {
		name string
		d    int
		opts Options
	}{
		{"sjlt-s4-alg3", 26, Options{Algorithm: Alg3, Dist: rng.SJLT, Sparsity: 4, Seed: 5, BlockD: 9, BlockN: 6}},
		{"sjlt-s4-alg4", 26, Options{Algorithm: Alg4, Dist: rng.SJLT, Sparsity: 4, Seed: 5, BlockD: 9, BlockN: 6}},
		{"sjlt-default-s", 30, Options{Algorithm: Alg3, Dist: rng.SJLT, Seed: 6, BlockD: 8, BlockN: 5}},
		{"sjlt-philox", 26, Options{Algorithm: Alg4, Dist: rng.SJLT, Sparsity: 16, Source: rng.SourcePhilox, Seed: 7, BlockD: 26, BlockN: 4}},
		{"countsketch", 19, Options{Algorithm: Alg3, Dist: rng.CountSketch, Seed: 8, BlockD: 6, BlockN: 7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sk := mustSketcher(t, c.d, c.opts)
			got, _ := sk.Sketch(a)
			want := explicitSketch(sk.MaterializeS(a.M), a)
			for k := 0; k < a.N; k++ {
				gc, wc := got.Col(k), want.Col(k)
				for i := range gc {
					if gc[i] != wc[i] {
						t.Fatalf("Â[%d,%d]=%g, explicit S·A gives %g", i, k, gc[i], wc[i])
					}
				}
			}
		})
	}
}

// TestSJLTMaterializedColumnStructure pins the construction: every
// materialised column has exactly s nonzeros valued ±1/√s, one per
// contiguous block, and s ≥ d clamps to a fully dense ±1/√d column set.
func TestSJLTMaterializedColumnStructure(t *testing.T) {
	const d, m = 24, 60
	for _, c := range []struct {
		name      string
		opts      Options
		wantS     int
		wantScale float64
	}{
		{"explicit-s6", Options{Dist: rng.SJLT, Sparsity: 6, Seed: 3}, 6, rng.SJLTScale(6)},
		{"default-ceil-sqrt", Options{Dist: rng.SJLT, Seed: 3}, 5, rng.SJLTScale(5)}, // ⌈√24⌉ = 5
		{"clamp-s-ge-d", Options{Dist: rng.SJLT, Sparsity: d + 10, Seed: 3}, d, rng.SJLTScale(d)},
		{"countsketch-s1", Options{Dist: rng.CountSketch, Sparsity: 7, Seed: 3}, 1, 1}, // Sparsity ignored
	} {
		t.Run(c.name, func(t *testing.T) {
			sk := mustSketcher(t, d, c.opts)
			s := sk.MaterializeS(m)
			for j := 0; j < m; j++ {
				nz := 0
				for _, v := range s.Col(j) {
					if v == 0 {
						continue
					}
					nz++
					if v != c.wantScale && v != -c.wantScale {
						t.Fatalf("col %d: entry %g, want ±%g", j, v, c.wantScale)
					}
				}
				if nz != c.wantS {
					t.Fatalf("col %d: %d nonzeros, want %d", j, nz, c.wantS)
				}
			}
		})
	}
}

// TestSJLTDegenerateMatrices pushes the sparse family through plans over
// 0×n, m×0, 0×0 and empty-column inputs: no panics, right shapes, zero
// sketches where the input is empty, and PlanStats surfacing the resolved
// sparsity.
func TestSJLTDegenerateMatrices(t *testing.T) {
	shapes := map[string]*sparse.CSC{
		"0xn": {M: 0, N: 9, ColPtr: make([]int, 10)},
		"mx0": {M: 40, N: 0, ColPtr: []int{0}},
		"0x0": {M: 0, N: 0, ColPtr: []int{0}},
	}
	for _, dist := range []rng.Distribution{rng.SJLT, rng.CountSketch} {
		for name, a := range shapes {
			for _, alg := range []Algorithm{Alg3, Alg4, AlgAuto} {
				p, err := NewPlan(a, 12, Options{Algorithm: alg, Dist: dist, Sparsity: 3, Seed: 1})
				if err != nil {
					t.Fatalf("%v/%s/%v: NewPlan: %v", dist, name, alg, err)
				}
				if want := rng.SJLTSparsity(dist, 3, 12); p.Stats().Sparsity != want {
					t.Errorf("%v/%s/%v: PlanStats.Sparsity=%d, want %d", dist, name, alg, p.Stats().Sparsity, want)
				}
				ahat := dense.NewMatrix(12, a.N)
				if _, err := p.Execute(ahat); err != nil {
					t.Fatalf("%v/%s/%v: Execute: %v", dist, name, alg, err)
				}
				for _, v := range ahat.Data {
					if v != 0 {
						t.Fatalf("%v/%s/%v: empty input sketched to nonzero %g", dist, name, alg, v)
					}
				}
				p.Close()
			}
		}
	}
	// Negative sparsity is rejected up front.
	if _, err := NewPlan(sparse.RandomUniform(10, 4, 0.5, 1), 8, Options{Dist: rng.SJLT, Sparsity: -1}); err == nil {
		t.Error("NewPlan accepted negative Sparsity")
	}
}

// TestSJLTFlopsAndWeights pins the nnz-aware accounting: a sparse-family
// plan charges 2·s·nnz flops (not 2·d·nnz) and weights tasks by nnz·s so
// the scheduler balances the real scatter cost.
func TestSJLTFlopsAndWeights(t *testing.T) {
	a := sparse.RandomUniform(300, 40, 0.1, 17)
	const d, s = 64, 4
	p, err := NewPlan(a, d, Options{Dist: rng.SJLT, Sparsity: s, Workers: 1, BlockD: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ahat := dense.NewMatrix(d, a.N)
	st, err := p.Execute(ahat)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * int64(s) * int64(a.NNZ()); st.Flops != want {
		t.Errorf("Flops=%d, want 2·s·nnz=%d", st.Flops, want)
	}
	// Alg3 regenerates the s-word column once per stored entry per block
	// row: samples = blockRows·nnz·s.
	blockRows := int64((d + 15) / 16)
	if p.Stats().Algorithm == Alg3 {
		if want := blockRows * int64(a.NNZ()) * s; st.Samples != want {
			t.Errorf("Samples=%d, want blockRows·nnz·s=%d", st.Samples, want)
		}
	}
	// Task weights are nnz·s, so the per-slab weight sum is independent of
	// the number of block rows times d1 — total = blockRows·nnz·s.
	var sum int64
	for _, tk := range p.tasks {
		sum += tk.weight
	}
	if want := blockRows * int64(a.NNZ()) * s; sum != want {
		t.Errorf("total task weight %d, want %d", sum, want)
	}
}

// TestSJLTExecuteZeroAlloc extends the repo's zero-alloc gate to the
// sparse-kernel execute path: steady-state Plan.Execute on an SJLT plan
// must not allocate, for 1 and for 4 workers.
func TestSJLTExecuteZeroAlloc(t *testing.T) {
	a := sparse.RandomUniform(200, 30, 0.1, 23)
	const d = 32
	for _, workers := range []int{1, 4} {
		p, err := NewPlan(a, d, Options{Dist: rng.SJLT, Sparsity: 5, Workers: workers, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		ahat := dense.NewMatrix(d, a.N)
		if _, err := p.Execute(ahat); err != nil { // warm the pool
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if _, err := p.Execute(ahat); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("workers=%d: Execute allocates %.1f objects/op, want 0", workers, avg)
		}
		p.Close()
	}
}
