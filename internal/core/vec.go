package core

import (
	"fmt"

	"sketchsp/internal/rng"
)

// SketchVec computes Â·v-style products for a single vector: given v of
// length m, it returns S·v (length d) using the same blocked on-the-fly
// generation as the matrix kernels — i.e. a Johnson–Lindenstrauss style
// transform of v without materialising S. Entries of S are anchored at the
// same (block-row, index) checkpoints as Sketch, so SketchVec(v) equals
// MaterializeS(len(v))·v exactly.
func (sk *Sketcher) SketchVec(v []float64) []float64 {
	m := len(v)
	out := make([]float64, sk.d)
	if m == 0 {
		return out
	}
	s := rng.NewSampler(rng.NewSource(sk.opts.Source, sk.opts.Seed), sk.opts.Dist)
	bd, _ := sk.blockSizes(1)
	buf := make([]float64, bd)
	scale := 1.0
	if sk.opts.Dist == rng.ScaledInt {
		scale = rng.Scale31
	}
	for i0 := 0; i0 < sk.d; i0 += bd {
		d1 := bd
		if i0+d1 > sk.d {
			d1 = sk.d - i0
		}
		seg := out[i0 : i0+d1]
		w := buf[:d1]
		for j := 0; j < m; j++ {
			vj := v[j] * scale
			if vj == 0 {
				continue
			}
			s.SetState(uint64(i0), uint64(j))
			s.Fill(w)
			for i, x := range w {
				seg[i] += vj * x
			}
		}
	}
	return out
}

// SketchVecInto is SketchVec writing into a caller-provided buffer of
// length d.
func (sk *Sketcher) SketchVecInto(dst, v []float64) {
	if len(dst) != sk.d {
		panic(fmt.Sprintf("core: SketchVecInto dst len %d, want d=%d", len(dst), sk.d))
	}
	res := sk.SketchVec(v)
	copy(dst, res)
}
