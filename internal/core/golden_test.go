package core

import (
	"math"
	"testing"

	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Golden regression pins: the exact float64 bit patterns of sketches for
// fixed seeds. Sketches are a documented deterministic function of
// (seed, d, blocking, distribution, source); any change to the RNG stream,
// checkpoint mixing, distribution transforms, or kernel accumulation order
// silently breaks every stored sketch downstream — these tests make such a
// change loud. If a break is INTENTIONAL (e.g. a new RNG version), bump the
// constants and call it out in the release notes.
func TestGoldenSketchFingerprints(t *testing.T) {
	a := sparse.RandomUniform(50, 12, 0.2, 99)
	if a.NNZ() != 144 {
		t.Fatalf("workload drifted: nnz=%d, want 144 (math/rand stream changed?)", a.NNZ())
	}
	cases := []struct {
		dist               rng.Distribution
		at00, at2911, ssum uint64
	}{
		{rng.Uniform11, 0x3fdab74c0873cf83, 0xbfd85879929c09a8, 0x4079b12d600f5180},
		{rng.Rademacher, 0x4000cefb5282f262, 0x3ff1a56ae1c345a8, 0x40964022661a3cd4},
		{rng.ScaledInt, 0x3fe6a1540aa04bbc, 0x3ffa130f401ce88f, 0x407d1baaaed0d8a6},
		{rng.Gaussian, 0x3fec37cbf6a87dba, 0x400ea124c2fad153, 0x4095c2e2281ea5ef},
	}
	for _, c := range cases {
		sk := mustSketcher(t, 30, Options{
			Dist: c.dist, Seed: 12345, BlockD: 11, BlockN: 5, Workers: 1,
		})
		ahat, _ := sk.Sketch(a)
		var s float64
		for _, v := range ahat.Data {
			s += v * v
		}
		if got := math.Float64bits(ahat.At(0, 0)); got != c.at00 {
			t.Errorf("%v: Â[0,0] bits %#x, want %#x", c.dist, got, c.at00)
		}
		if got := math.Float64bits(ahat.At(29, 11)); got != c.at2911 {
			t.Errorf("%v: Â[29,11] bits %#x, want %#x", c.dist, got, c.at2911)
		}
		if got := math.Float64bits(s); got != c.ssum {
			t.Errorf("%v: Σ entries² bits %#x, want %#x", c.dist, got, c.ssum)
		}
	}
}

func TestGoldenPhiloxFingerprint(t *testing.T) {
	a := sparse.RandomUniform(50, 12, 0.2, 99)
	sk := mustSketcher(t, 30, Options{
		Source: rng.SourcePhilox, Seed: 7, BlockD: 11, BlockN: 5, Workers: 1,
	})
	ahat, _ := sk.Sketch(a)
	if got := math.Float64bits(ahat.At(0, 0)); got != 0x3fe2a322c9c5b304 {
		t.Errorf("philox Â[0,0] bits %#x", got)
	}
	if got := math.Float64bits(ahat.At(29, 11)); got != 0xbfbb12706f7ed2dc {
		t.Errorf("philox Â[29,11] bits %#x", got)
	}
}
