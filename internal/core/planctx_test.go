package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// TestTypedConstructionErrors pins the typed-error contract: bad arguments
// produce errors matchable with errors.Is, never panics, and degenerate but
// structurally valid shapes are accepted.
func TestTypedConstructionErrors(t *testing.T) {
	valid := sparse.RandomUniform(50, 10, 0.2, 1)
	cases := []struct {
		name string
		a    *sparse.CSC
		d    int
		opts Options
		want error
	}{
		{"nil matrix", nil, 8, Options{}, ErrNilMatrix},
		{"zero d", valid, 0, Options{}, ErrInvalidSketchSize},
		{"negative d", valid, -3, Options{}, ErrInvalidSketchSize},
		{"zero-value CSC", &sparse.CSC{}, 8, Options{}, ErrInvalidMatrix},
		{"truncated ColPtr", &sparse.CSC{M: 2, N: 3, ColPtr: []int{0, 0}}, 8, Options{}, ErrInvalidMatrix},
		{"inconsistent nnz", &sparse.CSC{M: 2, N: 1, ColPtr: []int{0, 2}, RowIdx: []int{0}, Val: []float64{1}}, 8, Options{}, ErrInvalidMatrix},
		{"negative workers", valid, 8, Options{Workers: -1}, ErrBadOptions},
		{"unknown scheduler", valid, 8, Options{Sched: Scheduler(99)}, ErrBadOptions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPlan(tc.a, tc.d, tc.opts)
			if p != nil {
				defer p.Close()
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("NewPlan error = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
	// Degenerate valid shapes must plan and execute.
	for _, deg := range []*sparse.CSC{
		{M: 0, N: 4, ColPtr: []int{0, 0, 0, 0, 0}},
		{M: 7, N: 0, ColPtr: []int{0}},
	} {
		p, err := NewPlan(deg, 5, Options{Seed: 1})
		if err != nil {
			t.Fatalf("degenerate %dx%d rejected: %v", deg.M, deg.N, err)
		}
		out := dense.NewMatrix(5, deg.N)
		if _, err := p.Execute(out); err != nil {
			t.Fatalf("degenerate %dx%d execute: %v", deg.M, deg.N, err)
		}
		for _, v := range out.Data {
			if v != 0 {
				t.Fatalf("degenerate sketch has nonzero entry %v", v)
			}
		}
		p.Close()
	}
	if _, err := NewSketcher(0, Options{}); !errors.Is(err, ErrInvalidSketchSize) {
		t.Fatalf("NewSketcher(0) error = %v", err)
	}
}

// TestExecuteContextCancellation checks the two cancellation points: a
// context that is dead on arrival never starts the round, and a cancel
// landing mid-round propagates into the worker pool, cutting the round
// short — after which the plan stays healthy for subsequent executes.
func TestExecuteContextCancellation(t *testing.T) {
	a := sparse.RandomUniform(30000, 300, 0.01, 7)
	d := 450
	opts := Options{Seed: 3, Workers: 2, BlockD: 64}
	p, err := NewPlan(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out := dense.NewMatrix(d, a.N)

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExecuteContext(dead, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-on-arrival ctx: err = %v, want Canceled", err)
	}

	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	if _, err := p.ExecuteContext(ctx, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-round cancel: err = %v, want Canceled", err)
	}

	// The plan must still produce correct bits after an aborted round.
	st, err := p.Execute(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples == 0 {
		t.Fatal("post-cancel execute generated no samples")
	}
	fresh, err := NewPlan(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want := dense.NewMatrix(d, a.N)
	if _, err := fresh.Execute(want); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(out.Data[i]) {
			t.Fatalf("post-cancel execute diverged at flat index %d", i)
		}
	}
}

// TestPlanRetainRelease pins the reference-counting lifecycle: Close only
// releases the initial reference, Retain-ed holders keep executing, the
// last Release shuts down, and both Close and Retain behave at the
// boundaries (idempotent close, Retain-after-death refusal).
func TestPlanRetainRelease(t *testing.T) {
	a := sparse.RandomUniform(500, 50, 0.05, 2)
	p, err := NewPlan(a, 75, Options{Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := dense.NewMatrix(75, a.N)

	if !p.Retain() {
		t.Fatal("Retain on a live plan refused")
	}
	p.Close() // releases the initial reference; ours keeps it alive
	p.Close() // idempotent
	if _, err := p.Execute(out); err != nil {
		t.Fatalf("Execute with a retained reference after Close: %v", err)
	}
	p.Release() // last reference: worker pool shuts down
	if _, err := p.Execute(out); !errors.Is(err, ErrPlanClosed) {
		t.Fatalf("Execute after final release: err = %v, want ErrPlanClosed", err)
	}
	if p.Retain() {
		t.Fatal("Retain succeeded on a fully released plan")
	}
}
