package core

import (
	"math"
	"sync"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

func mustPlan(t testing.TB, a *sparse.CSC, d int, opts Options) *Plan {
	t.Helper()
	p, err := NewPlan(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func mustExecute(t testing.TB, p *Plan, ahat *dense.Matrix) Stats {
	t.Helper()
	st, err := p.Execute(ahat)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// sameBits reports bit-exact equality, distinguishing values Equal's
// tolerance would conflate (and catching -0 vs +0 drift).
func sameBits(a, b *dense.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ac, bc := a.Col(j), b.Col(j)
		for i := range ac {
			if math.Float64bits(ac[i]) != math.Float64bits(bc[i]) {
				return false
			}
		}
	}
	return true
}

func TestNewPlanValidation(t *testing.T) {
	a := sparse.RandomUniform(40, 10, 0.2, 1)
	if _, err := NewPlan(nil, 5, Options{}); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewPlan(a, 0, Options{}); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewPlan(a, -2, Options{}); err == nil {
		t.Error("d<0 accepted")
	}
	if _, err := NewPlan(a, 5, Options{BlockN: -1}); err == nil {
		t.Error("negative BlockN accepted")
	}
}

func TestPlanExecuteErrors(t *testing.T) {
	a := sparse.RandomUniform(40, 10, 0.2, 1)
	p := mustPlan(t, a, 20, Options{Workers: 1})
	if _, err := p.Execute(nil); err == nil {
		t.Error("nil output accepted")
	}
	if _, err := p.Execute(dense.NewMatrix(19, 10)); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := p.Execute(dense.NewMatrix(20, 11)); err == nil {
		t.Error("wrong column count accepted")
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Execute(dense.NewMatrix(20, 10)); err == nil {
		t.Error("Execute after Close accepted")
	}
}

// The plan path must be bit-identical to the one-shot Sketcher path under
// the same configuration — it is the same checkpointed computation with the
// setup hoisted out.
func TestPlanMatchesSketcher(t *testing.T) {
	a := sparse.RandomUniform(300, 40, 0.08, 3)
	d := 3 * a.N
	for _, alg := range []Algorithm{Alg3, Alg4} {
		for _, dist := range []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.Gaussian, rng.ScaledInt} {
			opts := Options{Algorithm: alg, Dist: dist, Seed: 11, Workers: 1}
			sk := mustSketcher(t, d, opts)
			want, _ := sk.Sketch(a)

			p := mustPlan(t, a, d, opts)
			got := dense.NewMatrix(d, a.N)
			mustExecute(t, p, got)
			if !sameBits(want, got) {
				t.Errorf("%v/%v: plan output differs from Sketcher", alg, dist)
			}
		}
	}
}

// Satellite regression test: Â must be bit-identical for Workers ∈ {1,2,8}
// and for plan-reuse vs fresh-sketch paths, for both the xoshiro-checkpoint
// and Philox sources. Sketch bits depend on (seed, d, b_d, distribution,
// source) — never on the worker count, nor on how many times a plan has
// been executed.
func TestPlanReproducibilityAcrossWorkersAndReuse(t *testing.T) {
	a := sparse.RandomUniform(500, 60, 0.05, 7)
	d := 3 * a.N
	for _, src := range []rng.SourceKind{rng.SourceBatchXoshiro, rng.SourcePhilox} {
		for _, alg := range []Algorithm{Alg3, Alg4} {
			base := Options{Algorithm: alg, Source: src, Seed: 99, Workers: 1, BlockD: 50, BlockN: 13}
			sk := mustSketcher(t, d, base)
			ref, _ := sk.Sketch(a)

			for _, workers := range []int{1, 2, 8} {
				opts := base
				opts.Workers = workers
				p := mustPlan(t, a, d, opts)
				got := dense.NewMatrix(d, a.N)
				// Reuse: repeated executes of one plan must not drift.
				for rep := 0; rep < 3; rep++ {
					mustExecute(t, p, got)
					if !sameBits(ref, got) {
						t.Fatalf("%v/%v workers=%d rep=%d: Â differs from fresh sequential sketch",
							src, alg, workers, rep)
					}
				}
			}
		}
	}
}

func TestPlanStatsAccounting(t *testing.T) {
	a := sparse.RandomUniform(400, 50, 0.1, 5)
	d := 2 * a.N
	p := mustPlan(t, a, d, Options{Algorithm: Alg4, Workers: 2, Timed: true})
	ps := p.Stats()
	if ps.Algorithm != Alg4 {
		t.Errorf("Algorithm = %v", ps.Algorithm)
	}
	if ps.ConvertTime <= 0 {
		t.Error("Alg4 plan reports no ConvertTime")
	}
	if ps.PlanTime < ps.ConvertTime {
		t.Error("PlanTime < ConvertTime")
	}
	if ps.Tasks <= 0 || ps.Workers < 1 || ps.BlockD <= 0 || ps.BlockN <= 0 {
		t.Errorf("implausible plan stats: %+v", ps)
	}
	ahat := dense.NewMatrix(d, a.N)
	for rep := 0; rep < 2; rep++ {
		st := mustExecute(t, p, ahat)
		// The accounting split: conversion is charged once at plan time,
		// never folded into an execute.
		if st.ConvertTime != 0 {
			t.Errorf("rep %d: Execute ConvertTime = %v, want 0", rep, st.ConvertTime)
		}
		if st.Samples <= 0 || st.SampleTime <= 0 || st.Total <= 0 {
			t.Errorf("rep %d: implausible execute stats: %+v", rep, st)
		}
		if st.Flops != 2*int64(d)*int64(a.NNZ()) {
			t.Errorf("rep %d: Flops = %d", rep, st.Flops)
		}
	}
}

// The one-shot wrapper still reports the conversion it paid for.
func TestSketcherWrapperKeepsConvertTime(t *testing.T) {
	a := sparse.RandomUniform(400, 50, 0.1, 5)
	sk := mustSketcher(t, 2*a.N, Options{Algorithm: Alg4, Workers: 1})
	_, st := sk.Sketch(a)
	if st.ConvertTime <= 0 {
		t.Error("Sketcher Alg4 stats lost ConvertTime")
	}
	if st.Total < st.ConvertTime {
		t.Error("Sketcher Total < ConvertTime")
	}
}

func TestPlanAutoResolvesAlgorithm(t *testing.T) {
	a := sparse.RandomUniform(400, 50, 0.1, 2)
	p := mustPlan(t, a, 2*a.N, Options{Algorithm: AlgAuto, Workers: 1})
	got := p.Stats().Algorithm
	if got != Alg3 && got != Alg4 {
		t.Fatalf("plan left Algorithm unresolved: %v", got)
	}
	if p.Options().Algorithm != got {
		t.Error("Options().Algorithm disagrees with Stats().Algorithm")
	}
	ahat := dense.NewMatrix(p.D(), p.N())
	mustExecute(t, p, ahat)
}

// TuneBlockN may change b_n but never the sketch values.
func TestPlanTuneBlockN(t *testing.T) {
	a := sparse.RandomUniform(600, 80, 0.05, 9)
	d := 2 * a.N
	ref := mustPlan(t, a, d, Options{Algorithm: Alg4, Seed: 4, Workers: 1})
	tuned := mustPlan(t, a, d, Options{Algorithm: Alg4, Seed: 4, Workers: 1, TuneBlockN: true})
	if !tuned.Stats().TunedBlockN {
		t.Fatal("TuneBlockN plan did not report a tuned b_n")
	}
	want := dense.NewMatrix(d, a.N)
	got := dense.NewMatrix(d, a.N)
	mustExecute(t, ref, want)
	mustExecute(t, tuned, got)
	if !sameBits(want, got) {
		t.Error("tuned b_n changed sketch values")
	}
}

// Concurrent Execute calls on one plan must serialise safely and each
// produce the full correct sketch.
func TestPlanConcurrentExecute(t *testing.T) {
	a := sparse.RandomUniform(300, 40, 0.1, 6)
	d := 2 * a.N
	p := mustPlan(t, a, d, Options{Workers: 4})
	ref := dense.NewMatrix(d, a.N)
	mustExecute(t, p, ref)

	const callers = 4
	outs := make([]*dense.Matrix, callers)
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		outs[c] = dense.NewMatrix(d, a.N)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = p.Execute(outs[c])
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatal(errs[c])
		}
		if !sameBits(ref, outs[c]) {
			t.Errorf("caller %d got a different sketch", c)
		}
	}
}

// ScaledInt planning pre-scales a private clone; the caller's matrix must
// be left untouched.
func TestPlanScaledIntDoesNotMutateInput(t *testing.T) {
	a := sparse.RandomUniform(200, 30, 0.1, 8)
	before := append([]float64(nil), a.Val...)
	p := mustPlan(t, a, 2*a.N, Options{Dist: rng.ScaledInt, Workers: 1})
	mustExecute(t, p, dense.NewMatrix(p.D(), p.N()))
	for i, v := range a.Val {
		if v != before[i] {
			t.Fatalf("input value %d mutated: %g -> %g", i, before[i], v)
		}
	}
}

func TestPlanEmptyMatrix(t *testing.T) {
	empty, err := sparse.NewCSC(10, 0, []int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t, empty, 5, Options{})
	st := mustExecute(t, p, dense.NewMatrix(5, 0))
	if st.Samples != 0 {
		t.Errorf("empty matrix generated %d samples", st.Samples)
	}
}
