package core

import (
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
)

// MaterializeS explicitly builds the d×m sketching matrix S that a Sketcher
// with the same options would generate implicitly — the "naive approach" of
// §II-A that pre-generates S, used by the pre-generated baselines of
// Tables II/IV and Figure 4 and by tests that cross-check the on-the-fly
// kernels against an explicit product.
//
// The entries are anchored at the same (block-row, column) checkpoints the
// kernels use, so S·A computed densely agrees exactly with Sketch's output
// under the same blocking.
func (sk *Sketcher) MaterializeS(m int) *dense.Matrix {
	s := rng.NewSampler(rng.NewSource(sk.opts.Source, sk.opts.Seed), sk.opts.Dist)
	bd, _ := sk.blockSizes(1)
	out := dense.NewMatrix(sk.d, m)
	if rng.IsSparse(sk.opts.Dist) {
		// Sparse family: a column is s scattered ±1/√s entries drawn from
		// the reserved per-column checkpoint — no block-row anchoring, the
		// column is blocking-independent by construction.
		sp := rng.SJLTSparsity(sk.opts.Dist, sk.opts.Sparsity, sk.d)
		scale := rng.SJLTScale(sp)
		pos := make([]int, sp)
		val := make([]float64, sp)
		for j := 0; j < m; j++ {
			s.FillSJLTColumn(uint64(j), sk.d, sp, scale, pos, val)
			col := out.Col(j)
			for b := 0; b < sp; b++ {
				col[pos[b]] = val[b]
			}
		}
		return out
	}
	for i0 := 0; i0 < sk.d; i0 += bd {
		d1 := bd
		if i0+d1 > sk.d {
			d1 = sk.d - i0
		}
		v := make([]float64, d1)
		for j := 0; j < m; j++ {
			s.SetState(uint64(i0), uint64(j))
			s.Fill(v)
			copy(out.Col(j)[i0:i0+d1], v)
		}
	}
	// The scaling trick stores S in the integer domain and pre-scales A;
	// a materialised S must carry the scale itself to represent the same
	// linear map.
	if sk.opts.Dist == rng.ScaledInt {
		for j := 0; j < m; j++ {
			dense.Scal(rng.Scale31, out.Col(j))
		}
	}
	return out
}
