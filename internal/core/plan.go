package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sketchsp/internal/analysis"
	"sketchsp/internal/dense"
	"sketchsp/internal/kernels"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// PlanStats reports what planning decided and what it cost. All one-time
// inspector work — AlgAuto resolution, block-size choice, task-list
// construction, the CSC→BlockedCSR conversion, the ScaledInt pre-scale —
// is charged here, never to Plan.Execute.
type PlanStats struct {
	// Algorithm is the concrete kernel the plan dispatches to (AlgAuto is
	// resolved at plan time via the §III-B cost model).
	Algorithm Algorithm
	// BlockD and BlockN are the resolved block sizes (b_d, b_n).
	BlockD, BlockN int
	// Workers is the resolved worker count (clamped to the task count).
	Workers int
	// Tasks is the number of outer-block cells of Algorithm 1's blocking.
	Tasks int
	// TunedBlockN reports that BlockN came from the §III-B sample-count
	// tuner (Options.TuneBlockN) rather than the static default.
	TunedBlockN bool
	// ConvertTime is the CSC→BlockedCSR conversion time (Alg4 only),
	// charged exactly once per plan. Repeated Execute calls never re-pay
	// it; Execute's Stats report ConvertTime == 0.
	ConvertTime time.Duration
	// PlanTime is the total planning wall clock, including ConvertTime.
	PlanTime time.Duration
}

// workspace is the per-worker mutable state of a plan: a private sampler,
// the d₁-length scratch vector the kernels overwrite with generated entries
// of S, a reusable sub-view header for Â, and the per-round accumulators.
// Pre-allocating these at plan time is what makes Execute allocation-free.
type workspace struct {
	s          *rng.Sampler
	v          []float64
	sub        dense.Matrix
	samples    int64
	sampleTime time.Duration
}

// planPool is a plan's persistent worker pool: goroutines started lazily on
// the first parallel Execute and reused by every subsequent call until
// Plan.Close.
type planPool struct {
	work chan blockTask
	wg   sync.WaitGroup
}

// Plan is a reusable execution plan for Â = S·A — the inspector half of an
// inspector–executor split. NewPlan inspects (A, d, Options) once: it
// resolves AlgAuto with the §III-B cost model, fixes (b_d, b_n), builds the
// outer-block task list, performs the CSC→BlockedCSR conversion (Alg4) and
// the ScaledInt pre-scaled clone of A, and allocates per-worker samplers and
// scratch. Execute then computes the sketch with zero steady-state
// allocations, dispatching onto a persistent worker pool shared across
// calls.
//
// A Plan pins the matrix it was built for: the caller must not mutate A
// between Execute calls. Execute is safe for concurrent use (calls are
// serialised internally; each one saturates the plan's workers anyway).
// Close releases the worker pool; a Plan must not be copied.
type Plan struct {
	d    int
	n    int // columns of A = columns of Â
	opts Options
	alg  Algorithm
	bd   int
	bn   int

	flops   int64
	a       *sparse.CSC        // Alg3 input (ScaledInt: pre-scaled clone)
	slabs   []*sparse.CSC      // Alg3 column slabs, indexed by j0/bn
	blocked *sparse.BlockedCSR // Alg4 structure, converted once
	tasks   []blockTask
	workers int
	stats   PlanStats

	mu      sync.Mutex // serialises Execute/Close
	round   sync.WaitGroup
	ws      []*workspace
	pool    *planPool
	curAhat *dense.Matrix
	closed  bool
}

// NewPlan inspects (a, d, opts) and returns an executable plan. It performs
// every per-matrix setup cost exactly once so that repeated Execute calls —
// the SAP solver, RandSVD power schemes, serving workloads — run at
// steady-state kernel speed.
func NewPlan(a *sparse.CSC, d int, opts Options) (*Plan, error) {
	if a == nil {
		return nil, fmt.Errorf("core: NewPlan: nil input matrix")
	}
	if d <= 0 {
		return nil, fmt.Errorf("core: sketch size d=%d must be positive", d)
	}
	if opts.BlockD < 0 || opts.BlockN < 0 || opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative option (BlockD=%d BlockN=%d Workers=%d)",
			opts.BlockD, opts.BlockN, opts.Workers)
	}
	start := time.Now()
	p := &Plan{d: d, n: a.N, opts: opts}

	// Resolve AlgAuto once, at plan time (the inspector of §III-B).
	alg := opts.Algorithm
	if alg == AlgAuto {
		alg = ChooseAlgorithm(a, d, opts, opts.RNGCost, 0)
	}
	p.alg = alg
	p.opts.Algorithm = alg

	bd, bn := resolveBlockSizes(d, a.N, alg, opts.BlockD, opts.BlockN)
	if opts.TuneBlockN && opts.BlockN == 0 && alg == Alg4 && a.N > 0 {
		// Feed the §III-B sample-count tuner into the block-size choice.
		// b_n affects traffic only, never RNG checkpoints, so tuning
		// cannot change the sketch values.
		h := opts.RNGCost
		if h <= 0 {
			h = 1
		}
		h *= rng.DistCost(opts.Dist)
		if ranked := analysis.TuneBlockN(a, d, h, nil); len(ranked) > 0 {
			bn = ranked[0].BlockN
			p.stats.TunedBlockN = true
		}
	}
	p.bd, p.bn = bd, bn

	// The scaling trick stores S as raw int32 values; fold the 2⁻³¹ factor
	// into A once per plan so the hot loop does no per-sample scaling
	// (§III-C: computing (Sf)(A/f) with f = 1/maxint).
	src := a
	if opts.Dist == rng.ScaledInt {
		src = a.Clone()
		src.Scale(rng.Scale31)
	}
	p.a = src
	p.flops = 2 * int64(d) * int64(a.NNZ())
	p.tasks = makeTasks(d, a.N, bd, bn)

	w := opts.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(p.tasks) {
		w = len(p.tasks)
	}
	if w < 1 {
		w = 1
	}
	p.workers = w

	nSlabs := 0
	if bn > 0 {
		nSlabs = (a.N + bn - 1) / bn
	}
	if alg == Alg4 {
		tc := time.Now()
		p.blocked = sparse.NewBlockedCSRParallel(src, bn, w)
		p.stats.ConvertTime = time.Since(tc)
	} else {
		// Pre-slice the CSC column slabs so Execute never allocates the
		// per-slab headers Kernel3 consumes.
		p.slabs = make([]*sparse.CSC, nSlabs)
		for k := 0; k < nSlabs; k++ {
			j0 := k * bn
			j1 := j0 + bn
			if j1 > a.N {
				j1 = a.N
			}
			p.slabs[k] = src.ColSlice(j0, j1)
		}
	}

	p.ws = make([]*workspace, w)
	for i := range p.ws {
		p.ws[i] = &workspace{
			s: rng.NewSampler(rng.NewSource(opts.Source, opts.Seed), opts.Dist),
			v: make([]float64, bd),
		}
	}

	p.stats.Algorithm = alg
	p.stats.BlockD, p.stats.BlockN = bd, bn
	p.stats.Workers = w
	p.stats.Tasks = len(p.tasks)
	p.stats.PlanTime = time.Since(start)
	return p, nil
}

// D returns the sketch size (rows of Â).
func (p *Plan) D() int { return p.d }

// N returns the column count of the planned input (columns of Â).
func (p *Plan) N() int { return p.n }

// Options returns the plan's configuration with Algorithm resolved.
func (p *Plan) Options() Options { return p.opts }

// Stats returns what planning decided and cost. The one-time ConvertTime
// lives here; Execute's per-call Stats never include it.
func (p *Plan) Stats() PlanStats { return p.stats }

// Execute computes Â = S·A into the caller's d×n matrix, overwriting it.
// Steady-state calls are allocation-free: samplers, scratch vectors, the
// task list, and the blocked sparse structure are all reused from the plan,
// and the worker pool persists across calls (started lazily on the first
// parallel Execute, shut down by Close). The result is bit-identical to the
// one-shot Sketcher path under the same (seed, d, blocking), independent of
// the worker count and of how many times the plan has been executed.
func (p *Plan) Execute(ahat *dense.Matrix) (Stats, error) {
	if ahat == nil {
		return Stats{}, fmt.Errorf("core: Execute: nil output matrix")
	}
	if ahat.Rows != p.d || ahat.Cols != p.n {
		return Stats{}, fmt.Errorf("core: Execute Â is %dx%d, want %dx%d",
			ahat.Rows, ahat.Cols, p.d, p.n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Stats{}, fmt.Errorf("core: Execute on closed Plan")
	}
	start := time.Now()
	ahat.Zero()
	for _, ws := range p.ws {
		ws.samples = 0
		ws.sampleTime = 0
	}
	p.curAhat = ahat
	if p.workers > 1 {
		if p.pool == nil {
			p.startPool()
		}
		p.round.Add(len(p.tasks))
		for _, t := range p.tasks {
			p.pool.work <- t
		}
		p.round.Wait()
	} else {
		ws := p.ws[0]
		for _, t := range p.tasks {
			p.runTask(t, ws)
		}
	}
	p.curAhat = nil

	st := Stats{Flops: p.flops}
	for _, ws := range p.ws {
		st.Samples += ws.samples
		st.SampleTime += ws.sampleTime
	}
	st.Total = time.Since(start)
	return st, nil
}

// Close shuts down the plan's persistent worker pool. It is idempotent;
// Execute after Close returns an error. Sequential plans (Workers == 1)
// hold no pool and Close is a no-op for them.
func (p *Plan) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.pool != nil {
		close(p.pool.work)
		p.pool.wg.Wait()
		p.pool = nil
	}
}

// startPool launches the persistent workers. Worker i owns workspace i for
// the lifetime of the pool; round state (curAhat, accumulator resets) is
// published to workers by the happens-before edges of the task channel and
// collected back through the round WaitGroup.
func (p *Plan) startPool() {
	p.pool = &planPool{work: make(chan blockTask)}
	for i := 0; i < p.workers; i++ {
		ws := p.ws[i]
		p.pool.wg.Add(1)
		go func() {
			defer p.pool.wg.Done()
			for t := range p.pool.work {
				p.runTask(t, ws)
				p.round.Done()
			}
		}()
	}
}

// runTask executes one outer-block cell. Cells write disjoint regions of Â,
// so tasks parallelise without synchronisation (§II-C); results are
// reproducible regardless of scheduling because every kernel call re-anchors
// the RNG at its own (block-row, sparse-row) checkpoints.
func (p *Plan) runTask(t blockTask, ws *workspace) {
	sub := &ws.sub
	p.curAhat.ViewInto(sub, t.i0, t.j0, t.d1, t.n1)
	if p.alg == Alg4 {
		slab := p.blocked.Blocks[t.j0/p.bn]
		if p.opts.Timed {
			ws.samples += kernels.Kernel4Timed(sub, slab, uint64(t.i0), ws.s, ws.v, &ws.sampleTime)
		} else {
			ws.samples += kernels.Kernel4(sub, slab, uint64(t.i0), ws.s, ws.v)
		}
		return
	}
	slab := p.slabs[t.j0/p.bn]
	if p.opts.Timed {
		ws.samples += kernels.Kernel3Timed(sub, slab, uint64(t.i0), ws.s, ws.v, &ws.sampleTime)
	} else {
		ws.samples += kernels.Kernel3(sub, slab, uint64(t.i0), ws.s, ws.v)
	}
}
