package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sketchsp/internal/analysis"
	"sketchsp/internal/dense"
	"sketchsp/internal/kernels"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// PlanStats reports what planning decided and what it cost. All one-time
// inspector work — AlgAuto resolution, block-size choice, the nnz-aware
// column partition, task-list construction, the CSC→BlockedCSR conversion,
// the ScaledInt pre-scale — is charged here, never to Plan.Execute.
type PlanStats struct {
	// Algorithm is the concrete kernel the plan dispatches to (AlgAuto is
	// resolved at plan time via the §III-B cost model).
	Algorithm Algorithm
	// BlockD and BlockN are the resolved block sizes (b_d, b_n). For the
	// weighted schedulers BlockN is the nominal grid width the partition
	// started from; actual slab widths vary (see Slabs/SlabsSplit).
	BlockD, BlockN int
	// Workers is the resolved worker count (clamped to the task count).
	Workers int
	// Sparsity is the resolved per-column nonzero count s for the sparse
	// sketch family (SJLT/CountSketch): Options.Sparsity after the default
	// ⌈√d⌉ rule and the [1, d] clamp, 1 for CountSketch. 0 for dense
	// distributions.
	Sparsity int
	// Tasks is the number of outer-block cells after partitioning.
	Tasks int
	// Scheduler is the task scheduler the plan executes with.
	Scheduler Scheduler
	// Slabs is the number of column slabs in the final partition.
	Slabs int
	// SlabsSplit counts uniform grid slabs the nnz-aware partitioner
	// subdivided; SlabsFused counts boundary removals from fusing light
	// neighbours. Both 0 for SchedUniform.
	SlabsSplit, SlabsFused int
	// MinTaskWeight/MaxTaskWeight/MeanTaskWeight summarise the nnz·d1
	// task-weight histogram the scheduler balances on.
	MinTaskWeight, MaxTaskWeight int64
	MeanTaskWeight               float64
	// PredictedImbalance is the load-imbalance ratio of the LPT prepacking
	// (analysis.PredictImbalance): the planner's a-priori estimate before
	// stealing. 1.0 = perfectly balanced queues.
	PredictedImbalance float64
	// TunedBlockN reports that BlockN came from the §III-B sample-count
	// tuner (Options.TuneBlockN) rather than the static default.
	TunedBlockN bool
	// ConvertTime is the CSC→BlockedCSR conversion time (Alg4 only),
	// charged exactly once per plan. Repeated Execute calls never re-pay
	// it; Execute's Stats report ConvertTime == 0.
	ConvertTime time.Duration
	// PlanTime is the total planning wall clock, including ConvertTime.
	PlanTime time.Duration
}

// workspace is the per-worker mutable state of a plan: a private sampler,
// the d₁-length scratch vector the kernels overwrite with generated entries
// of S, a reusable sub-view header for Â, and the per-round accumulators.
// Pre-allocating these at plan time is what makes Execute allocation-free.
type workspace struct {
	s          *rng.Sampler
	v          []float64
	pos        []int     // sparse family: per-column position scratch (len s)
	sval       []float64 // sparse family: per-column value scratch (len s)
	sub        dense.Matrix
	samples    int64
	sampleTime time.Duration
	busy       time.Duration
	steals     int64
}

// planPool is a plan's persistent worker pool: goroutines started lazily on
// the first parallel Execute and reused by every subsequent call until
// Plan.Close. SchedUniform workers drain the shared work channel;
// weighted-scheduler workers wake once per round on their private start
// channel and drain/steal from the plan's sched queues.
type planPool struct {
	work  chan blockTask
	start []chan struct{}
	wg    sync.WaitGroup
}

// Plan is a reusable execution plan for Â = S·A — the inspector half of an
// inspector–executor split. NewPlan inspects (A, d, Options) once: it
// resolves AlgAuto with the §III-B cost model, fixes (b_d, b_n), refines the
// column grid into an nnz-balanced partition, builds the weighted task list
// and LPT-prepacked work-stealing queues, performs the CSC→BlockedCSR
// conversion (Alg4) and the ScaledInt pre-scaled clone of A, and allocates
// per-worker samplers and scratch. Execute then computes the sketch with
// zero steady-state allocations, dispatching onto a persistent worker pool
// shared across calls.
//
// A Plan pins the matrix it was built for: the caller must not mutate A
// between Execute calls. Execute is safe for concurrent use (calls are
// serialised internally; each one saturates the plan's workers anyway).
// A Plan must not be copied.
//
// Lifecycle: a plan is reference-counted. NewPlan returns it holding one
// reference, which Close releases (idempotently). Shared holders — a plan
// cache serving concurrent requests — take additional references with
// Retain and drop them with Release; the worker pool shuts down when the
// last reference goes, never mid-Execute, so an evicting cache can Close a
// plan while requests still execute on it.
type Plan struct {
	d    int
	n    int // columns of A = columns of Â
	opts Options
	alg  Algorithm
	bd   int
	bn   int

	// Sparse sketch family: resolved per-column nonzero count (0 = dense)
	// and nonzero magnitude 1/√s.
	sparsity  int
	sjltScale float64

	flops    int64
	a        *sparse.CSC        // Alg3 input (ScaledInt: pre-scaled clone)
	colStart []int              // column partition; slab k = [colStart[k], colStart[k+1])
	slabs    []*sparse.CSC      // Alg3 column slabs, indexed by task.slab
	blocked  *sparse.BlockedCSR // Alg4 structure, converted once
	tasks    []blockTask
	workers  int
	schedIs  Scheduler
	sch      *sched
	busyBuf  []time.Duration
	stats    PlanStats

	// gate is a capacity-1 semaphore serialising Execute rounds and the
	// final shutdown. Unlike a sync.Mutex it can be acquired in a select
	// against ctx.Done(), which is what makes ExecuteContext's queueing
	// cancellable.
	gate     chan struct{}
	met      *PlanMetrics // optional execute observability (SetMetrics)
	refs     atomic.Int64 // live references; shutdown when it hits 0
	closeReq atomic.Bool  // Close already released the initial reference
	round    sync.WaitGroup
	ws       []*workspace
	pool     *planPool
	curAhat  *dense.Matrix
	curCtx   context.Context // non-nil only while a cancellable round runs
	closed   bool            // guarded by gate
}

// NewPlan inspects (a, d, opts) and returns an executable plan. It performs
// every per-matrix setup cost exactly once so that repeated Execute calls —
// the SAP solver, RandSVD power schemes, serving workloads — run at
// steady-state kernel speed.
func NewPlan(a *sparse.CSC, d int, opts Options) (*Plan, error) {
	if a == nil {
		return nil, ErrNilMatrix
	}
	if d <= 0 {
		return nil, fmt.Errorf("%w: d=%d", ErrInvalidSketchSize, d)
	}
	if opts.BlockD < 0 || opts.BlockN < 0 || opts.Workers < 0 || opts.Sparsity < 0 {
		return nil, fmt.Errorf("%w: negative (BlockD=%d BlockN=%d Workers=%d Sparsity=%d)",
			ErrBadOptions, opts.BlockD, opts.BlockN, opts.Workers, opts.Sparsity)
	}
	if opts.Sched < SchedWeighted || opts.Sched > SchedUniform {
		return nil, fmt.Errorf("%w: unknown scheduler %d", ErrBadOptions, int(opts.Sched))
	}
	if err := quickValidate(a); err != nil {
		return nil, err
	}
	start := time.Now()
	p := &Plan{d: d, n: a.N, opts: opts, schedIs: opts.Sched, gate: make(chan struct{}, 1)}
	p.refs.Store(1)

	// Resolve the sparse-family nonzero count once: the default ⌈√d⌉ rule,
	// the [1, d] clamp and the CountSketch s=1 pin all happen here, so the
	// kernels, the cost model and PlanStats agree on one effective s.
	if rng.IsSparse(opts.Dist) {
		p.sparsity = rng.SJLTSparsity(opts.Dist, opts.Sparsity, d)
		p.sjltScale = rng.SJLTScale(p.sparsity)
		p.opts.Sparsity = p.sparsity
	} else {
		p.opts.Sparsity = 0
	}

	// Resolve AlgAuto once, at plan time (the inspector of §III-B).
	alg := opts.Algorithm
	if alg == AlgAuto {
		alg = ChooseAlgorithm(a, d, p.opts, opts.RNGCost, 0)
	}
	p.alg = alg
	p.opts.Algorithm = alg

	bd, bn := resolveBlockSizes(d, a.N, alg, opts.BlockD, opts.BlockN)
	if opts.TuneBlockN && opts.BlockN == 0 && alg == Alg4 && a.N > 0 {
		// Feed the §III-B sample-count tuner into the block-size choice.
		// b_n affects traffic only, never RNG checkpoints, so tuning
		// cannot change the sketch values.
		h := opts.RNGCost
		if h <= 0 {
			h = 1
		}
		h *= rng.DistCost(opts.Dist)
		if ranked := analysis.TuneBlockN(a, d, h, nil); len(ranked) > 0 {
			bn = ranked[0].BlockN
			p.stats.TunedBlockN = true
		}
	}
	p.bd, p.bn = bd, bn

	// The scaling trick stores S as raw int32 values; fold the 2⁻³¹ factor
	// into A once per plan so the hot loop does no per-sample scaling
	// (§III-C: computing (Sf)(A/f) with f = 1/maxint).
	src := a
	if opts.Dist == rng.ScaledInt {
		src = a.Clone()
		src.Scale(rng.Scale31)
	}
	p.a = src
	if p.sparsity > 0 {
		// Sparse family: each stored entry of A meets only the s nonzeros
		// of its S column, not all d rows.
		p.flops = 2 * int64(p.sparsity) * int64(a.NNZ())
	} else {
		p.flops = 2 * int64(d) * int64(a.NNZ())
	}

	// Resolve the worker budget before partitioning: the slab target
	// scales with it. The final worker count is re-clamped to the task
	// count below.
	w := opts.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}

	// Column partition: the uniform b_n grid for SchedUniform, the
	// nnz-refined partition otherwise. Repartitioning is bit-safe — slab
	// boundaries stay on whole columns and every kernel call re-anchors
	// the RNG per (block-row, sparse-row) — see schedule.go.
	blockRows := (d + bd - 1) / bd
	if p.schedIs == SchedUniform {
		p.colStart = sparse.UniformColSplit(a.N, bn)
	} else {
		p.colStart, p.stats.SlabsSplit, p.stats.SlabsFused =
			colPartition(src, bn, targetSlabCount(w, blockRows, a.N))
	}
	p.tasks = makeWeightedTasks(d, bd, src, p.colStart, p.sparsity)

	if w > len(p.tasks) {
		w = len(p.tasks)
	}
	if w < 1 {
		w = 1
	}
	p.workers = w

	nSlabs := len(p.colStart) - 1
	if alg == Alg4 {
		tc := time.Now()
		p.blocked = sparse.NewBlockedCSRPartition(src, p.colStart, w)
		p.stats.ConvertTime = time.Since(tc)
	} else {
		// Pre-slice the CSC column slabs so Execute never allocates the
		// per-slab headers Kernel3 consumes.
		p.slabs = make([]*sparse.CSC, nSlabs)
		for k := 0; k < nSlabs; k++ {
			p.slabs[k] = src.ColSlice(p.colStart[k], p.colStart[k+1])
		}
	}

	p.ws = make([]*workspace, w)
	for i := range p.ws {
		ws := &workspace{
			s: rng.NewSampler(rng.NewSource(opts.Source, opts.Seed), opts.Dist),
		}
		if p.sparsity > 0 {
			ws.pos = make([]int, p.sparsity)
			ws.sval = make([]float64, p.sparsity)
		} else {
			ws.v = make([]float64, bd)
		}
		p.ws[i] = ws
	}
	p.busyBuf = make([]time.Duration, w)
	if p.schedIs != SchedUniform && w > 1 {
		p.sch = newSched(p.tasks, w)
	}

	p.stats.Algorithm = alg
	p.stats.BlockD, p.stats.BlockN = bd, bn
	p.stats.Workers = w
	p.stats.Sparsity = p.sparsity
	p.stats.Tasks = len(p.tasks)
	p.stats.Scheduler = p.schedIs
	p.stats.Slabs = nSlabs
	if len(p.tasks) > 0 {
		min, max, sum := p.tasks[0].weight, p.tasks[0].weight, int64(0)
		weights := make([]int64, len(p.tasks))
		for i, t := range p.tasks {
			weights[i] = t.weight
			if t.weight < min {
				min = t.weight
			}
			if t.weight > max {
				max = t.weight
			}
			sum += t.weight
		}
		p.stats.MinTaskWeight, p.stats.MaxTaskWeight = min, max
		p.stats.MeanTaskWeight = float64(sum) / float64(len(p.tasks))
		p.stats.PredictedImbalance = analysis.PredictImbalance(weights, w)
	}
	p.stats.PlanTime = time.Since(start)
	return p, nil
}

// D returns the sketch size (rows of Â).
func (p *Plan) D() int { return p.d }

// N returns the column count of the planned input (columns of Â).
func (p *Plan) N() int { return p.n }

// Options returns the plan's configuration with Algorithm resolved.
func (p *Plan) Options() Options { return p.opts }

// Stats returns what planning decided and cost. The one-time ConvertTime
// lives here; Execute's per-call Stats never include it.
func (p *Plan) Stats() PlanStats { return p.stats }

// Execute computes Â = S·A into the caller's d×n matrix, overwriting it.
// Steady-state calls are allocation-free: samplers, scratch vectors, the
// task list, the scheduler queues, and the blocked sparse structure are all
// reused from the plan, and the worker pool persists across calls (started
// lazily on the first parallel Execute, shut down by Close). The result is
// bit-identical to the one-shot Sketcher path under the same (seed, d,
// blocking), independent of the worker count, the scheduler, and of how
// many times the plan has been executed.
func (p *Plan) Execute(ahat *dense.Matrix) (Stats, error) {
	return p.ExecuteContext(context.Background(), ahat)
}

// ExecuteContext is Execute with cancellation: the wait for the plan's
// execute slot is a select against ctx.Done(), and once the round is
// running the workers poll ctx between tasks and bail out early on
// cancellation — a deadline or cancel therefore propagates into the worker
// pool instead of letting the round run to completion. On a ctx error the
// returned Stats are zero and ahat holds a partial, unusable sketch.
// Like Execute, steady-state calls allocate nothing.
func (p *Plan) ExecuteContext(ctx context.Context, ahat *dense.Matrix) (Stats, error) {
	if ahat == nil {
		return Stats{}, fmt.Errorf("core: Execute: nil output matrix")
	}
	if ahat.Rows != p.d || ahat.Cols != p.n {
		return Stats{}, fmt.Errorf("core: Execute Â is %dx%d, want %dx%d",
			ahat.Rows, ahat.Cols, p.d, p.n)
	}
	select {
	case p.gate <- struct{}{}:
	case <-ctx.Done():
		return Stats{}, ctx.Err()
	}
	defer func() { <-p.gate }()
	if p.closed {
		return Stats{}, ErrPlanClosed
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	start := time.Now()
	ahat.Zero()
	for _, ws := range p.ws {
		ws.samples = 0
		ws.sampleTime = 0
		ws.busy = 0
		ws.steals = 0
	}
	p.curAhat = ahat
	if ctx.Done() != nil {
		// Publish the context for the workers' between-task cancellation
		// polls. The channel sends below give the happens-before edge; the
		// field stays nil for uncancellable contexts so the hot path pays
		// no Err() calls.
		p.curCtx = ctx
	}
	if p.workers > 1 {
		if p.pool == nil {
			p.startPool()
		}
		if p.schedIs == SchedUniform {
			p.round.Add(len(p.tasks))
			for _, t := range p.tasks {
				p.pool.work <- t
			}
			p.round.Wait()
		} else {
			// One wake token per worker; each worker drains its LPT
			// queue, then steals, then Dones exactly once. The private
			// channels give the happens-before edge that publishes the
			// counter reset; the WaitGroup publishes results back.
			p.sch.reset()
			p.round.Add(p.workers)
			for _, c := range p.pool.start {
				c <- struct{}{}
			}
			p.round.Wait()
		}
	} else {
		ws := p.ws[0]
		t0 := time.Now()
		for _, t := range p.tasks {
			p.runTask(t, ws)
		}
		ws.busy = time.Since(t0)
	}
	p.curAhat = nil
	p.curCtx = nil
	if err := ctx.Err(); err != nil {
		// The round was cut short: remaining tasks were skipped, so ahat
		// is partial garbage. Report the cancellation, not stats.
		return Stats{}, err
	}

	st := Stats{Flops: p.flops}
	var maxBusy, sumBusy time.Duration
	for i, ws := range p.ws {
		st.Samples += ws.samples
		st.SampleTime += ws.sampleTime
		st.Steals += ws.steals
		p.busyBuf[i] = ws.busy
		sumBusy += ws.busy
		if ws.busy > maxBusy {
			maxBusy = ws.busy
		}
	}
	st.WorkerBusy = p.busyBuf
	if sumBusy > 0 {
		st.Imbalance = float64(maxBusy) * float64(p.workers) / float64(sumBusy)
	}
	st.Total = time.Since(start)
	p.recordMetrics(&st)
	return st, nil
}

// Close releases the reference NewPlan handed out. It is idempotent. If no
// Retain-ed references remain, the worker pool shuts down (waiting out any
// in-flight Execute) and subsequent Executes return ErrPlanClosed;
// otherwise shutdown is deferred to the final Release.
func (p *Plan) Close() {
	if p.closeReq.CompareAndSwap(false, true) {
		p.Release()
	}
}

// Retain takes an additional reference on the plan, keeping its worker pool
// alive across Close until the matching Release. It reports false — and
// takes nothing — when every reference is already gone (the plan is closed
// or closing); a caller seeing false must not Execute.
func (p *Plan) Retain() bool {
	for {
		r := p.refs.Load()
		if r <= 0 {
			return false
		}
		if p.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops a reference taken by Retain (or, via Close, the initial
// one). The last Release shuts the worker pool down; it waits for an
// in-flight Execute to finish first, so a cache can release a plan that
// concurrent requests are still executing on without a use-after-close.
func (p *Plan) Release() {
	n := p.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("core: Plan reference over-released")
	}
	p.gate <- struct{}{}
	defer func() { <-p.gate }()
	if p.closed {
		return
	}
	p.closed = true
	if p.pool != nil {
		close(p.pool.work)
		for _, c := range p.pool.start {
			close(c)
		}
		p.pool.wg.Wait()
		p.pool = nil
	}
}

// startPool launches the persistent workers. Worker i owns workspace i for
// the lifetime of the pool; round state (curAhat, accumulator and scheduler
// resets) is published to workers by the happens-before edges of the task
// or start channels and collected back through the round WaitGroup.
func (p *Plan) startPool() {
	p.pool = &planPool{work: make(chan blockTask)}
	if p.schedIs == SchedUniform {
		for i := 0; i < p.workers; i++ {
			ws := p.ws[i]
			p.pool.wg.Add(1)
			go func() {
				defer p.pool.wg.Done()
				for t := range p.pool.work {
					t0 := time.Now()
					p.runTask(t, ws)
					ws.busy += time.Since(t0)
					p.round.Done()
				}
			}()
		}
		return
	}
	p.pool.start = make([]chan struct{}, p.workers)
	for i := 0; i < p.workers; i++ {
		i := i
		ws := p.ws[i]
		c := make(chan struct{})
		p.pool.start[i] = c
		p.pool.wg.Add(1)
		go func() {
			defer p.pool.wg.Done()
			for range c {
				p.runWorker(i, ws)
				p.round.Done()
			}
		}()
	}
}

// runWorker is one weighted-scheduler worker's round: drain the own LPT
// queue front-to-back (heaviest first), then — with stealing enabled — keep
// claiming from whichever victim has the most remaining queued weight until
// every queue is empty. Claims go through the victim's atomic cursor, so a
// task runs exactly once no matter who wins it; the sketch bits cannot
// depend on the winner because every kernel call re-anchors the RNG.
func (p *Plan) runWorker(w int, ws *workspace) {
	t0 := time.Now()
	s := p.sch
	for {
		ti := s.claim(w)
		if ti < 0 {
			break
		}
		p.runTask(p.tasks[ti], ws)
	}
	if p.schedIs == SchedWeighted {
		for {
			v := s.victim(w)
			if v < 0 {
				break
			}
			ti := s.claim(v)
			if ti < 0 {
				// Lost the race for the victim's tail; let the owner's
				// in-flight remain-updates land before rescanning.
				runtime.Gosched()
				continue
			}
			ws.steals++
			p.runTask(p.tasks[ti], ws)
		}
	}
	ws.busy += time.Since(t0)
}

// runTask executes one outer-block cell. Cells write disjoint regions of Â,
// so tasks parallelise without synchronisation (§II-C); results are
// reproducible regardless of scheduling because every kernel call re-anchors
// the RNG at its own (block-row, sparse-row) checkpoints.
func (p *Plan) runTask(t blockTask, ws *workspace) {
	if c := p.curCtx; c != nil && c.Err() != nil {
		// Round cancelled: skip the compute but keep draining, so the
		// claim/channel protocol and the round WaitGroup stay balanced.
		return
	}
	sub := &ws.sub
	p.curAhat.ViewInto(sub, t.i0, t.j0, t.d1, t.n1)
	if p.sparsity > 0 {
		// Sparse family: scatter kernels, s nonzeros per S column. The
		// draw is keyed off the global column index alone (see rng), so
		// blockRow only selects which positions land in this block.
		if p.alg == Alg4 {
			slab := p.blocked.Blocks[t.slab]
			if p.opts.Timed {
				ws.samples += kernels.Kernel4SJLTTimed(sub, slab, uint64(t.i0), ws.s, p.d, p.sparsity, p.sjltScale, ws.pos, ws.sval, &ws.sampleTime)
			} else {
				ws.samples += kernels.Kernel4SJLT(sub, slab, uint64(t.i0), ws.s, p.d, p.sparsity, p.sjltScale, ws.pos, ws.sval)
			}
			return
		}
		slab := p.slabs[t.slab]
		if p.opts.Timed {
			ws.samples += kernels.Kernel3SJLTTimed(sub, slab, uint64(t.i0), ws.s, p.d, p.sparsity, p.sjltScale, ws.pos, ws.sval, &ws.sampleTime)
		} else {
			ws.samples += kernels.Kernel3SJLT(sub, slab, uint64(t.i0), ws.s, p.d, p.sparsity, p.sjltScale, ws.pos, ws.sval)
		}
		return
	}
	if p.alg == Alg4 {
		slab := p.blocked.Blocks[t.slab]
		if p.opts.Timed {
			ws.samples += kernels.Kernel4Timed(sub, slab, uint64(t.i0), ws.s, ws.v, &ws.sampleTime)
		} else {
			ws.samples += kernels.Kernel4(sub, slab, uint64(t.i0), ws.s, ws.v)
		}
		return
	}
	slab := p.slabs[t.slab]
	if p.opts.Timed {
		ws.samples += kernels.Kernel3Timed(sub, slab, uint64(t.i0), ws.s, ws.v, &ws.sampleTime)
	} else {
		ws.samples += kernels.Kernel3(sub, slab, uint64(t.i0), ws.s, ws.v)
	}
}
