package core

import (
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

func sumWeights(tasks []blockTask) int64 {
	var s int64
	for _, t := range tasks {
		s += t.weight
	}
	return s
}

func checkPartition(t *testing.T, colStart []int, n int) {
	t.Helper()
	if len(colStart) < 1 || colStart[0] != 0 {
		t.Fatalf("partition %v does not start at 0", colStart)
	}
	if n > 0 && colStart[len(colStart)-1] != n {
		t.Fatalf("partition %v does not end at %d", colStart, n)
	}
	for k := 1; k < len(colStart); k++ {
		if colStart[k] <= colStart[k-1] {
			t.Fatalf("partition %v not strictly increasing at %d", colStart, k)
		}
	}
}

func TestColPartitionUniformInputKeepsGrid(t *testing.T) {
	// A uniform matrix has nothing to rebalance: every grid slab sits at
	// the mean, so neither the split rule (> 2·ideal) nor the fuse rule
	// (combined ≤ min(ideal, gridMean)) can fire, and the cache-motivated
	// b_n grid survives verbatim.
	a := sparse.RandomUniform(2000, 1000, 0.02, 3)
	colStart, splits, fuses := colPartition(a, 100, 10)
	checkPartition(t, colStart, a.N)
	if splits != 0 {
		t.Errorf("uniform matrix: %d splits, want 0", splits)
	}
	if fuses != 0 {
		t.Errorf("uniform matrix: %d fuses, want 0", fuses)
	}
	if len(colStart) != 11 {
		t.Errorf("uniform matrix: %d boundaries, want the 11 grid boundaries", len(colStart))
	}
}

func TestColPartitionSplitsHeavySlab(t *testing.T) {
	// Abnormal_B: ~all mass in the middle third. With bn=100 the middle
	// grid slabs each hold ~12k nnz (far above the ideal 5k share) and the
	// outer slabs are near-empty, so the partitioner must both split the
	// heavy slabs and fuse the light runs.
	a := sparse.AbnormalB(5000, 1500, 60000, 2998.0/3000.0, 7)
	colStart, splits, fuses := colPartition(a, 100, 12)
	checkPartition(t, colStart, a.N)
	if splits == 0 {
		t.Fatal("heavy middle slab was not split")
	}
	if fuses == 0 {
		t.Fatal("near-empty outer slabs were not fused")
	}
	// Max slab nnz should now be within ~2× the ideal share instead of
	// holding ~100% of the matrix.
	ideal := int64(a.NNZ()) / 12
	var max int64
	for k := 0; k+1 < len(colStart); k++ {
		if w := int64(a.SlabNNZ(colStart[k], colStart[k+1])); w > max {
			max = w
		}
	}
	if max > 3*ideal {
		t.Errorf("heaviest slab still %d nnz (ideal %d)", max, ideal)
	}
}

func TestColPartitionSingleHeavyColumnCannotSplit(t *testing.T) {
	// All mass in one column: width-1 slabs are atomic, so the partitioner
	// must leave the monster column alone (stealing absorbs it at run
	// time) and still emit a valid partition.
	coo := sparse.NewCOO(500, 40, 500)
	for i := 0; i < 500; i++ {
		coo.Append(i, 17, 1.0)
	}
	a := coo.ToCSC()
	colStart, _, _ := colPartition(a, 10, 8)
	checkPartition(t, colStart, a.N)
	for k := 0; k+1 < len(colStart); k++ {
		if colStart[k] <= 17 && 17 < colStart[k+1] && colStart[k+1]-colStart[k] > 10 {
			t.Errorf("slab [%d,%d) holding the heavy column grew past the grid width",
				colStart[k], colStart[k+1])
		}
	}
}

func TestColPartitionDegenerate(t *testing.T) {
	// Empty matrix: single boundary, no tasks to weigh.
	empty := sparse.RandomUniform(10, 0, 0, 1)
	colStart, splits, fuses := colPartition(empty, 5, 4)
	if len(colStart) != 1 || colStart[0] != 0 || splits != 0 || fuses != 0 {
		t.Fatalf("empty matrix partition %v (%d/%d)", colStart, splits, fuses)
	}
	// All-zero matrix: grid passes through untouched.
	zero := sparse.RandomUniform(10, 30, 0, 1)
	colStart, _, _ = colPartition(zero, 7, 4)
	checkPartition(t, colStart, 30)
	if len(colStart) != 6 {
		t.Fatalf("zero matrix: %d boundaries, want 6 grid boundaries", len(colStart))
	}
	// n < bn: one slab.
	small := sparse.RandomUniform(50, 8, 0.3, 2)
	colStart, _, _ = colPartition(small, 100, 1)
	checkPartition(t, colStart, 8)
}

func TestMakeWeightedTasks(t *testing.T) {
	a := sparse.RandomUniform(300, 100, 0.05, 11)
	// d < bd: a single short block row.
	tasks := makeWeightedTasks(20, 64, a, sparse.UniformColSplit(a.N, 30), 0)
	if len(tasks) != 4 {
		t.Fatalf("%d tasks, want 4 (1 block row × 4 slabs)", len(tasks))
	}
	for _, tk := range tasks {
		if tk.d1 != 20 || tk.i0 != 0 {
			t.Fatalf("block row not clipped to d: %+v", tk)
		}
		if want := int64(a.SlabNNZ(tk.j0, tk.j0+tk.n1)) * int64(tk.d1); tk.weight != want {
			t.Fatalf("task %+v weight, want %d", tk, want)
		}
	}
	// Total weight = nnz·d when there is one block row covering all of d.
	if got, want := sumWeights(tasks), int64(a.NNZ())*20; got != want {
		t.Fatalf("total weight %d, want nnz·d = %d", got, want)
	}
	// Multiple block rows: weights sum to nnz·d regardless of the split.
	tasks = makeWeightedTasks(50, 16, a, sparse.UniformColSplit(a.N, 13), 0)
	if got, want := sumWeights(tasks), int64(a.NNZ())*50; got != want {
		t.Fatalf("multi-row total weight %d, want %d", got, want)
	}
	// Slab indices address the partition, not j0/bn.
	colStart := []int{0, 3, 40, 100}
	tasks = makeWeightedTasks(10, 10, a, colStart, 0)
	for i, tk := range tasks {
		if tk.slab != i {
			t.Fatalf("task %d slab %d", i, tk.slab)
		}
		if tk.j0 != colStart[i] || tk.n1 != colStart[i+1]-colStart[i] {
			t.Fatalf("task %d geometry %+v", i, tk)
		}
	}
}

func TestNewSchedPrepack(t *testing.T) {
	tasks := []blockTask{
		{weight: 50}, {weight: 10}, {weight: 40}, {weight: 10}, {weight: 30},
	}
	s := newSched(tasks, 2)
	// Every task appears exactly once across the queues.
	seen := make(map[int]bool)
	for _, ti := range s.order {
		if seen[ti] {
			t.Fatalf("task %d queued twice", ti)
		}
		seen[ti] = true
	}
	if len(seen) != len(tasks) {
		t.Fatalf("%d tasks queued, want %d", len(seen), len(tasks))
	}
	// Queues are heaviest-first within each worker segment.
	for w := 0; w < 2; w++ {
		for i := s.qoff[w] + 1; i < s.qoff[w+1]; i++ {
			if s.weight[s.order[i]] > s.weight[s.order[i-1]] {
				t.Fatalf("worker %d queue not heaviest-first", w)
			}
		}
	}
	// Loads match segment sums.
	for w := 0; w < 2; w++ {
		var l int64
		for i := s.qoff[w]; i < s.qoff[w+1]; i++ {
			l += s.weight[s.order[i]]
		}
		if l != s.loads[w] {
			t.Fatalf("worker %d load %d != segment sum %d", w, s.loads[w], l)
		}
	}
}

func TestSchedClaimAndSteal(t *testing.T) {
	tasks := []blockTask{{weight: 9}, {weight: 7}, {weight: 5}, {weight: 3}}
	s := newSched(tasks, 2)
	s.reset()
	// Drain worker 0's queue through claims; remain must hit 0 and further
	// claims return -1.
	for {
		ti := s.claim(0)
		if ti < 0 {
			break
		}
	}
	if r := s.remain[0].v.Load(); r != 0 {
		t.Fatalf("worker 0 remain %d after drain", r)
	}
	if s.claim(0) != -1 {
		t.Fatal("claim on drained queue succeeded")
	}
	// victim(0) now points at worker 1 (only one with remaining weight);
	// victim(1) sees nothing left elsewhere.
	if v := s.victim(0); v != 1 {
		t.Fatalf("victim(0) = %d, want 1", v)
	}
	if v := s.victim(1); v != -1 {
		t.Fatalf("victim(1) = %d, want -1 (worker 0 drained)", v)
	}
	// Stealing drains worker 1 via the same claim path.
	for {
		ti := s.claim(1)
		if ti < 0 {
			break
		}
	}
	if v := s.victim(0); v != -1 {
		t.Fatal("victim found after full drain")
	}
	// reset() re-arms both queues.
	s.reset()
	if s.claim(0) < 0 || s.claim(1) < 0 {
		t.Fatal("claims failed after reset")
	}
}

// The tentpole reproducibility guarantee: the sketch bits are invariant
// under worker count, scheduler choice, and the nnz-aware repartition, on
// exactly the skewed inputs the scheduler reshapes most aggressively.
func TestSchedulerBitReproducibility(t *testing.T) {
	inputs := map[string]*sparse.CSC{
		"abnormalB": sparse.AbnormalB(800, 360, 14000, 2998.0/3000.0, 13),
		"powerlaw":  sparse.PowerLaw(600, 300, 12000, 1.6, 17),
	}
	for name, a := range inputs {
		for _, alg := range []Algorithm{Alg3, Alg4} {
			// Sequential uniform-grid reference.
			ref := dense.NewMatrix(64, a.N)
			refPlan := mustPlan(t, a, 64, Options{
				Algorithm: alg, Seed: 42, BlockD: 17, BlockN: 50,
				Workers: 1, Sched: SchedUniform,
			})
			mustExecute(t, refPlan, ref)

			for _, workers := range []int{1, 2, 8} {
				for _, sched := range []Scheduler{SchedWeighted, SchedNoSteal, SchedUniform} {
					p := mustPlan(t, a, 64, Options{
						Algorithm: alg, Seed: 42, BlockD: 17, BlockN: 50,
						Workers: workers, Sched: sched,
					})
					got := dense.NewMatrix(64, a.N)
					mustExecute(t, p, got)
					if !sameBits(ref, got) {
						t.Fatalf("%s/%v: workers=%d sched=%v changed the sketch bits",
							name, alg, workers, sched)
					}
					// Second execute on the same plan: still identical.
					mustExecute(t, p, got)
					if !sameBits(ref, got) {
						t.Fatalf("%s/%v: workers=%d sched=%v re-execute changed bits",
							name, alg, workers, sched)
					}
				}
			}
		}
	}
}

func TestPlanStatsObservability(t *testing.T) {
	a := sparse.AbnormalB(2000, 1500, 60000, 2998.0/3000.0, 5)
	p := mustPlan(t, a, 96, Options{
		Algorithm: Alg4, Seed: 1, BlockD: 48, BlockN: 500, Workers: 4,
	})
	ps := p.Stats()
	if ps.Scheduler != SchedWeighted {
		t.Fatalf("default scheduler %v, want weighted", ps.Scheduler)
	}
	if ps.Slabs != len(p.colStart)-1 {
		t.Fatalf("Slabs %d != partition %d", ps.Slabs, len(p.colStart)-1)
	}
	if ps.SlabsSplit == 0 {
		t.Fatal("AbnormalB: no slabs split")
	}
	if ps.MaxTaskWeight < ps.MinTaskWeight || ps.MeanTaskWeight <= 0 {
		t.Fatalf("weight histogram: min=%d max=%d mean=%g",
			ps.MinTaskWeight, ps.MaxTaskWeight, ps.MeanTaskWeight)
	}
	if ps.PredictedImbalance < 1.0 {
		t.Fatalf("predicted imbalance %g < 1", ps.PredictedImbalance)
	}

	ahat := dense.NewMatrix(96, a.N)
	st := mustExecute(t, p, ahat)
	if len(st.WorkerBusy) != ps.Workers {
		t.Fatalf("WorkerBusy len %d, want %d", len(st.WorkerBusy), ps.Workers)
	}
	var sum int64
	for _, b := range st.WorkerBusy {
		sum += int64(b)
	}
	if sum <= 0 {
		t.Fatal("no busy time recorded")
	}
	if st.Imbalance < 1.0 {
		t.Fatalf("measured imbalance %g < 1", st.Imbalance)
	}
}

// The weighted partition must actually shrink the heaviest task relative to
// the uniform grid on a skewed input — the quantity that bounds the best
// possible makespan.
func TestWeightedPartitionReducesMaxTaskWeight(t *testing.T) {
	a := sparse.AbnormalB(2000, 1500, 60000, 2998.0/3000.0, 5)
	opts := Options{Algorithm: Alg3, Seed: 1, BlockD: 48, BlockN: 500, Workers: 8}

	optsU := opts
	optsU.Sched = SchedUniform
	pu := mustPlan(t, a, 96, optsU)
	pw := mustPlan(t, a, 96, opts)
	if pw.Stats().MaxTaskWeight*2 > pu.Stats().MaxTaskWeight {
		t.Fatalf("weighted max task %d not ≪ uniform max task %d",
			pw.Stats().MaxTaskWeight, pu.Stats().MaxTaskWeight)
	}
	if pw.Stats().PredictedImbalance >= pu.Stats().PredictedImbalance {
		t.Fatalf("weighted predicted imbalance %g not better than uniform %g",
			pw.Stats().PredictedImbalance, pu.Stats().PredictedImbalance)
	}
}

func TestStealsReportedOnSkew(t *testing.T) {
	// With a deliberately coarse uniform prepack and heavy skew, at least
	// one steal should occur across a few rounds (not guaranteed per
	// round on a loaded machine, so retry a few times).
	a := sparse.PowerLaw(2000, 400, 80000, 1.6, 23)
	p := mustPlan(t, a, 128, Options{
		Algorithm: Alg3, Seed: 9, BlockD: 128, BlockN: 100, Workers: 4,
	})
	ahat := dense.NewMatrix(128, a.N)
	var steals int64
	for round := 0; round < 20 && steals == 0; round++ {
		st := mustExecute(t, p, ahat)
		steals += st.Steals
	}
	// Steals are timing-dependent; just require the counter plumbing not
	// to panic and — on this synthetic skew — usually to fire. Accept 0
	// only if the host serialised every round.
	t.Logf("observed %d steals", steals)
}

func TestNewPlanRejectsUnknownScheduler(t *testing.T) {
	a := sparse.RandomUniform(50, 20, 0.2, 1)
	if _, err := NewPlan(a, 8, Options{Sched: Scheduler(9)}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSchedulerStrings(t *testing.T) {
	for s, want := range map[Scheduler]string{
		SchedWeighted: "weighted-steal",
		SchedNoSteal:  "weighted-nosteal",
		SchedUniform:  "uniform-chan",
		Scheduler(7):  "Scheduler(7)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Rademacher exercises the fused timed/untimed kernels through the full
// planner on a skewed input: Timed must not change bits either.
func TestTimedExecutionBitIdenticalOnSkew(t *testing.T) {
	a := sparse.PowerLaw(400, 200, 9000, 1.4, 31)
	for _, alg := range []Algorithm{Alg3, Alg4} {
		for _, dist := range []rng.Distribution{rng.Uniform11, rng.Rademacher} {
			base := Options{Algorithm: alg, Dist: dist, Seed: 77, BlockD: 33, BlockN: 40, Workers: 4}
			timed := base
			timed.Timed = true

			pa := mustPlan(t, a, 100, base)
			pb := mustPlan(t, a, 100, timed)
			x := dense.NewMatrix(100, a.N)
			y := dense.NewMatrix(100, a.N)
			mustExecute(t, pa, x)
			st := mustExecute(t, pb, y)
			if !sameBits(x, y) {
				t.Fatalf("%v/%v: Timed changed the sketch bits", alg, dist)
			}
			if st.SampleTime <= 0 {
				t.Fatalf("%v/%v: Timed reported no sample time", alg, dist)
			}
		}
	}
}
