// Package core implements the paper's primary contribution: the outer
// blocking scheme of Algorithm 1 wrapped around the on-the-fly-RNG compute
// kernels (Algorithm 3 and Algorithm 4), in sequential and shared-memory
// parallel form, together with the block-size heuristics of §III-A/§V-B.
//
// The central object is Sketcher, which computes Â = S·A for a CSC matrix A
// without ever materialising the random d×m sketching matrix S: every
// (block-row, sparse-row) pair (r, j) is an O(1) RNG checkpoint from which
// the needed d₁ entries of S's column j are regenerated on demand.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/kernels"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Algorithm selects the compute kernel.
type Algorithm int

const (
	// Alg3 is compute-kernel variant kji over CSC (Algorithm 3):
	// strided access to all operands, oblivious to the sparsity pattern,
	// generates d·nnz(A) samples. Preferred on architectures that
	// penalise random access or have fast RNG (the "Frontera" regime).
	Alg3 Algorithm = iota
	// Alg4 is compute-kernel variant jki over blocked CSR (Algorithm 4):
	// reuses each generated column of S across a whole sparse row,
	// cutting samples to ≤ d·m·⌈n/b_n⌉, at the price of
	// sparsity-dependent access and a format conversion. Preferred where
	// memory access is cheap relative to RNG (the "Perlmutter" regime).
	Alg4
)

// String implements fmt.Stringer for Algorithm.
func (a Algorithm) String() string {
	switch a {
	case Alg3:
		return "alg3-kji-csc"
	case Alg4:
		return "alg4-jki-blockedcsr"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a Sketcher. The zero value gives the paper's defaults:
// Algorithm 3, 4-lane xoshiro, uniform (-1,1) entries, auto block sizes,
// sequential execution.
type Options struct {
	// Algorithm picks the compute kernel (default Alg3).
	Algorithm Algorithm
	// Dist is the distribution of the entries of S (default Uniform11).
	Dist rng.Distribution
	// Source is the RNG engine (default 4-lane batched xoshiro256++).
	Source rng.SourceKind
	// Seed makes the sketch reproducible: same seed, same d, same
	// blocking → identical Â, independent of Workers.
	Seed uint64
	// BlockD is b_d, the block size along the sketch dimension d.
	// 0 selects the paper's default (3000, clipped to d).
	BlockD int
	// BlockN is b_n, the block size along the n (column) dimension.
	// 0 selects the paper's default (500 for Alg3, 1200 for Alg4,
	// clipped to n).
	BlockN int
	// Workers is the number of parallel workers over outer blocks;
	// 0 means GOMAXPROCS, 1 forces sequential execution.
	Workers int
	// Timed enables the per-kernel sampling timers used by the
	// Table III/V breakdowns (slightly slows the kernels, as the paper
	// notes of its own instrumented runs).
	Timed bool
	// RNGCost is the relative cost h of generating one random value,
	// used only by AlgAuto's inspector (0 selects 1; measure the host's
	// value with analysis.EstimateH).
	RNGCost float64
}

// Stats reports what a sketch invocation did.
type Stats struct {
	// Samples is the number of random values generated.
	Samples int64
	// Flops is the useful floating-point work, 2·d·nnz(A).
	Flops int64
	// SampleTime is the time spent generating random numbers
	// (only populated when Options.Timed is set).
	SampleTime time.Duration
	// ConvertTime is the CSC→BlockedCSR conversion time (Alg4 only).
	ConvertTime time.Duration
	// Total is the wall-clock time of the whole sketch, including
	// conversion.
	Total time.Duration
}

// GFlops returns the achieved GFLOP/s over the total runtime.
func (s Stats) GFlops() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Total.Seconds() / 1e9
}

// Sketcher computes Â = S·A for a fixed sketch size d and configuration.
// A Sketcher is safe for concurrent use by multiple goroutines: all mutable
// state lives in per-call worker contexts.
type Sketcher struct {
	d    int
	opts Options
}

// DefaultBlockD and DefaultBlockN* are the paper's benchmark block sizes
// (Tables II–V).
const (
	DefaultBlockD     = 3000
	DefaultBlockNAlg3 = 500
	DefaultBlockNAlg4 = 1200
)

// NewSketcher returns a Sketcher producing d-row sketches. d must be
// positive.
func NewSketcher(d int, opts Options) (*Sketcher, error) {
	if d <= 0 {
		return nil, fmt.Errorf("core: sketch size d=%d must be positive", d)
	}
	if opts.BlockD < 0 || opts.BlockN < 0 || opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative option (BlockD=%d BlockN=%d Workers=%d)",
			opts.BlockD, opts.BlockN, opts.Workers)
	}
	return &Sketcher{d: d, opts: opts}, nil
}

// D returns the sketch size.
func (sk *Sketcher) D() int { return sk.d }

// Options returns the sketcher's configuration.
func (sk *Sketcher) Options() Options { return sk.opts }

// blockSizes resolves the effective (b_d, b_n) for an n-column input.
func (sk *Sketcher) blockSizes(n int) (bd, bn int) {
	bd = sk.opts.BlockD
	if bd == 0 {
		bd = DefaultBlockD
	}
	if bd > sk.d {
		bd = sk.d
	}
	bn = sk.opts.BlockN
	if bn == 0 {
		if sk.opts.Algorithm == Alg4 {
			bn = DefaultBlockNAlg4
		} else {
			bn = DefaultBlockNAlg3
		}
	}
	if bn > n {
		bn = n
	}
	if bn < 1 {
		bn = 1
	}
	return bd, bn
}

func (sk *Sketcher) workers() int {
	if sk.opts.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return sk.opts.Workers
}

// Sketch allocates and returns Â = S·A (d×n, column-major).
func (sk *Sketcher) Sketch(a *sparse.CSC) (*dense.Matrix, Stats) {
	ahat := dense.NewMatrix(sk.d, a.N)
	st := sk.SketchInto(ahat, a)
	return ahat, st
}

// SketchInto computes Â = S·A into the caller's d×n matrix, overwriting it.
func (sk *Sketcher) SketchInto(ahat *dense.Matrix, a *sparse.CSC) Stats {
	if ahat.Rows != sk.d || ahat.Cols != a.N {
		panic(fmt.Sprintf("core: SketchInto Â is %dx%d, want %dx%d",
			ahat.Rows, ahat.Cols, sk.d, a.N))
	}
	start := time.Now()
	ahat.Zero()

	// The scaling trick stores S as raw int32 values; fold the 2⁻³¹
	// factor into A once so the hot loop does no per-sample scaling
	// (§III-C: computing (Sf)(A/f) with f = 1/maxint).
	if sk.opts.Dist == rng.ScaledInt {
		a = a.Clone()
		a.Scale(rng.Scale31)
	}

	var st Stats
	st.Flops = 2 * int64(sk.d) * int64(a.NNZ())
	// Resolve AlgAuto before dispatch so the block-size defaults match
	// the kernel that actually runs.
	run := *sk
	run.opts.Algorithm = sk.resolveAlgorithm(a)
	if run.opts.Algorithm == Alg4 {
		run.runAlg4(ahat, a, &st)
	} else {
		run.runAlg3(ahat, a, &st)
	}
	st.Total = time.Since(start)
	return st
}

// blockTask is one (block-row of Â, column-slab) cell of Algorithm 1's
// (⌈d/b_d⌉, 1, ⌈n/b_n⌉) blocking. Cells write disjoint regions of Â, so
// they parallelise without synchronisation (§II-C: parallelise the outer
// loops).
type blockTask struct {
	i0, d1 int // block-row offset and height
	j0, n1 int // column-slab offset and width
}

func makeTasks(d, n, bd, bn int) []blockTask {
	tasks := make([]blockTask, 0, ((n+bn-1)/bn)*((d+bd-1)/bd))
	// Outermost over columns of A to encourage caching of the sparse
	// data and Â (Algorithm 1's loop order).
	for j0 := 0; j0 < n; j0 += bn {
		n1 := bn
		if j0+n1 > n {
			n1 = n - j0
		}
		for i0 := 0; i0 < d; i0 += bd {
			d1 := bd
			if i0+d1 > d {
				d1 = d - i0
			}
			tasks = append(tasks, blockTask{i0: i0, d1: d1, j0: j0, n1: n1})
		}
	}
	return tasks
}

func (sk *Sketcher) runAlg3(ahat *dense.Matrix, a *sparse.CSC, st *Stats) {
	bd, bn := sk.blockSizes(a.N)
	tasks := makeTasks(sk.d, a.N, bd, bn)
	sk.forEachTask(tasks, bd, func(t blockTask, s *rng.Sampler, v []float64, sampleTime *time.Duration) int64 {
		sub := ahat.View(t.i0, t.j0, t.d1, t.n1)
		slab := a.ColSlice(t.j0, t.j0+t.n1)
		if sk.opts.Timed {
			return kernels.Kernel3Timed(sub, slab, uint64(t.i0), s, v, sampleTime)
		}
		return kernels.Kernel3(sub, slab, uint64(t.i0), s, v)
	}, st)
}

func (sk *Sketcher) runAlg4(ahat *dense.Matrix, a *sparse.CSC, st *Stats) {
	bd, bn := sk.blockSizes(a.N)
	tc := time.Now()
	blocked := sparse.NewBlockedCSRParallel(a, bn, sk.workers())
	st.ConvertTime = time.Since(tc)

	tasks := makeTasks(sk.d, a.N, bd, bn)
	sk.forEachTask(tasks, bd, func(t blockTask, s *rng.Sampler, v []float64, sampleTime *time.Duration) int64 {
		sub := ahat.View(t.i0, t.j0, t.d1, t.n1)
		slab := blocked.Blocks[t.j0/bn]
		if sk.opts.Timed {
			return kernels.Kernel4Timed(sub, slab, uint64(t.i0), s, v, sampleTime)
		}
		return kernels.Kernel4(sub, slab, uint64(t.i0), s, v)
	}, st)
}

// forEachTask runs fn over every block task, sequentially or with a worker
// pool. Each worker owns a private sampler and scratch vector; results are
// reproducible regardless of scheduling because every kernel call
// re-anchors the RNG at its own (block-row, sparse-row) checkpoints.
func (sk *Sketcher) forEachTask(tasks []blockTask, scratch int,
	fn func(t blockTask, s *rng.Sampler, v []float64, sampleTime *time.Duration) int64, st *Stats) {

	w := sk.workers()
	if w <= 1 || len(tasks) == 1 {
		s := rng.NewSampler(rng.NewSource(sk.opts.Source, sk.opts.Seed), sk.opts.Dist)
		v := make([]float64, scratch)
		for _, t := range tasks {
			st.Samples += fn(t, s, v, &st.SampleTime)
		}
		return
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples int64
		sampled time.Duration
	)
	work := make(chan blockTask)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := rng.NewSampler(rng.NewSource(sk.opts.Source, sk.opts.Seed), sk.opts.Dist)
			v := make([]float64, scratch)
			var localSamples int64
			var localSampled time.Duration
			for t := range work {
				localSamples += fn(t, s, v, &localSampled)
			}
			mu.Lock()
			samples += localSamples
			sampled += localSampled
			mu.Unlock()
		}()
	}
	for _, t := range tasks {
		work <- t
	}
	close(work)
	wg.Wait()
	st.Samples += samples
	st.SampleTime += sampled
}
