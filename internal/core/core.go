// Package core implements the paper's primary contribution: the outer
// blocking scheme of Algorithm 1 wrapped around the on-the-fly-RNG compute
// kernels (Algorithm 3 and Algorithm 4), in sequential and shared-memory
// parallel form, together with the block-size heuristics of §III-A/§V-B.
//
// The package is organised as a planner/executor split (plan.go): NewPlan
// inspects (A, d, Options) once — resolving AlgAuto, fixing the blocking,
// converting to BlockedCSR, pre-scaling A for the ScaledInt trick — and the
// returned Plan executes repeated sketches allocation-free on a persistent
// worker pool. Sketcher is the original one-shot surface, kept as a thin
// wrapper that plans and executes per call: every (block-row, sparse-row)
// pair (r, j) is an O(1) RNG checkpoint from which the needed d₁ entries of
// S's column j are regenerated on demand, so Â = S·A is computed without
// ever materialising the random d×m sketching matrix S.
package core

import (
	"fmt"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Algorithm selects the compute kernel.
type Algorithm int

const (
	// Alg3 is compute-kernel variant kji over CSC (Algorithm 3):
	// strided access to all operands, oblivious to the sparsity pattern,
	// generates d·nnz(A) samples. Preferred on architectures that
	// penalise random access or have fast RNG (the "Frontera" regime).
	Alg3 Algorithm = iota
	// Alg4 is compute-kernel variant jki over blocked CSR (Algorithm 4):
	// reuses each generated column of S across a whole sparse row,
	// cutting samples to ≤ d·m·⌈n/b_n⌉, at the price of
	// sparsity-dependent access and a format conversion. Preferred where
	// memory access is cheap relative to RNG (the "Perlmutter" regime).
	Alg4
)

// String implements fmt.Stringer for Algorithm.
func (a Algorithm) String() string {
	switch a {
	case Alg3:
		return "alg3-kji-csc"
	case Alg4:
		return "alg4-jki-blockedcsr"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a Sketcher or Plan. The zero value gives the paper's
// defaults: Algorithm 3, 4-lane xoshiro, uniform (-1,1) entries, auto block
// sizes, sequential execution.
type Options struct {
	// Algorithm picks the compute kernel (default Alg3).
	Algorithm Algorithm
	// Dist is the distribution of the entries of S (default Uniform11).
	Dist rng.Distribution
	// Source is the RNG engine (default 4-lane batched xoshiro256++).
	Source rng.SourceKind
	// Sparsity is s, the per-column nonzero count for the sparse sketch
	// family (Dist SJLT/CountSketch); ignored for dense distributions.
	// 0 selects the default ⌈√d⌉ (the 1/√d-density rule); values are
	// clamped to [1, d] at plan time (s ≥ d degenerates to a dense ±1/√s
	// column set) and CountSketch always resolves to s = 1. The resolved
	// value is surfaced in PlanStats.Sparsity.
	Sparsity int
	// Seed makes the sketch reproducible: same seed, same d, same
	// blocking → identical Â, independent of Workers.
	Seed uint64
	// BlockD is b_d, the block size along the sketch dimension d.
	// 0 selects the paper's default (3000, clipped to d).
	BlockD int
	// BlockN is b_n, the block size along the n (column) dimension.
	// 0 selects the paper's default (500 for Alg3, 1200 for Alg4,
	// clipped to n).
	BlockN int
	// Workers is the number of parallel workers over outer blocks;
	// 0 means GOMAXPROCS, 1 forces sequential execution.
	Workers int
	// Timed enables the per-kernel sampling timers used by the
	// Table III/V breakdowns (slightly slows the kernels, as the paper
	// notes of its own instrumented runs).
	Timed bool
	// RNGCost is the relative cost h of generating one random value,
	// used only by AlgAuto's inspector (0 selects 1; measure the host's
	// value with analysis.EstimateH). The inspector additionally scales
	// h by the configured distribution's measured per-sample cost
	// (rng.DistCost), so a ±1 sketch's recomputation is charged far less
	// than a Gaussian one.
	RNGCost float64
	// TuneBlockN lets the planner choose b_n for Algorithm 4 with the
	// §III-B sample-count model (analysis.TuneBlockN) instead of the
	// static default. Only consulted when BlockN is 0; it adds an
	// O(nnz·log n) inspection pass at plan time, amortised across
	// executes. Tuning never changes the sketch values: b_n affects
	// memory traffic, not RNG checkpoints.
	TuneBlockN bool
	// Sched selects the task scheduler (default SchedWeighted: nnz-aware
	// partition + LPT prepacked queues + work stealing). SchedUniform
	// restores the uniform-grid shared-channel executor for A/B
	// comparison. The choice never affects the sketch bits — only which
	// worker computes which block, and how columns group into slabs.
	Sched Scheduler
}

// Stats reports what a sketch invocation did.
//
// Accounting split: the planner/executor surface charges one-time
// inspection work (format conversion, pre-scaling, task construction) to
// PlanStats at plan time, so Plan.Execute returns Stats with
// ConvertTime == 0 and Total covering compute only. The one-shot
// Sketcher/Sketch path plans internally on every call, so its Stats fold
// that call's conversion into ConvertTime and Total as before.
type Stats struct {
	// Samples is the number of random values generated.
	Samples int64
	// Flops is the useful floating-point work, 2·d·nnz(A).
	Flops int64
	// SampleTime is the time spent generating random numbers
	// (only populated when Options.Timed is set).
	SampleTime time.Duration
	// ConvertTime is the CSC→BlockedCSR conversion time (Alg4 only).
	// It is paid once per plan: Plan.Execute always reports 0 here (see
	// PlanStats.ConvertTime); the one-shot Sketcher path re-plans per
	// call and reports that call's conversion.
	ConvertTime time.Duration
	// Total is the wall-clock time of the invocation: plan + execute
	// (including conversion) for the one-shot Sketcher path, execute
	// only for Plan.Execute.
	Total time.Duration
	// Steals counts tasks executed by a worker other than their prepacked
	// owner (work-stealing schedulers only; 0 for SchedUniform and
	// sequential runs).
	Steals int64
	// WorkerBusy is the measured per-worker busy time for the round. It
	// aliases a plan-owned buffer to keep Execute allocation-free: the
	// next Execute on the same plan overwrites it, so callers that keep
	// it across rounds must copy. Nil for one-shot Sketcher stats.
	WorkerBusy []time.Duration
	// Imbalance is the measured load-imbalance ratio of the round,
	// max(WorkerBusy)·workers/sum(WorkerBusy) — 1.0 is perfect balance,
	// ~workers means one worker did everything. 0 when unmeasured.
	Imbalance float64
}

// GFlops returns the achieved GFLOP/s over the total runtime.
func (s Stats) GFlops() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Total.Seconds() / 1e9
}

// Sketcher computes Â = S·A for a fixed sketch size d and configuration —
// the one-shot surface, implemented as a thin wrapper that builds a Plan
// and executes it once per call. A Sketcher is safe for concurrent use by
// multiple goroutines: all mutable state lives in the per-call plan.
// Repeated-sketch consumers should hold a Plan instead (NewPlan) to
// amortise the per-call setup this wrapper re-pays.
type Sketcher struct {
	d    int
	opts Options
}

// DefaultBlockD and DefaultBlockN* are the paper's benchmark block sizes
// (Tables II–V).
const (
	DefaultBlockD     = 3000
	DefaultBlockNAlg3 = 500
	DefaultBlockNAlg4 = 1200
)

// NewSketcher returns a Sketcher producing d-row sketches. d must be
// positive.
func NewSketcher(d int, opts Options) (*Sketcher, error) {
	if d <= 0 {
		return nil, fmt.Errorf("%w: d=%d", ErrInvalidSketchSize, d)
	}
	if opts.BlockD < 0 || opts.BlockN < 0 || opts.Workers < 0 || opts.Sparsity < 0 {
		return nil, fmt.Errorf("%w: negative (BlockD=%d BlockN=%d Workers=%d Sparsity=%d)",
			ErrBadOptions, opts.BlockD, opts.BlockN, opts.Workers, opts.Sparsity)
	}
	return &Sketcher{d: d, opts: opts}, nil
}

// D returns the sketch size.
func (sk *Sketcher) D() int { return sk.d }

// Options returns the sketcher's configuration.
func (sk *Sketcher) Options() Options { return sk.opts }

// resolveBlockSizes resolves the effective (b_d, b_n) for an n-column input
// under algorithm alg, from the requested (or 0 = default) sizes.
func resolveBlockSizes(d, n int, alg Algorithm, optBD, optBN int) (bd, bn int) {
	bd = optBD
	if bd == 0 {
		bd = DefaultBlockD
	}
	if bd > d {
		bd = d
	}
	bn = optBN
	if bn == 0 {
		if alg == Alg4 {
			bn = DefaultBlockNAlg4
		} else {
			bn = DefaultBlockNAlg3
		}
	}
	if bn > n {
		bn = n
	}
	if bn < 1 {
		bn = 1
	}
	return bd, bn
}

// blockSizes resolves the effective (b_d, b_n) for an n-column input.
func (sk *Sketcher) blockSizes(n int) (bd, bn int) {
	return resolveBlockSizes(sk.d, n, sk.opts.Algorithm, sk.opts.BlockD, sk.opts.BlockN)
}

// Sketch allocates and returns Â = S·A (d×n, column-major).
func (sk *Sketcher) Sketch(a *sparse.CSC) (*dense.Matrix, Stats) {
	ahat := dense.NewMatrix(sk.d, a.N)
	st := sk.SketchInto(ahat, a)
	return ahat, st
}

// SketchInto computes Â = S·A into the caller's d×n matrix, overwriting it.
// It plans and executes in one shot; the legacy panic-on-dimension-mismatch
// contract is preserved here, while the Plan surface reports errors instead.
func (sk *Sketcher) SketchInto(ahat *dense.Matrix, a *sparse.CSC) Stats {
	start := time.Now()
	p, err := NewPlan(a, sk.d, sk.opts)
	if err != nil {
		panic("core: SketchInto: " + err.Error())
	}
	defer p.Close()
	st, err := p.Execute(ahat)
	if err != nil {
		panic(fmt.Sprintf("core: SketchInto Â is %dx%d, want %dx%d",
			ahat.Rows, ahat.Cols, sk.d, a.N))
	}
	// One-shot accounting: this call paid for planning, so surface the
	// conversion here and charge the full wall clock.
	st.ConvertTime = p.Stats().ConvertTime
	st.Total = time.Since(start)
	return st
}

// blockTask is one (block-row of Â, column-slab) cell of Algorithm 1's
// blocking, generalised to an arbitrary column partition. Cells write
// disjoint regions of Â, so they parallelise without synchronisation
// (§II-C: parallelise the outer loops). weight is the nnz(slab)·d1 cost
// estimate the scheduler balances on; slab indexes the plan's partition so
// runTask never recomputes j0/b_n (which would be wrong for variable-width
// slabs).
type blockTask struct {
	i0, d1 int // block-row offset and height
	j0, n1 int // column-slab offset and width
	slab   int // index into the plan's column partition
	weight int64
}
