package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

func mustSketcher(t testing.TB, d int, opts Options) *Sketcher {
	t.Helper()
	sk, err := NewSketcher(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestNewSketcherValidation(t *testing.T) {
	if _, err := NewSketcher(0, Options{}); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewSketcher(-3, Options{}); err == nil {
		t.Error("d<0 accepted")
	}
	if _, err := NewSketcher(5, Options{BlockD: -1}); err == nil {
		t.Error("negative BlockD accepted")
	}
	if _, err := NewSketcher(5, Options{Workers: -2}); err == nil {
		t.Error("negative Workers accepted")
	}
}

// Sketch must equal the explicit product with the materialised S under the
// same blocking — exactly, since both accumulate contributions in ascending
// row order.
func TestSketchMatchesMaterializedProduct(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, alg := range []Algorithm{Alg3, Alg4} {
		for trial := 0; trial < 8; trial++ {
			m, n := 20+r.Intn(60), 5+r.Intn(25)
			d := 2*n + r.Intn(n)
			a := sparse.RandomUniform(m, n, 0.1, int64(trial))
			opts := Options{
				Algorithm: alg,
				Seed:      uint64(trial) + 7,
				BlockD:    1 + r.Intn(d),
				BlockN:    1 + r.Intn(n),
				Workers:   1,
			}
			sk := mustSketcher(t, d, opts)
			ahat, st := sk.Sketch(a)
			if st.Flops != 2*int64(d)*int64(a.NNZ()) {
				t.Fatalf("%v: flops=%d", alg, st.Flops)
			}
			s := sk.MaterializeS(m)
			want := dense.NewMatrix(d, n)
			dense.Gemm(1, s, a.ToDense(), 0, want)
			if diff := ahat.MaxAbsDiff(want); diff > 1e-10 {
				t.Fatalf("%v trial %d: sketch differs from S·A by %g", alg, trial, diff)
			}
		}
	}
}

// Every distribution's sketch must equal the explicit product with its
// materialised S — in particular the fused ±1 bit path must agree bitwise
// with what the unfused ±1 vector would produce.
func TestSketchAllDistributionsMatchMaterialized(t *testing.T) {
	a := sparse.RandomUniform(90, 25, 0.12, 9)
	d := 60
	for _, dist := range []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.Gaussian, rng.ScaledInt, rng.Junk} {
		for _, alg := range []Algorithm{Alg3, Alg4} {
			sk := mustSketcher(t, d, Options{
				Algorithm: alg, Dist: dist, Seed: 5, BlockD: 17, BlockN: 6, Workers: 1,
			})
			ahat, _ := sk.Sketch(a)
			s := sk.MaterializeS(a.M)
			want := dense.NewMatrix(d, a.N)
			aRef := a
			if dist == rng.ScaledInt {
				// MaterializeS folds the 2⁻³¹ scale into S, so the
				// reference product uses the unscaled A.
				aRef = a
			}
			dense.Gemm(1, s, aRef.ToDense(), 0, want)
			tol := 1e-10
			if dist == rng.ScaledInt {
				tol = 1e-6 * want.FrobeniusNorm()
			}
			if diff := ahat.MaxAbsDiff(want); diff > tol {
				t.Fatalf("%v/%v: sketch differs from S·A by %g", dist, alg, diff)
			}
		}
	}
}

// The paper's reproducibility contract: same seed and blocking → identical
// Â regardless of worker count or algorithm.
func TestSketchParallelBitwiseIdentical(t *testing.T) {
	a := sparse.RandomUniform(300, 80, 0.05, 3)
	d := 200
	for _, alg := range []Algorithm{Alg3, Alg4} {
		base := Options{Algorithm: alg, Seed: 42, BlockD: 64, BlockN: 17, Workers: 1}
		skSeq := mustSketcher(t, d, base)
		seq, _ := skSeq.Sketch(a)
		for _, workers := range []int{2, 4, 8} {
			opts := base
			opts.Workers = workers
			skPar := mustSketcher(t, d, opts)
			par, _ := skPar.Sketch(a)
			for k := range seq.Data {
				if seq.Data[k] != par.Data[k] {
					t.Fatalf("%v: %d workers changed the sketch", alg, workers)
				}
			}
		}
	}
}

func TestSketchAlg3EqualsAlg4(t *testing.T) {
	f := func(seed uint64, bnRaw, bdRaw uint8) bool {
		a := sparse.RandomUniform(120, 40, 0.07, int64(seed%1000))
		d := 90
		bn := 1 + int(bnRaw)%40
		bd := 1 + int(bdRaw)%90
		o3 := Options{Algorithm: Alg3, Seed: seed, BlockN: bn, BlockD: bd, Workers: 1}
		o4 := Options{Algorithm: Alg4, Seed: seed, BlockN: bn, BlockD: bd, Workers: 1}
		s3, err := NewSketcher(d, o3)
		if err != nil {
			return false
		}
		s4, err := NewSketcher(d, o4)
		if err != nil {
			return false
		}
		a3, _ := s3.Sketch(a)
		a4, _ := s4.Sketch(a)
		for k := range a3.Data {
			if a3.Data[k] != a4.Data[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The Philox counter-based source must make the sketch independent of b_d
// as well (the RandBLAS-style property §IV-C wants; xoshiro checkpoints
// only guarantee fixed-blocking reproducibility).
func TestPhiloxSketchBlockingIndependent(t *testing.T) {
	a := sparse.RandomUniform(150, 50, 0.08, 5)
	d := 120
	var ref *dense.Matrix
	for _, bd := range []int{120, 60, 37, 11} {
		sk := mustSketcher(t, d, Options{
			Algorithm: Alg3, Source: rng.SourcePhilox, Dist: rng.Uniform11,
			Seed: 9, BlockD: bd, BlockN: 13, Workers: 1,
		})
		got, _ := sk.Sketch(a)
		if ref == nil {
			ref = got
			continue
		}
		if diff := got.MaxAbsDiff(ref); diff != 0 {
			t.Fatalf("b_d=%d changed the Philox sketch by %g", bd, diff)
		}
	}
}

// Xoshiro sketches, by contrast, are only reproducible for a fixed blocking:
// changing b_d changes the checkpoints. Document that behaviour with a test.
func TestXoshiroSketchDependsOnBlockRows(t *testing.T) {
	a := sparse.RandomUniform(150, 50, 0.08, 5)
	d := 120
	s1 := mustSketcher(t, d, Options{Seed: 9, BlockD: 120, BlockN: 13, Workers: 1})
	s2 := mustSketcher(t, d, Options{Seed: 9, BlockD: 60, BlockN: 13, Workers: 1})
	a1, _ := s1.Sketch(a)
	a2, _ := s2.Sketch(a)
	if a1.MaxAbsDiff(a2) == 0 {
		t.Fatal("different b_d produced identical xoshiro sketches; checkpoints not anchored at block rows?")
	}
}

func TestSketchScaledIntEquivalence(t *testing.T) {
	// The scaling trick must produce exactly S_int·(A·2⁻³¹) =
	// (S_int·2⁻³¹)·A up to float rounding of the pre-scale.
	a := sparse.RandomUniform(80, 30, 0.1, 11)
	d := 64
	sk := mustSketcher(t, d, Options{Dist: rng.ScaledInt, Seed: 3, BlockD: 32, BlockN: 7, Workers: 1})
	ahat, _ := sk.Sketch(a)

	s := sk.MaterializeS(a.M) // carries the 2⁻³¹ scale per MaterializeS contract
	scaledA := a.Clone()
	scaledA.Scale(rng.Scale31)
	sInt := dense.NewMatrix(d, a.M)
	for j := 0; j < a.M; j++ {
		col := s.Col(j)
		dst := sInt.Col(j)
		for i := range col {
			dst[i] = col[i] / rng.Scale31
		}
	}
	want := dense.NewMatrix(d, a.N)
	dense.Gemm(1, sInt, scaledA.ToDense(), 0, want)
	if diff := ahat.MaxAbsDiff(want); diff > 1e-9 {
		t.Fatalf("scaling-trick sketch off by %g", diff)
	}
	// And the result magnitude matches a (-1,1)-scaled sketch: entries of
	// S_int·2⁻³¹ are in [-1, 1), so column norms should be comparable.
	skU := mustSketcher(t, d, Options{Dist: rng.Uniform11, Seed: 3, BlockD: 32, BlockN: 7, Workers: 1})
	au, _ := skU.Sketch(a)
	nScaled := ahat.FrobeniusNorm()
	nUniform := au.FrobeniusNorm()
	if nScaled/nUniform > 3 || nUniform/nScaled > 3 {
		t.Fatalf("scaled sketch norm %g vs uniform %g: scale factor not applied", nScaled, nUniform)
	}
}

func TestSketchSampleCounts(t *testing.T) {
	// Alg3 generates d·nnz samples; Alg4 generates at most
	// d·(nonempty rows per slab summed over slabs).
	a := sparse.RandomUniform(100, 60, 0.05, 13)
	d := 48
	sk3 := mustSketcher(t, d, Options{Algorithm: Alg3, BlockD: 16, BlockN: 20, Workers: 1})
	_, st3 := sk3.Sketch(a)
	if st3.Samples != int64(d)*int64(a.NNZ()) {
		t.Fatalf("Alg3 samples = %d, want %d", st3.Samples, int64(d)*int64(a.NNZ()))
	}
	sk4 := mustSketcher(t, d, Options{Algorithm: Alg4, BlockD: 16, BlockN: 20, Workers: 1})
	_, st4 := sk4.Sketch(a)
	if st4.Samples >= st3.Samples {
		t.Fatalf("Alg4 samples %d not fewer than Alg3 %d", st4.Samples, st3.Samples)
	}
	if st4.ConvertTime <= 0 {
		t.Fatal("Alg4 did not report conversion time")
	}
}

func TestSketchIntoReusesBuffer(t *testing.T) {
	a := sparse.RandomUniform(50, 20, 0.1, 17)
	d := 30
	sk := mustSketcher(t, d, Options{Seed: 1, Workers: 1})
	buf := dense.NewMatrix(d, 20)
	buf.Fill(99) // must be overwritten, not accumulated
	sk.SketchInto(buf, a)
	fresh, _ := sk.Sketch(a)
	if buf.MaxAbsDiff(fresh) != 0 {
		t.Fatal("SketchInto did not overwrite the buffer")
	}
}

func TestSketchTimedStats(t *testing.T) {
	a := sparse.RandomUniform(200, 50, 0.1, 19)
	d := 100
	sk := mustSketcher(t, d, Options{Timed: true, Workers: 1})
	ahat, st := sk.Sketch(a)
	if st.SampleTime <= 0 {
		t.Fatal("Timed run reported no sample time")
	}
	if st.Total < st.SampleTime {
		t.Fatal("total < sample time")
	}
	// Timed and untimed results identical.
	sk2 := mustSketcher(t, d, Options{Timed: false, Workers: 1})
	ahat2, _ := sk2.Sketch(a)
	if ahat.MaxAbsDiff(ahat2) != 0 {
		t.Fatal("Timed changed the sketch")
	}
}

func TestSketchEmptyColumnsAndRows(t *testing.T) {
	// A matrix with empty leading/trailing columns and many empty rows.
	coo := sparse.NewCOO(40, 10, 3)
	coo.Append(5, 3, 1.5)
	coo.Append(20, 3, -2)
	coo.Append(39, 7, 0.5)
	a := coo.ToCSC()
	d := 12
	for _, alg := range []Algorithm{Alg3, Alg4} {
		sk := mustSketcher(t, d, Options{Algorithm: alg, Seed: 2, BlockD: 5, BlockN: 3, Workers: 1})
		ahat, _ := sk.Sketch(a)
		s := sk.MaterializeS(40)
		want := dense.NewMatrix(d, 10)
		dense.Gemm(1, s, a.ToDense(), 0, want)
		if ahat.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("%v: sparse corner case wrong", alg)
		}
		// Columns without nonzeros must be exactly zero.
		for _, j := range []int{0, 1, 2, 9} {
			for i := 0; i < d; i++ {
				if ahat.At(i, j) != 0 {
					t.Fatalf("%v: empty input column %d produced nonzero", alg, j)
				}
			}
		}
	}
}

func TestSketchEmptyMatrix(t *testing.T) {
	a := sparse.NewCOO(10, 5, 0).ToCSC()
	sk := mustSketcher(t, 8, Options{Workers: 1})
	ahat, st := sk.Sketch(a)
	if st.Samples != 0 {
		t.Fatalf("empty matrix generated %d samples", st.Samples)
	}
	for _, v := range ahat.Data {
		if v != 0 {
			t.Fatal("empty matrix produced nonzero sketch")
		}
	}
}

func TestBlockSizeDefaults(t *testing.T) {
	sk3 := mustSketcher(t, 10000, Options{Algorithm: Alg3})
	bd, bn := sk3.blockSizes(100000)
	if bd != DefaultBlockD || bn != DefaultBlockNAlg3 {
		t.Fatalf("Alg3 defaults (%d,%d)", bd, bn)
	}
	sk4 := mustSketcher(t, 10000, Options{Algorithm: Alg4})
	_, bn4 := sk4.blockSizes(100000)
	if bn4 != DefaultBlockNAlg4 {
		t.Fatalf("Alg4 default bn %d", bn4)
	}
	// Clipping.
	skSmall := mustSketcher(t, 7, Options{BlockD: 100, BlockN: 100})
	bd, bn = skSmall.blockSizes(3)
	if bd != 7 || bn != 3 {
		t.Fatalf("clipping gave (%d,%d)", bd, bn)
	}
}

// Statistical sanity: a (±1/√d-scaled) sketch approximately preserves
// column norms (Johnson–Lindenstrauss flavour), which is why it works as a
// least-squares preconditioner.
func TestSketchPreservesGeometry(t *testing.T) {
	a := sparse.RandomUniform(400, 20, 0.2, 23)
	n := a.N
	d := 10 * n // generous for tight concentration
	sk := mustSketcher(t, d, Options{Dist: rng.Rademacher, Seed: 31, Workers: 1})
	ahat, _ := sk.Sketch(a)
	scale := 1 / math.Sqrt(float64(d))
	for j := 0; j < n; j++ {
		orig := dense.Nrm2(a.ToDense().Col(j))
		sk := dense.Nrm2(ahat.Col(j)) * scale
		if orig == 0 {
			continue
		}
		ratio := sk / orig
		if ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("column %d norm ratio %g after sketching", j, ratio)
		}
	}
}

func TestGFlopsComputation(t *testing.T) {
	st := Stats{Flops: 2e9, Total: 1e9} // 2e9 flops in 1 second
	if g := st.GFlops(); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GFlops = %g, want 2", g)
	}
	if (Stats{}).GFlops() != 0 {
		t.Fatal("zero stats should give 0 GFlops")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if Alg3.String() == "" || Alg4.String() == "" || Algorithm(99).String() == "" {
		t.Fatal("empty algorithm name")
	}
}

func TestSketchVecMatchesMaterialized(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	m := 70
	v := make([]float64, m)
	for i := range v {
		if r.Float64() < 0.6 {
			v[i] = r.NormFloat64()
		}
	}
	for _, dist := range []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.ScaledInt} {
		sk := mustSketcher(t, 50, Options{Dist: dist, Seed: 6, BlockD: 16, Workers: 1})
		got := sk.SketchVec(v)
		s := sk.MaterializeS(m)
		want := make([]float64, 50)
		dense.Gemv(1, s, v, 0, want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("%v: S·v[%d] = %g, want %g", dist, i, got[i], want[i])
			}
		}
	}
}

func TestSketchVecConsistentWithSketch(t *testing.T) {
	// Sketching a one-column matrix must equal sketching its column.
	a := sparse.RandomUniform(40, 1, 0.4, 43)
	v := make([]float64, 40)
	rows, vals := a.ColView(0)
	for k, r := range rows {
		v[r] = vals[k]
	}
	sk := mustSketcher(t, 24, Options{Seed: 9, BlockD: 7, Workers: 1})
	ahat, _ := sk.Sketch(a)
	sv := sk.SketchVec(v)
	for i := range sv {
		if sv[i] != ahat.At(i, 0) {
			t.Fatalf("SketchVec differs from one-column Sketch at %d", i)
		}
	}
}

func TestSketchVecEmptyAndZero(t *testing.T) {
	sk := mustSketcher(t, 10, Options{Workers: 1})
	if out := sk.SketchVec(nil); len(out) != 10 {
		t.Fatal("empty input should give zero d-vector")
	}
	out := sk.SketchVec(make([]float64, 25))
	for _, x := range out {
		if x != 0 {
			t.Fatal("zero vector sketched to nonzero")
		}
	}
}

func TestSketchVecInto(t *testing.T) {
	sk := mustSketcher(t, 8, Options{Workers: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad dst length")
		}
	}()
	sk.SketchVecInto(make([]float64, 3), make([]float64, 5))
}

func TestChooseAlgorithmDirectional(t *testing.T) {
	d := 600
	// Dense-row pattern: Algorithm 4's sample count collapses by ~n per
	// row; it must win even at pessimistic h.
	rowMat := sparse.AbnormalA(4000, 2000, 200, 1)
	if got := ChooseAlgorithm(rowMat, d, Options{}, 1, 32<<20); got != Alg4 {
		t.Fatalf("dense-row pattern chose %v", got)
	}
	// Free RNG and a cache too small for the Â block: the scatter
	// penalty dominates and Algorithm 3 must win.
	colMat := sparse.AbnormalC(4000, 2000, 100, 2)
	if got := ChooseAlgorithm(colMat, d, Options{}, 1e-9, 1<<12); got != Alg3 {
		t.Fatalf("column-dense pattern with free RNG chose %v", got)
	}
}

func TestAlgAutoSketchCorrect(t *testing.T) {
	a := sparse.AbnormalA(500, 200, 50, 3)
	d := 120
	auto := mustSketcher(t, d, Options{Algorithm: AlgAuto, Seed: 4, BlockD: 40, BlockN: 25, Workers: 1})
	got, _ := auto.Sketch(a)
	ref := mustSketcher(t, d, Options{Algorithm: Alg3, Seed: 4, BlockD: 40, BlockN: 25, Workers: 1})
	want, _ := ref.Sketch(a)
	// Whatever kernel Auto picked, the result is the same sketch.
	if got.MaxAbsDiff(want) != 0 {
		t.Fatal("AlgAuto produced a different sketch")
	}
}
