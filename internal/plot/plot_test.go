package plot

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "percent of peak",
		XLabel: "density",
		YLabel: "% peak",
		LogX:   true,
		Series: []Series{
			{Name: "pm1", X: []float64{1e-4, 1e-3, 1e-2}, Y: []float64{13, 27, 36}},
			{Name: "gaussian", X: []float64{1e-4, 1e-3, 1e-2}, Y: []float64{1.7, 2.3, 7.9}},
		},
	}
}

func TestChartWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := lineChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "pm1", "gaussian", "percent of peak", "density"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
}

func TestChartValueMapping(t *testing.T) {
	// A single series with min/max values: the higher y must render at a
	// smaller pixel y (SVG y grows downward).
	c := &Chart{Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 10}}}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	start := strings.Index(out, `<polyline points="`)
	if start < 0 {
		t.Fatal("no polyline")
	}
	seg := out[start+len(`<polyline points="`):]
	seg = seg[:strings.Index(seg, `"`)]
	pts := strings.Fields(seg)
	if len(pts) != 2 {
		t.Fatalf("polyline has %d points", len(pts))
	}
	var x0, y0, x1, y1 float64
	if _, err := sscan(pts[0], &x0, &y0); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(pts[1], &x1, &y1); err != nil {
		t.Fatal(err)
	}
	if !(x1 > x0) || !(y1 < y0) {
		t.Fatalf("mapping wrong: (%g,%g) -> (%g,%g)", x0, y0, x1, y1)
	}
}

func sscan(pt string, x, y *float64) (int, error) {
	parts := strings.Split(pt, ",")
	if _, err := fscan(parts[0], x); err != nil {
		return 0, err
	}
	return fscan(parts[1], y)
}

func TestChartErrors(t *testing.T) {
	if err := (&Chart{}).WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	logNeg := &Chart{LogX: true, Series: []Series{{Name: "s", X: []float64{-1}, Y: []float64{1}}}}
	if err := logNeg.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("negative x on log axis accepted")
	}
}

func TestChartEscapesMarkup(t *testing.T) {
	c := lineChart()
	c.Title = "a<b&c"
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a<b&c") {
		t.Fatal("markup not escaped")
	}
	if !strings.Contains(buf.String(), "a&lt;b&amp;c") {
		t.Fatal("escaped title missing")
	}
}

func TestBarsWriteSVG(t *testing.T) {
	b := &Bars{
		Title:   "speedups over SAP",
		YLabel:  "ratio",
		Labels:  []string{"rail2586", "rail4284", "landmark"},
		RefLine: 1,
		Groups: []Series{
			{Name: "LSQR-D / SAP", Y: []float64{3.3, 5.7, 0.01}},
			{Name: "Direct / SAP", Y: []float64{13.8, 14.8, 7.5}},
		},
	}
	var buf bytes.Buffer
	if err := b.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rail2586", "LSQR-D / SAP", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bars SVG missing %q", want)
		}
	}
	// 3 labels × 2 groups = 6 bars plus 2 legend swatches.
	if c := strings.Count(out, "<rect"); c < 8 {
		t.Fatalf("too few rects: %d", c)
	}
}

func TestBarsErrors(t *testing.T) {
	if err := (&Bars{}).WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty bars accepted")
	}
	bad := &Bars{Labels: []string{"a", "b"}, Groups: []Series{{Name: "g", Y: []float64{1}}}}
	if err := bad.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("group/label mismatch accepted")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{0: "0", 123456: "1e+05", 0.001: "1e-03", 250: "250", 3.14159: "3.14"}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", v, got, want)
		}
	}
}

func fscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
