// Package plot renders minimal line charts as standalone SVG files, so the
// benchmark harness can regenerate the paper's figures (Figure 4's
// percent-of-peak curves, Figure 6's speedup bars) as actual images rather
// than only text series. Stdlib-only by design; the output is deliberately
// plain: axes, ticks, polyline series with markers, and a legend.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a line chart specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX plots X on a log₁₀ axis (Figure 4's density axis).
	LogX   bool
	Series []Series
	// Width and Height in pixels; zero selects 720×480.
	Width, Height int
}

// palette cycles through distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
}

// markers cycles through SVG marker shapes drawn at data points.
var markers = []string{"circle", "square", "diamond", "triangle", "cross", "circle", "square"}

// WriteSVG renders the chart. It returns an error only for I/O failures or
// an empty/degenerate specification.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const (
		padL = 70
		padR = 150
		padT = 40
		padB = 55
	)
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)
	if plotW <= 0 || plotH <= 0 {
		return fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}

	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x := s.X[i]
			if c.LogX {
				if x <= 0 {
					return fmt.Errorf("plot: series %q has x=%g on a log axis", s.Name, x)
				}
				x = math.Log10(x)
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("plot: all series empty")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom, floor at zero for non-negative data.
	yr := ymax - ymin
	ymax += 0.05 * yr
	if ymin > 0 && ymin < 0.3*yr {
		ymin = 0
	} else {
		ymin -= 0.05 * yr
	}

	sx := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(x)
		}
		return padL + (x-xmin)/(xmax-xmin)*plotW
	}
	sy := func(y float64) float64 {
		return padT + (1-(y-ymin)/(ymax-ymin))*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="22" font-size="15" text-anchor="middle">%s</text>`+"\n",
			padL+int(plotW/2), esc(c.Title))
	}
	// Frame.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n",
		padL, padT, plotW, plotH)

	// Ticks: 5 on each axis.
	for i := 0; i <= 5; i++ {
		fy := ymin + (ymax-ymin)*float64(i)/5
		py := sy(fy)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			padL, py, padL+plotW, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			padL-6, py+4, fmtTick(fy))

		var fx float64
		if c.LogX {
			fx = math.Pow(10, xmin+(xmax-xmin)*float64(i)/5)
		} else {
			fx = xmin + (xmax-xmin)*float64(i)/5
		}
		px := sx(fx)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px, padT+plotH+18, fmtTick(fx))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			padL+int(plotW/2), height-12, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			padT+int(plotH/2), padT+int(plotH/2), esc(c.YLabel))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		// Sort points by x for a sane polyline.
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		var pts []string
		for _, i := range idx {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for _, i := range idx {
			drawMarker(&sb, markers[si%len(markers)], sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend entry.
		ly := padT + 14 + 18*si
		lx := padL + int(plotW) + 12
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.8"/>`+"\n",
			lx, ly-4, lx+22, ly-4, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n", lx+28, ly, esc(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func drawMarker(sb *strings.Builder, kind string, x, y float64, color string) {
	const r = 3.2
	switch kind {
	case "square":
		fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(sb, `<path d="M%.1f %.1f L%.1f %.1f L%.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r*1.3, x+r*1.3, y, x, y+r*1.3, x-r*1.3, y, color)
	case "triangle":
		fmt.Fprintf(sb, `<path d="M%.1f %.1f L%.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r*1.3, x+r*1.3, y+r, x-r*1.3, y+r, color)
	case "cross":
		fmt.Fprintf(sb, `<path d="M%.1f %.1f L%.1f %.1f M%.1f %.1f L%.1f %.1f" stroke="%s" stroke-width="1.8"/>`+"\n",
			x-r, y-r, x+r, y+r, x-r, y+r, x+r, y-r, color)
	default:
		fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

// fmtTick formats an axis value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e4 || av < 1e-2:
		return fmt.Sprintf("%.0e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Bars renders a simple grouped bar chart (Figure 6's two ratio groups per
// matrix) as SVG.
type Bars struct {
	Title  string
	YLabel string
	// Labels name the categories on the x axis (one per group).
	Labels []string
	// Groups are the per-category value sets; all must have len(Labels)
	// values.
	Groups []Series // X ignored; Y holds one value per label
	Width  int
	Height int
	// RefLine draws a horizontal reference (e.g. y = 1 for speedups).
	RefLine float64
}

// WriteSVG renders the bar chart.
func (b *Bars) WriteSVG(w io.Writer) error {
	if len(b.Labels) == 0 || len(b.Groups) == 0 {
		return fmt.Errorf("plot: empty bar chart")
	}
	for _, g := range b.Groups {
		if len(g.Y) != len(b.Labels) {
			return fmt.Errorf("plot: group %q has %d values for %d labels", g.Name, len(g.Y), len(b.Labels))
		}
	}
	width, height := b.Width, b.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const (
		padL = 70
		padR = 150
		padT = 40
		padB = 70
	)
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)

	ymax := b.RefLine
	for _, g := range b.Groups {
		for _, v := range g.Y {
			ymax = math.Max(ymax, v)
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	ymax *= 1.08
	sy := func(v float64) float64 { return padT + (1-v/ymax)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if b.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="22" font-size="15" text-anchor="middle">%s</text>`+"\n",
			padL+int(plotW/2), esc(b.Title))
	}
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n",
		padL, padT, plotW, plotH)
	for i := 0; i <= 5; i++ {
		v := ymax * float64(i) / 5
		py := sy(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			padL, py, padL+plotW, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n", padL-6, py+4, fmtTick(v))
	}

	groupW := plotW / float64(len(b.Labels))
	barW := groupW * 0.8 / float64(len(b.Groups))
	for li, label := range b.Labels {
		gx := padL + groupW*float64(li)
		for gi, g := range b.Groups {
			color := palette[gi%len(palette)]
			x := gx + groupW*0.1 + barW*float64(gi)
			y := sy(g.Y[li])
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, padT+plotH-y, color)
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="end" transform="rotate(-30 %.1f %d)">%s</text>`+"\n",
			gx+groupW/2, height-padB+30, gx+groupW/2, height-padB+30, esc(label))
	}
	if b.RefLine > 0 {
		py := sy(b.RefLine)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#000" stroke-dasharray="5,4"/>`+"\n",
			padL, py, padL+plotW, py)
	}
	for gi, g := range b.Groups {
		color := palette[gi%len(palette)]
		ly := padT + 14 + 18*gi
		lx := padL + int(plotW) + 12
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="14" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n", lx+20, ly, esc(g.Name))
	}
	if b.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			padT+int(plotH/2), padT+int(plotH/2), esc(b.YLabel))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
