package rng

import (
	"fmt"
	"math"
)

// Source produces raw 64-bit random words and supports O(1) repositioning at
// block checkpoints, the contract Algorithms 3 and 4 need from their RNG
// (pseudocode: g.set_state(r, j); g.get_samples(v)).
type Source interface {
	// SetState repositions the stream at block coordinates (r, j).
	SetState(r, j uint64)
	// Uint64s overwrites dst with the next len(dst) raw words.
	Uint64s(dst []uint64)
}

// Distribution selects how raw words are transformed into entries of the
// sketching matrix S. These are the five methods compared in Figure 4.
type Distribution int

const (
	// Uniform11 samples uniformly from (-1, 1): one integer-to-float
	// conversion per entry (the cheap default).
	Uniform11 Distribution = iota
	// Rademacher samples uniformly from {+1, -1}: one random *bit* per
	// entry (the paper's 8-bit ±1 path; cheapest of all).
	Rademacher
	// Gaussian samples from N(0, 1) via the polar method: the expensive
	// transformation §III-C warns about.
	Gaussian
	// ScaledInt implements the "(-1,1) and scaling trick" of Figure 4:
	// S entries are the raw signed 32-bit integers (as float64) and the
	// kernel pre-multiplies A by f = 2⁻³¹, so the product equals
	// (S·f)(A/f⁻¹) with no per-entry scaling in the hot loop.
	ScaledInt
	// Junk produces deterministic non-random values from simple addition.
	// It is the upper-bound probe from §V-A: running the kernels with
	// free "generation" bounds how much a hardware RNG could help.
	Junk
)

// Scale31 is the scaling-trick factor f: ScaledInt entries are int32-valued,
// so A must be pre-scaled by Scale31 for SA to match a (-1,1) sketch.
const Scale31 = 1.0 / (1 << 31)

// String implements fmt.Stringer for Distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform11:
		return "uniform(-1,1)"
	case Rademacher:
		return "pm1"
	case Gaussian:
		return "gaussian"
	case ScaledInt:
		return "scaled-int"
	case Junk:
		return "junk"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution maps a CLI name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform", "uniform11", "u11":
		return Uniform11, nil
	case "pm1", "rademacher", "sign":
		return Rademacher, nil
	case "gaussian", "normal":
		return Gaussian, nil
	case "scaled", "scaled-int", "scaling-trick":
		return ScaledInt, nil
	case "junk":
		return Junk, nil
	default:
		return 0, fmt.Errorf("rng: unknown distribution %q", s)
	}
}

// Sampler binds a Source to a Distribution and provides the get_samples
// operation of the paper's pseudocode: overwrite a caller-provided vector
// with d₁ fresh entries of S.
type Sampler struct {
	src  Source
	dist Distribution
	buf  []uint64 // scratch for raw words, reused across Fill calls
	junk float64  // running value for the Junk distribution
	zig  zigWords // buffered word feed for the ziggurat Gaussian
}

// NewSampler builds a sampler. src may be shared only by one sampler.
func NewSampler(src Source, dist Distribution) *Sampler {
	s := &Sampler{src: src, dist: dist}
	s.zig.src = src
	s.zig.reset()
	return s
}

// Dist returns the sampler's distribution.
func (s *Sampler) Dist() Distribution { return s.dist }

// SetState repositions the underlying source at checkpoint (r, j).
func (s *Sampler) SetState(r, j uint64) {
	s.src.SetState(r, j)
	s.junk = float64(r%97)*1e-2 + float64(j%89)*1e-3
	// Discard buffered ziggurat words: they belong to the old checkpoint.
	s.zig.reset()
}

// Fill overwrites dst with samples from the configured distribution.
func (s *Sampler) Fill(dst []float64) {
	switch s.dist {
	case Uniform11:
		s.fillUniform11(dst)
	case Rademacher:
		s.fillRademacher(dst)
	case Gaussian:
		s.fillGaussian(dst)
	case ScaledInt:
		s.fillScaledInt(dst)
	case Junk:
		s.fillJunk(dst)
	default:
		panic(fmt.Sprintf("rng: bad distribution %d", s.dist))
	}
}

func (s *Sampler) raw(n int) []uint64 {
	if cap(s.buf) < n {
		s.buf = make([]uint64, n)
	}
	b := s.buf[:n]
	s.src.Uint64s(b)
	return b
}

// uniformFiller is the fused fast path a Source may provide for the default
// distribution.
type uniformFiller interface {
	FillUniform11(dst []float64)
}

// scaledIntFiller is the fused fast path for the scaling trick.
type scaledIntFiller interface {
	FillScaledInt(dst []float64)
}

// fillUniform11 maps each word to (-1, 1): interpret the top 53 bits as a
// signed fixed-point fraction. Matches the paper's "generate a random signed
// 32-bit integer and divide by 2³¹" recipe, at double precision. Sources
// that implement the fused path (BatchXoshiro) skip the raw-word buffer.
func (s *Sampler) fillUniform11(dst []float64) {
	if f, ok := s.src.(uniformFiller); ok {
		f.FillUniform11(dst)
		return
	}
	w := s.raw(len(dst))
	for i, u := range w {
		dst[i] = float64(int64(u)>>10) * 0x1p-53
	}
}

// fillRademacher uses one bit per entry: each raw word signs 64 entries.
// This is the cheapest distribution, mirroring the paper's 8-bit ±1 path.
func (s *Sampler) fillRademacher(dst []float64) {
	n := len(dst)
	words := (n + 63) / 64
	w := s.raw(words)
	i := 0
	for _, u := range w {
		lim := n - i
		if lim > 64 {
			lim = 64
		}
		for b := 0; b < lim; b++ {
			// Branch-free ±1 from bit b.
			dst[i+b] = 1 - 2*float64((u>>uint(b))&1)
		}
		i += lim
	}
}

// fillGaussian draws from N(0,1) with the 128-layer ziggurat (ziggurat.go).
// Still the expensive transform §III-C warns about (Figure 4's bottom
// series), just not gratuitously so.
func (s *Sampler) fillGaussian(dst []float64) {
	for i := range dst {
		dst[i] = s.zig.normal()
	}
}

// fillGaussianPolar is the Marsaglia polar method, kept as an independent
// reference implementation for the distributional cross-check tests.
func (s *Sampler) fillGaussianPolar(dst []float64) {
	i := 0
	var pair [2]uint64
	for i < len(dst) {
		s.src.Uint64s(pair[:])
		u := float64(int64(pair[0])>>10) * 0x1p-53
		v := float64(int64(pair[1])>>10) * 0x1p-53
		q := u*u + v*v
		if q >= 1 || q == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		dst[i] = u * f
		i++
		if i < len(dst) {
			dst[i] = v * f
			i++
		}
	}
}

// fillScaledInt writes raw signed 32-bit integers as float64 with no
// scaling — callers must pre-scale A by Scale31 (see kernels). Each 64-bit
// word yields two samples; halving the generation cost is the point of the
// trick (§III-C: the base RNG's integers are used directly).
func (s *Sampler) fillScaledInt(dst []float64) {
	if f, ok := s.src.(scaledIntFiller); ok {
		f.FillScaledInt(dst)
		return
	}
	n := len(dst)
	w := s.raw((n + 1) / 2)
	i := 0
	for ; i+2 <= n; i += 2 {
		u := w[i/2]
		dst[i] = float64(int32(uint32(u)))
		dst[i+1] = float64(int32(uint32(u >> 32)))
	}
	if i < n {
		dst[i] = float64(int32(uint32(w[n/2])))
	}
}

// RawWords overwrites and returns an internal buffer with enough raw words
// to cover nbits random bits. It is the fused fast path for the ±1
// distribution: kernels consume sign bits directly instead of materialising
// a ±1 vector (the paper's 8-bit ±1 specialisation taken to 1 bit).
// The returned slice is valid until the next Sampler call.
func (s *Sampler) RawWords(nbits int) []uint64 {
	return s.raw((nbits + 63) / 64)
}

// fillJunk produces values from simple addition, no RNG at all (§V-A
// upper-bound probe).
func (s *Sampler) fillJunk(dst []float64) {
	v := s.junk
	for i := range dst {
		v += 1e-6
		if v > 1 {
			v -= 2
		}
		dst[i] = v
	}
	s.junk = v
}

// SourceKind selects the RNG engine behind a Sampler.
type SourceKind int

const (
	// SourceBatchXoshiro is the 4-lane xoshiro256++ (default, fastest).
	SourceBatchXoshiro SourceKind = iota
	// SourceScalarXoshiro is single-lane xoshiro256++ (lanes ablation).
	SourceScalarXoshiro
	// SourcePhilox is the Philox4x32-10 counter-based generator
	// (blocking-independent reproducibility, ~5x slower).
	SourcePhilox
)

// String implements fmt.Stringer for SourceKind.
func (k SourceKind) String() string {
	switch k {
	case SourceBatchXoshiro:
		return "xoshiro-batch4"
	case SourceScalarXoshiro:
		return "xoshiro-scalar"
	case SourcePhilox:
		return "philox4x32"
	default:
		return fmt.Sprintf("SourceKind(%d)", int(k))
	}
}

// NewSource constructs a Source of the given kind seeded with seed.
func NewSource(kind SourceKind, seed uint64) Source {
	switch kind {
	case SourceBatchXoshiro:
		return NewBatchXoshiro(seed)
	case SourceScalarXoshiro:
		return NewScalarXoshiroSource(seed)
	case SourcePhilox:
		return NewPhilox4x32(seed)
	default:
		panic(fmt.Sprintf("rng: bad source kind %d", kind))
	}
}
