package rng

import (
	"math"
	"sort"
	"testing"
)

// normCDF is Φ(x) via the complementary error function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func drawGaussian(n int, seed uint64) []float64 {
	s := NewSampler(NewBatchXoshiro(seed), Gaussian)
	s.SetState(0, 0)
	out := make([]float64, n)
	s.Fill(out)
	return out
}

func TestZigguratTablesConsistent(t *testing.T) {
	// Layer widths decrease outward; ordinates increase inward.
	for i := 2; i < 128; i++ {
		if zigWN[i] <= zigWN[i-1] && i > 1 {
			// wn stores x_i/2^31 with x increasing in i (layer 127 is the
			// widest, at the tail boundary r).
			t.Fatalf("wn not increasing at %d: %g <= %g", i, zigWN[i], zigWN[i-1])
		}
		if zigFN[i] >= zigFN[i-1] {
			t.Fatalf("fn not decreasing at %d", i)
		}
	}
	if math.Abs(zigWN[127]*zigM-zigR) > 1e-12 {
		t.Fatalf("outermost layer width %g, want r=%g", zigWN[127]*zigM, zigR)
	}
	if math.Abs(zigFN[0]-1) > 1e-15 {
		t.Fatalf("fn[0] = %g", zigFN[0])
	}
}

func TestZigguratMoments(t *testing.T) {
	xs := drawGaussian(400000, 1)
	var m1, m2, m3, m4 float64
	for _, x := range xs {
		m1 += x
		m2 += x * x
		m3 += x * x * x
		m4 += x * x * x * x
	}
	n := float64(len(xs))
	m1 /= n
	m2 /= n
	m3 /= n
	m4 /= n
	if math.Abs(m1) > 0.01 {
		t.Fatalf("mean %g", m1)
	}
	if math.Abs(m2-1) > 0.02 {
		t.Fatalf("variance %g", m2)
	}
	if math.Abs(m3) > 0.03 {
		t.Fatalf("skewness (3rd moment) %g", m3)
	}
	if math.Abs(m4-3) > 0.15 {
		t.Fatalf("kurtosis (4th moment) %g, want 3", m4)
	}
}

// Chi-square goodness-of-fit against the normal CDF over 40 equiprobable
// bins — catches table or acceptance-test transcription bugs that moment
// tests miss.
func TestZigguratChiSquare(t *testing.T) {
	const nBins = 40
	const nSamples = 400000
	xs := drawGaussian(nSamples, 2)
	edges := make([]float64, nBins-1)
	for i := range edges {
		p := float64(i+1) / nBins
		// Inverse normal CDF by bisection on Φ.
		lo, hi := -8.0, 8.0
		for k := 0; k < 80; k++ {
			mid := (lo + hi) / 2
			if normCDF(mid) < p {
				lo = mid
			} else {
				hi = mid
			}
		}
		edges[i] = (lo + hi) / 2
	}
	counts := make([]int, nBins)
	for _, x := range xs {
		k := sort.SearchFloat64s(edges, x)
		counts[k]++
	}
	expected := float64(nSamples) / nBins
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 39 dof: mean 39, sd ~8.8; 5.5 sigma ≈ 87.
	if chi2 > 87 {
		t.Fatalf("chi2 = %g over %d bins: distribution is off", chi2, nBins)
	}
}

func TestZigguratTailMass(t *testing.T) {
	// P(|X| > r = 3.4426…) ≈ 5.76e-4; the tail path must actually fire
	// and produce the right mass and only values beyond r.
	xs := drawGaussian(2000000, 3)
	tail := 0
	for _, x := range xs {
		if math.Abs(x) > zigR {
			tail++
		}
	}
	want := 2 * (1 - normCDF(zigR)) * float64(len(xs))
	if float64(tail) < want*0.7 || float64(tail) > want*1.3 {
		t.Fatalf("tail count %d, expected ≈ %.0f", tail, want)
	}
}

func TestZigguratAgainstPolarReference(t *testing.T) {
	// Kolmogorov–Smirnov two-sample test between the ziggurat and the
	// independent polar implementation.
	n := 100000
	zig := drawGaussian(n, 4)
	s := NewSampler(NewBatchXoshiro(99), Gaussian)
	s.SetState(0, 0)
	polar := make([]float64, n)
	s.fillGaussianPolar(polar)

	sort.Float64s(zig)
	sort.Float64s(polar)
	var ks float64
	j := 0
	for i, x := range zig {
		for j < n && polar[j] <= x {
			j++
		}
		d := math.Abs(float64(i+1)/float64(n) - float64(j)/float64(n))
		if d > ks {
			ks = d
		}
	}
	// Two-sample KS critical value at alpha=1e-6: ~2.4*sqrt(2/n).
	crit := 2.4 * math.Sqrt(2/float64(n))
	if ks > crit {
		t.Fatalf("KS statistic %g > %g: ziggurat and polar disagree", ks, crit)
	}
}

func TestZigguratReproducibleAcrossCheckpoints(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(5), Gaussian)
	a := make([]float64, 300)
	b := make([]float64, 300)
	s.SetState(4, 9)
	s.Fill(a)
	s.SetState(0, 0)
	s.Fill(make([]float64, 17)) // desynchronise the internal buffer
	s.SetState(4, 9)
	s.Fill(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gaussian checkpoint replay differs at %d", i)
		}
	}
}
