// Package rng implements the random-number substrate of the paper (§IV-B):
// an XOR-shift family generator (xoshiro256++) with O(1) state checkpointing
// at block coordinates, a 4-lane batched variant standing in for the SIMD
// implementation the Julia code uses, a Philox4x32-10 counter-based RNG
// (Random123 style) for blocking-independent reproducibility, and the
// output distributions the paper compares in Figure 4: uniform (-1,1),
// Rademacher ±1, Gaussian, and the integer "scaling trick".
package rng

import "math/bits"

// SplitMix64 advances the given state and returns the next output of the
// splitmix64 sequence. It is the recommended seeder for xoshiro state and is
// how block checkpoints (r, j) are folded into fresh generator states.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix64 is a stateless strong 64-bit mixer (splitmix64 finaliser) used to
// combine seed and block coordinates into checkpoint states.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256++ generator of Blackman & Vigna, the family
// the paper's Julia implementation builds on. The zero value is not valid;
// construct with NewXoshiro256 or call Seed.
type Xoshiro256 struct {
	s0, s1, s2, s3 uint64
}

// NewXoshiro256 returns a generator seeded from seed via splitmix64.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	x := &Xoshiro256{}
	x.Seed(seed)
	return x
}

// Seed resets the state from a 64-bit seed using splitmix64, guaranteeing a
// nonzero state.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := seed
	x.s0 = SplitMix64(&sm)
	x.s1 = SplitMix64(&sm)
	x.s2 = SplitMix64(&sm)
	x.s3 = SplitMix64(&sm)
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		x.s0 = 0x9E3779B97F4A7C15 // all-zero state is the one forbidden point
	}
}

// Uint64 returns the next 64 random bits (xoshiro256++ scrambler).
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s0+x.s3, 23) + x.s0
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = bits.RotateLeft64(x.s3, 45)
	return result
}

// Float64 returns a uniform sample in [0, 1) with 53-bit resolution.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) * 0x1p-53
}

// Jump advances the state by 2^128 steps, equivalent to 2^128 calls to
// Uint64; it partitions the period into non-overlapping streams (used by
// tests that check stream independence).
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= x.s0
				t1 ^= x.s1
				t2 ^= x.s2
				t3 ^= x.s3
			}
			x.Uint64()
		}
	}
	x.s0, x.s1, x.s2, x.s3 = t0, t1, t2, t3
}

// BatchXoshiro is the 4-lane interleaved xoshiro256++ generator. Four
// independent streams are advanced together so the hot fill loop has the
// instruction-level parallelism that the paper obtains from SIMD xoshiro in
// Julia (Go exposes no vector intrinsics in the stdlib, so 4-way unrolling
// is the faithful equivalent; see DESIGN.md §1).
type BatchXoshiro struct {
	s [4][4]uint64 // s[word][lane]
	// seed retained so SetState can derive checkpoint states in O(1).
	seed uint64
}

// Lanes is the interleave width of BatchXoshiro.
const Lanes = 4

// NewBatchXoshiro returns a 4-lane generator derived from seed.
func NewBatchXoshiro(seed uint64) *BatchXoshiro {
	b := &BatchXoshiro{seed: seed}
	b.reseed(seed)
	return b
}

func (b *BatchXoshiro) reseed(v uint64) {
	sm := v
	for lane := 0; lane < Lanes; lane++ {
		b.s[0][lane] = SplitMix64(&sm)
		b.s[1][lane] = SplitMix64(&sm)
		b.s[2][lane] = SplitMix64(&sm)
		b.s[3][lane] = SplitMix64(&sm)
		if b.s[0][lane]|b.s[1][lane]|b.s[2][lane]|b.s[3][lane] == 0 {
			b.s[0][lane] = 0x9E3779B97F4A7C15
		}
	}
}

// SetState repositions the generator at block checkpoint (r, j) in O(1)
// (§IV-B: "utilizing blocks as checkpoints"). The same (seed, r, j) always
// yields the same stream regardless of what was generated before, which is
// what makes the sketch reproducible and thread-schedule independent.
func (b *BatchXoshiro) SetState(r, j uint64) {
	b.reseed(mix64(b.seed^mix64(r*0x9E3779B97F4A7C15+1)) ^ mix64(j*0xBF58476D1CE4E5B9+2))
}

// Uint64s fills dst with the next len(dst) raw 64-bit outputs, drawing from
// the four lanes round-robin in groups of four. The four lane states live in
// registers for the duration of the loop — the pure-Go equivalent of a
// 4-wide SIMD xoshiro step.
func (b *BatchXoshiro) Uint64s(dst []uint64) {
	a0, a1, a2, a3 := b.s[0][0], b.s[1][0], b.s[2][0], b.s[3][0]
	c0, c1, c2, c3 := b.s[0][1], b.s[1][1], b.s[2][1], b.s[3][1]
	e0, e1, e2, e3 := b.s[0][2], b.s[1][2], b.s[2][2], b.s[3][2]
	g0, g1, g2, g3 := b.s[0][3], b.s[1][3], b.s[2][3], b.s[3][3]
	i := 0
	for ; i+Lanes <= len(dst); i += Lanes {
		r0 := bits.RotateLeft64(a0+a3, 23) + a0
		r1 := bits.RotateLeft64(c0+c3, 23) + c0
		r2 := bits.RotateLeft64(e0+e3, 23) + e0
		r3 := bits.RotateLeft64(g0+g3, 23) + g0
		t0, t1, t2, t3 := a1<<17, c1<<17, e1<<17, g1<<17
		a2 ^= a0
		c2 ^= c0
		e2 ^= e0
		g2 ^= g0
		a3 ^= a1
		c3 ^= c1
		e3 ^= e1
		g3 ^= g1
		a1 ^= a2
		c1 ^= c2
		e1 ^= e2
		g1 ^= g2
		a0 ^= a3
		c0 ^= c3
		e0 ^= e3
		g0 ^= g3
		a2 ^= t0
		c2 ^= t1
		e2 ^= t2
		g2 ^= t3
		a3 = bits.RotateLeft64(a3, 45)
		c3 = bits.RotateLeft64(c3, 45)
		e3 = bits.RotateLeft64(e3, 45)
		g3 = bits.RotateLeft64(g3, 45)
		dst[i] = r0
		dst[i+1] = r1
		dst[i+2] = r2
		dst[i+3] = r3
	}
	b.s[0][0], b.s[1][0], b.s[2][0], b.s[3][0] = a0, a1, a2, a3
	b.s[0][1], b.s[1][1], b.s[2][1], b.s[3][1] = c0, c1, c2, c3
	b.s[0][2], b.s[1][2], b.s[2][2], b.s[3][2] = e0, e1, e2, e3
	b.s[0][3], b.s[1][3], b.s[2][3], b.s[3][3] = g0, g1, g2, g3
	for lane := 0; i < len(dst); i, lane = i+1, lane+1 {
		s0, s1, s2, s3 := &b.s[0], &b.s[1], &b.s[2], &b.s[3]
		r := bits.RotateLeft64(s0[lane]+s3[lane], 23) + s0[lane]
		t := s1[lane] << 17
		s2[lane] ^= s0[lane]
		s3[lane] ^= s1[lane]
		s1[lane] ^= s2[lane]
		s0[lane] ^= s3[lane]
		s2[lane] ^= t
		s3[lane] = bits.RotateLeft64(s3[lane], 45)
		dst[i] = r
	}
}

// FillUniform11 writes len(dst) uniform (-1, 1) samples directly, fusing
// generation and conversion so raw words never round-trip through memory.
// This is the kernel-facing fast path of the default distribution.
func (b *BatchXoshiro) FillUniform11(dst []float64) {
	a0, a1, a2, a3 := b.s[0][0], b.s[1][0], b.s[2][0], b.s[3][0]
	c0, c1, c2, c3 := b.s[0][1], b.s[1][1], b.s[2][1], b.s[3][1]
	e0, e1, e2, e3 := b.s[0][2], b.s[1][2], b.s[2][2], b.s[3][2]
	g0, g1, g2, g3 := b.s[0][3], b.s[1][3], b.s[2][3], b.s[3][3]
	const scale = 0x1p-53
	i := 0
	for ; i+Lanes <= len(dst); i += Lanes {
		r0 := bits.RotateLeft64(a0+a3, 23) + a0
		r1 := bits.RotateLeft64(c0+c3, 23) + c0
		r2 := bits.RotateLeft64(e0+e3, 23) + e0
		r3 := bits.RotateLeft64(g0+g3, 23) + g0
		t0, t1, t2, t3 := a1<<17, c1<<17, e1<<17, g1<<17
		a2 ^= a0
		c2 ^= c0
		e2 ^= e0
		g2 ^= g0
		a3 ^= a1
		c3 ^= c1
		e3 ^= e1
		g3 ^= g1
		a1 ^= a2
		c1 ^= c2
		e1 ^= e2
		g1 ^= g2
		a0 ^= a3
		c0 ^= c3
		e0 ^= e3
		g0 ^= g3
		a2 ^= t0
		c2 ^= t1
		e2 ^= t2
		g2 ^= t3
		a3 = bits.RotateLeft64(a3, 45)
		c3 = bits.RotateLeft64(c3, 45)
		e3 = bits.RotateLeft64(e3, 45)
		g3 = bits.RotateLeft64(g3, 45)
		out := dst[i : i+4 : i+4] // one bounds check for the group
		out[0] = float64(int64(r0)>>10) * scale
		out[1] = float64(int64(r1)>>10) * scale
		out[2] = float64(int64(r2)>>10) * scale
		out[3] = float64(int64(r3)>>10) * scale
	}
	b.s[0][0], b.s[1][0], b.s[2][0], b.s[3][0] = a0, a1, a2, a3
	b.s[0][1], b.s[1][1], b.s[2][1], b.s[3][1] = c0, c1, c2, c3
	b.s[0][2], b.s[1][2], b.s[2][2], b.s[3][2] = e0, e1, e2, e3
	b.s[0][3], b.s[1][3], b.s[2][3], b.s[3][3] = g0, g1, g2, g3
	if i < len(dst) {
		var tail [Lanes]uint64
		b.Uint64s(tail[:len(dst)-i])
		for k := 0; i < len(dst); i, k = i+1, k+1 {
			dst[i] = float64(int64(tail[k])>>10) * scale
		}
	}
}

// FillScaledInt writes len(dst) int32-valued float64 samples (two per raw
// word), fused like FillUniform11. This is the scaling-trick fast path: no
// per-sample scaling multiply, half the generator work per sample.
func (b *BatchXoshiro) FillScaledInt(dst []float64) {
	a0, a1, a2, a3 := b.s[0][0], b.s[1][0], b.s[2][0], b.s[3][0]
	c0, c1, c2, c3 := b.s[0][1], b.s[1][1], b.s[2][1], b.s[3][1]
	e0, e1, e2, e3 := b.s[0][2], b.s[1][2], b.s[2][2], b.s[3][2]
	g0, g1, g2, g3 := b.s[0][3], b.s[1][3], b.s[2][3], b.s[3][3]
	i := 0
	for ; i+2*Lanes <= len(dst); i += 2 * Lanes {
		r0 := bits.RotateLeft64(a0+a3, 23) + a0
		r1 := bits.RotateLeft64(c0+c3, 23) + c0
		r2 := bits.RotateLeft64(e0+e3, 23) + e0
		r3 := bits.RotateLeft64(g0+g3, 23) + g0
		t0, t1, t2, t3 := a1<<17, c1<<17, e1<<17, g1<<17
		a2 ^= a0
		c2 ^= c0
		e2 ^= e0
		g2 ^= g0
		a3 ^= a1
		c3 ^= c1
		e3 ^= e1
		g3 ^= g1
		a1 ^= a2
		c1 ^= c2
		e1 ^= e2
		g1 ^= g2
		a0 ^= a3
		c0 ^= c3
		e0 ^= e3
		g0 ^= g3
		a2 ^= t0
		c2 ^= t1
		e2 ^= t2
		g2 ^= t3
		a3 = bits.RotateLeft64(a3, 45)
		c3 = bits.RotateLeft64(c3, 45)
		e3 = bits.RotateLeft64(e3, 45)
		g3 = bits.RotateLeft64(g3, 45)
		out := dst[i : i+8 : i+8]
		out[0] = float64(int32(uint32(r0)))
		out[1] = float64(int32(uint32(r0 >> 32)))
		out[2] = float64(int32(uint32(r1)))
		out[3] = float64(int32(uint32(r1 >> 32)))
		out[4] = float64(int32(uint32(r2)))
		out[5] = float64(int32(uint32(r2 >> 32)))
		out[6] = float64(int32(uint32(r3)))
		out[7] = float64(int32(uint32(r3 >> 32)))
	}
	b.s[0][0], b.s[1][0], b.s[2][0], b.s[3][0] = a0, a1, a2, a3
	b.s[0][1], b.s[1][1], b.s[2][1], b.s[3][1] = c0, c1, c2, c3
	b.s[0][2], b.s[1][2], b.s[2][2], b.s[3][2] = e0, e1, e2, e3
	b.s[0][3], b.s[1][3], b.s[2][3], b.s[3][3] = g0, g1, g2, g3
	if i < len(dst) {
		rem := len(dst) - i
		var tail [Lanes]uint64
		b.Uint64s(tail[:(rem+1)/2])
		for k := 0; i < len(dst); i, k = i+1, k+1 {
			u := tail[k/2]
			if k%2 == 1 {
				u >>= 32
			}
			dst[i] = float64(int32(uint32(u)))
		}
	}
}

// ScalarXoshiroSource adapts the scalar Xoshiro256 to the Source interface
// (used by the RNG-lanes ablation bench to quantify the batching win).
type ScalarXoshiroSource struct {
	x    Xoshiro256
	seed uint64
}

// NewScalarXoshiroSource returns a scalar single-lane source.
func NewScalarXoshiroSource(seed uint64) *ScalarXoshiroSource {
	s := &ScalarXoshiroSource{seed: seed}
	s.x.Seed(seed)
	return s
}

// SetState repositions at block checkpoint (r, j) in O(1).
func (s *ScalarXoshiroSource) SetState(r, j uint64) {
	s.x.Seed(mix64(s.seed^mix64(r*0x9E3779B97F4A7C15+1)) ^ mix64(j*0xBF58476D1CE4E5B9+2))
}

// Uint64s fills dst from the single scalar stream.
func (s *ScalarXoshiroSource) Uint64s(dst []uint64) {
	for i := range dst {
		dst[i] = s.x.Uint64()
	}
}
