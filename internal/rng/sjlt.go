package rng

import "math"

// sjltBase is the reserved stream checkpoint row used to draw an SJLT
// column's positions and signs: FillSJLTColumn repositions the source at
// (sjltBase, j) rather than at the kernel's block-row checkpoint. Keying
// the draw off the global column index j alone makes the sparse column a
// pure function of (seed, source, d, s, j) — identical under any blocking,
// worker count, scheduler, or shard split, for both the xoshiro reseeding
// scheme and the Philox counter. Kernel checkpoints use r = blockRow,
// which is far below 2⁶², so the streams can never collide.
const sjltBase uint64 = 1 << 62

// SJLTSparsity resolves the effective per-column nonzero count s for a
// sparse-family distribution at sketch dimension d. CountSketch is pinned
// to s = 1; SJLT uses the requested value, defaulting to ⌈√d⌉ when
// requested ≤ 0 (the 1/√d-density rule from the sparse-JL literature),
// and clamps to [1, d] (s ≥ d degenerates to a dense ±1/√s column set).
// Non-sparse distributions return 0.
func SJLTSparsity(dist Distribution, requested, d int) int {
	if !IsSparse(dist) {
		return 0
	}
	if d <= 0 {
		return 1
	}
	if dist == CountSketch {
		return 1
	}
	s := requested
	if s <= 0 {
		s = int(math.Ceil(math.Sqrt(float64(d))))
	}
	if s < 1 {
		s = 1
	}
	if s > d {
		s = d
	}
	return s
}

// SJLTScale is the nonzero magnitude 1/√s, chosen so E[S_ij²] = 1/d and
// sketches across the family are directly comparable at equal d. For the
// bit-exactness tests note 1/√s is a power of two iff s is a power of four
// (s = 1, 4, 16, ...); only those sparsities make SJLT linearity exact in
// floating point.
func SJLTScale(s int) float64 { return 1 / math.Sqrt(float64(s)) }

// FillSJLTColumn regenerates column j of the sparse sketching matrix S:
// row positions into pos[:s] (strictly ascending, all in [0, d)) and
// signed values ±scale into val[:s]. The block/OSNAP construction
// partitions [0, d) into s contiguous blocks — the first d%s of size
// ⌊d/s⌋+1, the rest ⌊d/s⌋ — and places exactly one nonzero per block:
// position = blockStart + word % blockSize, sign = bit 63 of the word.
// One raw word per nonzero; the draw always starts at the reserved
// checkpoint (sjltBase, j), so callers need not (and must not) SetState
// around it. pos and val must have length ≥ s.
func (sp *Sampler) FillSJLTColumn(j uint64, d, s int, scale float64, pos []int, val []float64) {
	sp.src.SetState(sjltBase, j)
	sp.zig.reset()
	w := sp.raw(s)
	q, rem := d/s, d%s
	start := 0
	for b := 0; b < s; b++ {
		size := q
		if b < rem {
			size++
		}
		u := w[b]
		pos[b] = start + int(u%uint64(size))
		// Branch-free ±scale from the top bit (independent of the
		// position bits for any blockSize far below 2⁶³).
		val[b] = scale * (1 - 2*float64(u>>63))
		start += size
	}
}
