package rng

import "testing"

func TestDistCostBaseline(t *testing.T) {
	if c := DistCost(Uniform11); c != 1 {
		t.Errorf("DistCost(Uniform11) = %g, want exactly 1", c)
	}
}

func TestDistCostPositiveAndClamped(t *testing.T) {
	for _, d := range []Distribution{Uniform11, Rademacher, Gaussian, ScaledInt, Junk, SJLT, CountSketch} {
		c := DistCost(d)
		if c < 1.0/64 || c > 64 {
			t.Errorf("DistCost(%v) = %g outside clamp [1/64, 64]", d, c)
		}
	}
}

func TestDistCostUnknownDistribution(t *testing.T) {
	if c := DistCost(Distribution(-1)); c != 1 {
		t.Errorf("DistCost(-1) = %g, want 1", c)
	}
	if c := DistCost(Distribution(99)); c != 1 {
		t.Errorf("DistCost(99) = %g, want 1", c)
	}
}

// The ordering the §III-B cost model relies on: the fused 1-bit Rademacher
// path must measure cheaper than the ziggurat Gaussian, by a wide margin.
func TestDistCostRademacherCheaperThanGaussian(t *testing.T) {
	r, g := DistCost(Rademacher), DistCost(Gaussian)
	if r >= g {
		t.Errorf("DistCost(Rademacher)=%g not below DistCost(Gaussian)=%g", r, g)
	}
}

// TestDistCostStability is the regression test for the pinned one-time
// measurement: two in-process invocations of the measurement pass must
// agree on every relative cost within the documented variance bound. The
// OS-thread pin plus best-of-reps timing is what keeps this tight even on
// a loaded CI box; the bound here (4x either way) is deliberately far
// outside the documented ±25% steady-state jitter so only a broken
// measurement discipline — not a busy neighbour — can trip it, while a
// regression to wall-clock-of-everything timing (orders of magnitude under
// load) still fails.
func TestDistCostStability(t *testing.T) {
	t1 := measureDistCostTable()
	t2 := measureDistCostTable()
	for d := Uniform11; d <= CountSketch; d++ {
		a, b := t1[d], t2[d]
		if a <= 0 || b <= 0 {
			t.Fatalf("%v: non-positive measured cost (%g, %g)", d, a, b)
		}
		ratio := a / b
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%v: relative cost drifted %g -> %g (ratio %.2f) across two in-process measurements", d, a, b, ratio)
		}
	}
	// The memoised table must itself be one of the same measurement's
	// outputs: Uniform11 exactly 1, everything clamped.
	if got := DistCost(Uniform11); got != 1 {
		t.Errorf("memoised DistCost(Uniform11) = %g, want 1", got)
	}
}

// TestDistCostSparseFamilyOrdering: the per-nonzero cost of the sparse
// family includes the per-column SetState reseed, so it must be positive
// and — like every cost — clamped; CountSketch (one word per column, all
// repositioning overhead) is the family's expensive-per-word end.
func TestDistCostSparseFamilyOrdering(t *testing.T) {
	sj, cs := DistCost(SJLT), DistCost(CountSketch)
	if sj <= 0 || cs <= 0 {
		t.Fatalf("sparse family costs (%g, %g) not positive", sj, cs)
	}
	if sj > cs {
		t.Errorf("DistCost(SJLT)=%g above DistCost(CountSketch)=%g; amortising the reseed over s words should not cost more per word", sj, cs)
	}
}
