package rng

import "testing"

func TestDistCostBaseline(t *testing.T) {
	if c := DistCost(Uniform11); c != 1 {
		t.Errorf("DistCost(Uniform11) = %g, want exactly 1", c)
	}
}

func TestDistCostPositiveAndClamped(t *testing.T) {
	for _, d := range []Distribution{Uniform11, Rademacher, Gaussian, ScaledInt, Junk} {
		c := DistCost(d)
		if c < 1.0/64 || c > 64 {
			t.Errorf("DistCost(%v) = %g outside clamp [1/64, 64]", d, c)
		}
	}
}

func TestDistCostUnknownDistribution(t *testing.T) {
	if c := DistCost(Distribution(-1)); c != 1 {
		t.Errorf("DistCost(-1) = %g, want 1", c)
	}
	if c := DistCost(Distribution(99)); c != 1 {
		t.Errorf("DistCost(99) = %g, want 1", c)
	}
}

// The ordering the §III-B cost model relies on: the fused 1-bit Rademacher
// path must measure cheaper than the ziggurat Gaussian, by a wide margin.
func TestDistCostRademacherCheaperThanGaussian(t *testing.T) {
	r, g := DistCost(Rademacher), DistCost(Gaussian)
	if r >= g {
		t.Errorf("DistCost(Rademacher)=%g not below DistCost(Gaussian)=%g", r, g)
	}
}
