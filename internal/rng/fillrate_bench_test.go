package rng

import "testing"

func BenchmarkFillUniform(b *testing.B) {
	s := NewSampler(NewBatchXoshiro(1), Uniform11)
	buf := make([]float64, 3000)
	b.SetBytes(3000 * 8)
	for i := 0; i < b.N; i++ {
		s.SetState(0, uint64(i))
		s.Fill(buf)
	}
}

func BenchmarkFillRademacher(b *testing.B) {
	s := NewSampler(NewBatchXoshiro(1), Rademacher)
	buf := make([]float64, 3000)
	b.SetBytes(3000 * 8)
	for i := 0; i < b.N; i++ {
		s.SetState(0, uint64(i))
		s.Fill(buf)
	}
}

func BenchmarkFillScaledInt(b *testing.B) {
	s := NewSampler(NewBatchXoshiro(1), ScaledInt)
	buf := make([]float64, 3000)
	b.SetBytes(3000 * 8)
	for i := 0; i < b.N; i++ {
		s.SetState(0, uint64(i))
		s.Fill(buf)
	}
}

func BenchmarkFillGaussian(b *testing.B) {
	s := NewSampler(NewBatchXoshiro(1), Gaussian)
	buf := make([]float64, 3000)
	b.SetBytes(3000 * 8)
	for i := 0; i < b.N; i++ {
		s.SetState(0, uint64(i))
		s.Fill(buf)
	}
}

func BenchmarkFillGaussianPolar(b *testing.B) {
	s := NewSampler(NewBatchXoshiro(1), Gaussian)
	buf := make([]float64, 3000)
	b.SetBytes(3000 * 8)
	for i := 0; i < b.N; i++ {
		s.SetState(0, uint64(i))
		s.fillGaussianPolar(buf)
	}
}
