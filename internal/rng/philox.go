package rng

// Philox4x32 is the Philox4x32-10 counter-based RNG of Salmon et al.
// (Random123, SC'11), the CBRNG family §IV-B discusses. The t-th word after
// SetState(r, j) is a pure function of (seed, r+t, j): the counter IS the
// matrix coordinate. Consequently the entries of S are identical no matter
// how the matrix is blocked or scheduled across threads — the
// reproducibility property RandBLAS requires (§IV-C) and that xoshiro
// checkpointing only provides per fixed blocking. The price, which the
// AblationCBRNG bench measures, is one full 10-round Philox block per
// 64 bits of output (several times slower than batched xoshiro, matching
// the ~5x factor the paper reports for Random123).
type Philox4x32 struct {
	key0, key1 uint32
	r, j       uint64 // block coordinates set by SetState
	t          uint64 // words already emitted since SetState
	seed       uint64
}

const (
	philoxM0 = 0xD2511F53
	philoxM1 = 0xCD9E8D57
	philoxW0 = 0x9E3779B9 // golden ratio
	philoxW1 = 0xBB67AE85 // sqrt(3)-1
)

// NewPhilox4x32 returns a counter-based generator with key derived from seed.
func NewPhilox4x32(seed uint64) *Philox4x32 {
	return &Philox4x32{key0: uint32(seed), key1: uint32(seed >> 32), seed: seed}
}

// SetState positions the stream at coordinates (r, j). No state mixing
// occurs — outputs depend only on (seed, r+t, j) for t = 0, 1, ….
func (p *Philox4x32) SetState(r, j uint64) {
	p.r = r
	p.j = j
	p.t = 0
}

// philoxRound performs one Philox S-P network round.
func philoxRound(c0, c1, c2, c3, k0, k1 uint32) (uint32, uint32, uint32, uint32) {
	hi0, lo0 := mulhilo(philoxM0, c0)
	hi1, lo1 := mulhilo(philoxM1, c2)
	return hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
}

func mulhilo(a, b uint32) (hi, lo uint32) {
	p := uint64(a) * uint64(b)
	return uint32(p >> 32), uint32(p)
}

// word64 runs the 10-round bijection on counter (idx, j) and returns the
// first 64 output bits.
func (p *Philox4x32) word64(idx uint64) uint64 {
	c0 := uint32(idx)
	c1 := uint32(idx >> 32)
	c2 := uint32(p.j)
	c3 := uint32(p.j >> 32)
	k0, k1 := p.key0, p.key1
	for round := 0; round < 10; round++ {
		c0, c1, c2, c3 = philoxRound(c0, c1, c2, c3, k0, k1)
		k0 += philoxW0
		k1 += philoxW1
	}
	return uint64(c0) | uint64(c1)<<32
}

// Uint64s fills dst; word i of the fill is word64(r + t + i).
func (p *Philox4x32) Uint64s(dst []uint64) {
	base := p.r + p.t
	for i := range dst {
		dst[i] = p.word64(base + uint64(i))
	}
	p.t += uint64(len(dst))
}
