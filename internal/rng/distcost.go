package rng

import (
	"sync"
	"time"
)

// distCostTable holds the measured per-sample cost of each distribution
// relative to Uniform11 (≡ 1 exactly). Populated once per process by
// measureDistCosts.
var (
	distCostOnce  sync.Once
	distCostTable [Junk + 1]float64
)

// DistCost returns the relative per-sample generation cost of dist, with
// Uniform11 normalised to exactly 1. The §III-B cost model multiplies its
// h parameter by this factor so that cheap sketches (fused ±1 Rademacher,
// the scaling trick) are charged less recomputation than expensive ones
// (ziggurat Gaussian). Costs are measured once per process with the same
// batched-xoshiro fast paths the kernels use — Rademacher through RawWords
// (1 bit/sample), the rest through Fill — and clamped to [1/64, 64] so a
// noisy measurement can never flip the model by orders of magnitude.
// Unknown distributions cost 1.
func DistCost(dist Distribution) float64 {
	distCostOnce.Do(measureDistCosts)
	if dist < 0 || int(dist) >= len(distCostTable) {
		return 1
	}
	return distCostTable[dist]
}

func measureDistCosts() {
	const n = 4096 // samples per timing pass, big enough to amortise call overhead
	const reps = 8
	dst := make([]float64, n)

	timeFill := func(d Distribution) float64 {
		s := NewSampler(NewBatchXoshiro(0x9e3779b97f4a7c15), d)
		s.Fill(dst) // warm buffers and code paths
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			s.SetState(uint64(r), 0)
			t0 := time.Now()
			s.Fill(dst)
			if e := time.Since(t0); e < best {
				best = e
			}
		}
		return float64(best)
	}
	// Rademacher's kernel path never materialises ±1 values: it consumes
	// sign bits straight from RawWords, so measure that.
	timeRademacher := func() float64 {
		s := NewSampler(NewBatchXoshiro(0x9e3779b97f4a7c15), Rademacher)
		s.RawWords(n)
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			s.SetState(uint64(r), 0)
			t0 := time.Now()
			s.RawWords(n)
			if e := time.Since(t0); e < best {
				best = e
			}
		}
		return float64(best)
	}

	base := timeFill(Uniform11)
	if base <= 0 {
		base = 1 // timer too coarse: degrade to all-equal costs
	}
	clamp := func(c float64) float64 {
		if c < 1.0/64 {
			return 1.0 / 64
		}
		if c > 64 {
			return 64
		}
		return c
	}
	distCostTable[Uniform11] = 1
	distCostTable[Rademacher] = clamp(timeRademacher() / base)
	distCostTable[Gaussian] = clamp(timeFill(Gaussian) / base)
	distCostTable[ScaledInt] = clamp(timeFill(ScaledInt) / base)
	distCostTable[Junk] = clamp(timeFill(Junk) / base)
}
