package rng

import (
	"runtime"
	"sync"
	"time"
)

// distCostTable holds the measured per-sample cost of each distribution
// relative to Uniform11 (≡ 1 exactly). Populated once per process by
// measureDistCostTable.
var (
	distCostOnce  sync.Once
	distCostTable [CountSketch + 1]float64
)

// DistCost returns the relative per-sample generation cost of dist, with
// Uniform11 normalised to exactly 1. The §III-B cost model multiplies its
// h parameter by this factor so that cheap sketches (fused ±1 Rademacher,
// the scaling trick) are charged less recomputation than expensive ones
// (ziggurat Gaussian). For the sparse family the unit is one *nonzero*:
// kernels draw s words per column via FillSJLTColumn, so the model charges
// s·DistCost(SJLT) per column against d·DistCost(dense) for a dense one.
// Costs are measured once per process with the same batched-xoshiro fast
// paths the kernels use — Rademacher through RawWords (1 bit/sample), the
// sparse family through FillSJLTColumn, the rest through Fill — and
// clamped to [1/64, 64] so a noisy measurement can never flip the model by
// orders of magnitude. Unknown distributions cost 1.
//
// Measurement discipline and variance bounds: the whole measurement runs
// on one OS-pinned goroutine (runtime.LockOSThread) with a fixed iteration
// budget (distCostSamples samples × distCostReps best-of repetitions,
// ~1 ms total), so neither GOMAXPROCS nor concurrent load changes how
// much work is timed. Best-of-reps discards scheduler preemptions and
// one-off cache misses; on an otherwise-busy machine the surviving jitter
// is the timer granularity over a ≳2 µs window, i.e. relative costs
// reproduce within ±25% run to run (asserted by TestDistCostStability).
// The clamp bounds the damage of a pathological measurement outright.
func DistCost(dist Distribution) float64 {
	distCostOnce.Do(func() { distCostTable = measureDistCostTable() })
	if dist < 0 || int(dist) >= len(distCostTable) {
		return 1
	}
	return distCostTable[dist]
}

const (
	distCostSamples = 4096 // samples per timing pass, big enough to amortise call overhead
	distCostReps    = 8    // best-of repetitions per distribution
)

// measureDistCostTable runs the timing passes and returns the full relative
// cost table. Exposed (package-internally) so the stability regression test
// can invoke the measurement twice in one process; DistCost memoises one
// call for everyone else.
func measureDistCostTable() [CountSketch + 1]float64 {
	// Pin the measuring goroutine to its OS thread for the duration so the
	// scheduler cannot migrate it mid-pass; with best-of timing this makes
	// the measurement independent of GOMAXPROCS and background load.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	const n = distCostSamples
	const reps = distCostReps
	dst := make([]float64, n)

	timeFill := func(d Distribution) float64 {
		s := NewSampler(NewBatchXoshiro(0x9e3779b97f4a7c15), d)
		s.Fill(dst) // warm buffers and code paths
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			s.SetState(uint64(r), 0)
			t0 := time.Now()
			s.Fill(dst)
			if e := time.Since(t0); e < best {
				best = e
			}
		}
		return float64(best)
	}
	// Rademacher's kernel path never materialises ±1 values: it consumes
	// sign bits straight from RawWords, so measure that.
	timeRademacher := func() float64 {
		s := NewSampler(NewBatchXoshiro(0x9e3779b97f4a7c15), Rademacher)
		s.RawWords(n)
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			s.SetState(uint64(r), 0)
			t0 := time.Now()
			s.RawWords(n)
			if e := time.Since(t0); e < best {
				best = e
			}
		}
		return float64(best)
	}
	// The sparse family's kernel path draws s-word columns through
	// FillSJLTColumn (SetState + position/sign decode per nonzero); time n
	// nonzeros' worth of whole columns so the per-nonzero unit includes the
	// per-column repositioning overhead the kernels actually pay.
	timeSJLT := func(s int) float64 {
		const d = 1024
		sp := NewSampler(NewBatchXoshiro(0x9e3779b97f4a7c15), SJLT)
		pos := make([]int, s)
		val := make([]float64, s)
		scale := SJLTScale(s)
		cols := n / s
		sp.FillSJLTColumn(0, d, s, scale, pos, val) // warm
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			for j := 0; j < cols; j++ {
				sp.FillSJLTColumn(uint64(j), d, s, scale, pos, val)
			}
			if e := time.Since(t0); e < best {
				best = e
			}
		}
		// Normalise to the same n-sample window as the dense passes.
		return float64(best) * float64(n) / float64(cols*s)
	}

	base := timeFill(Uniform11)
	if base <= 0 {
		base = 1 // timer too coarse: degrade to all-equal costs
	}
	clamp := func(c float64) float64 {
		if c < 1.0/64 {
			return 1.0 / 64
		}
		if c > 64 {
			return 64
		}
		return c
	}
	var t [CountSketch + 1]float64
	t[Uniform11] = 1
	t[Rademacher] = clamp(timeRademacher() / base)
	t[Gaussian] = clamp(timeFill(Gaussian) / base)
	t[ScaledInt] = clamp(timeFill(ScaledInt) / base)
	t[Junk] = clamp(timeFill(Junk) / base)
	t[SJLT] = clamp(timeSJLT(32) / base)
	t[CountSketch] = clamp(timeSJLT(1) / base)
	return t
}
