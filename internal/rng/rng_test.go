package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// refXoshiroPP is an independent transcription of the xoshiro256++ update
// from Blackman & Vigna's reference C code, used to cross-check the
// production implementation for transcription errors.
func refXoshiroPP(s *[4]uint64) uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func TestXoshiro256AgainstReferenceTranscription(t *testing.T) {
	x := &Xoshiro256{s0: 1, s1: 2, s2: 3, s3: 4}
	ref := [4]uint64{1, 2, 3, 4}
	// First output with this state is rotl(1+4, 23) + 1 = 0x2800001;
	// pin it explicitly, then compare a long run.
	if got := refXoshiroPP(&ref); got != 0x2800001 {
		t.Fatalf("reference transcription self-check failed: %#x", got)
	}
	if got := x.Uint64(); got != 0x2800001 {
		t.Fatalf("first output %#x, want 0x2800001", got)
	}
	for i := 0; i < 1000; i++ {
		want := refXoshiroPP(&ref)
		if got := x.Uint64(); got != want {
			t.Fatalf("output %d = %#x, want %#x", i+1, got, want)
		}
	}
}

func TestXoshiroSeedNonZero(t *testing.T) {
	x := NewXoshiro256(0)
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		t.Fatal("seeded state is all zeros")
	}
	// Different seeds give different streams.
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 10; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/10 outputs", same)
	}
}

func TestXoshiroFloat64Range(t *testing.T) {
	x := NewXoshiro256(42)
	for i := 0; i < 10000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", v)
		}
	}
}

func TestXoshiroJumpChangesStream(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	b.Jump()
	if a.Uint64() == b.Uint64() {
		t.Fatal("jump did not move the stream")
	}
}

func TestBatchXoshiroDeterministicSetState(t *testing.T) {
	b := NewBatchXoshiro(123)
	out1 := make([]uint64, 37)
	out2 := make([]uint64, 37)
	b.SetState(5, 9)
	b.Uint64s(out1)
	// Interleave other work, then return to the same checkpoint.
	b.SetState(1, 1)
	b.Uint64s(make([]uint64, 100))
	b.SetState(5, 9)
	b.Uint64s(out2)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("checkpoint replay differs at %d", i)
		}
	}
}

func TestBatchXoshiroDistinctCheckpoints(t *testing.T) {
	b := NewBatchXoshiro(1)
	x := make([]uint64, 8)
	y := make([]uint64, 8)
	b.SetState(0, 0)
	b.Uint64s(x)
	b.SetState(0, 1)
	b.Uint64s(y)
	same := 0
	for i := range x {
		if x[i] == y[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("checkpoints (0,0) and (0,1) share %d/8 outputs", same)
	}
}

func TestBatchXoshiroSeedSeparation(t *testing.T) {
	a := NewBatchXoshiro(1)
	b := NewBatchXoshiro(2)
	a.SetState(3, 4)
	b.SetState(3, 4)
	x, y := make([]uint64, 8), make([]uint64, 8)
	a.Uint64s(x)
	b.Uint64s(y)
	same := 0
	for i := range x {
		if x[i] == y[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds share %d/8 outputs at same checkpoint", same)
	}
}

func TestBatchXoshiroTailHandling(t *testing.T) {
	// Lengths not divisible by the lane count must still be filled and be
	// a prefix-consistent stream.
	b := NewBatchXoshiro(9)
	b.SetState(1, 1)
	long := make([]uint64, 11)
	b.Uint64s(long)
	b.SetState(1, 1)
	short := make([]uint64, 7)
	b.Uint64s(short)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix mismatch at %d: fills of different length disagree", i)
		}
	}
}

func TestScalarXoshiroSourceCheckpoint(t *testing.T) {
	s := NewScalarXoshiroSource(5)
	a, b := make([]uint64, 16), make([]uint64, 16)
	s.SetState(2, 3)
	s.Uint64s(a)
	s.SetState(2, 3)
	s.Uint64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scalar source checkpoint not reproducible")
		}
	}
}

func TestPhiloxReproducible(t *testing.T) {
	p := NewPhilox4x32(77)
	a, b := make([]uint64, 9), make([]uint64, 9)
	p.SetState(10, 20)
	p.Uint64s(a)
	p.SetState(10, 20)
	p.Uint64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("philox not reproducible")
		}
	}
}

// The defining CBRNG property (§IV-B/IV-C): output at absolute coordinate
// (r+t, j) is independent of how the range is split into blocks.
func TestPhiloxBlockingIndependence(t *testing.T) {
	p := NewPhilox4x32(42)
	whole := make([]uint64, 64)
	p.SetState(0, 5)
	p.Uint64s(whole)

	// Re-generate in blocks of 16 starting at r = 0, 16, 32, 48.
	for blk := 0; blk < 4; blk++ {
		part := make([]uint64, 16)
		p.SetState(uint64(blk*16), 5)
		p.Uint64s(part)
		for i := range part {
			if part[i] != whole[blk*16+i] {
				t.Fatalf("blocked output differs at block %d offset %d", blk, i)
			}
		}
	}
	// And in two consecutive fills without re-anchoring.
	p.SetState(0, 5)
	h1 := make([]uint64, 30)
	h2 := make([]uint64, 34)
	p.Uint64s(h1)
	p.Uint64s(h2)
	for i := range h1 {
		if h1[i] != whole[i] {
			t.Fatalf("split fill differs at %d", i)
		}
	}
	for i := range h2 {
		if h2[i] != whole[30+i] {
			t.Fatalf("split fill tail differs at %d", i)
		}
	}
}

func TestPhiloxDistinctColumns(t *testing.T) {
	p := NewPhilox4x32(3)
	a, b := make([]uint64, 8), make([]uint64, 8)
	p.SetState(0, 1)
	p.Uint64s(a)
	p.SetState(0, 2)
	p.Uint64s(b)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("philox columns 1 and 2 share %d/8 outputs", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the public-domain splitmix64.c.
	s := uint64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := SplitMix64(&s); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func uniformMoments(t *testing.T, fill func([]float64), n int) (mean, variance float64) {
	t.Helper()
	buf := make([]float64, n)
	fill(buf)
	var s, s2 float64
	for _, v := range buf {
		s += v
		s2 += v * v
	}
	mean = s / float64(n)
	variance = s2/float64(n) - mean*mean
	return
}

func TestUniform11Moments(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(1), Uniform11)
	s.SetState(0, 0)
	mean, varc := uniformMoments(t, s.Fill, 200000)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("uniform mean %g", mean)
	}
	if math.Abs(varc-1.0/3.0) > 0.01 {
		t.Fatalf("uniform variance %g, want 1/3", varc)
	}
}

func TestUniform11Range(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(2), Uniform11)
	s.SetState(1, 1)
	buf := make([]float64, 50000)
	s.Fill(buf)
	for _, v := range buf {
		if v <= -1 || v >= 1 {
			t.Fatalf("uniform sample %g outside (-1,1)", v)
		}
	}
}

func TestRademacherValues(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(3), Rademacher)
	s.SetState(0, 0)
	buf := make([]float64, 100000)
	s.Fill(buf)
	plus, minus := 0, 0
	for _, v := range buf {
		switch v {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("rademacher sample %g", v)
		}
	}
	bias := math.Abs(float64(plus-minus)) / float64(plus+minus)
	if bias > 0.02 {
		t.Fatalf("rademacher bias %g", bias)
	}
}

func TestRademacherOddLengths(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(4), Rademacher)
	for _, n := range []int{1, 3, 63, 64, 65, 127, 130} {
		s.SetState(0, uint64(n))
		buf := make([]float64, n)
		s.Fill(buf)
		for i, v := range buf {
			if v != 1 && v != -1 {
				t.Fatalf("n=%d: sample %d = %g", n, i, v)
			}
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(5), Gaussian)
	s.SetState(0, 0)
	mean, varc := uniformMoments(t, s.Fill, 200000)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean %g", mean)
	}
	if math.Abs(varc-1) > 0.03 {
		t.Fatalf("gaussian variance %g, want 1", varc)
	}
}

func TestScaledIntIsInt32Valued(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(6), ScaledInt)
	s.SetState(0, 0)
	buf := make([]float64, 10000)
	s.Fill(buf)
	for _, v := range buf {
		if v != math.Trunc(v) {
			t.Fatalf("scaled-int sample %g is not integer", v)
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			t.Fatalf("scaled-int sample %g out of int32 range", v)
		}
	}
	// After applying Scale31 the values must land in [-1, 1).
	for _, v := range buf {
		w := v * Scale31
		if w < -1 || w >= 1 {
			t.Fatalf("scaled sample %g outside [-1,1)", w)
		}
	}
}

func TestJunkDeterministicAndBounded(t *testing.T) {
	s := NewSampler(NewBatchXoshiro(7), Junk)
	s.SetState(3, 4)
	a := make([]float64, 1000)
	s.Fill(a)
	s.SetState(3, 4)
	b := make([]float64, 1000)
	s.Fill(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("junk fill not deterministic")
		}
		if a[i] < -1.1 || a[i] > 1.1 {
			t.Fatalf("junk value %g out of range", a[i])
		}
	}
}

func TestSamplerFillReproducibleProperty(t *testing.T) {
	f := func(seed uint64, r, j uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		for _, dist := range []Distribution{Uniform11, Rademacher, Gaussian, ScaledInt} {
			s1 := NewSampler(NewBatchXoshiro(seed), dist)
			s2 := NewSampler(NewBatchXoshiro(seed), dist)
			a, b := make([]float64, n), make([]float64, n)
			s1.SetState(r, j)
			s1.Fill(a)
			s2.SetState(1, 2)
			s2.Fill(make([]float64, 13)) // desynchronise
			s2.SetState(r, j)
			s2.Fill(b)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParseDistribution(t *testing.T) {
	cases := map[string]Distribution{
		"uniform": Uniform11, "pm1": Rademacher, "gaussian": Gaussian,
		"scaled-int": ScaledInt, "junk": Junk,
	}
	for s, want := range cases {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Error("expected error for unknown distribution")
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, d := range []Distribution{Uniform11, Rademacher, Gaussian, ScaledInt, Junk} {
		if d.String() == "" {
			t.Errorf("empty String for %d", int(d))
		}
	}
	for _, k := range []SourceKind{SourceBatchXoshiro, SourceScalarXoshiro, SourcePhilox} {
		if k.String() == "" {
			t.Errorf("empty String for source %d", int(k))
		}
	}
}

func TestNewSourceKinds(t *testing.T) {
	for _, k := range []SourceKind{SourceBatchXoshiro, SourceScalarXoshiro, SourcePhilox} {
		src := NewSource(k, 1)
		src.SetState(0, 0)
		buf := make([]uint64, 4)
		src.Uint64s(buf)
		if buf[0] == 0 && buf[1] == 0 && buf[2] == 0 && buf[3] == 0 {
			t.Errorf("source %v produced all zeros", k)
		}
	}
}

// Chi-square uniformity check on the batched generator's low byte.
func TestBatchXoshiroUniformityChiSquare(t *testing.T) {
	b := NewBatchXoshiro(99)
	b.SetState(0, 0)
	buf := make([]uint64, 1<<16)
	b.Uint64s(buf)
	var counts [256]int
	for _, u := range buf {
		counts[u&0xff]++
	}
	expected := float64(len(buf)) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 dof: mean 255, sd ~22.6; 5 sigma ≈ 368.
	if chi2 > 368 {
		t.Fatalf("chi2 = %g, suggests non-uniform output", chi2)
	}
}

// The fused fill paths must be indistinguishable from the generic
// raw-word + transform path on an identically positioned source.
func TestFusedFillsMatchGenericTransforms(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 64, 100, 1001} {
		// Uniform11.
		fused := NewBatchXoshiro(31)
		fused.SetState(2, 5)
		got := make([]float64, n)
		fused.FillUniform11(got)

		twin := NewBatchXoshiro(31)
		twin.SetState(2, 5)
		raw := make([]uint64, n)
		twin.Uint64s(raw)
		for i, u := range raw {
			want := float64(int64(u)>>10) * 0x1p-53
			if got[i] != want {
				t.Fatalf("n=%d: fused uniform[%d] = %g, generic %g", n, i, got[i], want)
			}
		}

		// ScaledInt (two samples per word).
		fused.SetState(2, 5)
		gotS := make([]float64, n)
		fused.FillScaledInt(gotS)
		twin.SetState(2, 5)
		rawS := make([]uint64, (n+1)/2)
		twin.Uint64s(rawS)
		for i := 0; i < n; i++ {
			u := rawS[i/2]
			if i%2 == 1 {
				u >>= 32
			}
			want := float64(int32(uint32(u)))
			if gotS[i] != want {
				t.Fatalf("n=%d: fused scaled[%d] = %g, generic %g", n, i, gotS[i], want)
			}
		}
	}
}

// Philox + Rademacher stays blocking-independent at 64-row granularity:
// splitting a fill at a multiple of 64 must reproduce the whole fill.
func TestPhiloxRademacher64Granularity(t *testing.T) {
	s := NewSampler(NewPhilox4x32(9), Rademacher)
	whole := make([]float64, 192)
	s.SetState(0, 3)
	s.Fill(whole)
	for _, split := range []int{64, 128} {
		s2 := NewSampler(NewPhilox4x32(9), Rademacher)
		head := make([]float64, split)
		tail := make([]float64, 192-split)
		s2.SetState(0, 3)
		s2.Fill(head)
		s2.SetState(uint64(split/64), 3) // word-granular checkpoint
		_ = tail
		// NOTE: the word counter advances by one per 64 samples, so the
		// checkpoint for row `split` is (split/64, j) in word units.
		s2.Fill(tail)
		for i := range head {
			if head[i] != whole[i] {
				t.Fatalf("split %d: head diverges at %d", split, i)
			}
		}
		for i := range tail {
			if tail[i] != whole[split+i] {
				t.Fatalf("split %d: tail diverges at %d", split, i)
			}
		}
	}
}
