package rng

import "math"

// Ziggurat sampler for N(0,1) following Marsaglia & Tsang (JSS 2000),
// 128 layers. Faster than the polar method (~1.03 accepts per sample on
// the fast path, no log/sqrt), though still several times the cost of a
// uniform sample — the Figure 4 ordering (gaussian slowest of the
// on-the-fly methods) is preserved.

const (
	zigR    = 3.442619855899      // start of the tail
	zigInvR = 1.0 / zigR          //
	zigV    = 9.91256303526217e-3 // area of each layer
	zigM    = 2147483648.0        // 2^31: hz is a signed 32-bit lattice
)

var (
	zigKN [128]float64 // |hz| acceptance thresholds
	zigWN [128]float64 // hz → x scale per layer
	zigFN [128]float64 // layer ordinates f(x_i)
)

func init() {
	dn := zigR
	tn := dn
	q := zigV / math.Exp(-0.5*dn*dn)
	zigKN[0] = (dn / q) * zigM
	zigKN[1] = 0
	zigWN[0] = q / zigM
	zigWN[127] = dn / zigM
	zigFN[0] = 1.0
	zigFN[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigV/dn+math.Exp(-0.5*dn*dn)))
		zigKN[i+1] = (dn / tn) * zigM
		tn = dn
		zigFN[i] = math.Exp(-0.5 * dn * dn)
		zigWN[i] = dn / zigM
	}
}

// zigWords adapts a Source into the two word streams the ziggurat needs:
// signed 32-bit lattice points and (0,1) uniforms, both carved from raw
// 64-bit outputs with buffering so the Source is consumed in bulk.
type zigWords struct {
	src Source
	buf [64]uint64
	pos int
}

func (z *zigWords) reset() { z.pos = len(z.buf) }

func (z *zigWords) next64() uint64 {
	if z.pos >= len(z.buf) {
		z.src.Uint64s(z.buf[:])
		z.pos = 0
	}
	v := z.buf[z.pos]
	z.pos++
	return v
}

// int32 returns a signed 32-bit lattice point.
func (z *zigWords) int32() int32 { return int32(uint32(z.next64())) }

// uni returns a uniform in (0, 1).
func (z *zigWords) uni() float64 {
	return (float64(z.next64()>>11) + 0.5) * 0x1p-53
}

// normal draws one N(0,1) sample.
func (z *zigWords) normal() float64 {
	for {
		hz := z.int32()
		iz := uint32(hz) & 127
		fhz := float64(hz)
		if math.Abs(fhz) < zigKN[iz] {
			return fhz * zigWN[iz]
		}
		// Slow path.
		if iz == 0 {
			// Tail beyond ±r: Marsaglia's exponential wedge.
			for {
				x := -math.Log(z.uni()) * zigInvR
				y := -math.Log(z.uni())
				if y+y >= x*x {
					if hz > 0 {
						return zigR + x
					}
					return -zigR - x
				}
			}
		}
		x := float64(hz) * zigWN[iz]
		if zigFN[iz]+z.uni()*(zigFN[iz-1]-zigFN[iz]) < math.Exp(-0.5*x*x) {
			return x
		}
		// Rejected: re-draw from the top.
	}
}
