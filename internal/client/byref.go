package client

import (
	"context"
	"errors"
	"net/http"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// This file is the client half of the content-addressed protocol: upload a
// matrix once, then sketch it by its 32-byte fingerprint forever after.
// SketchCached is the method most callers want — it sketches by reference
// and transparently cures a StatusNotFound (never uploaded, or evicted by
// the server's store budget) with one upload-and-retry, so the caller sees
// the repeat-traffic win without managing residency.

// PutMatrix uploads a into the server's content-addressed store and
// returns its identity (Created reports whether the upload inserted or
// found the matrix already resident). Idempotent: re-uploading costs the
// body bytes but changes nothing.
func (c *Client) PutMatrix(ctx context.Context, a *sparse.CSC) (store.Info, error) {
	if a == nil {
		return store.Info{}, core.ErrNilMatrix
	}
	body, err := wire.EncodeMatrixPutFrame(a)
	if err != nil {
		return store.Info{}, err
	}
	payload, err := c.do(ctx, http.MethodPut, "/v1/matrix", body)
	if err != nil {
		return store.Info{}, err
	}
	return decodeInfo(payload)
}

// SketchRef computes Â = S·A on the server for the already-uploaded matrix
// fp: the request is a fixed 121-byte frame regardless of nnz(A). A server
// that no longer holds fp fails with an error unwrapping to
// store.ErrNotFound — use SketchCached for the self-curing path.
func (c *Client) SketchRef(ctx context.Context, fp sparse.Fingerprint, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	body, err := wire.EncodeSketchRefFrame(&wire.SketchRefRequest{D: d, Opts: opts, Fp: fp})
	if err != nil {
		return nil, core.Stats{}, err
	}
	payload, err := c.do(ctx, http.MethodPost, "/v1/sketch", body)
	if err != nil {
		return nil, core.Stats{}, err
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return nil, core.Stats{}, err
	}
	if err := resp.Err(); err != nil {
		return nil, core.Stats{}, err
	}
	return resp.Ahat, resp.Stats, nil
}

// SketchCached sketches a by reference, uploading it first only when the
// server does not hold it: try the 121-byte by-ref request, and on
// StatusNotFound upload the matrix and retry once. Steady state ships
// O(1) bytes per request; the O(nnz) upload happens once per server
// residency. The answer is bit-identical to Sketch(a, d, opts) either way.
func (c *Client) SketchCached(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	if a == nil {
		return nil, core.Stats{}, core.ErrNilMatrix
	}
	fp := a.Fingerprint()
	ahat, st, err := c.SketchRef(ctx, fp, d, opts)
	if !errors.Is(err, store.ErrNotFound) {
		return ahat, st, err
	}
	if _, err := c.PutMatrix(ctx, a); err != nil {
		return nil, core.Stats{}, err
	}
	// One retry only: a NotFound right after a successful upload means the
	// server is evicting faster than we can feed it — give the caller the
	// truth instead of looping.
	return c.SketchRef(ctx, fp, d, opts)
}

// PatchMatrix applies the sparse delta to the stored matrix fp and returns
// the merged matrix's identity. The original matrix stays addressable under
// fp; sketches of the new fingerprint are served incrementally (Â + S·ΔA)
// by the server without resketching from scratch.
func (c *Client) PatchMatrix(ctx context.Context, fp sparse.Fingerprint, delta *sparse.CSC) (store.Info, error) {
	if delta == nil {
		return store.Info{}, core.ErrNilMatrix
	}
	body, err := wire.EncodeMatrixDeltaFrame(&wire.MatrixDelta{Fp: fp, Delta: delta})
	if err != nil {
		return store.Info{}, err
	}
	payload, err := c.do(ctx, http.MethodPatch, "/v1/matrix/"+wire.FormatFingerprint(fp), body)
	if err != nil {
		return store.Info{}, err
	}
	return decodeInfo(payload)
}

func decodeInfo(payload []byte) (store.Info, error) {
	info, err := wire.DecodeMatrixInfo(payload)
	if err != nil {
		return store.Info{}, err
	}
	if err := info.Err(); err != nil {
		return store.Info{}, err
	}
	return store.Info{Fp: info.Fp, Bytes: info.Bytes, Created: info.Created}, nil
}
