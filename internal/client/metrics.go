package client

import (
	"errors"

	"sketchsp/internal/obs"
	"sketchsp/internal/wire"
)

// clientMetrics is the client's optional metric set. Unlike the server
// layers, a client does not own a serving stack, so nothing is registered
// unless Config.Metrics hands it a registry — the caller decides whether
// client-side series belong next to the server families or on a registry of
// their own. A nil *clientMetrics is fully inert: every record method is
// nil-guarded, so the hot path carries one predictable branch, not a
// registry dependency.
type clientMetrics struct {
	requests        *obs.Counter
	retries         *obs.Counter
	transportErrors *obs.Counter
	overloaded      *obs.Counter
	latency         *obs.Histogram // whole call: all attempts + backoff sleeps
}

func newClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{
		requests: r.Counter("sketchsp_client_requests_total",
			"Sketch calls issued (retries do not count again)."),
		retries: r.Counter("sketchsp_client_retries_total",
			"Attempts reissued after a retryable failure."),
		transportErrors: r.Counter("sketchsp_client_transport_errors_total",
			"Attempts that failed below the wire protocol (dial, reset, truncated body)."),
		overloaded: r.Counter("sketchsp_client_overloaded_total",
			"Attempts shed by the server with StatusOverloaded."),
		latency: r.Histogram("sketchsp_client_request_seconds",
			"Whole-call latency including retries and backoff sleeps."),
	}
}

func (m *clientMetrics) request() {
	if m != nil {
		m.requests.Inc()
	}
}

func (m *clientMetrics) retry() {
	if m != nil {
		m.retries.Inc()
	}
}

// attemptFailed classifies one failed attempt into the per-cause counters.
func (m *clientMetrics) attemptFailed(err error) {
	if m == nil {
		return
	}
	var te *transportError
	if errors.As(err, &te) {
		m.transportErrors.Inc()
		return
	}
	var se *wire.StatusError
	if errors.As(err, &se) && se.Code == wire.StatusOverloaded {
		m.overloaded.Inc()
	}
}

// span starts the whole-call latency span; inert when metrics are off.
func (m *clientMetrics) span() obs.Span {
	if m == nil {
		return obs.StartSpan(nil)
	}
	return obs.StartSpan(m.latency)
}
