package client

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/jobs"
	"sketchsp/internal/wire"
)

// This file is the client half of the solve protocol (DESIGN.md §13).
// Solve is the method most callers want: it posts the request and, when
// the server elects to queue it as a job (the request was large, or
// explicitly Async), transparently polls the job to completion — the
// caller sees one blocking call with one error taxonomy either way.
// SolveAsync/JobStatus/JobWait/CancelJob expose the job lifecycle for
// callers that want to multiplex or cancel long solves themselves.

// DefaultJobPoll is the JobWait polling interval when the caller passes 0.
const DefaultJobPoll = 50 * time.Millisecond

// Solve runs one least-squares solve (or randomized SVD) on the server and
// blocks until the answer is back, polling through the job surface when
// the server queues the request instead of solving inline. The response's
// status has already been checked: a non-nil *wire.SolveResponse is
// StatusOK.
func (c *Client) Solve(ctx context.Context, req *wire.SolveRequest) (*wire.SolveResponse, error) {
	typ, payload, err := c.postSolve(ctx, req)
	if err != nil {
		return nil, err
	}
	if typ == wire.MsgSolveResponse {
		return decodeSolve(payload)
	}
	js, err := wire.DecodeJobStatus(payload)
	if err != nil {
		return nil, err
	}
	if err := js.Err(); err != nil {
		return nil, err
	}
	return c.JobWait(ctx, js.ID, 0)
}

// SolveAsync submits the solve as a job regardless of size and returns the
// job ID for JobStatus/JobWait/CancelJob. The request's Async flag is
// forced on.
func (c *Client) SolveAsync(ctx context.Context, req *wire.SolveRequest) (string, error) {
	r := *req
	r.Async = true
	typ, payload, err := c.postSolve(ctx, &r)
	if err != nil {
		return "", err
	}
	if typ != wire.MsgJobStatus {
		return "", fmt.Errorf("%w: expected job status for async solve, got frame type %v", wire.ErrMalformed, typ)
	}
	js, err := wire.DecodeJobStatus(payload)
	if err != nil {
		return "", err
	}
	if err := js.Err(); err != nil {
		return "", err
	}
	return js.ID, nil
}

// JobStatus fetches the current state of a job: live progress while it
// runs, the embedded solve response once done. Unknown or expired IDs fail
// with an error unwrapping to jobs.ErrNotFound.
func (c *Client) JobStatus(ctx context.Context, id string) (*wire.JobStatus, error) {
	payload, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return decodeJob(payload)
}

// CancelJob asks the server to cancel a job and returns its post-cancel
// status. Cancelling a terminal job is a no-op reporting the terminal
// state; the caller distinguishes "cancelled" from "finished first" by the
// returned State.
func (c *Client) CancelJob(ctx context.Context, id string) (*wire.JobStatus, error) {
	payload, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return decodeJob(payload)
}

// JobWait polls the job every poll (0 selects DefaultJobPoll) until it
// reaches a terminal state, then returns the solve response for a done job
// or the failure as an error. The caller's context bounds the wait — a
// cancelled wait does NOT cancel the job; use CancelJob for that.
func (c *Client) JobWait(ctx context.Context, id string, poll time.Duration) (*wire.SolveResponse, error) {
	if poll <= 0 {
		poll = DefaultJobPoll
	}
	for {
		js, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if js.State.Terminal() {
			return jobResult(js)
		}
		if err := c.sleep(ctx, poll); err != nil {
			return nil, err
		}
	}
}

// postSolve ships the request frame to /v1/solve; the caller dispatches on
// the returned frame type (inline answer vs queued job).
func (c *Client) postSolve(ctx context.Context, req *wire.SolveRequest) (wire.MsgType, []byte, error) {
	if req == nil || (!req.ByRef && req.A == nil) {
		return 0, nil, core.ErrNilMatrix
	}
	body, err := wire.EncodeSolveRequestFrame(req)
	if err != nil {
		return 0, nil, err
	}
	return c.doTyped(ctx, http.MethodPost, "/v1/solve", body)
}

// jobResult converts a terminal job status into the Solve return form.
func jobResult(js *wire.JobStatus) (*wire.SolveResponse, error) {
	if js.Result != nil {
		if err := js.Result.Err(); err != nil {
			return nil, err
		}
		return js.Result, nil
	}
	// A terminal job with no embedded response: cancelled before it
	// produced anything (or a result evicted by the byte budget).
	if js.State == jobs.StateCancelled {
		return nil, fmt.Errorf("%w: job %s cancelled", context.Canceled, js.ID)
	}
	return nil, fmt.Errorf("%w: job %s terminal without result", wire.ErrMalformed, js.ID)
}

func decodeSolve(payload []byte) (*wire.SolveResponse, error) {
	resp, err := wire.DecodeSolveResponse(payload)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

func decodeJob(payload []byte) (*wire.JobStatus, error) {
	js, err := wire.DecodeJobStatus(payload)
	if err != nil {
		return nil, err
	}
	if err := js.Err(); err != nil {
		return nil, err
	}
	return js, nil
}
