package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// mustFrame frames a canned test payload (test sizes cannot hit the
// 32-bit frame limit, so the error is impossible).
func mustFrame(typ wire.MsgType, payload []byte) []byte {
	b, err := wire.AppendFrame(nil, typ, payload)
	if err != nil {
		panic(err)
	}
	return b
}

// testMatrix returns a small fixed CSC input for request bodies.
func testMatrix(t *testing.T) *sparse.CSC {
	t.Helper()
	a, err := sparse.NewCSC(4, 3,
		[]int{0, 2, 2, 4},
		[]int{0, 2, 1, 3},
		[]float64{1, -2, 3.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// okResponseFrame builds a well-formed StatusOK single-response frame
// carrying a recognisable 2x3 sketch.
func okResponseFrame(t *testing.T) []byte {
	t.Helper()
	ahat := dense.NewMatrix(2, 3)
	for j := 0; j < 3; j++ {
		col := ahat.Col(j)
		for i := range col {
			col[i] = float64(10*j + i)
		}
	}
	resp := wire.SketchResponse{
		Status: wire.StatusOK,
		Stats:  core.Stats{Samples: 6, Total: time.Millisecond},
		Ahat:   ahat,
	}
	return mustFrame(wire.MsgSketchResponse, wire.AppendResponse(nil, &resp))
}

// errResponseFrame builds a non-OK single-response frame.
func errResponseFrame(st wire.Status, detail string) []byte {
	resp := wire.SketchResponse{Status: st, Detail: detail}
	return mustFrame(wire.MsgSketchResponse, wire.AppendResponse(nil, &resp))
}

// stubServer runs an httptest server whose /v1/sketch handler pops the next
// canned reply per request and counts attempts.
func stubServer(t *testing.T, replies []func(w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sketch" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		i := int(n.Add(1)) - 1
		if i >= len(replies) {
			i = len(replies) - 1
		}
		replies[i](w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

func replyFrame(frame []byte, httpStatus int) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-sketchsp-wire")
		w.WriteHeader(httpStatus)
		w.Write(frame)
	}
}

func fastCfg() Config {
	return Config{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

func TestSketchRetriesOverloadedThenSucceeds(t *testing.T) {
	over := errResponseFrame(wire.StatusOverloaded, "queue full")
	srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
		replyFrame(over, http.StatusTooManyRequests),
		replyFrame(over, http.StatusTooManyRequests),
		replyFrame(okResponseFrame(t), http.StatusOK),
	})
	c := New(srv.URL, fastCfg())
	ahat, stats, err := c.Sketch(context.Background(), testMatrix(t), 2, core.Options{})
	if err != nil {
		t.Fatalf("Sketch: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two overloaded, one OK)", got)
	}
	if ahat.Rows != 2 || ahat.Cols != 3 || ahat.At(1, 2) != 21 {
		t.Errorf("decoded sketch wrong: %dx%d At(1,2)=%v", ahat.Rows, ahat.Cols, ahat.At(1, 2))
	}
	if stats.Samples != 6 || stats.Total != time.Millisecond {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSketchNeverRetriesInvalidInput(t *testing.T) {
	for _, tc := range []struct {
		name     string
		st       wire.Status
		httpCode int
		sentinel error
	}{
		{"invalid-matrix", wire.StatusInvalidMatrix, http.StatusBadRequest, core.ErrInvalidMatrix},
		{"bad-options", wire.StatusBadOptions, http.StatusBadRequest, core.ErrBadOptions},
		{"invalid-sketch-size", wire.StatusInvalidSketchSize, http.StatusBadRequest, core.ErrInvalidSketchSize},
		{"closed", wire.StatusClosed, http.StatusServiceUnavailable, service.ErrClosed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
				replyFrame(errResponseFrame(tc.st, "nope"), tc.httpCode),
			})
			c := New(srv.URL, fastCfg())
			_, _, err := c.Sketch(context.Background(), testMatrix(t), 2, core.Options{})
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want Is(%v)", err, tc.sentinel)
			}
			if got := attempts.Load(); got != 1 {
				t.Errorf("attempts = %d, want exactly 1 (no retry on %v)", got, tc.st)
			}
		})
	}
}

func TestSketchRetriesTransportError(t *testing.T) {
	// First reply is a non-frame body (a proxy-style error page); the
	// client must classify it as transport-level and retry.
	srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte("<html>bad gateway</html>"))
		},
		replyFrame(okResponseFrame(t), http.StatusOK),
	})
	c := New(srv.URL, fastCfg())
	if _, _, err := c.Sketch(context.Background(), testMatrix(t), 2, core.Options{}); err != nil {
		t.Fatalf("Sketch: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

func TestSketchOversizedResponseNotRetried(t *testing.T) {
	full := okResponseFrame(t) // 133 bytes, far over the tiny limit below

	// An actual body beyond HeaderSize+MaxResponseBytes must surface
	// ErrTooLarge from the single attempt — not a truncated-payload decode
	// failure dressed as a retryable transport error.
	t.Run("oversized-body", func(t *testing.T) {
		srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
			replyFrame(full, http.StatusOK),
		})
		cfg := fastCfg()
		cfg.MaxResponseBytes = 16
		c := New(srv.URL, cfg)
		_, _, err := c.Sketch(context.Background(), testMatrix(t), 2, core.Options{})
		if !errors.Is(err, wire.ErrTooLarge) {
			t.Fatalf("err = %v, want Is(wire.ErrTooLarge)", err)
		}
		if got := attempts.Load(); got != 1 {
			t.Errorf("attempts = %d, want 1: an oversized response is deterministic", got)
		}
	})

	// A short body whose header still declares an over-limit payload is
	// equally deterministic and equally non-retryable.
	t.Run("oversized-declared-length", func(t *testing.T) {
		srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
			replyFrame(full[:wire.HeaderSize+4], http.StatusOK),
		})
		cfg := fastCfg()
		cfg.MaxResponseBytes = 64
		c := New(srv.URL, cfg)
		_, _, err := c.Sketch(context.Background(), testMatrix(t), 2, core.Options{})
		if !errors.Is(err, wire.ErrTooLarge) {
			t.Fatalf("err = %v, want Is(wire.ErrTooLarge)", err)
		}
		if got := attempts.Load(); got != 1 {
			t.Errorf("attempts = %d, want 1", got)
		}
	})
}

func TestSketchExhaustsRetriesOnPersistentOverload(t *testing.T) {
	over := errResponseFrame(wire.StatusOverloaded, "still full")
	srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
		replyFrame(over, http.StatusTooManyRequests),
	})
	cfg := fastCfg()
	cfg.MaxRetries = 2
	c := New(srv.URL, cfg)
	_, _, err := c.Sketch(context.Background(), testMatrix(t), 2, core.Options{})
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("err = %v, want Is(service.ErrOverloaded)", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + MaxRetries)", got)
	}
}

func TestSketchContextCancelStopsRetrying(t *testing.T) {
	over := errResponseFrame(wire.StatusOverloaded, "")
	srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
		replyFrame(over, http.StatusTooManyRequests),
	})
	cfg := fastCfg()
	cfg.MaxRetries = 50
	cfg.BaseBackoff = 20 * time.Millisecond
	cfg.MaxBackoff = 200 * time.Millisecond
	c := New(srv.URL, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Sketch(ctx, testMatrix(t), 2, core.Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := attempts.Load(); got > 4 {
		t.Errorf("attempts = %d, want a handful before the deadline", got)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("retry loop outlived the context by far")
	}
}

func TestSketchBatchRetriesWholeShedBatch(t *testing.T) {
	shed := []wire.SketchResponse{
		{Status: wire.StatusOverloaded, Detail: "shed"},
		{Status: wire.StatusOverloaded, Detail: "shed"},
	}
	shedFrame := mustFrame(wire.MsgBatchResponse, wire.AppendBatchResponse(nil, shed))

	ahat := dense.NewMatrix(1, 1)
	ahat.Col(0)[0] = 42
	ok := []wire.SketchResponse{
		{Status: wire.StatusOK, Ahat: ahat},
		{Status: wire.StatusInvalidMatrix, Detail: "item 1 bad"},
	}
	okFrame := mustFrame(wire.MsgBatchResponse, wire.AppendBatchResponse(nil, ok))

	srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
		replyFrame(shedFrame, http.StatusTooManyRequests),
		replyFrame(okFrame, http.StatusOK),
	})
	c := New(srv.URL, fastCfg())
	reqs := []wire.SketchRequest{
		{D: 2, A: testMatrix(t)},
		{D: 3, A: testMatrix(t)},
	}
	rs, err := c.SketchBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SketchBatch: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (shed batch retried once)", got)
	}
	if rs[0].Status != wire.StatusOK || rs[0].Ahat.At(0, 0) != 42 {
		t.Errorf("item 0 = %+v", rs[0])
	}
	// Mixed outcomes are per-item results, not call errors, and a batch
	// containing any non-retryable item must not be retried.
	if !errors.Is(rs[1].Err(), core.ErrInvalidMatrix) {
		t.Errorf("item 1 err = %v", rs[1].Err())
	}
}

func TestSketchBatchMixedFailureNotRetried(t *testing.T) {
	mixed := []wire.SketchResponse{
		{Status: wire.StatusOverloaded, Detail: "shed"},
		{Status: wire.StatusInvalidMatrix, Detail: "bad"},
	}
	frame := mustFrame(wire.MsgBatchResponse, wire.AppendBatchResponse(nil, mixed))
	srv, attempts := stubServer(t, []func(http.ResponseWriter, *http.Request){
		replyFrame(frame, http.StatusOK),
	})
	c := New(srv.URL, fastCfg())
	reqs := []wire.SketchRequest{{D: 2, A: testMatrix(t)}, {D: 2, A: testMatrix(t)}}
	rs, err := c.SketchBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SketchBatch: %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1: a partially-shed batch is not retried wholesale", got)
	}
	if !errors.Is(rs[0].Err(), service.ErrOverloaded) {
		t.Errorf("item 0 err = %v", rs[0].Err())
	}
}

func TestSketchNilMatrixFailsLocally(t *testing.T) {
	c := New("http://127.0.0.1:0", fastCfg())
	if _, _, err := c.Sketch(context.Background(), nil, 2, core.Options{}); !errors.Is(err, core.ErrNilMatrix) {
		t.Fatalf("err = %v, want Is(core.ErrNilMatrix)", err)
	}
}

func TestBackoffCapsAndJitters(t *testing.T) {
	c := New("http://127.0.0.1:0", Config{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
	})
	for attempt := 0; attempt < 12; attempt++ {
		want := 10 * time.Millisecond << uint(attempt)
		if want > 80*time.Millisecond || want <= 0 {
			want = 80 * time.Millisecond
		}
		for trial := 0; trial < 20; trial++ {
			got := c.backoff(attempt)
			lo := time.Duration(float64(want) * 0.5)
			hi := time.Duration(float64(want) * 1.5)
			if got < lo || got > hi {
				t.Fatalf("backoff(%d) = %v outside jitter window [%v, %v]", attempt, got, lo, hi)
			}
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&transportError{err: errors.New("connection reset")}, true},
		{wire.StatusOverloaded.Err("x"), true},
		{wire.StatusInvalidMatrix.Err("x"), false},
		{wire.StatusClosed.Err("x"), false},
		{wire.StatusDeadlineExceeded.Err("x"), false},
		{wire.StatusMalformed.Err("x"), false},
		{context.Canceled, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
