// Package client is the Go client of the sketch serving layer. It speaks the
// internal/wire binary codec over HTTP to a sketchd server (internal/server),
// reuses connections through a shared http.Transport, bounds every attempt
// with its own timeout, and retries with capped exponential backoff plus
// jitter — but only when retrying can help: on transport errors and on
// wire.StatusOverloaded (the server is healthy but saturated). Invalid-input
// statuses, closed servers and context cancellation fail immediately; a
// malformed matrix does not become valid by resending it.
//
// Errors surface as *wire.StatusError unwrapping to the same sentinels the
// in-process API uses, so errors.Is(err, service.ErrOverloaded) and
// errors.Is(err, core.ErrInvalidMatrix) hold identically whether the sketch
// ran locally or across the network.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// Config tunes the client's retry and timeout behaviour. The zero value
// selects the defaults noted on each field.
type Config struct {
	// MaxRetries bounds how many times a retryable failure is reissued
	// after the first attempt (default 3, so up to 4 attempts total).
	// Negative disables retries.
	MaxRetries int
	// BaseBackoff is the sleep before the first retry (default 10ms);
	// attempt k sleeps BaseBackoff·2^k, capped at MaxBackoff, each with
	// ±50% jitter so synchronized clients do not re-stampede a server that
	// shed them all at once.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt (default 0 = none
	// beyond the caller's context). The caller's context still bounds the
	// whole call including backoff sleeps.
	AttemptTimeout time.Duration
	// MaxResponseBytes bounds a response frame's payload (default
	// wire.DefaultMaxPayload).
	MaxResponseBytes int
	// HTTPClient overrides the underlying client (default: a shared
	// keep-alive transport). Tests inject httptest clients here.
	HTTPClient *http.Client
	// Metrics, when non-nil, registers the sketchsp_client_* families
	// (requests, retries, per-cause attempt failures, whole-call latency) on
	// the given registry. nil — the default — records nothing.
	Metrics *obs.Registry
}

const (
	defaultMaxRetries  = 3
	defaultBaseBackoff = 10 * time.Millisecond
	defaultMaxBackoff  = time.Second
)

// Client issues sketch requests to one server. It is safe for concurrent
// use; connection reuse comes from the underlying http.Transport keep-alive
// pool.
type Client struct {
	base string
	cfg  Config
	http *http.Client
	met  *clientMetrics // nil when Config.Metrics is nil

	mu  sync.Mutex
	rnd *rand.Rand
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:7464"). A trailing slash is trimmed.
func New(baseURL string, cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = defaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = defaultMaxBackoff
	}
	if cfg.MaxResponseBytes <= 0 {
		cfg.MaxResponseBytes = wire.DefaultMaxPayload
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: http.DefaultTransport}
	}
	var met *clientMetrics
	if cfg.Metrics != nil {
		met = newClientMetrics(cfg.Metrics)
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		cfg:  cfg,
		http: hc,
		met:  met,
		rnd:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Sketch computes Â = S·A on the server, shipping only the CSC input and
// the seed/distribution that describe S. It retries per Config and returns
// the decoded sketch plus the server-side execute stats.
func (c *Client) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	if a == nil {
		return nil, core.Stats{}, core.ErrNilMatrix
	}
	body, err := wire.EncodeRequestFrame(d, opts, a)
	if err != nil {
		return nil, core.Stats{}, err
	}
	payload, err := c.do(ctx, http.MethodPost, "/v1/sketch", body)
	if err != nil {
		return nil, core.Stats{}, err
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return nil, core.Stats{}, err
	}
	if err := resp.Err(); err != nil {
		return nil, core.Stats{}, err
	}
	return resp.Ahat, resp.Stats, nil
}

// SketchBatch issues reqs as one batch request and returns the index-aligned
// responses. The batch is retried as a whole only while every failure in it
// is retryable (the server sheds whole batches at admission); per-item
// outcomes are reported in the returned slice, not as an error.
func (c *Client) SketchBatch(ctx context.Context, reqs []wire.SketchRequest) ([]wire.SketchResponse, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for i := range reqs {
		if reqs[i].A == nil {
			return nil, fmt.Errorf("%w: batch item %d", core.ErrNilMatrix, i)
		}
	}
	body, err := wire.EncodeBatchRequestFrame(reqs)
	if err != nil {
		return nil, err
	}
	payload, err := c.do(ctx, http.MethodPost, "/v1/sketch", body)
	if err != nil {
		return nil, err
	}
	rs, err := wire.DecodeBatchResponse(payload)
	if err != nil {
		return nil, err
	}
	if len(rs) != len(reqs) {
		// A server that fails before per-item decoding (malformed bytes,
		// response too large to frame) answers with a single-element error
		// batch; surface that status instead of a count-mismatch artifact.
		if len(rs) == 1 && rs[0].Status != wire.StatusOK {
			return nil, rs[0].Err()
		}
		return nil, fmt.Errorf("%w: batch response count %d for %d requests", wire.ErrMalformed, len(rs), len(reqs))
	}
	return rs, nil
}

// SketchShard computes the partial sketch of one column shard on the
// server: S·A[:, j0:j1] shipped as a MsgShardRequest, answered with the
// shard's columns of the full sketch. It shares Sketch's retry loop and
// error taxonomy — the coordinator's fan-out is built on it, with its own
// peer-failover layer on top of this client's per-peer retries.
func (c *Client) SketchShard(ctx context.Context, req *wire.ShardRequest) (*wire.ShardResponse, error) {
	if req == nil || req.A == nil {
		return nil, core.ErrNilMatrix
	}
	body, err := wire.EncodeShardRequestFrame(req)
	if err != nil {
		return nil, err
	}
	payload, err := c.do(ctx, http.MethodPost, "/v1/sketch", body)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeShardResponse(payload)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// SketchShardBatch issues several column shards of one sketch as a single
// MsgShardBatchRequest — the coordinator's per-peer fan-out frame — and
// returns the index-aligned shard responses. Retry semantics mirror
// SketchBatch: the batch is reissued as a whole only while every item's
// failure is retryable; per-item outcomes land in the returned slice.
func (c *Client) SketchShardBatch(ctx context.Context, reqs []wire.ShardRequest) ([]wire.ShardResponse, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for i := range reqs {
		if reqs[i].A == nil {
			return nil, fmt.Errorf("%w: shard batch item %d", core.ErrNilMatrix, i)
		}
	}
	body, err := wire.EncodeShardBatchRequestFrame(reqs)
	if err != nil {
		return nil, err
	}
	payload, err := c.do(ctx, http.MethodPost, "/v1/sketch", body)
	if err != nil {
		return nil, err
	}
	rs, err := wire.DecodeShardBatchResponse(payload)
	if err != nil {
		return nil, err
	}
	if len(rs) != len(reqs) {
		if len(rs) == 1 && rs[0].Status != wire.StatusOK {
			return nil, rs[0].Err()
		}
		return nil, fmt.Errorf("%w: shard batch response count %d for %d requests", wire.ErrMalformed, len(rs), len(reqs))
	}
	return rs, nil
}

// do sends the frame in body to path until it gets a decodable
// response payload, a non-retryable failure, or runs out of retries. The
// response payload is returned undecoded so single and batch callers share
// the retry loop.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	_, payload, err := c.doTyped(ctx, method, path, body)
	return payload, err
}

// doTyped is do for callers that dispatch on the response frame type —
// POST /v1/solve answers MsgSolveResponse when it solved inline and
// MsgJobStatus when it queued a job.
func (c *Client) doTyped(ctx context.Context, method, path string, body []byte) (wire.MsgType, []byte, error) {
	c.met.request()
	sp := c.met.span()
	defer sp.End()
	var lastErr error
	for attempt := 0; ; attempt++ {
		typ, payload, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return typ, payload, nil
		}
		c.met.attemptFailed(err)
		lastErr = err
		if attempt >= c.cfg.MaxRetries || !retryable(err) || ctx.Err() != nil {
			return 0, nil, lastErr
		}
		if err := c.sleep(ctx, c.backoff(attempt)); err != nil {
			return 0, nil, lastErr
		}
		c.met.retry()
	}
}

// attempt performs one HTTP exchange. Failures a retry could cure (transport errors,
// StatusOverloaded responses) come back retryable; everything else is final.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (wire.MsgType, []byte, error) {
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/x-sketchsp-wire")
	if dl, ok := actx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set("X-Sketchsp-Timeout-Ms", strconv.FormatInt(ms, 10))
		}
	}
	hres, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, nil, ctx.Err() // caller gave up; do not dress it as transport
		}
		return 0, nil, &transportError{err: err}
	}
	defer hres.Body.Close()
	// Read one byte past the limit so an oversized response is
	// distinguishable from an exactly-full one: a LimitReader at the limit
	// would silently truncate the body and misreport the deterministic
	// size overrun as a retryable "truncated payload" transport error.
	limit := int64(wire.HeaderSize) + int64(c.cfg.MaxResponseBytes)
	raw, err := io.ReadAll(io.LimitReader(hres.Body, limit+1))
	if err != nil {
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		return 0, nil, &transportError{err: err}
	}
	if int64(len(raw)) > limit {
		return 0, nil, fmt.Errorf("%w: response body exceeds MaxResponseBytes %d", wire.ErrTooLarge, c.cfg.MaxResponseBytes)
	}
	t, payload, _, err := wire.SplitFrame(raw, c.cfg.MaxResponseBytes)
	if err != nil {
		if errors.Is(err, wire.ErrTooLarge) {
			// The declared payload length exceeds our limit: resending the
			// same request gets the same oversized answer, so fail final
			// instead of dressing it as a retryable transport problem.
			return 0, nil, err
		}
		// The server always answers in wire frames; anything else (a proxy
		// error page, a truncated stream) is a transport-level problem.
		return 0, nil, &transportError{err: fmt.Errorf("http %d: %w", hres.StatusCode, err)}
	}
	switch t {
	case wire.MsgSketchResponse, wire.MsgBatchResponse, wire.MsgShardResponse,
		wire.MsgShardBatchResponse, wire.MsgMatrixInfo, wire.MsgSolveResponse,
		wire.MsgJobStatus:
	default:
		return 0, nil, fmt.Errorf("%w: unexpected response frame type %v", wire.ErrMalformed, t)
	}
	// Surface retryable wire statuses before handing the payload back, so
	// the retry loop sees them uniformly for single and batch responses.
	if err := statusPeek(t, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// statusPeek extracts a retry-relevant error from a response payload: for a
// single response its status, for a batch the overloaded status iff every
// item carries a retryable (or equally shed) failure. Non-retryable statuses
// return nil here — the caller decodes and reports them per item. Only
// status bytes are peeked; matrices are never materialized (the caller's
// decode stays the single full decode), and the one decode below is of an
// error item, which carries only a detail string.
func statusPeek(t wire.MsgType, payload []byte) error {
	if t == wire.MsgMatrixInfo {
		st, err := wire.PeekStatus(payload)
		if err != nil || !st.Retryable() {
			return err
		}
		info, err := wire.DecodeMatrixInfo(payload)
		if err != nil {
			return err
		}
		return info.Err()
	}
	if t == wire.MsgSketchResponse || t == wire.MsgShardResponse {
		st, err := wire.PeekStatus(payload)
		if err != nil || !st.Retryable() {
			return err
		}
		// A retryable status carries no matrix — both response layouts share
		// the status+detail error form, so one decoder covers them.
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			return err
		}
		return resp.Err()
	}
	if t == wire.MsgSolveResponse {
		st, err := wire.PeekStatus(payload)
		if err != nil || !st.Retryable() {
			return err
		}
		resp, err := wire.DecodeSolveResponse(payload)
		if err != nil {
			return err
		}
		return resp.Err()
	}
	if t == wire.MsgJobStatus {
		st, err := wire.PeekStatus(payload)
		if err != nil || !st.Retryable() {
			return err
		}
		js, err := wire.DecodeJobStatus(payload)
		if err != nil {
			return err
		}
		return js.Err()
	}
	items, err := wire.SplitBatchPayload(payload)
	if err != nil || len(items) == 0 {
		return err
	}
	for _, item := range items {
		st, err := wire.PeekStatus(item)
		if err != nil {
			return err
		}
		if !st.Retryable() {
			return nil
		}
	}
	var first wire.SketchResponse
	if err := wire.DecodeResponseInto(&first, items[0]); err != nil {
		return err
	}
	return first.Err() // whole batch shed → retry the whole batch
}

// transportError marks failures below the wire protocol (dial, reset,
// truncated body). Always retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// retryable reports whether a retry may cure err: transport failures and
// overload shed qualify; invalid inputs, closed servers, malformed frames
// and context expiry do not.
func retryable(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	var se *wire.StatusError
	return errors.As(err, &se) && se.Code.Retryable()
}

// backoff returns the sleep before retry number attempt (0-based):
// BaseBackoff·2^attempt capped at MaxBackoff, jittered to [50%, 150%].
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 0; i < attempt && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	f := 0.5 + c.rnd.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
