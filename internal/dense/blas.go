package dense

import (
	"fmt"
	"math"
)

// Dot returns xᵀy. Panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot lengths %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy lengths %d != %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns ‖x‖₂ with overflow-safe scaling.
func Nrm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Gemv computes y = alpha*A*x + beta*y for column-major A.
func Gemv(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("dense: Gemv dims A=%dx%d len(x)=%d len(y)=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	for j := 0; j < a.Cols; j++ {
		Axpy(alpha*x[j], a.Col(j), y)
	}
}

// GemvT computes y = alpha*Aᵀ*x + beta*y for column-major A.
func GemvT(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("dense: GemvT dims A=%dx%d len(x)=%d len(y)=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for j := 0; j < a.Cols; j++ {
		d := Dot(a.Col(j), x)
		if beta == 0 {
			y[j] = alpha * d
		} else {
			y[j] = alpha*d + beta*y[j]
		}
	}
}

// Gemm computes C = alpha*A*B + beta*C with a column-major jki loop whose
// inner update fuses four rank-1 contributions per pass over the output
// column: each element of C is loaded and stored once per four multiplies
// instead of once per multiply, which roughly doubles throughput on
// store-bound hardware. All matrices must be pre-allocated with conforming
// dimensions.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: Gemm dims A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		for j := 0; j < c.Cols; j++ {
			Scal(beta, c.Col(j))
		}
	}
	m := a.Rows
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)
		cj := c.Col(j)
		k := 0
		for ; k+4 <= a.Cols; k += 4 {
			s0 := alpha * bj[k]
			s1 := alpha * bj[k+1]
			s2 := alpha * bj[k+2]
			s3 := alpha * bj[k+3]
			if s0 == 0 && s1 == 0 && s2 == 0 && s3 == 0 {
				continue
			}
			// Re-slice to a common length so the compiler can
			// eliminate the inner bounds checks.
			out := cj[:m]
			a0 := a.Col(k)[:m]
			a1 := a.Col(k + 1)[:m]
			a2 := a.Col(k + 2)[:m]
			a3 := a.Col(k + 3)[:m]
			for i := range out {
				out[i] += s0*a0[i] + s1*a1[i] + s2*a2[i] + s3*a3[i]
			}
		}
		for ; k < a.Cols; k++ {
			Axpy(alpha*bj[k], a.Col(k), cj)
		}
	}
}

// GemmTN computes C = alpha*Aᵀ*B + beta*C, evaluating four inner products
// per pass over each column of B so the B column is read once per four
// outputs.
func GemmTN(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: GemmTN dims A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	m := a.Rows
	store := func(cj []float64, i int, d float64) {
		if beta == 0 {
			cj[i] = alpha * d
		} else {
			cj[i] = alpha*d + beta*cj[i]
		}
	}
	for j := 0; j < b.Cols; j++ {
		bj := b.Col(j)[:m]
		cj := c.Col(j)
		i := 0
		for ; i+4 <= a.Cols; i += 4 {
			a0 := a.Col(i)[:m]
			a1 := a.Col(i + 1)[:m]
			a2 := a.Col(i + 2)[:m]
			a3 := a.Col(i + 3)[:m]
			var d0, d1, d2, d3 float64
			for t, v := range bj {
				d0 += a0[t] * v
				d1 += a1[t] * v
				d2 += a2[t] * v
				d3 += a3[t] * v
			}
			store(cj, i, d0)
			store(cj, i+1, d1)
			store(cj, i+2, d2)
			store(cj, i+3, d3)
		}
		for ; i < a.Cols; i++ {
			store(cj, i, Dot(a.Col(i), bj))
		}
	}
}

// TrsvUpper solves R*x = b in place (x starts as b) for an upper-triangular
// R stored in the top-left n×n of a column-major matrix.
func TrsvUpper(r *Matrix, x []float64) {
	n := len(x)
	if r.Rows < n || r.Cols < n {
		panic(fmt.Sprintf("dense: TrsvUpper R=%dx%d x len %d", r.Rows, r.Cols, n))
	}
	for j := n - 1; j >= 0; j-- {
		rj := r.Col(j)
		if rj[j] == 0 {
			panic("dense: TrsvUpper singular diagonal")
		}
		x[j] /= rj[j]
		xj := x[j]
		for i := 0; i < j; i++ {
			x[i] -= rj[i] * xj
		}
	}
}

// TrsvUpperT solves Rᵀ*x = b in place for upper-triangular R (i.e. a
// lower-triangular solve using R's storage).
func TrsvUpperT(r *Matrix, x []float64) {
	n := len(x)
	if r.Rows < n || r.Cols < n {
		panic(fmt.Sprintf("dense: TrsvUpperT R=%dx%d x len %d", r.Rows, r.Cols, n))
	}
	for j := 0; j < n; j++ {
		rj := r.Col(j)
		s := x[j]
		for i := 0; i < j; i++ {
			s -= rj[i] * x[i]
		}
		if rj[j] == 0 {
			panic("dense: TrsvUpperT singular diagonal")
		}
		x[j] = s / rj[j]
	}
}
