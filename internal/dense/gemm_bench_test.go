package dense

import (
	"math/rand"
	"testing"
)

func BenchmarkGemm400(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 400
	a := randMat(r, n, n)
	bb := randMat(r, n, n)
	c := NewMatrix(n, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	for i := 0; i < b.N; i++ {
		Gemm(1, a, bb, 0, c)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GF/s")
}
