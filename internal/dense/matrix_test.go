package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 3 {
		t.Fatalf("got %dx%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixFromRowMajor(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	want := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d) = %g, want %g", i, j, m.At(i, j), want[i][j])
			}
		}
	}
	// Column-major storage check.
	if m.Data[0] != 1 || m.Data[1] != 4 || m.Data[2] != 2 {
		t.Errorf("column-major layout wrong: %v", m.Data)
	}
}

func TestNewMatrixFromBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad data length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(5, 7)
	rng := rand.New(rand.NewSource(1))
	ref := make(map[[2]int]float64)
	for k := 0; k < 100; k++ {
		i, j := rng.Intn(5), rng.Intn(7)
		v := rng.NormFloat64()
		m.Set(i, j, v)
		ref[[2]int{i, j}] = v
	}
	for key, v := range ref {
		if got := m.At(key[0], key[1]); got != v {
			t.Errorf("(%d,%d) = %g, want %g", key[0], key[1], got, v)
		}
	}
}

func TestColAliasesStorage(t *testing.T) {
	m := NewMatrix(4, 2)
	c := m.Col(1)
	c[2] = 42
	if m.At(2, 1) != 42 {
		t.Fatal("Col does not alias storage")
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := NewMatrix(6, 6)
	v := m.View(2, 3, 3, 2)
	if v.Rows != 3 || v.Cols != 2 {
		t.Fatalf("view dims %dx%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, 7)
	v.Set(2, 1, 9)
	if m.At(2, 3) != 7 || m.At(4, 4) != 9 {
		t.Fatal("view writes not visible in parent")
	}
}

func TestViewZero(t *testing.T) {
	m := NewMatrix(6, 6)
	m.Fill(3)
	v := m.View(1, 1, 2, 2)
	v.Zero()
	if m.At(1, 1) != 0 || m.At(2, 2) != 0 {
		t.Fatal("view Zero did not clear window")
	}
	if m.At(0, 0) != 3 || m.At(3, 3) != 3 || m.At(1, 3) != 3 {
		t.Fatal("view Zero escaped its window")
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	m := NewMatrix(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.View(1, 1, 3, 1)
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMatrix(rows, cols)
		for k := range m.Data {
			m.Data[k] = r.NormFloat64()
		}
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("‖m‖_F = %g, want 5", got)
	}
}

func TestFrobeniusNormOverflowSafe(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1e200)
	m.Set(0, 1, 1e200)
	want := 1e200 * math.Sqrt2
	if got := m.FrobeniusNorm(); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("overflow-unsafe norm: got %g want %g", got, want)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{1, 2.5, 3, 4})
	if got := a.MaxAbsDiff(b); got != 0.5 {
		t.Fatalf("MaxAbsDiff = %g, want 0.5", got)
	}
}

func TestEqualDimsMismatch(t *testing.T) {
	if NewMatrix(2, 2).Equal(NewMatrix(2, 3), 1) {
		t.Fatal("matrices of different shape compared equal")
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	dst := NewMatrix(2, 2)
	dst.CopyFrom(src)
	if !dst.Equal(src, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestViewIntoMatchesView(t *testing.T) {
	m := NewMatrixFrom(4, 5, []float64{
		1, 2, 3, 4, 5,
		6, 7, 8, 9, 10,
		11, 12, 13, 14, 15,
		16, 17, 18, 19, 20,
	})
	var dst Matrix
	for _, c := range [][4]int{{0, 0, 4, 5}, {1, 2, 2, 3}, {3, 4, 1, 1}, {2, 1, 0, 2}, {0, 3, 3, 0}} {
		want := m.View(c[0], c[1], c[2], c[3])
		m.ViewInto(&dst, c[0], c[1], c[2], c[3])
		if dst.Rows != want.Rows || dst.Cols != want.Cols || dst.Stride != want.Stride {
			t.Fatalf("ViewInto%v header = %dx%d/%d, want %dx%d/%d",
				c, dst.Rows, dst.Cols, dst.Stride, want.Rows, want.Cols, want.Stride)
		}
		if (dst.Data == nil) != (want.Data == nil) || len(dst.Data) != len(want.Data) {
			t.Fatalf("ViewInto%v data window differs from View", c)
		}
		for j := 0; j < dst.Cols; j++ {
			for i := 0; i < dst.Rows; i++ {
				if dst.At(i, j) != want.At(i, j) {
					t.Fatalf("ViewInto%v element (%d,%d) = %g, want %g", c, i, j, dst.At(i, j), want.At(i, j))
				}
			}
		}
	}
	// Writes through the reused header must land in the parent.
	m.ViewInto(&dst, 1, 1, 2, 2)
	dst.Set(0, 0, -99)
	if m.At(1, 1) != -99 {
		t.Fatal("ViewInto does not alias parent storage")
	}
}

func TestViewIntoOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds ViewInto did not panic")
		}
	}()
	var dst Matrix
	NewMatrix(3, 3).ViewInto(&dst, 2, 2, 2, 2)
}
