// Package dense provides column-major dense matrices and the small set of
// BLAS-like operations the sketching library and its least-squares pipeline
// need. It is deliberately dependency-free (stdlib only) and favours
// contiguous column access, which is the access pattern of the paper's
// Algorithm 3/4 kernels.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a column-major dense matrix: element (i, j) lives at
// Data[j*Stride+i]. Stride >= Rows. Column-major layout matches the paper's
// kernels, which stream through columns of the sketch output Â.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// NewMatrix allocates a zeroed r×c column-major matrix with a tight stride.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: r, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data (convenient in
// tests and examples, where literals read row by row).
func NewMatrixFrom(r, c int, rowMajor []float64) *Matrix {
	if len(rowMajor) != r*c {
		panic(fmt.Sprintf("dense: NewMatrixFrom got %d values for %dx%d", len(rowMajor), r, c))
	}
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rowMajor[i*c+j])
		}
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[j*m.Stride+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[j*m.Stride+i] = v }

// Col returns the j-th column as a slice aliasing the matrix storage.
func (m *Matrix) Col(j int) []float64 {
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// View returns a submatrix [i0:i0+r, j0:j0+c] sharing storage with m.
func (m *Matrix) View(i0, j0, r, c int) *Matrix {
	if i0 < 0 || j0 < 0 || r < 0 || c < 0 || i0+r > m.Rows || j0+c > m.Cols {
		panic(fmt.Sprintf("dense: view [%d:%d, %d:%d] out of %dx%d", i0, i0+r, j0, j0+c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: nil}
	}
	off := j0*m.Stride + i0
	end := (j0+c-1)*m.Stride + i0 + r
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off:end]}
}

// ViewInto writes the submatrix [i0:i0+r, j0:j0+c] of m into dst, sharing
// storage with m. It is the allocation-free form of View: hot loops reuse
// one Matrix header instead of heap-allocating a view per block.
func (m *Matrix) ViewInto(dst *Matrix, i0, j0, r, c int) {
	if i0 < 0 || j0 < 0 || r < 0 || c < 0 || i0+r > m.Rows || j0+c > m.Cols {
		panic(fmt.Sprintf("dense: view [%d:%d, %d:%d] out of %dx%d", i0, i0+r, j0, j0+c, m.Rows, m.Cols))
	}
	dst.Rows, dst.Cols, dst.Stride = r, c, m.Stride
	if r == 0 || c == 0 {
		dst.Data = nil
		return
	}
	off := j0*m.Stride + i0
	end := (j0+c-1)*m.Stride + i0 + r
	dst.Data = m.Data[off:end]
}

// Clone returns a deep copy of m with a tight stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(out.Col(j), m.Col(j))
	}
	return out
}

// Zero sets every element to 0 (respecting views: only touches the window).
func (m *Matrix) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			out.Set(j, i, v)
		}
	}
	return out
}

// CopyFrom copies src into m; dimensions must match exactly.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: CopyFrom dims %dx%d != %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Equal reports whether m and b agree elementwise to within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		mc, bc := m.Col(j), b.Col(j)
		for i := range mc {
			if math.Abs(mc[i]-bc[i]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference. Panics on
// dimension mismatch.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("dense: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for j := 0; j < m.Cols; j++ {
		mc, bc := m.Col(j), b.Col(j)
		for i := range mc {
			if v := math.Abs(mc[i] - bc[i]); v > d {
				d = v
			}
		}
	}
	return d
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	var scale, ssq float64 = 0, 1
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if v == 0 {
				continue
			}
			av := math.Abs(v)
			if scale < av {
				ssq = 1 + ssq*(scale/av)*(scale/av)
				scale = av
			} else {
				ssq += (av / scale) * (av / scale)
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// String renders small matrices for debugging; large ones are summarised.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("dense.Matrix{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% 10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// MemoryBytes reports the storage footprint of the matrix data in bytes.
func (m *Matrix) MemoryBytes() int64 { return int64(len(m.Data)) * 8 }
