package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for k := range m.Data {
		m.Data[k] = r.NormFloat64()
	}
	return m
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{100, 100}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("Axpy with alpha=0 modified y")
	}
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Nrm2 = %g, want 5", got)
	}
	if Nrm2(nil) != 0 {
		t.Fatal("Nrm2(nil) != 0")
	}
}

func TestNrm2Extremes(t *testing.T) {
	// Overflow-safe
	if got := Nrm2([]float64{1e200, 1e200}); math.IsInf(got, 1) {
		t.Fatal("Nrm2 overflowed")
	}
	// Underflow-safe
	if got := Nrm2([]float64{1e-200, 1e-200}); got == 0 {
		t.Fatal("Nrm2 underflowed to zero")
	}
}

func TestGemvAgainstExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMat(r, 5, 3)
	x := randVec(r, 3)
	y := randVec(r, 5)
	want := make([]float64, 5)
	for i := 0; i < 5; i++ {
		want[i] = 0.5 * y[i]
		for j := 0; j < 3; j++ {
			want[i] += 2 * a.At(i, j) * x[j]
		}
	}
	Gemv(2, a, x, 0.5, y)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("Gemv[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestGemvTAgainstExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randMat(r, 4, 6)
	x := randVec(r, 4)
	y := make([]float64, 6)
	GemvT(1, a, x, 0, y)
	for j := 0; j < 6; j++ {
		var want float64
		for i := 0; i < 4; i++ {
			want += a.At(i, j) * x[i]
		}
		if math.Abs(y[j]-want) > 1e-12 {
			t.Fatalf("GemvT[%d] = %g, want %g", j, y[j], want)
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randMat(r, 4, 5)
	b := randMat(r, 5, 3)
	c := NewMatrix(4, 3)
	Gemm(1, a, b, 0, c)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float64
			for k := 0; k < 5; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("Gemm(%d,%d) = %g, want %g", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestGemmBetaAccumulate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMat(r, 3, 3)
	b := randMat(r, 3, 3)
	c := randMat(r, 3, 3)
	c0 := c.Clone()
	Gemm(1, a, b, 1, c)
	// c should equal a*b + c0
	want := NewMatrix(3, 3)
	Gemm(1, a, b, 0, want)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			w := want.At(i, j) + c0.At(i, j)
			if math.Abs(c.At(i, j)-w) > 1e-12 {
				t.Fatalf("beta=1 accumulate wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmTN(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randMat(r, 5, 4)
	b := randMat(r, 5, 3)
	c := NewMatrix(4, 3)
	GemmTN(1, a, b, 0, c)
	want := NewMatrix(4, 3)
	Gemm(1, a.Transpose(), b, 0, want)
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("GemmTN != Gemm(Aᵀ, B)")
	}
}

// Property: Gemm is linear in its left argument.
func TestGemmLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a1, a2 := randMat(r, n, n), randMat(r, n, n)
		b := randMat(r, n, n)
		// (a1+a2)*b
		sum := NewMatrix(n, n)
		for k := range sum.Data {
			sum.Data[k] = a1.Data[k] + a2.Data[k]
		}
		c1 := NewMatrix(n, n)
		Gemm(1, sum, b, 0, c1)
		c2 := NewMatrix(n, n)
		Gemm(1, a1, b, 0, c2)
		Gemm(1, a2, b, 1, c2)
		return c1.MaxAbsDiff(c2) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrsvUpper(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 6
	u := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			u.Set(i, j, r.NormFloat64())
		}
		u.Set(j, j, 2+r.Float64()) // well-conditioned diagonal
	}
	xTrue := randVec(r, n)
	b := make([]float64, n)
	Gemv(1, u, xTrue, 0, b)
	TrsvUpper(u, b)
	for i := range b {
		if math.Abs(b[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("TrsvUpper x[%d] = %g, want %g", i, b[i], xTrue[i])
		}
	}
}

func TestTrsvUpperT(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 6
	u := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			u.Set(i, j, r.NormFloat64())
		}
		u.Set(j, j, 2+r.Float64())
	}
	xTrue := randVec(r, n)
	b := make([]float64, n)
	Gemv(1, u.Transpose(), xTrue, 0, b)
	TrsvUpperT(u, b)
	for i := range b {
		if math.Abs(b[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("TrsvUpperT x[%d] = %g, want %g", i, b[i], xTrue[i])
		}
	}
}

func TestTrsvSingularPanics(t *testing.T) {
	u := NewMatrix(2, 2)
	u.Set(0, 0, 1) // u[1][1] = 0: singular
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on singular solve")
		}
	}()
	TrsvUpper(u, []float64{1, 1})
}

// Gemm and GemmTN must honour strided operands (views), which the blocked
// QR update relies on.
func TestGemmWithViews(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	big := randMat(r, 12, 12)
	a := big.View(2, 1, 6, 4)
	b := big.View(3, 6, 4, 3)
	c := NewMatrix(6, 3)
	Gemm(1, a, b, 0, c)
	want := NewMatrix(6, 3)
	Gemm(1, a.Clone(), b.Clone(), 0, want) // tight-stride copies
	if c.MaxAbsDiff(want) > 1e-13 {
		t.Fatal("Gemm view result differs from tight-stride result")
	}

	ct := NewMatrix(4, 3)
	GemmTN(1, a, big.View(2, 6, 6, 3), 0, ct)
	wantT := NewMatrix(4, 3)
	GemmTN(1, a.Clone(), big.View(2, 6, 6, 3).Clone(), 0, wantT)
	if ct.MaxAbsDiff(wantT) > 1e-13 {
		t.Fatal("GemmTN view result differs")
	}
}

// Output written through a view must stay inside the view's window.
func TestGemmIntoViewStaysInWindow(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	host := NewMatrix(8, 8)
	host.Fill(7)
	c := host.View(2, 2, 4, 4)
	a := randMat(r, 4, 4)
	b := randMat(r, 4, 4)
	Gemm(1, a, b, 0, c)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			inside := i >= 2 && i < 6 && j >= 2 && j < 6
			if !inside && host.At(i, j) != 7 {
				t.Fatalf("Gemm escaped the view at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmOddInnerDimension(t *testing.T) {
	// Inner dimensions not divisible by the 4-wide fusion must hit the
	// scalar tail and still be exact.
	r := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 3, 5, 7, 9} {
		a := randMat(r, 6, k)
		b := randMat(r, k, 4)
		c := NewMatrix(6, 4)
		Gemm(1, a, b, 0, c)
		for i := 0; i < 6; i++ {
			for j := 0; j < 4; j++ {
				var want float64
				for kk := 0; kk < k; kk++ {
					want += a.At(i, kk) * b.At(kk, j)
				}
				if math.Abs(c.At(i, j)-want) > 1e-12 {
					t.Fatalf("k=%d: (%d,%d) = %g want %g", k, i, j, c.At(i, j), want)
				}
			}
		}
	}
}

func TestViewOfView(t *testing.T) {
	m := NewMatrix(10, 10)
	for k := range m.Data {
		m.Data[k] = float64(k)
	}
	v1 := m.View(1, 1, 8, 8)
	v2 := v1.View(2, 3, 3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if v2.At(i, j) != m.At(3+i, 4+j) {
				t.Fatalf("nested view (%d,%d) wrong", i, j)
			}
		}
	}
}
