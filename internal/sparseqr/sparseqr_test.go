package sparseqr

import (
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/sparse"
)

func randB(seed int64, m int) []float64 {
	r := rand.New(rand.NewSource(seed))
	b := make([]float64, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	return b
}

func TestFactorizeSolveMatchesDenseQR(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		m, n := 30+r.Intn(60), 3+r.Intn(10)
		a := sparse.RandomUniform(m, n, 0.2, seed)
		// Guard against structurally rank-deficient trials: require every
		// column to be nonempty.
		ok := true
		for j := 0; j < n; j++ {
			if a.ColPtr[j+1] == a.ColPtr[j] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		b := randB(seed+50, m)
		f, err := Factorize(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x := f.Solve()
		want := linalg.NewQR(a.ToDense()).Solve(b)
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("seed %d: x[%d] = %g, dense QR says %g", seed, i, x[i], want[i])
			}
		}
	}
}

func TestFactorizeConsistentExact(t *testing.T) {
	a := sparse.RandomUniform(100, 12, 0.25, 3)
	r := rand.New(rand.NewSource(4))
	xTrue := make([]float64, 12)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := make([]float64, 100)
	a.MulVec(xTrue, b)
	f, err := Factorize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve()
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestRPreservesNormalEquations(t *testing.T) {
	// RᵀR must equal AᵀA (Q orthogonal): verify on a small case.
	a := sparse.RandomUniform(40, 6, 0.3, 5)
	f, err := Factorize(a, make([]float64, 40))
	if err != nil {
		t.Fatal(err)
	}
	// Build dense R.
	rd := dense.NewMatrix(6, 6)
	for k := 0; k < 6; k++ {
		if f.rrows[k] == nil {
			continue
		}
		for t2 := 0; t2 < f.rrows[k].nnz(); t2++ {
			rd.Set(k, f.rrows[k].cols[t2], f.rrows[k].vals[t2])
		}
	}
	rtr := dense.NewMatrix(6, 6)
	dense.GemmTN(1, rd, rd, 0, rtr)
	ad := a.ToDense()
	ata := dense.NewMatrix(6, 6)
	dense.GemmTN(1, ad, ad, 0, ata)
	if rtr.MaxAbsDiff(ata) > 1e-10*math.Max(1, ata.FrobeniusNorm()) {
		t.Fatalf("RᵀR ≠ AᵀA, diff %g", rtr.MaxAbsDiff(ata))
	}
}

func TestApplyQTMatchesFactorizationRHS(t *testing.T) {
	a := sparse.RandomUniform(60, 8, 0.25, 7)
	b := randB(8, 60)
	f, err := Factorize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	qtb, err := f.ApplyQT(b)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if math.Abs(qtb[k]-f.qtb[k]) > 1e-12*math.Max(1, math.Abs(f.qtb[k])) {
			t.Fatalf("replayed Qᵀb[%d] = %g, factorization kept %g", k, qtb[k], f.qtb[k])
		}
	}
}

func TestApplyQTOrthogonality(t *testing.T) {
	// ‖Qᵀv‖ over the full space equals ‖v‖; our ApplyQT returns only the
	// leading-n part, so check that solving with a replayed RHS matches
	// solving directly.
	a := sparse.RandomUniform(50, 7, 0.3, 9)
	b := randB(10, 50)
	f, err := Factorize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	b2 := randB(11, 50)
	qtb2, err := f.ApplyQT(b2)
	if err != nil {
		t.Fatal(err)
	}
	// Compare x from (R, qtb2) against dense QR solve of (A, b2).
	saveQtb := append([]float64(nil), f.qtb...)
	copy(f.qtb, qtb2)
	x := f.Solve()
	copy(f.qtb, saveQtb)
	want := linalg.NewQR(a.ToDense()).Solve(b2)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("second-RHS solve x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestRankDeficientSafeties(t *testing.T) {
	// Column 2 empty; column 1 duplicate of column 0.
	coo := sparse.NewCOO(10, 3, 0)
	for i := 0; i < 10; i++ {
		coo.Append(i, 0, float64(i+1))
		coo.Append(i, 1, float64(i+1))
	}
	a := coo.ToCSC()
	f, err := Factorize(a, randB(12, 10))
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve()
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %g on rank-deficient input", i, v)
		}
	}
	if x[2] != 0 {
		t.Fatalf("empty column got x = %g, want 0", x[2])
	}
}

func TestEmptyRowsSkipped(t *testing.T) {
	coo := sparse.NewCOO(20, 3, 0)
	coo.Append(3, 0, 1)
	coo.Append(7, 1, 2)
	coo.Append(11, 2, 3)
	a := coo.ToCSC()
	b := make([]float64, 20)
	b[3], b[7], b[11] = 2, 4, 9
	f, err := Factorize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve()
	want := []float64{2, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestStatsTracking(t *testing.T) {
	a := sparse.RandomUniform(200, 25, 0.15, 13)
	f, err := Factorize(a, make([]float64, 200))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.RNNZ == 0 || st.PeakRNNZ < st.RNNZ {
		t.Fatalf("implausible nnz stats: %+v", st)
	}
	if st.Rotations == 0 {
		t.Fatal("no rotations recorded on a 200-row problem")
	}
	if st.MemoryBytes < st.PeakRNNZ*16 {
		t.Fatalf("memory below R storage: %+v", st)
	}
}

// Fill-in blow-up, the Table XI phenomenon: a matrix with a dense last row
// pattern union forces R to fill far beyond nnz(A)/columns.
func TestFillInGrowth(t *testing.T) {
	// Arrow-ish pattern: column 0 dense, diagonal otherwise — classic
	// fill-generating structure when rows arrive in bad order.
	n := 40
	coo := sparse.NewCOO(200, n, 0)
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		coo.Append(i, 0, r.NormFloat64())             // dense first column
		coo.Append(i, 1+r.Intn(n-1), r.NormFloat64()) // scattered
		coo.Append(i, 1+r.Intn(n-1), r.NormFloat64())
	}
	a := coo.ToCSC()
	f, err := Factorize(a, make([]float64, 200))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	// The factor memory must dwarf the n×n dense-upper bound's
	// row-count… at minimum, Q's rotation log must dominate mem(A).
	if st.MemoryBytes < a.MemoryBytes() {
		t.Fatalf("direct factor memory %d did not exceed mem(A) %d on a fill-heavy pattern",
			st.MemoryBytes, a.MemoryBytes())
	}
}

func TestFactorizeDimensionError(t *testing.T) {
	a := sparse.RandomUniform(10, 3, 0.4, 1)
	if _, err := Factorize(a, make([]float64, 4)); err == nil {
		t.Fatal("expected length error")
	}
}
