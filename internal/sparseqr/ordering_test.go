package sparseqr

import (
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/sparse"
)

// shuffledIntervals builds a banded-ish matrix whose columns arrive in
// random order — natural ordering then produces heavy fill, while OrderMeanRow
// restores the band.
func shuffledIntervals(seed int64, m, n int) *sparse.CSC {
	base := sparse.Intervals(m, n, m/20, seed)
	r := rand.New(rand.NewSource(seed + 1))
	perm := r.Perm(n)
	return permuteColumns(base, perm)
}

func TestOrderedSolveMatchesNatural(t *testing.T) {
	a := shuffledIntervals(3, 600, 40)
	b := randB(4, 600)
	for _, ord := range []Ordering{OrderNatural, OrderMeanRow, OrderDegree} {
		of, err := FactorizeOrdered(a, b, ord)
		if err != nil {
			t.Fatal(err)
		}
		x := of.Solve()
		nat, err := Factorize(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := nat.Solve()
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("ordering %d: x[%d] = %g, want %g", ord, i, x[i], want[i])
			}
		}
	}
}

func TestMeanRowOrderingReducesFill(t *testing.T) {
	a := shuffledIntervals(7, 2000, 80)
	b := make([]float64, 2000)
	nat, err := FactorizeOrdered(a, b, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := FactorizeOrdered(a, b, OrderMeanRow)
	if err != nil {
		t.Fatal(err)
	}
	natMem := nat.Stats().MemoryBytes
	ordMem := ord.Stats().MemoryBytes
	if ordMem >= natMem {
		t.Fatalf("mean-row ordering did not reduce factor memory: %d vs %d", ordMem, natMem)
	}
	t.Logf("factor memory: natural %d B, ordered %d B (%.1fx reduction)",
		natMem, ordMem, float64(natMem)/float64(ordMem))
}

func TestColumnOrderingIsPermutation(t *testing.T) {
	a := sparse.RandomUniform(60, 25, 0.1, 9)
	for _, ord := range []Ordering{OrderNatural, OrderMeanRow, OrderDegree} {
		perm := ColumnOrdering(a, ord)
		seen := make([]bool, 25)
		for _, j := range perm {
			if j < 0 || j >= 25 || seen[j] {
				t.Fatalf("ordering %d: invalid permutation %v", ord, perm)
			}
			seen[j] = true
		}
	}
}

func TestPermuteColumnsRoundTrip(t *testing.T) {
	a := sparse.RandomUniform(30, 12, 0.25, 11)
	perm := ColumnOrdering(a, OrderDegree)
	ap := permuteColumns(a, perm)
	if err := ap.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, j := range perm {
		for i := 0; i < 30; i++ {
			if ap.At(i, k) != a.At(i, j) {
				t.Fatalf("permuted column %d != original %d at row %d", k, j, i)
			}
		}
	}
}
