package sparseqr

import (
	"sort"

	"sketchsp/internal/sparse"
)

// Column preordering. SuiteSparseQR runs COLAMD before factorizing; this
// package provides two cheap analogues so the direct baseline is not
// gratuitously handicapped on orderable problems. For the row-merge Givens
// factorization, fill in R tracks how far apart a row's column indices are
// after permutation, so orderings that cluster columns with overlapping row
// support reduce both R fill and the rotation count.

// Ordering selects a column preordering strategy.
type Ordering int

const (
	// OrderNatural keeps the input ordering.
	OrderNatural Ordering = iota
	// OrderMeanRow sorts columns by the mean row index of their support —
	// a bandwidth-reduction heuristic that works well on interval-like
	// structures (the rail matrices).
	OrderMeanRow
	// OrderDegree sorts columns by ascending nonzero count, a
	// minimum-degree flavoured heuristic.
	OrderDegree
)

// ColumnOrdering returns perm where perm[k] is the original index of the
// column placed at position k.
func ColumnOrdering(a *sparse.CSC, ord Ordering) []int {
	perm := make([]int, a.N)
	for j := range perm {
		perm[j] = j
	}
	switch ord {
	case OrderMeanRow:
		key := make([]float64, a.N)
		for j := 0; j < a.N; j++ {
			rows, _ := a.ColView(j)
			if len(rows) == 0 {
				key[j] = -1
				continue
			}
			s := 0
			for _, r := range rows {
				s += r
			}
			key[j] = float64(s) / float64(len(rows))
		}
		sort.SliceStable(perm, func(x, y int) bool { return key[perm[x]] < key[perm[y]] })
	case OrderDegree:
		sort.SliceStable(perm, func(x, y int) bool {
			return a.ColPtr[perm[x]+1]-a.ColPtr[perm[x]] < a.ColPtr[perm[y]+1]-a.ColPtr[perm[y]]
		})
	}
	return perm
}

// permuteColumns builds A·P for the given permutation (column k of the
// result is column perm[k] of a).
func permuteColumns(a *sparse.CSC, perm []int) *sparse.CSC {
	colPtr := make([]int, a.N+1)
	nnz := a.NNZ()
	rowIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for k, j := range perm {
		rows, vals := a.ColView(j)
		rowIdx = append(rowIdx, rows...)
		val = append(val, vals...)
		colPtr[k+1] = colPtr[k] + len(rows)
	}
	return &sparse.CSC{M: a.M, N: a.N, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
}

// FactorizeOrdered permutes the columns of a with the chosen ordering,
// factorizes, and returns a Factor whose Solve output is mapped back to the
// original column order via the returned OrderedFactor.
func FactorizeOrdered(a *sparse.CSC, b []float64, ord Ordering) (*OrderedFactor, error) {
	perm := ColumnOrdering(a, ord)
	ap := a
	if ord != OrderNatural {
		ap = permuteColumns(a, perm)
	}
	f, err := Factorize(ap, b)
	if err != nil {
		return nil, err
	}
	return &OrderedFactor{Factor: f, Perm: perm}, nil
}

// OrderedFactor wraps a Factor with its column permutation.
type OrderedFactor struct {
	*Factor
	// Perm[k] is the original column index at permuted position k.
	Perm []int
}

// Solve back-substitutes and un-permutes the solution into the original
// column order.
func (of *OrderedFactor) Solve() []float64 {
	xp := of.Factor.Solve()
	x := make([]float64, len(xp))
	for k, j := range of.Perm {
		x[j] = xp[k]
	}
	return x
}
