// Package sparseqr implements a row-wise Givens sparse QR factorization in
// the style of George & Heath, standing in for SuiteSparseQR as the direct
// sparse least-squares solver the paper benchmarks against (Tables IX–XI).
//
// Rows of A are rotated one at a time into a growing sparse upper-triangular
// R; the rotations are simultaneously applied to the right-hand side
// (computing Qᵀb implicitly) and, mirroring SuiteSparseQR's storage of the
// Q factor, recorded in a rotation log so that Q remains applicable to new
// vectors. The log plus the fill-in of R is exactly the memory footprint
// whose blow-up Table XI demonstrates, so the factorization tracks its own
// peak memory.
package sparseqr

import (
	"fmt"
	"math"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// row is one sparse row of R, column indices ascending; cols[0] is the
// leading (pivot) column.
type row struct {
	cols []int
	vals []float64
}

func (r *row) nnz() int { return len(r.cols) }

// rotation records one Givens rotation for later Q application:
// it acted on pivot row `pivot` with cosine c and sine s.
type rotation struct {
	pivot int
	c, s  float64
}

// rowLog records how one input row was absorbed: the rotations applied to
// it in order, and the R slot its remainder was deposited into (-1 if the
// row was annihilated entirely into earlier rows).
type rowLog struct {
	srcRow  int
	rots    []rotation
	deposit int
}

// Factor is the result of a sparse QR factorization.
type Factor struct {
	m, n int
	// rrows[k] is the row of R with leading column k (nil while empty).
	rrows []*row
	qtb   []float64
	// rotLog mirrors SuiteSparseQR's stored Q factor. Entry order matches
	// the row-insertion order, so Qᵀ can be replayed onto a fresh vector.
	rotLog []rowLog
	// bookkeeping
	curNNZ   int64
	peakNNZ  int64
	rotCount int64
	flops    int64
	// PivotTol: leading entries with |v| below PivotTol·maxAbs are treated
	// as zero during back substitution (rank detection).
	PivotTol float64
	maxAbs   float64
}

// Stats summarises cost and footprint of a factorization.
type Stats struct {
	// RNNZ is the final number of stored entries in R (including fill).
	RNNZ int64
	// PeakRNNZ is the largest live entry count during factorization.
	PeakRNNZ int64
	// Rotations is the number of Givens rotations applied (the size of
	// the stored Q factor).
	Rotations int64
	// Flops is the approximate floating-point work.
	Flops int64
	// MemoryBytes is the peak workspace: R entries (16 B each: index +
	// value), the rotation log (24 B each, mirroring SPQR's stored Q),
	// and the Qᵀb vector.
	MemoryBytes int64
}

// Factorize computes the QR factorization of a, applying Qᵀ to b on the
// fly. b must have length a.M. a and b are not modified.
func Factorize(a *sparse.CSC, b []float64) (*Factor, error) {
	if len(b) != a.M {
		return nil, fmt.Errorf("sparseqr: len(b)=%d, want m=%d", len(b), a.M)
	}
	f := &Factor{
		m: a.M, n: a.N,
		rrows:    make([]*row, a.N),
		qtb:      make([]float64, a.N),
		PivotTol: 1e-13,
	}
	csr := a.ToCSR()
	// Scratch buffers for row merging, reused across rotations.
	mergeCols := make([]int, 0, 4*a.N)
	mergeR := make([]float64, 0, 4*a.N)
	mergeW := make([]float64, 0, 4*a.N)

	for i := 0; i < a.M; i++ {
		cols, vals := csr.RowView(i)
		if len(cols) == 0 {
			continue
		}
		w := &row{
			cols: append([]int(nil), cols...),
			vals: append([]float64(nil), vals...),
		}
		for _, v := range vals {
			if av := math.Abs(v); av > f.maxAbs {
				f.maxAbs = av
			}
		}
		f.curNNZ += int64(w.nnz())
		if f.curNNZ > f.peakNNZ {
			f.peakNNZ = f.curNNZ
		}
		brow := b[i]
		log := rowLog{srcRow: i, deposit: -1}

		for w.nnz() > 0 {
			k := w.cols[0]
			pivotRow := f.rrows[k]
			if pivotRow == nil {
				// Row slots directly into R.
				f.rrows[k] = w
				f.qtb[k] = brow
				log.deposit = k
				break
			}
			// Rotate w against R's row k to eliminate w's leading entry.
			rv := pivotRow.vals[0]
			wv := w.vals[0]
			rho := math.Hypot(rv, wv)
			c := rv / rho
			s := wv / rho
			f.rotCount++
			log.rots = append(log.rots, rotation{pivot: k, c: c, s: s})

			// Merge the two patterns: newR = c·r + s·w, newW = −s·r + c·w
			// with the leading entry of newW dropped (it is exactly 0 by
			// construction of the rotation).
			mergeCols = mergeCols[:0]
			mergeR = mergeR[:0]
			mergeW = mergeW[:0]
			p, q := 0, 0
			for p < pivotRow.nnz() || q < w.nnz() {
				var col int
				var rval, wval float64
				switch {
				case q >= w.nnz() || (p < pivotRow.nnz() && pivotRow.cols[p] < w.cols[q]):
					col, rval, wval = pivotRow.cols[p], pivotRow.vals[p], 0
					p++
				case p >= pivotRow.nnz() || w.cols[q] < pivotRow.cols[p]:
					col, rval, wval = w.cols[q], 0, w.vals[q]
					q++
				default:
					col, rval, wval = pivotRow.cols[p], pivotRow.vals[p], w.vals[q]
					p++
					q++
				}
				mergeCols = append(mergeCols, col)
				mergeR = append(mergeR, c*rval+s*wval)
				mergeW = append(mergeW, -s*rval+c*wval)
			}
			f.flops += 6 * int64(len(mergeCols))

			// Rebuild pivot row (same leading column k).
			newR := &row{
				cols: append([]int(nil), mergeCols...),
				vals: append([]float64(nil), mergeR...),
			}
			// Rebuild the working row without its eliminated leading
			// entry, dropping exact zeros created by cancellation.
			newW := &row{}
			for t := 0; t < len(mergeCols); t++ {
				if mergeCols[t] == k {
					continue
				}
				if mergeW[t] == 0 {
					continue
				}
				newW.cols = append(newW.cols, mergeCols[t])
				newW.vals = append(newW.vals, mergeW[t])
			}
			f.curNNZ += int64(newR.nnz()+newW.nnz()) - int64(pivotRow.nnz()+w.nnz())
			if f.curNNZ > f.peakNNZ {
				f.peakNNZ = f.curNNZ
			}
			f.rrows[k] = newR
			w = newW

			// Rotate the right-hand side alongside.
			f.qtb[k], brow = c*f.qtb[k]+s*brow, -s*f.qtb[k]+c*brow
		}
		f.rotLog = append(f.rotLog, log)
	}
	return f, nil
}

// Solve back-substitutes R·x = Qᵀb. Columns whose pivot is missing or
// negligibly small (rank deficiency) receive x = 0, the standard
// basic-solution convention for direct sparse solvers.
func (f *Factor) Solve() []float64 {
	x := make([]float64, f.n)
	tol := f.PivotTol * f.maxAbs
	for k := f.n - 1; k >= 0; k-- {
		r := f.rrows[k]
		if r == nil || math.Abs(r.vals[0]) <= tol {
			x[k] = 0
			continue
		}
		s := f.qtb[k]
		for t := 1; t < r.nnz(); t++ {
			s -= r.vals[t] * x[r.cols[t]]
		}
		x[k] = s / r.vals[0]
	}
	return x
}

// ApplyQT replays the rotation log on a fresh length-m vector, producing
// the leading-n coordinates of Qᵀv (the part that multiplies R). It
// demonstrates that the stored Q factor is functional — exactly the storage
// SuiteSparseQR pays for and Table XI charges.
func (f *Factor) ApplyQT(v []float64) ([]float64, error) {
	if len(v) != f.m {
		return nil, fmt.Errorf("sparseqr: ApplyQT len(v)=%d, want %d", len(v), f.m)
	}
	out := make([]float64, f.n)
	for _, log := range f.rotLog {
		carry := v[log.srcRow]
		for _, rot := range log.rots {
			out[rot.pivot], carry =
				rot.c*out[rot.pivot]+rot.s*carry,
				-rot.s*out[rot.pivot]+rot.c*carry
		}
		if log.deposit >= 0 {
			out[log.deposit] = carry
		}
	}
	return out, nil
}

// Stats returns the cost/footprint summary.
func (f *Factor) Stats() Stats {
	var rnnz int64
	for _, r := range f.rrows {
		if r != nil {
			rnnz += int64(r.nnz())
		}
	}
	return Stats{
		RNNZ:        rnnz,
		PeakRNNZ:    f.peakNNZ,
		Rotations:   f.rotCount,
		Flops:       f.flops,
		MemoryBytes: f.peakNNZ*16 + f.rotCount*24 + int64(f.n)*8,
	}
}

// RNNZ returns the stored entries of R including fill-in.
func (f *Factor) RNNZ() int64 { return f.Stats().RNNZ }

// RDense materialises R as a dense n×n upper-triangular matrix (for use as
// a preconditioner or in distortion estimation; n is assumed moderate).
func (f *Factor) RDense() *dense.Matrix {
	r := dense.NewMatrix(f.n, f.n)
	for k := 0; k < f.n; k++ {
		row := f.rrows[k]
		if row == nil {
			continue
		}
		for t := 0; t < row.nnz(); t++ {
			r.Set(k, row.cols[t], row.vals[t])
		}
	}
	return r
}
