package wire

import (
	"bytes"
	"errors"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

func refTestMatrix(t *testing.T) *sparse.CSC {
	t.Helper()
	a, err := sparse.NewCSC(5, 4,
		[]int{0, 2, 2, 3, 5},
		[]int{0, 3, 2, 1, 4},
		[]float64{1.5, -2, 3, 0.25, -0})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMatrixPutRoundtrip(t *testing.T) {
	a := refTestMatrix(t)
	payload := AppendMatrixPut(nil, a)
	got, err := DecodeMatrixPut(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != a.Fingerprint() {
		t.Fatal("matrix-put roundtrip changed the matrix")
	}
	if !bytes.Equal(AppendMatrixPut(nil, got), payload) {
		t.Fatal("matrix-put re-encode differs")
	}
}

func TestMatrixInfoRoundtrip(t *testing.T) {
	for _, r := range []MatrixInfo{
		{Status: StatusOK, Fp: sparse.Fingerprint{M: 9, N: 4, NNZ: 7, Hash: 0xdeadbeefcafef00d}, Bytes: 312, Created: true},
		{Status: StatusOK, Fp: sparse.Fingerprint{}, Bytes: 0, Created: false},
		{Status: StatusNotFound, Detail: "no such matrix"},
		{Status: StatusInvalidMatrix, Detail: ""},
	} {
		payload := AppendMatrixInfo(nil, &r)
		got, err := DecodeMatrixInfo(payload)
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if *got != r {
			t.Fatalf("roundtrip %+v != %+v", *got, r)
		}
		if !bytes.Equal(AppendMatrixInfo(nil, got), payload) {
			t.Fatalf("matrix-info re-encode differs for %+v", r)
		}
	}
}

func TestMatrixInfoRejectsBadCreatedFlag(t *testing.T) {
	r := MatrixInfo{Status: StatusOK, Fp: sparse.Fingerprint{M: 1, N: 1, NNZ: 1, Hash: 5}, Bytes: 24}
	payload := AppendMatrixInfo(nil, &r)
	payload[len(payload)-1] = 2
	if _, err := DecodeMatrixInfo(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("created flag 2 must be ErrMalformed, got %v", err)
	}
}

func TestSketchRefRoundtrip(t *testing.T) {
	r := SketchRefRequest{
		D: 16,
		Opts: core.Options{
			Seed: 99, Dist: rng.SJLT, Source: rng.SourcePhilox,
			Sparsity: 4, BlockD: 8, Workers: 3, Timed: true,
		},
		Fp: sparse.Fingerprint{M: 4096, N: 512, NNZ: 81920, Hash: 0x1234567890abcdef},
	}
	payload := AppendSketchRef(nil, &r)
	if len(payload) != requestFixedSize+fingerprintWireSize {
		t.Fatalf("sketch-ref payload %d bytes, want %d (O(1) by construction)",
			len(payload), requestFixedSize+fingerprintWireSize)
	}
	got, err := DecodeSketchRef(payload)
	if err != nil {
		t.Fatal(err)
	}
	if *got != r {
		t.Fatalf("roundtrip %+v != %+v", *got, r)
	}
	if !bytes.Equal(AppendSketchRef(nil, got), payload) {
		t.Fatal("sketch-ref re-encode differs")
	}
	// Truncated fingerprint: exact length is enforced.
	if _, err := DecodeSketchRef(payload[:len(payload)-1]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated sketch-ref must be ErrMalformed, got %v", err)
	}
	// Domain guards run on the shared prefix: an out-of-domain distribution
	// is rejected exactly like an inline request's.
	bad := r
	bad.Opts.Dist = rng.CountSketch + 1
	if _, err := DecodeSketchRef(AppendSketchRef(nil, &bad)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("out-of-domain dist must be ErrMalformed, got %v", err)
	}
}

func TestMatrixDeltaRoundtrip(t *testing.T) {
	delta := refTestMatrix(t)
	base := sparse.Fingerprint{M: delta.M, N: delta.N, NNZ: 3, Hash: 77}
	r := MatrixDelta{Fp: base, Delta: delta}
	payload := AppendMatrixDelta(nil, &r)
	got, err := DecodeMatrixDelta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fp != base || got.Delta.Fingerprint() != delta.Fingerprint() {
		t.Fatal("matrix-delta roundtrip mismatch")
	}
	if !bytes.Equal(AppendMatrixDelta(nil, got), payload) {
		t.Fatal("matrix-delta re-encode differs")
	}
	// The delta's shape must match the base fingerprint it addresses.
	wrong := MatrixDelta{Fp: sparse.Fingerprint{M: delta.M + 1, N: delta.N, NNZ: 3, Hash: 77}, Delta: delta}
	if _, err := DecodeMatrixDelta(AppendMatrixDelta(nil, &wrong)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("shape-mismatched delta must be ErrMalformed, got %v", err)
	}
}

func TestStatusNotFoundTaxonomy(t *testing.T) {
	if got := StatusOf(store.ErrNotFound); got != StatusNotFound {
		t.Fatalf("StatusOf(store.ErrNotFound) = %v, want StatusNotFound", got)
	}
	err := StatusNotFound.Err("gone")
	if !errors.Is(err, store.ErrNotFound) {
		t.Fatal("StatusNotFound must unwrap to store.ErrNotFound across the network")
	}
	if StatusNotFound.Retryable() {
		t.Fatal("StatusNotFound must not be blindly retryable (the cure is an upload, not a resend)")
	}
	// The not-found error form survives a response roundtrip.
	payload := AppendResponse(nil, &SketchResponse{Status: StatusNotFound, Detail: "x"})
	resp, derr := DecodeResponse(payload)
	if derr != nil {
		t.Fatal(derr)
	}
	if !errors.Is(resp.Err(), store.ErrNotFound) {
		t.Fatal("decoded not-found response must unwrap to store.ErrNotFound")
	}
}

func TestFingerprintFormatParse(t *testing.T) {
	fp := sparse.Fingerprint{M: 4096, N: 512, NNZ: 81920, Hash: 0x00c0ffee00c0ffee}
	s := FormatFingerprint(fp)
	got, err := ParseFingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatalf("parse(format(fp)) = %+v, want %+v", got, fp)
	}
	for _, bad := range []string{
		"", "1-2-3", "1-2-3-4-5", "a-2-3-00c0ffee00c0ffee",
		"1-2-3-xyz", "1-2-3-ff", "-1-2-3-00c0ffee00c0ffee",
		"1-2-3-00c0ffee00c0ffe", // 15 hex digits
	} {
		if _, err := ParseFingerprint(bad); !errors.Is(err, ErrMalformed) {
			t.Fatalf("ParseFingerprint(%q) = %v, want ErrMalformed", bad, err)
		}
	}
}
