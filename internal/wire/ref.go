package wire

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sketchsp/internal/core"
	"sketchsp/internal/sparse"
)

// By-reference messages (version 3): the content-addressed leg of the
// protocol. A client uploads a matrix once (MsgMatrixPut), then asks for
// sketches by the 32-byte fingerprint (MsgSketchRef) — repeat traffic drops
// from O(nnz(A)) to O(1) bytes per request — and streams updates as sparse
// deltas (MsgMatrixDelta) that the server folds into stored state by
// linearity, Â(A+ΔA) = Â(A) + S·ΔA.
//
// Payload layouts:
//
//	MsgMatrixPut:    CSC payload (exactly; answered with MsgMatrixInfo)
//
//	MsgMatrixInfo:   u8 status
//	                 status == StatusOK:  u64 m | u64 n | u64 nnz |
//	                                      u64 hash | i64 bytes | u8 created
//	                 status != StatusOK:  u32 detailLen | detail bytes
//
//	MsgSketchRef:    request fixed prefix (d, seed, options, flags — byte-
//	                 identical to MsgSketchRequest's) | u64 m | u64 n |
//	                 u64 nnz | u64 hash   (exact length; answered with
//	                 MsgSketchResponse)
//
//	MsgMatrixDelta:  u64 m | u64 n | u64 nnz | u64 hash (the BASE matrix's
//	                 fingerprint) | CSC payload of ΔA (same shape as the
//	                 base; answered with MsgMatrixInfo for A+ΔA)
//
// The error form of MsgMatrixInfo matches MsgSketchResponse's exactly, so
// server-side failures emitted before the frame type is known still decode
// on every path.

// fingerprintWireSize is the encoded size of a sparse.Fingerprint:
// m, n, nnz, hash as four u64 words.
const fingerprintWireSize = 4 * 8

// SketchRefRequest is the decoded form of a MsgSketchRef payload: a sketch
// request whose matrix is named by fingerprint instead of embedded.
type SketchRefRequest struct {
	D    int
	Opts core.Options
	Fp   sparse.Fingerprint
}

// MatrixInfo is the decoded form of a MsgMatrixInfo payload: the outcome of
// a matrix put or delta. A non-OK Status carries only Detail; StatusOK
// carries the stored matrix's identity, footprint, and whether the
// operation inserted it (Created=false: already resident).
type MatrixInfo struct {
	Status  Status
	Detail  string
	Fp      sparse.Fingerprint
	Bytes   int64
	Created bool
}

// Err converts the outcome into an error (nil for StatusOK), unwrapping to
// the canonical sentinel of the status.
func (r *MatrixInfo) Err() error { return r.Status.Err(r.Detail) }

// MatrixDelta is the decoded form of a MsgMatrixDelta payload: a sparse
// update ΔA addressed to the stored matrix with fingerprint Fp.
type MatrixDelta struct {
	Fp    sparse.Fingerprint
	Delta *sparse.CSC
}

// appendFingerprint appends fp's wire form to dst.
func appendFingerprint(dst []byte, fp sparse.Fingerprint) []byte {
	dst = appendU64(dst, uint64(int64(fp.M)))
	dst = appendU64(dst, uint64(int64(fp.N)))
	dst = appendU64(dst, uint64(int64(fp.NNZ)))
	return appendU64(dst, fp.Hash)
}

// decodeFingerprint parses fingerprintWireSize bytes (caller guarantees the
// length) and rejects out-of-domain dimensions, mirroring the CSC decoder's
// guards so a reference can never name a shape an upload could not have.
func decodeFingerprint(payload []byte) (sparse.Fingerprint, error) {
	m := getU64(payload[0:])
	n := getU64(payload[8:])
	nnz := getU64(payload[16:])
	hash := getU64(payload[24:])
	if m > MaxDim || n > MaxDim {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint dims %dx%d exceed MaxDim", ErrMalformed, m, n)
	}
	// The same ceiling as every other dimension: a fingerprint naming more
	// stored entries than MaxDim could never match a decodable upload.
	if nnz > MaxDim {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint nnz %d out of domain", ErrMalformed, nnz)
	}
	return sparse.Fingerprint{M: int(m), N: int(n), NNZ: int(nnz), Hash: hash}, nil
}

// AppendMatrixPut appends a matrix-put payload (the CSC payload verbatim).
func AppendMatrixPut(dst []byte, a *sparse.CSC) []byte {
	return AppendCSC(dst, a)
}

// DecodeMatrixPut decodes a matrix-put payload into a fresh matrix.
func DecodeMatrixPut(payload []byte) (*sparse.CSC, error) {
	return DecodeCSC(payload)
}

// AppendMatrixInfo appends r's matrix-info payload to dst.
func AppendMatrixInfo(dst []byte, r *MatrixInfo) []byte {
	dst = append(dst, byte(r.Status))
	if r.Status != StatusOK {
		dst = appendU32(dst, uint32(len(r.Detail)))
		return append(dst, r.Detail...)
	}
	dst = appendFingerprint(dst, r.Fp)
	dst = appendU64(dst, uint64(r.Bytes))
	if r.Created {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeMatrixInfo decodes a matrix-info payload.
func DecodeMatrixInfo(payload []byte) (*MatrixInfo, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty matrix-info payload", ErrMalformed)
	}
	st := Status(payload[0])
	if st > maxStatus {
		return nil, fmt.Errorf("%w: unknown status %d", ErrMalformed, payload[0])
	}
	r := &MatrixInfo{Status: st}
	if st != StatusOK {
		if len(payload) < 5 {
			return nil, fmt.Errorf("%w: truncated matrix-info error", ErrMalformed)
		}
		n := uint64(getU32(payload[1:5]))
		if uint64(len(payload)-5) != n {
			return nil, fmt.Errorf("%w: matrix-info detail %d bytes, want %d", ErrMalformed, len(payload)-5, n)
		}
		r.Detail = string(payload[5:])
		return r, nil
	}
	const okSize = 1 + fingerprintWireSize + 8 + 1
	if len(payload) != okSize {
		return nil, fmt.Errorf("%w: matrix-info payload %d bytes, want %d", ErrMalformed, len(payload), okSize)
	}
	fp, err := decodeFingerprint(payload[1:])
	if err != nil {
		return nil, err
	}
	bytes := int64(getU64(payload[1+fingerprintWireSize:]))
	if bytes < 0 {
		return nil, fmt.Errorf("%w: negative matrix-info bytes", ErrMalformed)
	}
	switch payload[okSize-1] {
	case 0:
	case 1:
		r.Created = true
	default:
		return nil, fmt.Errorf("%w: matrix-info created flag %d", ErrMalformed, payload[okSize-1])
	}
	r.Fp = fp
	r.Bytes = bytes
	return r, nil
}

// AppendSketchRef appends a sketch-by-reference payload to dst: the same
// fixed (d, options) prefix as AppendRequest, then the fingerprint in place
// of the matrix.
func AppendSketchRef(dst []byte, r *SketchRefRequest) []byte {
	dst = appendU64(dst, uint64(r.D))
	dst = appendU64(dst, r.Opts.Seed)
	dst = appendU64(dst, uint64(int64(r.Opts.Algorithm)))
	dst = appendU64(dst, uint64(int64(r.Opts.Dist)))
	dst = appendU64(dst, uint64(int64(r.Opts.Source)))
	dst = appendU64(dst, uint64(int64(r.Opts.BlockD)))
	dst = appendU64(dst, uint64(int64(r.Opts.BlockN)))
	dst = appendU64(dst, uint64(int64(r.Opts.Workers)))
	dst = appendU64(dst, uint64(int64(r.Opts.Sched)))
	dst = appendU64(dst, uint64(int64(r.Opts.Sparsity)))
	dst = appendU64(dst, math.Float64bits(r.Opts.RNGCost))
	var flags byte
	if r.Opts.Timed {
		flags |= 1
	}
	if r.Opts.TuneBlockN {
		flags |= 2
	}
	dst = append(dst, flags)
	return appendFingerprint(dst, r.Fp)
}

// DecodeSketchRef decodes a sketch-by-reference payload.
func DecodeSketchRef(payload []byte) (*SketchRefRequest, error) {
	if len(payload) != requestFixedSize+fingerprintWireSize {
		return nil, fmt.Errorf("%w: sketch-ref payload %d bytes, want %d", ErrMalformed, len(payload), requestFixedSize+fingerprintWireSize)
	}
	d, opts, err := decodeRequestFixed(payload)
	if err != nil {
		return nil, err
	}
	fp, err := decodeFingerprint(payload[requestFixedSize:])
	if err != nil {
		return nil, err
	}
	return &SketchRefRequest{D: d, Opts: opts, Fp: fp}, nil
}

// AppendMatrixDelta appends r's matrix-delta payload to dst.
func AppendMatrixDelta(dst []byte, r *MatrixDelta) []byte {
	dst = appendFingerprint(dst, r.Fp)
	return AppendCSC(dst, r.Delta)
}

// DecodeMatrixDelta decodes a matrix-delta payload. The delta matrix is
// freshly allocated — deltas are applied asynchronously to stored state, so
// they must never alias pooled request scratch.
func DecodeMatrixDelta(payload []byte) (*MatrixDelta, error) {
	if len(payload) < fingerprintWireSize {
		return nil, fmt.Errorf("%w: matrix-delta payload %d bytes, want >= %d", ErrMalformed, len(payload), fingerprintWireSize)
	}
	fp, err := decodeFingerprint(payload)
	if err != nil {
		return nil, err
	}
	delta, err := DecodeCSC(payload[fingerprintWireSize:])
	if err != nil {
		return nil, err
	}
	if delta.M != fp.M || delta.N != fp.N {
		return nil, fmt.Errorf("%w: delta shape %dx%d does not match base fingerprint %dx%d",
			ErrMalformed, delta.M, delta.N, fp.M, fp.N)
	}
	return &MatrixDelta{Fp: fp, Delta: delta}, nil
}

// EncodeMatrixPutFrame returns a complete matrix-put frame.
func EncodeMatrixPutFrame(a *sparse.CSC) ([]byte, error) {
	payload := AppendMatrixPut(make([]byte, 0, cscPayloadSize(a)), a)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgMatrixPut, payload)
}

// SketchRefWireSize is the size of a complete sketch-by-reference frame:
// header + fixed request prefix + fingerprint, independent of nnz(A). The
// coordinator's traffic accounting and the bench replay both quote it.
const SketchRefWireSize = HeaderSize + requestFixedSize + fingerprintWireSize

// EncodeSketchRefFrame returns a complete sketch-by-reference frame — the
// whole request is SketchRefWireSize bytes regardless of the matrix size,
// which is the entire point of the by-reference protocol.
func EncodeSketchRefFrame(r *SketchRefRequest) ([]byte, error) {
	payload := AppendSketchRef(make([]byte, 0, requestFixedSize+fingerprintWireSize), r)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgSketchRef, payload)
}

// EncodeMatrixDeltaFrame returns a complete matrix-delta frame.
func EncodeMatrixDeltaFrame(r *MatrixDelta) ([]byte, error) {
	payload := AppendMatrixDelta(make([]byte, 0, fingerprintWireSize+cscPayloadSize(r.Delta)), r)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgMatrixDelta, payload)
}

// FormatFingerprint renders fp for a URL path segment:
// "m-n-nnz-hash16hex" (e.g. "4096-512-81920-9f0c…"). ParseFingerprint is
// the strict inverse; the PATCH handler cross-checks the path fingerprint
// against the frame's.
func FormatFingerprint(fp sparse.Fingerprint) string {
	return fmt.Sprintf("%d-%d-%d-%016x", fp.M, fp.N, fp.NNZ, fp.Hash)
}

// ParseFingerprint parses FormatFingerprint's form. Rejections are
// ErrMalformed, like every other decoder in the package.
func ParseFingerprint(s string) (sparse.Fingerprint, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint %q: want m-n-nnz-hash", ErrMalformed, s)
	}
	m, err1 := strconv.ParseInt(parts[0], 10, 64)
	n, err2 := strconv.ParseInt(parts[1], 10, 64)
	nnz, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint %q: bad integer field", ErrMalformed, s)
	}
	if len(parts[3]) != 16 {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint %q: hash must be 16 hex digits", ErrMalformed, s)
	}
	hash, err := strconv.ParseUint(parts[3], 16, 64)
	if err != nil {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint %q: bad hash", ErrMalformed, s)
	}
	if m < 0 || m > MaxDim || n < 0 || n > MaxDim || nnz < 0 {
		return sparse.Fingerprint{}, fmt.Errorf("%w: fingerprint %q: dims out of domain", ErrMalformed, s)
	}
	return sparse.Fingerprint{M: int(m), N: int(n), NNZ: int(nnz), Hash: hash}, nil
}
