package wire

import (
	"fmt"
	"math"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// MaxDim bounds any declared matrix dimension (2^40 rows or columns). The
// arrays a decoder allocates are all bounded by the payload length itself,
// but the CSC row count m is not length-bound (a 10⁹×3 matrix with five
// nonzeros is a legitimately tiny message), so it gets an explicit ceiling.
const MaxDim = 1 << 40

// Decoding is *total* and *strict*: every length is cross-checked against
// the actual payload size before anything is allocated (a corrupted count
// cannot demand memory the bytes don't back), every enum is checked against
// its domain (a corrupted Options can never reach rng.NewSource, which
// panics on unknown kinds), and the embedded CSC is fully re-validated
// (sorted unique in-range row indices) so the kernels downstream never see
// a structurally broken matrix. Payloads must also be *exact*: trailing
// garbage is rejected, which makes decode(encode(x)) == x the only fixed
// point and lets the fuzzer compare re-encoded bytes directly.

// DecodeCSC decodes a CSC payload into a freshly allocated matrix.
func DecodeCSC(payload []byte) (*sparse.CSC, error) {
	a := new(sparse.CSC)
	if err := DecodeCSCInto(a, payload); err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeCSCInto decodes a CSC payload into dst, reusing the capacity of
// dst's slices — the hot-path form the server's request scratch pool uses.
func DecodeCSCInto(dst *sparse.CSC, payload []byte) error {
	if len(payload) < 24 {
		return fmt.Errorf("%w: CSC payload %d bytes, want >= 24", ErrMalformed, len(payload))
	}
	m := getU64(payload[0:])
	n := getU64(payload[8:])
	nnz := getU64(payload[16:])
	rem := uint64(len(payload) - 24)
	if m > MaxDim || n > MaxDim {
		return fmt.Errorf("%w: CSC dims %dx%d exceed MaxDim", ErrMalformed, m, n)
	}
	// Every ColPtr entry costs 8 bytes and every stored entry 16, so any
	// consistent (n, nnz) is bounded by the payload before we multiply.
	if n+1 > rem/8 || nnz > rem/16 {
		return fmt.Errorf("%w: CSC n=%d nnz=%d inconsistent with %d payload bytes", ErrMalformed, n, nnz, rem)
	}
	if need := 8*(n+1) + 16*nnz; need != rem {
		return fmt.Errorf("%w: CSC payload %d bytes, want %d", ErrMalformed, rem, need)
	}
	dst.M, dst.N = int(m), int(n)
	dst.ColPtr = intSliceInto(dst.ColPtr, int(n)+1)
	dst.RowIdx = intSliceInto(dst.RowIdx, int(nnz))
	dst.Val = f64SliceInto(dst.Val, int(nnz))
	off := 24
	for i := range dst.ColPtr {
		dst.ColPtr[i] = int(int64(getU64(payload[off:])))
		off += 8
	}
	for i := range dst.RowIdx {
		dst.RowIdx[i] = int(int64(getU64(payload[off:])))
		off += 8
	}
	for i := range dst.Val {
		dst.Val[i] = math.Float64frombits(getU64(payload[off:]))
		off += 8
	}
	if err := dst.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return nil
}

// DecodeDense decodes a dense payload into a freshly allocated matrix.
func DecodeDense(payload []byte) (*dense.Matrix, error) {
	m := new(dense.Matrix)
	if err := DecodeDenseInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeDenseInto decodes a dense payload into dst, reusing Data capacity.
// The decoded matrix always has a tight stride.
func DecodeDenseInto(dst *dense.Matrix, payload []byte) error {
	if len(payload) < 16 {
		return fmt.Errorf("%w: dense payload %d bytes, want >= 16", ErrMalformed, len(payload))
	}
	rows := getU64(payload[0:])
	cols := getU64(payload[8:])
	rem := uint64(len(payload) - 16)
	if rows > MaxDim || cols > MaxDim {
		return fmt.Errorf("%w: dense dims %dx%d exceed MaxDim", ErrMalformed, rows, cols)
	}
	elems := rem / 8
	if rows != 0 && cols != 0 && (rows > elems || cols > elems/rows) {
		return fmt.Errorf("%w: dense %dx%d inconsistent with %d payload bytes", ErrMalformed, rows, cols, rem)
	}
	if need := rows * cols * 8; need != rem {
		return fmt.Errorf("%w: dense payload %d bytes, want %d", ErrMalformed, rem, need)
	}
	dst.Rows, dst.Cols = int(rows), int(cols)
	dst.Stride = int(rows)
	dst.Data = f64SliceInto(dst.Data, int(rows)*int(cols))
	off := 16
	for i := range dst.Data {
		dst.Data[i] = math.Float64frombits(getU64(payload[off:]))
		off += 8
	}
	return nil
}

// DecodeRequest decodes a single-request payload, allocating the matrix.
func DecodeRequest(payload []byte) (SketchRequest, error) {
	var req SketchRequest
	err := DecodeRequestInto(&req, payload)
	return req, err
}

// DecodeRequestInto decodes a single-request payload into dst, reusing
// dst.A's slice capacity when dst.A is non-nil (the server's pooled path).
func DecodeRequestInto(dst *SketchRequest, payload []byte) error {
	if len(payload) < requestFixedSize {
		return fmt.Errorf("%w: request payload %d bytes, want >= %d", ErrMalformed, len(payload), requestFixedSize)
	}
	d, opts, err := decodeRequestFixed(payload)
	if err != nil {
		return err
	}
	dst.D = d
	dst.Opts = opts
	if dst.A == nil {
		dst.A = new(sparse.CSC)
	}
	return DecodeCSCInto(dst.A, payload[requestFixedSize:])
}

// decodeRequestFixed parses the requestFixedSize (d, options) prefix shared
// by MsgSketchRequest and MsgSketchRef payloads. The caller guarantees
// len(payload) >= requestFixedSize.
func decodeRequestFixed(payload []byte) (int, core.Options, error) {
	d := getU64(payload[0:])
	if d > MaxDim {
		return 0, core.Options{}, fmt.Errorf("%w: sketch size %d exceeds MaxDim", ErrMalformed, d)
	}
	opts, err := decodeSketchOpts(payload[8:])
	return int(d), opts, err
}

// decodeSketchOpts parses an optsWireSize core.Options block. The caller
// guarantees len(payload) >= optsWireSize.
func decodeSketchOpts(payload []byte) (core.Options, error) {
	var opts core.Options
	opts.Seed = getU64(payload[0:])
	alg := int64(getU64(payload[8:]))
	dist := int64(getU64(payload[16:]))
	src := int64(getU64(payload[24:]))
	blockD := int64(getU64(payload[32:]))
	blockN := int64(getU64(payload[40:]))
	workers := int64(getU64(payload[48:]))
	sched := int64(getU64(payload[56:]))
	sparsity := int64(getU64(payload[64:]))
	rngCost := math.Float64frombits(getU64(payload[72:]))
	flags := payload[80]

	// Enum domains. These guards are load-bearing, not cosmetic: an
	// out-of-domain Source or Dist would panic inside rng.NewSource /
	// the sampler's fill switch, which a server facing untrusted bytes
	// cannot afford. The Dist ceiling is rng.CountSketch, the last member
	// of the sparse sketch family — an unknown enum value is rejected
	// here, never silently mapped to a default distribution.
	switch {
	case alg < int64(core.AlgAuto) || alg > int64(core.Alg4):
		return opts, fmt.Errorf("%w: algorithm %d out of domain", ErrMalformed, alg)
	case dist < int64(rng.Uniform11) || dist > int64(rng.CountSketch):
		return opts, fmt.Errorf("%w: distribution %d out of domain", ErrMalformed, dist)
	case src < int64(rng.SourceBatchXoshiro) || src > int64(rng.SourcePhilox):
		return opts, fmt.Errorf("%w: rng source %d out of domain", ErrMalformed, src)
	case sched < int64(core.SchedWeighted) || sched > int64(core.SchedUniform):
		return opts, fmt.Errorf("%w: scheduler %d out of domain", ErrMalformed, sched)
	case blockD < 0 || blockD > MaxDim || blockN < 0 || blockN > MaxDim:
		return opts, fmt.Errorf("%w: block sizes (%d, %d) out of domain", ErrMalformed, blockD, blockN)
	case workers < 0 || workers > 1<<20:
		return opts, fmt.Errorf("%w: workers %d out of domain", ErrMalformed, workers)
	case sparsity < 0 || sparsity > MaxDim:
		return opts, fmt.Errorf("%w: sparsity %d out of domain", ErrMalformed, sparsity)
	case math.IsNaN(rngCost) || math.IsInf(rngCost, 0) || rngCost < 0:
		return opts, fmt.Errorf("%w: non-finite or negative RNGCost", ErrMalformed)
	case flags&^3 != 0:
		return opts, fmt.Errorf("%w: unknown request flags %#x", ErrMalformed, flags)
	}
	opts.Algorithm = core.Algorithm(alg)
	opts.Dist = rng.Distribution(dist)
	opts.Source = rng.SourceKind(src)
	opts.BlockD = int(blockD)
	opts.BlockN = int(blockN)
	opts.Workers = int(workers)
	opts.Sched = core.Scheduler(sched)
	opts.Sparsity = int(sparsity)
	opts.RNGCost = rngCost
	opts.Timed = flags&1 != 0
	opts.TuneBlockN = flags&2 != 0
	return opts, nil
}

// DecodeResponse decodes a single-response payload.
func DecodeResponse(payload []byte) (*SketchResponse, error) {
	r := new(SketchResponse)
	if err := DecodeResponseInto(r, payload); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeResponseInto decodes a single-response payload into dst, reusing
// dst.Ahat's Data capacity when dst.Ahat is non-nil.
func DecodeResponseInto(dst *SketchResponse, payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("%w: empty response payload", ErrMalformed)
	}
	st := Status(payload[0])
	if st > maxStatus {
		return fmt.Errorf("%w: unknown status %d", ErrMalformed, payload[0])
	}
	dst.Status = st
	if st != StatusOK {
		if len(payload) < 5 {
			return fmt.Errorf("%w: truncated error response", ErrMalformed)
		}
		n := uint64(getU32(payload[1:5]))
		if uint64(len(payload)-5) != n {
			return fmt.Errorf("%w: error detail %d bytes, want %d", ErrMalformed, len(payload)-5, n)
		}
		dst.Detail = string(payload[5:])
		dst.Stats = core.Stats{}
		dst.Ahat = nil
		return nil
	}
	const statsSize = 6*8 + 8
	if len(payload) < 1+statsSize {
		return fmt.Errorf("%w: truncated response stats", ErrMalformed)
	}
	samples := int64(getU64(payload[1:]))
	flops := int64(getU64(payload[9:]))
	sampleNS := int64(getU64(payload[17:]))
	convertNS := int64(getU64(payload[25:]))
	totalNS := int64(getU64(payload[33:]))
	steals := int64(getU64(payload[41:]))
	imb := math.Float64frombits(getU64(payload[49:]))
	if samples < 0 || flops < 0 || sampleNS < 0 || convertNS < 0 || totalNS < 0 || steals < 0 {
		return fmt.Errorf("%w: negative response stats", ErrMalformed)
	}
	if math.IsNaN(imb) || math.IsInf(imb, 0) || imb < 0 {
		return fmt.Errorf("%w: non-finite or negative imbalance", ErrMalformed)
	}
	dst.Detail = ""
	dst.Stats = core.Stats{
		Samples:     samples,
		Flops:       flops,
		SampleTime:  time.Duration(sampleNS),
		ConvertTime: time.Duration(convertNS),
		Total:       time.Duration(totalNS),
		Steals:      steals,
		Imbalance:   imb,
	}
	if dst.Ahat == nil {
		dst.Ahat = new(dense.Matrix)
	}
	return DecodeDenseInto(dst.Ahat, payload[1+statsSize:])
}

// PeekStatus reads a response payload's status byte without decoding the
// rest. The client's retry loop classifies responses with it so a
// successful response is not fully decoded twice (the dense Â dominates
// decode cost; the status is one byte).
func PeekStatus(payload []byte) (Status, error) {
	if len(payload) < 1 {
		return 0, fmt.Errorf("%w: empty response payload", ErrMalformed)
	}
	st := Status(payload[0])
	if st > maxStatus {
		return 0, fmt.Errorf("%w: unknown status %d", ErrMalformed, payload[0])
	}
	return st, nil
}

// SplitBatchPayload parses a batch payload into its per-item payload views
// without decoding the items. The views alias payload.
func SplitBatchPayload(payload []byte) ([][]byte, error) {
	_, items, err := splitBatch(payload)
	return items, err
}

// DecodeBatchRequest decodes a batch-request payload.
func DecodeBatchRequest(payload []byte) ([]SketchRequest, error) {
	n, items, err := splitBatch(payload)
	if err != nil {
		return nil, err
	}
	reqs := make([]SketchRequest, n)
	for i, item := range items {
		if err := DecodeRequestInto(&reqs[i], item); err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
	}
	return reqs, nil
}

// DecodeBatchResponse decodes a batch-response payload.
func DecodeBatchResponse(payload []byte) ([]SketchResponse, error) {
	n, items, err := splitBatch(payload)
	if err != nil {
		return nil, err
	}
	rs := make([]SketchResponse, n)
	for i, item := range items {
		if err := DecodeResponseInto(&rs[i], item); err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
	}
	return rs, nil
}

// splitBatch parses the count-prefixed item list of a batch payload into
// per-item views (no copying) and enforces exact consumption.
func splitBatch(payload []byte) (int, [][]byte, error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("%w: batch payload %d bytes, want >= 4", ErrMalformed, len(payload))
	}
	count := uint64(getU32(payload))
	rest := payload[4:]
	// Each item costs at least its own 4-byte length prefix.
	if count > uint64(len(rest))/4 {
		return 0, nil, fmt.Errorf("%w: batch count %d inconsistent with %d payload bytes", ErrMalformed, count, len(rest))
	}
	items := make([][]byte, count)
	for i := range items {
		if len(rest) < 4 {
			return 0, nil, fmt.Errorf("%w: truncated batch item %d", ErrMalformed, i)
		}
		n := uint64(getU32(rest))
		rest = rest[4:]
		if n > uint64(len(rest)) {
			return 0, nil, fmt.Errorf("%w: batch item %d claims %d of %d bytes", ErrMalformed, i, n, len(rest))
		}
		items[i] = rest[:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformed, len(rest))
	}
	return int(count), items, nil
}

func intSliceInto(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func f64SliceInto(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
