package wire

import (
	"fmt"
	"math"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
)

// Shard messages are the coordinator↔worker leg of the distributed serving
// layer: a coordinator splits A into column shards A[:, j0:j1], ships each
// shard to a worker as a MsgShardRequest, and the worker answers with the
// partial sketch S·A[:, j0:j1] — which, because S[i,j] depends only on the
// global row index j (never on which columns ride along), is bit-identical
// to columns [j0, j1) of the full sketch. The shard payloads are versioned
// and fuzzed like the rest of the codec.
//
// Shard request (MsgShardRequest):
//
//	u64 j0 | u64 nTotal | single-request payload (to end of frame)
//
// j0 is the shard's first column in the full matrix and nTotal the full
// matrix's column count; j0 + A.N <= nTotal is enforced on decode. The
// embedded request is byte-for-byte a MsgSketchRequest payload, so a worker
// executes it through the same plan-cache path as any other request.
//
// Shard response (MsgShardResponse):
//
//	u8 status
//	status == StatusOK:  u64 j0 | i64 samples | i64 flops | i64 sampleNS |
//	                     i64 convertNS | i64 totalNS | i64 steals |
//	                     f64 imbalance | dense payload (to end of frame)
//	status != StatusOK:  u32 detailLen | detailLen bytes of UTF-8 detail
//
// The error form matches MsgSketchResponse exactly, so a server-side error
// emitted before the frame type is known still decodes on the shard path.

// ShardRequest is the decoded form of a MsgShardRequest payload: the
// embedded single-sketch request plus the shard's placement in the full
// matrix.
type ShardRequest struct {
	J0     int // first column of the shard in the full matrix
	NTotal int // column count of the full matrix
	SketchRequest
}

// ShardResponse is the decoded form of a MsgShardResponse payload. A non-OK
// Status carries only Detail; StatusOK carries the partial sketch (the
// shard's d×(j1−j0) columns), its placement J0, and the execute Stats.
type ShardResponse struct {
	Status  Status
	Detail  string
	J0      int
	Stats   core.Stats
	Partial *dense.Matrix
}

// Err converts the response outcome into an error (nil for StatusOK),
// unwrapping to the canonical sentinel of the status.
func (r *ShardResponse) Err() error { return r.Status.Err(r.Detail) }

// shardRequestFixedSize is the (j0, nTotal) prefix before the embedded
// single-request payload.
const shardRequestFixedSize = 8 + 8

// AppendShardRequest appends r's shard-request payload to dst.
func AppendShardRequest(dst []byte, r *ShardRequest) []byte {
	dst = appendU64(dst, uint64(r.J0))
	dst = appendU64(dst, uint64(r.NTotal))
	return AppendRequest(dst, r.D, r.Opts, r.A)
}

// DecodeShardRequest decodes a shard-request payload, allocating the matrix.
func DecodeShardRequest(payload []byte) (*ShardRequest, error) {
	r := new(ShardRequest)
	if err := DecodeShardRequestInto(r, payload); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeShardRequestInto decodes a shard-request payload into dst, reusing
// dst.A's slice capacity when non-nil (the server's pooled path).
func DecodeShardRequestInto(dst *ShardRequest, payload []byte) error {
	if len(payload) < shardRequestFixedSize {
		return fmt.Errorf("%w: shard request payload %d bytes, want >= %d", ErrMalformed, len(payload), shardRequestFixedSize)
	}
	j0 := getU64(payload[0:])
	nTotal := getU64(payload[8:])
	if j0 > MaxDim || nTotal > MaxDim {
		return fmt.Errorf("%w: shard placement j0=%d nTotal=%d exceeds MaxDim", ErrMalformed, j0, nTotal)
	}
	if err := DecodeRequestInto(&dst.SketchRequest, payload[shardRequestFixedSize:]); err != nil {
		return err
	}
	if j0+uint64(dst.A.N) > nTotal {
		return fmt.Errorf("%w: shard [%d:%d) exceeds nTotal %d", ErrMalformed, j0, j0+uint64(dst.A.N), nTotal)
	}
	dst.J0 = int(j0)
	dst.NTotal = int(nTotal)
	return nil
}

// AppendShardResponse appends r's shard-response payload to dst.
func AppendShardResponse(dst []byte, r *ShardResponse) []byte {
	dst = append(dst, byte(r.Status))
	if r.Status != StatusOK {
		dst = appendU32(dst, uint32(len(r.Detail)))
		return append(dst, r.Detail...)
	}
	dst = appendU64(dst, uint64(r.J0))
	dst = appendU64(dst, uint64(r.Stats.Samples))
	dst = appendU64(dst, uint64(r.Stats.Flops))
	dst = appendU64(dst, uint64(r.Stats.SampleTime.Nanoseconds()))
	dst = appendU64(dst, uint64(r.Stats.ConvertTime.Nanoseconds()))
	dst = appendU64(dst, uint64(r.Stats.Total.Nanoseconds()))
	dst = appendU64(dst, uint64(r.Stats.Steals))
	dst = appendU64(dst, math.Float64bits(r.Stats.Imbalance))
	return AppendDense(dst, r.Partial)
}

// DecodeShardResponse decodes a shard-response payload.
func DecodeShardResponse(payload []byte) (*ShardResponse, error) {
	r := new(ShardResponse)
	if err := DecodeShardResponseInto(r, payload); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeShardResponseInto decodes a shard-response payload into dst, reusing
// dst.Partial's Data capacity when non-nil.
func DecodeShardResponseInto(dst *ShardResponse, payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("%w: empty shard response payload", ErrMalformed)
	}
	st := Status(payload[0])
	if st > maxStatus {
		return fmt.Errorf("%w: unknown status %d", ErrMalformed, payload[0])
	}
	dst.Status = st
	if st != StatusOK {
		if len(payload) < 5 {
			return fmt.Errorf("%w: truncated shard error response", ErrMalformed)
		}
		n := uint64(getU32(payload[1:5]))
		if uint64(len(payload)-5) != n {
			return fmt.Errorf("%w: shard error detail %d bytes, want %d", ErrMalformed, len(payload)-5, n)
		}
		dst.Detail = string(payload[5:])
		dst.J0 = 0
		dst.Stats = core.Stats{}
		dst.Partial = nil
		return nil
	}
	const fixed = 8 + 6*8 + 8 // j0, six integer stats, imbalance
	if len(payload) < 1+fixed {
		return fmt.Errorf("%w: truncated shard response stats", ErrMalformed)
	}
	j0 := getU64(payload[1:])
	samples := int64(getU64(payload[9:]))
	flops := int64(getU64(payload[17:]))
	sampleNS := int64(getU64(payload[25:]))
	convertNS := int64(getU64(payload[33:]))
	totalNS := int64(getU64(payload[41:]))
	steals := int64(getU64(payload[49:]))
	imb := math.Float64frombits(getU64(payload[57:]))
	if j0 > MaxDim {
		return fmt.Errorf("%w: shard j0 %d exceeds MaxDim", ErrMalformed, j0)
	}
	if samples < 0 || flops < 0 || sampleNS < 0 || convertNS < 0 || totalNS < 0 || steals < 0 {
		return fmt.Errorf("%w: negative shard response stats", ErrMalformed)
	}
	if math.IsNaN(imb) || math.IsInf(imb, 0) || imb < 0 {
		return fmt.Errorf("%w: non-finite or negative imbalance", ErrMalformed)
	}
	dst.Detail = ""
	dst.J0 = int(j0)
	dst.Stats = core.Stats{
		Samples:     samples,
		Flops:       flops,
		SampleTime:  time.Duration(sampleNS),
		ConvertTime: time.Duration(convertNS),
		Total:       time.Duration(totalNS),
		Steals:      steals,
		Imbalance:   imb,
	}
	if dst.Partial == nil {
		dst.Partial = new(dense.Matrix)
	}
	return DecodeDenseInto(dst.Partial, payload[1+fixed:])
}

// EncodeShardRequestFrame returns a complete shard-request frame, ready for
// an HTTP body. A shard too large for the 32-bit frame length fails with
// ErrTooLarge.
func EncodeShardRequestFrame(r *ShardRequest) ([]byte, error) {
	size := shardRequestFixedSize + requestFixedSize + cscPayloadSize(r.A)
	payload := AppendShardRequest(make([]byte, 0, size), r)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgShardRequest, payload)
}

// ShardRequestWireSize returns the exact on-the-wire frame size of r —
// header plus payload — without encoding. The coordinator's per-peer byte
// counters use it so metering costs no second serialization.
func ShardRequestWireSize(r *ShardRequest) int {
	return HeaderSize + shardRequestFixedSize + requestFixedSize + cscPayloadSize(r.A)
}
