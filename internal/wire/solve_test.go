package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/jobs"
	"sketchsp/internal/rng"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
)

func solveTestCSC(t *testing.T) *sparse.CSC {
	t.Helper()
	a, err := sparse.NewCSC(4, 2, []int{0, 2, 3}, []int{0, 3, 1}, []float64{1, -2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSolveRequestRoundtrip(t *testing.T) {
	a := solveTestCSC(t)
	cases := []*SolveRequest{
		{
			Method: SolveSAPQR, Gamma: 4, Atol: 1e-12, MaxIters: 100,
			Opts: core.Options{Dist: rng.Rademacher, Source: rng.SourcePhilox, Seed: 7},
			B:    []float64{1, 0, -2, 3.5}, A: a,
		},
		{
			Method: SolveSAPSVD, Async: true, SVDDrop: 1e-10,
			Opts: core.Options{Dist: rng.SJLT, Sparsity: 2},
			B:    []float64{}, A: a,
		},
		{
			Method: SolveRandSVD, Rank: 2, Oversample: 4, PowerIters: 1,
			Opts: core.Options{Dist: rng.Gaussian}, A: a,
		},
		{
			Method: SolveMinNorm, ByRef: true, Fp: a.Fingerprint(),
			B: []float64{1, 2},
		},
		{
			Method: SolveLSQRD, Async: true, ByRef: true, Fp: a.Fingerprint(),
			MaxIters: 7, B: []float64{0.25},
		},
	}
	for _, want := range cases {
		payload := AppendSolveRequest(nil, want)
		got, err := DecodeSolveRequest(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Method, err)
		}
		if !bytes.Equal(AppendSolveRequest(nil, got), payload) {
			t.Fatalf("%v: re-encode differs", want.Method)
		}
		if got.Method != want.Method || got.Async != want.Async || got.ByRef != want.ByRef {
			t.Fatalf("%v: envelope fields drifted: %+v", want.Method, got)
		}
		if want.ByRef && got.Fp != want.Fp {
			t.Fatalf("%v: fingerprint drifted", want.Method)
		}
		frame, err := EncodeSolveRequestFrame(want)
		if err != nil {
			t.Fatal(err)
		}
		typ, p2, rest, err := SplitFrame(frame, 1<<22)
		if err != nil || typ != MsgSolveRequest || len(rest) != 0 || !bytes.Equal(p2, payload) {
			t.Fatalf("%v: frame split mismatch (typ=%v err=%v)", want.Method, typ, err)
		}
	}
}

func TestSolveRequestRejectsDomainViolations(t *testing.T) {
	a := solveTestCSC(t)
	base := func() []byte {
		return AppendSolveRequest(nil, &SolveRequest{
			Method: SolveSAPQR, Gamma: 4, B: []float64{1, 2}, A: a,
		})
	}
	mutate := []struct {
		name string
		mut  func(p []byte) []byte
	}{
		{"bad-method", func(p []byte) []byte { p[0] = byte(maxSolveMethod) + 1; return p }},
		{"bad-flags", func(p []byte) []byte { p[1] |= 4; return p }},
		{"nan-gamma", func(p []byte) []byte {
			copy(p[2:10], appendU64(nil, 0x7ff8000000000001))
			return p
		}},
		{"negative-atol", func(p []byte) []byte {
			copy(p[10:18], appendU64(nil, 0x8000000000000001))
			return p
		}},
		{"svddrop-one", func(p []byte) []byte {
			copy(p[18:26], appendU64(nil, 0x3ff0000000000000)) // 1.0
			return p
		}},
		{"huge-maxiters", func(p []byte) []byte {
			copy(p[26:34], appendU64(nil, MaxDim+1))
			return p
		}},
		{"rhs-overclaim", func(p []byte) []byte {
			copy(p[solveFixedSize-8:solveFixedSize], appendU64(nil, 1<<50))
			return p
		}},
		{"truncated", func(p []byte) []byte { return p[:solveFixedSize-1] }},
	}
	for _, tc := range mutate {
		if _, err := DecodeSolveRequest(tc.mut(base())); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", tc.name, err)
		}
	}
	// By-ref frame with a trailing byte after the fingerprint.
	p := AppendSolveRequest(nil, &SolveRequest{
		Method: SolveSAPQR, ByRef: true, Fp: a.Fingerprint(), B: []float64{1},
	})
	if _, err := DecodeSolveRequest(append(p, 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("byref-trailing: want ErrMalformed, got %v", err)
	}
}

func TestSolveResponseRoundtrip(t *testing.T) {
	cases := []*SolveResponse{
		{
			Status: StatusOK,
			Info: SolveInfo{
				Method: SolveSAPQR, Converged: true, PrecondCached: true,
				SketchNS: 1000, FactorNS: 500, IterNS: 2000, TotalNS: 3500,
				Iters: 12, MemoryBytes: 4096, Residual: 3.5e-13,
			},
			X: []float64{1, -2, 0.5},
		},
		{
			Status: StatusOK,
			Info:   SolveInfo{Method: SolveLSQRD},
			X:      []float64{},
		},
		{
			Status: StatusOK,
			Info:   SolveInfo{Method: SolveRandSVD, TotalNS: 10},
			Factors: &RSVDFactors{
				U:     dense.NewMatrixFrom(3, 2, []float64{1, 0, 0, 0, 1, 0}),
				V:     dense.NewMatrixFrom(2, 2, []float64{0, 1, 1, 0}),
				Sigma: []float64{3, 0.5},
			},
		},
		{Status: StatusBadOptions, Detail: "solver: sketch is numerically rank deficient"},
		{Status: StatusOverloaded, Detail: ""},
	}
	for i, want := range cases {
		payload := AppendSolveResponse(nil, want)
		got, err := DecodeSolveResponse(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !bytes.Equal(AppendSolveResponse(nil, got), payload) {
			t.Fatalf("case %d: re-encode differs", i)
		}
		if got.Status != want.Status || got.Detail != want.Detail || got.Info != want.Info {
			t.Fatalf("case %d: fields drifted: %+v", i, got)
		}
		if want.Factors != nil {
			if !reflect.DeepEqual(got.Factors.Sigma, want.Factors.Sigma) {
				t.Fatalf("case %d: sigma drifted", i)
			}
		} else if !reflect.DeepEqual(got.X, want.X) {
			t.Fatalf("case %d: solution drifted", i)
		}
	}
}

func TestSolveResponseRejectsDomainViolations(t *testing.T) {
	ok := AppendSolveResponse(nil, &SolveResponse{
		Status: StatusOK, Info: SolveInfo{Method: SolveSAPQR}, X: []float64{1},
	})
	mutate := []struct {
		name string
		mut  func(p []byte) []byte
	}{
		{"bad-kind", func(p []byte) []byte { p[1] = 2; return p }},
		{"bad-method", func(p []byte) []byte { p[2] = byte(maxSolveMethod) + 1; return p }},
		{"bad-flags", func(p []byte) []byte { p[3] |= 4; return p }},
		{"negative-sketchns", func(p []byte) []byte {
			copy(p[4:12], appendU64(nil, ^uint64(0)))
			return p
		}},
		{"nan-residual", func(p []byte) []byte {
			copy(p[52:60], appendU64(nil, 0x7ff8000000000001))
			return p
		}},
		{"solution-overclaim", func(p []byte) []byte {
			copy(p[1+solveInfoSize:1+solveInfoSize+8], appendU64(nil, 99))
			return p
		}},
	}
	for _, tc := range mutate {
		p := append([]byte(nil), ok...)
		if _, err := DecodeSolveResponse(tc.mut(p)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", tc.name, err)
		}
	}
	// Factor response whose V rank disagrees with sigma count.
	bad := AppendSolveResponse(nil, &SolveResponse{
		Status: StatusOK, Info: SolveInfo{Method: SolveRandSVD},
		Factors: &RSVDFactors{
			U:     dense.NewMatrixFrom(2, 2, []float64{1, 0, 0, 1}),
			V:     dense.NewMatrixFrom(2, 2, []float64{1, 0, 0, 1}),
			Sigma: []float64{1, 2},
		},
	})
	// Shrink the declared sigma count from 2 to 1 while keeping the sigma
	// bytes: the dense factors then decode at rank 2 ≠ 1.
	off := 1 + solveInfoSize
	trimmed := append([]byte(nil), bad[:off]...)
	trimmed = appendU64(trimmed, 1)
	trimmed = append(trimmed, bad[off+8:off+16]...) // one sigma value
	trimmed = append(trimmed, bad[off+8+16:]...)    // uLen + factors
	if _, err := DecodeSolveResponse(trimmed); !errors.Is(err, ErrMalformed) {
		t.Errorf("factor-rank-mismatch: want ErrMalformed, got %v", err)
	}
}

func TestJobStatusRoundtrip(t *testing.T) {
	cases := []*JobStatus{
		{Status: StatusOK, ID: "0a1b2c3d", State: jobs.StatePending},
		{Status: StatusOK, ID: "f00d-42", State: jobs.StateRunning, Iters: 19, Resid: 0.0625},
		{
			Status: StatusOK, ID: "abc", State: jobs.StateDone, Iters: 40,
			Result: &SolveResponse{
				Status: StatusOK,
				Info:   SolveInfo{Method: SolveSAPSVD, Converged: true, Iters: 40},
				X:      []float64{2, -1},
			},
		},
		{
			Status: StatusOK, ID: "0", State: jobs.StateFailed,
			Result: &SolveResponse{Status: StatusBadOptions, Detail: "boom"},
		},
		{Status: StatusJobNotFound, Detail: "job not found"},
	}
	for i, want := range cases {
		payload := AppendJobStatus(nil, want)
		got, err := DecodeJobStatus(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !bytes.Equal(AppendJobStatus(nil, got), payload) {
			t.Fatalf("case %d: re-encode differs", i)
		}
		if got.ID != want.ID || got.State != want.State || got.Iters != want.Iters || got.Resid != want.Resid {
			t.Fatalf("case %d: fields drifted: %+v", i, got)
		}
		if (got.Result == nil) != (want.Result == nil) {
			t.Fatalf("case %d: result presence drifted", i)
		}
		frame, err := EncodeJobStatusFrame(want)
		if err != nil {
			t.Fatal(err)
		}
		typ, p2, _, err := SplitFrame(frame, 1<<22)
		if err != nil || typ != MsgJobStatus || !bytes.Equal(p2, payload) {
			t.Fatalf("case %d: frame split mismatch", i)
		}
	}
}

func TestJobStatusRejectsDomainViolations(t *testing.T) {
	ok := AppendJobStatus(nil, &JobStatus{
		Status: StatusOK, ID: "a1", State: jobs.StateRunning, Iters: 2, Resid: 1,
	})
	mutate := []struct {
		name string
		mut  func(p []byte) []byte
	}{
		{"bad-state", func(p []byte) []byte { p[1] = 9; return p }},
		{"negative-iters", func(p []byte) []byte {
			copy(p[2:10], appendU64(nil, ^uint64(0)))
			return p
		}},
		{"nan-resid", func(p []byte) []byte {
			copy(p[10:18], appendU64(nil, 0x7ff8000000000001))
			return p
		}},
		{"zero-idlen", func(p []byte) []byte {
			copy(p[18:22], []byte{0, 0, 0, 0})
			return p
		}},
		{"bad-id-byte", func(p []byte) []byte { p[22] = 'A'; return p }},
		{"bad-result-flag", func(p []byte) []byte { p[len(p)-1] = 2; return p }},
		{"trailing", func(p []byte) []byte { return append(p, 0) }},
	}
	for _, tc := range mutate {
		p := append([]byte(nil), ok...)
		if _, err := DecodeJobStatus(tc.mut(p)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", tc.name, err)
		}
	}
}

func TestSolveMethodMapping(t *testing.T) {
	for m := SolveSAPQR; m <= maxSolveMethod; m++ {
		back, ok := SolveMethodOf(m.SolverMethod())
		if !ok || back != m {
			t.Errorf("%v: solver-method mapping does not roundtrip (got %v ok=%v)", m, back, ok)
		}
	}
	if _, ok := SolveMethodOf(solver.MethodDirect); ok {
		t.Error("MethodDirect must have no wire form")
	}
}

func TestSolveStatusOfJobErrors(t *testing.T) {
	if got := StatusOf(jobs.ErrNotFound); got != StatusJobNotFound {
		t.Errorf("jobs.ErrNotFound → %v, want StatusJobNotFound", got)
	}
	if got := StatusOf(jobs.ErrQueueFull); got != StatusOverloaded {
		t.Errorf("jobs.ErrQueueFull → %v, want StatusOverloaded", got)
	}
	if !errors.Is(StatusJobNotFound.Err("x"), jobs.ErrNotFound) {
		t.Error("StatusJobNotFound must unwrap to jobs.ErrNotFound")
	}
}
