package wire

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
)

// testCSCs is the shape corpus: the PR 3 differential degenerates (0×n,
// m×0, empty columns) plus regular shapes, the seeds both the roundtrip
// table and the fuzzer start from.
func testCSCs() map[string]*sparse.CSC {
	empty := func(m, n int) *sparse.CSC {
		r := rand.New(rand.NewSource(7))
		coo := sparse.NewCOO(m, n, n)
		for j := 1; j < n; j += 2 {
			coo.Append(r.Intn(m), j, r.Float64()*2-1)
		}
		return coo.ToCSC()
	}
	return map[string]*sparse.CSC{
		"degenerate-0xn":  {M: 0, N: 33, ColPtr: make([]int, 34)},
		"degenerate-mx0":  {M: 77, N: 0, ColPtr: []int{0}},
		"degenerate-0x0":  {M: 0, N: 0, ColPtr: []int{0}},
		"emptycols":       empty(300, 64),
		"uniform-200x40":  sparse.RandomUniform(200, 40, 0.05, 3),
		"powerlaw-150x30": sparse.PowerLaw(150, 30, 400, 1.5, 4),
		"single-entry":    {M: 5, N: 2, ColPtr: []int{0, 1, 1}, RowIdx: []int{3}, Val: []float64{-2.5}},
	}
}

// mustFrame frames a test payload, panicking on the (impossible for test
// sizes) frame-limit error so call sites stay expressions.
func mustFrame(t MsgType, payload []byte) []byte {
	b, err := AppendFrame(nil, t, payload)
	if err != nil {
		panic(err)
	}
	return b
}

func TestCSCRoundtrip(t *testing.T) {
	for name, a := range testCSCs() {
		payload := AppendCSC(nil, a)
		got, err := DecodeCSC(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.M != a.M || got.N != a.N || got.NNZ() != a.NNZ() {
			t.Fatalf("%s: shape mismatch %dx%d/%d", name, got.M, got.N, got.NNZ())
		}
		if !bytes.Equal(AppendCSC(nil, got), payload) {
			t.Fatalf("%s: re-encode differs", name)
		}
	}
}

func TestCSCDecodeReuse(t *testing.T) {
	big := sparse.RandomUniform(500, 60, 0.1, 1)
	small := sparse.RandomUniform(50, 6, 0.1, 2)
	var dst sparse.CSC
	if err := DecodeCSCInto(&dst, AppendCSC(nil, big)); err != nil {
		t.Fatal(err)
	}
	ptrBefore := &dst.Val[0]
	if err := DecodeCSCInto(&dst, AppendCSC(nil, small)); err != nil {
		t.Fatal(err)
	}
	if &dst.Val[0] != ptrBefore {
		t.Error("DecodeCSCInto reallocated despite sufficient capacity")
	}
	if dst.M != small.M || dst.N != small.N || dst.NNZ() != small.NNZ() {
		t.Errorf("reused decode got %dx%d/%d", dst.M, dst.N, dst.NNZ())
	}
}

func TestDenseRoundtrip(t *testing.T) {
	mats := map[string]*dense.Matrix{
		"0x0": dense.NewMatrix(0, 0),
		"3x0": dense.NewMatrix(3, 0),
		"0x4": dense.NewMatrix(0, 4),
		"4x3": dense.NewMatrixFrom(4, 3, []float64{
			1, 2, 3,
			-4, 5e300, math.Inf(1),
			math.Copysign(0, -1), 8, 9,
			10, math.NaN(), 12,
		}),
	}
	for name, m := range mats {
		payload := AppendDense(nil, m)
		got, err := DecodeDense(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Rows != m.Rows || got.Cols != m.Cols {
			t.Fatalf("%s: dims %dx%d want %dx%d", name, got.Rows, got.Cols, m.Rows, m.Cols)
		}
		if !bytes.Equal(AppendDense(nil, got), payload) {
			t.Fatalf("%s: re-encode differs (bit identity broken)", name)
		}
	}
	// A loose-stride view must encode identically to its tight clone.
	big := dense.NewMatrix(10, 6)
	for i := range big.Data {
		big.Data[i] = float64(i)
	}
	v := big.View(2, 1, 4, 3)
	if !bytes.Equal(AppendDense(nil, v), AppendDense(nil, v.Clone())) {
		t.Error("view encodes differently from its tight clone")
	}
}

func TestRequestRoundtrip(t *testing.T) {
	optsList := []core.Options{
		{},
		{Algorithm: core.AlgAuto, Dist: rng.Gaussian, Source: rng.SourcePhilox,
			Seed: 42, BlockD: 128, BlockN: 33, Workers: 4, Timed: true,
			RNGCost: 2.5, TuneBlockN: true, Sched: core.SchedUniform},
		{Algorithm: core.Alg4, Dist: rng.ScaledInt, Seed: ^uint64(0), Sched: core.SchedNoSteal},
		{Dist: rng.SJLT, Sparsity: 9, Seed: 3},
		{Algorithm: core.Alg3, Dist: rng.CountSketch, Source: rng.SourcePhilox, Workers: 2},
	}
	for name, a := range testCSCs() {
		for i, opts := range optsList {
			payload := AppendRequest(nil, 17, opts, a)
			req, err := DecodeRequest(payload)
			if err != nil {
				t.Fatalf("%s/opts%d: decode: %v", name, i, err)
			}
			if req.D != 17 || req.Opts != opts {
				t.Fatalf("%s/opts%d: decoded (%d, %+v)", name, i, req.D, req.Opts)
			}
			if !bytes.Equal(AppendRequest(nil, req.D, req.Opts, req.A), payload) {
				t.Fatalf("%s/opts%d: re-encode differs", name, i)
			}
		}
	}
}

func TestResponseRoundtrip(t *testing.T) {
	ahat := dense.NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	rs := []SketchResponse{
		{Status: StatusOK,
			Stats: core.Stats{Samples: 100, Flops: 2400, SampleTime: time.Millisecond,
				ConvertTime: 2 * time.Millisecond, Total: 5 * time.Millisecond,
				Steals: 3, Imbalance: 1.25},
			Ahat: ahat},
		{Status: StatusOK, Ahat: dense.NewMatrix(0, 0)},
		{Status: StatusOverloaded, Detail: "admission queue full"},
		{Status: StatusInvalidMatrix, Detail: ""},
		{Status: StatusInternal, Detail: "boom"},
	}
	for i := range rs {
		payload := AppendResponse(nil, &rs[i])
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if got.Status != rs[i].Status || got.Detail != rs[i].Detail {
			t.Fatalf("resp %d: got %+v", i, got)
		}
		if got.Stats.Samples != rs[i].Stats.Samples || got.Stats.Total != rs[i].Stats.Total ||
			got.Stats.Imbalance != rs[i].Stats.Imbalance || got.Stats.Steals != rs[i].Stats.Steals {
			t.Fatalf("resp %d: stats %+v", i, got.Stats)
		}
		if !bytes.Equal(AppendResponse(nil, got), payload) {
			t.Fatalf("resp %d: re-encode differs", i)
		}
	}
}

func TestBatchRoundtrip(t *testing.T) {
	shapes := testCSCs()
	reqs := []SketchRequest{
		{D: 8, A: shapes["uniform-200x40"]},
		{D: 4, Opts: core.Options{Dist: rng.Rademacher, Seed: 9}, A: shapes["degenerate-0xn"]},
		{D: 1, A: shapes["degenerate-mx0"]},
	}
	payload := AppendBatchRequest(nil, reqs)
	got, err := DecodeBatchRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests", len(got))
	}
	if !bytes.Equal(AppendBatchRequest(nil, got), payload) {
		t.Fatal("batch request re-encode differs")
	}

	rs := []SketchResponse{
		{Status: StatusOK, Stats: core.Stats{Flops: 2}, Ahat: dense.NewMatrix(2, 2)},
		{Status: StatusOverloaded, Detail: "later"},
	}
	bp := AppendBatchResponse(nil, rs)
	gotR, err := DecodeBatchResponse(bp)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotR) != 2 || gotR[1].Status != StatusOverloaded {
		t.Fatalf("batch responses %+v", gotR)
	}
	if !bytes.Equal(AppendBatchResponse(nil, gotR), bp) {
		t.Fatal("batch response re-encode differs")
	}
}

func TestFrameIO(t *testing.T) {
	payload := AppendCSC(nil, testCSCs()["uniform-200x40"])
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgCSC, payload); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()
	typ, got, rest, err := SplitFrame(framed, 0)
	if err != nil || typ != MsgCSC || len(rest) != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("SplitFrame: typ=%v len(rest)=%d err=%v", typ, len(rest), err)
	}
	typ2, got2, err := ReadMessage(bytes.NewReader(framed), 0)
	if err != nil || typ2 != MsgCSC || !bytes.Equal(got2, payload) {
		t.Fatalf("ReadMessage: typ=%v err=%v", typ2, err)
	}
	// Two concatenated frames: rest must carry the second.
	double := append(append([]byte{}, framed...), framed...)
	_, _, rest, err = SplitFrame(double, 0)
	if err != nil || !bytes.Equal(rest, framed) {
		t.Fatalf("concatenated frames: err=%v len(rest)=%d", err, len(rest))
	}
}

func TestFrameErrors(t *testing.T) {
	good := mustFrame(MsgCSC, AppendCSC(nil, testCSCs()["single-entry"]))
	cases := map[string][]byte{
		"short":       good[:HeaderSize-1],
		"bad-magic":   append([]byte("XYZ"), good[3:]...),
		"bad-version": func() []byte { b := append([]byte{}, good...); b[3] = 9; return b }(),
		"reserved":    func() []byte { b := append([]byte{}, good...); b[6] = 1; return b }(),
		"truncated":   good[:len(good)-3],
	}
	for name, b := range cases {
		if _, _, _, err := SplitFrame(b, 0); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
		if _, _, err := ReadMessage(bytes.NewReader(b), 0); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s (reader): err = %v, want ErrMalformed", name, err)
		}
	}
	if _, _, _, err := SplitFrame(good, 4); !errors.Is(err, ErrTooLarge) {
		t.Errorf("tight limit: err = %v, want ErrTooLarge", err)
	}
}

// TestEncodeRejectsOversizedPayload pins the 32-bit frame ceiling: a
// payload longer than the header's u32 length field can express must be
// rejected with ErrTooLarge, never silently wrapped into a frame whose
// declared length desyncs the stream. The oversized slice is never
// written, so the 4 GiB allocation stays virtual.
func TestEncodeRejectsOversizedPayload(t *testing.T) {
	if math.MaxInt == math.MaxInt32 {
		t.Skip("cannot build an oversized payload on a 32-bit platform")
	}
	huge := make([]byte, int64(MaxFramePayload)+1)
	if _, err := AppendFrame(nil, MsgCSC, huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("AppendFrame: err = %v, want ErrTooLarge", err)
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgCSC, huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("WriteMessage: err = %v, want ErrTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Errorf("WriteMessage wrote %d bytes before failing", buf.Len())
	}
}

// TestPeekStatusAndSplitBatchPayload pins the cheap classification path the
// client's retry loop uses: status bytes are readable without decoding any
// matrix, for single and per-batch-item payloads alike.
func TestPeekStatusAndSplitBatchPayload(t *testing.T) {
	ok := AppendResponse(nil, &SketchResponse{Status: StatusOK, Ahat: dense.NewMatrix(1, 2)})
	if st, err := PeekStatus(ok); err != nil || st != StatusOK {
		t.Errorf("PeekStatus(ok) = %v, %v", st, err)
	}
	shed := AppendResponse(nil, &SketchResponse{Status: StatusOverloaded, Detail: "later"})
	if st, err := PeekStatus(shed); err != nil || st != StatusOverloaded {
		t.Errorf("PeekStatus(shed) = %v, %v", st, err)
	}
	if _, err := PeekStatus(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("PeekStatus(empty): err = %v, want ErrMalformed", err)
	}
	if _, err := PeekStatus([]byte{255}); !errors.Is(err, ErrMalformed) {
		t.Errorf("PeekStatus(unknown status): err = %v, want ErrMalformed", err)
	}

	bp := AppendBatchResponse(nil, []SketchResponse{
		{Status: StatusOverloaded, Detail: "shed"},
		{Status: StatusOK, Ahat: dense.NewMatrix(1, 1)},
	})
	items, err := SplitBatchPayload(bp)
	if err != nil || len(items) != 2 {
		t.Fatalf("SplitBatchPayload: %d items, err = %v", len(items), err)
	}
	for i, want := range []Status{StatusOverloaded, StatusOK} {
		if st, err := PeekStatus(items[i]); err != nil || st != want {
			t.Errorf("item %d status = %v, %v; want %v", i, st, err, want)
		}
	}
	if _, err := SplitBatchPayload(bp[:3]); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated batch: err = %v, want ErrMalformed", err)
	}
}

func TestDecodeRejectsBrokenPayloads(t *testing.T) {
	a := testCSCs()["uniform-200x40"]
	base := AppendCSC(nil, a)
	// Claimed nnz larger than the bytes back.
	huge := append([]byte{}, base...)
	putU64(huge[16:], 1<<40)
	if _, err := DecodeCSC(huge); !errors.Is(err, ErrMalformed) {
		t.Errorf("huge nnz: %v", err)
	}
	// Trailing garbage.
	if _, err := DecodeCSC(append(append([]byte{}, base...), 0)); !errors.Is(err, ErrMalformed) {
		t.Error("trailing byte accepted")
	}
	// Unsorted row indices.
	bad := a.Clone()
	if bad.NNZ() >= 2 {
		// Find a column with >= 2 entries and swap its first two rows.
		for j := 0; j < bad.N; j++ {
			lo, hi := bad.ColPtr[j], bad.ColPtr[j+1]
			if hi-lo >= 2 {
				bad.RowIdx[lo], bad.RowIdx[lo+1] = bad.RowIdx[lo+1], bad.RowIdx[lo]
				break
			}
		}
		if _, err := DecodeCSC(AppendCSC(nil, bad)); !errors.Is(err, ErrMalformed) {
			t.Errorf("unsorted rows: %v", err)
		}
	}
	// Out-of-domain request enums.
	req := AppendRequest(nil, 8, core.Options{}, a)
	for _, off := range []int{16, 24, 32, 64} { // algorithm, dist, source, sched
		mut := append([]byte{}, req...)
		putU64(mut[off:], uint64(int64(99)))
		if _, err := DecodeRequest(mut); !errors.Is(err, ErrMalformed) {
			t.Errorf("enum at offset %d: %v", off, err)
		}
	}
	// Distribution one past the last member of the sparse family must be
	// rejected as malformed, never fall back to a default distribution.
	distMut := append([]byte{}, req...)
	putU64(distMut[24:], uint64(int64(rng.CountSketch)+1))
	if _, err := DecodeRequest(distMut); !errors.Is(err, ErrMalformed) {
		t.Errorf("dist past CountSketch: %v", err)
	}
	// ... while every in-domain distribution decodes.
	for d := rng.Uniform11; d <= rng.CountSketch; d++ {
		ok := append([]byte{}, req...)
		putU64(ok[24:], uint64(int64(d)))
		if _, err := DecodeRequest(ok); err != nil {
			t.Errorf("dist %v rejected: %v", d, err)
		}
	}
	// Negative or absurd sparsity is out of domain.
	for _, sp := range []int64{-1, int64(MaxDim) + 1} {
		mut := append([]byte{}, req...)
		putU64(mut[72:], uint64(sp))
		if _, err := DecodeRequest(mut); !errors.Is(err, ErrMalformed) {
			t.Errorf("sparsity %d: %v", sp, err)
		}
	}
	// Unknown response status.
	if _, err := DecodeResponse([]byte{200, 0, 0, 0, 0}); !errors.Is(err, ErrMalformed) {
		t.Error("unknown status accepted")
	}
}

func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{service.ErrOverloaded, StatusOverloaded},
		{service.ErrClosed, StatusClosed},
		{core.ErrNilMatrix, StatusNilMatrix},
		{core.ErrInvalidSketchSize, StatusInvalidSketchSize},
		{core.ErrInvalidMatrix, StatusInvalidMatrix},
		{core.ErrBadOptions, StatusBadOptions},
		{core.ErrPlanClosed, StatusPlanClosed},
		{context.DeadlineExceeded, StatusDeadlineExceeded},
		{context.Canceled, StatusCanceled},
		{ErrMalformed, StatusMalformed},
		{ErrTooLarge, StatusMalformed},
		{errors.New("novel failure"), StatusInternal},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.want {
			t.Errorf("StatusOf(%v) = %v, want %v", c.err, got, c.want)
		}
		if c.err == nil {
			continue
		}
		// The wire roundtrip preserves errors.Is classification (except
		// unclassified errors, which collapse to ErrInternal by design).
		back := c.want.Err("detail")
		if c.want == StatusInternal {
			if !errors.Is(back, ErrInternal) {
				t.Errorf("internal status does not unwrap to ErrInternal")
			}
			continue
		}
		if c.want == StatusMalformed {
			if !errors.Is(back, ErrMalformed) {
				t.Errorf("malformed status does not unwrap to ErrMalformed")
			}
			continue
		}
		if !errors.Is(back, c.err) {
			t.Errorf("status %v does not unwrap to %v", c.want, c.err)
		}
	}
	if StatusOK.Err("") != nil {
		t.Error("StatusOK.Err != nil")
	}
	if !StatusOverloaded.Retryable() {
		t.Error("overloaded must be retryable")
	}
	for _, s := range []Status{StatusInvalidMatrix, StatusBadOptions, StatusClosed, StatusDeadlineExceeded, StatusMalformed, StatusInternal} {
		if s.Retryable() {
			t.Errorf("%v must not be retryable", s)
		}
	}
}
