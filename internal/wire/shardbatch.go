package wire

import "fmt"

// Shard batch messages collapse the coordinator's fan-out from one HTTP
// call per shard to one call per peer: when several column shards of the
// same request route to the same worker (consistent hashing makes this the
// common case once shards > peers), the coordinator ships them as a single
// MsgShardBatchRequest frame and the worker answers every shard in one
// MsgShardBatchResponse.
//
// Both payloads reuse the count-prefixed batch envelope of
// MsgBatchRequest/MsgBatchResponse around the existing shard item layouts:
//
//	u32 count | count × (u32 len | shard request/response payload)
//
// The pair rides frame version 4 unchanged: no existing payload layout or
// status code moved, and a pre-batch server rejects the unknown message
// type with StatusMalformed, which the coordinator treats as a per-shard
// failover — so mixed fleets degrade to the one-call-per-shard path instead
// of desyncing.
//
// The request decoder additionally enforces what the coordinator's
// coverage-checked merge would otherwise catch one layer later: every item
// must name the same full matrix width (nTotal), and the items must be
// sorted by j0 with pairwise-disjoint [j0, j0+n) column ranges. A frame
// that batches overlapping shards is structurally malformed — there is no
// honest request it could encode — and rejecting it at decode time keeps
// the duplicate-coverage invariant of the Accumulator (DESIGN.md §10)
// unreachable from the network.

const (
	// MsgShardBatchRequest carries several column shards of one sketch
	// request bound for the same worker (shardbatch.go).
	MsgShardBatchRequest MsgType = 16
	// MsgShardBatchResponse is the index-aligned sequence of shard
	// responses answering a MsgShardBatchRequest.
	MsgShardBatchResponse MsgType = 17
)

// AppendShardBatchRequest appends a shard-batch-request payload: count,
// then each shard request length-prefixed. The encoder does not validate
// the disjointness invariant — tests deliberately encode malformed batches
// to pin the decoder's rejections — but every frame the coordinator builds
// satisfies it by construction (shards tile [0, n)).
func AppendShardBatchRequest(dst []byte, reqs []ShardRequest) []byte {
	dst = appendU32(dst, uint32(len(reqs)))
	for i := range reqs {
		n := shardRequestFixedSize + requestFixedSize + cscPayloadSize(reqs[i].A)
		dst = appendU32(dst, uint32(n))
		dst = AppendShardRequest(dst, &reqs[i])
	}
	return dst
}

// DecodeShardBatchRequest decodes a shard-batch-request payload, enforcing
// the cross-item invariants: one shared nTotal, items sorted by j0 with
// disjoint column ranges.
func DecodeShardBatchRequest(payload []byte) ([]ShardRequest, error) {
	n, items, err := splitBatch(payload)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty shard batch", ErrMalformed)
	}
	reqs := make([]ShardRequest, n)
	nextJ0 := 0
	for i, item := range items {
		if err := DecodeShardRequestInto(&reqs[i], item); err != nil {
			return nil, fmt.Errorf("shard batch item %d: %w", i, err)
		}
		if i > 0 && reqs[i].NTotal != reqs[0].NTotal {
			return nil, fmt.Errorf("%w: shard batch item %d names nTotal %d, item 0 named %d", ErrMalformed, i, reqs[i].NTotal, reqs[0].NTotal)
		}
		if reqs[i].J0 < nextJ0 {
			return nil, fmt.Errorf("%w: shard batch item %d range [%d:%d) overlaps or precedes prior end %d", ErrMalformed, i, reqs[i].J0, reqs[i].J0+reqs[i].A.N, nextJ0)
		}
		nextJ0 = reqs[i].J0 + reqs[i].A.N
	}
	return reqs, nil
}

// AppendShardBatchResponse appends a shard-batch-response payload: count,
// then each shard response length-prefixed (lengths backpatched, matching
// AppendBatchResponse).
func AppendShardBatchResponse(dst []byte, rs []ShardResponse) []byte {
	dst = appendU32(dst, uint32(len(rs)))
	for i := range rs {
		mark := len(dst)
		dst = appendU32(dst, 0) // length backpatched below
		dst = AppendShardResponse(dst, &rs[i])
		putU32(dst[mark:mark+4], uint32(len(dst)-mark-4))
	}
	return dst
}

// DecodeShardBatchResponse decodes a shard-batch-response payload. Items
// answer the request's shards index-aligned; per-item errors surface as
// non-OK statuses, and the coordinator cross-checks each OK item's J0 echo
// against the shard it placed, so the decoder imposes no cross-item
// constraints of its own.
func DecodeShardBatchResponse(payload []byte) ([]ShardResponse, error) {
	n, items, err := splitBatch(payload)
	if err != nil {
		return nil, err
	}
	rs := make([]ShardResponse, n)
	for i, item := range items {
		if err := DecodeShardResponseInto(&rs[i], item); err != nil {
			return nil, fmt.Errorf("shard batch item %d: %w", i, err)
		}
	}
	return rs, nil
}

// EncodeShardBatchRequestFrame returns a complete shard-batch-request
// frame, ready for an HTTP body. A batch whose total payload exceeds the
// 32-bit frame length fails with ErrTooLarge.
func EncodeShardBatchRequestFrame(reqs []ShardRequest) ([]byte, error) {
	payload := AppendShardBatchRequest(make([]byte, 0, ShardBatchRequestWireSize(reqs)-HeaderSize), reqs)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgShardBatchRequest, payload)
}

// ShardBatchRequestWireSize returns the exact on-the-wire frame size of a
// shard batch — header plus payload — without encoding, for the
// coordinator's per-peer byte metering.
func ShardBatchRequestWireSize(reqs []ShardRequest) int {
	size := HeaderSize + 4
	for i := range reqs {
		size += 4 + shardRequestFixedSize + requestFixedSize + cscPayloadSize(reqs[i].A)
	}
	return size
}
