package wire

import (
	"bytes"
	"errors"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
)

func TestShardRequestRoundtrip(t *testing.T) {
	for name, a := range testCSCs() {
		req := &ShardRequest{
			J0:     3,
			NTotal: a.N + 7,
			SketchRequest: SketchRequest{
				D:    9,
				Opts: core.Options{Dist: rng.Gaussian, Seed: 17, BlockD: 4},
				A:    a,
			},
		}
		payload := AppendShardRequest(nil, req)
		got, err := DecodeShardRequest(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.J0 != req.J0 || got.NTotal != req.NTotal || got.D != req.D || got.Opts != req.Opts {
			t.Fatalf("%s: fields mismatch: %+v vs %+v", name, got, req)
		}
		if !bytes.Equal(AppendShardRequest(nil, got), payload) {
			t.Fatalf("%s: re-encode differs", name)
		}
	}
}

func TestShardRequestPlacementValidation(t *testing.T) {
	a := testCSCs()["uniform-200x40"]
	req := &ShardRequest{J0: 5, NTotal: a.N + 2, SketchRequest: SketchRequest{D: 3, A: a}}
	payload := AppendShardRequest(nil, req)
	if _, err := DecodeShardRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overhanging shard decoded: %v", err)
	}
	req.NTotal = a.N + 5 // exactly j0 + n: legal
	if _, err := DecodeShardRequest(AppendShardRequest(nil, req)); err != nil {
		t.Fatalf("exact-fit shard rejected: %v", err)
	}
	if _, err := DecodeShardRequest(payload[:10]); !errors.Is(err, ErrMalformed) {
		t.Fatal("truncated shard request decoded")
	}
}

func TestShardResponseRoundtrip(t *testing.T) {
	ok := &ShardResponse{
		Status: StatusOK,
		J0:     11,
		Stats:  core.Stats{Samples: 40, Flops: 80, SampleTime: 1200, Total: 9000, Steals: 2, Imbalance: 1.25},
		Partial: dense.NewMatrixFrom(2, 3, []float64{
			1, -2, 3.5, 0, 0.25, -9,
		}),
	}
	bad := &ShardResponse{Status: StatusOverloaded, Detail: "queue full"}
	for _, r := range []*ShardResponse{ok, bad} {
		payload := AppendShardResponse(nil, r)
		got, err := DecodeShardResponse(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", r.Status, err)
		}
		if got.Status != r.Status || got.Detail != r.Detail || got.J0 != r.J0 {
			t.Fatalf("%v: fields mismatch: %+v vs %+v", r.Status, got, r)
		}
		if got.Stats.Samples != r.Stats.Samples || got.Stats.SampleTime != r.Stats.SampleTime ||
			got.Stats.Total != r.Stats.Total || got.Stats.Steals != r.Stats.Steals ||
			got.Stats.Imbalance != r.Stats.Imbalance {
			t.Fatalf("%v: stats mismatch: %+v vs %+v", r.Status, got.Stats, r.Stats)
		}
		if !bytes.Equal(AppendShardResponse(nil, got), payload) {
			t.Fatalf("%v: re-encode differs", r.Status)
		}
		st, err := PeekStatus(payload)
		if err != nil || st != r.Status {
			t.Fatalf("%v: peek = %v, %v", r.Status, st, err)
		}
	}
	if err := bad.Err(); !errors.Is(err, errOverloadedSentinel()) {
		t.Fatalf("shard overload does not unwrap: %v", err)
	}
}

// errOverloadedSentinel avoids importing service in two places; the status
// sentinel mapping is already pinned in wire_test.go, this just reuses it.
func errOverloadedSentinel() error { return StatusOverloaded.sentinel() }

func TestShardResponseErrorFormMatchesSketchResponse(t *testing.T) {
	// A server that fails before it knows the request type answers with the
	// generic error form; the shard decoder must accept those bytes.
	generic := AppendResponse(nil, &SketchResponse{Status: StatusClosed, Detail: "draining"})
	got, err := DecodeShardResponse(generic)
	if err != nil {
		t.Fatalf("decode generic error as shard response: %v", err)
	}
	if got.Status != StatusClosed || got.Detail != "draining" {
		t.Fatalf("got %+v", got)
	}
	asShard := AppendShardResponse(nil, &ShardResponse{Status: StatusClosed, Detail: "draining"})
	if !bytes.Equal(generic, asShard) {
		t.Fatal("error forms diverged between sketch and shard responses")
	}
}

func TestShardRequestFrame(t *testing.T) {
	a := testCSCs()["uniform-200x40"]
	req := &ShardRequest{NTotal: a.N, SketchRequest: SketchRequest{D: 4, A: a}}
	frame, err := EncodeShardRequestFrame(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := ShardRequestWireSize(req); got != len(frame) {
		t.Fatalf("ShardRequestWireSize = %d, frame is %d bytes", got, len(frame))
	}
	typ, payload, rest, err := SplitFrame(frame, 0)
	if err != nil || typ != MsgShardRequest || len(rest) != 0 {
		t.Fatalf("frame split: typ=%v rest=%d err=%v", typ, len(rest), err)
	}
	if _, err := DecodeShardRequest(payload); err != nil {
		t.Fatal(err)
	}
}
