package wire

import (
	"bytes"
	"errors"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
)

func TestShardRequestRoundtrip(t *testing.T) {
	for name, a := range testCSCs() {
		req := &ShardRequest{
			J0:     3,
			NTotal: a.N + 7,
			SketchRequest: SketchRequest{
				D:    9,
				Opts: core.Options{Dist: rng.Gaussian, Seed: 17, BlockD: 4},
				A:    a,
			},
		}
		payload := AppendShardRequest(nil, req)
		got, err := DecodeShardRequest(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.J0 != req.J0 || got.NTotal != req.NTotal || got.D != req.D || got.Opts != req.Opts {
			t.Fatalf("%s: fields mismatch: %+v vs %+v", name, got, req)
		}
		if !bytes.Equal(AppendShardRequest(nil, got), payload) {
			t.Fatalf("%s: re-encode differs", name)
		}
	}
}

func TestShardRequestPlacementValidation(t *testing.T) {
	a := testCSCs()["uniform-200x40"]
	req := &ShardRequest{J0: 5, NTotal: a.N + 2, SketchRequest: SketchRequest{D: 3, A: a}}
	payload := AppendShardRequest(nil, req)
	if _, err := DecodeShardRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overhanging shard decoded: %v", err)
	}
	req.NTotal = a.N + 5 // exactly j0 + n: legal
	if _, err := DecodeShardRequest(AppendShardRequest(nil, req)); err != nil {
		t.Fatalf("exact-fit shard rejected: %v", err)
	}
	if _, err := DecodeShardRequest(payload[:10]); !errors.Is(err, ErrMalformed) {
		t.Fatal("truncated shard request decoded")
	}
}

func TestShardResponseRoundtrip(t *testing.T) {
	ok := &ShardResponse{
		Status: StatusOK,
		J0:     11,
		Stats:  core.Stats{Samples: 40, Flops: 80, SampleTime: 1200, Total: 9000, Steals: 2, Imbalance: 1.25},
		Partial: dense.NewMatrixFrom(2, 3, []float64{
			1, -2, 3.5, 0, 0.25, -9,
		}),
	}
	bad := &ShardResponse{Status: StatusOverloaded, Detail: "queue full"}
	for _, r := range []*ShardResponse{ok, bad} {
		payload := AppendShardResponse(nil, r)
		got, err := DecodeShardResponse(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", r.Status, err)
		}
		if got.Status != r.Status || got.Detail != r.Detail || got.J0 != r.J0 {
			t.Fatalf("%v: fields mismatch: %+v vs %+v", r.Status, got, r)
		}
		if got.Stats.Samples != r.Stats.Samples || got.Stats.SampleTime != r.Stats.SampleTime ||
			got.Stats.Total != r.Stats.Total || got.Stats.Steals != r.Stats.Steals ||
			got.Stats.Imbalance != r.Stats.Imbalance {
			t.Fatalf("%v: stats mismatch: %+v vs %+v", r.Status, got.Stats, r.Stats)
		}
		if !bytes.Equal(AppendShardResponse(nil, got), payload) {
			t.Fatalf("%v: re-encode differs", r.Status)
		}
		st, err := PeekStatus(payload)
		if err != nil || st != r.Status {
			t.Fatalf("%v: peek = %v, %v", r.Status, st, err)
		}
	}
	if err := bad.Err(); !errors.Is(err, errOverloadedSentinel()) {
		t.Fatalf("shard overload does not unwrap: %v", err)
	}
}

// errOverloadedSentinel avoids importing service in two places; the status
// sentinel mapping is already pinned in wire_test.go, this just reuses it.
func errOverloadedSentinel() error { return StatusOverloaded.sentinel() }

func TestShardResponseErrorFormMatchesSketchResponse(t *testing.T) {
	// A server that fails before it knows the request type answers with the
	// generic error form; the shard decoder must accept those bytes.
	generic := AppendResponse(nil, &SketchResponse{Status: StatusClosed, Detail: "draining"})
	got, err := DecodeShardResponse(generic)
	if err != nil {
		t.Fatalf("decode generic error as shard response: %v", err)
	}
	if got.Status != StatusClosed || got.Detail != "draining" {
		t.Fatalf("got %+v", got)
	}
	asShard := AppendShardResponse(nil, &ShardResponse{Status: StatusClosed, Detail: "draining"})
	if !bytes.Equal(generic, asShard) {
		t.Fatal("error forms diverged between sketch and shard responses")
	}
}

func TestShardRequestFrame(t *testing.T) {
	a := testCSCs()["uniform-200x40"]
	req := &ShardRequest{NTotal: a.N, SketchRequest: SketchRequest{D: 4, A: a}}
	frame, err := EncodeShardRequestFrame(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := ShardRequestWireSize(req); got != len(frame) {
		t.Fatalf("ShardRequestWireSize = %d, frame is %d bytes", got, len(frame))
	}
	typ, payload, rest, err := SplitFrame(frame, 0)
	if err != nil || typ != MsgShardRequest || len(rest) != 0 {
		t.Fatalf("frame split: typ=%v rest=%d err=%v", typ, len(rest), err)
	}
	if _, err := DecodeShardRequest(payload); err != nil {
		t.Fatal(err)
	}
}

func TestShardBatchRequestRoundtrip(t *testing.T) {
	shapes := testCSCs()
	a := shapes["uniform-200x40"]
	reqs := []ShardRequest{
		{J0: 0, NTotal: 128, SketchRequest: SketchRequest{
			D: 6, Opts: core.Options{Dist: rng.Rademacher, Seed: 21}, A: a,
		}},
		{J0: 40, NTotal: 128, SketchRequest: SketchRequest{
			D: 6, Opts: core.Options{Dist: rng.Rademacher, Seed: 21}, A: a,
		}},
		{J0: 80, NTotal: 128, SketchRequest: SketchRequest{
			D: 6, Opts: core.Options{Dist: rng.Rademacher, Seed: 21}, A: shapes["degenerate-0xn"],
		}},
	}
	payload := AppendShardBatchRequest(nil, reqs)
	got, err := DecodeShardBatchRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d items, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].J0 != reqs[i].J0 || got[i].NTotal != reqs[i].NTotal || got[i].D != reqs[i].D {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got[i], reqs[i])
		}
	}
	if !bytes.Equal(AppendShardBatchRequest(nil, got), payload) {
		t.Fatal("re-encode differs")
	}

	frame, err := EncodeShardBatchRequestFrame(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want := ShardBatchRequestWireSize(reqs); want != len(frame) {
		t.Fatalf("ShardBatchRequestWireSize = %d, frame is %d bytes", want, len(frame))
	}
	typ, fp, rest, err := SplitFrame(frame, 0)
	if err != nil || typ != MsgShardBatchRequest || len(rest) != 0 {
		t.Fatalf("frame split: typ=%v rest=%d err=%v", typ, len(rest), err)
	}
	if !bytes.Equal(fp, payload) {
		t.Fatal("frame payload differs from raw payload")
	}
}

// TestShardBatchRequestRejections pins the cross-item invariants the batch
// decoder adds over the single-shard decoder: non-empty, one shared nTotal,
// items sorted by j0 with disjoint column ranges. These are the wire-level
// face of the Accumulator's duplicate-coverage rejection — a frame that
// batches overlapping shards is unreachable past this decoder.
func TestShardBatchRequestRejections(t *testing.T) {
	a := testCSCs()["uniform-200x40"] // N = 40
	mk := func(j0, nTotal int) ShardRequest {
		return ShardRequest{J0: j0, NTotal: nTotal, SketchRequest: SketchRequest{D: 2, A: a}}
	}
	cases := map[string][]ShardRequest{
		"empty-batch":        {},
		"overlapping-ranges": {mk(0, 100), mk(39, 100)},
		"duplicate-j0":       {mk(0, 100), mk(0, 100)},
		"unsorted":           {mk(40, 100), mk(0, 100)},
		"mixed-ntotal":       {mk(0, 100), mk(40, 101)},
	}
	for name, reqs := range cases {
		payload := AppendShardBatchRequest(nil, reqs)
		if _, err := DecodeShardBatchRequest(payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: decoded cleanly, want ErrMalformed (got %v)", name, err)
		}
	}
	// Adjacent shards tiling [0, n) exactly are the legal shape.
	if _, err := DecodeShardBatchRequest(AppendShardBatchRequest(nil, []ShardRequest{mk(0, 80), mk(40, 80)})); err != nil {
		t.Fatalf("adjacent tiling rejected: %v", err)
	}
}

func TestShardBatchResponseRoundtrip(t *testing.T) {
	rs := []ShardResponse{
		{Status: StatusOK, J0: 0, Stats: core.Stats{Samples: 8, Flops: 16, Imbalance: 1.5},
			Partial: dense.NewMatrixFrom(2, 2, []float64{1, -0.5, 0, 3})},
		{Status: StatusOverloaded, Detail: "queue full"},
		{Status: StatusOK, J0: 7, Partial: dense.NewMatrix(2, 0)},
	}
	payload := AppendShardBatchResponse(nil, rs)
	got, err := DecodeShardBatchResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("decoded %d items, want %d", len(got), len(rs))
	}
	for i := range got {
		if got[i].Status != rs[i].Status || got[i].Detail != rs[i].Detail || got[i].J0 != rs[i].J0 {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got[i], rs[i])
		}
	}
	if !bytes.Equal(AppendShardBatchResponse(nil, got), payload) {
		t.Fatal("re-encode differs")
	}
	// The item payloads are byte-identical to single shard responses, so
	// the client's batch status peek (SplitBatchPayload + PeekStatus per
	// item) works unchanged on shard batches.
	items, err := SplitBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		st, err := PeekStatus(item)
		if err != nil || st != rs[i].Status {
			t.Fatalf("item %d: peek = %v, %v", i, st, err)
		}
	}
}
