package wire

import (
	"bytes"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
)

// FuzzWireRoundtrip drives every decoder with arbitrary bytes. The two
// properties under test:
//
//  1. Totality — no input panics; broken bytes come back as ErrMalformed /
//     ErrTooLarge, never as a crash (the server faces untrusted bodies).
//  2. Canonical roundtrip — any frame that *does* decode re-encodes to the
//     exact same bytes, i.e. decode(encode(x)) == x bit-identically and
//     the encoding has a single fixed point per value.
//
// The seed corpus covers every message type over the degenerate shapes the
// PR 3 differential suite pinned: 0×n, m×0, 0×0, and empty-column matrices.
func FuzzWireRoundtrip(f *testing.F) {
	shapes := testCSCs()
	for _, a := range shapes {
		f.Add(mustFrame(MsgCSC, AppendCSC(nil, a)))
		f.Add(mustFrame(MsgSketchRequest, AppendRequest(nil, 6, core.Options{
			Dist: rng.Rademacher, Source: rng.SourcePhilox, Seed: 11,
		}, a)))
	}
	f.Add(mustFrame(MsgDense, AppendDense(nil, dense.NewMatrix(0, 5))))
	f.Add(mustFrame(MsgDense, AppendDense(nil, dense.NewMatrixFrom(2, 2, []float64{1, -2, 3.5, 0}))))
	f.Add(mustFrame(MsgSketchResponse, AppendResponse(nil, &SketchResponse{
		Status: StatusOK, Stats: core.Stats{Samples: 4, Flops: 8}, Ahat: dense.NewMatrix(2, 3),
	})))
	f.Add(mustFrame(MsgSketchResponse, AppendResponse(nil, &SketchResponse{
		Status: StatusOverloaded, Detail: "queue full",
	})))
	f.Add(mustFrame(MsgBatchRequest, AppendBatchRequest(nil, []SketchRequest{
		{D: 3, A: shapes["degenerate-0xn"]},
		{D: 2, Opts: core.Options{Dist: rng.Gaussian}, A: shapes["emptycols"]},
	})))
	f.Add(mustFrame(MsgBatchResponse, AppendBatchResponse(nil, []SketchResponse{
		{Status: StatusOK, Ahat: dense.NewMatrix(1, 1)},
		{Status: StatusClosed},
	})))
	f.Add(mustFrame(MsgShardRequest, AppendShardRequest(nil, &ShardRequest{
		J0: 4, NTotal: 48, SketchRequest: SketchRequest{D: 6, Opts: core.Options{
			Dist: rng.Gaussian, Seed: 5, BlockD: 3,
		}, A: shapes["emptycols"]},
	})))
	f.Add(mustFrame(MsgShardRequest, AppendShardRequest(nil, &ShardRequest{
		SketchRequest: SketchRequest{D: 2, A: shapes["degenerate-mx0"]},
	})))
	f.Add(mustFrame(MsgShardResponse, AppendShardResponse(nil, &ShardResponse{
		Status: StatusOK, J0: 7, Stats: core.Stats{Samples: 9, Flops: 3},
		Partial: dense.NewMatrixFrom(2, 2, []float64{0.5, -1, 2, 0}),
	})))
	f.Add(mustFrame(MsgShardResponse, AppendShardResponse(nil, &ShardResponse{
		Status: StatusClosed, Detail: "draining",
	})))
	// Sparse sketch family: a valid SJLT request (explicit sparsity), a
	// CountSketch request (default sparsity), and — the rejection seed —
	// a request whose dist field is one past the last known Distribution,
	// which must come back ErrMalformed, not decode to a default.
	f.Add(mustFrame(MsgSketchRequest, AppendRequest(nil, 8, core.Options{
		Dist: rng.SJLT, Sparsity: 3, Seed: 7,
	}, shapes["emptycols"])))
	f.Add(mustFrame(MsgSketchRequest, AppendRequest(nil, 5, core.Options{
		Dist: rng.CountSketch, Source: rng.SourcePhilox,
	}, shapes["degenerate-0xn"])))
	f.Add(mustFrame(MsgSketchRequest, AppendRequest(nil, 4, core.Options{
		Dist: rng.CountSketch + 1,
	}, shapes["emptycols"])))
	// Content-addressed (v3) messages: put, info (ok + error forms),
	// sketch-by-reference, and delta. Degenerate rejection shapes — a
	// truncated fingerprint, a delta with overlapping row indices, and an
	// oversized declared nnz — are committed corpus seeds under
	// testdata/fuzz/FuzzWireRoundtrip (see corpus_gen_test.go).
	for _, a := range shapes {
		f.Add(mustFrame(MsgMatrixPut, AppendMatrixPut(nil, a)))
		f.Add(mustFrame(MsgMatrixDelta, AppendMatrixDelta(nil, &MatrixDelta{
			Fp: a.Fingerprint(), Delta: a,
		})))
		f.Add(mustFrame(MsgSketchRef, AppendSketchRef(nil, &SketchRefRequest{
			D: 4, Opts: core.Options{Dist: rng.Rademacher, Seed: 3},
			Fp: a.Fingerprint(),
		})))
	}
	f.Add(mustFrame(MsgMatrixInfo, AppendMatrixInfo(nil, &MatrixInfo{
		Status: StatusOK, Fp: shapes["emptycols"].Fingerprint(),
		Bytes: 96, Created: true,
	})))
	f.Add(mustFrame(MsgMatrixInfo, AppendMatrixInfo(nil, &MatrixInfo{
		Status: StatusNotFound, Detail: "no such matrix",
	})))
	// Solve messages (v4): sync and async requests over inline and by-ref
	// matrices, solution and factor responses, and job-status envelopes.
	// Rejection shapes (bad method, bad flags, bad job state) are committed
	// corpus seeds under testdata/fuzz/FuzzWireRoundtrip.
	f.Add(mustFrame(MsgSolveRequest, AppendSolveRequest(nil, &SolveRequest{
		Method: SolveSAPQR, Gamma: 4, Atol: 1e-12, MaxIters: 50,
		Opts: core.Options{Dist: rng.Rademacher, Seed: 9},
		B:    []float64{1, -2, 0.5}, A: shapes["emptycols"],
	})))
	f.Add(mustFrame(MsgSolveRequest, AppendSolveRequest(nil, &SolveRequest{
		Method: SolveRandSVD, Async: true, Rank: 3, Oversample: 2, PowerIters: 1,
		Opts: core.Options{Dist: rng.Gaussian}, A: shapes["degenerate-0xn"],
	})))
	f.Add(mustFrame(MsgSolveRequest, AppendSolveRequest(nil, &SolveRequest{
		Method: SolveMinNorm, ByRef: true, Fp: shapes["emptycols"].Fingerprint(),
		B: []float64{2},
	})))
	f.Add(mustFrame(MsgSolveResponse, AppendSolveResponse(nil, &SolveResponse{
		Status: StatusOK, Info: SolveInfo{
			Method: SolveSAPQR, Converged: true, PrecondCached: true,
			SketchNS: 100, IterNS: 50, TotalNS: 200, Iters: 7, MemoryBytes: 64,
			Residual: 1e-14,
		}, X: []float64{3, -0.25},
	})))
	f.Add(mustFrame(MsgSolveResponse, AppendSolveResponse(nil, &SolveResponse{
		Status: StatusOK, Info: SolveInfo{Method: SolveRandSVD},
		Factors: &RSVDFactors{
			U:     dense.NewMatrixFrom(2, 1, []float64{1, 0}),
			V:     dense.NewMatrixFrom(3, 1, []float64{0, 1, 0}),
			Sigma: []float64{2.5},
		},
	})))
	f.Add(mustFrame(MsgSolveResponse, AppendSolveResponse(nil, &SolveResponse{
		Status: StatusBadOptions, Detail: "rank deficient",
	})))
	f.Add(mustFrame(MsgJobStatus, AppendJobStatus(nil, &JobStatus{
		Status: StatusOK, ID: "a1b2c3", State: 1, Iters: 12, Resid: 0.125,
	})))
	f.Add(mustFrame(MsgJobStatus, AppendJobStatus(nil, &JobStatus{
		Status: StatusOK, ID: "deadbeef-00", State: 2, Iters: 40,
		Result: &SolveResponse{Status: StatusOK, Info: SolveInfo{
			Method: SolveLSQRD, Converged: true, Iters: 40,
		}, X: []float64{1}},
	})))
	f.Add(mustFrame(MsgJobStatus, AppendJobStatus(nil, &JobStatus{
		Status: StatusJobNotFound, Detail: "job expired",
	})))
	// Shard batch messages: multi-shard and single-shard batches with
	// disjoint sorted ranges, and a mixed-outcome response. Rejection
	// shapes (truncated batch, overlapping j0 ranges, oversized count) are
	// committed corpus seeds under testdata/fuzz/FuzzWireRoundtrip.
	f.Add(mustFrame(MsgShardBatchRequest, AppendShardBatchRequest(nil, []ShardRequest{
		{J0: 0, NTotal: 64, SketchRequest: SketchRequest{D: 4, Opts: core.Options{
			Dist: rng.Rademacher, Seed: 3,
		}, A: shapes["emptycols"]}},
		{J0: 40, NTotal: 64, SketchRequest: SketchRequest{D: 4, Opts: core.Options{
			Dist: rng.Rademacher, Seed: 3,
		}, A: shapes["emptycols"]}},
	})))
	f.Add(mustFrame(MsgShardBatchRequest, AppendShardBatchRequest(nil, []ShardRequest{
		{J0: 2, NTotal: 9, SketchRequest: SketchRequest{D: 1, A: shapes["degenerate-0xn"]}},
	})))
	f.Add(mustFrame(MsgShardBatchResponse, AppendShardBatchResponse(nil, []ShardResponse{
		{Status: StatusOK, J0: 5, Stats: core.Stats{Samples: 2, Flops: 6},
			Partial: dense.NewMatrixFrom(2, 1, []float64{-0.5, 4})},
		{Status: StatusOverloaded, Detail: "queue full"},
	})))

	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 22
		typ, payload, _, err := SplitFrame(data, limit)
		if err != nil {
			return // rejection is the expected outcome for mutated bytes
		}
		switch typ {
		case MsgCSC:
			if a, err := DecodeCSC(payload); err == nil {
				if !bytes.Equal(AppendCSC(nil, a), payload) {
					t.Fatal("CSC re-encode differs from accepted payload")
				}
			}
		case MsgDense:
			if m, err := DecodeDense(payload); err == nil {
				if !bytes.Equal(AppendDense(nil, m), payload) {
					t.Fatal("dense re-encode differs from accepted payload")
				}
			}
		case MsgSketchRequest:
			if req, err := DecodeRequest(payload); err == nil {
				if !bytes.Equal(AppendRequest(nil, req.D, req.Opts, req.A), payload) {
					t.Fatal("request re-encode differs from accepted payload")
				}
			}
		case MsgSketchResponse:
			if resp, err := DecodeResponse(payload); err == nil {
				if !bytes.Equal(AppendResponse(nil, resp), payload) {
					t.Fatal("response re-encode differs from accepted payload")
				}
			}
		case MsgBatchRequest:
			if reqs, err := DecodeBatchRequest(payload); err == nil {
				if !bytes.Equal(AppendBatchRequest(nil, reqs), payload) {
					t.Fatal("batch request re-encode differs from accepted payload")
				}
			}
		case MsgBatchResponse:
			if rs, err := DecodeBatchResponse(payload); err == nil {
				if !bytes.Equal(AppendBatchResponse(nil, rs), payload) {
					t.Fatal("batch response re-encode differs from accepted payload")
				}
			}
		case MsgShardRequest:
			if req, err := DecodeShardRequest(payload); err == nil {
				if !bytes.Equal(AppendShardRequest(nil, req), payload) {
					t.Fatal("shard request re-encode differs from accepted payload")
				}
			}
		case MsgShardResponse:
			if resp, err := DecodeShardResponse(payload); err == nil {
				if !bytes.Equal(AppendShardResponse(nil, resp), payload) {
					t.Fatal("shard response re-encode differs from accepted payload")
				}
			}
		case MsgMatrixPut:
			if a, err := DecodeMatrixPut(payload); err == nil {
				if !bytes.Equal(AppendMatrixPut(nil, a), payload) {
					t.Fatal("matrix-put re-encode differs from accepted payload")
				}
			}
		case MsgMatrixInfo:
			if info, err := DecodeMatrixInfo(payload); err == nil {
				if !bytes.Equal(AppendMatrixInfo(nil, info), payload) {
					t.Fatal("matrix-info re-encode differs from accepted payload")
				}
			}
		case MsgSketchRef:
			if req, err := DecodeSketchRef(payload); err == nil {
				if !bytes.Equal(AppendSketchRef(nil, req), payload) {
					t.Fatal("sketch-ref re-encode differs from accepted payload")
				}
			}
		case MsgMatrixDelta:
			if d, err := DecodeMatrixDelta(payload); err == nil {
				if !bytes.Equal(AppendMatrixDelta(nil, d), payload) {
					t.Fatal("matrix-delta re-encode differs from accepted payload")
				}
			}
		case MsgSolveRequest:
			if req, err := DecodeSolveRequest(payload); err == nil {
				if !bytes.Equal(AppendSolveRequest(nil, req), payload) {
					t.Fatal("solve request re-encode differs from accepted payload")
				}
			}
		case MsgSolveResponse:
			if resp, err := DecodeSolveResponse(payload); err == nil {
				if !bytes.Equal(AppendSolveResponse(nil, resp), payload) {
					t.Fatal("solve response re-encode differs from accepted payload")
				}
			}
		case MsgJobStatus:
			if js, err := DecodeJobStatus(payload); err == nil {
				if !bytes.Equal(AppendJobStatus(nil, js), payload) {
					t.Fatal("job status re-encode differs from accepted payload")
				}
			}
		case MsgShardBatchRequest:
			if reqs, err := DecodeShardBatchRequest(payload); err == nil {
				if !bytes.Equal(AppendShardBatchRequest(nil, reqs), payload) {
					t.Fatal("shard batch request re-encode differs from accepted payload")
				}
			}
		case MsgShardBatchResponse:
			if rs, err := DecodeShardBatchResponse(payload); err == nil {
				if !bytes.Equal(AppendShardBatchResponse(nil, rs), payload) {
					t.Fatal("shard batch response re-encode differs from accepted payload")
				}
			}
		}
	})
}
