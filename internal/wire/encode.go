package wire

import (
	"math"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// SketchRequest is the decoded form of a MsgSketchRequest payload: one
// sketch Â = S·A, where S is described by (D, Opts) and regenerated
// server-side — the matrix S itself never crosses the wire.
type SketchRequest struct {
	D    int
	Opts core.Options
	A    *sparse.CSC
}

// SketchResponse is the decoded form of a MsgSketchResponse payload. A
// non-OK Status carries only Detail; StatusOK carries Â and the execute
// Stats (WorkerBusy, a plan-owned buffer, does not cross the wire).
type SketchResponse struct {
	Status Status
	Detail string
	Stats  core.Stats
	Ahat   *dense.Matrix
}

// Err converts the response outcome into an error (nil for StatusOK),
// unwrapping to the canonical sentinel of the status.
func (r *SketchResponse) Err() error { return r.Status.Err(r.Detail) }

// cscPayloadSize returns the encoded size of a's CSC payload.
func cscPayloadSize(a *sparse.CSC) int {
	return 24 + 8*(a.N+1) + 16*len(a.Val)
}

// AppendCSC appends a's CSC payload to dst. The matrix must be
// structurally valid (DecodeCSC* re-validates on the way in).
func AppendCSC(dst []byte, a *sparse.CSC) []byte {
	dst = appendU64(dst, uint64(a.M))
	dst = appendU64(dst, uint64(a.N))
	dst = appendU64(dst, uint64(len(a.Val)))
	for _, p := range a.ColPtr {
		dst = appendU64(dst, uint64(p))
	}
	for _, r := range a.RowIdx {
		dst = appendU64(dst, uint64(r))
	}
	for _, v := range a.Val {
		dst = appendU64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendDense appends m's dense payload to dst: dims then the column-major
// values. Views with a loose stride encode identically to their tight copy.
func AppendDense(dst []byte, m *dense.Matrix) []byte {
	dst = appendU64(dst, uint64(m.Rows))
	dst = appendU64(dst, uint64(m.Cols))
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// requestFixedSize is the fixed-width prefix of a request payload before
// the embedded CSC: d, seed, 8 option integers, rngCost, flag byte.
const requestFixedSize = 8 + 8 + 8*8 + 8 + 1

// optsWireSize is the encoded size of a core.Options block: seed, 8 option
// integers, rngCost, flag byte. Shared by the sketch requests (after their
// leading d) and the solve request (which derives d from gamma instead).
const optsWireSize = 8 + 8*8 + 8 + 1

// appendSketchOpts appends the core.Options block shared by every request
// payload.
func appendSketchOpts(dst []byte, opts core.Options) []byte {
	dst = appendU64(dst, opts.Seed)
	dst = appendU64(dst, uint64(int64(opts.Algorithm)))
	dst = appendU64(dst, uint64(int64(opts.Dist)))
	dst = appendU64(dst, uint64(int64(opts.Source)))
	dst = appendU64(dst, uint64(int64(opts.BlockD)))
	dst = appendU64(dst, uint64(int64(opts.BlockN)))
	dst = appendU64(dst, uint64(int64(opts.Workers)))
	dst = appendU64(dst, uint64(int64(opts.Sched)))
	dst = appendU64(dst, uint64(int64(opts.Sparsity)))
	dst = appendU64(dst, math.Float64bits(opts.RNGCost))
	var flags byte
	if opts.Timed {
		flags |= 1
	}
	if opts.TuneBlockN {
		flags |= 2
	}
	return append(dst, flags)
}

// AppendRequest appends the request payload for (d, opts, a) to dst.
func AppendRequest(dst []byte, d int, opts core.Options, a *sparse.CSC) []byte {
	dst = appendU64(dst, uint64(d))
	dst = appendSketchOpts(dst, opts)
	return AppendCSC(dst, a)
}

// AppendResponse appends r's response payload to dst.
func AppendResponse(dst []byte, r *SketchResponse) []byte {
	dst = append(dst, byte(r.Status))
	if r.Status != StatusOK {
		detail := r.Detail
		dst = appendU32(dst, uint32(len(detail)))
		return append(dst, detail...)
	}
	dst = appendU64(dst, uint64(r.Stats.Samples))
	dst = appendU64(dst, uint64(r.Stats.Flops))
	dst = appendU64(dst, uint64(r.Stats.SampleTime.Nanoseconds()))
	dst = appendU64(dst, uint64(r.Stats.ConvertTime.Nanoseconds()))
	dst = appendU64(dst, uint64(r.Stats.Total.Nanoseconds()))
	dst = appendU64(dst, uint64(r.Stats.Steals))
	dst = appendU64(dst, math.Float64bits(r.Stats.Imbalance))
	return AppendDense(dst, r.Ahat)
}

// AppendBatchRequest appends a batch-request payload: count, then each
// request length-prefixed.
func AppendBatchRequest(dst []byte, reqs []SketchRequest) []byte {
	dst = appendU32(dst, uint32(len(reqs)))
	for i := range reqs {
		n := requestFixedSize + cscPayloadSize(reqs[i].A)
		dst = appendU32(dst, uint32(n))
		dst = AppendRequest(dst, reqs[i].D, reqs[i].Opts, reqs[i].A)
	}
	return dst
}

// AppendBatchResponse appends a batch-response payload: count, then each
// response length-prefixed.
func AppendBatchResponse(dst []byte, rs []SketchResponse) []byte {
	dst = appendU32(dst, uint32(len(rs)))
	for i := range rs {
		mark := len(dst)
		dst = appendU32(dst, 0) // length backpatched below
		dst = AppendResponse(dst, &rs[i])
		putU32(dst[mark:mark+4], uint32(len(dst)-mark-4))
	}
	return dst
}

// EncodeRequestFrame returns a complete single-request frame, ready for an
// HTTP body. A matrix too large for the 32-bit frame length fails with
// ErrTooLarge.
func EncodeRequestFrame(d int, opts core.Options, a *sparse.CSC) ([]byte, error) {
	payload := AppendRequest(make([]byte, 0, requestFixedSize+cscPayloadSize(a)), d, opts, a)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgSketchRequest, payload)
}

// EncodeBatchRequestFrame returns a complete batch-request frame. A batch
// whose total payload exceeds the 32-bit frame length fails with
// ErrTooLarge (per-item u32 lengths are covered by the same check: an
// oversized item makes the whole payload oversized).
func EncodeBatchRequestFrame(reqs []SketchRequest) ([]byte, error) {
	payload := AppendBatchRequest(nil, reqs)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgBatchRequest, payload)
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
