// Package wire is the versioned binary codec of the network serving layer:
// it moves sparse.CSC inputs, dense.Matrix sketches, sketch requests and
// responses between internal/client and internal/server without ever putting
// the random matrix S on the wire — the request carries the seed and
// distribution, and the server regenerates S on the fly, so the traffic per
// sketch is O(nnz(A) + d·n) instead of O(d·m) (the same memory-bus argument
// the paper makes, applied to the network).
//
// # Frame layout
//
// Every message is one length-prefixed frame (all integers little-endian):
//
//	offset  size  field
//	0       3     magic "SKW"
//	3       1     version (currently 4)
//	4       1     message type (MsgType)
//	5       1     flags (must be 0 in version 4)
//	6       2     reserved (must be 0)
//	8       4     payload length (uint32)
//	12      ...   payload
//
// # Payload layouts
//
// CSC (type MsgCSC, and embedded in requests):
//
//	u64 m | u64 n | u64 nnz | (n+1)×u64 ColPtr | nnz×u64 RowIdx |
//	nnz×u64 Val (IEEE-754 bits)
//
// Dense (type MsgDense, and embedded in responses):
//
//	u64 rows | u64 cols | rows·cols×u64 column-major values (IEEE-754 bits)
//
// Sketch request (MsgSketchRequest):
//
//	u64 d | u64 seed | i64 algorithm | i64 dist | i64 source |
//	i64 blockD | i64 blockN | i64 workers | i64 sched | i64 sparsity |
//	f64 rngCost | u8 flags (bit0 Timed, bit1 TuneBlockN) |
//	CSC payload (to end of frame)
//
// (version 2 inserted the sparse-sketch-family i64 sparsity field after
// sched; version-1 frames are rejected by the version check, never
// misparsed.)
//
// Sketch response (MsgSketchResponse):
//
//	u8 status
//	status == StatusOK:  i64 samples | i64 flops | i64 sampleNS |
//	                     i64 convertNS | i64 totalNS | i64 steals |
//	                     f64 imbalance | dense payload (to end of frame)
//	status != StatusOK:  u32 detailLen | detailLen bytes of UTF-8 detail
//
// Batch request/response (MsgBatchRequest / MsgBatchResponse):
//
//	u32 count | count × (u32 len | single request/response payload)
//
// By-reference messages (version 3, ref.go): MsgMatrixPut uploads a CSC
// into the server's content-addressed store, MsgSketchRef asks for a sketch
// by 32-byte fingerprint instead of shipping the matrix, MsgMatrixDelta
// applies a sparse ΔA to a stored matrix, and MsgMatrixInfo answers the put
// and delta messages with the (possibly new) stored identity.
//
// Solve messages (version 4, solve.go): MsgSolveRequest carries a
// least-squares / RandSVD solve (method, gamma/tolerance/rank options, RHS
// vector, and either an inline CSC or a stored fingerprint),
// MsgSolveResponse answers with the solution vector or low-rank factors
// plus the solver's Info measurements, and MsgJobStatus reports an async
// job's lifecycle state, progress, and — once terminal — its embedded
// result.
//
// Shard batch messages (shardbatch.go): MsgShardBatchRequest groups
// several column shards bound for one worker into a single frame (the
// coordinator's per-peer fan-out), answered index-aligned by
// MsgShardBatchResponse. The pair rides version 4 unchanged — no existing
// layout or status moved.
//
// # Error taxonomy
//
// Statuses are the wire form of the typed errors the lower layers already
// expose: decode maps a Status back onto the same sentinels
// (core.ErrInvalidMatrix, service.ErrOverloaded, ...) via StatusError, so
// errors.Is works identically in-process and across the network. Only
// StatusOverloaded is retryable; invalid-input statuses never are.
//
// Decoding is total: arbitrary byte mutations are rejected with
// ErrMalformed (or ErrTooLarge), never a panic — FuzzWireRoundtrip pins
// this, and the server depends on it to face untrusted bodies.
package wire

import (
	"context"
	"errors"
	"fmt"
	"io"

	"sketchsp/internal/core"
	"sketchsp/internal/jobs"
	"sketchsp/internal/service"
	"sketchsp/internal/store"
)

// Version is the frame format version this package encodes and accepts.
// Version 2 added the request sparsity field (sparse sketch family);
// version 3 added the by-reference messages (matrix put / sketch-by-ref /
// delta) and StatusNotFound; version 4 added the solve messages
// (solve-request / solve-response / job-status) and StatusJobNotFound.
// Old frames are rejected by the version check, never misparsed.
const Version = 4

// HeaderSize is the fixed frame-header length preceding every payload.
const HeaderSize = 12

// DefaultMaxPayload bounds a frame's payload when the caller passes
// maxPayload <= 0: 1 GiB, far above any benchmarked matrix but low enough
// that a corrupt length field cannot demand an absurd allocation.
const DefaultMaxPayload = 1 << 30

// MaxFramePayload is the hard encode-side payload ceiling: the header's
// length field is 32 bits, so a larger payload cannot be framed at all.
// Encoders reject it with ErrTooLarge instead of silently wrapping the
// length and desyncing the stream (a batch of several near-1-GiB items can
// legitimately reach this).
const MaxFramePayload = 1<<32 - 1

// MsgType tags what a frame's payload contains.
type MsgType uint8

const (
	// MsgSketchRequest is a single sketch request (d, options, CSC input).
	MsgSketchRequest MsgType = 1
	// MsgSketchResponse is the outcome of a single request.
	MsgSketchResponse MsgType = 2
	// MsgBatchRequest is a count-prefixed sequence of sketch requests.
	MsgBatchRequest MsgType = 3
	// MsgBatchResponse is the index-aligned sequence of responses.
	MsgBatchResponse MsgType = 4
	// MsgCSC is a standalone sparse matrix (tools and tests).
	MsgCSC MsgType = 5
	// MsgDense is a standalone dense matrix (tools and tests).
	MsgDense MsgType = 6
	// MsgShardRequest is a coordinator→worker request for one column shard
	// of a larger sketch (shard.go).
	MsgShardRequest MsgType = 7
	// MsgShardResponse is the partial sketch of one column shard.
	MsgShardResponse MsgType = 8
	// MsgMatrixPut uploads a CSC matrix into the server's content-addressed
	// store (PUT /v1/matrix); answered with MsgMatrixInfo.
	MsgMatrixPut MsgType = 9
	// MsgMatrixInfo is the outcome of a matrix put or delta: the stored
	// identity (fingerprint, bytes, created flag) or an error status.
	MsgMatrixInfo MsgType = 10
	// MsgSketchRef is a sketch request that names its matrix by fingerprint
	// instead of embedding it; answered with MsgSketchResponse
	// (StatusNotFound when the matrix is not resident).
	MsgSketchRef MsgType = 11
	// MsgMatrixDelta applies a sparse delta ΔA to the stored matrix named
	// by its fingerprint (PATCH /v1/matrix/{fp}); answered with
	// MsgMatrixInfo carrying the post-update identity.
	MsgMatrixDelta MsgType = 12
	// MsgSolveRequest is a least-squares or RandSVD solve request
	// (POST /v1/solve); answered with MsgSolveResponse, or MsgJobStatus
	// when the solve is admitted as an async job.
	MsgSolveRequest MsgType = 13
	// MsgSolveResponse is the outcome of a solve: solution vector or
	// low-rank factors plus timing/iteration Info, or an error status.
	MsgSolveResponse MsgType = 14
	// MsgJobStatus reports an async job (GET/DELETE /v1/jobs/{id} and the
	// 202 Accepted answer of POST /v1/solve): lifecycle state, iteration
	// progress, and the embedded solve result once terminal.
	MsgJobStatus MsgType = 15
)

// String implements fmt.Stringer for MsgType.
func (t MsgType) String() string {
	switch t {
	case MsgSketchRequest:
		return "sketch-request"
	case MsgSketchResponse:
		return "sketch-response"
	case MsgBatchRequest:
		return "batch-request"
	case MsgBatchResponse:
		return "batch-response"
	case MsgCSC:
		return "csc"
	case MsgDense:
		return "dense"
	case MsgShardRequest:
		return "shard-request"
	case MsgShardResponse:
		return "shard-response"
	case MsgMatrixPut:
		return "matrix-put"
	case MsgMatrixInfo:
		return "matrix-info"
	case MsgSketchRef:
		return "sketch-ref"
	case MsgMatrixDelta:
		return "matrix-delta"
	case MsgSolveRequest:
		return "solve-request"
	case MsgSolveResponse:
		return "solve-response"
	case MsgJobStatus:
		return "job-status"
	case MsgShardBatchRequest:
		return "shard-batch-request"
	case MsgShardBatchResponse:
		return "shard-batch-response"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Codec-level errors. ErrMalformed covers every structural defect a decoder
// can meet — bad magic, unknown version, truncated payload, inconsistent
// array lengths, out-of-domain enum values — so a server can treat any
// errors.Is(err, ErrMalformed) as "reject with StatusMalformed, HTTP 400".
var (
	// ErrMalformed is returned for bytes that are not a well-formed message.
	ErrMalformed = errors.New("wire: malformed message")
	// ErrTooLarge is returned when a frame's declared payload exceeds the
	// caller's size limit.
	ErrTooLarge = errors.New("wire: message exceeds size limit")
	// ErrInternal is the client-side sentinel for StatusInternal: the
	// server failed in a way it did not classify.
	ErrInternal = errors.New("wire: internal server error")
)

// Status is the typed outcome code of a sketch response. The zero value is
// success; every non-zero code corresponds to exactly one error sentinel of
// the lower layers (see Err), so classification survives the network.
type Status uint8

const (
	// StatusOK: the sketch completed; the response carries Â and Stats.
	StatusOK Status = 0
	// StatusInvalidMatrix: the CSC input was structurally broken
	// (core.ErrInvalidMatrix).
	StatusInvalidMatrix Status = 1
	// StatusInvalidSketchSize: d was not positive (core.ErrInvalidSketchSize).
	StatusInvalidSketchSize Status = 2
	// StatusBadOptions: an Options field was out of domain (core.ErrBadOptions).
	StatusBadOptions Status = 3
	// StatusNilMatrix: the request carried no matrix (core.ErrNilMatrix).
	StatusNilMatrix Status = 4
	// StatusPlanClosed: the plan was released mid-request (core.ErrPlanClosed).
	StatusPlanClosed Status = 5
	// StatusOverloaded: the admission queue was full (service.ErrOverloaded).
	// The only retryable status — the server is healthy but saturated.
	StatusOverloaded Status = 6
	// StatusClosed: the service is shut down or draining (service.ErrClosed).
	StatusClosed Status = 7
	// StatusDeadlineExceeded: the request deadline fired
	// (context.DeadlineExceeded).
	StatusDeadlineExceeded Status = 8
	// StatusCanceled: the request context was canceled (context.Canceled).
	StatusCanceled Status = 9
	// StatusMalformed: the request bytes did not decode (ErrMalformed).
	StatusMalformed Status = 10
	// StatusInternal: an unclassified server-side failure (ErrInternal).
	StatusInternal Status = 11
	// StatusNotFound: the fingerprint named no resident matrix
	// (store.ErrNotFound). Not retryable as-is — resending the same
	// reference finds the same nothing — but curable: the client's
	// 404-then-upload fallback PUTs the matrix and reissues the reference
	// once.
	StatusNotFound Status = 12
	// StatusJobNotFound: the job ID named no resident job record
	// (jobs.ErrNotFound) — it never existed, or its result aged out of the
	// TTL/byte-budgeted retention. Not retryable: the result is gone.
	StatusJobNotFound Status = 13
)

// maxStatus is the last defined status; decoders reject anything above it.
const maxStatus = StatusJobNotFound

// String implements fmt.Stringer for Status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalidMatrix:
		return "invalid-matrix"
	case StatusInvalidSketchSize:
		return "invalid-sketch-size"
	case StatusBadOptions:
		return "bad-options"
	case StatusNilMatrix:
		return "nil-matrix"
	case StatusPlanClosed:
		return "plan-closed"
	case StatusOverloaded:
		return "overloaded"
	case StatusClosed:
		return "closed"
	case StatusDeadlineExceeded:
		return "deadline-exceeded"
	case StatusCanceled:
		return "canceled"
	case StatusMalformed:
		return "malformed"
	case StatusInternal:
		return "internal"
	case StatusNotFound:
		return "not-found"
	case StatusJobNotFound:
		return "job-not-found"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Retryable reports whether a request that failed with this status may
// succeed if simply retried later. Only overload qualifies: invalid inputs
// stay invalid, and a closed server is draining for good.
func (s Status) Retryable() bool { return s == StatusOverloaded }

// StatusOf classifies an error from the service/core layers into its wire
// status. Unrecognised errors map to StatusInternal — the taxonomy is
// closed, so new failure modes degrade to a non-retryable 500, never to a
// silently wrong retry.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, store.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, jobs.ErrNotFound):
		return StatusJobNotFound
	case errors.Is(err, jobs.ErrQueueFull):
		// The jobs layer's saturation signal rides the same retryable
		// status as admission-queue overload.
		return StatusOverloaded
	case errors.Is(err, service.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, service.ErrClosed):
		return StatusClosed
	case errors.Is(err, core.ErrNilMatrix):
		return StatusNilMatrix
	case errors.Is(err, core.ErrInvalidSketchSize):
		return StatusInvalidSketchSize
	case errors.Is(err, core.ErrInvalidMatrix):
		return StatusInvalidMatrix
	case errors.Is(err, core.ErrBadOptions):
		return StatusBadOptions
	case errors.Is(err, core.ErrPlanClosed):
		return StatusPlanClosed
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return StatusCanceled
	case errors.Is(err, ErrMalformed), errors.Is(err, ErrTooLarge):
		return StatusMalformed
	default:
		return StatusInternal
	}
}

// sentinel returns the error sentinel a non-OK status stands for.
func (s Status) sentinel() error {
	switch s {
	case StatusInvalidMatrix:
		return core.ErrInvalidMatrix
	case StatusInvalidSketchSize:
		return core.ErrInvalidSketchSize
	case StatusBadOptions:
		return core.ErrBadOptions
	case StatusNilMatrix:
		return core.ErrNilMatrix
	case StatusPlanClosed:
		return core.ErrPlanClosed
	case StatusOverloaded:
		return service.ErrOverloaded
	case StatusClosed:
		return service.ErrClosed
	case StatusDeadlineExceeded:
		return context.DeadlineExceeded
	case StatusCanceled:
		return context.Canceled
	case StatusMalformed:
		return ErrMalformed
	case StatusNotFound:
		return store.ErrNotFound
	case StatusJobNotFound:
		return jobs.ErrNotFound
	default:
		return ErrInternal
	}
}

// StatusError is the error a client surfaces for a non-OK response. It
// unwraps to the status's canonical sentinel, so
// errors.Is(err, service.ErrOverloaded) holds across the network exactly as
// it does in-process.
type StatusError struct {
	Code   Status
	Detail string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Detail == "" {
		return "wire: " + e.Code.String()
	}
	return "wire: " + e.Code.String() + ": " + e.Detail
}

// Unwrap exposes the canonical sentinel for errors.Is chains.
func (e *StatusError) Unwrap() error { return e.Code.sentinel() }

// Err converts a non-OK status (plus optional detail) back into an error;
// StatusOK yields nil.
func (s Status) Err(detail string) error {
	if s == StatusOK {
		return nil
	}
	return &StatusError{Code: s, Detail: detail}
}

// ---- frame I/O ----

func putU32(dst []byte, v uint32) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}

func getU32(src []byte) uint32 {
	return uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
}

func putU64(dst []byte, v uint64) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
	dst[4] = byte(v >> 32)
	dst[5] = byte(v >> 40)
	dst[6] = byte(v >> 48)
	dst[7] = byte(v >> 56)
}

func getU64(src []byte) uint64 {
	return uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 |
		uint64(src[3])<<24 | uint64(src[4])<<32 | uint64(src[5])<<40 |
		uint64(src[6])<<48 | uint64(src[7])<<56
}

// AppendFrame appends a complete frame (header + payload) to dst and
// returns the extended slice. A payload beyond MaxFramePayload cannot be
// expressed in the 32-bit length field and fails with ErrTooLarge, leaving
// dst unextended.
func AppendFrame(dst []byte, t MsgType, payload []byte) ([]byte, error) {
	if uint64(len(payload)) > MaxFramePayload {
		return dst, fmt.Errorf("%w: payload %d bytes exceeds the %d-byte frame limit", ErrTooLarge, len(payload), uint64(MaxFramePayload))
	}
	var hdr [HeaderSize]byte
	hdr[0], hdr[1], hdr[2] = 'S', 'K', 'W'
	hdr[3] = Version
	hdr[4] = byte(t)
	putU32(hdr[8:12], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// SplitFrame parses one frame from buf without copying: the returned
// payload aliases buf, and rest is whatever follows the frame (non-empty
// only in concatenated streams). maxPayload <= 0 selects DefaultMaxPayload.
func SplitFrame(buf []byte, maxPayload int) (t MsgType, payload, rest []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(buf) < HeaderSize {
		return 0, nil, nil, fmt.Errorf("%w: %d-byte buffer shorter than the %d-byte header", ErrMalformed, len(buf), HeaderSize)
	}
	if buf[0] != 'S' || buf[1] != 'K' || buf[2] != 'W' {
		return 0, nil, nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, buf[:3])
	}
	if buf[3] != Version {
		return 0, nil, nil, fmt.Errorf("%w: unsupported version %d", ErrMalformed, buf[3])
	}
	if buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
		return 0, nil, nil, fmt.Errorf("%w: nonzero reserved header bytes", ErrMalformed)
	}
	n := int64(getU32(buf[8:12]))
	if n > int64(maxPayload) {
		return 0, nil, nil, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, n, maxPayload)
	}
	if int64(len(buf)-HeaderSize) < n {
		return 0, nil, nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrMalformed, len(buf)-HeaderSize, n)
	}
	end := HeaderSize + int(n)
	return MsgType(buf[4]), buf[HeaderSize:end], buf[end:], nil
}

// WriteMessage writes one frame to w. Like AppendFrame, a payload beyond
// MaxFramePayload fails with ErrTooLarge before anything is written.
func WriteMessage(w io.Writer, t MsgType, payload []byte) error {
	if uint64(len(payload)) > MaxFramePayload {
		return fmt.Errorf("%w: payload %d bytes exceeds the %d-byte frame limit", ErrTooLarge, len(payload), uint64(MaxFramePayload))
	}
	var hdr [HeaderSize]byte
	hdr[0], hdr[1], hdr[2] = 'S', 'K', 'W'
	hdr[3] = Version
	hdr[4] = byte(t)
	putU32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one frame from r, allocating the payload. maxPayload
// <= 0 selects DefaultMaxPayload; a declared length beyond it fails with
// ErrTooLarge before any allocation.
func ReadMessage(r io.Reader, maxPayload int) (MsgType, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: truncated header", ErrMalformed)
		}
		return 0, nil, err
	}
	if hdr[0] != 'S' || hdr[1] != 'K' || hdr[2] != 'W' {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, hdr[:3])
	}
	if hdr[3] != Version {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrMalformed, hdr[3])
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return 0, nil, fmt.Errorf("%w: nonzero reserved header bytes", ErrMalformed)
	}
	n := int64(getU32(hdr[8:12]))
	if n > int64(maxPayload) {
		return 0, nil, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrMalformed, err)
	}
	return MsgType(hdr[4]), payload, nil
}
