package wire

import (
	"fmt"
	"math"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/jobs"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
)

// Version-4 solve messages: MsgSolveRequest carries one least-squares or
// RandSVD solve, MsgSolveResponse its outcome, MsgJobStatus the state of
// an async job. Payload layouts (all integers little-endian):
//
// Solve request (MsgSolveRequest):
//
//	u8 method | u8 flags (bit0 async, bit1 by-ref) |
//	f64 gamma | f64 atol | f64 svdDrop |
//	u64 maxIters | u64 rank | u64 oversample | u64 powerIters |
//	core.Options block (seed, 8 option i64s, rngCost, flag byte — the
//	same optsWireSize layout as sketch requests; no d field, the server
//	derives d from gamma) |
//	u64 lenB | lenB×f64 b |
//	by-ref: 32-byte fingerprint (to end)   inline: CSC payload (to end)
//
// Solve response (MsgSolveResponse):
//
//	u8 status
//	status != StatusOK: u32 detailLen | detail
//	status == StatusOK:
//	  u8 kind (0 solution, 1 factors) | u8 method |
//	  u8 infoFlags (bit0 converged, bit1 precond-cached) |
//	  i64 sketchNS | i64 factorNS | i64 iterNS | i64 totalNS |
//	  i64 iters | i64 memoryBytes | f64 residual |
//	  kind 0: u64 len | len×f64 x (to end)
//	  kind 1: u64 k | k×f64 sigma | u32 uLen | dense U | dense V (to end)
//
// Job status (MsgJobStatus):
//
//	u8 status
//	status != StatusOK: u32 detailLen | detail
//	status == StatusOK:
//	  u8 state | i64 iters | f64 resid | u32 idLen | id bytes |
//	  u8 hasResult | (hasResult == 1: solve-response payload, to end)
//
// All three decoders are total, strict and exact, like v1–v3.

// SolveMethod is the wire-level solve-method enum. It is narrower than
// solver.Method on purpose: MethodDirect is a CLI baseline, not a serving
// mode, so it has no wire value.
type SolveMethod uint8

// The five request modes of POST /v1/solve.
const (
	// SolveSAPQR: sketch-and-precondition least squares, QR preconditioner.
	SolveSAPQR SolveMethod = 0
	// SolveSAPSVD: sketch-and-precondition, SVD preconditioner.
	SolveSAPSVD SolveMethod = 1
	// SolveMinNorm: minimum-norm solution of a wide consistent system.
	SolveMinNorm SolveMethod = 2
	// SolveLSQRD: the diagonal-preconditioner LSQR baseline.
	SolveLSQRD SolveMethod = 3
	// SolveRandSVD: rank-k randomized SVD; the response carries factors.
	SolveRandSVD SolveMethod = 4
)

// maxSolveMethod is the last defined method; decoders reject above it.
const maxSolveMethod = SolveRandSVD

// String implements fmt.Stringer for SolveMethod.
func (m SolveMethod) String() string {
	switch m {
	case SolveSAPQR:
		return "sap-qr"
	case SolveSAPSVD:
		return "sap-svd"
	case SolveMinNorm:
		return "min-norm"
	case SolveLSQRD:
		return "lsqr-d"
	case SolveRandSVD:
		return "rand-svd"
	default:
		return fmt.Sprintf("SolveMethod(%d)", uint8(m))
	}
}

// SolverMethod maps the wire enum onto the solver package's enum.
func (m SolveMethod) SolverMethod() solver.Method {
	switch m {
	case SolveSAPQR:
		return solver.MethodSAPQR
	case SolveSAPSVD:
		return solver.MethodSAPSVD
	case SolveMinNorm:
		return solver.MethodMinNorm
	case SolveLSQRD:
		return solver.MethodLSQRD
	default:
		return solver.MethodRandSVD
	}
}

// SolveMethodOf maps a solver.Method onto the wire enum; ok is false for
// methods with no wire form (MethodDirect).
func SolveMethodOf(m solver.Method) (SolveMethod, bool) {
	switch m {
	case solver.MethodSAPQR:
		return SolveSAPQR, true
	case solver.MethodSAPSVD:
		return SolveSAPSVD, true
	case solver.MethodMinNorm:
		return SolveMinNorm, true
	case solver.MethodLSQRD:
		return SolveLSQRD, true
	case solver.MethodRandSVD:
		return SolveRandSVD, true
	default:
		return 0, false
	}
}

// SolveRequest is the decoded form of a MsgSolveRequest payload.
type SolveRequest struct {
	Method SolveMethod
	// Async forces job handling even for a small problem; large problems
	// become jobs regardless (the server's size threshold).
	Async bool
	// Gamma, Atol, SVDDrop, MaxIters are the solver.Options knobs (0 =
	// solver default).
	Gamma    float64
	Atol     float64
	SVDDrop  float64
	MaxIters int
	// Rank, Oversample, PowerIters configure SolveRandSVD (ignored
	// otherwise).
	Rank       int
	Oversample int
	PowerIters int
	// Opts carries the sketch configuration; the sketch size d is derived
	// server-side from Gamma, never sent.
	Opts core.Options
	// B is the right-hand side (empty for SolveRandSVD).
	B []float64
	// Exactly one matrix identity: A inline, or Fp naming a stored matrix
	// when ByRef is set.
	A     *sparse.CSC
	ByRef bool
	Fp    sparse.Fingerprint
}

// solveFixedSize is the fixed-width prefix before the RHS values.
const solveFixedSize = 1 + 1 + 3*8 + 4*8 + optsWireSize + 8

// AppendSolveRequest appends r's payload to dst.
func AppendSolveRequest(dst []byte, r *SolveRequest) []byte {
	dst = append(dst, byte(r.Method))
	var flags byte
	if r.Async {
		flags |= 1
	}
	if r.ByRef {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = appendU64(dst, math.Float64bits(r.Gamma))
	dst = appendU64(dst, math.Float64bits(r.Atol))
	dst = appendU64(dst, math.Float64bits(r.SVDDrop))
	dst = appendU64(dst, uint64(r.MaxIters))
	dst = appendU64(dst, uint64(r.Rank))
	dst = appendU64(dst, uint64(r.Oversample))
	dst = appendU64(dst, uint64(r.PowerIters))
	dst = appendSketchOpts(dst, r.Opts)
	dst = appendU64(dst, uint64(len(r.B)))
	for _, v := range r.B {
		dst = appendU64(dst, math.Float64bits(v))
	}
	if r.ByRef {
		return appendFingerprint(dst, r.Fp)
	}
	return AppendCSC(dst, r.A)
}

// DecodeSolveRequest decodes a solve-request payload.
func DecodeSolveRequest(payload []byte) (*SolveRequest, error) {
	if len(payload) < solveFixedSize {
		return nil, fmt.Errorf("%w: solve request %d bytes, want >= %d", ErrMalformed, len(payload), solveFixedSize)
	}
	r := new(SolveRequest)
	method := payload[0]
	if SolveMethod(method) > maxSolveMethod {
		return nil, fmt.Errorf("%w: solve method %d out of domain", ErrMalformed, method)
	}
	r.Method = SolveMethod(method)
	flags := payload[1]
	if flags&^3 != 0 {
		return nil, fmt.Errorf("%w: unknown solve flags %#x", ErrMalformed, flags)
	}
	r.Async = flags&1 != 0
	r.ByRef = flags&2 != 0
	r.Gamma = math.Float64frombits(getU64(payload[2:]))
	r.Atol = math.Float64frombits(getU64(payload[10:]))
	r.SVDDrop = math.Float64frombits(getU64(payload[18:]))
	maxIters := getU64(payload[26:])
	rank := getU64(payload[34:])
	oversample := getU64(payload[42:])
	powerIters := getU64(payload[50:])
	switch {
	case math.IsNaN(r.Gamma) || math.IsInf(r.Gamma, 0) || r.Gamma < 0 || r.Gamma > MaxDim:
		return nil, fmt.Errorf("%w: gamma out of domain", ErrMalformed)
	case math.IsNaN(r.Atol) || math.IsInf(r.Atol, 0) || r.Atol < 0:
		return nil, fmt.Errorf("%w: atol out of domain", ErrMalformed)
	case math.IsNaN(r.SVDDrop) || r.SVDDrop < 0 || r.SVDDrop >= 1:
		return nil, fmt.Errorf("%w: svdDrop out of domain", ErrMalformed)
	case maxIters > MaxDim || rank > MaxDim || oversample > MaxDim || powerIters > MaxDim:
		return nil, fmt.Errorf("%w: iteration/rank bounds out of domain", ErrMalformed)
	}
	r.MaxIters = int(maxIters)
	r.Rank = int(rank)
	r.Oversample = int(oversample)
	r.PowerIters = int(powerIters)
	opts, err := decodeSketchOpts(payload[58:])
	if err != nil {
		return nil, err
	}
	r.Opts = opts
	lenB := getU64(payload[solveFixedSize-8:])
	rest := payload[solveFixedSize:]
	if lenB > uint64(len(rest))/8 {
		return nil, fmt.Errorf("%w: RHS length %d inconsistent with %d payload bytes", ErrMalformed, lenB, len(rest))
	}
	r.B = make([]float64, lenB)
	for i := range r.B {
		r.B[i] = math.Float64frombits(getU64(rest[8*i:]))
	}
	rest = rest[8*lenB:]
	if r.ByRef {
		if len(rest) != fingerprintWireSize {
			return nil, fmt.Errorf("%w: solve fingerprint %d bytes, want %d", ErrMalformed, len(rest), fingerprintWireSize)
		}
		fp, err := decodeFingerprint(rest)
		if err != nil {
			return nil, err
		}
		r.Fp = fp
		return r, nil
	}
	a, err := DecodeCSC(rest)
	if err != nil {
		return nil, err
	}
	r.A = a
	return r, nil
}

// EncodeSolveRequestFrame returns a complete solve-request frame.
func EncodeSolveRequestFrame(r *SolveRequest) ([]byte, error) {
	n := solveFixedSize + 8*len(r.B)
	if r.ByRef {
		n += fingerprintWireSize
	} else if r.A != nil {
		n += cscPayloadSize(r.A)
	}
	payload := AppendSolveRequest(make([]byte, 0, n), r)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgSolveRequest, payload)
}

// SolveInfo is the wire form of solver.Info plus serving-side annotations.
type SolveInfo struct {
	Method        SolveMethod
	Converged     bool
	PrecondCached bool
	// SketchNS/FactorNS/IterNS/TotalNS are solver.Info's stage timings in
	// nanoseconds. For a preconditioner-cache hit, sketch and factor
	// report the original build cost.
	SketchNS, FactorNS, IterNS, TotalNS int64
	Iters                               int
	MemoryBytes                         int64
	// Residual is the achieved backward error ‖Aᵀr‖/(‖A‖_F·‖r‖)
	// (solver.ErrorMetric) of the returned solution; 0 for factor
	// responses.
	Residual float64
}

// RSVDFactors is the factor payload of a SolveRandSVD response.
type RSVDFactors struct {
	// U (m×k) and V (n×k) have orthonormal columns; Sigma holds the k
	// approximate singular values.
	U, V  *dense.Matrix
	Sigma []float64
}

// SolveResponse is the decoded form of a MsgSolveResponse payload: an
// error status with detail, or an OK outcome carrying Info plus exactly
// one of X (least-squares solution) or Factors (RandSVD).
type SolveResponse struct {
	Status  Status
	Detail  string
	Info    SolveInfo
	X       []float64
	Factors *RSVDFactors
}

// Err converts the response outcome into an error (nil for StatusOK).
func (r *SolveResponse) Err() error { return r.Status.Err(r.Detail) }

const solveInfoSize = 1 + 1 + 1 + 6*8 + 8 // kind, method, flags, 6 i64, residual

// AppendSolveResponse appends r's payload to dst.
func AppendSolveResponse(dst []byte, r *SolveResponse) []byte {
	dst = append(dst, byte(r.Status))
	if r.Status != StatusOK {
		dst = appendU32(dst, uint32(len(r.Detail)))
		return append(dst, r.Detail...)
	}
	var kind byte
	if r.Factors != nil {
		kind = 1
	}
	dst = append(dst, kind, byte(r.Info.Method))
	var flags byte
	if r.Info.Converged {
		flags |= 1
	}
	if r.Info.PrecondCached {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = appendU64(dst, uint64(r.Info.SketchNS))
	dst = appendU64(dst, uint64(r.Info.FactorNS))
	dst = appendU64(dst, uint64(r.Info.IterNS))
	dst = appendU64(dst, uint64(r.Info.TotalNS))
	dst = appendU64(dst, uint64(int64(r.Info.Iters)))
	dst = appendU64(dst, uint64(r.Info.MemoryBytes))
	dst = appendU64(dst, math.Float64bits(r.Info.Residual))
	if kind == 0 {
		dst = appendU64(dst, uint64(len(r.X)))
		for _, v := range r.X {
			dst = appendU64(dst, math.Float64bits(v))
		}
		return dst
	}
	f := r.Factors
	dst = appendU64(dst, uint64(len(f.Sigma)))
	for _, v := range f.Sigma {
		dst = appendU64(dst, math.Float64bits(v))
	}
	uLen := 16 + 8*f.U.Rows*f.U.Cols
	dst = appendU32(dst, uint32(uLen))
	dst = AppendDense(dst, f.U)
	return AppendDense(dst, f.V)
}

// DecodeSolveResponse decodes a solve-response payload.
func DecodeSolveResponse(payload []byte) (*SolveResponse, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty solve response", ErrMalformed)
	}
	st := Status(payload[0])
	if st > maxStatus {
		return nil, fmt.Errorf("%w: unknown status %d", ErrMalformed, payload[0])
	}
	r := &SolveResponse{Status: st}
	if st != StatusOK {
		if len(payload) < 5 {
			return nil, fmt.Errorf("%w: truncated solve error", ErrMalformed)
		}
		n := uint64(getU32(payload[1:5]))
		if uint64(len(payload)-5) != n {
			return nil, fmt.Errorf("%w: solve error detail %d bytes, want %d", ErrMalformed, len(payload)-5, n)
		}
		r.Detail = string(payload[5:])
		return r, nil
	}
	if len(payload) < 1+solveInfoSize {
		return nil, fmt.Errorf("%w: truncated solve info", ErrMalformed)
	}
	kind := payload[1]
	if kind > 1 {
		return nil, fmt.Errorf("%w: solve payload kind %d out of domain", ErrMalformed, kind)
	}
	method := payload[2]
	if SolveMethod(method) > maxSolveMethod {
		return nil, fmt.Errorf("%w: solve method %d out of domain", ErrMalformed, method)
	}
	r.Info.Method = SolveMethod(method)
	flags := payload[3]
	if flags&^3 != 0 {
		return nil, fmt.Errorf("%w: unknown solve info flags %#x", ErrMalformed, flags)
	}
	r.Info.Converged = flags&1 != 0
	r.Info.PrecondCached = flags&2 != 0
	r.Info.SketchNS = int64(getU64(payload[4:]))
	r.Info.FactorNS = int64(getU64(payload[12:]))
	r.Info.IterNS = int64(getU64(payload[20:]))
	r.Info.TotalNS = int64(getU64(payload[28:]))
	iters := int64(getU64(payload[36:]))
	r.Info.MemoryBytes = int64(getU64(payload[44:]))
	r.Info.Residual = math.Float64frombits(getU64(payload[52:]))
	if r.Info.SketchNS < 0 || r.Info.FactorNS < 0 || r.Info.IterNS < 0 ||
		r.Info.TotalNS < 0 || iters < 0 || iters > MaxDim || r.Info.MemoryBytes < 0 {
		return nil, fmt.Errorf("%w: negative solve info fields", ErrMalformed)
	}
	if math.IsNaN(r.Info.Residual) || math.IsInf(r.Info.Residual, 0) || r.Info.Residual < 0 {
		return nil, fmt.Errorf("%w: non-finite or negative residual", ErrMalformed)
	}
	r.Info.Iters = int(iters)
	rest := payload[1+solveInfoSize:]
	if kind == 0 {
		if len(rest) < 8 {
			return nil, fmt.Errorf("%w: truncated solution length", ErrMalformed)
		}
		n := getU64(rest[0:])
		if n != uint64(len(rest)-8)/8 || 8+8*n != uint64(len(rest)) {
			return nil, fmt.Errorf("%w: solution length %d inconsistent with %d bytes", ErrMalformed, n, len(rest))
		}
		r.X = make([]float64, n)
		for i := range r.X {
			r.X[i] = math.Float64frombits(getU64(rest[8+8*i:]))
		}
		return r, nil
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: truncated factor payload", ErrMalformed)
	}
	k := getU64(rest[0:])
	if k > MaxDim || k > uint64(len(rest)-8)/8 {
		return nil, fmt.Errorf("%w: factor count %d inconsistent with %d bytes", ErrMalformed, k, len(rest))
	}
	f := &RSVDFactors{Sigma: make([]float64, k)}
	for i := range f.Sigma {
		f.Sigma[i] = math.Float64frombits(getU64(rest[8+8*i:]))
	}
	rest = rest[8+8*k:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated factor split", ErrMalformed)
	}
	uLen := uint64(getU32(rest[0:4]))
	rest = rest[4:]
	if uLen > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: U factor claims %d of %d bytes", ErrMalformed, uLen, len(rest))
	}
	f.U = new(dense.Matrix)
	if err := DecodeDenseInto(f.U, rest[:uLen]); err != nil {
		return nil, err
	}
	f.V = new(dense.Matrix)
	if err := DecodeDenseInto(f.V, rest[uLen:]); err != nil {
		return nil, err
	}
	if f.U.Cols != int(k) || f.V.Cols != int(k) {
		return nil, fmt.Errorf("%w: factor ranks U=%d V=%d, want %d", ErrMalformed, f.U.Cols, f.V.Cols, k)
	}
	r.Factors = f
	return r, nil
}

// JobStatus is the decoded form of a MsgJobStatus payload: the envelope
// Status covers the jobs-API outcome itself (StatusJobNotFound for an
// unknown ID), while State/Iters/Resid describe the job. Result embeds the
// job's solve response once the job is terminal and its result is still
// retained.
type JobStatus struct {
	Status Status
	Detail string
	ID     string
	State  jobs.State
	Iters  int
	Resid  float64
	Result *SolveResponse
}

// Err converts the envelope outcome into an error (nil for StatusOK).
func (j *JobStatus) Err() error { return j.Status.Err(j.Detail) }

// maxJobIDLen bounds the wire form of a job ID; the manager's IDs are 32
// hex characters.
const maxJobIDLen = 64

// AppendJobStatus appends j's payload to dst.
func AppendJobStatus(dst []byte, j *JobStatus) []byte {
	dst = append(dst, byte(j.Status))
	if j.Status != StatusOK {
		dst = appendU32(dst, uint32(len(j.Detail)))
		return append(dst, j.Detail...)
	}
	dst = append(dst, byte(j.State))
	dst = appendU64(dst, uint64(int64(j.Iters)))
	dst = appendU64(dst, math.Float64bits(j.Resid))
	dst = appendU32(dst, uint32(len(j.ID)))
	dst = append(dst, j.ID...)
	if j.Result == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return AppendSolveResponse(dst, j.Result)
}

// DecodeJobStatus decodes a job-status payload.
func DecodeJobStatus(payload []byte) (*JobStatus, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty job status", ErrMalformed)
	}
	st := Status(payload[0])
	if st > maxStatus {
		return nil, fmt.Errorf("%w: unknown status %d", ErrMalformed, payload[0])
	}
	j := &JobStatus{Status: st}
	if st != StatusOK {
		if len(payload) < 5 {
			return nil, fmt.Errorf("%w: truncated job-status error", ErrMalformed)
		}
		n := uint64(getU32(payload[1:5]))
		if uint64(len(payload)-5) != n {
			return nil, fmt.Errorf("%w: job-status detail %d bytes, want %d", ErrMalformed, len(payload)-5, n)
		}
		j.Detail = string(payload[5:])
		return j, nil
	}
	const fixed = 1 + 1 + 8 + 8 + 4 // status, state, iters, resid, idLen
	if len(payload) < fixed {
		return nil, fmt.Errorf("%w: truncated job status", ErrMalformed)
	}
	state := payload[1]
	if jobs.State(state) > jobs.StateCancelled {
		return nil, fmt.Errorf("%w: job state %d out of domain", ErrMalformed, state)
	}
	j.State = jobs.State(state)
	iters := int64(getU64(payload[2:]))
	if iters < 0 || iters > MaxDim {
		return nil, fmt.Errorf("%w: job iterations out of domain", ErrMalformed)
	}
	j.Iters = int(iters)
	j.Resid = math.Float64frombits(getU64(payload[10:]))
	if math.IsNaN(j.Resid) || math.IsInf(j.Resid, 0) || j.Resid < 0 {
		return nil, fmt.Errorf("%w: non-finite or negative job residual", ErrMalformed)
	}
	idLen := uint64(getU32(payload[18:22]))
	rest := payload[22:]
	if idLen == 0 || idLen > maxJobIDLen || idLen > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: job ID length %d out of domain", ErrMalformed, idLen)
	}
	id := rest[:idLen]
	for _, c := range id {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c == '-') {
			return nil, fmt.Errorf("%w: job ID contains byte %#x", ErrMalformed, c)
		}
	}
	j.ID = string(id)
	rest = rest[idLen:]
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: truncated job result flag", ErrMalformed)
	}
	switch rest[0] {
	case 0:
		if len(rest) != 1 {
			return nil, fmt.Errorf("%w: %d trailing bytes after job status", ErrMalformed, len(rest)-1)
		}
		return j, nil
	case 1:
		res, err := DecodeSolveResponse(rest[1:])
		if err != nil {
			return nil, err
		}
		j.Result = res
		return j, nil
	default:
		return nil, fmt.Errorf("%w: job result flag %d out of domain", ErrMalformed, rest[0])
	}
}

// EncodeJobStatusFrame returns a complete job-status frame.
func EncodeJobStatusFrame(j *JobStatus) ([]byte, error) {
	payload := AppendJobStatus(nil, j)
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), MsgJobStatus, payload)
}

// SolveInfoOf converts a solver.Info into its wire form, attaching the
// achieved residual and cache annotation the serving layer computed.
func SolveInfoOf(info solver.Info, residual float64, precondCached bool) (SolveInfo, bool) {
	m, ok := SolveMethodOf(info.Method)
	if !ok {
		return SolveInfo{}, false
	}
	return SolveInfo{
		Method:        m,
		Converged:     info.Converged,
		PrecondCached: precondCached,
		SketchNS:      info.SketchTime.Nanoseconds(),
		FactorNS:      info.FactorTime.Nanoseconds(),
		IterNS:        info.IterTime.Nanoseconds(),
		TotalNS:       info.Total.Nanoseconds(),
		Iters:         info.Iters,
		MemoryBytes:   info.MemoryBytes,
		Residual:      residual,
	}, true
}
