package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// The three committed degenerate corpus seeds for the v3 content-addressed
// messages. Each is a well-framed message whose payload is broken in a way
// a length prefix alone cannot catch, so the fuzzer starts from inputs that
// exercise the deep rejection paths rather than having to mutate its way
// there:
//
//   - truncated-fingerprint: a sketch-by-reference request cut one byte
//     short of its fixed 121-byte payload.
//   - delta-overlapping-rows: a matrix delta whose CSC carries the same row
//     index twice in one column (rejected by sparse validation, not by any
//     size check).
//   - put-oversized-nnz: a matrix put whose declared nnz is ~10^12 while
//     the payload holds two entries — the size guard must refuse to
//     allocate before touching the arrays.
//
// The v4 solve messages add three more:
//
//   - solve-bad-method: a well-formed solve request whose method byte is
//     one past the last defined SolveMethod.
//   - solve-bad-flags: a solve request with an undefined flag bit set —
//     unknown flags must be rejected, not ignored, so the bits stay free
//     for future versions.
//   - jobstatus-bad-state: a job status whose state byte is past
//     StateCancelled.
//
// The shard batch messages add three more:
//
//   - shardbatch-truncated: a valid two-shard batch with the last payload
//     byte cut off — the final item claims more bytes than remain.
//   - shardbatch-overlapping-ranges: two shards both starting at j0=0, the
//     duplicate-coverage shape the decoder (and one layer up, the
//     Accumulator) must reject.
//   - shardbatch-oversized-count: a count field of ~4 billion over a
//     two-item payload — the count guard must refuse before allocating
//     item views.
//
// The seeds are generated deterministically from the codec itself; run
//
//	WIRE_CORPUS_WRITE=1 go test ./internal/wire -run TestCommittedCorpusSeeds
//
// to rewrite them after a wire-format change. The test fails when a
// committed file drifts from what this package would generate.
func corpusSeeds(t *testing.T) map[string][]byte {
	t.Helper()

	// Seed 1: valid sketch-ref frame, fingerprint truncated by one byte.
	ref := AppendSketchRef(nil, &SketchRefRequest{
		D:    8,
		Opts: core.Options{Dist: rng.SJLT, Source: rng.SourcePhilox, Seed: 42, Sparsity: 2},
		Fp:   sparse.Fingerprint{M: 128, N: 64, NNZ: 512, Hash: 0x0123456789abcdef},
	})
	truncated := mustFrame(MsgSketchRef, ref[:len(ref)-1])

	// Seed 2: matrix delta whose CSC repeats row 1 in column 0. Built from
	// a valid two-entry delta, then the second row index is patched to
	// collide with the first. Payload layout: fp (32) + m,n,nnz (24) +
	// colptr (8*(n+1)) + rowidx (8*nnz) + vals.
	delta, err := sparse.NewCSC(3, 2, []int{0, 2, 2}, []int{1, 2}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	dp := AppendMatrixDelta(nil, &MatrixDelta{Fp: delta.Fingerprint(), Delta: delta})
	rowIdxOff := 32 + 24 + 8*(delta.N+1)
	copy(dp[rowIdxOff+8:rowIdxOff+16], dp[rowIdxOff:rowIdxOff+8])
	overlapping := mustFrame(MsgMatrixDelta, dp)

	// Seed 3: matrix put declaring nnz = 2^40 over a two-entry payload. The
	// nnz u64 sits after m and n.
	a, err := sparse.NewCSC(4, 2, []int{0, 1, 2}, []int{0, 3}, []float64{2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pp := AppendMatrixPut(nil, a)
	huge := appendU64(nil, 1<<40)
	copy(pp[16:24], huge)
	oversized := mustFrame(MsgMatrixPut, pp)

	// Seed 4: solve request with method byte one past SolveRandSVD. The
	// method is payload byte 0.
	sp := AppendSolveRequest(nil, &SolveRequest{
		Method: SolveSAPQR, Gamma: 4, B: []float64{1, 2}, A: a,
	})
	sp[0] = byte(maxSolveMethod) + 1
	badMethod := mustFrame(MsgSolveRequest, sp)

	// Seed 5: solve request with undefined flag bit 2 set (byte 1).
	fp := AppendSolveRequest(nil, &SolveRequest{
		Method: SolveLSQRD, B: []float64{0.5}, A: a,
	})
	fp[1] |= 4
	badFlags := mustFrame(MsgSolveRequest, fp)

	// Seed 6: job status whose state byte (payload byte 1) is past
	// StateCancelled.
	jp := AppendJobStatus(nil, &JobStatus{
		Status: StatusOK, ID: "c0ffee", State: 1, Iters: 3, Resid: 0.5,
	})
	jp[1] = 9
	badState := mustFrame(MsgJobStatus, jp)

	// Seed 7: two-shard batch, truncated one byte short of the payload end.
	shardA, err := sparse.NewCSC(4, 2, []int{0, 1, 2}, []int{1, 0}, []float64{1, -2})
	if err != nil {
		t.Fatal(err)
	}
	batch := []ShardRequest{
		{J0: 0, NTotal: 8, SketchRequest: SketchRequest{D: 3, Opts: core.Options{
			Dist: rng.Rademacher, Seed: 5,
		}, A: shardA}},
		{J0: 4, NTotal: 8, SketchRequest: SketchRequest{D: 3, Opts: core.Options{
			Dist: rng.Rademacher, Seed: 5,
		}, A: shardA}},
	}
	bp := AppendShardBatchRequest(nil, batch)
	batchTruncated := mustFrame(MsgShardBatchRequest, bp[:len(bp)-1])

	// Seed 8: both shards start at j0=0 — overlapping column coverage.
	overlapBatch := []ShardRequest{batch[0], batch[0]}
	batchOverlap := mustFrame(MsgShardBatchRequest, AppendShardBatchRequest(nil, overlapBatch))

	// Seed 9: count patched to ~2^32 over the two-item payload (count is
	// payload bytes 0..4).
	cp := AppendShardBatchRequest(nil, batch)
	copy(cp[0:4], appendU32(nil, 1<<32-2))
	batchCount := mustFrame(MsgShardBatchRequest, cp)

	return map[string][]byte{
		"ref-truncated-fingerprint":     truncated,
		"delta-overlapping-rows":        overlapping,
		"put-oversized-nnz":             oversized,
		"solve-bad-method":              badMethod,
		"solve-bad-flags":               badFlags,
		"jobstatus-bad-state":           badState,
		"shardbatch-truncated":          batchTruncated,
		"shardbatch-overlapping-ranges": batchOverlap,
		"shardbatch-oversized-count":    batchCount,
	}
}

func TestCommittedCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireRoundtrip")
	for name, frame := range corpusSeeds(t) {
		// Every seed must be framed cleanly, then rejected by its decoder —
		// the rejection happens past SplitFrame, in the payload decode.
		typ, payload, _, err := SplitFrame(frame, 1<<22)
		if err != nil {
			t.Fatalf("%s: frame must split cleanly, got %v", name, err)
		}
		switch typ {
		case MsgSketchRef:
			_, err = DecodeSketchRef(payload)
		case MsgMatrixDelta:
			_, err = DecodeMatrixDelta(payload)
		case MsgMatrixPut:
			_, err = DecodeMatrixPut(payload)
		case MsgSolveRequest:
			_, err = DecodeSolveRequest(payload)
		case MsgJobStatus:
			_, err = DecodeJobStatus(payload)
		case MsgShardBatchRequest:
			_, err = DecodeShardBatchRequest(payload)
		default:
			t.Fatalf("%s: unexpected type %v", name, typ)
		}
		if err == nil {
			t.Fatalf("%s: degenerate seed decoded cleanly — it must be rejected", name)
		}

		want := []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(frame))))
		path := filepath.Join(dir, name)
		if os.Getenv("WIRE_CORPUS_WRITE") == "1" {
			if werr := os.WriteFile(path, want, 0o644); werr != nil {
				t.Fatal(werr)
			}
			continue
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("%s: committed corpus seed missing (regenerate with WIRE_CORPUS_WRITE=1): %v", name, rerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: committed corpus seed drifted from the codec (regenerate with WIRE_CORPUS_WRITE=1)", name)
		}
	}
}
