package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterHistZeroAlloc is the hard gate behind every metric site on the
// serving hot path: recording — counter inc, gauge move, histogram observe,
// a full span open/close — must allocate nothing, or threading obs through
// Plan.Execute and the service hit path would break the 0 allocs/op steady
// state PR 1 bought.
func TestCounterHistZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "ops")
	g := r.Gauge("t_depth", "depth")
	h := r.Histogram("t_stage_seconds", "stage latency")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Add(-1)
		g.Set(7)
		h.Observe(3 * time.Microsecond)
		sp := StartSpan(h)
		sp.End()
		StartSpan(nil).End()
	})
	if allocs != 0 {
		t.Fatalf("hot-path recording allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkObsInc is the CI-visible twin of the alloc test: counter and
// histogram recording at steady state, -benchmem must report 0 allocs/op.
func BenchmarkObsInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("b_ops_total", "ops")
	h := r.Histogram("b_stage_seconds", "stage latency")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

// TestScrapeWhileIncrementing hammers every metric kind from many
// goroutines while scraping concurrently — the race detector run in CI is
// the real assertion; the final-count checks below catch torn arithmetic.
func TestScrapeWhileIncrementing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("r_ops_total", "ops")
	g := r.Gauge("r_depth", "depth")
	h := r.Histogram("r_lat_seconds", "latency")
	r.GaugeFunc("r_live", "live value", func() int64 { return c.Value() % 7 })

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
				t.Errorf("ParseText: %v", err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let the writers finish, then stop the scraper.
	deadline := time.After(30 * time.Second)
	for c.Value() < workers*perWorker {
		select {
		case <-deadline:
			t.Fatalf("writers stalled at %d/%d", c.Value(), workers*perWorker)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var b [HistBuckets]int64
	h.Snapshot(&b)
	var cum int64
	for _, n := range b {
		cum += n
	}
	if cum != workers*perWorker {
		t.Errorf("bucket total = %d, want %d", cum, workers*perWorker)
	}
}

// TestExpositionGolden pins the exact exposition text for a small registry:
// family grouping, HELP/TYPE lines, label rendering, cumulative histogram
// buckets with seconds-valued le edges, and +Inf folding of the overflow
// bucket. Any format drift breaks real Prometheus scrapers, so it must be
// loud here.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	ok := r.LabeledCounter("app_responses_total", `code="200"`, "Responses by status code.")
	bad := r.LabeledCounter("app_responses_total", `code="400"`, "Responses by status code.")
	depth := r.Gauge("app_queue_depth", "Requests waiting for a slot.")
	lat := r.Histogram("app_request_seconds", "Request latency.")

	ok.Add(3)
	bad.Inc()
	depth.Set(2)
	lat.Observe(1500 * time.Nanosecond) // bucket 1 (edge 2µs)
	lat.Observe(1500 * time.Nanosecond)
	lat.Observe(3 * time.Millisecond) // bucket 12 (edge 4.096ms)
	lat.Observe(2 * time.Minute)      // overflow bucket → +Inf only

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	wantLines := []string{
		"# HELP app_responses_total Responses by status code.",
		"# TYPE app_responses_total counter",
		`app_responses_total{code="200"} 3`,
		`app_responses_total{code="400"} 1`,
		"# TYPE app_queue_depth gauge",
		"app_queue_depth 2",
		"# TYPE app_request_seconds histogram",
		`app_request_seconds_bucket{le="1e-06"} 0`,
		`app_request_seconds_bucket{le="2e-06"} 2`,
		`app_request_seconds_bucket{le="0.004096"} 3`,
		`app_request_seconds_bucket{le="+Inf"} 4`,
		"app_request_seconds_sum 120.003003",
		"app_request_seconds_count 4",
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w+"\n") {
			t.Errorf("exposition missing line %q\n--- got ---\n%s", w, got)
		}
	}
	// Families appear exactly once, in registration order.
	if strings.Count(got, "# TYPE app_responses_total counter") != 1 {
		t.Error("duplicate TYPE block for labeled counter family")
	}
	if strings.Index(got, "app_responses_total") > strings.Index(got, "app_queue_depth") {
		t.Error("families not in registration order")
	}

	// The parser reads back exactly what the writer emitted.
	m, err := ParseText(strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		`app_responses_total{code="200"}`:        3,
		`app_responses_total{code="400"}`:        1,
		"app_queue_depth":                        2,
		`app_request_seconds_bucket{le="+Inf"}`:  4,
		"app_request_seconds_count":              4,
		`app_request_seconds_bucket{le="2e-06"}`: 2,
	}
	for k, want := range checks {
		if m[k] != want {
			t.Errorf("ParseText[%s] = %v, want %v", k, m[k], want)
		}
	}
}

// TestRegistryReRegistration: same (name, labels, kind) returns the same
// handle; a kind clash panics.
func TestRegistryReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "x")
	b := r.Counter("dup_total", "x")
	if a != b {
		t.Error("re-registering the same counter returned a new handle")
	}
	l1 := r.LabeledCounter("lab_total", `k="1"`, "x")
	l2 := r.LabeledCounter("lab_total", `k="2"`, "x")
	if l1 == l2 {
		t.Error("distinct label sets share a handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("dup_total", "x")
}

// TestBucketGeometry pins the shared bucket math against the documented
// edges (the same values the service quantile tests rely on).
func TestBucketGeometry(t *testing.T) {
	if BucketCeiling(0) != time.Microsecond || BucketCeiling(10) != 1024*time.Microsecond {
		t.Errorf("BucketCeiling drifted: %v %v", BucketCeiling(0), BucketCeiling(10))
	}
	if BucketCeiling(-3) != BucketCeiling(0) || BucketCeiling(99) != BucketCeiling(HistBuckets-1) {
		t.Error("BucketCeiling does not clamp")
	}
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {999 * time.Nanosecond, 0}, {time.Microsecond, 1},
		{1500 * time.Nanosecond, 1}, {3 * time.Microsecond, 2},
		{100 * time.Microsecond, 7}, {5 * time.Millisecond, 13},
		{30 * time.Second, 25}, {5 * time.Minute, HistBuckets - 1},
		{-time.Second, 0},
	}
	for _, c := range cases {
		if got := BucketIndex(c.d); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestValueHistogram pins the dimensionless histogram geometry introduced
// for the shard batch-size metric: power-of-two integer le edges, raw-unit
// sum, and bucket indexing where bucket i covers (2^(i-1), 2^i].
func TestValueHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.ValueHistogram("t_batch_size", "shards per batch frame")

	for want, ns := range map[int][]int64{
		0: {0, 1},
		1: {2},
		2: {3, 4},
		3: {5, 8},
		4: {9, 16},
	} {
		for _, n := range ns {
			if got := ValueBucketIndex(n); got != want {
				t.Errorf("ValueBucketIndex(%d) = %d, want %d", n, got, want)
			}
		}
	}
	if got := ValueBucketIndex(1 << 40); got != HistBuckets-1 {
		t.Errorf("ValueBucketIndex(2^40) = %d, want clamp to %d", got, HistBuckets-1)
	}
	if got := ValueBucketCeiling(3); got != 8 {
		t.Errorf("ValueBucketCeiling(3) = %d, want 8", got)
	}

	for _, n := range []int64{1, 2, 4, 5} {
		h.ObserveValue(n)
	}
	if h.Count() != 4 || h.SumNS() != 12 || h.MaxNS() != 5 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 4/12/5", h.Count(), h.SumNS(), h.MaxNS())
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE t_batch_size histogram\n",
		"t_batch_size_bucket{le=\"1\"} 1\n",
		"t_batch_size_bucket{le=\"2\"} 2\n",
		"t_batch_size_bucket{le=\"4\"} 3\n",
		"t_batch_size_bucket{le=\"8\"} 4\n",
		"t_batch_size_bucket{le=\"+Inf\"} 4\n",
		"t_batch_size_sum 12\n",
		"t_batch_size_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// ObserveValue must stay hot-path clean like Observe.
	if allocs := testing.AllocsPerRun(100, func() { h.ObserveValue(3) }); allocs != 0 {
		t.Errorf("ObserveValue allocates %v/op, want 0", allocs)
	}

	// Duration and value geometries are distinct kinds on one name.
	defer func() {
		if recover() == nil {
			t.Error("re-registering a value histogram as a duration histogram did not panic")
		}
	}()
	r.Histogram("t_batch_size", "wrong kind")
}
