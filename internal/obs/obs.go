// Package obs is the dependency-free observability substrate of the serving
// stack: atomic counters, gauges and fixed-bucket latency histograms whose
// hot-path Inc/Add/Observe allocate nothing, plus lightweight stage spans
// and a registry that renders everything as Prometheus text exposition
// (format version 0.0.4).
//
// The design constraints come from the layers above:
//
//   - Zero allocations on the hot path. The plan-cache hit path of
//     internal/service is allocation-free end to end (BenchmarkServiceHit
//     pins 0 allocs/op), and metric recording rides that path. Counters and
//     gauges are single padded atomics; histograms index a fixed bucket
//     array with shift arithmetic; spans are plain value types, never
//     interface-boxed.
//
//   - Contention padding. Counters and gauges occupy their own cache line
//     (the padded-atomic idiom of internal/core/schedule.go), so workers
//     hammering adjacent metrics do not false-share.
//
//   - No dependencies. The exposition writer is hand-rolled: the full
//     Prometheus client library costs allocations on the hot path
//     (label-value lookups, interface indirection) and a large dependency
//     for what is, for this fixed metric set, a page of formatting code.
//     Scrapes are off the hot path and may allocate freely.
//
// Metric naming follows one scheme across the stack (DESIGN.md §9):
// sketchsp_<layer>_<what>[_total|_seconds], where layer ∈ {service, http,
// plan, client}. Counters end in _total, histograms are in seconds and end
// in _seconds, gauges are bare nouns.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter padded to its own
// cache line. The zero value is ready to use; Inc and Add are safe for
// concurrent use and never allocate.
type Counter struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so hot counters do not false-share
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotone by convention; negative n is the
// caller's bug, not checked on the hot path.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value (queue depth, in-flight requests) with
// the same padding and zero-alloc guarantees as Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value (achieved residual, sketch
// distortion estimate) stored as atomic bits, with the same padding and
// zero-alloc guarantees as Gauge. Integer gauges stay Gauge; FloatGauge
// exists for the solver metrics whose natural unit is a residual, not a
// count.
type FloatGauge struct {
	v atomic.Uint64
	_ [56]byte
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// HistBuckets is the fixed histogram resolution shared by every duration
// histogram in the stack: bucket i counts observations in
// [1µs·2^i, 1µs·2^(i+1)), i.e. 1µs up to ~34s, with bucket 0 absorbing
// sub-microsecond observations and the last bucket everything slower. The
// geometry is identical to the service latency histogram of PR 3, which is
// what lets /metrics and /stats reconcile exactly — they read the same
// buckets.
const HistBuckets = 26

// BucketCeiling returns the inclusive upper edge of histogram bucket i —
// the duration a quantile read from that bucket reports. Out-of-range
// indices clamp.
func BucketCeiling(i int) time.Duration {
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return time.Duration(1000 << uint(i))
}

// BucketIndex returns the bucket an observation of d lands in.
func BucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns / 1000)) // 0 for <1µs, 1 for [1µs,2µs), ...
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// Histogram is a lock-free log₂ duration histogram. Observe is hot-path
// safe: three atomic adds plus a max CAS, no allocation. The head counters
// are padded away from the bucket array; the buckets themselves are not
// individually padded — adjacent-bucket contention only occurs for
// near-identical latencies, where the counters contend on the same line
// anyway.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	_       [40]byte
	buckets [HistBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[BucketIndex(d)].Add(1)
}

// ValueBucketCeiling returns the inclusive upper edge of value-histogram
// bucket i: bucket i counts observations in (2^(i-1), 2^i], with bucket 0
// absorbing everything ≤ 1. Out-of-range indices clamp.
func ValueBucketCeiling(i int) int64 {
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return 1 << uint(i)
}

// ValueBucketIndex returns the bucket an observation of n lands in.
func ValueBucketIndex(n int64) int {
	if n <= 1 {
		return 0
	}
	i := bits.Len64(uint64(n - 1)) // smallest i with 2^i >= n
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// ObserveValue records one dimensionless integer observation (a batch size,
// a shard count) into the log₂ value-bucket geometry. A histogram must be
// observed through exactly one of Observe/ObserveValue for its lifetime —
// the registry enforces this by registering duration and value histograms
// as distinct kinds. Sum and max are kept in raw units, not nanoseconds.
func (h *Histogram) ObserveValue(n int64) {
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sumNS.Add(n)
	for {
		cur := h.maxNS.Load()
		if n <= cur || h.maxNS.CompareAndSwap(cur, n) {
			break
		}
	}
	h.buckets[ValueBucketIndex(n)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS returns the sum of all observations in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// MaxNS returns the largest observation in nanoseconds. Prometheus
// histograms carry no max; this feeds the /stats JSON snapshot.
func (h *Histogram) MaxNS() int64 { return h.maxNS.Load() }

// Snapshot copies the bucket counters into dst. The copy is per-bucket
// atomic, not globally atomic — consistent with scraping counters one by
// one.
func (h *Histogram) Snapshot(dst *[HistBuckets]int64) {
	for i := range dst {
		dst[i] = h.buckets[i].Load()
	}
}

// Span measures one stage of a request — decode, queue wait, kernel,
// encode — into a histogram. It is a plain value type: StartSpan returns it
// on the stack and End observes the elapsed time, so spanning a stage costs
// two time reads and one Observe, with no interface boxing and no
// allocation. A zero Span (nil histogram) is inert, which lets optional
// instrumentation sites skip nil checks.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan opens a span recording into h (which may be nil for a no-op).
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed time since StartSpan. End on a zero Span is a
// no-op.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0))
	}
}
