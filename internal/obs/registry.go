package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metricKind discriminates what a registered sample points at.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindFloatGauge
	kindHistogram
	kindValueHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc, kindFloatGauge:
		return "gauge"
	case kindHistogram, kindValueHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// sample is one exposition row (or histogram block): a metric handle plus
// its pre-rendered label set.
type sample struct {
	labels string // rendered `key="value",...` without braces; "" for none
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	fn     func() int64
	h      *Histogram
}

// family groups every sample sharing a metric name: one # HELP/# TYPE block
// per family, samples in registration order.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []sample
}

// Registry owns a fixed set of named metrics and renders them as Prometheus
// text exposition. Registration is cheap but takes a lock — do it at
// construction time, hold the returned handles, and hit those on the fast
// path. Re-registering the same (name, labels) pair returns the existing
// handle (so layers sharing a registry can be constructed independently);
// registering the same name with a different kind panics, since the
// exposition would be malformed.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup finds or creates the family and returns the existing sample with
// these labels, if any.
func (r *Registry) lookup(name, help string, kind metricKind, labels string) (*family, *sample) {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	for i := range f.samples {
		if f.samples[i].labels == labels {
			return f, &f.samples[i]
		}
	}
	return f, nil
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, "", help)
}

// LabeledCounter registers a counter with a fixed label set, rendered
// verbatim into the sample line — e.g. labels `code="200"` yields
// name{code="200"}. The label string must be constant for the handle's
// lifetime; dynamic label values belong in separate handles.
func (r *Registry) LabeledCounter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindCounter, labels)
	if s != nil {
		return s.c
	}
	c := new(Counter)
	f.samples = append(f.samples, sample{labels: labels, c: c})
	return c
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindGauge, "")
	if s != nil {
		return s.g
	}
	g := new(Gauge)
	f.samples = append(f.samples, sample{g: g})
	return g
}

// FloatGauge registers (or returns the existing) unlabeled float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindFloatGauge, "")
	if s != nil {
		return s.fg
	}
	g := new(FloatGauge)
	f.samples = append(f.samples, sample{fg: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time — for
// values that already live behind a lock elsewhere (cached plan count). fn
// must be safe to call from any goroutine; it runs while the registry lock
// is held, so it must not call back into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindGaugeFunc, "")
	if s != nil {
		s.fn = fn
		return
	}
	f.samples = append(f.samples, sample{fn: fn})
}

// Histogram registers (or returns the existing) unlabeled duration
// histogram with the shared log₂-microsecond bucket geometry.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindHistogram, "")
	if s != nil {
		return s.h
	}
	h := new(Histogram)
	f.samples = append(f.samples, sample{h: h})
	return h
}

// ValueHistogram registers (or returns the existing) unlabeled
// dimensionless histogram with the log₂ value-bucket geometry (le edges are
// powers of two, not seconds). Feed it through ObserveValue, never Observe;
// the two geometries are distinct registration kinds, so mixing them on one
// name panics at construction time rather than rendering nonsense edges.
func (r *Registry) ValueHistogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindValueHistogram, "")
	if s != nil {
		return s.h
	}
	h := new(Histogram)
	f.samples = append(f.samples, sample{h: h})
	return h
}

// WriteText renders the registry as Prometheus text exposition format
// version 0.0.4: one # HELP/# TYPE block per metric family in registration
// order, counters and gauges as single samples, histograms as cumulative
// _bucket{le=...} series plus _sum and _count. Scrape-path only — it
// allocates freely.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for i := range f.samples {
			s := &f.samples[i]
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, s.labels, formatInt(s.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, s.labels, formatInt(s.g.Value()))
			case kindGaugeFunc:
				writeSample(bw, f.name, s.labels, formatInt(s.fn()))
			case kindFloatGauge:
				writeSample(bw, f.name, s.labels, strconv.FormatFloat(s.fg.Value(), 'g', -1, 64))
			case kindHistogram:
				writeHistogram(bw, f.name, s.h)
			case kindValueHistogram:
				writeValueHistogram(bw, f.name, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket series. The upper edges are
// BucketCeiling(i) in seconds; the last (overflow) bucket is folded into
// +Inf, as the exposition format requires.
func writeHistogram(w *bufio.Writer, name string, h *Histogram) {
	var b [HistBuckets]int64
	h.Snapshot(&b)
	// Count is read after the buckets so a concurrent Observe cannot make
	// count lag the cumulative bucket total (Observe bumps count first).
	var cum int64
	for i := 0; i < HistBuckets-1; i++ {
		cum += b[i]
		writeSample(w, name+"_bucket", `le="`+formatSeconds(BucketCeiling(i))+`"`, formatInt(cum))
	}
	cum += b[HistBuckets-1]
	writeSample(w, name+"_bucket", `le="+Inf"`, formatInt(cum))
	writeSample(w, name+"_sum", "", strconv.FormatFloat(float64(h.SumNS())/1e9, 'g', -1, 64))
	writeSample(w, name+"_count", "", formatInt(cum))
}

// writeValueHistogram mirrors writeHistogram for the dimensionless
// geometry: integer power-of-two le edges and an integer sum (the raw-unit
// total, e.g. summed batch sizes).
func writeValueHistogram(w *bufio.Writer, name string, h *Histogram) {
	var b [HistBuckets]int64
	h.Snapshot(&b)
	var cum int64
	for i := 0; i < HistBuckets-1; i++ {
		cum += b[i]
		writeSample(w, name+"_bucket", `le="`+formatInt(ValueBucketCeiling(i))+`"`, formatInt(cum))
	}
	cum += b[HistBuckets-1]
	writeSample(w, name+"_bucket", `le="+Inf"`, formatInt(cum))
	writeSample(w, name+"_sum", "", formatInt(h.SumNS()))
	writeSample(w, name+"_count", "", formatInt(cum))
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatSeconds renders a bucket edge as seconds with no trailing zeros
// (1.024e-05 style), matching what PromQL le matchers expect.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ContentType is the Content-Type of text exposition format version 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

// ParseText parses text exposition back into a flat sample map keyed by the
// sample name with its label set rendered verbatim (`name` or
// `name{key="value"}`). It understands exactly what WriteText emits — the
// shared dialect the scrape-reconciliation tests and spmmbench's -scrape
// mode consume — not the full exposition grammar (no escaped label values,
// no timestamps).
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad sample value in %q: %v", line, err)
		}
		out[key] = f
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortedKeys returns the sample keys of a ParseText result in sorted order —
// a convenience for deterministic test output and JSON folding.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
