package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := RandomUniform(40, 20, 0.1, 9)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.M != a.M || b.N != a.N || b.NNZ() != a.NNZ() {
		t.Fatalf("round trip dims/nnz: got %dx%d/%d want %dx%d/%d",
			b.M, b.N, b.NNZ(), a.M, a.N, a.NNZ())
	}
	for j := 0; j < a.N; j++ {
		for i := 0; i < a.M; i++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("entry (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 2
2 1 5.0
3 3 7.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 5 || a.At(0, 1) != 5 {
		t.Fatal("symmetric mirror missing")
	}
	if a.At(2, 2) != 7 {
		t.Fatal("diagonal wrong")
	}
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern entries should be 1")
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	cases := []string{
		"hello world\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nnot numbers here\n",
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMatrixMarketTruncated(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
		t.Fatal("expected error on truncated entries")
	}
}

func TestMatrixMarketFileHelpers(t *testing.T) {
	a := RandomUniform(10, 8, 0.3, 4)
	path := t.TempDir() + "/m.mtx"
	if err := WriteMatrixMarketFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != a.NNZ() {
		t.Fatal("file round trip lost entries")
	}
}

func TestWriteDenseMatrixMarket(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDenseMatrixMarket(&buf, 2, 2, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "%%MatrixMarket matrix array real general\n2 2\n") {
		t.Fatalf("bad header: %q", out)
	}
	if err := WriteDenseMatrixMarket(&buf, 2, 2, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestWriteSpyPGM(t *testing.T) {
	a := AbnormalC(100, 50, 10, 1)
	var buf bytes.Buffer
	if err := WriteSpyPGM(&buf, a, 10, 25); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n25 10\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:20])
	}
	if len(out) != len("P5\n25 10\n255\n")+250 {
		t.Fatalf("PGM payload length %d", len(out))
	}
	// Dense columns must be darker than empty ones.
	pix := out[len("P5\n25 10\n255\n"):]
	if pix[0] >= 255 {
		t.Fatal("dense cell not darkened")
	}
	hasWhite := false
	for _, p := range pix {
		if p == 255 {
			hasWhite = true
		}
	}
	if !hasWhite {
		t.Fatal("no empty cells rendered white")
	}
}
