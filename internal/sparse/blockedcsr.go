package sparse

import (
	"fmt"
	"sort"
	"sync"
)

// BlockedCSR is the auxiliary data structure Algorithm 4 needs (§II-B2,
// §III-B): the columns of A are partitioned into vertical slabs, and each
// slab is stored in CSR so the kernel can walk the rows of the slab and
// perform rank-1 updates that reuse one generated column of S across an
// entire sparse row. The classic constructors cut slabs of uniform width
// BlockCols; NewBlockedCSRPartition accepts an arbitrary (e.g. nnz-balanced)
// column partition, in which case slab widths vary and ColStart is the
// source of truth.
type BlockedCSR struct {
	M, N      int
	BlockCols int    // nominal slab width (widest slab for non-uniform partitions)
	Blocks    []*CSR // one CSR of size M × width(k) per slab
	ColStart  []int  // ColStart[k] = first global column of slab k; len = len(Blocks)+1
}

// NumBlocks returns the number of vertical slabs.
func (b *BlockedCSR) NumBlocks() int { return len(b.Blocks) }

// NNZ returns the total number of stored entries across slabs.
func (b *BlockedCSR) NNZ() int {
	t := 0
	for _, blk := range b.Blocks {
		t += blk.NNZ()
	}
	return t
}

// MemoryBytes reports the total storage footprint including the per-block
// RowPtr arrays — the O(⌈n/b_n⌉·m) overhead §III-B calls memory intensive.
func (b *BlockedCSR) MemoryBytes() int64 {
	var t int64
	for _, blk := range b.Blocks {
		t += blk.MemoryBytes()
	}
	return t + int64(len(b.ColStart))*8
}

// At returns element (i, j); for tests. The slab holding column j is found
// by binary search over ColStart, which stays correct when slab widths vary.
func (b *BlockedCSR) At(i, j int) float64 {
	k := sort.SearchInts(b.ColStart, j+1) - 1
	return b.Blocks[k].At(i, j-b.ColStart[k])
}

// NewBlockedCSR converts a CSC matrix into the blocked-CSR structure
// sequentially with uniform slab width blockCols. Per §III-B the cost is
// O(⌈n/b_n⌉·m + nnz(A)): for each slab we count entries per row (O(m)
// zeroing per slab) and then scatter.
func NewBlockedCSR(a *CSC, blockCols int) *BlockedCSR {
	if blockCols <= 0 {
		panic(fmt.Sprintf("sparse: NewBlockedCSR blockCols=%d", blockCols))
	}
	return NewBlockedCSRPartition(a, UniformColSplit(a.N, blockCols), 1)
}

// NewBlockedCSRParallel builds the uniform-width structure with one goroutine
// per slab group, matching the parallel construction of §III-B
// (O(⌈n/(T·b_n)⌉·m + max_t nnz(A_t)) with T workers).
func NewBlockedCSRParallel(a *CSC, blockCols, workers int) *BlockedCSR {
	if blockCols <= 0 {
		panic(fmt.Sprintf("sparse: NewBlockedCSRParallel blockCols=%d", blockCols))
	}
	return NewBlockedCSRPartition(a, UniformColSplit(a.N, blockCols), workers)
}

// UniformColSplit returns the uniform column partition of width blockCols:
// boundaries {0, b_n, 2·b_n, …, n} (the last slab may be narrower). It is the
// grid the classic constructors cut, and the starting point the nnz-aware
// planner refines.
func UniformColSplit(n, blockCols int) []int {
	if blockCols <= 0 {
		panic(fmt.Sprintf("sparse: UniformColSplit blockCols=%d", blockCols))
	}
	if n <= 0 {
		return []int{0}
	}
	nb := (n + blockCols - 1) / blockCols
	cs := make([]int, nb+1)
	for k := 1; k < nb; k++ {
		cs[k] = k * blockCols
	}
	cs[nb] = n
	return cs
}

// NewBlockedCSRPartition converts a CSC matrix into blocked CSR along an
// arbitrary column partition: colStart must begin at 0, end at a.N, and be
// strictly increasing. Slab k covers columns [colStart[k], colStart[k+1]).
// With workers > 1 slabs convert concurrently; the per-slab nnz needed to
// size each CSR comes from the ColPtr prefix sum (CSC.SlabNNZ), so no
// counting pass over the entries is re-paid.
func NewBlockedCSRPartition(a *CSC, colStart []int, workers int) *BlockedCSR {
	nb := len(colStart) - 1
	if nb < 0 || colStart[0] != 0 || colStart[nb] != a.N {
		panic(fmt.Sprintf("sparse: NewBlockedCSRPartition bad partition %v for n=%d", colStart, a.N))
	}
	maxWidth := 0
	for k := 0; k < nb; k++ {
		w := colStart[k+1] - colStart[k]
		if w <= 0 {
			panic(fmt.Sprintf("sparse: NewBlockedCSRPartition non-increasing boundary at slab %d", k))
		}
		if w > maxWidth {
			maxWidth = w
		}
	}
	out := &BlockedCSR{
		M: a.M, N: a.N, BlockCols: maxWidth,
		Blocks:   make([]*CSR, nb),
		ColStart: append([]int(nil), colStart...),
	}
	if workers <= 1 || nb <= 1 {
		for k := 0; k < nb; k++ {
			out.Blocks[k] = slabToCSR(a, out.ColStart[k], out.ColStart[k+1])
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan int)
	if workers > nb {
		workers = nb
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range work {
				out.Blocks[k] = slabToCSR(a, out.ColStart[k], out.ColStart[k+1])
			}
		}()
	}
	for k := 0; k < nb; k++ {
		work <- k
	}
	close(work)
	wg.Wait()
	return out
}

// slabToCSR transposes the column slab A[:, j0:j1] into CSR. Columns are
// visited in ascending order, so within each row the column indices come out
// sorted — the CSR invariant holds by construction.
func slabToCSR(a *CSC, j0, j1 int) *CSR {
	m := a.M
	width := j1 - j0
	nnz := a.SlabNNZ(j0, j1)
	lo := a.ColPtr[j0]
	rowPtr := make([]int, m+1)
	for p := lo; p < lo+nnz; p++ {
		rowPtr[a.RowIdx[p]+1]++
	}
	for i := 0; i < m; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, m)
	copy(next, rowPtr[:m])
	for j := j0; j < j1; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			w := next[r]
			colIdx[w] = j - j0
			val[w] = a.Val[p]
			next[r]++
		}
	}
	return &CSR{M: m, N: width, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// ToCSC reassembles the blocked structure into one CSC matrix (tests).
func (b *BlockedCSR) ToCSC() *CSC {
	coo := NewCOO(b.M, b.N, b.NNZ())
	for k, blk := range b.Blocks {
		base := b.ColStart[k]
		for i := 0; i < blk.M; i++ {
			cols, vals := blk.RowView(i)
			for t, c := range cols {
				coo.Append(i, base+c, vals[t])
			}
		}
	}
	return coo.ToCSC()
}
