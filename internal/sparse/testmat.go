package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// The SuiteSparse collection matrices used in the paper's evaluation are not
// redistributable inside this offline reproduction, so each is replaced by a
// synthetic generator matched to the published dimensions, nonzero count and
// qualitative sparsity pattern (see DESIGN.md §1). The kernels under test
// only observe dimensions and structure, so these stand-ins preserve the
// compute and memory-traffic profile that the paper's tables measure.

// PatternKind selects the qualitative sparsity structure of a stand-in.
type PatternKind int

const (
	// PatternUniform spreads nonzeros iid uniformly (mk-12, ch7-9-b3).
	PatternUniform PatternKind = iota
	// PatternFixedRow places a fixed count of nonzeros per row
	// (boundary matrices shar_te2-b2, cis-n4c6-b4; rail LP matrices).
	PatternFixedRow
	// PatternBanded concentrates nonzeros in a diagonal band (mesh_deform).
	PatternBanded
	// PatternBlock lays dense-ish blocks on the diagonal with background
	// noise (spal_004-like).
	PatternBlock
	// PatternInterval makes each column the 0/1 indicator of a contiguous
	// row run — set-cover structure whose conditioning survives column
	// equilibration (spal_004-like).
	PatternInterval
	// PatternRowInterval makes each row a short contiguous column run —
	// the transposed rail LP structure: multi-entry rows that drive
	// direct-QR fill and Q-factor growth.
	PatternRowInterval
)

// SpMMSpec describes one Table I SpMM benchmark matrix.
type SpMMSpec struct {
	Name    string
	M, N    int // paper dimensions of A (d = 3n per Table I)
	NNZ     int
	Pattern PatternKind
}

// SpMMSpecs returns the Table I matrix specifications in paper order.
func SpMMSpecs() []SpMMSpec {
	return []SpMMSpec{
		{Name: "mk-12", M: 13860, N: 1485, NNZ: 41580, Pattern: PatternUniform},
		{Name: "ch7-9-b3", M: 105840, N: 17640, NNZ: 423360, Pattern: PatternFixedRow},
		{Name: "shar_te2-b2", M: 200200, N: 17160, NNZ: 600600, Pattern: PatternFixedRow},
		{Name: "mesh_deform", M: 234023, N: 9393, NNZ: 853829, Pattern: PatternBanded},
		{Name: "cis-n4c6-b4", M: 20058, N: 5970, NNZ: 100290, Pattern: PatternFixedRow},
	}
}

// Generate materialises the stand-in at the given linear scale factor
// (scale=1 reproduces the paper dimensions; smaller scales shrink m and n
// proportionally while preserving nonzeros-per-row, so the density rises as
// 1/scale — the compute-per-row profile the kernels see is unchanged).
func (s SpMMSpec) Generate(scale float64, seed int64) *CSC {
	m, n := scaleDim(s.M, scale, 64), scaleDim(s.N, scale, 16)
	perRow := s.NNZ / s.M
	if perRow < 1 {
		perRow = 1
	}
	switch s.Pattern {
	case PatternFixedRow:
		return FixedRowNNZ(m, n, perRow, seed)
	case PatternBanded:
		// Half-bandwidth chosen so the in-band density reproduces the
		// overall nnz with ~40% in-band fill.
		hb := int(float64(perRow) / 0.4 / 2)
		if hb < 1 {
			hb = 1
		}
		return Banded(m, n, hb, 0.4, seed)
	case PatternBlock:
		density := float64(s.NNZ) / (float64(s.M) * float64(s.N))
		return BlockDiagonalish(m, n, 8, math.Min(1, density*20), density*0.5, seed)
	default:
		density := float64(s.NNZ) / (float64(s.M) * float64(s.N))
		// Preserve nonzeros-per-row under scaling: density' = perRow/n'.
		if scale != 1 {
			density = float64(perRow) / float64(n)
		}
		return RandomUniform(m, n, density, seed)
	}
}

func scaleDim(d int, scale float64, floor int) int {
	v := int(math.Round(float64(d) * scale))
	if v < floor {
		v = floor
	}
	return v
}

// LSSpec describes one Table VIII least-squares matrix (post-transposition
// to tall-and-skinny, as the paper does for matrices with n >> m).
type LSSpec struct {
	Name       string
	M, N       int // tall orientation: M >> N
	NNZ        int
	Cond       float64 // target cond(A) regime from Table VIII
	CondScaled float64 // target cond(AD) after column equilibration
	Pattern    PatternKind
	// rankGap > 0 makes the last rankGap columns near-linear combinations
	// of earlier ones so the ill-conditioning survives column scaling
	// (connectus, landmark).
	rankGap int
	// depFrac > 0 instead makes a FRACTION of the columns near-duplicates
	// with log-spaced perturbation sizes from 1/CondScaled up to 0.3,
	// spreading the low end of the spectrum the way the rail matrices do —
	// clustered bad directions converge fast in LSQR; spread ones do not.
	depFrac float64
}

// LSSpecs returns the Table VIII matrix specifications in paper order.
// Sizes are the tall orientation (rail matrices and connectus arrive wide in
// the collection and are transposed, exactly as in the paper).
func LSSpecs() []LSSpec {
	return []LSSpec{
		{Name: "rail2586", M: 923269, N: 2586, NNZ: 8011362, Cond: 496, CondScaled: 263, Pattern: PatternRowInterval, depFrac: 0.25},
		{Name: "spal_004", M: 321696, N: 10203, NNZ: 46168124, Cond: 3.9e4, CondScaled: 1148, Pattern: PatternInterval},
		{Name: "rail4284", M: 1096894, N: 4284, NNZ: 11284032, Cond: 400, CondScaled: 334, Pattern: PatternRowInterval, depFrac: 0.25},
		{Name: "rail582", M: 56097, N: 582, NNZ: 402290, Cond: 186, CondScaled: 180, Pattern: PatternRowInterval, depFrac: 0.25},
		{Name: "specular", M: 477976, N: 1442, NNZ: 7647040, Cond: 2.3e14, CondScaled: 29.85, Pattern: PatternUniform, depFrac: 0.25},
		{Name: "connectus", M: 394792, N: 458, NNZ: 1127525, Cond: 1.27e16, CondScaled: 1.28e16, Pattern: PatternUniform, rankGap: 2},
		{Name: "landmark", M: 71952, N: 2704, NNZ: 1146848, Cond: 1.39e18, CondScaled: 2.3e17, Pattern: PatternUniform, rankGap: 3},
	}
}

// Generate materialises the LS stand-in at the given scale. Conditioning is
// shaped in two mechanisms mirroring the two regimes Table VIII exhibits:
//
//   - geometric column scaling from 1 down to 1/Cond' where
//     Cond' = Cond/CondScaled: this creates ill-conditioning that a diagonal
//     preconditioner removes (the "specular" story, cond(AD) small);
//   - near-duplicate columns (rankGap > 0): ill-conditioning invariant to
//     column scaling (the "connectus"/"landmark" story).
func (s LSSpec) Generate(scale float64, seed int64) *CSC {
	m, n := scaleDim(s.M, scale, 128), scaleDim(s.N, scale, 24)
	if m < 3*n {
		m = 3 * n
	}
	perRow := s.NNZ / s.M
	if perRow < 1 {
		perRow = 1
	}
	// At small scales, preserving the paper's nonzeros-per-row would make
	// the shrunken matrix nearly dense; cap fill so it stays sparse.
	if cap := n / 8; perRow > cap && cap >= 1 {
		perRow = cap
	}
	if perRow > n {
		perRow = n
	}
	var a *CSC
	switch s.Pattern {
	case PatternBlock:
		a = BlockDiagonalish(m, n, 12, math.Min(1, float64(perRow)/float64(n)*12), float64(perRow)/float64(n)*0.3, seed)
	case PatternInterval:
		avgLen := s.NNZ / s.N
		a = Intervals(m, n, int(float64(avgLen)*scale)+1, seed)
	case PatternRowInterval:
		a = RowIntervals(m, n, perRow, seed)
	default:
		a = FixedRowNNZ(m, n, perRow, seed)
	}

	// Column scaling: the portion of cond(A) that equilibration removes.
	removable := s.Cond / math.Max(s.CondScaled, 1)
	if removable > 1.5 {
		logr := math.Log(removable)
		for j := 0; j < a.N; j++ {
			f := math.Exp(-logr * float64(j) / float64(a.N-1))
			_, vals := a.ColView(j)
			for k := range vals {
				vals[k] *= f
			}
		}
	}

	if s.rankGap > 0 {
		eps := 1.0 / s.CondScaled
		a = withNearDependentCols(a, s.rankGap, eps, eps, seed+1)
	} else if s.depFrac > 0 {
		g := int(s.depFrac * float64(a.N))
		if g < 2 {
			g = 2
		}
		if g > a.N-2 {
			g = a.N - 2
		}
		a = withNearDependentCols(a, g, 1.0/math.Max(s.CondScaled, 2), 0.3, seed+1)
	}
	return a
}

// withNearDependentCols rebuilds a so its last g columns are copies of
// earlier columns perturbed at relative sizes log-spaced from epsMin to
// epsMax. With epsMin = epsMax this pins the condition number at ~1/epsMin
// (clustered); with a spread, the low end of the spectrum fills in and
// unpreconditioned LSQR iteration counts scale with the conditioning.
func withNearDependentCols(a *CSC, g int, epsMin, epsMax float64, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(a.M, a.N, a.NNZ()+g*(a.NNZ()/a.N+4))
	for j := 0; j < a.N-g; j++ {
		rows, vals := a.ColView(j)
		for k, r := range rows {
			coo.Append(r, j, vals[k])
		}
	}
	logMin, logMax := math.Log(epsMin), math.Log(epsMax)
	for t := 0; t < g; t++ {
		eps := epsMin
		if g > 1 && epsMax > epsMin {
			eps = math.Exp(logMin + (logMax-logMin)*float64(t)/float64(g-1))
		}
		src := t % (a.N - g)
		dst := a.N - g + t
		rows, vals := a.ColView(src)
		for k, r := range rows {
			coo.Append(r, dst, vals[k]*(1+eps*rng.NormFloat64()))
		}
	}
	return coo.ToCSC()
}

// Describe returns a one-line summary used by the property tables.
func Describe(name string, a *CSC) string {
	return fmt.Sprintf("%-12s m=%-8d n=%-7d nnz=%-9d density=%.2e",
		name, a.M, a.N, a.NNZ(), a.Density())
}
