package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser against malformed input: it must
// either return an error or a structurally valid matrix, never panic.
// Run with `go test -fuzz=FuzzReadMatrixMarket ./internal/sparse` for a
// real fuzzing session; the seeds below run as regular unit tests.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 7\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 9\n")
	f.Add("")
	f.Add("%%MatrixMarket\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n1 2 1e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("parser accepted structurally invalid matrix: %v", err)
		}
		// A successfully parsed matrix must round-trip.
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.M != a.M || back.N != a.N || back.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				back.M, back.N, back.NNZ(), a.M, a.N, a.NNZ())
		}
	})
}
