package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser against malformed input: it must
// either return an error or a structurally valid matrix, never panic.
// Run with `go test -fuzz=FuzzReadMatrixMarket ./internal/sparse` for a
// real fuzzing session; the seeds below run as regular unit tests.
// FuzzFingerprint hardens the structural fingerprint the plan cache keys
// on: it must never panic — including on degenerate 0×n / m×0 / empty-column
// matrices and on structurally invalid inputs like the zero-value CSC — it
// must be deterministic, and any single-element mutation of ColPtr, RowIdx
// or Val must change it (a collision there would silently serve one
// matrix's cached sketch plan for another). Run with
// `go test -fuzz=FuzzFingerprint ./internal/sparse`; the seeds below run as
// regular unit tests.
func FuzzFingerprint(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{})          // 0×0 empty
	f.Add(uint8(0), uint8(5), []byte{})          // 0×n: n columns, all empty
	f.Add(uint8(7), uint8(0), []byte{})          // m×0
	f.Add(uint8(4), uint8(4), []byte{1, 2, 3})   // sparse with empty columns
	f.Add(uint8(9), uint8(3), []byte("abcdefg")) // denser
	f.Add(uint8(255), uint8(255), []byte{0, 0, 0, 0, 9, 9})
	f.Fuzz(func(t *testing.T, m, n uint8, data []byte) {
		// Build a structurally valid matrix from the raw bytes: each byte
		// pair seeds one (row, col, val) triple; COO→CSC sorts and dedups.
		coo := NewCOO(int(m), int(n), len(data)/2)
		for k := 0; k+1 < len(data); k += 2 {
			if m == 0 || n == 0 {
				break
			}
			coo.Append(int(data[k])%int(m), int(data[k+1])%int(n),
				float64(data[k])-float64(data[k+1])/3)
		}
		a := coo.ToCSC()
		if err := a.Validate(); err != nil {
			t.Fatalf("generator produced invalid CSC: %v", err)
		}

		fp := a.Fingerprint()
		if fp.M != a.M || fp.N != a.N || fp.NNZ != a.NNZ() {
			t.Fatalf("fingerprint cleartext %v disagrees with matrix %dx%d/%d",
				fp, a.M, a.N, a.NNZ())
		}
		if again := a.Fingerprint(); again != fp {
			t.Fatalf("fingerprint not deterministic: %v vs %v", fp, again)
		}

		// The zero value and truncated structures must hash, not panic.
		_ = (&CSC{}).Fingerprint()
		_ = (&CSC{M: a.M, N: a.N}).Fingerprint()

		// Single-element mutations must all be detected.
		if a.N > 0 {
			b := a.Clone()
			b.ColPtr[len(b.ColPtr)-1]++ // now inconsistent, but hashable
			if b.Fingerprint() == fp {
				t.Fatal("ColPtr mutation not reflected in fingerprint")
			}
		}
		if a.NNZ() > 0 {
			b := a.Clone()
			b.RowIdx[0]++
			if b.Fingerprint() == fp {
				t.Fatal("RowIdx mutation not reflected in fingerprint")
			}
			c := a.Clone()
			c.Val[a.NNZ()-1] += 1.0
			if c.Fingerprint() == fp {
				t.Fatal("Val mutation not reflected in fingerprint")
			}
		}

		// Shape must separate matrices with identical (empty) entry arrays:
		// a 0×n matrix and a 0×(n+1) matrix both carry no entries.
		grown := &CSC{M: a.M, N: a.N + 1, ColPtr: append(append([]int(nil), a.ColPtr...), a.NNZ())}
		if g := grown.Fingerprint(); g == fp {
			t.Fatal("appending an empty column did not change the fingerprint")
		}
	})
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 7\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 9\n")
	f.Add("")
	f.Add("%%MatrixMarket\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n1 2 1e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("parser accepted structurally invalid matrix: %v", err)
		}
		// A successfully parsed matrix must round-trip.
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.M != a.M || back.N != a.N || back.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				back.M, back.N, back.NNZ(), a.M, a.N, a.NNZ())
		}
	})
}
