package sparse

import (
	"math"
	"strings"
	"testing"
)

func TestRandomUniformDensity(t *testing.T) {
	a := RandomUniform(2000, 500, 0.01, 42)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	got := a.Density()
	if math.Abs(got-0.01)/0.01 > 0.15 {
		t.Fatalf("density = %g, want ≈0.01", got)
	}
	// Values in (-1, 1).
	for _, v := range a.Val {
		if v <= -1 || v >= 1 {
			t.Fatalf("value %g outside (-1,1)", v)
		}
	}
}

func TestRandomUniformDeterministic(t *testing.T) {
	a := RandomUniform(100, 50, 0.05, 7)
	b := RandomUniform(100, 50, 0.05, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different nnz")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.RowIdx[i] != b.RowIdx[i] {
			t.Fatal("same seed, different matrix")
		}
	}
}

func TestRandomUniformEdgeDensities(t *testing.T) {
	if got := RandomUniform(10, 10, 0, 1).NNZ(); got != 0 {
		t.Fatalf("density 0 gave %d nnz", got)
	}
	if got := RandomUniform(10, 10, 1, 1).NNZ(); got != 100 {
		t.Fatalf("density 1 gave %d nnz, want 100", got)
	}
}

func TestAbnormalAStructure(t *testing.T) {
	a := AbnormalA(1000, 100, 100, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows 0, 100, 200, ... are dense; everything else empty.
	if a.NNZ() != 10*100 {
		t.Fatalf("nnz = %d, want 1000", a.NNZ())
	}
	csr := a.ToCSR()
	for i := 0; i < 1000; i++ {
		l := csr.RowPtr[i+1] - csr.RowPtr[i]
		if i%100 == 0 && l != 100 {
			t.Fatalf("dense row %d has %d entries", i, l)
		}
		if i%100 != 0 && l != 0 {
			t.Fatalf("row %d should be empty, has %d", i, l)
		}
	}
}

func TestAbnormalBConcentration(t *testing.T) {
	a := AbnormalB(3000, 300, 9000, 2998.0/3000.0, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	midLo, midHi := 100, 200
	mid := 0
	for j := midLo; j < midHi; j++ {
		mid += a.ColPtr[j+1] - a.ColPtr[j]
	}
	if frac := float64(mid) / float64(a.NNZ()); frac < 0.95 {
		t.Fatalf("middle-third fraction = %g, want > 0.95", frac)
	}
}

func TestAbnormalCStructure(t *testing.T) {
	a := AbnormalC(500, 100, 10, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 100; j++ {
		l := a.ColPtr[j+1] - a.ColPtr[j]
		if j%10 == 0 && l != 500 {
			t.Fatalf("dense col %d has %d entries", j, l)
		}
		if j%10 != 0 && l != 0 {
			t.Fatalf("col %d should be empty, has %d", j, l)
		}
	}
}

func TestBandedStaysInBand(t *testing.T) {
	m, n, hb := 400, 100, 5
	a := Banded(m, n, hb, 0.8, 4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() == 0 {
		t.Fatal("banded matrix empty")
	}
	ratio := float64(n) / float64(m)
	csr := a.ToCSR()
	for i := 0; i < m; i++ {
		center := int(float64(i) * ratio)
		cols, _ := csr.RowView(i)
		for _, j := range cols {
			if j < center-hb || j > center+hb {
				t.Fatalf("entry (%d,%d) outside band center %d ± %d", i, j, center, hb)
			}
		}
	}
}

func TestFixedRowNNZ(t *testing.T) {
	a := FixedRowNNZ(300, 40, 5, 5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	csr := a.ToCSR()
	for i := 0; i < 300; i++ {
		if l := csr.RowPtr[i+1] - csr.RowPtr[i]; l != 5 {
			t.Fatalf("row %d has %d entries, want 5", i, l)
		}
	}
}

func TestFixedRowNNZClampsPerRow(t *testing.T) {
	a := FixedRowNNZ(10, 3, 8, 6)
	csr := a.ToCSR()
	for i := 0; i < 10; i++ {
		if l := csr.RowPtr[i+1] - csr.RowPtr[i]; l != 3 {
			t.Fatalf("row %d has %d entries, want clamped 3", i, l)
		}
	}
}

func TestPowerLawShapeAndTotal(t *testing.T) {
	m, n, nnz := 5000, 400, 60000
	a := PowerLaw(m, n, nnz, 1.5, 9)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.M != m || a.N != n {
		t.Fatalf("dims %dx%d, want %dx%d", a.M, a.N, m, n)
	}
	// Running-cumulative rounding keeps the realised total exact as long as
	// no column saturates at m (none does at this density).
	if a.NNZ() != nnz {
		t.Fatalf("nnz = %d, want exactly %d", a.NNZ(), nnz)
	}
	for _, v := range a.Val {
		if v <= -1 || v >= 1 {
			t.Fatalf("value %g outside (-1,1)", v)
		}
	}
}

func TestPowerLawDegreeDistribution(t *testing.T) {
	// m is chosen above nnz/ζ_n(alpha) ≈ 24k so no column hits the m cap and
	// the analytic Zipf share is exact up to rounding.
	m, n, nnz := 50000, 400, 60000
	alpha := 1.5
	a := PowerLaw(m, n, nnz, alpha, 9)
	deg := func(j int) int { return a.ColPtr[j+1] - a.ColPtr[j] }
	// Zipf ranking: degrees non-increasing in column index (ties allowed;
	// rounding can wobble by at most one, so compare with slack 1).
	for j := 1; j < n; j++ {
		if deg(j) > deg(j-1)+1 {
			t.Fatalf("degree increased at column %d: %d -> %d", j-1, deg(j-1), deg(j))
		}
	}
	// The head must be far heavier than the uniform share: with alpha=1.5
	// the top 10%% of columns carry well over half the mass.
	head := a.SlabNNZ(0, n/10)
	if frac := float64(head) / float64(a.NNZ()); frac < 0.5 {
		t.Fatalf("top-decile mass fraction %g, want > 0.5 at alpha=%g", frac, alpha)
	}
	// deg(j) should track the Zipf law within rounding: check the analytic
	// share of column 0.
	want := float64(nnz) * 1 / zipfNorm(n, alpha)
	if got := float64(deg(0)); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("deg(0) = %g, want ≈ %g", got, want)
	}
	// alpha = 0 degenerates to (near-)equal degrees.
	flat := PowerLaw(1000, 100, 10000, 0, 3)
	for j := 0; j < 100; j++ {
		if d := flat.ColPtr[j+1] - flat.ColPtr[j]; d < 99 || d > 101 {
			t.Fatalf("alpha=0 column %d degree %d, want ≈100", j, d)
		}
	}
}

func zipfNorm(n int, alpha float64) float64 {
	s := 0.0
	for j := 0; j < n; j++ {
		s += math.Pow(float64(j+1), -alpha)
	}
	return s
}

func TestPowerLawCapsAtColumnHeight(t *testing.T) {
	// Tiny m forces the head columns to saturate; the overflow redistributes
	// to later columns and every degree stays ≤ m.
	a := PowerLaw(8, 50, 300, 2, 5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 50; j++ {
		if d := a.ColPtr[j+1] - a.ColPtr[j]; d > 8 {
			t.Fatalf("column %d degree %d exceeds m=8", j, d)
		}
	}
	if a.NNZ() == 0 {
		t.Fatal("saturated power-law matrix came out empty")
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := PowerLaw(500, 60, 3000, 1.2, 11)
	b := PowerLaw(500, 60, 3000, 1.2, 11)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different nnz")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.RowIdx[i] != b.RowIdx[i] {
			t.Fatal("same seed, different matrix")
		}
	}
}

func TestBlockDiagonalish(t *testing.T) {
	a := BlockDiagonalish(200, 100, 4, 0.3, 0.001, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() == 0 {
		t.Fatal("empty block matrix")
	}
}

func TestSpMMSpecsMatchPaper(t *testing.T) {
	specs := SpMMSpecs()
	if len(specs) != 5 {
		t.Fatalf("want 5 Table I specs, got %d", len(specs))
	}
	// Spot-check published numbers.
	if specs[0].Name != "mk-12" || specs[0].M != 13860 || specs[0].N != 1485 || specs[0].NNZ != 41580 {
		t.Fatalf("mk-12 spec wrong: %+v", specs[0])
	}
	if specs[3].Name != "mesh_deform" || specs[3].NNZ != 853829 {
		t.Fatalf("mesh_deform spec wrong: %+v", specs[3])
	}
}

func TestSpMMSpecGenerateSmallScale(t *testing.T) {
	for _, spec := range SpMMSpecs() {
		a := spec.Generate(0.02, 1)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if a.M < a.N {
			t.Fatalf("%s: not tall (%dx%d)", spec.Name, a.M, a.N)
		}
		if a.NNZ() == 0 {
			t.Fatalf("%s: empty", spec.Name)
		}
	}
}

func TestLSSpecsMatchPaper(t *testing.T) {
	specs := LSSpecs()
	if len(specs) != 7 {
		t.Fatalf("want 7 Table VIII specs, got %d", len(specs))
	}
	byName := map[string]LSSpec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	r := byName["rail2586"]
	if r.M != 923269 || r.N != 2586 || r.NNZ != 8011362 {
		t.Fatalf("rail2586 spec wrong: %+v", r)
	}
	if byName["connectus"].rankGap == 0 || byName["landmark"].rankGap == 0 {
		t.Fatal("connectus/landmark must be near rank-deficient")
	}
}

func TestLSSpecGenerateColumnScaling(t *testing.T) {
	spec := LSSpec{Name: "test", M: 3000, N: 60, NNZ: 30000,
		Cond: 1e8, CondScaled: 10, Pattern: PatternFixedRow}
	a := spec.Generate(1, 3)
	norms := a.ColNorms()
	ratio := norms[0] / norms[len(norms)-1]
	// Column norms should span roughly Cond/CondScaled = 1e7.
	if ratio < 1e5 || ratio > 1e9 {
		t.Fatalf("column-norm ratio %g not in ill-conditioned regime", ratio)
	}
}

func TestLSSpecGenerateTall(t *testing.T) {
	for _, spec := range LSSpecs() {
		a := spec.Generate(0.01, 2)
		if a.M < 3*a.N {
			t.Fatalf("%s: %dx%d not strongly overdetermined", spec.Name, a.M, a.N)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestSpyRendering(t *testing.T) {
	a := AbnormalC(100, 50, 10, 1)
	s := Spy(a, 10, 25)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("spy has %d lines, want 10", len(lines))
	}
	// Dense columns should produce visible vertical stripes.
	if !strings.ContainsAny(s, ".:-=+*#%@") {
		t.Fatal("spy plot is blank")
	}
}

func TestDescribe(t *testing.T) {
	a := RandomUniform(10, 5, 0.5, 1)
	s := Describe("tiny", a)
	if !strings.Contains(s, "tiny") || !strings.Contains(s, "m=10") {
		t.Fatalf("Describe output %q", s)
	}
}
