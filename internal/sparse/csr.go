package sparse

import (
	"fmt"
	"sort"

	"sketchsp/internal/dense"
)

// CSR is a compressed-sparse-row matrix. It backs the "MKL-style" baseline
// (MKL only supports sparse-times-dense, so the paper stores A in CSR and S
// row-major and computes the transposed product) and the per-block storage
// of the BlockedCSR structure used by Algorithm 4.
type CSR struct {
	M, N   int
	RowPtr []int // length M+1
	ColIdx []int // length nnz
	Val    []float64
}

// NewCSR builds a CSR matrix from raw arrays after validating invariants.
func NewCSR(m, n int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	a := &CSR{M: m, N: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Validate checks the CSR structural invariants.
func (a *CSR) Validate() error {
	if a.M < 0 || a.N < 0 {
		return fmt.Errorf("sparse: CSR negative dims %dx%d", a.M, a.N)
	}
	if len(a.RowPtr) != a.M+1 {
		return fmt.Errorf("sparse: CSR RowPtr len %d want %d", len(a.RowPtr), a.M+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: CSR RowPtr[0]=%d want 0", a.RowPtr[0])
	}
	if len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: CSR len(ColIdx)=%d != len(Val)=%d", len(a.ColIdx), len(a.Val))
	}
	if a.RowPtr[a.M] != len(a.Val) {
		return fmt.Errorf("sparse: CSR RowPtr[M]=%d != nnz=%d", a.RowPtr[a.M], len(a.Val))
	}
	for i := 0; i < a.M; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: CSR RowPtr not monotone at row %d", i)
		}
		prev := -1
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := a.ColIdx[p]
			if c < 0 || c >= a.N {
				return fmt.Errorf("sparse: CSR col index %d out of range in row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("sparse: CSR unsorted/duplicate col %d in row %d", c, i)
			}
			prev = c
		}
	}
	return nil
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// At returns element (i, j); for tests and spot checks.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	seg := a.ColIdx[lo:hi]
	k := sort.SearchInts(seg, j)
	if k < len(seg) && seg[k] == j {
		return a.Val[lo+k]
	}
	return 0
}

// RowView returns the column indices and values of row i (aliases storage).
func (a *CSR) RowView(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// ToCSC converts to compressed sparse column.
func (a *CSR) ToCSC() *CSC {
	nnz := len(a.Val)
	colPtr := make([]int, a.N+1)
	for _, c := range a.ColIdx {
		colPtr[c+1]++
	}
	for j := 0; j < a.N; j++ {
		colPtr[j+1] += colPtr[j]
	}
	rowIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, a.N)
	copy(next, colPtr[:a.N])
	for i := 0; i < a.M; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := a.ColIdx[p]
			w := next[c]
			rowIdx[w] = i
			val[w] = a.Val[p]
			next[c]++
		}
	}
	return &CSC{M: a.M, N: a.N, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
}

// ToDense materialises the matrix (tests and small examples only).
func (a *CSR) ToDense() *dense.Matrix {
	out := dense.NewMatrix(a.M, a.N)
	for i := 0; i < a.M; i++ {
		cols, vals := a.RowView(i)
		for k, c := range cols {
			out.Set(i, c, vals[k])
		}
	}
	return out
}

// MulVec computes y = A*x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.M {
		panic(fmt.Sprintf("sparse: CSR MulVec dims A=%dx%d len(x)=%d len(y)=%d", a.M, a.N, len(x), len(y)))
	}
	for i := 0; i < a.M; i++ {
		cols, vals := a.RowView(i)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// MemoryBytes reports the CSR storage footprint in bytes.
func (a *CSR) MemoryBytes() int64 {
	return int64(len(a.Val))*8 + int64(len(a.ColIdx))*8 + int64(len(a.RowPtr))*8
}

// MulVecT computes y = Aᵀ*x.
func (a *CSR) MulVecT(x, y []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic(fmt.Sprintf("sparse: CSR MulVecT dims A=%dx%d len(x)=%d len(y)=%d", a.M, a.N, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < a.M; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		cols, vals := a.RowView(i)
		for k, c := range cols {
			y[c] += vals[k] * xi
		}
	}
}

// Dims returns (rows, cols), satisfying the lsqr.Operator interface.
func (a *CSR) Dims() (m, n int) { return a.M, a.N }
