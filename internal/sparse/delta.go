package sparse

import "fmt"

// Add returns A + ΔA as a freshly allocated CSC matrix. Both operands must
// be structurally valid and share the same shape; neither is modified and
// the result never aliases either input's arrays (the serving layer applies
// deltas to matrices whose backing arrays may be pooled request scratch or
// pinned under live plans, so aliasing either side would be a correctness
// bug of the PR 4 pooled-scratch class).
//
// The merge is a per-column two-pointer walk over the sorted row indices;
// coincident entries are summed and — load-bearing for content addressing —
// entries whose sum is exactly zero are dropped from the result. A stored
// explicit zero and an absent entry are the same matrix mathematically but
// fingerprint differently, so without the drop a PATCH that cancels an
// entry would mint a fingerprint no client could reproduce from the values
// alone. (A signed zero sum counts as zero: -0.0 == 0.0, and dropping it
// keeps the canonical form independent of summand order.)
//
// Add commutes with ColSlice: Add(a, d).ColSlice(j0, j1) equals
// Add(a.ColSlice(j0, j1), d.ColSlice(j0, j1)) entry for entry, because the
// merge never looks across column boundaries. The shard coordinator's
// delta forwarding relies on exactly this.
func Add(a, delta *CSC) (*CSC, error) {
	if a == nil || delta == nil {
		return nil, fmt.Errorf("sparse: Add of nil matrix")
	}
	if a.M != delta.M || a.N != delta.N {
		return nil, fmt.Errorf("sparse: Add shape mismatch %dx%d vs %dx%d", a.M, a.N, delta.M, delta.N)
	}
	out := &CSC{
		M: a.M, N: a.N,
		ColPtr: make([]int, a.N+1),
		// nnz(A+Δ) <= nnz(A)+nnz(Δ); over-allocating and trimming once
		// beats growing per column.
		RowIdx: make([]int, 0, len(a.Val)+len(delta.Val)),
		Val:    make([]float64, 0, len(a.Val)+len(delta.Val)),
	}
	for j := 0; j < a.N; j++ {
		p, pEnd := a.ColPtr[j], a.ColPtr[j+1]
		q, qEnd := delta.ColPtr[j], delta.ColPtr[j+1]
		for p < pEnd || q < qEnd {
			switch {
			case q >= qEnd || (p < pEnd && a.RowIdx[p] < delta.RowIdx[q]):
				out.RowIdx = append(out.RowIdx, a.RowIdx[p])
				out.Val = append(out.Val, a.Val[p])
				p++
			case p >= pEnd || delta.RowIdx[q] < a.RowIdx[p]:
				out.RowIdx = append(out.RowIdx, delta.RowIdx[q])
				out.Val = append(out.Val, delta.Val[q])
				q++
			default: // coincident entry
				if s := a.Val[p] + delta.Val[q]; s != 0 {
					out.RowIdx = append(out.RowIdx, a.RowIdx[p])
					out.Val = append(out.Val, s)
				}
				p++
				q++
			}
		}
		out.ColPtr[j+1] = len(out.Val)
	}
	return out, nil
}
