// Package sparse implements the sparse-matrix substrate the paper's kernels
// run on: COO for construction, CSC (the paper's default input format for
// Algorithm 3), CSR (the "MKL-style" baseline format), and the vertically
// blocked CSR structure required by Algorithm 4, along with conversions,
// MatrixMarket I/O, and the synthetic matrix generators used to stand in for
// the SuiteSparse collection matrices of Tables I and VIII.
package sparse

import "fmt"

// COO is a coordinate-format sparse matrix used as a construction buffer.
// Duplicate entries are summed when converting to CSC/CSR.
type COO struct {
	M, N int
	Row  []int
	Col  []int
	Val  []float64
}

// NewCOO creates an empty m×n COO matrix with capacity for nnzHint entries.
func NewCOO(m, n, nnzHint int) *COO {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", m, n))
	}
	return &COO{
		M: m, N: n,
		Row: make([]int, 0, nnzHint),
		Col: make([]int, 0, nnzHint),
		Val: make([]float64, 0, nnzHint),
	}
}

// Append adds entry (i, j, v). Out-of-range indices panic; zero values are
// kept (callers that want them dropped should filter first).
func (c *COO) Append(i, j int, v float64) {
	if i < 0 || i >= c.M || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) out of %dx%d", i, j, c.M, c.N))
	}
	c.Row = append(c.Row, i)
	c.Col = append(c.Col, j)
	c.Val = append(c.Val, v)
}

// NNZ returns the number of stored entries (before duplicate summing).
func (c *COO) NNZ() int { return len(c.Val) }

// ToCSC converts to compressed sparse column, sorting row indices within
// each column and summing duplicates.
func (c *COO) ToCSC() *CSC {
	nnz := len(c.Val)
	colCount := make([]int, c.N+1)
	for _, j := range c.Col {
		colCount[j+1]++
	}
	for j := 0; j < c.N; j++ {
		colCount[j+1] += colCount[j]
	}
	rowIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, c.N)
	copy(next, colCount[:c.N])
	for k := 0; k < nnz; k++ {
		j := c.Col[k]
		p := next[j]
		rowIdx[p] = c.Row[k]
		val[p] = c.Val[k]
		next[j]++
	}
	out := &CSC{M: c.M, N: c.N, ColPtr: colCount, RowIdx: rowIdx, Val: val}
	out.sortAndDedup()
	return out
}

// ToCSR converts to compressed sparse row, sorting column indices within
// each row and summing duplicates.
func (c *COO) ToCSR() *CSR {
	return c.ToCSC().ToCSR()
}

type cscColSorter struct {
	idx []int
	val []float64
}

func (s cscColSorter) Len() int           { return len(s.idx) }
func (s cscColSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s cscColSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}
