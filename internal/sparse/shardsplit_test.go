package sparse

import "testing"

func splitTestMatrix(t *testing.T, n int, colNNZ func(j int) int) *CSC {
	t.Helper()
	m := 64
	coo := NewCOO(m, n, 0)
	for j := 0; j < n; j++ {
		c := colNNZ(j)
		if c > m {
			c = m
		}
		for i := 0; i < c; i++ {
			coo.Append(i, j, float64(i+j)+0.5)
		}
	}
	return coo.ToCSC()
}

func TestNNZBalancedColSplit(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		colNNZ func(int) int
	}{
		{"uniform", 40, func(int) int { return 3 }},
		{"empty-cols", 40, func(j int) int { return (j % 3) * 2 }},
		{"one-dense-col", 40, func(j int) int {
			if j == 17 {
				return 64
			}
			return 1
		}},
		{"all-empty", 12, func(int) int { return 0 }},
		{"front-loaded", 30, func(j int) int { return 40 - j }},
	}
	for _, tc := range cases {
		a := splitTestMatrix(t, tc.n, tc.colNNZ)
		for k := 1; k <= 8; k++ {
			cuts := NNZBalancedColSplit(a, k)
			if err := validateCuts(cuts, a.N); err != nil {
				t.Fatalf("%s k=%d: %v", tc.name, k, err)
			}
			want := k
			if want > a.N {
				want = a.N
			}
			if len(cuts) != want+1 {
				t.Fatalf("%s k=%d: %d cuts, want %d", tc.name, k, len(cuts), want+1)
			}
			// Every slab non-empty whenever n >= k.
			total := 0
			for i := 1; i < len(cuts); i++ {
				if cuts[i] <= cuts[i-1] {
					t.Fatalf("%s k=%d: empty slab [%d:%d) in %v", tc.name, k, cuts[i-1], cuts[i], cuts)
				}
				total += a.SlabNNZ(cuts[i-1], cuts[i])
			}
			if total != a.NNZ() {
				t.Fatalf("%s k=%d: slabs cover %d of %d nnz", tc.name, k, total, a.NNZ())
			}
		}
	}
}

// The balance bound: no slab exceeds the ideal share by more than the
// heaviest single column (the contiguous-split optimum).
func TestNNZBalancedColSplitBalance(t *testing.T) {
	a := splitTestMatrix(t, 200, func(j int) int { return 1 + (j*7)%13 })
	maxCol := 0
	for j := 0; j < a.N; j++ {
		if c := a.SlabNNZ(j, j+1); c > maxCol {
			maxCol = c
		}
	}
	for _, k := range []int{2, 3, 4, 7, 16} {
		cuts := NNZBalancedColSplit(a, k)
		ideal := (a.NNZ() + k - 1) / k
		for i := 1; i < len(cuts); i++ {
			if got := a.SlabNNZ(cuts[i-1], cuts[i]); got > ideal+maxCol {
				t.Fatalf("k=%d slab %d holds %d nnz, ideal %d + maxcol %d", k, i-1, got, ideal, maxCol)
			}
		}
	}
}

func TestNNZBalancedColSplitDegenerate(t *testing.T) {
	empty := &CSC{M: 5, N: 0, ColPtr: []int{0}}
	if got := NNZBalancedColSplit(empty, 4); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("0-col split = %v", got)
	}
	one := splitTestMatrix(t, 1, func(int) int { return 7 })
	if got := NNZBalancedColSplit(one, 5); len(got) != 2 || got[1] != 1 {
		t.Fatalf("1-col split = %v", got)
	}
	if got := NNZBalancedColSplit(one, 0); len(got) != 2 {
		t.Fatalf("k=0 split = %v", got)
	}
	// ColSlice over the cuts must reassemble the exact nnz, with global rows.
	a := splitTestMatrix(t, 33, func(j int) int { return j % 5 })
	cuts := NNZBalancedColSplit(a, 4)
	for i := 1; i < len(cuts); i++ {
		s := a.ColSlice(cuts[i-1], cuts[i])
		if s.M != a.M {
			t.Fatalf("shard M=%d want %d", s.M, a.M)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("shard [%d:%d): %v", cuts[i-1], cuts[i], err)
		}
	}
}
