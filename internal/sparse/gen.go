package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomUniform generates an m×n CSC matrix whose sparsity pattern is iid
// uniform with the given density (each entry present independently with
// probability density), values uniform in (-1, 1). It is the model matrix
// of the paper's §III analysis ("uniformly distributed sparse matrix with a
// density of ρ") and of the Figure 4 density sweep.
//
// For large m·n the per-column nonzero count is drawn from the Binomial
// distribution directly (inversion for small λ, normal approximation for
// large), and distinct rows are then sampled without replacement, so the
// cost is O(nnz) rather than O(m·n).
func RandomUniform(m, n int, density float64, seed int64) *CSC {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("sparse: density %g out of [0,1]", density))
	}
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(m, n, int(density*float64(m)*float64(n))+n)
	for j := 0; j < n; j++ {
		k := binomial(rng, m, density)
		sampleRows(rng, m, k, func(i int) {
			coo.Append(i, j, rng.Float64()*2-1)
		})
	}
	return coo.ToCSC()
}

// binomial draws from Binomial(n, p). Exact inversion for small mean,
// normal approximation (clamped) otherwise; both are fine for workload
// generation where only the aggregate density matters.
func binomial(rng *rand.Rand, n int, p float64) int {
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 30 {
		// Inversion by sequential search over the CDF.
		q := math.Pow(1-p, float64(n))
		u := rng.Float64()
		cdf := q
		k := 0
		for u > cdf && k < n {
			k++
			q *= (float64(n-k+1) / float64(k)) * (p / (1 - p))
			cdf += q
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// sampleRows invokes f on k distinct row indices drawn uniformly from
// [0, m). Uses Floyd's algorithm: O(k) time and space.
func sampleRows(rng *rand.Rand, m, k int, f func(i int)) {
	if k >= m {
		for i := 0; i < m; i++ {
			f(i)
		}
		return
	}
	seen := make(map[int]struct{}, k)
	for j := m - k; j < m; j++ {
		t := rng.Intn(j + 1)
		if _, ok := seen[t]; ok {
			t = j
		}
		seen[t] = struct{}{}
		f(t)
	}
}

// AbnormalA builds the paper's Abnormal_A pattern (Table VI): every
// `stride`-th row is fully dense and all other rows are zero. With the
// paper's m=100000, n=10000, stride=1000 this gives density 1e-3.
func AbnormalA(m, n, stride int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	nd := (m + stride - 1) / stride
	coo := NewCOO(m, n, nd*n)
	for i := 0; i < m; i += stride {
		for j := 0; j < n; j++ {
			coo.Append(i, j, rng.Float64()*2-1)
		}
	}
	return coo.ToCSC()
}

// AbnormalB builds the paper's Abnormal_B pattern: approximately
// frac of the nonzeros concentrated in the middle third vertical block of
// the matrix (paper uses frac = 2998/3000), the remainder spread uniformly.
// totalNNZ controls the overall density.
func AbnormalB(m, n, totalNNZ int, frac float64, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(m, n, totalNNZ)
	midLo, midHi := n/3, 2*n/3
	if midHi <= midLo {
		midHi = midLo + 1
	}
	nMid := int(float64(totalNNZ) * frac)
	added := make(map[int64]struct{}, totalNNZ)
	put := func(i, j int) {
		key := int64(i)*int64(n) + int64(j)
		if _, ok := added[key]; ok {
			return
		}
		added[key] = struct{}{}
		coo.Append(i, j, rng.Float64()*2-1)
	}
	for t := 0; t < nMid; t++ {
		put(rng.Intn(m), midLo+rng.Intn(midHi-midLo))
	}
	for t := nMid; t < totalNNZ; t++ {
		put(rng.Intn(m), rng.Intn(n))
	}
	return coo.ToCSC()
}

// PowerLaw generates an m×n matrix whose column degrees follow a Zipf
// (power-law) profile: column j carries a share ∝ (j+1)^(-alpha) of the
// requested nnz total, capped at m entries per column, with row positions
// uniform without replacement and values uniform in (-1, 1). Column 0 is the
// heaviest by construction, so the mass concentrates in the leading column
// slabs — the adversarial input for uniform (b_d, b_n) task partitioning and
// the model workload of the nnz-aware scheduler benchmarks (alpha ≈ 1–2
// matches the degree skew of the web/social matrices FlashSketch targets;
// alpha = 0 degenerates to equal column degrees).
//
// Per-column counts are rounded with a running cumulative target so the
// realised total matches nnz exactly whenever no column hits the m cap.
func PowerLaw(m, n, nnz int, alpha float64, seed int64) *CSC {
	if alpha < 0 {
		panic(fmt.Sprintf("sparse: PowerLaw alpha=%g negative", alpha))
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, n)
	total := 0.0
	for j := 0; j < n; j++ {
		weights[j] = math.Pow(float64(j+1), -alpha)
		total += weights[j]
	}
	coo := NewCOO(m, n, nnz+n)
	acc, assigned := 0.0, 0
	for j := 0; j < n; j++ {
		acc += float64(nnz) * weights[j] / total
		k := int(math.Round(acc)) - assigned
		if k < 0 {
			k = 0
		}
		if k > m {
			k = m
		}
		assigned += k
		sampleRows(rng, m, k, func(i int) {
			coo.Append(i, j, rng.Float64()*2-1)
		})
	}
	return coo.ToCSC()
}

// AbnormalC builds the paper's Abnormal_C pattern: every `stride`-th column
// is fully dense, all others zero.
func AbnormalC(m, n, stride int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	nd := (n + stride - 1) / stride
	coo := NewCOO(m, n, nd*m)
	for j := 0; j < n; j += stride {
		for i := 0; i < m; i++ {
			coo.Append(i, j, rng.Float64()*2-1)
		}
	}
	return coo.ToCSC()
}

// Banded generates a banded m×n matrix with the given half-bandwidth and
// in-band fill probability — the qualitative shape of mesh_deform-like
// matrices (Figure 5 middle panel).
func Banded(m, n, halfBand int, fill float64, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(m, n, int(float64(m)*float64(2*halfBand+1)*fill)+m)
	ratio := float64(n) / float64(m)
	for i := 0; i < m; i++ {
		center := int(float64(i) * ratio)
		lo := center - halfBand
		if lo < 0 {
			lo = 0
		}
		hi := center + halfBand
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			if rng.Float64() < fill {
				coo.Append(i, j, rng.Float64()*2-1)
			}
		}
	}
	return coo.ToCSC()
}

// BlockDiagonalish generates a matrix of dense-ish rectangular blocks laid
// down the diagonal with uniform background noise — the qualitative shape of
// the combinatorial shar_te2-b2 / cis-n4c6-b4 matrices (Figure 5 outer
// panels): structured block stripes plus scattered entries.
func BlockDiagonalish(m, n, blocks int, blockFill, background float64, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	if blocks < 1 {
		blocks = 1
	}
	bh := (m + blocks - 1) / blocks
	bw := (n + blocks - 1) / blocks
	est := int(blockFill*float64(bh)*float64(bw)*float64(blocks)) + int(background*float64(m)*float64(n)) + blocks
	coo := NewCOO(m, n, est)
	added := make(map[int64]struct{}, est)
	put := func(i, j int) {
		key := int64(i)*int64(n) + int64(j)
		if _, ok := added[key]; ok {
			return
		}
		added[key] = struct{}{}
		coo.Append(i, j, rng.Float64()*2-1)
	}
	for b := 0; b < blocks; b++ {
		i0, j0 := b*bh, b*bw
		i1, j1 := i0+bh, j0+bw
		if i1 > m {
			i1 = m
		}
		if j1 > n {
			j1 = n
		}
		cnt := int(blockFill * float64(i1-i0) * float64(j1-j0))
		for t := 0; t < cnt; t++ {
			put(i0+rng.Intn(i1-i0), j0+rng.Intn(j1-j0))
		}
	}
	bg := int(background * float64(m) * float64(n))
	for t := 0; t < bg; t++ {
		put(rng.Intn(m), rng.Intn(n))
	}
	return coo.ToCSC()
}

// FixedRowNNZ generates an m×n matrix with exactly perRow nonzeros in every
// row at uniform random column positions, values uniform in (-1, 1). This is
// the structure of the simplicial-boundary matrices in Table I (e.g.
// shar_te2-b2 has exactly 3 entries per row, cis-n4c6-b4 has 5).
func FixedRowNNZ(m, n, perRow int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	if perRow > n {
		perRow = n
	}
	coo := NewCOO(m, n, m*perRow)
	for i := 0; i < m; i++ {
		sampleRows(rng, n, perRow, func(j int) {
			coo.Append(i, j, rng.Float64()*2-1)
		})
	}
	return coo.ToCSC()
}

// Intervals generates a rail-style set-cover matrix: each column is the 0/1
// indicator of a contiguous run of rows whose length is exponentially
// distributed with mean avgLen. Overlapping interval columns act like a
// discrete integration operator, so cond(A) grows with n and — crucially for
// the Table IX comparison — survives diagonal column equilibration, exactly
// the behaviour of the rail LP matrices (cond(AD) ≈ cond(A)).
func Intervals(m, n, avgLen int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	if avgLen < 1 {
		avgLen = 1
	}
	coo := NewCOO(m, n, n*avgLen+n)
	for j := 0; j < n; j++ {
		l := 1 + int(float64(avgLen)*rng.ExpFloat64())
		if l > m {
			l = m
		}
		start := rng.Intn(m - l + 1)
		for i := start; i < start+l; i++ {
			coo.Append(i, j, 1)
		}
	}
	return coo.ToCSC()
}

// RowIntervals generates a rail-style matrix in the tall orientation the
// solvers consume: each ROW is the 0/1 indicator of a contiguous run of
// columns with exponentially distributed length (mean perRow). This mirrors
// the transposed rail LP matrices, where every row ("route") covers a
// handful of adjacent columns: rows carry several nonzeros each, which is
// what makes a row-wise sparse QR accumulate fill and a large Q factor
// (the Table XI footprint).
func RowIntervals(m, n, perRow int, seed int64) *CSC {
	rng := rand.New(rand.NewSource(seed))
	if perRow < 1 {
		perRow = 1
	}
	coo := NewCOO(m, n, m*perRow+m)
	for i := 0; i < m; i++ {
		l := 1 + int(float64(perRow)*rng.ExpFloat64())
		if l > n {
			l = n
		}
		start := rng.Intn(n - l + 1)
		for j := start; j < start+l; j++ {
			coo.Append(i, j, 1)
		}
	}
	return coo.ToCSC()
}
