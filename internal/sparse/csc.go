package sparse

import (
	"fmt"
	"sort"

	"sketchsp/internal/dense"
)

// CSC is a compressed-sparse-column matrix, the paper's default input format
// (Algorithm 3 streams its columns). Row indices within a column are sorted
// ascending and unique.
type CSC struct {
	M, N   int
	ColPtr []int // length N+1
	RowIdx []int // length nnz
	Val    []float64
}

// NewCSC builds a CSC matrix from raw compressed arrays after validating
// structural invariants (monotone ColPtr, in-range sorted unique row
// indices).
func NewCSC(m, n int, colPtr, rowIdx []int, val []float64) (*CSC, error) {
	a := &CSC{M: m, N: n, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Validate checks the CSC structural invariants.
func (a *CSC) Validate() error {
	if a.M < 0 || a.N < 0 {
		return fmt.Errorf("sparse: CSC negative dims %dx%d", a.M, a.N)
	}
	if len(a.ColPtr) != a.N+1 {
		return fmt.Errorf("sparse: CSC ColPtr len %d want %d", len(a.ColPtr), a.N+1)
	}
	if a.ColPtr[0] != 0 {
		return fmt.Errorf("sparse: CSC ColPtr[0]=%d want 0", a.ColPtr[0])
	}
	if len(a.RowIdx) != len(a.Val) {
		return fmt.Errorf("sparse: CSC len(RowIdx)=%d != len(Val)=%d", len(a.RowIdx), len(a.Val))
	}
	if a.ColPtr[a.N] != len(a.Val) {
		return fmt.Errorf("sparse: CSC ColPtr[N]=%d != nnz=%d", a.ColPtr[a.N], len(a.Val))
	}
	for j := 0; j < a.N; j++ {
		if a.ColPtr[j] > a.ColPtr[j+1] {
			return fmt.Errorf("sparse: CSC ColPtr not monotone at col %d", j)
		}
		// Bounds must hold per column, not just at the endpoints: a ColPtr
		// like [0, k, ..., 0] is locally monotone at col 0 yet indexes past
		// the entry arrays before the decreasing step is ever reached.
		if a.ColPtr[j] < 0 || a.ColPtr[j+1] > len(a.RowIdx) {
			return fmt.Errorf("sparse: CSC ColPtr out of range at col %d", j)
		}
		prev := -1
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			if r < 0 || r >= a.M {
				return fmt.Errorf("sparse: CSC row index %d out of range in col %d", r, j)
			}
			if r <= prev {
				return fmt.Errorf("sparse: CSC unsorted/duplicate row %d in col %d", r, j)
			}
			prev = r
		}
	}
	return nil
}

func (a *CSC) sortAndDedup() {
	writeBase := 0
	newColPtr := make([]int, a.N+1)
	for j := 0; j < a.N; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		seg := cscColSorter{idx: a.RowIdx[lo:hi], val: a.Val[lo:hi]}
		sort.Sort(seg)
		// Sum duplicates while compacting toward writeBase.
		w := writeBase
		for p := lo; p < hi; p++ {
			if w > writeBase && a.RowIdx[w-1] == a.RowIdx[p] {
				a.Val[w-1] += a.Val[p]
				continue
			}
			a.RowIdx[w] = a.RowIdx[p]
			a.Val[w] = a.Val[p]
			w++
		}
		newColPtr[j+1] = w
		writeBase = w
	}
	a.ColPtr = newColPtr
	a.RowIdx = a.RowIdx[:writeBase]
	a.Val = a.Val[:writeBase]
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int { return len(a.Val) }

// Density returns nnz/(m·n); zero for empty matrices.
func (a *CSC) Density() float64 {
	if a.M == 0 || a.N == 0 {
		return 0
	}
	return float64(len(a.Val)) / (float64(a.M) * float64(a.N))
}

// At returns element (i, j) with a binary search over column j. Intended for
// tests and spot checks, not kernels.
func (a *CSC) At(i, j int) float64 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	seg := a.RowIdx[lo:hi]
	k := sort.SearchInts(seg, i)
	if k < len(seg) && seg[k] == i {
		return a.Val[lo+k]
	}
	return 0
}

// SlabNNZ returns nnz(A[:, j0:j1]), the number of stored entries in the
// vertical column slab [j0, j1). ColPtr is exactly the prefix sum of the
// per-column nonzero counts, so the answer is a two-load O(1) lookup — cheap
// enough that the nnz-aware task partitioner and the BlockedCSR conversion
// both call it per candidate slab during planning.
func (a *CSC) SlabNNZ(j0, j1 int) int {
	if j0 < 0 || j1 < j0 || j1 > a.N {
		panic(fmt.Sprintf("sparse: SlabNNZ [%d:%d] of %d cols", j0, j1, a.N))
	}
	return a.ColPtr[j1] - a.ColPtr[j0]
}

// ColView returns the row indices and values of column j (aliases storage).
func (a *CSC) ColView(j int) (rows []int, vals []float64) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowIdx[lo:hi], a.Val[lo:hi]
}

// Clone deep-copies the matrix.
func (a *CSC) Clone() *CSC {
	out := &CSC{
		M: a.M, N: a.N,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return out
}

// Scale multiplies every stored value by f in place.
func (a *CSC) Scale(f float64) {
	for i := range a.Val {
		a.Val[i] *= f
	}
}

// ColNorms returns the 2-norm of each column (used by the LSQR-D diagonal
// preconditioner).
func (a *CSC) ColNorms() []float64 {
	out := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		_, vals := a.ColView(j)
		out[j] = dense.Nrm2(vals)
	}
	return out
}

// ToDense materialises the matrix (tests and small examples only).
func (a *CSC) ToDense() *dense.Matrix {
	out := dense.NewMatrix(a.M, a.N)
	for j := 0; j < a.N; j++ {
		rows, vals := a.ColView(j)
		col := out.Col(j)
		for k, r := range rows {
			col[r] = vals[k]
		}
	}
	return out
}

// ToCSR converts to compressed sparse row.
func (a *CSC) ToCSR() *CSR {
	nnz := len(a.Val)
	rowPtr := make([]int, a.M+1)
	for _, r := range a.RowIdx {
		rowPtr[r+1]++
	}
	for i := 0; i < a.M; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, a.M)
	copy(next, rowPtr[:a.M])
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			w := next[r]
			colIdx[w] = j
			val[w] = a.Val[p]
			next[r]++
		}
	}
	return &CSR{M: a.M, N: a.N, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Transpose returns Aᵀ in CSC form. Because transposing a CSC matrix yields
// its CSR arrays reinterpreted, this is a single counting pass.
func (a *CSC) Transpose() *CSC {
	csr := a.ToCSR()
	return &CSC{M: a.N, N: a.M, ColPtr: csr.RowPtr, RowIdx: csr.ColIdx, Val: csr.Val}
}

// ColSlice returns the vertical slab A[:, j0:j1] as a new CSC matrix.
func (a *CSC) ColSlice(j0, j1 int) *CSC {
	if j0 < 0 || j1 < j0 || j1 > a.N {
		panic(fmt.Sprintf("sparse: ColSlice [%d:%d] of %d cols", j0, j1, a.N))
	}
	lo, hi := a.ColPtr[j0], a.ColPtr[j1]
	colPtr := make([]int, j1-j0+1)
	for j := j0; j <= j1; j++ {
		colPtr[j-j0] = a.ColPtr[j] - lo
	}
	return &CSC{
		M: a.M, N: j1 - j0,
		ColPtr: colPtr,
		RowIdx: a.RowIdx[lo:hi],
		Val:    a.Val[lo:hi],
	}
}

// MulVec computes y = A*x.
func (a *CSC) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.M {
		panic(fmt.Sprintf("sparse: MulVec dims A=%dx%d len(x)=%d len(y)=%d", a.M, a.N, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		rows, vals := a.ColView(j)
		for k, r := range rows {
			y[r] += vals[k] * xj
		}
	}
}

// MulVecT computes y = Aᵀ*x.
func (a *CSC) MulVecT(x, y []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic(fmt.Sprintf("sparse: MulVecT dims A=%dx%d len(x)=%d len(y)=%d", a.M, a.N, len(x), len(y)))
	}
	for j := 0; j < a.N; j++ {
		rows, vals := a.ColView(j)
		var s float64
		for k, r := range rows {
			s += vals[k] * x[r]
		}
		y[j] = s
	}
}

// FrobeniusNorm returns ‖A‖_F.
func (a *CSC) FrobeniusNorm() float64 { return dense.Nrm2(a.Val) }

// MemoryBytes reports the CSC storage footprint (mirrors the paper's
// mem(A) column in Table VIII: 8-byte values, 8-byte indices here since Go
// ints are 64-bit on the target platforms).
func (a *CSC) MemoryBytes() int64 {
	return int64(len(a.Val))*8 + int64(len(a.RowIdx))*8 + int64(len(a.ColPtr))*8
}

// Dims returns (rows, cols), satisfying the lsqr.Operator interface.
func (a *CSC) Dims() (m, n int) { return a.M, a.N }
