package sparse

import "math"

// Fingerprint is a compact identity summary of a CSC matrix, the cache key
// the plan-serving layer uses to recognise "the same matrix again" across
// requests without pinning the matrix itself. The cleartext fields make
// shape collisions impossible by construction; Hash chains every structural
// array and the stored values, so a mutation anywhere in ColPtr, RowIdx or
// Val produces a different fingerprint (up to the 2⁻⁶⁴ collision odds of
// the mixer).
//
// Two matrices with equal fingerprints are treated as interchangeable plan
// inputs. Values are included — not just structure — because a Plan pins the
// numeric content of A (pre-scaled clones, the kernels' accumulations), so
// keying on structure alone would serve one matrix's sketch for another.
type Fingerprint struct {
	M, N, NNZ int
	Hash      uint64
}

// splitmix64-style mixing: absorb one 64-bit word into the running state.
// The finaliser constants are Stafford's Mix13 variant — two multiplies and
// three shifts per word, with full avalanche, which keeps fingerprinting a
// small fraction of the O(d·nnz) sketch cost it guards.
func fpMix(h, x uint64) uint64 {
	z := h + x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fingerprint computes the matrix's structural fingerprint in one O(nnz)
// pass and zero allocations. It is total: degenerate shapes (0×n, m×0,
// matrices with empty columns) and even structurally invalid inputs (the
// zero value &CSC{}, truncated ColPtr) hash without panicking — the arrays
// are absorbed as they are, lengths first, so no slice is ever indexed
// beyond its own bounds and concatenation ambiguities between the three
// arrays cannot collide.
func (a *CSC) Fingerprint() Fingerprint {
	h := fpMix(0, uint64(int64(a.M)))
	h = fpMix(h, uint64(int64(a.N)))
	h = fpMix(h, uint64(len(a.ColPtr)))
	for _, p := range a.ColPtr {
		h = fpMix(h, uint64(int64(p)))
	}
	h = fpMix(h, uint64(len(a.RowIdx)))
	for _, r := range a.RowIdx {
		h = fpMix(h, uint64(int64(r)))
	}
	h = fpMix(h, uint64(len(a.Val)))
	for _, v := range a.Val {
		h = fpMix(h, math.Float64bits(v))
	}
	return Fingerprint{M: a.M, N: a.N, NNZ: len(a.Val), Hash: h}
}
