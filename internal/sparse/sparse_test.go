package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCOO builds a random m×n COO with roughly nnz entries (duplicates
// possible, which exercises the dedup path).
func randomCOO(r *rand.Rand, m, n, nnz int) *COO {
	c := NewCOO(m, n, nnz)
	for k := 0; k < nnz; k++ {
		c.Append(r.Intn(m), r.Intn(n), r.NormFloat64())
	}
	return c
}

func TestCOOToCSCRoundTrip(t *testing.T) {
	c := NewCOO(3, 3, 4)
	c.Append(0, 0, 1)
	c.Append(2, 1, 2)
	c.Append(1, 2, 3)
	c.Append(2, 2, 4)
	a := c.ToCSC()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(2, 1) != 2 || a.At(1, 2) != 3 || a.At(2, 2) != 4 {
		t.Fatal("CSC values wrong")
	}
	if a.At(1, 1) != 0 {
		t.Fatal("zero entry nonzero")
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(2, 2, 3)
	c.Append(1, 1, 2)
	c.Append(1, 1, 3)
	c.Append(0, 0, 1)
	a := c.ToCSC()
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 after dedup", a.NNZ())
	}
	if a.At(1, 1) != 5 {
		t.Fatalf("duplicate sum = %g, want 5", a.At(1, 1))
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	c := NewCOO(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Append(2, 0, 1)
}

func TestCSCValidateCatchesCorruption(t *testing.T) {
	a := RandomUniform(20, 10, 0.3, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	bad.RowIdx[0] = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range row index")
	}
	bad2 := a.Clone()
	bad2.ColPtr[1] = bad2.ColPtr[0] - 1
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate accepted non-monotone ColPtr")
	}
}

func TestCSCCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := randomCOO(r, m, n, r.Intn(60)).ToCSC()
		back := a.ToCSR().ToCSC()
		if back.M != a.M || back.N != a.N || back.NNZ() != a.NNZ() {
			return false
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if a.At(i, j) != back.At(i, j) {
					return false
				}
			}
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(15), 1+r.Intn(15)
		a := randomCOO(r, m, n, r.Intn(50)).ToCSC()
		at := a.Transpose()
		if at.M != n || at.N != m {
			return false
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if a.At(i, j) != at.At(j, i) {
					return false
				}
			}
		}
		return at.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestColSlice(t *testing.T) {
	a := RandomUniform(30, 12, 0.3, 2)
	s := a.ColSlice(3, 8)
	if s.M != 30 || s.N != 5 {
		t.Fatalf("slice dims %dx%d", s.M, s.N)
	}
	for j := 0; j < 5; j++ {
		for i := 0; i < 30; i++ {
			if s.At(i, j) != a.At(i, j+3) {
				t.Fatalf("slice (%d,%d) mismatch", i, j)
			}
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := RandomUniform(25, 10, 0.25, 3)
	x := make([]float64, 10)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y := make([]float64, 25)
	a.MulVec(x, y)
	ad := a.ToDense()
	for i := 0; i < 25; i++ {
		var want float64
		for j := 0; j < 10; j++ {
			want += ad.At(i, j) * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestMulVecTAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := RandomUniform(25, 10, 0.25, 5)
	x := make([]float64, 25)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y := make([]float64, 10)
	a.MulVecT(x, y)
	ad := a.ToDense()
	for j := 0; j < 10; j++ {
		var want float64
		for i := 0; i < 25; i++ {
			want += ad.At(i, j) * x[i]
		}
		if math.Abs(y[j]-want) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %g, want %g", j, y[j], want)
		}
	}
}

func TestCSRMulVec(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := RandomUniform(20, 15, 0.2, 7)
	csr := a.ToCSR()
	x := make([]float64, 15)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y1 := make([]float64, 20)
	y2 := make([]float64, 20)
	a.MulVec(x, y1)
	csr.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("CSR/CSC MulVec disagree at %d", i)
		}
	}
}

func TestColNorms(t *testing.T) {
	c := NewCOO(3, 2, 3)
	c.Append(0, 0, 3)
	c.Append(1, 0, 4)
	c.Append(2, 1, 7)
	a := c.ToCSC()
	norms := a.ColNorms()
	if math.Abs(norms[0]-5) > 1e-14 || math.Abs(norms[1]-7) > 1e-14 {
		t.Fatalf("ColNorms = %v", norms)
	}
}

func TestBlockedCSRMatchesCSC(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(30), 1+r.Intn(20)
		bn := 1 + r.Intn(n)
		a := randomCOO(r, m, n, r.Intn(80)).ToCSC()
		b := NewBlockedCSR(a, bn)
		if b.NNZ() != a.NNZ() {
			return false
		}
		back := b.ToCSC()
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if a.At(i, j) != back.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBlockedCSRParallelMatchesSequential(t *testing.T) {
	a := RandomUniform(200, 90, 0.05, 11)
	seq := NewBlockedCSR(a, 17)
	par := NewBlockedCSRParallel(a, 17, 4)
	if len(seq.Blocks) != len(par.Blocks) {
		t.Fatalf("block count %d != %d", len(seq.Blocks), len(par.Blocks))
	}
	for k := range seq.Blocks {
		s, p := seq.Blocks[k], par.Blocks[k]
		if s.NNZ() != p.NNZ() {
			t.Fatalf("block %d nnz %d != %d", k, s.NNZ(), p.NNZ())
		}
		for i := range s.Val {
			if s.Val[i] != p.Val[i] || s.ColIdx[i] != p.ColIdx[i] {
				t.Fatalf("block %d entry %d differs", k, i)
			}
		}
	}
}

func TestBlockedCSRBlockInvariants(t *testing.T) {
	a := RandomUniform(50, 33, 0.1, 13)
	b := NewBlockedCSR(a, 10)
	if b.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", b.NumBlocks())
	}
	widthSum := 0
	for k, blk := range b.Blocks {
		if err := blk.Validate(); err != nil {
			t.Fatalf("block %d invalid: %v", k, err)
		}
		if blk.M != 50 {
			t.Fatalf("block %d has %d rows", k, blk.M)
		}
		widthSum += blk.N
	}
	if widthSum != 33 {
		t.Fatalf("total width %d, want 33", widthSum)
	}
}

func TestBlockedCSRAt(t *testing.T) {
	a := RandomUniform(40, 25, 0.15, 17)
	b := NewBlockedCSR(a, 7)
	for j := 0; j < 25; j++ {
		for i := 0; i < 40; i++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("At(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestSlabNNZMatchesColPtr(t *testing.T) {
	a := RandomUniform(300, 80, 0.05, 19)
	for _, rng := range [][2]int{{0, 80}, {0, 0}, {80, 80}, {10, 10}, {7, 31}, {79, 80}} {
		j0, j1 := rng[0], rng[1]
		want := 0
		for j := j0; j < j1; j++ {
			want += a.ColPtr[j+1] - a.ColPtr[j]
		}
		if got := a.SlabNNZ(j0, j1); got != want {
			t.Fatalf("SlabNNZ(%d,%d) = %d, want %d", j0, j1, got, want)
		}
	}
	if a.SlabNNZ(0, a.N) != a.NNZ() {
		t.Fatal("full-slab SlabNNZ != NNZ")
	}
	for _, bad := range [][2]int{{-1, 5}, {5, 4}, {0, 81}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SlabNNZ(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			a.SlabNNZ(bad[0], bad[1])
		}()
	}
}

func TestUniformColSplit(t *testing.T) {
	cases := []struct {
		n, bn int
		want  []int
	}{
		{33, 10, []int{0, 10, 20, 30, 33}},
		{30, 10, []int{0, 10, 20, 30}},
		{5, 10, []int{0, 5}},
		{0, 10, []int{0}},
		{1, 1, []int{0, 1}},
	}
	for _, c := range cases {
		got := UniformColSplit(c.n, c.bn)
		if len(got) != len(c.want) {
			t.Fatalf("UniformColSplit(%d,%d) = %v, want %v", c.n, c.bn, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("UniformColSplit(%d,%d) = %v, want %v", c.n, c.bn, got, c.want)
			}
		}
	}
}

// A variable-width partition must reassemble to the same matrix and keep At
// correct across the uneven slab boundaries.
func TestBlockedCSRPartitionVariableWidths(t *testing.T) {
	a := RandomUniform(60, 40, 0.12, 23)
	colStart := []int{0, 1, 4, 5, 17, 30, 40} // deliberately ragged
	for _, workers := range []int{1, 4} {
		b := NewBlockedCSRPartition(a, colStart, workers)
		if b.NumBlocks() != len(colStart)-1 {
			t.Fatalf("workers=%d: %d blocks, want %d", workers, b.NumBlocks(), len(colStart)-1)
		}
		if b.NNZ() != a.NNZ() {
			t.Fatalf("workers=%d: nnz %d != %d", workers, b.NNZ(), a.NNZ())
		}
		if b.BlockCols != 13 {
			t.Fatalf("workers=%d: nominal width %d, want 13 (widest slab)", workers, b.BlockCols)
		}
		for j := 0; j < a.N; j++ {
			for i := 0; i < a.M; i++ {
				if a.At(i, j) != b.At(i, j) {
					t.Fatalf("workers=%d: At(%d,%d) mismatch", workers, i, j)
				}
			}
		}
	}
}

func TestBlockedCSRPartitionRejectsBadPartitions(t *testing.T) {
	a := RandomUniform(20, 10, 0.2, 29)
	for _, bad := range [][]int{
		{1, 10},        // does not start at 0
		{0, 5},         // does not end at n
		{0, 5, 5, 10},  // empty slab
		{0, 7, 3, 10},  // non-monotone
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("partition %v accepted", bad)
				}
			}()
			NewBlockedCSRPartition(a, bad, 1)
		}()
	}
}

func TestCSRMulVecTAgainstCSC(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	a := RandomUniform(40, 25, 0.15, 31)
	csr := a.ToCSR()
	x := make([]float64, 40)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y1 := make([]float64, 25)
	y2 := make([]float64, 25)
	a.MulVecT(x, y1)
	csr.MulVecT(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("CSR MulVecT disagrees at %d", i)
		}
	}
}

func TestDims(t *testing.T) {
	a := RandomUniform(7, 4, 0.5, 1)
	if m, n := a.Dims(); m != 7 || n != 4 {
		t.Fatalf("CSC Dims = (%d,%d)", m, n)
	}
	if m, n := a.ToCSR().Dims(); m != 7 || n != 4 {
		t.Fatalf("CSR Dims = (%d,%d)", m, n)
	}
}
