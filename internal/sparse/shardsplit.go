package sparse

import (
	"fmt"
	"sort"
)

// NNZBalancedColSplit partitions the columns [0, n) of a into at most k
// contiguous slabs of near-equal nonzero count and returns the cut points
// c[0]=0 <= c[1] <= ... <= c[len-1]=n, so slab i is [c[i], c[i+1]).
//
// ColPtr is exactly the prefix sum of the per-column nonzero counts, so the
// i-th cut is a binary search for the column where ceil(nnz·i/k) entries
// have accumulated — O(k log n) total, no per-column scan. The cuts are then
// clamped so that, whenever n >= k, every slab holds at least one column:
// a shard of the serving layer must carry a non-degenerate CSC even when a
// single dense column swallows the whole nnz budget.
//
// k is clamped to [1, max(n, 1)]; a 0-column matrix yields the single empty
// slab [0, 0). The balance guarantee is the same one the nnz-aware task
// partitioner gives: no slab exceeds the ideal nnz/k share by more than the
// heaviest single column, which is the best any contiguous split can do.
func NNZBalancedColSplit(a *CSC, k int) []int {
	n := a.N
	if k < 1 {
		k = 1
	}
	if n == 0 {
		return []int{0, 0}
	}
	if k > n {
		k = n
	}
	nnz := a.ColPtr[n]
	cuts := make([]int, k+1)
	cuts[k] = n
	for i := 1; i < k; i++ {
		// Smallest column index whose prefix reaches the i-th ideal share.
		target := (nnz*i + k - 1) / k
		j := sort.SearchInts(a.ColPtr, target)
		// Clamp into the window that leaves at least one column for every
		// slab on both sides of the cut.
		if lo := cuts[i-1] + 1; j < lo {
			j = lo
		}
		if hi := n - (k - i); j > hi {
			j = hi
		}
		cuts[i] = j
	}
	return cuts
}

// validateCuts is a debugging aid for tests: it checks a cut vector is a
// monotone cover of [0, n].
func validateCuts(cuts []int, n int) error {
	if len(cuts) < 2 || cuts[0] != 0 || cuts[len(cuts)-1] != n {
		return fmt.Errorf("sparse: cuts %v do not cover [0, %d]", cuts, n)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			return fmt.Errorf("sparse: cuts %v not monotone at %d", cuts, i)
		}
	}
	return nil
}
