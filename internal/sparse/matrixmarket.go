package sparse

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket coordinate file (real or integer,
// general or symmetric) into CSC. Pattern files get unit values. This is the
// interchange format of the SuiteSparse collection the paper draws its test
// matrices from, so users with access to the originals can run the harness
// on them directly.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket file: %q", strings.TrimSpace(header))
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", fields[2])
	}
	valType := fields[3]
	symmetric := false
	if len(fields) >= 5 {
		switch fields[4] {
		case "general":
		case "symmetric":
			symmetric = true
		default:
			return nil, fmt.Errorf("sparse: unsupported symmetry %q", fields[4])
		}
	}
	pattern := valType == "pattern"
	if valType != "real" && valType != "integer" && !pattern {
		return nil, fmt.Errorf("sparse: unsupported value type %q", valType)
	}

	// Skip comments, read size line.
	var m, n, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing size line: %w", err)
		}
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "%") {
			continue
		}
		if _, err := fmt.Sscan(s, &m, &n, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", s, err)
		}
		break
	}
	if m < 0 || n < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative size line (%d, %d, %d)", m, n, nnz)
	}
	if symmetric && m != n {
		return nil, fmt.Errorf("sparse: symmetric matrix must be square, got %dx%d", m, n)
	}
	if int64(nnz) > int64(m)*int64(n)*2 { // symmetric files mirror entries
		return nil, fmt.Errorf("sparse: nnz=%d impossible for %dx%d", nnz, m, n)
	}

	// Cap the construction hint: a hostile size line must not trigger a
	// giant allocation before any entries are read.
	hint := nnz
	if hint > 1<<24 {
		hint = 1 << 24
	}
	coo := NewCOO(m, n, hint)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: expected %d entries, got %d: %w", nnz, read, err)
		}
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "%") {
			continue
		}
		parts := strings.Fields(s)
		if len(parts) < 2 || (!pattern && len(parts) < 3) {
			return nil, fmt.Errorf("sparse: bad entry line %q", s)
		}
		i, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", parts[0], err)
		}
		j, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %w", parts[1], err)
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", parts[2], err)
			}
		}
		if i < 1 || i > m || j < 1 || j > n {
			return nil, fmt.Errorf("sparse: entry (%d, %d) outside %dx%d", i, j, m, n)
		}
		coo.Append(i-1, j-1, v) // MatrixMarket is 1-based
		if symmetric && i != j {
			coo.Append(j-1, i-1, v)
		}
		read++
	}
	return coo.ToCSC(), nil
}

// ReadMatrixMarketFile opens and parses path.
func ReadMatrixMarketFile(path string) (*CSC, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixMarket(f)
}

// WriteMatrixMarket writes a CSC matrix in coordinate real general format.
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		a.M, a.N, a.NNZ()); err != nil {
		return err
	}
	for j := 0; j < a.N; j++ {
		rows, vals := a.ColView(j)
		for k, r := range rows {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteMatrixMarketFile writes a to path, creating or truncating it.
func WriteMatrixMarketFile(path string, a *CSC) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMatrixMarket(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteDenseMatrixMarket writes a dense column-major matrix (given as the
// flat data of an r×c matrix) in MatrixMarket array format.
func WriteDenseMatrixMarket(w io.Writer, r, c int, colMajor []float64) error {
	if len(colMajor) != r*c {
		return fmt.Errorf("sparse: dense write got %d values for %dx%d", len(colMajor), r, c)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix array real general\n%d %d\n", r, c); err != nil {
		return err
	}
	for _, v := range colMajor {
		if _, err := fmt.Fprintf(bw, "%.17g\n", v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Spy renders an ASCII density plot of the sparsity pattern (Figure 5 style)
// into at most rows×cols character cells; darker glyphs mean denser cells.
func Spy(a *CSC, rows, cols int) string {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	if rows > a.M {
		rows = a.M
	}
	if cols > a.N {
		cols = a.N
	}
	counts := make([]int, rows*cols)
	maxC := 0
	for j := 0; j < a.N; j++ {
		cj := j * cols / a.N
		rIdx, _ := a.ColView(j)
		for _, r := range rIdx {
			ci := r * rows / a.M
			counts[ci*cols+cj]++
			if counts[ci*cols+cj] > maxC {
				maxC = counts[ci*cols+cj]
			}
		}
	}
	glyphs := []byte(" .:-=+*#%@")
	var sb strings.Builder
	sb.Grow((cols + 1) * rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			c := counts[i*cols+j]
			if c == 0 {
				sb.WriteByte(' ')
				continue
			}
			g := 1 + c*(len(glyphs)-2)/maxC
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			sb.WriteByte(glyphs[g])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteSpyPGM renders the sparsity pattern as a binary PGM image (P5) of at
// most rows×cols pixels, darker where denser — a portable counterpart to
// Figure 5's spy plots that image viewers open directly.
func WriteSpyPGM(w io.Writer, a *CSC, rows, cols int) error {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	if rows > a.M && a.M > 0 {
		rows = a.M
	}
	if cols > a.N && a.N > 0 {
		cols = a.N
	}
	counts := make([]int, rows*cols)
	maxC := 0
	for j := 0; j < a.N; j++ {
		cj := j * cols / a.N
		rIdx, _ := a.ColView(j)
		for _, r := range rIdx {
			ci := r * rows / a.M
			counts[ci*cols+cj]++
			if counts[ci*cols+cj] > maxC {
				maxC = counts[ci*cols+cj]
			}
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", cols, rows); err != nil {
		return err
	}
	for _, c := range counts {
		pix := byte(255)
		if c > 0 && maxC > 0 {
			v := 200 - 200*c/maxC
			pix = byte(v)
		}
		if err := bw.WriteByte(pix); err != nil {
			return err
		}
	}
	return bw.Flush()
}
