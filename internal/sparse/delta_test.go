package sparse

import (
	"math"
	"testing"
)

func mustCSC(t *testing.T, m, n int, colPtr, rowIdx []int, val []float64) *CSC {
	t.Helper()
	a, err := NewCSC(m, n, colPtr, rowIdx, val)
	if err != nil {
		t.Fatalf("NewCSC: %v", err)
	}
	return a
}

// sameDense compares two matrices entry-wise including the zero pattern.
func sameDense(t *testing.T, got, want *CSC) {
	t.Helper()
	if got.M != want.M || got.N != want.N {
		t.Fatalf("shape %dx%d want %dx%d", got.M, got.N, want.M, want.N)
	}
	for j := 0; j < got.N; j++ {
		for i := 0; i < got.M; i++ {
			if g, w := got.At(i, j), want.At(i, j); g != w {
				t.Fatalf("entry (%d,%d) = %v want %v", i, j, g, w)
			}
		}
	}
}

func TestAddMergesSortedColumns(t *testing.T) {
	a := mustCSC(t, 4, 3,
		[]int{0, 2, 2, 4},
		[]int{0, 2, 1, 3},
		[]float64{1, 2, 3, 4})
	d := mustCSC(t, 4, 3,
		[]int{0, 2, 3, 4},
		[]int{1, 2, 0, 1},
		[]float64{10, 5, 7, 8})
	sum, err := Add(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	want := mustCSC(t, 4, 3,
		[]int{0, 3, 4, 6},
		[]int{0, 1, 2, 0, 1, 3},
		[]float64{1, 10, 7, 7, 11, 4})
	sameDense(t, sum, want)
}

func TestAddDropsExactZeroSums(t *testing.T) {
	a := mustCSC(t, 3, 2, []int{0, 2, 3}, []int{0, 2, 1}, []float64{1.5, -2, 4})
	d := mustCSC(t, 3, 2, []int{0, 1, 1}, []int{0}, []float64{-1.5})
	sum, err := Add(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if sum.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (cancelled entry must be dropped, not stored as 0)", sum.NNZ())
	}
	if sum.At(0, 0) != 0 || sum.At(2, 0) != -2 || sum.At(1, 1) != 4 {
		t.Fatalf("wrong values after cancellation: %v", sum.Val)
	}
	// Canonical form: the cancelled matrix fingerprints identically to the
	// same matrix built without the entry — this is what makes PATCH-derived
	// fingerprints reproducible from values alone.
	direct := mustCSC(t, 3, 2, []int{0, 1, 2}, []int{2, 1}, []float64{-2, 4})
	if sum.Fingerprint() != direct.Fingerprint() {
		t.Fatal("cancelled-entry fingerprint differs from directly built matrix")
	}
}

func TestAddEmptyDeltaIsIdentity(t *testing.T) {
	a := mustCSC(t, 5, 4,
		[]int{0, 2, 2, 3, 5},
		[]int{0, 4, 2, 1, 3},
		[]float64{1, 2, 3, 4, 5})
	empty := mustCSC(t, 5, 4, []int{0, 0, 0, 0, 0}, nil, nil)
	sum, err := Add(a, empty)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Fingerprint() != a.Fingerprint() {
		t.Fatal("A + 0 must fingerprint identically to A")
	}
	// And the result must not alias a's arrays: mutating the sum may never
	// write through to the (possibly pinned) base matrix.
	if len(sum.Val) > 0 {
		sum.Val[0] = math.Inf(1)
		if a.Val[0] == math.Inf(1) {
			t.Fatal("Add result aliases its input")
		}
	}
}

func TestAddDeltaIntoEmptyColumn(t *testing.T) {
	a := mustCSC(t, 3, 3, []int{0, 1, 1, 2}, []int{0, 2}, []float64{1, 2})
	d := mustCSC(t, 3, 3, []int{0, 0, 2, 2}, []int{0, 1}, []float64{7, 8})
	sum, err := Add(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 1) != 7 || sum.At(1, 1) != 8 || sum.At(0, 0) != 1 || sum.At(2, 2) != 2 {
		t.Fatalf("wrong merge into empty column: %v", sum.Val)
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddShapeMismatch(t *testing.T) {
	a := mustCSC(t, 2, 2, []int{0, 0, 0}, nil, nil)
	b := mustCSC(t, 3, 2, []int{0, 0, 0}, nil, nil)
	if _, err := Add(a, b); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, err := Add(nil, a); err == nil {
		t.Fatal("nil operand must error")
	}
	if _, err := Add(a, nil); err == nil {
		t.Fatal("nil delta must error")
	}
}

// TestAddCommutesWithColSlice pins the property the shard coordinator's
// delta forwarding depends on: slicing after adding equals adding the
// slices, bit for bit.
func TestAddCommutesWithColSlice(t *testing.T) {
	a := mustCSC(t, 6, 5,
		[]int{0, 2, 3, 3, 6, 7},
		[]int{0, 3, 2, 1, 4, 5, 0},
		[]float64{1, -2, 3, 4, 5, -6, 7})
	d := mustCSC(t, 6, 5,
		[]int{0, 1, 3, 4, 5, 5},
		[]int{3, 0, 2, 2, 4},
		[]float64{2, 8, -3, 9, -5})
	sum, err := Add(a, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range [][2]int{{0, 2}, {1, 4}, {3, 5}, {0, 5}, {2, 2}} {
		j0, j1 := cut[0], cut[1]
		whole := sum.ColSlice(j0, j1)
		parts, err := Add(a.ColSlice(j0, j1).Clone(), d.ColSlice(j0, j1).Clone())
		if err != nil {
			t.Fatal(err)
		}
		if whole.Fingerprint() != parts.Fingerprint() {
			t.Fatalf("Add/ColSlice do not commute on [%d:%d)", j0, j1)
		}
	}
}
