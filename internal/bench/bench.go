// Package bench provides the shared plumbing of the reproduction harness:
// paper-style table rendering, best-of-N timing, and the workload registry
// that maps experiment IDs (Table II … Table XI, Figure 4/6) to generated
// problem instances at a chosen scale.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// Table renders aligned text tables shaped like the paper's.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.4g", v.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&sb, "%-*s", width[i]+2, c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// BestOf runs f `trials` times and returns the minimum duration (standard
// benchmarking practice for noisy shared machines).
func BestOf(trials int, f func()) time.Duration {
	if trials < 1 {
		trials = 1
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		f()
		if dt := time.Since(t0); dt < best {
			best = dt
		}
	}
	return best
}

// SketchTiming separates the one-time planning cost of a sketch from its
// steady-state execute cost, mirroring the planner/executor split of
// internal/core: tables that list format conversion separately (Table IV,
// Table VI) read it straight off the plan instead of re-timing the
// conversion out of band.
type SketchTiming struct {
	// Plan is the total planning wall clock (AlgAuto resolution, blocking,
	// task construction, format conversion, ScaledInt pre-scaling).
	Plan time.Duration
	// Convert is the CSC→BlockedCSR conversion component of Plan
	// (Alg4 only; 0 for Alg3).
	Convert time.Duration
	// Execute is the best steady-state Plan.Execute time over the trials.
	Execute time.Duration
	// Stats reports the best execute in detail (samples, sample time,
	// GFLOP/s); its ConvertTime is always 0 by the accounting split.
	Stats core.Stats
	// PlanStats echoes the plan decisions (resolved algorithm, blocking,
	// workers, task count).
	PlanStats core.PlanStats
}

// TimeSketch plans Â = S·A once and times `trials` steady-state executes,
// keeping the best (BestOf convention). This is the harness's standard way
// to time the kernels: the plan carries every per-matrix setup cost, so
// Execute measures exactly the compute phase the paper's tables report.
func TimeSketch(a *sparse.CSC, d int, opts core.Options, trials int) (SketchTiming, error) {
	p, err := core.NewPlan(a, d, opts)
	if err != nil {
		return SketchTiming{}, err
	}
	defer p.Close()
	if trials < 1 {
		trials = 1
	}
	ahat := dense.NewMatrix(d, a.N)
	tm := SketchTiming{
		Plan:      p.Stats().PlanTime,
		Convert:   p.Stats().ConvertTime,
		PlanStats: p.Stats(),
		Execute:   time.Duration(1<<63 - 1),
	}
	for i := 0; i < trials; i++ {
		st, err := p.Execute(ahat)
		if err != nil {
			return SketchTiming{}, err
		}
		if st.Total < tm.Execute {
			tm.Execute = st.Total
			tm.Stats = st
		}
	}
	return tm, nil
}

// SpMMWorkload is one Table I/II/…/VII problem instance.
type SpMMWorkload struct {
	Name string
	A    *sparse.CSC
	// D is the sketch size, d = 3·n per the paper's SpMM experiments.
	D int
	// Spec echoes the paper-scale dimensions for the property table.
	Spec sparse.SpMMSpec
}

// SpMMWorkloads generates the five Table I matrices at the given scale
// (1 = paper size) with d = 3n.
func SpMMWorkloads(scale float64, seed int64) []SpMMWorkload {
	specs := sparse.SpMMSpecs()
	out := make([]SpMMWorkload, 0, len(specs))
	for i, sp := range specs {
		a := sp.Generate(scale, seed+int64(i))
		out = append(out, SpMMWorkload{Name: sp.Name, A: a, D: 3 * a.N, Spec: sp})
	}
	return out
}

// AbnormalWorkloads generates the three Table VI exotic patterns at scale
// (paper: m = 100000, n = 10000, density ≈ 1e-3, d = 3n).
func AbnormalWorkloads(scale float64, seed int64) []SpMMWorkload {
	m := int(100000 * scale)
	n := int(10000 * scale)
	if m < 1000 {
		m = 1000
	}
	if n < 100 {
		n = 100
	}
	// The paper makes every 1000th row (resp. column) dense, which pins
	// the density at 1e-3 independent of matrix size — keep the stride.
	stride := 1000
	if stride > m {
		stride = m
	}
	colStride := 1000
	if colStride > n {
		colStride = n
	}
	nnz := int(1e-3 * float64(m) * float64(n))
	return []SpMMWorkload{
		{Name: "Abnormal_A", A: sparse.AbnormalA(m, n, stride, seed), D: 3 * n},
		{Name: "Abnormal_B", A: sparse.AbnormalB(m, n, nnz, 2998.0/3000.0, seed+1), D: 3 * n},
		{Name: "Abnormal_C", A: sparse.AbnormalC(m, n, colStride, seed+2), D: 3 * n},
	}
}

// LSWorkload is one Table VIII/IX/X/XI least-squares instance.
type LSWorkload struct {
	Name string
	A    *sparse.CSC
	B    []float64
	// UseSVD selects SAP-SVD (the paper uses it for the three
	// near-rank-deficient matrices, QR for the rest).
	UseSVD bool
	Spec   sparse.LSSpec
}

// LSWorkloads generates the seven Table VIII problems at the given scale
// with the paper's right-hand side: a random vector in range(A) plus
// standard Gaussian noise.
func LSWorkloads(scale float64, seed int64) []LSWorkload {
	specs := sparse.LSSpecs()
	out := make([]LSWorkload, 0, len(specs))
	for i, sp := range specs {
		a := sp.Generate(scale, seed+int64(i))
		b := PaperRHS(a, seed+100+int64(i))
		useSVD := sp.Name == "specular" || sp.Name == "connectus" || sp.Name == "landmark"
		out = append(out, LSWorkload{Name: sp.Name, A: a, B: b, UseSVD: useSVD, Spec: sp})
	}
	return out
}

// PaperRHS builds b = A·x_rand + N(0, I) noise (§V-C).
func PaperRHS(a *sparse.CSC, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := make([]float64, a.M)
	a.MulVec(x, b)
	for i := range b {
		b[i] += r.NormFloat64()
	}
	return b
}

// CSV renders the table as RFC-4180-ish CSV (header row first, title
// omitted) for downstream plotting tools.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
