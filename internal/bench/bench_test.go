package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("TABLE II", "Matrices", "MKL", "Alg3")
	tb.AddRow("mk-12", 0.137, 0.07)
	tb.AddRow("ch7-9-b3", 16.43, 7.74)
	out := tb.String()
	if !strings.Contains(out, "TABLE II") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "mk-12") || !strings.Contains(out, "0.137") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableDurationFormatting(t *testing.T) {
	tb := NewTable("", "t")
	tb.AddRow(1500 * time.Millisecond)
	if !strings.Contains(tb.String(), "1.5") {
		t.Fatalf("duration not rendered in seconds:\n%s", tb.String())
	}
}

func TestBestOf(t *testing.T) {
	calls := 0
	d := BestOf(5, func() { calls++ })
	if calls != 5 {
		t.Fatalf("f called %d times", calls)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	BestOf(0, func() { calls++ })
	if calls != 6 {
		t.Fatal("BestOf(0) should clamp to one trial")
	}
}

func TestSpMMWorkloads(t *testing.T) {
	ws := SpMMWorkloads(0.02, 1)
	if len(ws) != 5 {
		t.Fatalf("want 5 workloads, got %d", len(ws))
	}
	for _, w := range ws {
		if w.D != 3*w.A.N {
			t.Fatalf("%s: d=%d != 3n=%d", w.Name, w.D, 3*w.A.N)
		}
		if err := w.A.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestAbnormalWorkloads(t *testing.T) {
	ws := AbnormalWorkloads(0.05, 2)
	if len(ws) != 3 {
		t.Fatalf("want 3, got %d", len(ws))
	}
	names := []string{"Abnormal_A", "Abnormal_B", "Abnormal_C"}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Fatalf("workload %d named %s", i, w.Name)
		}
		if w.A.NNZ() == 0 {
			t.Fatalf("%s empty", w.Name)
		}
	}
	// Densities comparable (the Table VI premise).
	d0 := ws[0].A.Density()
	for _, w := range ws[1:] {
		ratio := w.A.Density() / d0
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("densities not comparable: %g vs %g", w.A.Density(), d0)
		}
	}
}

func TestLSWorkloads(t *testing.T) {
	ws := LSWorkloads(0.01, 3)
	if len(ws) != 7 {
		t.Fatalf("want 7, got %d", len(ws))
	}
	svdCount := 0
	for _, w := range ws {
		if len(w.B) != w.A.M {
			t.Fatalf("%s: rhs length %d != m %d", w.Name, len(w.B), w.A.M)
		}
		if w.UseSVD {
			svdCount++
		}
	}
	if svdCount != 3 {
		t.Fatalf("%d SVD workloads, want 3 (specular, connectus, landmark)", svdCount)
	}
}

func TestPaperRHSInRangePlusNoise(t *testing.T) {
	ws := LSWorkloads(0.01, 4)
	w := ws[0]
	// The rhs should not be exactly in range(A): the noise guarantees a
	// nonzero residual for any x.
	var norm float64
	for _, v := range w.B {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("rhs is zero")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("title ignored", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow("needs,quoting", `has "quotes"`)
	got := tb.CSV()
	want := "a,b\nplain,1.5\n\"needs,quoting\",\"has \"\"quotes\"\"\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
