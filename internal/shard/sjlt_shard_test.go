package shard

import (
	"context"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Sparse-sketch-family coverage for the shard path. The coordinator splits
// on columns and sparse.ColSlice keeps global row indices, while
// FillSJLTColumn draws each S column at a reserved checkpoint keyed only by
// (seed, source, d, s, j) — so a worker sketching a slab regenerates
// exactly the S columns the single-process sketch would use, and the merge
// must be bit-identical even across worker-local blocking choices.

// TestCoordinatorBitIdentitySJLT extends the tentpole guarantee of
// TestCoordinatorBitIdentity to the sparse family: SJLT (explicit and
// default sparsity, both sources) and CountSketch merged from 3 workers
// equal the single-process sketch bit for bit.
func TestCoordinatorBitIdentitySJLT(t *testing.T) {
	_, urls := startWorkers(t, 3, nil)
	c, err := New(Config{Peers: urls, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	matrices := map[string]*sparse.CSC{
		"uniform":  sparse.RandomUniform(400, 60, 0.05, 11),
		"powerlaw": sparse.PowerLaw(400, 60, 2000, 1.4, 12),
	}
	optsSet := map[string]core.Options{
		"sjlt-s4":        {Dist: rng.SJLT, Sparsity: 4, Seed: 42, BlockD: 8, Workers: 1},
		"sjlt-default-s": {Dist: rng.SJLT, Seed: 7, Algorithm: core.Alg4, Workers: 1},
		"sjlt-philox":    {Dist: rng.SJLT, Sparsity: 6, Source: rng.SourcePhilox, Seed: 3, BlockN: 9, Workers: 1},
		"countsketch":    {Dist: rng.CountSketch, Seed: 5, Workers: 1},
	}
	const d = 24
	for mname, a := range matrices {
		for oname, opts := range optsSet {
			got, st, err := c.Sketch(context.Background(), a, d, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", mname, oname, err)
			}
			assertBitIdentical(t, got, directSketch(t, a, d, opts))
			if st.Flops <= 0 || st.Total <= 0 {
				t.Fatalf("%s/%s: aggregated stats not populated: %+v", mname, oname, st)
			}
		}
	}
}

// TestCoordinatorSJLTDegenerateShapes pushes the degenerate shapes through
// the full split → wire → worker → merge path: matrices with empty column
// runs (so some shards may carry zero nnz), s ≥ d clamping, s = 1, and an
// m×0 input that yields no shards at all.
func TestCoordinatorSJLTDegenerateShapes(t *testing.T) {
	_, urls := startWorkers(t, 2, nil)
	c, err := New(Config{Peers: urls, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const d = 12

	// Columns 10..29 empty: nnz-balanced cuts collapse around the dense run,
	// so empty columns travel inside shards and must merge to exact zeros.
	holed := sparse.NewCOO(80, 30, 0)
	base := sparse.RandomUniform(80, 10, 0.3, 71)
	for j := 0; j < base.N; j++ {
		rows, vals := base.ColView(j)
		for k, i := range rows {
			holed.Append(i, j, vals[k])
		}
	}
	gappy := holed.ToCSC()

	for name, opts := range map[string]core.Options{
		"s-ge-d": {Dist: rng.SJLT, Sparsity: d + 5, Seed: 1, Workers: 1}, // clamps to s = d
		"s-eq-1": {Dist: rng.SJLT, Sparsity: 1, Seed: 2, Workers: 1},
		"cs":     {Dist: rng.CountSketch, Seed: 3, Workers: 1},
	} {
		got, _, err := c.Sketch(context.Background(), gappy, d, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertBitIdentical(t, got, directSketch(t, gappy, d, opts))
		for j := base.N; j < gappy.N; j++ {
			for i := 0; i < d; i++ {
				if v := got.At(i, j); v != 0 {
					t.Fatalf("%s: empty column %d merged to nonzero Â[%d]=%g", name, j, i, v)
				}
			}
		}
	}

	// m×0: zero shards, zero-width result, no worker RPCs to trip on.
	empty := &sparse.CSC{M: 50, N: 0, ColPtr: []int{0}}
	got, _, err := c.Sketch(context.Background(), empty, d, core.Options{Dist: rng.SJLT, Sparsity: 3, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatalf("m×0 through shard path: %v", err)
	}
	if got.Rows != d || got.Cols != 0 {
		t.Fatalf("m×0 merged to %dx%d, want %dx0", got.Rows, got.Cols, d)
	}
}
