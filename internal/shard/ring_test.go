package shard

import (
	"math/rand"
	"testing"

	"sketchsp/internal/sparse"
)

// TestRingPermutationStability pins the property the plan caches depend
// on: routing is a function of the peer *set*, so any permutation (or
// duplication) of the -peers flag keeps every key on the same worker.
func TestRingPermutationStability(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:7464", "http://10.0.0.2:7464",
		"http://10.0.0.3:7464", "http://10.0.0.4:7464",
	}
	perms := [][]string{
		{peers[0], peers[1], peers[2], peers[3]},
		{peers[3], peers[2], peers[1], peers[0]},
		{peers[2], peers[0], peers[3], peers[1]},
		{peers[1], peers[1], peers[3], peers[0], peers[2], peers[2]}, // dupes collapse
	}
	ref := NewRing(perms[0], 0)
	rnd := rand.New(rand.NewSource(1))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rnd.Uint64()
	}
	for pi, perm := range perms[1:] {
		r := NewRing(perm, 0)
		if got, want := len(r.Peers()), len(ref.Peers()); got != want {
			t.Fatalf("perm %d: %d peers, want %d", pi, got, want)
		}
		for _, k := range keys {
			if rp, wp := r.Peers()[r.Lookup(k)], ref.Peers()[ref.Lookup(k)]; rp != wp {
				t.Fatalf("perm %d: key %#x routes to %s, reference routes to %s", pi, k, rp, wp)
			}
			ro, wo := r.Order(k), ref.Order(k)
			for j := range wo {
				if r.Peers()[ro[j]] != ref.Peers()[wo[j]] {
					t.Fatalf("perm %d: key %#x failover order diverges at %d", pi, k, j)
				}
			}
		}
	}
}

// TestRingOrder checks the failover walk: starts at the owner, visits
// every peer exactly once.
func TestRingOrder(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d", "e"}, 16)
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		k := rnd.Uint64()
		order := r.Order(k)
		if len(order) != 5 {
			t.Fatalf("order has %d entries, want 5", len(order))
		}
		if order[0] != r.Lookup(k) {
			t.Fatalf("order starts at %d, owner is %d", order[0], r.Lookup(k))
		}
		seen := make(map[int]bool)
		for _, p := range order {
			if seen[p] {
				t.Fatalf("peer %d appears twice in order", p)
			}
			seen[p] = true
		}
	}
}

// TestRingDistribution routes the fingerprints of >1k distinct matrices
// and checks the per-peer load stays within ±50% of the uniform share —
// the loose bound a 64-vnode ring comfortably meets while still failing
// on a broken hash (which would send everything to one arc).
func TestRingDistribution(t *testing.T) {
	peers := []string{"w0", "w1", "w2", "w3", "w4"}
	r := NewRing(peers, 0)
	counts := make([]int, len(peers))
	const keys = 1200
	for i := 0; i < keys; i++ {
		a := sparse.RandomUniform(12, 8, 0.25, int64(i)+1)
		counts[r.Lookup(a.Fingerprint().Hash)]++
	}
	mean := float64(keys) / float64(len(peers))
	for i, c := range counts {
		if f := float64(c); f < 0.5*mean || f > 1.5*mean {
			t.Fatalf("peer %s got %d of %d keys (mean %.0f): distribution out of bounds %v",
				peers[i], c, keys, mean, counts)
		}
	}
}

// TestRingShardAffinity pins the cache-residency mechanism end to end:
// the same matrix split the same way routes every shard to the same peer
// on a fresh ring over the same set — across runs and peer-list orders.
func TestRingShardAffinity(t *testing.T) {
	a := sparse.PowerLaw(300, 60, 2400, 1.2, 3)
	shards := Split(a, 4)
	peers := []string{"w0", "w1", "w2", "w3"}
	r1 := NewRing(peers, 0)
	r2 := NewRing([]string{"w3", "w1", "w0", "w2"}, 0)
	for i, sh := range shards {
		h := sh.A.Fingerprint().Hash
		if p1, p2 := r1.Peers()[r1.Lookup(h)], r2.Peers()[r2.Lookup(h)]; p1 != p2 {
			t.Fatalf("shard %d routes to %s vs %s on permuted ring", i, p1, p2)
		}
		// Re-splitting yields the same views, hence the same fingerprints.
		if h2 := Split(a, 4)[i].A.Fingerprint().Hash; h2 != h {
			t.Fatalf("shard %d fingerprint unstable across splits", i)
		}
	}
}
