package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// ErrNoPeers rejects a coordinator configured with an empty peer set.
var ErrNoPeers = errors.New("shard: no peers configured")

// Config tunes the coordinator. The zero value of every field selects a
// default; only Peers is mandatory.
type Config struct {
	// Peers are the initial worker base URLs (e.g. "http://10.0.0.7:7464").
	// The list is canonicalised (sorted, deduped) so routing is independent
	// of flag order; AddPeer/RemovePeer/SetPeers change it at runtime.
	Peers []string
	// Replicas is the vnode count per peer on the hash ring (0 selects
	// DefaultReplicas).
	Replicas int
	// Shards is the number of column shards per request (0 selects one
	// per peer). It is clamped to the column count; fixing it across
	// deployments of different sizes keeps shard fingerprints — and so
	// worker plan-cache keys — stable as the cluster grows.
	Shards int
	// MaxPeersPerShard bounds the failover walk: a shard is attempted on
	// at most this many distinct peers before the request fails (0 means
	// every peer). 1 disables failover (and with it hedging) entirely.
	MaxPeersPerShard int
	// PeerCooldown is how long a peer that failed a shard RPC is avoided
	// by routing (down peers are still used when every candidate for a
	// shard is down). 0 selects 5s.
	PeerCooldown time.Duration
	// HedgeQuantile enables tail hedging when positive: a shard RPC still
	// unanswered after the backup peer's recent latency at this quantile
	// is re-sent to that backup, first valid answer wins. 0 disables
	// hedging. 0.95 is a reasonable production setting (~5% duplicate
	// work ceiling).
	HedgeQuantile float64
	// HedgeMaxDelay caps the hedge delay and is used outright while a
	// backup's latency window is cold (fewer than 8 observations).
	// 0 selects 100ms.
	HedgeMaxDelay time.Duration
	// DisableBatch turns off per-peer batch fan-out, forcing one HTTP call
	// per shard (the pre-batch wire behaviour). The zero value — batching
	// on — is right except for A/B measurement and talking to pre-batch
	// workers without paying the per-request fallback round trip.
	DisableBatch bool
	// StoreBytes bounds the coordinator's own content-addressed matrix
	// store behind PutMatrix/SketchRef/PatchMatrix. 0 selects
	// store.DefaultMaxBytes; negative means unbounded.
	StoreBytes int64
	// Client configures the per-peer wire clients (retry/backoff/timeout
	// — the client's own retries handle transient overload; the
	// coordinator's failover layer handles peer death on top).
	Client client.Config
	// Metrics receives the sketchsp_shard_* families. nil creates a
	// private registry, retrievable with Registry().
	Metrics *obs.Registry
}

// peer is one worker endpoint with its routing health, latency window and
// metric handles. Handles are cached by name across membership changes
// (membership.go), so a rejoining worker resumes its series and client.
type peer struct {
	name      string
	cli       *client.Client
	downUntil atomic.Int64 // unix nanos; routing avoids the peer before this
	lat       latWindow    // recent successful RPC latencies (hedge delays)
	met       peerMetrics
}

// Coordinator fans sketch requests out over column shards to a dynamic set
// of worker peers and merges the exact partial sketches. It implements
// service.Backend (and service.PeerAdmin), so server.NewBackend turns it
// into a sketchd process: same handler, codec, deadline and drain
// behaviour as a worker, with shard fan-out as the execution strategy.
type Coordinator struct {
	cfg     Config
	mem     atomic.Pointer[membership] // current routing snapshot (RCU)
	peerMu  sync.Mutex                 // serialises membership mutations
	handles map[string]*peer           // peer handles by name, kept across leave/rejoin
	reg     *obs.Registry
	met     *metrics
	store   *store.Store // content-addressed surface (byref.go)
	closed  atomic.Bool
}

var _ service.Backend = (*Coordinator)(nil)

// New builds a coordinator over cfg.Peers. The peer set can change at
// runtime through the PeerAdmin surface or a watched peers file.
func New(cfg Config) (*Coordinator, error) {
	if cfg.PeerCooldown <= 0 {
		cfg.PeerCooldown = 5 * time.Second
	}
	if cfg.HedgeMaxDelay <= 0 {
		cfg.HedgeMaxDelay = 100 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg:     cfg,
		handles: make(map[string]*peer),
		reg:     cfg.Metrics,
		met:     newMetrics(cfg.Metrics),
		store:   store.New(store.Config{MaxBytes: cfg.StoreBytes, Metrics: cfg.Metrics}),
	}
	if _, err := c.setPeersLocked(cfg.Peers); err != nil {
		return nil, err
	}
	registerPeersDown(cfg.Metrics, func() []*peer { return c.mem.Load().peers })
	return c, nil
}

// Registry returns the metrics registry the shard families live on.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Peers returns the canonical peer list of the current membership.
func (c *Coordinator) Peers() []string { return c.mem.Load().ring.Peers() }

// Close makes subsequent requests fail with service.ErrClosed. Idempotent;
// in-flight fan-outs complete.
func (c *Coordinator) Close() { c.closed.Store(true) }

// ShardError reports which shard and peer a fan-out failure came from. It
// unwraps to the underlying cause, so errors.Is against the canonical
// sentinels (core.ErrInvalidMatrix, service.ErrOverloaded, ...) behaves
// exactly as on the single-process path.
type ShardError struct {
	J0, J1 int    // column range of the failing shard
	Peer   string // last peer attempted
	Err    error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard [%d:%d) on %s: %v", e.J0, e.J1, e.Peer, e.Err)
}
func (e *ShardError) Unwrap() error { return e.Err }

// Sketch computes Â = S·A by fanning column shards out to the workers and
// merging the exact partials. Bit-identity with the single-process path
// holds because S's entries depend only on (seed, d, blocking, global row),
// never on which columns share a request — pinned end to end by the
// coordinator tests.
func (c *Coordinator) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	start := time.Now()
	c.met.requests.Inc()
	ahat, stats, err := c.sketch(ctx, a, d, opts)
	if err != nil {
		c.met.failures.Inc()
		return nil, core.Stats{}, err
	}
	stats.Total = time.Since(start)
	return ahat, stats, nil
}

func (c *Coordinator) sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	if c.closed.Load() {
		return nil, core.Stats{}, service.ErrClosed
	}
	if a == nil {
		return nil, core.Stats{}, core.ErrNilMatrix
	}
	if d <= 0 {
		return nil, core.Stats{}, fmt.Errorf("%w: d=%d", core.ErrInvalidSketchSize, d)
	}
	if err := a.Validate(); err != nil {
		return nil, core.Stats{}, fmt.Errorf("%w: %v", core.ErrInvalidMatrix, err)
	}

	shardReq := func(sh *Shard) *wire.ShardRequest {
		return &wire.ShardRequest{
			J0:     sh.J0,
			NTotal: a.N,
			SketchRequest: wire.SketchRequest{
				D:    d,
				Opts: opts,
				A:    sh.A,
			},
		}
	}
	caller := &shardCaller{
		bytes: func(sh *Shard) int64 {
			return int64(wire.ShardRequestWireSize(shardReq(sh)))
		},
		call: func(ctx context.Context, p *peer, sh *Shard) (*wire.ShardResponse, error) {
			return p.cli.SketchShard(ctx, shardReq(sh))
		},
		batch: func(ctx context.Context, p *peer, group []*Shard) *batchCall {
			return c.launchBatch(ctx, p, group, a.N, d, opts)
		},
	}
	return c.fanMerge(ctx, a, d, caller)
}

// shardCaller is the per-path RPC strategy fanMerge hands to runShard:
// inline sharding ships the shard's CSC (and can group shards into batch
// frames), by-reference ships its fingerprint (and cannot — the upload
// fallback is per-shard). Placement, hedging, failover and merging are
// shared; only the wire call differs.
type shardCaller struct {
	bytes func(sh *Shard) int64
	call  func(ctx context.Context, p *peer, sh *Shard) (*wire.ShardResponse, error)
	batch func(ctx context.Context, p *peer, group []*Shard) *batchCall // nil: path cannot batch
}

// fanMerge is the shard fan-out and exact merge shared by the inline and
// by-reference paths: load one membership snapshot, split a into
// nnz-balanced column shards, resolve each shard's candidate peers,
// group same-primary shards into batch frames where the caller supports
// it, run every shard through runShard concurrently, and accumulate the
// partials into Â. The whole fan-out completes against the snapshot it
// loaded — membership changes re-route only subsequent requests.
func (c *Coordinator) fanMerge(ctx context.Context, a *sparse.CSC, d int, caller *shardCaller) (*dense.Matrix, core.Stats, error) {
	mem := c.mem.Load()
	k := c.cfg.Shards
	if k <= 0 {
		k = len(mem.peers)
	}
	fsp := obs.StartSpan(c.met.fanout)
	shards := Split(a, k)
	cands := make([][]*peer, len(shards))
	for i := range shards {
		cands[i] = mem.candidates(shards[i].A.Fingerprint().Hash, c.cfg.MaxPeersPerShard)
	}

	// Fan-out: one goroutine per shard. The shared context is canceled on
	// the first hard failure so surviving RPCs stop burning worker time.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Per-peer batching: shards sharing a primary candidate ride one wire
	// frame. Singleton groups stay on the single-shard RPC — a one-item
	// batch saves nothing and costs a layer of framing.
	type batchRef struct {
		bc  *batchCall
		idx int
	}
	batchOf := make([]batchRef, len(shards))
	if caller.batch != nil && !c.cfg.DisableBatch {
		groups := make(map[*peer][]int)
		for i := range shards {
			p := cands[i][0]
			groups[p] = append(groups[p], i)
		}
		for p, idxs := range groups {
			if len(idxs) < 2 {
				continue
			}
			group := make([]*Shard, len(idxs))
			for gi, si := range idxs {
				group[gi] = &shards[si]
			}
			bc := caller.batch(fctx, p, group)
			for gi, si := range idxs {
				batchOf[si] = batchRef{bc, gi}
			}
		}
	}

	type result struct {
		idx  int
		resp *wire.ShardResponse
		err  error
	}
	results := make(chan result, len(shards))
	for i := range shards {
		go func(i int) {
			br := batchOf[i]
			resp, err := c.runShard(fctx, &shards[i], cands[i], caller, br.bc, br.idx)
			results <- result{i, resp, err}
		}(i)
	}
	var (
		firstErr error
		stats    core.Stats
		acc      = NewAccumulator(d, a.N)
	)
	for range shards {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
				cancel()
			}
			continue
		}
		if firstErr != nil {
			continue // draining after failure
		}
		sh := &shards[r.idx]
		msp := obs.StartSpan(c.met.merge)
		err := c.place(acc, sh, r.resp)
		msp.End()
		if err != nil {
			firstErr = err
			cancel()
			continue
		}
		stats.Samples += r.resp.Stats.Samples
		stats.Flops += r.resp.Stats.Flops
		stats.SampleTime += r.resp.Stats.SampleTime
		stats.ConvertTime += r.resp.Stats.ConvertTime
		stats.Steals += r.resp.Stats.Steals
		if r.resp.Stats.Imbalance > stats.Imbalance {
			stats.Imbalance = r.resp.Stats.Imbalance
		}
	}
	fsp.End()
	if firstErr != nil {
		// Prefer the caller's verdict when their deadline or cancellation
		// raced the fan-out — the shard that lost the race reports a
		// cancellation artifact, not the cause.
		if ctx.Err() != nil {
			return nil, core.Stats{}, ctx.Err()
		}
		return nil, core.Stats{}, firstErr
	}
	ahat, err := acc.Complete()
	if err != nil {
		return nil, core.Stats{}, err
	}
	return ahat, stats, nil
}

// place validates one worker's partial against its shard and merges it.
// Together with the Accumulator's coverage check this is the duplicate/
// misplacement rejection layer: a partial whose echoed j0 or width
// disagrees with the shard fails the request rather than corrupting Â.
func (c *Coordinator) place(acc *Accumulator, sh *Shard, resp *wire.ShardResponse) error {
	width := sh.J1 - sh.J0
	if resp.J0 != sh.J0 {
		return fmt.Errorf("shard: response echoes j0=%d for shard [%d:%d)", resp.J0, sh.J0, sh.J1)
	}
	if resp.Partial == nil || resp.Partial.Cols != width {
		cols := -1
		if resp.Partial != nil {
			cols = resp.Partial.Cols
		}
		return fmt.Errorf("shard: partial has %d columns for shard [%d:%d)", cols, sh.J0, sh.J1)
	}
	return acc.Add(sh.J0, resp.Partial)
}

// failFast reports whether err is an input-class failure that no failover
// can cure: the request itself is wrong (invalid matrix, bad options,
// malformed or oversized frames), so every peer would reject it the same
// way. Peer-health failures — transport errors, exhausted overload
// retries, a draining or crashed worker, internal errors — return false
// and trigger failover instead.
func failFast(err error) bool {
	var se *wire.StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case wire.StatusInvalidMatrix, wire.StatusInvalidSketchSize,
			wire.StatusBadOptions, wire.StatusNilMatrix,
			wire.StatusPlanClosed, wire.StatusMalformed:
			return true
		}
		return false
	}
	// Local encode failures and oversized responses are deterministic. A
	// bare ErrMalformed (a corrupt response that still framed) is NOT here:
	// that is the peer's fault, and a backup peer may answer cleanly.
	return errors.Is(err, wire.ErrTooLarge) || errors.Is(err, core.ErrNilMatrix)
}

// SketchBatch serves the items concurrently, each through the sharded
// Sketch path. Per-item outcomes land in the index-aligned responses;
// batch-level grouping happens downstream on each worker (the shard RPCs
// of different items hit the workers' plan caches independently).
func (c *Coordinator) SketchBatch(ctx context.Context, reqs []service.Request) []service.Response {
	resps := make([]service.Response, len(reqs))
	// Modest parallelism across items: the per-item fan-out already uses
	// every peer, so running more items than peers mostly adds queueing.
	sem := make(chan struct{}, len(c.mem.Load().peers))
	done := make(chan int, len(reqs))
	for i := range reqs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			r := &reqs[i]
			ahat, st, err := c.Sketch(ctx, r.A, r.D, r.Opts)
			if err != nil {
				resps[i] = service.Response{Err: err}
				return
			}
			resps[i] = service.Response{Ahat: ahat, Stats: st}
		}(i)
	}
	for range reqs {
		<-done
	}
	return resps
}
