package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// ErrNoPeers rejects a coordinator configured with an empty peer set.
var ErrNoPeers = errors.New("shard: no peers configured")

// Config tunes the coordinator. The zero value of every field selects a
// default; only Peers is mandatory.
type Config struct {
	// Peers are the worker base URLs (e.g. "http://10.0.0.7:7464"). The
	// list is canonicalised (sorted, deduped) so routing is independent
	// of flag order.
	Peers []string
	// Replicas is the vnode count per peer on the hash ring (0 selects
	// DefaultReplicas).
	Replicas int
	// Shards is the number of column shards per request (0 selects one
	// per peer). It is clamped to the column count; fixing it across
	// deployments of different sizes keeps shard fingerprints — and so
	// worker plan-cache keys — stable as the cluster grows.
	Shards int
	// MaxPeersPerShard bounds the failover walk: a shard is attempted on
	// at most this many distinct peers before the request fails (0 means
	// every peer). 1 disables failover entirely.
	MaxPeersPerShard int
	// PeerCooldown is how long a peer that failed a shard RPC is avoided
	// by routing (down peers are still used when every candidate for a
	// shard is down). 0 selects 5s.
	PeerCooldown time.Duration
	// StoreBytes bounds the coordinator's own content-addressed matrix
	// store behind PutMatrix/SketchRef/PatchMatrix. 0 selects
	// store.DefaultMaxBytes; negative means unbounded.
	StoreBytes int64
	// Client configures the per-peer wire clients (retry/backoff/timeout
	// — the client's own retries handle transient overload; the
	// coordinator's failover layer handles peer death on top).
	Client client.Config
	// Metrics receives the sketchsp_shard_* families. nil creates a
	// private registry, retrievable with Registry().
	Metrics *obs.Registry
}

// peer is one worker endpoint with its routing health and metric handles.
type peer struct {
	name      string
	cli       *client.Client
	downUntil atomic.Int64 // unix nanos; routing avoids the peer before this
	met       peerMetrics
}

// Coordinator fans sketch requests out over column shards to a fixed set
// of worker peers and merges the exact partial sketches. It implements
// service.Backend, so server.NewBackend turns it into a sketchd process:
// same handler, codec, deadline and drain behaviour as a worker, with
// shard fan-out as the execution strategy.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	peers  []*peer // indexed like ring.Peers()
	reg    *obs.Registry
	met    *metrics
	store  *store.Store // content-addressed surface (byref.go)
	closed atomic.Bool
}

var _ service.Backend = (*Coordinator)(nil)

// New builds a coordinator over cfg.Peers. The peer set is fixed for the
// coordinator's lifetime.
func New(cfg Config) (*Coordinator, error) {
	if cfg.PeerCooldown <= 0 {
		cfg.PeerCooldown = 5 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	ring := NewRing(peers, cfg.Replicas)
	names := ring.Peers()
	if len(names) == 0 {
		return nil, ErrNoPeers
	}
	c := &Coordinator{
		cfg:   cfg,
		ring:  ring,
		peers: make([]*peer, len(names)),
		reg:   cfg.Metrics,
		met:   newMetrics(cfg.Metrics),
		store: store.New(store.Config{MaxBytes: cfg.StoreBytes, Metrics: cfg.Metrics}),
	}
	for i, name := range names {
		c.peers[i] = &peer{
			name: name,
			cli:  client.New(name, cfg.Client),
			met:  newPeerMetrics(cfg.Metrics, name),
		}
	}
	registerPeersDown(cfg.Metrics, c.peers)
	return c, nil
}

// Registry returns the metrics registry the shard families live on.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Peers returns the canonical peer list.
func (c *Coordinator) Peers() []string { return c.ring.Peers() }

// Close makes subsequent requests fail with service.ErrClosed. Idempotent;
// in-flight fan-outs complete.
func (c *Coordinator) Close() { c.closed.Store(true) }

// ShardError reports which shard and peer a fan-out failure came from. It
// unwraps to the underlying cause, so errors.Is against the canonical
// sentinels (core.ErrInvalidMatrix, service.ErrOverloaded, ...) behaves
// exactly as on the single-process path.
type ShardError struct {
	J0, J1 int    // column range of the failing shard
	Peer   string // last peer attempted
	Err    error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard [%d:%d) on %s: %v", e.J0, e.J1, e.Peer, e.Err)
}
func (e *ShardError) Unwrap() error { return e.Err }

// Sketch computes Â = S·A by fanning column shards out to the workers and
// merging the exact partials. Bit-identity with the single-process path
// holds because S's entries depend only on (seed, d, blocking, global row),
// never on which columns share a request — pinned end to end by the
// coordinator tests.
func (c *Coordinator) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	start := time.Now()
	c.met.requests.Inc()
	ahat, stats, err := c.sketch(ctx, a, d, opts)
	if err != nil {
		c.met.failures.Inc()
		return nil, core.Stats{}, err
	}
	stats.Total = time.Since(start)
	return ahat, stats, nil
}

func (c *Coordinator) sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	if c.closed.Load() {
		return nil, core.Stats{}, service.ErrClosed
	}
	if a == nil {
		return nil, core.Stats{}, core.ErrNilMatrix
	}
	if d <= 0 {
		return nil, core.Stats{}, fmt.Errorf("%w: d=%d", core.ErrInvalidSketchSize, d)
	}
	if err := a.Validate(); err != nil {
		return nil, core.Stats{}, fmt.Errorf("%w: %v", core.ErrInvalidMatrix, err)
	}

	run := func(fctx context.Context, sh *Shard) (*wire.ShardResponse, error) {
		return c.sketchShard(fctx, sh, a.N, d, opts)
	}
	return c.fanMerge(ctx, a, d, run)
}

// fanMerge is the shard fan-out and exact merge shared by the inline and
// by-reference paths: split a into nnz-balanced column shards, run each
// through the supplied per-shard call concurrently, and accumulate the
// partials into Â. The call differs — inline ships the shard's CSC, by-ref
// ships its fingerprint — but placement and merging cannot.
func (c *Coordinator) fanMerge(ctx context.Context, a *sparse.CSC, d int, run func(ctx context.Context, sh *Shard) (*wire.ShardResponse, error)) (*dense.Matrix, core.Stats, error) {
	k := c.cfg.Shards
	if k <= 0 {
		k = len(c.peers)
	}
	fsp := obs.StartSpan(c.met.fanout)
	shards := Split(a, k)
	type result struct {
		idx  int
		resp *wire.ShardResponse
		err  error
	}
	// Fan-out: one goroutine per shard. The shared context is canceled on
	// the first hard failure so surviving RPCs stop burning worker time.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, len(shards))
	for i := range shards {
		go func(i int) {
			resp, err := run(fctx, &shards[i])
			results <- result{i, resp, err}
		}(i)
	}
	var (
		firstErr error
		stats    core.Stats
		acc      = NewAccumulator(d, a.N)
	)
	for range shards {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
				cancel()
			}
			continue
		}
		if firstErr != nil {
			continue // draining after failure
		}
		sh := &shards[r.idx]
		msp := obs.StartSpan(c.met.merge)
		err := c.place(acc, sh, r.resp)
		msp.End()
		if err != nil {
			firstErr = err
			cancel()
			continue
		}
		stats.Samples += r.resp.Stats.Samples
		stats.Flops += r.resp.Stats.Flops
		stats.SampleTime += r.resp.Stats.SampleTime
		stats.ConvertTime += r.resp.Stats.ConvertTime
		stats.Steals += r.resp.Stats.Steals
		if r.resp.Stats.Imbalance > stats.Imbalance {
			stats.Imbalance = r.resp.Stats.Imbalance
		}
	}
	fsp.End()
	if firstErr != nil {
		// Prefer the caller's verdict when their deadline or cancellation
		// raced the fan-out — the shard that lost the race reports a
		// cancellation artifact, not the cause.
		if ctx.Err() != nil {
			return nil, core.Stats{}, ctx.Err()
		}
		return nil, core.Stats{}, firstErr
	}
	ahat, err := acc.Complete()
	if err != nil {
		return nil, core.Stats{}, err
	}
	return ahat, stats, nil
}

// place validates one worker's partial against its shard and merges it.
func (c *Coordinator) place(acc *Accumulator, sh *Shard, resp *wire.ShardResponse) error {
	width := sh.J1 - sh.J0
	if resp.J0 != sh.J0 {
		return fmt.Errorf("shard: response echoes j0=%d for shard [%d:%d)", resp.J0, sh.J0, sh.J1)
	}
	if resp.Partial == nil || resp.Partial.Cols != width {
		cols := -1
		if resp.Partial != nil {
			cols = resp.Partial.Cols
		}
		return fmt.Errorf("shard: partial has %d columns for shard [%d:%d)", cols, sh.J0, sh.J1)
	}
	return acc.Add(sh.J0, resp.Partial)
}

// sketchShard runs one shard to completion: route by the shard's matrix
// fingerprint, try peers in ring order with failover, and classify
// failures — input errors fail fast (resending an invalid matrix to a
// different peer cannot help), everything else marks the peer down for
// PeerCooldown and moves to the next candidate. Peers in cooldown are
// skipped on the first pass and only tried when every candidate is down.
func (c *Coordinator) sketchShard(ctx context.Context, sh *Shard, nTotal, d int, opts core.Options) (*wire.ShardResponse, error) {
	req := &wire.ShardRequest{
		J0:     sh.J0,
		NTotal: nTotal,
		SketchRequest: wire.SketchRequest{
			D:    d,
			Opts: opts,
			A:    sh.A,
		},
	}
	wireBytes := int64(wire.ShardRequestWireSize(req))
	return c.walkPeers(ctx, sh, wireBytes, func(ctx context.Context, p *peer) (*wire.ShardResponse, error) {
		return p.cli.SketchShard(ctx, req)
	})
}

// walkPeers routes one shard across the ring with failover: peers are tried
// in ring order (keyed by the shard's content fingerprint), skipping peers
// in cooldown on the first pass and only falling back to them when every
// candidate is down. try performs the actual RPC — inline shard request or
// by-reference — and its classification is shared: input-class failures
// fail fast, peer-health failures mark the peer down and move on.
func (c *Coordinator) walkPeers(ctx context.Context, sh *Shard, wireBytes int64, try func(ctx context.Context, p *peer) (*wire.ShardResponse, error)) (*wire.ShardResponse, error) {
	order := c.ring.Order(sh.A.Fingerprint().Hash)
	if m := c.cfg.MaxPeersPerShard; m > 0 && m < len(order) {
		order = order[:m]
	}
	var lastErr error
	lastPeer := c.peers[order[0]].name
	attempted := make([]bool, len(order))
	for pass := 0; pass < 2; pass++ {
		for oi, pi := range order {
			if attempted[oi] {
				continue
			}
			p := c.peers[pi]
			if pass == 0 && p.downUntil.Load() > time.Now().UnixNano() {
				continue // healthy-first pass skips peers in cooldown
			}
			attempted[oi] = true
			if lastErr != nil {
				c.met.failovers.Inc()
			}
			lastPeer = p.name
			c.met.subrequests.Inc()
			p.met.requests.Inc()
			p.met.bytes.Add(wireBytes)
			resp, err := try(ctx, p)
			if err == nil {
				return resp, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if failFast(err) {
				return nil, &ShardError{J0: sh.J0, J1: sh.J1, Peer: p.name, Err: err}
			}
			p.downUntil.Store(time.Now().Add(c.cfg.PeerCooldown).UnixNano())
			lastErr = err
		}
	}
	return nil, &ShardError{J0: sh.J0, J1: sh.J1, Peer: lastPeer, Err: lastErr}
}

// failFast reports whether err is an input-class failure that no failover
// can cure: the request itself is wrong (invalid matrix, bad options,
// malformed or oversized frames), so every peer would reject it the same
// way. Peer-health failures — transport errors, exhausted overload
// retries, a draining or crashed worker, internal errors — return false
// and trigger failover instead.
func failFast(err error) bool {
	var se *wire.StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case wire.StatusInvalidMatrix, wire.StatusInvalidSketchSize,
			wire.StatusBadOptions, wire.StatusNilMatrix,
			wire.StatusPlanClosed, wire.StatusMalformed:
			return true
		}
		return false
	}
	// Local encode failures and oversized responses are deterministic. A
	// bare ErrMalformed (a corrupt response that still framed) is NOT here:
	// that is the peer's fault, and a backup peer may answer cleanly.
	return errors.Is(err, wire.ErrTooLarge) || errors.Is(err, core.ErrNilMatrix)
}

// SketchBatch serves the items concurrently, each through the sharded
// Sketch path. Per-item outcomes land in the index-aligned responses;
// batch-level grouping happens downstream on each worker (the shard RPCs
// of different items hit the workers' plan caches independently).
func (c *Coordinator) SketchBatch(ctx context.Context, reqs []service.Request) []service.Response {
	resps := make([]service.Response, len(reqs))
	// Modest parallelism across items: the per-item fan-out already uses
	// every peer, so running more items than peers mostly adds queueing.
	sem := make(chan struct{}, len(c.peers))
	done := make(chan int, len(reqs))
	for i := range reqs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			r := &reqs[i]
			ahat, st, err := c.Sketch(ctx, r.A, r.D, r.Opts)
			if err != nil {
				resps[i] = service.Response{Err: err}
				return
			}
			resps[i] = service.Response{Ahat: ahat, Stats: st}
		}(i)
	}
	for range reqs {
		<-done
	}
	return resps
}
