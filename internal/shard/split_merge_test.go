package shard

import (
	"math"
	"strings"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// TestSplitTiles checks the shards tile the columns exactly, carry the
// parent's rows untouched, and come out nnz-balanced.
func TestSplitTiles(t *testing.T) {
	for name, a := range map[string]*sparse.CSC{
		"uniform":  sparse.RandomUniform(200, 48, 0.1, 1),
		"powerlaw": sparse.PowerLaw(200, 48, 1000, 1.3, 2),
		"empty":    sparse.RandomUniform(50, 0, 0, 3),
	} {
		for _, k := range []int{1, 3, 4, 7} {
			shards := Split(a, k)
			next := 0
			nnz := 0
			for _, sh := range shards {
				if sh.J0 != next || sh.J1 < sh.J0 {
					t.Fatalf("%s k=%d: shard [%d:%d) does not continue tiling at %d", name, k, sh.J0, sh.J1, next)
				}
				if sh.A.M != a.M || sh.A.N != sh.J1-sh.J0 {
					t.Fatalf("%s k=%d: view is %dx%d for shard [%d:%d) of %dx%d", name, k, sh.A.M, sh.A.N, sh.J0, sh.J1, a.M, a.N)
				}
				if err := sh.A.Validate(); err != nil {
					t.Fatalf("%s k=%d: invalid shard view: %v", name, k, err)
				}
				next = sh.J1
				nnz += len(sh.A.Val)
			}
			if next != a.N {
				t.Fatalf("%s k=%d: shards end at %d, want %d", name, k, next, a.N)
			}
			if nnz != len(a.Val) {
				t.Fatalf("%s k=%d: shards carry %d nnz, matrix has %d", name, k, nnz, len(a.Val))
			}
		}
	}
}

// TestAccumulatorExact assembles out-of-order partials and checks the
// result is the bit-exact source, including negative zeros.
func TestAccumulatorExact(t *testing.T) {
	const d, n = 3, 7
	src := dense.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		for i := 0; i < d; i++ {
			src.Set(i, j, float64(1+i+10*j))
		}
	}
	src.Set(1, 4, math.Copysign(0, -1)) // -0.0 must survive the merge
	cuts := []int{0, 2, 5, 7}
	acc := NewAccumulator(d, n)
	for _, idx := range []int{2, 0, 1} { // deliberately out of order
		j0, j1 := cuts[idx], cuts[idx+1]
		part := dense.NewMatrix(d, j1-j0)
		for j := j0; j < j1; j++ {
			copy(part.Col(j-j0), src.Col(j))
		}
		if err := acc.Add(j0, part); err != nil {
			t.Fatalf("add [%d:%d): %v", j0, j1, err)
		}
	}
	got, err := acc.Complete()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < d; i++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(src.At(i, j)) {
				t.Fatalf("(%d,%d) = %x, want %x", i, j, math.Float64bits(got.At(i, j)), math.Float64bits(src.At(i, j)))
			}
		}
	}
}

// TestAccumulatorRejections covers the merge guard rails: double
// delivery, row mismatch, out-of-bounds placement, early Complete.
func TestAccumulatorRejections(t *testing.T) {
	acc := NewAccumulator(2, 5)
	if _, err := acc.Complete(); err == nil || !strings.Contains(err.Error(), "never delivered") {
		t.Fatalf("empty Complete: %v", err)
	}
	if err := acc.Add(0, dense.NewMatrix(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(1, dense.NewMatrix(2, 2)); err == nil {
		t.Fatal("overlapping add accepted")
	}
	if err := acc.Add(2, dense.NewMatrix(3, 2)); err == nil {
		t.Fatal("row-mismatched add accepted")
	}
	if err := acc.Add(4, dense.NewMatrix(2, 2)); err == nil {
		t.Fatal("overhanging add accepted")
	}
	if err := acc.Add(2, nil); err == nil {
		t.Fatal("nil partial accepted")
	}
	if err := acc.Add(2, dense.NewMatrix(2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Complete(); err != nil {
		t.Fatal(err)
	}
}
