package shard

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/server"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// worker is one in-process sketchd: a real service behind the real HTTP
// handler, so the coordinator tests exercise the full wire round trip.
type worker struct {
	svc *service.Service
	srv *httptest.Server
}

func (w *worker) stop() {
	w.srv.Close()
	w.svc.Close()
}

// startWorkers brings up n full-stack workers, optionally wrapping each
// handler (wrap may be nil). Cleanup is registered on t.
func startWorkers(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) ([]*worker, []string) {
	t.Helper()
	workers := make([]*worker, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{Capacity: 8, MaxInFlight: 4})
		h := http.Handler(server.New(svc, server.Config{}).Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := httptest.NewServer(h)
		workers[i] = &worker{svc: svc, srv: srv}
		urls[i] = srv.URL
		t.Cleanup(workers[i].stop)
	}
	return workers, urls
}

// directSketch is the single-process reference the merged sketch must
// match bit for bit.
func directSketch(t *testing.T, a *sparse.CSC, d int, opts core.Options) *dense.Matrix {
	t.Helper()
	p, err := core.NewPlan(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ahat := dense.NewMatrix(d, a.N)
	if _, err := p.Execute(ahat); err != nil {
		t.Fatal(err)
	}
	return ahat
}

func assertBitIdentical(t *testing.T, got, want *dense.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("merged sketch is %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for j := 0; j < want.Cols; j++ {
		for i := 0; i < want.Rows; i++ {
			g, w := math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j))
			if g != w {
				t.Fatalf("Â[%d,%d] = %x, want %x: merge is not bit-identical", i, j, g, w)
			}
		}
	}
}

// scrape returns the coordinator's metric exposition for counter asserts.
func scrape(t *testing.T, c *Coordinator) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func metricLine(t *testing.T, exposition, name string) string {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return line
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return ""
}

// TestCoordinatorBitIdentity is the tentpole guarantee: Â merged from 3
// workers equals the single-process sketch bit for bit, across
// distributions, algorithms and skewed inputs.
func TestCoordinatorBitIdentity(t *testing.T) {
	_, urls := startWorkers(t, 3, nil)
	c, err := New(Config{Peers: urls, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	matrices := map[string]*sparse.CSC{
		"uniform":  sparse.RandomUniform(400, 60, 0.05, 11),
		"powerlaw": sparse.PowerLaw(400, 60, 2000, 1.4, 12),
	}
	optsSet := map[string]core.Options{
		"gaussian":   {Dist: rng.Gaussian, Seed: 42, BlockD: 8, Workers: 1},
		"rademacher": {Dist: rng.Rademacher, Seed: 7, Workers: 1},
		"uniform11":  {Dist: rng.Uniform11, Seed: 3, Algorithm: core.Alg4, BlockN: 9, Workers: 1},
	}
	const d = 24
	for mname, a := range matrices {
		for oname, opts := range optsSet {
			got, st, err := c.Sketch(context.Background(), a, d, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", mname, oname, err)
			}
			assertBitIdentical(t, got, directSketch(t, a, d, opts))
			if st.Flops <= 0 || st.Total <= 0 {
				t.Fatalf("%s/%s: aggregated stats not populated: %+v", mname, oname, st)
			}
		}
	}
}

// TestCoordinatorBatch runs the Backend batch path through the fan-out.
func TestCoordinatorBatch(t *testing.T) {
	_, urls := startWorkers(t, 2, nil)
	c, err := New(Config{Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a1 := sparse.RandomUniform(200, 30, 0.1, 21)
	a2 := sparse.PowerLaw(200, 30, 900, 1.2, 22)
	opts := core.Options{Dist: rng.Gaussian, Seed: 5, Workers: 1}
	reqs := []service.Request{
		{A: a1, D: 12, Opts: opts},
		{A: a2, D: 12, Opts: opts},
		{A: nil, D: 12, Opts: opts},
	}
	resps := c.SketchBatch(context.Background(), reqs)
	if !errors.Is(resps[2].Err, core.ErrNilMatrix) {
		t.Fatalf("nil item: %v", resps[2].Err)
	}
	for i, a := range []*sparse.CSC{a1, a2} {
		if resps[i].Err != nil {
			t.Fatalf("item %d: %v", i, resps[i].Err)
		}
		assertBitIdentical(t, resps[i].Ahat, directSketch(t, a, 12, opts))
	}
}

// overloadFrame is a canned StatusOverloaded shard answer.
func overloadFrame(t *testing.T) []byte {
	t.Helper()
	payload := wire.AppendShardResponse(nil, &wire.ShardResponse{
		Status: wire.StatusOverloaded, Detail: "test shed",
	})
	frame, err := wire.AppendFrame(nil, wire.MsgShardResponse, payload)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestCoordinatorShedThenSucceed: a peer sheds the first shard RPC with
// StatusOverloaded; the client's own retry (not coordinator failover)
// recovers, and the merged result is still bit-identical.
func TestCoordinatorShedThenSucceed(t *testing.T) {
	var sheds atomic.Int64
	_, urls := startWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sketch" && sheds.Add(1) == 1 {
				w.Header().Set("Content-Type", "application/x-sketchsp-wire")
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write(overloadFrame(t))
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	c, err := New(Config{
		Peers:  urls,
		Shards: 2,
		Client: client.Config{MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := sparse.RandomUniform(300, 40, 0.08, 31)
	opts := core.Options{Dist: rng.Gaussian, Seed: 9, Workers: 1}
	got, _, err := c.Sketch(context.Background(), a, 16, opts)
	if err != nil {
		t.Fatalf("sketch after shed: %v", err)
	}
	assertBitIdentical(t, got, directSketch(t, a, 16, opts))
	if sheds.Load() < 2 {
		t.Fatalf("shed middleware saw %d requests; the retry never arrived", sheds.Load())
	}
	// The client retried; the coordinator must NOT have counted a failover.
	if line := metricLine(t, scrape(t, c), "sketchsp_shard_failovers_total"); !strings.HasSuffix(line, " 0") {
		t.Fatalf("failover counted for a client-level retry: %s", line)
	}
}

// TestCoordinatorPeerDownFailFast: with failover disabled
// (MaxPeersPerShard=1) a dead peer fails the request fast with a typed
// *ShardError wrapping the transport cause.
func TestCoordinatorPeerDownFailFast(t *testing.T) {
	// The dead peer is the ONLY peer, so every shard's (length-1) candidate
	// list is the dead peer — mixing in a live peer would make the test a
	// coin flip on which peers the shard fingerprints happen to hash to.
	// The address: holding a listener open but never accepting would hang
	// rather than refuse, and the URL of a *closed* httptest server is racy
	// (the kernel can hand its ephemeral port to the next live test
	// listener). A reserved port (1) is outside the ephemeral range, so
	// nothing in this test binary can ever be serving there.
	deadURL := "http://127.0.0.1:1"
	c, err := New(Config{
		Peers:            []string{deadURL},
		Shards:           4,
		MaxPeersPerShard: 1,
		Client:           client.Config{MaxRetries: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := sparse.RandomUniform(300, 40, 0.08, 41)
	start := time.Now()
	_, _, err = c.Sketch(context.Background(), a, 16, core.Options{Dist: rng.Gaussian, Seed: 1, Workers: 1})
	if err == nil {
		t.Fatal("sketch through a dead peer succeeded with failover disabled")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *ShardError", err, err)
	}
	if se.Peer != deadURL {
		t.Fatalf("ShardError names peer %s, want %s", se.Peer, deadURL)
	}
	if se.J1 <= se.J0 || se.J1 > a.N {
		t.Fatalf("ShardError column range [%d:%d) invalid for n=%d", se.J0, se.J1, a.N)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestCoordinatorDrainFailover: one worker drains mid-workload (its
// service closes, so its RPCs fail with the non-retryable StatusClosed);
// the coordinator reroutes those shards to the surviving peer and the
// merged sketch stays bit-identical.
func TestCoordinatorDrainFailover(t *testing.T) {
	workers, urls := startWorkers(t, 2, nil)
	c, err := New(Config{
		Peers:        urls,
		Shards:       4,
		PeerCooldown: 50 * time.Millisecond,
		Client:       client.Config{MaxRetries: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := sparse.RandomUniform(300, 40, 0.08, 51)
	opts := core.Options{Dist: rng.Rademacher, Seed: 13, Workers: 1}
	want := directSketch(t, a, 16, opts)

	// Warm pass with both peers up.
	got, _, err := c.Sketch(context.Background(), a, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)

	// Drain worker 0: in-flight and future RPCs to it fail StatusClosed.
	workers[0].svc.Close()
	got, _, err = c.Sketch(context.Background(), a, 16, opts)
	if err != nil {
		t.Fatalf("sketch during drain: %v", err)
	}
	assertBitIdentical(t, got, want)
	exp := scrape(t, c)
	if line := metricLine(t, exp, "sketchsp_shard_failovers_total"); strings.HasSuffix(line, " 0") {
		t.Fatalf("drain recovered without counting a failover: %s", line)
	}
	// The drained peer is in cooldown: the next request must not touch it,
	// and still merges exactly.
	got, _, err = c.Sketch(context.Background(), a, 16, opts)
	if err != nil {
		t.Fatalf("sketch with peer in cooldown: %v", err)
	}
	assertBitIdentical(t, got, want)
}

// TestCoordinatorInputErrors: input-class failures fail fast without
// failover or peer cooldown.
func TestCoordinatorInputErrors(t *testing.T) {
	_, urls := startWorkers(t, 2, nil)
	c, err := New(Config{Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	a := sparse.RandomUniform(100, 20, 0.1, 61)
	if _, _, err := c.Sketch(context.Background(), nil, 4, core.Options{}); !errors.Is(err, core.ErrNilMatrix) {
		t.Fatalf("nil matrix: %v", err)
	}
	if _, _, err := c.Sketch(context.Background(), a, 0, core.Options{}); !errors.Is(err, core.ErrInvalidSketchSize) {
		t.Fatalf("d=0: %v", err)
	}
	bad := &sparse.CSC{M: 2, N: 2, ColPtr: []int{0, 1}, RowIdx: []int{0}, Val: []float64{1}}
	if _, _, err := c.Sketch(context.Background(), bad, 4, core.Options{}); !errors.Is(err, core.ErrInvalidMatrix) {
		t.Fatalf("invalid CSC: %v", err)
	}
	// Server-side rejection travels back fail-fast, typed, without a
	// failover (the wire decoder classifies negative block sizes as
	// malformed, exactly like the single-request path).
	_, _, err = c.Sketch(context.Background(), a, 4, core.Options{BlockD: -1})
	if !errors.Is(err, wire.ErrMalformed) {
		t.Fatalf("bad options: %v", err)
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("server rejection not typed: %T %v", err, err)
	}
	if line := metricLine(t, scrape(t, c), "sketchsp_shard_failovers_total"); !strings.HasSuffix(line, " 0") {
		t.Fatalf("input error triggered failover: %s", line)
	}
	c.Close()
	if _, _, err := c.Sketch(context.Background(), a, 4, core.Options{}); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

// TestCoordinatorEmptyConfig pins the constructor contract.
func TestCoordinatorEmptyConfig(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("empty peers: %v", err)
	}
}
