package shard

import (
	"testing"

	"sketchsp/internal/sparse"
)

// Minimal-movement property tests: consistent hashing's reason to exist is
// that membership changes move only the arcs the changed peer owns. These
// pin that property for the exact ring the coordinator routes with, so
// dynamic membership cannot silently degrade into rehash-the-world (which
// would cold-start every worker plan cache on every join).

// movementKeys is a deterministic well-spread key sample.
func movementKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = mix64(uint64(i) * 0x9e3779b97f4a7c15)
	}
	return keys
}

func ownerNames(r *Ring, keys []uint64) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = r.Peers()[r.Lookup(k)]
	}
	return out
}

// TestRingMinimalMovementOnJoin: every key that changes owner when a peer
// joins must change *to the joining peer*, and the moved fraction must be
// near the joiner's fair share (1/(P+1)), not a reshuffle.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	peers := []string{"http://w0", "http://w1", "http://w2", "http://w3", "http://w4"}
	const joiner = "http://w9"
	keys := movementKeys(4000)

	before := ownerNames(NewRing(peers, 0), keys)
	after := ownerNames(NewRing(append(append([]string{}, peers...), joiner), 0), keys)

	moved := 0
	for i := range keys {
		if before[i] == after[i] {
			continue
		}
		moved++
		if after[i] != joiner {
			t.Fatalf("key %d moved %s -> %s on join of %s: only the joiner may gain keys",
				i, before[i], after[i], joiner)
		}
	}
	fair := len(keys) / (len(peers) + 1)
	if moved == 0 {
		t.Fatal("no keys moved to the joiner — it owns nothing")
	}
	if moved > 3*fair {
		t.Fatalf("%d of %d keys moved on one join; fair share is ~%d — movement is not minimal",
			moved, len(keys), fair)
	}
}

// TestRingMinimalMovementOnLeave: only keys the leaver owned may change
// owner when it leaves.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	peers := []string{"http://w0", "http://w1", "http://w2", "http://w3", "http://w4"}
	const leaver = "http://w2"
	keys := movementKeys(4000)

	before := ownerNames(NewRing(peers, 0), keys)
	var without []string
	for _, p := range peers {
		if p != leaver {
			without = append(without, p)
		}
	}
	after := ownerNames(NewRing(without, 0), keys)

	for i := range keys {
		if before[i] != after[i] && before[i] != leaver {
			t.Fatalf("key %d moved %s -> %s though %s left: survivors' keys must not move",
				i, before[i], after[i], leaver)
		}
		if after[i] == leaver {
			t.Fatalf("key %d still routes to departed peer %s", i, leaver)
		}
	}
}

// TestRingShardAffinitySurvivesJoin is the end-to-end regression for the
// property the plan caches depend on: after a peer joins, every shard of a
// real split either keeps its worker (cache stays hot) or moves to the
// joiner (whose cache is cold anyway) — no shard lands on a different old
// worker.
func TestRingShardAffinitySurvivesJoin(t *testing.T) {
	a := sparse.PowerLaw(400, 80, 3000, 1.3, 71)
	shards := Split(a, 16)
	peers := []string{"http://w0", "http://w1", "http://w2", "http://w3"}
	const joiner = "http://wnew"

	r1 := NewRing(peers, 0)
	r2 := NewRing(append(append([]string{}, peers...), joiner), 0)
	movedToJoiner := 0
	for i := range shards {
		h := shards[i].A.Fingerprint().Hash
		p1 := r1.Peers()[r1.Lookup(h)]
		p2 := r2.Peers()[r2.Lookup(h)]
		if p1 == p2 {
			continue
		}
		if p2 != joiner {
			t.Fatalf("shard %d rerouted %s -> %s on join: affinity broken for an old worker", i, p1, p2)
		}
		movedToJoiner++
	}
	if movedToJoiner == len(shards) {
		t.Fatal("every shard moved to the joiner — distribution, not affinity")
	}
}
