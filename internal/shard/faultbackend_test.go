package shard

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/server"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
)

// Fault is one scripted misbehaviour for a FlakyBackend call: sleep Delay
// first (ctx-aware), then fail with Err, or Hang until the caller's
// context dies. The zero Fault is a pass-through.
type Fault struct {
	Delay time.Duration
	Err   error
	Hang  bool
}

// FlakyBackend wraps a real service.Backend with a per-call fault script —
// the reusable fault-injection surface of the shard suite. The script sees
// the zero-based call number and the request, so tests express "hang the
// first call", "delay every call by 60ms", or "error calls for matrices
// wider than 50 columns" as one function. Counters record what actually
// happened: calls admitted, hangs entered, and hangs released by
// cancellation — the observable proof that a losing hedge attempt was
// torn down rather than left running.
type FlakyBackend struct {
	inner    service.Backend
	script   atomic.Pointer[faultScript]
	calls    atomic.Int64
	hangs    atomic.Int64
	canceled atomic.Int64
}

type faultScript = func(call int64, a *sparse.CSC, d int) Fault

// NewFlakyBackend wraps inner with script (nil scripts nothing).
func NewFlakyBackend(inner service.Backend, script faultScript) *FlakyBackend {
	f := &FlakyBackend{inner: inner}
	f.SetScript(script)
	return f
}

// SetScript swaps the fault script at runtime — tests that must learn
// which worker the ring routes to before deciding who misbehaves script
// the chosen worker after the coordinator is built.
func (f *FlakyBackend) SetScript(script faultScript) {
	if script == nil {
		script = func(int64, *sparse.CSC, int) Fault { return Fault{} }
	}
	f.script.Store(&script)
}

// Calls returns how many sketch calls were admitted (batch items count
// individually).
func (f *FlakyBackend) Calls() int64 { return f.calls.Load() }

// Canceled returns how many hanging or delayed calls were released by
// context cancellation.
func (f *FlakyBackend) Canceled() int64 { return f.canceled.Load() }

func (f *FlakyBackend) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	call := f.calls.Add(1) - 1
	fault := (*f.script.Load())(call, a, d)
	if fault.Hang {
		f.hangs.Add(1)
		<-ctx.Done()
		f.canceled.Add(1)
		return nil, core.Stats{}, ctx.Err()
	}
	if fault.Delay > 0 {
		t := time.NewTimer(fault.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			f.canceled.Add(1)
			return nil, core.Stats{}, ctx.Err()
		case <-t.C:
		}
	}
	if fault.Err != nil {
		return nil, core.Stats{}, fault.Err
	}
	return f.inner.Sketch(ctx, a, d, opts)
}

// SketchBatch applies the script per item through Sketch, so batch-borne
// shards hit the same faults as single RPCs.
func (f *FlakyBackend) SketchBatch(ctx context.Context, reqs []service.Request) []service.Response {
	resps := make([]service.Response, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		ahat, st, err := f.Sketch(ctx, r.A, r.D, r.Opts)
		if err != nil {
			resps[i] = service.Response{Err: err}
			continue
		}
		resps[i] = service.Response{Ahat: ahat, Stats: st}
	}
	return resps
}

func (f *FlakyBackend) Close() { f.inner.Close() }

// flakyWorker is one full-stack worker whose backend is a FlakyBackend:
// real HTTP handler, real codec, scripted faults underneath.
type flakyWorker struct {
	flaky *FlakyBackend
	srv   *httptest.Server
}

// startFlakyWorkers brings up n workers, each wrapping a real service in a
// FlakyBackend driven by script(i) (nil for a clean worker). Returns the
// workers and their URLs, index-aligned.
func startFlakyWorkers(t *testing.T, n int, script func(i int) faultScript) ([]*flakyWorker, []string) {
	t.Helper()
	ws := make([]*flakyWorker, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{Capacity: 8, MaxInFlight: 8})
		var s faultScript
		if script != nil {
			s = script(i)
		}
		flaky := NewFlakyBackend(svc, s)
		srv := httptest.NewServer(server.NewBackend(flaky, server.Config{}).Handler())
		ws[i] = &flakyWorker{flaky: flaky, srv: srv}
		urls[i] = srv.URL
		t.Cleanup(func() { srv.Close(); svc.Close() })
	}
	return ws, urls
}

// workerByURL maps a routed peer URL back to its flaky worker, so a test
// can determine the primary at runtime (consistent hashing picks it) and
// script exactly that worker's behaviour.
func workerByURL(t *testing.T, ws []*flakyWorker, urls []string, url string) *flakyWorker {
	t.Helper()
	for i, u := range urls {
		if u == url {
			return ws[i]
		}
	}
	t.Fatalf("no worker with url %s", url)
	return nil
}
