package shard

import (
	"fmt"

	"sketchsp/internal/dense"
)

// Accumulator assembles the full sketch Â from per-shard partials. The
// math is the linearity of the sketch: Â = S·A = Σᵢ S·A[:, Jᵢ) placed at
// column offset Jᵢ, and because the shards tile the columns disjointly
// each output column is written by exactly one partial. Placement is a
// per-column copy rather than a += — for disjoint coverage the two are
// the same sum, but the copy also preserves the bit pattern of -0.0
// (0 + -0 rounds to +0 in IEEE-754), which the bit-identity guarantee
// needs.
//
// Coverage is tracked per column: an overlapping Add is rejected (it
// would double-count), and Complete refuses to hand back a sketch with
// uncovered columns. Not safe for concurrent use — the coordinator's
// fan-out goroutines deliver results over a channel and one goroutine
// merges.
type Accumulator struct {
	dst       *dense.Matrix
	covered   []bool
	remaining int
}

// NewAccumulator prepares a zeroed d×n destination.
func NewAccumulator(d, n int) *Accumulator {
	return &Accumulator{
		dst:       dense.NewMatrix(d, n),
		covered:   make([]bool, n),
		remaining: n,
	}
}

// Add places partial — the d×(j1−j0) sketch of columns [j0, j1) — into
// the destination. The shard width is taken from partial.Cols.
func (ac *Accumulator) Add(j0 int, partial *dense.Matrix) error {
	if partial == nil {
		return fmt.Errorf("shard: nil partial for columns at %d", j0)
	}
	if partial.Rows != ac.dst.Rows {
		return fmt.Errorf("shard: partial has %d rows, sketch is %d×%d",
			partial.Rows, ac.dst.Rows, ac.dst.Cols)
	}
	if j0 < 0 || j0+partial.Cols > ac.dst.Cols {
		return fmt.Errorf("shard: partial [%d:%d) outside sketch columns [0:%d)",
			j0, j0+partial.Cols, ac.dst.Cols)
	}
	for j := 0; j < partial.Cols; j++ {
		if ac.covered[j0+j] {
			return fmt.Errorf("shard: column %d delivered twice", j0+j)
		}
	}
	for j := 0; j < partial.Cols; j++ {
		copy(ac.dst.Col(j0+j), partial.Col(j))
		ac.covered[j0+j] = true
	}
	ac.remaining -= partial.Cols
	return nil
}

// Complete returns the merged sketch once every column is covered.
func (ac *Accumulator) Complete() (*dense.Matrix, error) {
	if ac.remaining != 0 {
		return nil, fmt.Errorf("shard: %d of %d sketch columns never delivered",
			ac.remaining, ac.dst.Cols)
	}
	return ac.dst, nil
}
