// Package shard is the routing/merge layer of the distributed serving
// stack: a Coordinator splits each sketch request into column shards,
// routes every shard to a worker by consistent hashing on the shard's
// matrix fingerprint, and merges the partial sketches back into the full
// Â. The merge is exact — S[i,j] depends only on the global row index j,
// so the columns a worker computes are bit-identical to the same columns
// of a single-process run — which makes the whole layer a pure
// performance/capacity construct with no accuracy trade-off to tune.
package shard

import "sort"

// Ring is a consistent-hash ring over a fixed peer set. Each peer owns
// Replicas pseudo-random points ("vnodes") on the 64-bit circle; a key is
// routed to the peer owning the first point at or after it. Two properties
// matter to the serving layer:
//
//   - Stability: the mapping key→peer depends only on the peer *set*, not
//     on the order peers were listed in — the constructor canonicalises
//     (sorts, dedups) the peer list, and vnode positions are pure hashes
//     of the peer name. A coordinator restarted with a reshuffled -peers
//     flag keeps routing every fingerprint to the same worker, so the
//     workers' plan caches stay hot.
//   - Spread: with enough vnodes per peer (DefaultReplicas), key load
//     divides near-uniformly, and removing one peer reassigns only that
//     peer's arcs instead of reshuffling the world.
type Ring struct {
	peers  []string // canonical: sorted, deduped
	hashes []uint64 // sorted vnode positions
	owner  []int    // owner[i] = index into peers owning hashes[i]
}

// DefaultReplicas is the vnode count per peer when Config.Replicas is 0.
// 64 points per peer keeps the max/mean arc ratio within a few percent
// for small clusters while the ring stays tiny (64·P entries).
const DefaultReplicas = 64

// NewRing builds a ring over peers with the given vnode count per peer
// (0 selects DefaultReplicas). The peer list is copied, sorted and
// deduplicated; an empty list yields an empty ring (Lookup/Order panic on
// it — the Coordinator constructor rejects empty peer sets first).
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	canon := append([]string(nil), peers...)
	sort.Strings(canon)
	w := 0
	for i, p := range canon {
		if i == 0 || p != canon[i-1] {
			canon[w] = p
			w++
		}
	}
	canon = canon[:w]
	r := &Ring{
		peers:  canon,
		hashes: make([]uint64, 0, len(canon)*replicas),
		owner:  make([]int, 0, len(canon)*replicas),
	}
	type vnode struct {
		h     uint64
		owner int
	}
	vs := make([]vnode, 0, len(canon)*replicas)
	for i, p := range canon {
		for v := 0; v < replicas; v++ {
			vs = append(vs, vnode{vnodeHash(p, v), i})
		}
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a].h < vs[b].h })
	for _, v := range vs {
		r.hashes = append(r.hashes, v.h)
		r.owner = append(r.owner, v.owner)
	}
	return r
}

// Peers returns the canonical (sorted, deduped) peer list. Callers must
// not mutate it; peer indices returned by Lookup/Order index into it.
func (r *Ring) Peers() []string { return r.peers }

// Lookup returns the index (into Peers) of the peer owning key.
func (r *Ring) Lookup(key uint64) int {
	return r.owner[r.search(key)]
}

// Order returns every peer index in the ring-walk order starting at key's
// owner: the first entry is Lookup(key), each subsequent entry is the next
// *distinct* peer encountered walking clockwise. The coordinator's
// failover tries peers in this order, so shard→backup assignments are as
// stable as the primary assignment.
func (r *Ring) Order(key uint64) []int {
	out := make([]int, 0, len(r.peers))
	seen := make([]bool, len(r.peers))
	for i, n := r.search(key), 0; n < len(r.hashes); n++ {
		p := r.owner[i]
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
			if len(out) == len(r.peers) {
				break
			}
		}
		i++
		if i == len(r.hashes) {
			i = 0
		}
	}
	return out
}

// search finds the first vnode at or after key, wrapping at the top of
// the circle.
func (r *Ring) search(key uint64) int {
	if len(r.hashes) == 0 {
		panic("shard: lookup on empty ring")
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// vnodeHash positions replica v of peer p on the circle: FNV-1a absorbs
// the name and replica index, a splitmix-style finaliser (the same Mix13
// variant sparse.Fingerprint uses) scatters the structured FNV output so
// consecutive replica indices land far apart.
func vnodeHash(p string, v int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= prime64
	}
	h ^= uint64(v)
	h *= prime64
	return mix64(h)
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
