package shard

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// The fault-injection suite: scripted delays, hangs and wire corruption
// driven through real workers, pinning the hedging, membership and
// batching behaviours the coordinator promises. Every successful sketch is
// checked bit-identical against the direct single-process plan — faults
// may cost latency and duplicate work, never bits.

func counterValue(t *testing.T, c *Coordinator, name string) float64 {
	t.Helper()
	fs := strings.Fields(metricLine(t, scrape(t, c), name))
	v, err := strconv.ParseFloat(fs[len(fs)-1], 64)
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	return v
}

// primaryOf returns the ring-order candidate URLs for a's single-shard
// key, resolved against the coordinator's current membership.
func candidateURLs(c *Coordinator, a *sparse.CSC) []string {
	shards := Split(a, 1)
	cands := c.mem.Load().candidates(shards[0].A.Fingerprint().Hash, 0)
	urls := make([]string, len(cands))
	for i, p := range cands {
		urls[i] = p.name
	}
	return urls
}

// TestHedgeFiresAndWins scripts the primary worker for a one-shard sketch
// to stall far past the hedge threshold: the hedge must fire, the backup
// must win, and the answer must be bit-identical to the direct plan in far
// less time than the straggler would have taken.
func TestHedgeFiresAndWins(t *testing.T) {
	ws, urls := startFlakyWorkers(t, 2, nil)
	c, err := New(Config{
		Peers:         urls,
		Shards:        1,
		HedgeQuantile: 0.9,
		HedgeMaxDelay: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.PowerLaw(250, 40, 1400, 1.3, 31)
	opts := core.Options{Dist: rng.Rademacher, Seed: 9, Workers: 1}
	cands := candidateURLs(c, a)
	primary := workerByURL(t, ws, urls, cands[0])
	primary.flaky.SetScript(func(int64, *sparse.CSC, int) Fault {
		return Fault{Delay: 2 * time.Second}
	})

	start := time.Now()
	got, _, err := c.Sketch(context.Background(), a, 16, opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, directSketch(t, a, 16, opts))
	if elapsed > time.Second {
		t.Fatalf("hedged sketch took %v — the straggler was waited out, not hedged", elapsed)
	}
	if v := counterValue(t, c, "sketchsp_shard_hedges_total"); v < 1 {
		t.Fatalf("hedges_total = %v, want >= 1", v)
	}
	if v := counterValue(t, c, "sketchsp_shard_hedge_wins_total"); v < 1 {
		t.Fatalf("hedge_wins_total = %v, want >= 1", v)
	}
}

// TestHedgeLoserCancelled hangs the primary until its context dies: after
// the hedged answer wins, the losing attempt must be torn down (observed
// as a cancellation release in the primary's backend), not left running.
func TestHedgeLoserCancelled(t *testing.T) {
	ws, urls := startFlakyWorkers(t, 2, nil)
	c, err := New(Config{
		Peers:         urls,
		Shards:        1,
		HedgeQuantile: 0.9,
		HedgeMaxDelay: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.RandomUniform(200, 36, 0.08, 41)
	opts := core.Options{Dist: rng.Gaussian, Seed: 3, Workers: 1}
	primary := workerByURL(t, ws, urls, candidateURLs(c, a)[0])
	primary.flaky.SetScript(func(int64, *sparse.CSC, int) Fault {
		return Fault{Hang: true}
	})

	got, _, err := c.Sketch(context.Background(), a, 12, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, directSketch(t, a, 12, opts))

	deadline := time.Now().Add(5 * time.Second)
	for primary.flaky.Canceled() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hanging loser attempt was never released by cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDuplicateAnswerRejected corrupts every worker's shard response to
// echo the wrong j0 — the shape a duplicated or misrouted answer would
// take. The coordinator must fail the request at the placement check
// rather than merge the partial into the wrong columns.
func TestDuplicateAnswerRejected(t *testing.T) {
	rewriteJ0 := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if typ, payload, _, err := wire.SplitFrame(body, 1<<30); err == nil && typ == wire.MsgShardResponse {
				if resp, derr := wire.DecodeShardResponse(payload); derr == nil && resp.Status == wire.StatusOK {
					resp.J0 += 3
					if nb, ferr := wire.AppendFrame(nil, wire.MsgShardResponse, wire.AppendShardResponse(nil, resp)); ferr == nil {
						body = nb
					}
				}
			}
			for k, vs := range rec.Header() {
				if k == "Content-Length" {
					continue
				}
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(body)
		})
	}
	_, urls := startWorkers(t, 2, rewriteJ0)
	c, err := New(Config{Peers: urls, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.RandomUniform(150, 30, 0.1, 17)
	_, _, err = c.Sketch(context.Background(), a, 8, core.Options{Dist: rng.Rademacher, Seed: 2, Workers: 1})
	if err == nil {
		t.Fatal("misplaced partial was merged — duplicate rejection is broken")
	}
	if !strings.Contains(err.Error(), "echoes j0") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestMembershipChangeMidFanout joins one peer and removes another while a
// fan-out is in flight: the in-flight request completes against the
// snapshot it started with (bit-identical, no error), and the next request
// routes on the new membership.
func TestMembershipChangeMidFanout(t *testing.T) {
	slow := func(i int) faultScript {
		return func(int64, *sparse.CSC, int) Fault { return Fault{Delay: 30 * time.Millisecond} }
	}
	_, urls := startFlakyWorkers(t, 3, slow)
	c, err := New(Config{Peers: urls[:2], Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.PowerLaw(300, 48, 1600, 1.3, 23)
	opts := core.Options{Dist: rng.Uniform11, Seed: 13, Workers: 1}
	want := directSketch(t, a, 10, opts)

	type outcome struct {
		got *dense.Matrix
		err error
	}
	inflight := make(chan outcome, 1)
	go func() {
		got, _, err := c.Sketch(context.Background(), a, 10, opts)
		inflight <- outcome{got, err}
	}()

	time.Sleep(10 * time.Millisecond)
	if err := c.AddPeer(urls[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.RemovePeer(urls[1]); err != nil {
		t.Fatal(err)
	}
	o := <-inflight
	if o.err != nil {
		t.Fatalf("in-flight request lost to membership change: %v", o.err)
	}
	assertBitIdentical(t, o.got, want)

	// New membership (w0, w2) serves the next request, still bit-identical.
	got2, _, err := c.Sketch(context.Background(), a, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got2, want)
	if v := counterValue(t, c, "sketchsp_shard_peer_changes_total"); v != 2 {
		t.Fatalf("peer_changes_total = %v, want 2", v)
	}
	if peers := c.Peers(); len(peers) != 2 || peers[0] == urls[1] || peers[1] == urls[1] {
		t.Fatalf("membership after change: %v", peers)
	}
}

// TestMembershipChurnUnderLoad hammers joins and leaves concurrently with
// a sketch load; every request must succeed bit-identically. Run under
// -race in CI, this pins the snapshot discipline.
func TestMembershipChurnUnderLoad(t *testing.T) {
	_, urls := startFlakyWorkers(t, 3, nil)
	c, err := New(Config{Peers: urls[:2], Shards: 4, HedgeQuantile: 0.9, HedgeMaxDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.RandomUniform(120, 24, 0.12, 5)
	opts := core.Options{Dist: rng.Rademacher, Seed: 77, Workers: 1}
	want := directSketch(t, a, 6, opts)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.AddPeer(urls[2])
			time.Sleep(2 * time.Millisecond)
			_ = c.RemovePeer(urls[2])
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var load sync.WaitGroup
	errs := make(chan error, 8*5)
	for g := 0; g < 8; g++ {
		load.Add(1)
		go func() {
			defer load.Done()
			for i := 0; i < 5; i++ {
				got, _, err := c.Sketch(context.Background(), a, 6, opts)
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < want.Cols; j++ {
					for r := 0; r < want.Rows; r++ {
						if got.At(r, j) != want.At(r, j) {
							errs <- &ShardError{J0: j, J1: j, Peer: "bits", Err: context.Canceled}
							return
						}
					}
				}
			}
		}()
	}
	load.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request failed during churn: %v", err)
	}
}

// TestWatchPeersFile drives membership from a polled peers file, including
// the skip rules for empty and unreadable content.
func TestWatchPeersFile(t *testing.T) {
	_, urls := startFlakyWorkers(t, 3, nil)
	c, err := New(Config{Peers: urls[:2]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	path := filepath.Join(t.TempDir(), "peers")
	stop := c.WatchPeersFile(path, 5*time.Millisecond)
	defer stop()

	// Missing file: skipped, membership unchanged.
	time.Sleep(20 * time.Millisecond)
	if len(c.Peers()) != 2 {
		t.Fatalf("peers = %v before any file write", c.Peers())
	}

	content := urls[0] + "\n" + urls[1] + ", " + urls[2] + "  # trailing comment\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Peers()) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never applied 3-peer file; peers = %v", c.Peers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An empty file (truncated mid-write) must not empty the cluster.
	if err := os.WriteFile(path, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if len(c.Peers()) != 3 {
		t.Fatalf("empty peers file shrank membership to %v", c.Peers())
	}
}

// TestBatchFanout pins the per-peer batch path: more shards than peers
// produce batch frames, the merged sketch stays bit-identical, and
// turning batching off removes the frames without changing the answer.
func TestBatchFanout(t *testing.T) {
	a := sparse.PowerLaw(320, 64, 2000, 1.3, 51)
	opts := core.Options{Dist: rng.Gaussian, Seed: 19, Workers: 1}
	want := directSketch(t, a, 14, opts)

	_, urls := startWorkers(t, 2, nil)
	c, err := New(Config{Peers: urls, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := c.Sketch(context.Background(), a, 14, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
	if v := counterValue(t, c, "sketchsp_shard_batches_total"); v < 1 {
		t.Fatalf("batches_total = %v, want >= 1 with 8 shards on 2 peers", v)
	}
	if v := counterValue(t, c, "sketchsp_shard_subrequests_total"); v != 8 {
		t.Fatalf("subrequests_total = %v, want 8 (batch items count individually)", v)
	}
	metricLine(t, scrape(t, c), "sketchsp_shard_batch_size_count")

	cNo, err := New(Config{Peers: urls, Shards: 8, DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cNo.Close()
	got2, _, err := cNo.Sketch(context.Background(), a, 14, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got2, want)
	if v := counterValue(t, cNo, "sketchsp_shard_batches_total"); v != 0 {
		t.Fatalf("batches_total = %v with batching disabled", v)
	}
}

// TestBatchFallbackToPreBatchWorker emulates workers that reject the batch
// frame type with StatusMalformed (what a pre-batch sketchd answers): the
// coordinator must demote the rejection to failover and finish every shard
// over single-shard RPCs, bit-identically.
func TestBatchFallbackToPreBatchWorker(t *testing.T) {
	rejectBatches := func(i int, h http.Handler) http.Handler {
		payload := wire.AppendShardBatchResponse(nil, []wire.ShardResponse{{
			Status: wire.StatusMalformed, Detail: "unknown message type 16",
		}})
		frame, err := wire.AppendFrame(nil, wire.MsgShardBatchResponse, payload)
		if err != nil {
			panic(err)
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if typ, _, _, err := wire.SplitFrame(body, 1<<30); err == nil && typ == wire.MsgShardBatchRequest {
				w.Write(frame)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			h.ServeHTTP(w, r)
		})
	}
	_, urls := startWorkers(t, 2, rejectBatches)
	c, err := New(Config{Peers: urls, Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.RandomUniform(260, 52, 0.07, 61)
	opts := core.Options{Dist: rng.Rademacher, Seed: 29, Workers: 1}
	got, _, err := c.Sketch(context.Background(), a, 10, opts)
	if err != nil {
		t.Fatalf("batch rejection was not demoted to failover: %v", err)
	}
	assertBitIdentical(t, got, directSketch(t, a, 10, opts))
	if v := counterValue(t, c, "sketchsp_shard_failovers_total"); v < 1 {
		t.Fatalf("failovers_total = %v, want >= 1", v)
	}
}
