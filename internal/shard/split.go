package shard

import "sketchsp/internal/sparse"

// Shard is one column slab A[:, J0:J1) of the full input, carried as a
// zero-copy CSC view (sparse.ColSlice): the view shares RowIdx/Val with
// the parent and keeps M and the *global* row indices, which is what makes
// the partial sketch S·A[:, J0:J1) bit-identical to the corresponding
// columns of S·A — the sketch kernels consume rows, and rows are untouched
// by a column split.
type Shard struct {
	J0, J1 int
	A      *sparse.CSC
}

// Split cuts a into at most k nnz-balanced column shards using
// sparse.NNZBalancedColSplit: cut points sit on the cumulative-nnz
// quantiles (ColPtr *is* the cumulative histogram, so placement is a
// binary search per cut, not a scan), which balances worker flops — the
// kernels' work is Θ(d·nnz per shard) — rather than column counts, so a
// power-law matrix does not send one worker 90% of the multiply.
//
// Every returned shard is non-empty in columns when n ≥ k; for n < k (or
// degenerate n == 0) fewer shards come back. The shards tile [0, a.N)
// exactly, in order, with no overlap.
func Split(a *sparse.CSC, k int) []Shard {
	cuts := sparse.NNZBalancedColSplit(a, k)
	shards := make([]Shard, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		j0, j1 := cuts[i], cuts[i+1]
		shards = append(shards, Shard{J0: j0, J1: j1, A: a.ColSlice(j0, j1)})
	}
	return shards
}
