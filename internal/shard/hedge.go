package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"sketchsp/internal/wire"
)

// Shard hedging, after Dean & Barroso's "The Tail at Scale": when one
// shard RPC is slow, re-send the shard to the next ring-order peer and
// take whichever valid answer lands first. Sharding makes a request's
// latency the *max* over its shards, so one straggling worker sets p99 for
// the whole cluster; a hedge bounds the straggler by a healthy peer's
// latency at the cost of a small fraction of duplicate work.
//
// The hedge delay is the configured quantile of the *backup* peer's recent
// latencies — not the laggard's own. A consistently slow worker's own
// quantile is itself slow, so self-quantile hedging never fires against
// exactly the peer that needs it; the backup's window estimates what a
// healthy peer would take, which is the quantity a hedge is betting on.
// Steady-state duplicate work is bounded by roughly (1−q) of shard RPCs:
// a healthy primary beats the backup's q-quantile q of the time.
//
// Correctness is not hedging's problem to solve: every answer for a shard
// is bit-identical (same seed, same global columns), the winner is merged
// and the loser's context is cancelled. Even a duplicate answer that did
// sneak through could not corrupt Â — the Accumulator rejects overlapping
// column coverage, and place() rejects a partial whose echoed j0 or width
// disagrees with the shard. The fault-injection suite pins both layers.

// latWindow is a fixed-size ring of one peer's recent successful RPC
// latencies. Writers are shard attempts; the reader is hedge-delay
// computation. Small and mutex-guarded — the window is touched once per
// RPC, not per matrix entry.
type latWindow struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	next int
	n    int
}

// hedgeMinSamples is the observation count below which Quantile declines
// to estimate — a cold window hedges at HedgeMaxDelay instead.
const hedgeMinSamples = 8

// Record adds one observed latency, evicting the oldest beyond capacity.
func (w *latWindow) Record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Quantile returns the q-quantile of the window, or -1 with fewer than
// hedgeMinSamples observations.
func (w *latWindow) Quantile(q float64) time.Duration {
	var tmp [64]time.Duration
	w.mu.Lock()
	n := w.n
	copy(tmp[:n], w.buf[:n])
	w.mu.Unlock()
	if n < hedgeMinSamples {
		return -1
	}
	s := tmp[:n]
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return s[i]
}

// hedgeDelay is how long to wait before hedging onto backup: the backup's
// recent q-quantile, capped by (and defaulting to, while the window is
// cold) HedgeMaxDelay.
func (c *Coordinator) hedgeDelay(backup *peer) time.Duration {
	d := backup.lat.Quantile(c.cfg.HedgeQuantile)
	if d < 0 || d > c.cfg.HedgeMaxDelay {
		return c.cfg.HedgeMaxDelay
	}
	return d
}

// runShard drives one shard to a single valid answer across its candidate
// peers: attempt the primary (through the shared batch frame when bc is
// non-nil), hedge onto the next candidate when the hedge timer fires
// before an answer, fail over on peer-health errors, and cancel every
// losing attempt on return. Input-class failures (failFast) abort
// immediately — no peer can cure a bad request.
func (c *Coordinator) runShard(ctx context.Context, sh *Shard, cands []*peer, caller *shardCaller, bc *batchCall, bcIdx int) (*wire.ShardResponse, error) {
	type attemptResult struct {
		idx   int
		resp  *wire.ShardResponse
		err   error
		hedge bool
	}
	results := make(chan attemptResult, len(cands))
	cancels := make([]context.CancelFunc, 0, len(cands))
	defer func() {
		// Loser cancellation: whichever attempts did not produce the
		// returned answer are torn down with their contexts.
		for _, cancel := range cancels {
			cancel()
		}
	}()

	var (
		inflight int
		next     int
		lastErr  error
		lastPeer = cands[0].name
	)
	launch := func(hedge bool) {
		i := next
		next++
		p := cands[i]
		lastPeer = p.name
		inflight++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		if i == 0 && bc != nil {
			// The primary attempt rides the per-peer batch frame; its
			// metrics were counted once by launchBatch.
			go func() {
				resp, err := bc.wait(actx, bcIdx, sh)
				results <- attemptResult{0, resp, err, false}
			}()
			return
		}
		if hedge {
			c.met.hedges.Inc()
		} else if lastErr != nil {
			c.met.failovers.Inc()
		}
		c.met.subrequests.Inc()
		p.met.requests.Inc()
		p.met.bytes.Add(caller.bytes(sh))
		go func() {
			start := time.Now()
			resp, err := caller.call(actx, p, sh)
			if err == nil {
				p.lat.Record(time.Since(start))
			}
			results <- attemptResult{i, resp, err, hedge}
		}()
	}

	// The hedge timer is re-armed after every launch, against the *next*
	// candidate's window, so multi-level hedging walks the ring like
	// failover does. A fresh timer per arm keeps the stale-fire semantics
	// trivial (old channels are simply never selected on again).
	var (
		timer  *time.Timer
		timerC <-chan time.Time
	)
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	armHedge := func() {
		if timer != nil {
			timer.Stop()
		}
		timerC = nil
		if c.cfg.HedgeQuantile <= 0 || next >= len(cands) {
			return
		}
		timer = time.NewTimer(c.hedgeDelay(cands[next]))
		timerC = timer.C
	}

	launch(false)
	armHedge()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timerC:
			launch(true)
			armHedge()
		case r := <-results:
			inflight--
			if r.err == nil {
				if r.hedge {
					c.met.hedgeWins.Inc()
				}
				return r.resp, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if failFast(r.err) {
				return nil, &ShardError{J0: sh.J0, J1: sh.J1, Peer: cands[r.idx].name, Err: r.err}
			}
			cands[r.idx].downUntil.Store(time.Now().Add(c.cfg.PeerCooldown).UnixNano())
			lastErr = r.err
			lastPeer = cands[r.idx].name
			if inflight == 0 {
				if next >= len(cands) {
					return nil, &ShardError{J0: sh.J0, J1: sh.J1, Peer: lastPeer, Err: lastErr}
				}
				launch(false)
				armHedge()
			}
		}
	}
}
