package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/wire"
)

// Per-peer batch fan-out: shards of one request whose primary candidate is
// the same peer ride a single MsgShardBatchRequest frame instead of one
// HTTP call each, collapsing N-shards-on-K-peers from N round trips to K.
// The batch is a transport optimisation only — each shard still resolves
// independently through runShard, so hedging and failover treat a
// batch-borne shard exactly like a direct one: a batch-level failure (or a
// per-item error) sends just the affected shards to their backup peers as
// ordinary single-shard RPCs.
//
// One asymmetry is deliberate: a batch-level StatusMalformed is demoted
// from fail-fast to failover. On a single-shard RPC, StatusMalformed means
// our request is bad and no peer can cure it; on a whole batch frame it is
// also what a pre-batch worker answers for the unknown message type, so
// the coordinator falls back to single-shard RPCs against the next
// candidate rather than failing the request. Per-item statuses inside a
// decoded batch response keep the normal taxonomy — a worker that speaks
// batch and says StatusInvalidMatrix means it.

// batchCall is one in-flight batch RPC shared by the runShard goroutines
// of its member shards. resps is index-aligned with the request slice and
// valid only after done is closed; pending counts members still waiting,
// and the last one out cancels the RPC context.
type batchCall struct {
	p       *peer
	done    chan struct{}
	resps   []wire.ShardResponse
	err     error
	pending atomic.Int32
	cancel  context.CancelFunc
}

// launchBatch issues one batch frame for shards to p. Metrics for the
// frame — one peer request, one batch, len(shards) subrequests, the wire
// bytes and the batch-size observation — are counted here exactly once;
// runShard counts nothing for a batch-borne primary attempt.
func (c *Coordinator) launchBatch(ctx context.Context, p *peer, shards []*Shard, nTotal, d int, opts core.Options) *batchCall {
	reqs := make([]wire.ShardRequest, len(shards))
	for i, sh := range shards {
		reqs[i] = wire.ShardRequest{
			J0:     sh.J0,
			NTotal: nTotal,
			SketchRequest: wire.SketchRequest{
				D:    d,
				Opts: opts,
				A:    sh.A,
			},
		}
	}
	bctx, cancel := context.WithCancel(ctx)
	bc := &batchCall{p: p, done: make(chan struct{}), cancel: cancel}
	bc.pending.Store(int32(len(shards)))
	c.met.batches.Inc()
	c.met.batchSize.ObserveValue(int64(len(shards)))
	c.met.subrequests.Add(int64(len(shards)))
	p.met.requests.Inc()
	p.met.bytes.Add(int64(wire.ShardBatchRequestWireSize(reqs)))
	go func() {
		defer close(bc.done)
		start := time.Now()
		resps, err := p.cli.SketchShardBatch(bctx, reqs)
		if err != nil {
			var se *wire.StatusError
			if errors.As(err, &se) && se.Code == wire.StatusMalformed {
				// Pre-batch worker (or a frame the peer cannot read):
				// strip the status from the chain so failFast routes the
				// members to single-shard failover instead of aborting.
				err = fmt.Errorf("shard: peer %s rejected batch frame: %v", p.name, err)
			}
			bc.err = err
			return
		}
		if len(resps) != len(reqs) {
			bc.err = fmt.Errorf("shard: peer %s answered %d items for a %d-shard batch", p.name, len(resps), len(reqs))
			return
		}
		p.lat.Record(time.Since(start))
		bc.resps = resps
	}()
	return bc
}

// wait blocks until the batch resolves (or ctx does) and extracts member
// idx's outcome. Per-item errors keep their status chain so runShard's
// failFast classification is identical to the single-shard path; a wrong
// J0 echo is a peer-health failure (failover re-asks a backup — and even
// if it slipped through, place() rejects misplacement again upstream).
func (bc *batchCall) wait(ctx context.Context, idx int, sh *Shard) (*wire.ShardResponse, error) {
	defer bc.release()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-bc.done:
	}
	if bc.err != nil {
		return nil, bc.err
	}
	resp := &bc.resps[idx]
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.J0 != sh.J0 {
		return nil, fmt.Errorf("shard: batch item echoes j0=%d for shard [%d:%d)", resp.J0, sh.J0, sh.J1)
	}
	return resp, nil
}

// release retires one member's interest; the last release cancels the RPC
// so an abandoned batch (every member hedged away or failed over) stops
// burning the peer.
func (bc *batchCall) release() {
	if bc.pending.Add(-1) == 0 {
		bc.cancel()
	}
}
