package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// buildSketchd compiles the daemon once per test binary into a temp dir.
func buildSketchd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sketchd")
	cmd := exec.Command("go", "build", "-o", bin, "sketchsp/cmd/sketchd")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build sketchd: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// startSketchd launches one daemon process with the given extra flags,
// waits for its -addr-file, and returns its base URL. The process gets a
// SIGTERM (graceful drain) at cleanup.
func startSketchd(t *testing.T, bin string, extra ...string) string {
	url, _ := startSketchdProc(t, bin, extra...)
	return url
}

// startSketchdProc is startSketchd returning the process handle too, for
// tests that kill a worker mid-run.
func startSketchdProc(t *testing.T, bin string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start sketchd: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			return "http://" + strings.TrimSpace(string(b)), cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketchd never published %s", addrFile)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestE2EThreeWorkerCluster is the acceptance run: three sketchd worker
// *processes* on loopback, an in-test coordinator fanning out over them,
// and bit-identity of the merged Â against the single-process plan across
// two distributions and a skewed matrix — all under whatever -race mode
// the test binary runs in.
func TestE2EThreeWorkerCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short")
	}
	bin := buildSketchd(t)
	urls := []string{
		startSketchd(t, bin, "-cache", "16"),
		startSketchd(t, bin, "-cache", "16"),
		startSketchd(t, bin, "-cache", "16"),
	}
	c, err := New(Config{Peers: urls, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	matrices := map[string]*sparse.CSC{
		"uniform":  sparse.RandomUniform(500, 80, 0.04, 71),
		"powerlaw": sparse.PowerLaw(500, 80, 3000, 1.5, 72),
	}
	optsSet := map[string]core.Options{
		"gaussian":   {Dist: rng.Gaussian, Seed: 1001, BlockD: 16, Workers: 1},
		"rademacher": {Dist: rng.Rademacher, Seed: 1002, Workers: 1},
	}
	const d = 32
	for mname, a := range matrices {
		for oname, opts := range optsSet {
			got, _, err := c.Sketch(context.Background(), a, d, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", mname, oname, err)
			}
			assertBitIdentical(t, got, directSketch(t, a, d, opts))
		}
	}

	// Coordinator daemon: a 4th sketchd in -peers mode must serve the
	// identical bits through the ordinary client API.
	coordURL := startSketchd(t, bin, "-peers", strings.Join(urls, ","), "-shards", "5")
	cli := client.New(coordURL, client.Config{})
	a := matrices["powerlaw"]
	opts := optsSet["gaussian"]
	got, st, err := cli.Sketch(context.Background(), a, d, opts)
	if err != nil {
		t.Fatalf("client through coordinator daemon: %v", err)
	}
	assertBitIdentical(t, got, directSketch(t, a, d, opts))
	if st.Flops <= 0 {
		t.Fatalf("coordinator daemon returned empty stats: %+v", st)
	}
}

// TestE2ECoordinatorRejectsNoPeers pins the daemon's flag validation
// indirectly through the library (the daemon exits non-zero before
// binding when -peers parses to nothing).
func TestE2ECoordinatorRejectsNoPeers(t *testing.T) {
	if _, err := New(Config{Peers: []string{" ", ""}}); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("blank peers: %v", err)
	}
}

// bitEqual is assertBitIdentical's non-fataling form, for goroutines that
// cannot call t.Fatalf.
func bitEqual(got, want *dense.Matrix) bool {
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return false
	}
	for j := 0; j < want.Cols; j++ {
		for i := 0; i < want.Rows; i++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// scrapeMetric fetches /metrics from a daemon and returns the value of one
// sample line (counter or gauge), or -1 if the line is absent.
func scrapeMetric(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", baseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", baseURL, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	return -1
}

// adminPeers drives the coordinator daemon's /v1/peers admin endpoint.
func adminPeers(t *testing.T, coordURL, method, peerURL string) {
	t.Helper()
	var req *http.Request
	var err error
	switch method {
	case http.MethodPost:
		body, _ := json.Marshal(map[string]string{"peer": peerURL})
		req, err = http.NewRequest(method, coordURL+"/v1/peers", bytes.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	case http.MethodDelete:
		req, err = http.NewRequest(method, coordURL+"/v1/peers?peer="+url.QueryEscape(peerURL), nil)
	default:
		t.Fatalf("adminPeers: unsupported method %s", method)
	}
	if err != nil {
		t.Fatalf("admin %s: %v", method, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("admin %s %s: %v", method, peerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("admin %s %s: HTTP %d: %s", method, peerURL, resp.StatusCode, body)
	}
}

// TestE2EKillAndRejoin is the cluster fault acceptance run: a client
// replays sketches through a coordinator daemon while one worker process
// is SIGTERMed mid-replay, administratively removed, and replaced via
// POST /v1/peers — and not a single client request may fail or return
// different bits. Afterwards the coordinator's /metrics must show the two
// membership changes and a recovered (zero) peers-down gauge.
func TestE2EKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short")
	}
	bin := buildSketchd(t)
	type worker struct {
		url string
		cmd *exec.Cmd
	}
	var workers [3]worker
	for i := range workers {
		workers[i].url, workers[i].cmd = startSketchdProc(t, bin, "-cache", "16")
	}
	urls := []string{workers[0].url, workers[1].url, workers[2].url}
	// Short cooldown so the routing table forgives the killed peer's
	// failures quickly once the replacement is in place.
	coordURL := startSketchd(t, bin,
		"-peers", strings.Join(urls, ","),
		"-shards", "4",
		"-peer-cooldown", "500ms")

	a := sparse.PowerLaw(400, 64, 2500, 1.3, 91)
	const d = 16
	opts := core.Options{Dist: rng.Rademacher, Seed: 2024, Workers: 1}
	want := directSketch(t, a, d, opts)
	cli := client.New(coordURL, client.Config{})

	// Replay runs in its own goroutine so the kill genuinely lands
	// mid-traffic; every iteration must succeed bit-identically.
	stop := make(chan struct{})
	type tally struct {
		total  int
		failed int
		first  error
	}
	done := make(chan tally, 1)
	go func() {
		var tl tally
		for {
			select {
			case <-stop:
				done <- tl
				return
			default:
			}
			got, _, err := cli.Sketch(context.Background(), a, d, opts)
			tl.total++
			if err == nil && !bitEqual(got, want) {
				err = errors.New("replay sketch not bit-identical to direct plan")
			}
			if err != nil {
				tl.failed++
				if tl.first == nil {
					tl.first = err
				}
			}
		}
	}()

	waitRequests := func(n int) {
		deadline := time.Now().Add(20 * time.Second)
		for scrapeMetric(t, coordURL, "sketchsp_shard_requests_total") < float64(n) {
			if time.Now().After(deadline) {
				t.Fatalf("replay never reached %d requests", n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 1: healthy traffic, then SIGTERM worker 1 mid-replay. The
	// coordinator must ride it out via cooldown + failover.
	waitRequests(5)
	victim := workers[1]
	if err := victim.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM worker: %v", err)
	}
	victim.cmd.Wait()

	// Phase 2: traffic against the degraded cluster, then administratively
	// remove the dead peer and add a freshly started replacement.
	waitRequests(10)
	adminPeers(t, coordURL, http.MethodDelete, victim.url)
	replacementURL := startSketchd(t, bin, "-cache", "16")
	adminPeers(t, coordURL, http.MethodPost, replacementURL)

	// Phase 3: traffic against the healed cluster.
	waitRequests(20)
	close(stop)
	tl := <-done

	if tl.failed != 0 {
		t.Fatalf("%d of %d replay requests failed across kill+rejoin; first: %v",
			tl.failed, tl.total, tl.first)
	}
	if tl.total < 20 {
		t.Fatalf("replay only issued %d requests", tl.total)
	}
	if got := scrapeMetric(t, coordURL, "sketchsp_shard_peer_changes_total"); got < 2 {
		t.Fatalf("sketchsp_shard_peer_changes_total = %v, want >= 2 (remove + add)", got)
	}
	// Cooldown recovery: with the dead peer out of membership and the
	// replacement healthy, the down gauge must return to zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if down := scrapeMetric(t, coordURL, "sketchsp_shard_peers_down"); down == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("sketchsp_shard_peers_down = %v, never recovered to 0", down)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The admin listing must reflect the final membership: replacement in,
	// victim out.
	resp, err := http.Get(coordURL + "/v1/peers")
	if err != nil {
		t.Fatalf("GET /v1/peers: %v", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Peers []string `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decode /v1/peers: %v", err)
	}
	hasReplacement := false
	for _, p := range listing.Peers {
		if p == victim.url {
			t.Fatalf("removed peer %s still listed in %v", victim.url, listing.Peers)
		}
		if p == replacementURL {
			hasReplacement = true
		}
	}
	if !hasReplacement {
		t.Fatalf("replacement %s missing from peer listing %v", replacementURL, listing.Peers)
	}
}
