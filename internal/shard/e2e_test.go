package shard

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// buildSketchd compiles the daemon once per test binary into a temp dir.
func buildSketchd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sketchd")
	cmd := exec.Command("go", "build", "-o", bin, "sketchsp/cmd/sketchd")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build sketchd: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// startSketchd launches one daemon process with the given extra flags,
// waits for its -addr-file, and returns its base URL. The process gets a
// SIGTERM (graceful drain) at cleanup.
func startSketchd(t *testing.T, bin string, extra ...string) string {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start sketchd: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			return "http://" + strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketchd never published %s", addrFile)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestE2EThreeWorkerCluster is the acceptance run: three sketchd worker
// *processes* on loopback, an in-test coordinator fanning out over them,
// and bit-identity of the merged Â against the single-process plan across
// two distributions and a skewed matrix — all under whatever -race mode
// the test binary runs in.
func TestE2EThreeWorkerCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short")
	}
	bin := buildSketchd(t)
	urls := []string{
		startSketchd(t, bin, "-cache", "16"),
		startSketchd(t, bin, "-cache", "16"),
		startSketchd(t, bin, "-cache", "16"),
	}
	c, err := New(Config{Peers: urls, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	matrices := map[string]*sparse.CSC{
		"uniform":  sparse.RandomUniform(500, 80, 0.04, 71),
		"powerlaw": sparse.PowerLaw(500, 80, 3000, 1.5, 72),
	}
	optsSet := map[string]core.Options{
		"gaussian":   {Dist: rng.Gaussian, Seed: 1001, BlockD: 16, Workers: 1},
		"rademacher": {Dist: rng.Rademacher, Seed: 1002, Workers: 1},
	}
	const d = 32
	for mname, a := range matrices {
		for oname, opts := range optsSet {
			got, _, err := c.Sketch(context.Background(), a, d, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", mname, oname, err)
			}
			assertBitIdentical(t, got, directSketch(t, a, d, opts))
		}
	}

	// Coordinator daemon: a 4th sketchd in -peers mode must serve the
	// identical bits through the ordinary client API.
	coordURL := startSketchd(t, bin, "-peers", strings.Join(urls, ","), "-shards", "5")
	cli := client.New(coordURL, client.Config{})
	a := matrices["powerlaw"]
	opts := optsSet["gaussian"]
	got, st, err := cli.Sketch(context.Background(), a, d, opts)
	if err != nil {
		t.Fatalf("client through coordinator daemon: %v", err)
	}
	assertBitIdentical(t, got, directSketch(t, a, d, opts))
	if st.Flops <= 0 {
		t.Fatalf("coordinator daemon returned empty stats: %+v", st)
	}
}

// TestE2ECoordinatorRejectsNoPeers pins the daemon's flag validation
// indirectly through the library (the daemon exits non-zero before
// binding when -peers parses to nothing).
func TestE2ECoordinatorRejectsNoPeers(t *testing.T) {
	if _, err := New(Config{Peers: []string{" ", ""}}); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("blank peers: %v", err)
	}
}
