package shard

import (
	"context"
	"fmt"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// The coordinator's content-addressed surface. The coordinator keeps its
// own matrix store — the cluster's front door for uploads — and fans
// by-reference sketches out as by-reference *shard* requests: each column
// shard is itself content-addressed (a ColSlice has its own fingerprint),
// so a worker that has seen the shard answers a fixed-size request, and a
// worker that hasn't is cured by the client's upload-and-retry fallback.
// Repeat traffic to the workers is O(shards) frames of
// wire.SketchRefWireSize bytes, not O(nnz).
var _ service.RefBackend = (*Coordinator)(nil)

// PutMatrix uploads a into the coordinator's store. Workers receive their
// shards lazily, on the first by-reference sketch that misses.
func (c *Coordinator) PutMatrix(ctx context.Context, a *sparse.CSC) (store.Info, error) {
	if c.closed.Load() {
		return store.Info{}, service.ErrClosed
	}
	if a == nil {
		return store.Info{}, core.ErrNilMatrix
	}
	if err := ctx.Err(); err != nil {
		return store.Info{}, err
	}
	return c.store.Put(a)
}

// SketchRef computes Â = S·A for the stored matrix fp by by-reference
// shard fan-out. Bit-identity with every other path holds for the same
// reason inline sharding is exact: S's entries depend only on the global
// row index, and a column slice preserves rows, so a worker's standalone
// sketch of the shard *is* the corresponding columns of Â.
func (c *Coordinator) SketchRef(ctx context.Context, fp sparse.Fingerprint, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	start := time.Now()
	c.met.requests.Inc()
	if c.closed.Load() {
		c.met.failures.Inc()
		return nil, core.Stats{}, service.ErrClosed
	}
	if d <= 0 {
		c.met.failures.Inc()
		return nil, core.Stats{}, fmt.Errorf("%w: d=%d", core.ErrInvalidSketchSize, d)
	}
	h, err := c.store.Get(fp)
	if err != nil {
		c.met.failures.Inc()
		return nil, core.Stats{}, err
	}
	defer h.Release()
	ahat, stats, err := c.fanMerge(ctx, h.Matrix(), d, c.byRefCaller(d, opts))
	if err != nil {
		c.met.failures.Inc()
		return nil, core.Stats{}, err
	}
	stats.Total = time.Since(start)
	return ahat, stats, nil
}

// byRefCaller runs shards through the ring by reference: the routed
// worker gets a fingerprint-only request, and the client's SketchCached
// fallback uploads the shard bytes only on the worker's first sight of
// the content (or after its store evicted it). No batch strategy: the
// upload-on-miss fallback is inherently per-shard, so by-ref shards stay
// on single RPCs (hedging and failover apply unchanged).
func (c *Coordinator) byRefCaller(d int, opts core.Options) *shardCaller {
	return &shardCaller{
		bytes: func(*Shard) int64 { return wire.SketchRefWireSize },
		call: func(ctx context.Context, p *peer, sh *Shard) (*wire.ShardResponse, error) {
			partial, st, err := p.cli.SketchCached(ctx, sh.A, d, opts)
			if err != nil {
				return nil, err
			}
			return &wire.ShardResponse{Status: wire.StatusOK, J0: sh.J0, Stats: st, Partial: partial}, nil
		},
	}
}

// PatchMatrix applies ΔA to the stored matrix fp: the merged matrix enters
// the coordinator's store under its new fingerprint, and the delta is
// forwarded to the workers shard by shard, best-effort, wherever the old
// and new column splits coincide — sparse.Add commutes with ColSlice, so
// patching a worker's old shard with the delta's matching slice produces
// exactly the new shard's content, letting the worker advance its cached
// shard sketches incrementally. Shards whose cut points moved (the
// nnz-balanced split shifted) or whose worker no longer holds the old
// content are skipped: the by-ref fallback uploads them on the next
// sketch, so forwarding failures cost bytes, never correctness.
func (c *Coordinator) PatchMatrix(ctx context.Context, fp sparse.Fingerprint, delta *sparse.CSC) (store.Info, error) {
	if c.closed.Load() {
		return store.Info{}, service.ErrClosed
	}
	if delta == nil {
		return store.Info{}, core.ErrNilMatrix
	}
	h, err := c.store.Get(fp)
	if err != nil {
		return store.Info{}, err
	}
	defer h.Release()
	if err := delta.Validate(); err != nil {
		return store.Info{}, err
	}
	old := h.Matrix()
	sum, err := sparse.Add(old, delta)
	if err != nil {
		return store.Info{}, err
	}
	info, err := c.store.PutOwned(sum)
	if err != nil {
		return store.Info{}, err
	}

	mem := c.mem.Load()
	k := c.cfg.Shards
	if k <= 0 {
		k = len(mem.peers)
	}
	oldShards, newShards := Split(old, k), Split(sum, k)
	if len(oldShards) != len(newShards) {
		return info, nil
	}
	for i := range newShards {
		osh, nsh := &oldShards[i], &newShards[i]
		if osh.J0 != nsh.J0 || osh.J1 != nsh.J1 {
			continue // cut moved: the shard content changed shape, re-upload path covers it
		}
		dslice := delta.ColSlice(osh.J0, osh.J1)
		if dslice.NNZ() == 0 {
			continue // untouched shard: same fingerprint, workers already hold it
		}
		// Forward to the peer the *new* shard routes to — the one future
		// by-ref sketches will ask. Errors (worker never saw the old shard,
		// worker down) are swallowed: best-effort by design.
		order := mem.ring.Order(nsh.A.Fingerprint().Hash)
		p := mem.peers[order[0]]
		if _, err := p.cli.PatchMatrix(ctx, osh.A.Fingerprint(), dslice); err != nil {
			if ctx.Err() != nil {
				return info, nil
			}
			continue
		}
	}
	return info, nil
}
