package shard

import (
	"strconv"
	"time"

	"sketchsp/internal/obs"
)

// metrics is the coordinator's sketchsp_shard_* family set. Per-peer
// series are fixed-cardinality handles created at construction (the peer
// set is immutable for a coordinator's lifetime), so the fan-out hot path
// touches only pre-resolved atomics.
type metrics struct {
	requests    *obs.Counter   // coordinated sketch requests
	subrequests *obs.Counter   // shard RPCs issued (includes failover retries)
	failovers   *obs.Counter   // shard attempts rerouted to a backup peer
	failures    *obs.Counter   // coordinated requests that failed
	fanout      *obs.Histogram // fan-out stage: split + route + all shard RPCs
	merge       *obs.Histogram // merge stage: partial placement + completeness check
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		requests: r.Counter("sketchsp_shard_requests_total",
			"Sketch requests coordinated across workers."),
		subrequests: r.Counter("sketchsp_shard_subrequests_total",
			"Shard RPCs issued to workers, including failover retries."),
		failovers: r.Counter("sketchsp_shard_failovers_total",
			"Shard attempts rerouted to a backup peer after a peer failure."),
		failures: r.Counter("sketchsp_shard_failures_total",
			"Coordinated sketch requests that returned an error."),
		fanout: r.Histogram("sketchsp_shard_fanout_seconds",
			"Fan-out stage: split, route, and all shard RPCs of one request."),
		merge: r.Histogram("sketchsp_shard_merge_seconds",
			"Merge stage: partial sketch placement and completeness check."),
	}
}

// peerMetrics are one worker's series, labeled peer="<addr>".
type peerMetrics struct {
	requests *obs.Counter // shard RPCs sent to this peer
	bytes    *obs.Counter // request bytes shipped to this peer
}

func newPeerMetrics(r *obs.Registry, peer string) peerMetrics {
	labels := `peer=` + strconv.Quote(peer)
	return peerMetrics{
		requests: r.LabeledCounter("sketchsp_shard_peer_requests_total", labels,
			"Shard RPCs issued, by destination peer."),
		bytes: r.LabeledCounter("sketchsp_shard_peer_bytes_total", labels,
			"Shard request bytes shipped, by destination peer."),
	}
}

// registerPeersDown exposes the live cooldown state as a scrape-time
// gauge: peers currently marked down (their cooldown has not expired).
func registerPeersDown(r *obs.Registry, peers []*peer) {
	r.GaugeFunc("sketchsp_shard_peers_down",
		"Peers currently in failure cooldown.", func() int64 {
			now := time.Now().UnixNano()
			var n int64
			for _, p := range peers {
				if p.downUntil.Load() > now {
					n++
				}
			}
			return n
		})
}
