package shard

import (
	"strconv"
	"time"

	"sketchsp/internal/obs"
)

// metrics is the coordinator's sketchsp_shard_* family set. Per-peer
// series are created once per peer name and cached across membership
// changes (a rejoining peer resumes its counters), so the fan-out hot
// path touches only pre-resolved atomics.
type metrics struct {
	requests    *obs.Counter   // coordinated sketch requests
	subrequests *obs.Counter   // shard attempts issued (batch items count individually)
	failovers   *obs.Counter   // shard attempts rerouted to a backup peer after a failure
	hedges      *obs.Counter   // hedge attempts fired on a latency timer
	hedgeWins   *obs.Counter   // shards whose first valid answer came from a hedge
	peerChanges *obs.Counter   // membership changes applied (join, leave, file update)
	batches     *obs.Counter   // per-peer batch frames issued
	failures    *obs.Counter   // coordinated requests that failed
	fanout      *obs.Histogram // fan-out stage: split + route + all shard RPCs
	merge       *obs.Histogram // merge stage: partial placement + completeness check
	batchSize   *obs.Histogram // shards per batch frame (value histogram)
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		requests: r.Counter("sketchsp_shard_requests_total",
			"Sketch requests coordinated across workers."),
		subrequests: r.Counter("sketchsp_shard_subrequests_total",
			"Shard attempts issued to workers, including failover retries and hedges; batch items count individually."),
		failovers: r.Counter("sketchsp_shard_failovers_total",
			"Shard attempts rerouted to a backup peer after a peer failure."),
		hedges: r.Counter("sketchsp_shard_hedges_total",
			"Hedge attempts fired: shard re-sent to a backup after the hedge latency threshold."),
		hedgeWins: r.Counter("sketchsp_shard_hedge_wins_total",
			"Shards whose first valid answer came from a hedged attempt."),
		peerChanges: r.Counter("sketchsp_shard_peer_changes_total",
			"Membership changes applied: peer joins, leaves and peers-file updates."),
		batches: r.Counter("sketchsp_shard_batches_total",
			"Per-peer shard batch frames issued."),
		failures: r.Counter("sketchsp_shard_failures_total",
			"Coordinated sketch requests that returned an error."),
		fanout: r.Histogram("sketchsp_shard_fanout_seconds",
			"Fan-out stage: split, route, and all shard RPCs of one request."),
		merge: r.Histogram("sketchsp_shard_merge_seconds",
			"Merge stage: partial sketch placement and completeness check."),
		batchSize: r.ValueHistogram("sketchsp_shard_batch_size",
			"Shards riding one per-peer batch frame."),
	}
}

// peerMetrics are one worker's series, labeled peer="<addr>".
type peerMetrics struct {
	requests *obs.Counter // RPC frames sent to this peer (a batch frame counts once)
	bytes    *obs.Counter // request bytes shipped to this peer
}

func newPeerMetrics(r *obs.Registry, peer string) peerMetrics {
	labels := `peer=` + strconv.Quote(peer)
	return peerMetrics{
		requests: r.LabeledCounter("sketchsp_shard_peer_requests_total", labels,
			"RPC frames issued, by destination peer."),
		bytes: r.LabeledCounter("sketchsp_shard_peer_bytes_total", labels,
			"Shard request bytes shipped, by destination peer."),
	}
}

// registerPeersDown exposes the live cooldown state as a scrape-time
// gauge: peers of the current membership currently marked down (their
// cooldown has not expired). load resolves the membership at scrape time
// so the gauge tracks joins and leaves.
func registerPeersDown(r *obs.Registry, load func() []*peer) {
	r.GaugeFunc("sketchsp_shard_peers_down",
		"Peers currently in failure cooldown.", func() int64 {
			now := time.Now().UnixNano()
			var n int64
			for _, p := range load() {
				if p.downUntil.Load() > now {
					n++
				}
			}
			return n
		})
}
