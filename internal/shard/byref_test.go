package shard

import (
	"context"
	"errors"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// The coordinator's by-reference suite: uploads land in the coordinator's
// store, sketches fan out as fingerprint-sized shard requests with the
// client's upload-and-retry curing cold workers, and patches advance both
// the coordinator's content and — best effort — the workers' shards.

// TestCoordinatorByRefBitIdentity pins the by-reference tentpole: Â served
// from a stored fingerprint through worker fan-out equals the
// single-process sketch bit for bit, and repeat sketches keep working once
// the workers have seen their shards.
func TestCoordinatorByRefBitIdentity(t *testing.T) {
	_, urls := startWorkers(t, 3, nil)
	c, err := New(Config{Peers: urls, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	matrices := map[string]*sparse.CSC{
		"powerlaw": sparse.PowerLaw(800, 150, 9000, 1.0, 11),
		"uniform":  sparse.RandomUniform(300, 90, 0.04, 5),
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"rademacher", core.Options{Dist: rng.Rademacher, Source: rng.SourceBatchXoshiro, Workers: 2, Seed: 7}},
		{"sjlt-philox", core.Options{Dist: rng.SJLT, Source: rng.SourcePhilox, Workers: 2, Seed: 9, Sparsity: 3}},
	}
	const d = 24
	for name, a := range matrices {
		info, err := c.PutMatrix(context.Background(), a)
		if err != nil {
			t.Fatalf("PutMatrix(%s): %v", name, err)
		}
		for _, cfg := range configs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				// Twice: the first pass uploads shards to cold workers, the
				// second must answer from resident content — both exact.
				for pass := 0; pass < 2; pass++ {
					got, stats, err := c.SketchRef(context.Background(), info.Fp, d, cfg.opts)
					if err != nil {
						t.Fatalf("SketchRef pass %d: %v", pass, err)
					}
					assertBitIdentical(t, got, directSketch(t, a, d, cfg.opts))
					if stats.Total <= 0 {
						t.Errorf("pass %d: stats lost Total", pass)
					}
				}
			})
		}
	}

	if _, _, err := c.SketchRef(context.Background(), sparse.Fingerprint{M: 1, N: 1, NNZ: 1, Hash: 42}, d, configs[0].opts); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("SketchRef(unknown fp) err = %v, want Is(store.ErrNotFound)", err)
	}
	if _, _, err := c.SketchRef(context.Background(), matrices["uniform"].Fingerprint(), 0, configs[0].opts); !errors.Is(err, core.ErrInvalidSketchSize) {
		t.Errorf("SketchRef(d=0) err = %v, want Is(core.ErrInvalidSketchSize)", err)
	}
}

// TestCoordinatorPatchForwarding drives PATCH through a single-shard,
// single-worker cluster where forwarding is deterministic: after the
// coordinator patches, the worker's store must already hold the merged
// shard — advanced in place from the delta slice, not re-uploaded — and
// by-ref sketches of the new fingerprint must be exact.
func TestCoordinatorPatchForwarding(t *testing.T) {
	workers, urls := startWorkers(t, 1, nil)
	c, err := New(Config{Peers: urls, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a, err := sparse.NewCSC(40, 6,
		[]int{0, 2, 4, 4, 7, 9, 11},
		[]int{1, 30, 0, 7, 2, 9, 39, 11, 12, 3, 38},
		[]float64{1, -2, 3, 4, 5, -6, 7, 8, -9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := sparse.NewCSC(40, 6,
		[]int{0, 1, 2, 3, 3, 3, 4},
		[]int{5, 0, 17, 3},
		[]float64{2, -3, 4, -10}) // −3 at (0,1) and −10 at (3,5) cancel exactly
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sparse.Add(a, delta)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Dist: rng.Rademacher, Seed: 17, Workers: 2}
	const d = 16

	info, err := c.PutMatrix(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the worker: the first by-ref sketch uploads the (single) shard.
	if _, _, err := c.SketchRef(context.Background(), info.Fp, d, opts); err != nil {
		t.Fatal(err)
	}

	infoSum, err := c.PatchMatrix(context.Background(), info.Fp, delta)
	if err != nil {
		t.Fatalf("PatchMatrix: %v", err)
	}
	if infoSum.Fp != sum.Fingerprint() {
		t.Fatalf("PATCH returned fp %v, want %v", infoSum.Fp, sum.Fingerprint())
	}

	// With one shard the shard *is* the matrix, so forwarding must have
	// planted the merged content in the worker's store already.
	h, err := workers[0].svc.Store().Get(sum.Fingerprint())
	if err != nil {
		t.Fatalf("worker store after forwarded PATCH: %v", err)
	}
	h.Release()

	got, _, err := c.SketchRef(context.Background(), infoSum.Fp, d, opts)
	if err != nil {
		t.Fatalf("SketchRef(A+ΔA): %v", err)
	}
	assertBitIdentical(t, got, directSketch(t, sum, d, opts))
	// Immutability: the original fingerprint still serves the original bits.
	gotA, _, err := c.SketchRef(context.Background(), info.Fp, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, gotA, directSketch(t, a, d, opts))

	if _, err := c.PatchMatrix(context.Background(), sparse.Fingerprint{M: 40, N: 6, NNZ: 2, Hash: 0xabc}, delta); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("PATCH unknown fp err = %v, want Is(store.ErrNotFound)", err)
	}
}

// TestCoordinatorPatchColdWorkers asserts the correctness half of the
// best-effort contract: when no worker has ever seen a shard (forwarding
// has nothing to advance and silently fails), by-ref sketches of the
// patched matrix still come out exact via the upload fallback.
func TestCoordinatorPatchColdWorkers(t *testing.T) {
	_, urls := startWorkers(t, 2, nil)
	c, err := New(Config{Peers: urls, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sparse.RandomUniform(200, 60, 0.05, 23)
	colptr := make([]int, 61)
	for j := 31; j <= 60; j++ {
		colptr[j] = 2 // both delta entries live in column 30
	}
	delta, err := sparse.NewCSC(200, 60, colptr, []int{10, 150}, []float64{1.5, -2.5})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sparse.Add(a, delta)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Dist: rng.CountSketch, Source: rng.SourceBatchXoshiro, Seed: 4, Workers: 2}
	const d = 12

	info, err := c.PutMatrix(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// No sketch before the patch: every worker is cold.
	infoSum, err := c.PatchMatrix(context.Background(), info.Fp, delta)
	if err != nil {
		t.Fatalf("PatchMatrix on cold cluster: %v", err)
	}
	got, _, err := c.SketchRef(context.Background(), infoSum.Fp, d, opts)
	if err != nil {
		t.Fatalf("SketchRef after cold patch: %v", err)
	}
	assertBitIdentical(t, got, directSketch(t, sum, d, opts))
}
