package shard

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/service"
)

// Dynamic membership. The coordinator's peer set is no longer fixed at
// construction: AddPeer/RemovePeer/SetPeers re-canonicalise the ring while
// requests are in flight. The concurrency design is RCU-shaped:
//
//   - The routing state lives in one immutable membership snapshot (ring +
//     peer handles, index-aligned) behind an atomic pointer. A fan-out
//     loads the snapshot once and completes against it — a membership
//     change re-routes *new* requests only, so nothing in flight ever sees
//     a half-updated ring.
//   - Mutations serialise on peerMu, build a complete replacement snapshot,
//     and publish it with a single atomic store.
//   - peer handles are cached by name across leave/rejoin (handles map):
//     a rejoining worker keeps its labeled metric series (counters resume,
//     not reset — re-registering the same label would panic the registry)
//     and its wire client with warm connections.
//
// Routing stability across changes is the ring's own property: adding or
// removing one peer moves only the arcs that peer owns (pinned by the ring
// minimal-movement property test), so worker plan caches stay hot through
// churn.

// membership is one immutable routing snapshot: the canonical ring and the
// peer handles indexed like ring.Peers(). Never mutated after publication.
type membership struct {
	ring  *Ring
	peers []*peer
}

// candidates returns the failover candidate list for a shard key: ring
// order, truncated to max when max > 0, stably partitioned healthy-first
// (peers in cooldown keep their relative order but move to the back, so
// they are still tried when every healthy candidate fails).
func (m *membership) candidates(key uint64, max int) []*peer {
	order := m.ring.Order(key)
	if max > 0 && max < len(order) {
		order = order[:max]
	}
	now := time.Now().UnixNano()
	healthy := make([]*peer, 0, len(order))
	var down []*peer
	for _, pi := range order {
		p := m.peers[pi]
		if p.downUntil.Load() > now {
			down = append(down, p)
		} else {
			healthy = append(healthy, p)
		}
	}
	return append(healthy, down...)
}

var _ service.PeerAdmin = (*Coordinator)(nil)

// AddPeer adds one worker to the ring. Idempotent: adding a current member
// returns nil without counting a change. A peer that left and rejoins gets
// its failure cooldown cleared — the add is an operator's assertion that
// the worker is back.
func (c *Coordinator) AddPeer(name string) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return errors.New("shard: empty peer name")
	}
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	cur := c.mem.Load().ring.Peers()
	for _, p := range cur {
		if p == name {
			return nil
		}
	}
	next := make([]string, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, name)
	changed, err := c.setPeersLocked(next)
	if err != nil {
		return err
	}
	if changed {
		c.met.peerChanges.Inc()
	}
	return nil
}

// RemovePeer drains one worker out of the ring. Removing a non-member
// fails with service.ErrUnknownPeer; removing the last member is refused
// (a coordinator with no workers can serve nothing). In-flight requests
// holding the old snapshot may still reach the peer; only new routing
// stops.
func (c *Coordinator) RemovePeer(name string) error {
	name = strings.TrimSpace(name)
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	cur := c.mem.Load().ring.Peers()
	next := make([]string, 0, len(cur))
	for _, p := range cur {
		if p != name {
			next = append(next, p)
		}
	}
	if len(next) == len(cur) {
		return fmt.Errorf("%w: %s", service.ErrUnknownPeer, name)
	}
	if len(next) == 0 {
		return fmt.Errorf("%w: refusing to remove last peer %s", ErrNoPeers, name)
	}
	changed, err := c.setPeersLocked(next)
	if err != nil {
		return err
	}
	if changed {
		c.met.peerChanges.Inc()
	}
	return nil
}

// SetPeers replaces the whole peer set (the watched-peers-file path). A
// list that canonicalises to the current membership is a no-op; an empty
// list fails with ErrNoPeers and leaves the membership untouched.
func (c *Coordinator) SetPeers(names []string) error {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	changed, err := c.setPeersLocked(names)
	if err != nil {
		return err
	}
	if changed {
		c.met.peerChanges.Inc()
	}
	return nil
}

// setPeersLocked builds and publishes the snapshot for names. Caller holds
// peerMu. Reports whether the canonical membership actually changed.
func (c *Coordinator) setPeersLocked(names []string) (bool, error) {
	clean := make([]string, 0, len(names))
	for _, n := range names {
		if n = strings.TrimSpace(n); n != "" {
			clean = append(clean, n)
		}
	}
	ring := NewRing(clean, c.cfg.Replicas)
	canon := ring.Peers()
	if len(canon) == 0 {
		return false, ErrNoPeers
	}
	old := c.mem.Load()
	oldSet := map[string]bool{}
	if old != nil {
		oldNames := old.ring.Peers()
		if len(oldNames) == len(canon) {
			same := true
			for i := range canon {
				if oldNames[i] != canon[i] {
					same = false
					break
				}
			}
			if same {
				return false, nil
			}
		}
		for _, n := range oldNames {
			oldSet[n] = true
		}
	}
	peers := make([]*peer, len(canon))
	for i, name := range canon {
		p := c.handles[name]
		if p == nil {
			p = &peer{
				name: name,
				cli:  client.New(name, c.cfg.Client),
				met:  newPeerMetrics(c.reg, name),
			}
			c.handles[name] = p
		}
		if !oldSet[name] {
			p.downUntil.Store(0) // joining (or rejoining) clears cooldown
		}
		peers[i] = p
	}
	c.mem.Store(&membership{ring: ring, peers: peers})
	return true, nil
}

// ReadPeersFile parses a peers file: peer URLs separated by newlines,
// commas or whitespace; '#' starts a comment to end of line. An existing
// but empty file yields an empty list (which SetPeers then refuses, so a
// truncated-mid-write file cannot empty the cluster).
func ReadPeersFile(path string) ([]string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var peers []string
	for _, line := range strings.Split(string(buf), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == '\r'
		}) {
			peers = append(peers, tok)
		}
	}
	return peers, nil
}

// WatchPeersFile polls path every interval and applies its peer list via
// SetPeers. Unreadable, unparseable or empty reads are skipped — the last
// good membership keeps serving. Returns a stop function (idempotent).
func (c *Coordinator) WatchPeersFile(path string, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				names, err := ReadPeersFile(path)
				if err != nil || len(names) == 0 {
					continue
				}
				_ = c.SetPeers(names)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
