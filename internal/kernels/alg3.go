package kernels

import (
	"fmt"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Kernel3 is Algorithm 3: compute-kernel variant kji with on-the-fly random
// number generation over a CSC column slab.
//
// It updates Âsub += S[i0:i0+d1, :]·Asub in place, where Âsub is the dense
// d1×n1 view ahat, Asub is the m×n1 CSC slab asub, and blockRow identifies
// the block-row offset i0 of Âsub within Â (the r of the pseudocode's
// g.set_state(r, j)). v is a caller-provided scratch vector of length d1
// that is repeatedly overwritten with generated entries of S.
//
// For every nonzero A[j,k] the kernel regenerates the d1 entries of S's
// column j at this block row — strided access to all three operands, no
// reuse of random numbers (Alg 3 always generates d·nnz(A) samples, §III-B).
//
// Returns the number of random samples generated.
func Kernel3(ahat *dense.Matrix, asub *sparse.CSC, blockRow uint64, s *rng.Sampler, v []float64) int64 {
	d1, n1 := ahat.Rows, ahat.Cols
	if asub.N != n1 {
		panic(fmt.Sprintf("kernels: Kernel3 Âsub cols %d != Asub cols %d", n1, asub.N))
	}
	if len(v) < d1 {
		panic(fmt.Sprintf("kernels: Kernel3 scratch len %d < d1=%d", len(v), d1))
	}
	v = v[:d1]
	var generated int64
	if s.Dist() == rng.Rademacher {
		// Fused ±1 path: consume sign bits straight from the generator,
		// one bit per entry of S, no multiply (the paper's low-width ±1
		// specialisation).
		for k := 0; k < n1; k++ {
			rows, vals := asub.ColView(k)
			if len(rows) == 0 {
				continue
			}
			col := ahat.Col(k)
			for t, j := range rows {
				s.SetState(blockRow, uint64(j))
				w := s.RawWords(d1)
				generated += int64(d1)
				axpySign(vals[t], w, col)
			}
		}
		return generated
	}
	for k := 0; k < n1; k++ {
		rows, vals := asub.ColView(k)
		if len(rows) == 0 {
			continue
		}
		col := ahat.Col(k)
		for t, j := range rows {
			s.SetState(blockRow, uint64(j))
			s.Fill(v)
			generated += int64(d1)
			axpy(vals[t], v, col)
		}
	}
	return generated
}

// Kernel3Timed is Kernel3 with the sampling phase timed separately, used by
// the Table III/V breakdowns. As in the paper, the extra timer calls make
// the total slightly slower than the untimed kernel.
func Kernel3Timed(ahat *dense.Matrix, asub *sparse.CSC, blockRow uint64, s *rng.Sampler, v []float64, sampleTime *time.Duration) int64 {
	d1, n1 := ahat.Rows, ahat.Cols
	if asub.N != n1 {
		panic(fmt.Sprintf("kernels: Kernel3Timed Âsub cols %d != Asub cols %d", n1, asub.N))
	}
	v = v[:d1]
	var generated int64
	var sampled time.Duration
	if s.Dist() == rng.Rademacher {
		// Same fused ±1 path as the untimed kernel (bit-for-bit identical
		// output), with the generation phase — state seek + raw sign words
		// — under the timer. Previously the timed variant fell back to the
		// generic Fill path, so Table III/V runs measured a different
		// (slower, but equal-valued) ±1 kernel than production executed.
		for k := 0; k < n1; k++ {
			rows, vals := asub.ColView(k)
			if len(rows) == 0 {
				continue
			}
			col := ahat.Col(k)
			for t, j := range rows {
				t0 := time.Now()
				s.SetState(blockRow, uint64(j))
				w := s.RawWords(d1)
				sampled += time.Since(t0)
				generated += int64(d1)
				axpySign(vals[t], w, col)
			}
		}
		*sampleTime += sampled
		return generated
	}
	for k := 0; k < n1; k++ {
		rows, vals := asub.ColView(k)
		if len(rows) == 0 {
			continue
		}
		col := ahat.Col(k)
		for t, j := range rows {
			t0 := time.Now()
			s.SetState(blockRow, uint64(j))
			s.Fill(v)
			sampled += time.Since(t0)
			generated += int64(d1)
			axpy(vals[t], v, col)
		}
	}
	*sampleTime += sampled
	return generated
}
