package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

func randCSC(r *rand.Rand, m, n, nnz int) *sparse.CSC {
	coo := sparse.NewCOO(m, n, nnz)
	for k := 0; k < nnz; k++ {
		coo.Append(r.Intn(m), r.Intn(n), r.NormFloat64())
	}
	return coo.ToCSC()
}

func randDense(r *rand.Rand, rows, cols int) *dense.Matrix {
	m := dense.NewMatrix(rows, cols)
	for k := range m.Data {
		m.Data[k] = r.NormFloat64()
	}
	return m
}

// naiveMul is the oracle: G = L·R elementwise.
func naiveMul(l *dense.Matrix, rc *sparse.CSC) *dense.Matrix {
	g := dense.NewMatrix(l.Rows, rc.N)
	rd := rc.ToDense()
	dense.Gemm(1, l, rd, 0, g)
	return g
}

func TestAllLoopOrdersAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d1, m1, n1 := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		l := randDense(r, d1, m1)
		rc := randCSC(r, m1, n1, r.Intn(40))
		rr := rc.ToCSR()
		want := naiveMul(l, rc)
		for _, order := range AllLoopOrders() {
			g := dense.NewMatrix(d1, n1)
			MultiplyLoopOrder(order, l, rc, rr, g)
			if g.MaxAbsDiff(want) > 1e-10 {
				t.Fatalf("trial %d: order %v disagrees with oracle by %g",
					trial, order, g.MaxAbsDiff(want))
			}
		}
	}
}

func TestLoopOrderAccumulates(t *testing.T) {
	// MultiplyLoopOrder adds into G rather than overwriting.
	r := rand.New(rand.NewSource(2))
	l := randDense(r, 4, 5)
	rc := randCSC(r, 5, 3, 8)
	rr := rc.ToCSR()
	g := dense.NewMatrix(4, 3)
	g.Fill(1)
	MultiplyLoopOrder(OrderKJI, l, rc, rr, g)
	want := naiveMul(l, rc)
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			if diff := g.At(i, j) - want.At(i, j) - 1; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("accumulation broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestLoopOrderStrings(t *testing.T) {
	names := map[LoopOrder]string{
		OrderIJK: "ijk", OrderIKJ: "ikj", OrderKIJ: "kij",
		OrderJIK: "jik", OrderJKI: "jki", OrderKJI: "kji",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

// materialize builds the S block the sampler would generate at blockRow for
// columns 0..m-1, each of height d1.
func materialize(src rng.Source, dist rng.Distribution, blockRow uint64, d1, m int) *dense.Matrix {
	s := rng.NewSampler(src, dist)
	out := dense.NewMatrix(d1, m)
	v := make([]float64, d1)
	for j := 0; j < m; j++ {
		s.SetState(blockRow, uint64(j))
		s.Fill(v)
		copy(out.Col(j), v)
	}
	return out
}

func TestKernel3MatchesExplicitProduct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		d1, m, n1 := 1+r.Intn(20), 1+r.Intn(30), 1+r.Intn(10)
		a := randCSC(r, m, n1, r.Intn(60))
		sm := materialize(rng.NewBatchXoshiro(7), rng.Uniform11, 100, d1, m)

		ahat := dense.NewMatrix(d1, n1)
		samp := rng.NewSampler(rng.NewBatchXoshiro(7), rng.Uniform11)
		v := make([]float64, d1)
		gen := Kernel3(ahat, a, 100, samp, v)
		if gen != int64(d1)*int64(a.NNZ()) {
			t.Fatalf("Kernel3 generated %d samples, want d1·nnz = %d", gen, d1*a.NNZ())
		}
		want := naiveMul(sm, a)
		if ahat.MaxAbsDiff(want) > 1e-10 {
			t.Fatalf("trial %d: Kernel3 off by %g", trial, ahat.MaxAbsDiff(want))
		}
	}
}

func TestKernel4MatchesExplicitProduct(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		d1, m, n1 := 1+r.Intn(20), 1+r.Intn(30), 1+r.Intn(10)
		a := randCSC(r, m, n1, r.Intn(60))
		slab := a.ToCSR()
		sm := materialize(rng.NewBatchXoshiro(8), rng.Uniform11, 64, d1, m)

		ahat := dense.NewMatrix(d1, n1)
		samp := rng.NewSampler(rng.NewBatchXoshiro(8), rng.Uniform11)
		v := make([]float64, d1)
		gen := Kernel4(ahat, slab, 64, samp, v)
		// Samples = d1 × (number of nonempty rows).
		nonempty := 0
		for i := 0; i < slab.M; i++ {
			if slab.RowPtr[i+1] > slab.RowPtr[i] {
				nonempty++
			}
		}
		if gen != int64(d1)*int64(nonempty) {
			t.Fatalf("Kernel4 generated %d, want %d", gen, d1*nonempty)
		}
		want := naiveMul(sm, a)
		if ahat.MaxAbsDiff(want) > 1e-10 {
			t.Fatalf("trial %d: Kernel4 off by %g", trial, ahat.MaxAbsDiff(want))
		}
	}
}

// Algorithms 3 and 4 anchor the RNG at the same (blockRow, row) checkpoints,
// so with identical accumulation order they must produce bitwise-identical
// results — the invariant that lets users switch kernels freely.
func TestKernel3Kernel4BitwiseIdentical(t *testing.T) {
	f := func(seed uint64, dims [3]uint8, nnzRaw uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		d1 := 1 + int(dims[0])%24
		m := 1 + int(dims[1])%40
		n1 := 1 + int(dims[2])%12
		a := randCSC(r, m, n1, int(nnzRaw)%120)
		slab := a.ToCSR()

		ah3 := dense.NewMatrix(d1, n1)
		s3 := rng.NewSampler(rng.NewBatchXoshiro(seed), rng.Uniform11)
		Kernel3(ah3, a, 5, s3, make([]float64, d1))

		ah4 := dense.NewMatrix(d1, n1)
		s4 := rng.NewSampler(rng.NewBatchXoshiro(seed), rng.Uniform11)
		Kernel4(ah4, slab, 5, s4, make([]float64, d1))

		for k := range ah3.Data {
			if ah3.Data[k] != ah4.Data[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKernelsSkipEmptyRowsAndColumns(t *testing.T) {
	// A matrix with empty rows: Kernel4 must not generate samples for them.
	coo := sparse.NewCOO(10, 4, 3)
	coo.Append(2, 0, 1)
	coo.Append(2, 3, 2)
	coo.Append(7, 1, 3)
	a := coo.ToCSC()
	slab := a.ToCSR()
	d1 := 8
	ahat := dense.NewMatrix(d1, 4)
	s := rng.NewSampler(rng.NewBatchXoshiro(1), rng.Uniform11)
	gen := Kernel4(ahat, slab, 0, s, make([]float64, d1))
	if gen != int64(d1)*2 { // rows 2 and 7 only
		t.Fatalf("Kernel4 generated %d, want %d (2 nonempty rows)", gen, d1*2)
	}
}

// The timed kernels must be observationally identical to the untimed ones —
// same bits, same sample counts — for EVERY distribution. ±1 sketches are
// the regression case: the timed variants used to fall back to the generic
// Fill path while the untimed kernels took the fused sign-bit path, so the
// Table III/V instrumentation measured a kernel production never ran.
func TestTimedKernelsMatchUntimed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// d1 = 67 straddles a 64-bit sign-word boundary in the fused ±1 path.
	d1, m, n1 := 67, 25, 6
	a := randCSC(r, m, n1, 50)
	slab := a.ToCSR()

	run := func(timed bool, alg int, dist rng.Distribution) (*dense.Matrix, int64) {
		ahat := dense.NewMatrix(d1, n1)
		s := rng.NewSampler(rng.NewBatchXoshiro(11), dist)
		v := make([]float64, d1)
		var dt time.Duration
		switch {
		case alg == 3 && timed:
			return ahat, Kernel3Timed(ahat, a, 9, s, v, &dt)
		case alg == 3:
			return ahat, Kernel3(ahat, a, 9, s, v)
		case alg == 4 && timed:
			return ahat, Kernel4Timed(ahat, slab, 9, s, v, &dt)
		default:
			return ahat, Kernel4(ahat, slab, 9, s, v)
		}
	}
	dists := []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.Gaussian, rng.ScaledInt}
	for _, dist := range dists {
		for _, alg := range []int{3, 4} {
			plain, genP := run(false, alg, dist)
			timed, genT := run(true, alg, dist)
			if genP != genT {
				t.Fatalf("%v alg %d: timed generated %d samples, untimed %d",
					dist, alg, genT, genP)
			}
			for k := range plain.Data {
				if plain.Data[k] != timed.Data[k] {
					t.Fatalf("%v alg %d: timed variant changed bits at %d", dist, alg, k)
				}
			}
		}
	}
}

func TestTimedKernelsReportSampleTime(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randCSC(r, 200, 20, 800)
	d1 := 64
	ahat := dense.NewMatrix(d1, 20)
	s := rng.NewSampler(rng.NewBatchXoshiro(12), rng.Uniform11)
	var dt time.Duration
	Kernel3Timed(ahat, a, 0, s, make([]float64, d1), &dt)
	if dt <= 0 {
		t.Fatal("Kernel3Timed reported zero sample time")
	}
}

func TestKernelPregenVariantsMatchRNGKernels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d1, m, n1 := 10, 30, 8
	a := randCSC(r, m, n1, 70)
	slab := a.ToCSR()
	sm := materialize(rng.NewBatchXoshiro(13), rng.Uniform11, 3, d1, m)

	ahRNG := dense.NewMatrix(d1, n1)
	s := rng.NewSampler(rng.NewBatchXoshiro(13), rng.Uniform11)
	Kernel3(ahRNG, a, 3, s, make([]float64, d1))

	ah3 := dense.NewMatrix(d1, n1)
	Kernel3Pregen(ah3, a, sm)
	if ah3.MaxAbsDiff(ahRNG) != 0 {
		t.Fatal("Kernel3Pregen != Kernel3 with same S")
	}

	ah4 := dense.NewMatrix(d1, n1)
	Kernel4Pregen(ah4, slab, sm)
	if ah4.MaxAbsDiff(ahRNG) != 0 {
		t.Fatal("Kernel4Pregen != Kernel3 with same S")
	}
}

func TestKernelDimensionPanics(t *testing.T) {
	a := randCSC(rand.New(rand.NewSource(8)), 5, 4, 6)
	s := rng.NewSampler(rng.NewBatchXoshiro(1), rng.Uniform11)
	cases := []func(){
		func() { Kernel3(dense.NewMatrix(3, 9), a, 0, s, make([]float64, 3)) },
		func() { Kernel3(dense.NewMatrix(3, 4), a, 0, s, make([]float64, 1)) },
		func() { Kernel4(dense.NewMatrix(3, 9), a.ToCSR(), 0, s, make([]float64, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAxpyTailLengths(t *testing.T) {
	for n := 0; n <= 9; n++ {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i + 1)
			y[i] = 1
		}
		axpy(2, x, y)
		for i := range y {
			if y[i] != 1+2*float64(i+1) {
				t.Fatalf("n=%d: y[%d] = %g", n, i, y[i])
			}
		}
	}
}

// The fused ±1 sign-bit paths must agree bitwise with the unfused ±1
// vector semantics across odd block heights and word boundaries.
func TestFusedRademacherPaths(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, d1 := range []int{1, 3, 63, 64, 65, 100, 130} {
		a := randCSC(r, 40, 8, 60)
		slab := a.ToCSR()
		sm := materialize(rng.NewBatchXoshiro(21), rng.Rademacher, 7, d1, 40)

		ah3 := dense.NewMatrix(d1, 8)
		s3 := rng.NewSampler(rng.NewBatchXoshiro(21), rng.Rademacher)
		Kernel3(ah3, a, 7, s3, make([]float64, d1))
		want := naiveMul(sm, a)
		if ah3.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("d1=%d: fused Kernel3 ±1 off by %g", d1, ah3.MaxAbsDiff(want))
		}

		ah4 := dense.NewMatrix(d1, 8)
		s4 := rng.NewSampler(rng.NewBatchXoshiro(21), rng.Rademacher)
		Kernel4(ah4, slab, 7, s4, make([]float64, d1))
		if ah4.MaxAbsDiff(ah3) != 0 {
			t.Fatalf("d1=%d: fused Kernel4 ±1 differs from Kernel3", d1)
		}
	}
}

// The fused path must also match the generic fillRademacher consumed through
// a sampler with a source that lacks the fused interfaces (Philox).
func TestFusedRademacherMatchesGenericSource(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	a := randCSC(r, 30, 6, 40)
	d1 := 50
	sm := materialize(rng.NewPhilox4x32(5), rng.Rademacher, 3, d1, 30)
	ah := dense.NewMatrix(d1, 6)
	s := rng.NewSampler(rng.NewPhilox4x32(5), rng.Rademacher)
	Kernel3(ah, a, 3, s, make([]float64, d1))
	want := naiveMul(sm, a)
	if ah.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("philox ±1 kernel off by %g", ah.MaxAbsDiff(want))
	}
}
