// Package kernels implements the paper's compute kernels: the six toy loop
// orderings of Algorithm 2 (used by tests and the loop-order ablation), the
// production kernels with on-the-fly random number generation — Algorithm 3
// (variant kji over CSC) and Algorithm 4 (variant jki over blocked CSR) —
// and the pre-generated-S variants used as baselines and by Figure 4.
package kernels

import (
	"fmt"
	"math"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// LoopOrder names one of the six orderings of Algorithm 2's three loops
// (i over rows of L, j over the inner dimension, k over columns of R).
type LoopOrder int

// The six loop orderings of §II-B.
const (
	OrderIJK LoopOrder = iota
	OrderIKJ
	OrderKIJ
	OrderJIK
	OrderJKI
	OrderKJI
)

// String implements fmt.Stringer for LoopOrder.
func (o LoopOrder) String() string {
	switch o {
	case OrderIJK:
		return "ijk"
	case OrderIKJ:
		return "ikj"
	case OrderKIJ:
		return "kij"
	case OrderJIK:
		return "jik"
	case OrderJKI:
		return "jki"
	case OrderKJI:
		return "kji"
	default:
		return fmt.Sprintf("LoopOrder(%d)", int(o))
	}
}

// AllLoopOrders lists every ordering for the ablation bench.
func AllLoopOrders() []LoopOrder {
	return []LoopOrder{OrderIJK, OrderIKJ, OrderKIJ, OrderJIK, OrderJKI, OrderKJI}
}

// MultiplyLoopOrder computes G += L·R with the chosen loop ordering over a
// pre-materialised dense L (d1×m1). R is supplied in both CSC and CSR form;
// each ordering walks whichever format its access pattern needs (§II-B rules
// out some orderings precisely because of this). G must be d1×n1.
func MultiplyLoopOrder(order LoopOrder, l *dense.Matrix, rcsc *sparse.CSC, rcsr *sparse.CSR, g *dense.Matrix) {
	d1, m1 := l.Rows, l.Cols
	if rcsc.M != m1 || g.Rows != d1 || g.Cols != rcsc.N {
		panic(fmt.Sprintf("kernels: dims L=%dx%d R=%dx%d G=%dx%d",
			d1, m1, rcsc.M, rcsc.N, g.Rows, g.Cols))
	}
	switch order {
	case OrderIJK:
		// Row i of G = Σ_j L[i,j] · (row j of R): sums sparse rows, the
		// ordering §II-B rules out as inefficient for any sparse format.
		for i := 0; i < d1; i++ {
			for j := 0; j < m1; j++ {
				lij := l.At(i, j)
				if lij == 0 {
					continue
				}
				cols, vals := rcsr.RowView(j)
				for t, k := range cols {
					g.Set(i, k, g.At(i, k)+lij*vals[t])
				}
			}
		}
	case OrderIKJ:
		// G[i,k] = ℓ̂ᵢ·r_k streaming G row-major; needs noncontiguous
		// gathers from row i of L at the sparse positions of column k.
		for i := 0; i < d1; i++ {
			for k := 0; k < rcsc.N; k++ {
				rows, vals := rcsc.ColView(k)
				var s float64
				for t, j := range rows {
					s += l.At(i, j) * vals[t]
				}
				g.Set(i, k, g.At(i, k)+s)
			}
		}
	case OrderKIJ:
		// Same dot products, streaming G column-major.
		for k := 0; k < rcsc.N; k++ {
			rows, vals := rcsc.ColView(k)
			gk := g.Col(k)
			for i := 0; i < d1; i++ {
				var s float64
				for t, j := range rows {
					s += l.At(i, j) * vals[t]
				}
				gk[i] += s
			}
		}
	case OrderJIK:
		// Rank-1 updates ℓ_j·r̂ⱼ applied row-wise (Figure 1): for each i,
		// scatter into the sparse positions of row j — noncontiguous G.
		for j := 0; j < m1; j++ {
			cols, vals := rcsr.RowView(j)
			if len(cols) == 0 {
				continue
			}
			lj := l.Col(j)
			for i := 0; i < d1; i++ {
				lij := lj[i]
				for t, k := range cols {
					g.Set(i, k, g.At(i, k)+lij*vals[t])
				}
			}
		}
	case OrderJKI:
		// Rank-1 updates applied column-wise (Figure 3 / Algorithm 4's
		// ordering): one column of L reused across the whole row of R.
		for j := 0; j < m1; j++ {
			cols, vals := rcsr.RowView(j)
			if len(cols) == 0 {
				continue
			}
			lj := l.Col(j)
			for t, k := range cols {
				axpy(vals[t], lj, g.Col(k))
			}
		}
	case OrderKJI:
		// Column k of G = Σ linear combination of columns of L picked by
		// the sparsity of column k of R (Figure 2 / Algorithm 3's order).
		for k := 0; k < rcsc.N; k++ {
			rows, vals := rcsc.ColView(k)
			gk := g.Col(k)
			for t, j := range rows {
				axpy(vals[t], l.Col(j), gk)
			}
		}
	default:
		panic(fmt.Sprintf("kernels: bad loop order %d", order))
	}
}

// axpy computes y += a*x with 4-way unrolling. This is the hot inner loop of
// every column-wise kernel; the unroll stands in for the FMA vectorisation
// the paper gets from LoopVectorization.jl.
func axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("kernels: axpy length mismatch")
	}
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// axpySign computes y[i] += ±a with the sign taken from bit i of the raw
// word stream (bit 0 → +a, matching the Rademacher convention 1−2·bit).
// No multiply and no materialised ±1 vector: this is the fused fast path of
// the paper's ±1 distribution. The inner groups of four never straddle a
// word because 64 is a multiple of 4.
func axpySign(a float64, words []uint64, y []float64) {
	abits := math.Float64bits(a)
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		w := words[i>>6] >> uint(i&63)
		out := y[i : i+4 : i+4]
		out[0] += math.Float64frombits(abits ^ ((w & 1) << 63))
		out[1] += math.Float64frombits(abits ^ ((w >> 1 & 1) << 63))
		out[2] += math.Float64frombits(abits ^ ((w >> 2 & 1) << 63))
		out[3] += math.Float64frombits(abits ^ ((w >> 3 & 1) << 63))
	}
	for ; i < n; i++ {
		bit := (words[i>>6] >> uint(i&63)) & 1
		y[i] += math.Float64frombits(abits ^ (bit << 63))
	}
}
