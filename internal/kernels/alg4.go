package kernels

import (
	"fmt"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// Kernel4 is Algorithm 4: compute-kernel variant jki with on-the-fly random
// number generation over one blocked-CSR slab.
//
// It updates Âsub += S[i0:i0+d1, :]·Asub in place, where Âsub is the dense
// d1×n1 view ahat and slab is the m×n1 CSR block (one vertical slab of the
// BlockedCSR structure). blockRow identifies the block-row offset of Âsub.
//
// The generated column of S is reused across the whole sparse row
// (a rank-1 update), so only rows with at least one nonzero trigger
// generation: the sample count drops from d·nnz to at most d·m·⌈n/b_n⌉
// (§III-B), at the price of sparsity-dependent access to the columns of
// Âsub.
//
// Returns the number of random samples generated.
func Kernel4(ahat *dense.Matrix, slab *sparse.CSR, blockRow uint64, s *rng.Sampler, v []float64) int64 {
	d1, n1 := ahat.Rows, ahat.Cols
	if slab.N != n1 {
		panic(fmt.Sprintf("kernels: Kernel4 Âsub cols %d != slab cols %d", n1, slab.N))
	}
	if len(v) < d1 {
		panic(fmt.Sprintf("kernels: Kernel4 scratch len %d < d1=%d", len(v), d1))
	}
	v = v[:d1]
	var generated int64
	if s.Dist() == rng.Rademacher {
		// Fused ±1 path: one bit per entry, the generated words reused
		// across the whole sparse row exactly like v would be.
		for j := 0; j < slab.M; j++ {
			cols, vals := slab.RowView(j)
			if len(cols) == 0 {
				continue
			}
			s.SetState(blockRow, uint64(j))
			w := s.RawWords(d1)
			generated += int64(d1)
			for t, k := range cols {
				axpySign(vals[t], w, ahat.Col(k))
			}
		}
		return generated
	}
	for j := 0; j < slab.M; j++ {
		cols, vals := slab.RowView(j)
		if len(cols) == 0 {
			continue
		}
		s.SetState(blockRow, uint64(j))
		s.Fill(v)
		generated += int64(d1)
		for t, k := range cols {
			axpy(vals[t], v, ahat.Col(k))
		}
	}
	return generated
}

// Kernel4Timed is Kernel4 with the sampling phase timed separately
// (Table III/V breakdowns).
func Kernel4Timed(ahat *dense.Matrix, slab *sparse.CSR, blockRow uint64, s *rng.Sampler, v []float64, sampleTime *time.Duration) int64 {
	d1, n1 := ahat.Rows, ahat.Cols
	if slab.N != n1 {
		panic(fmt.Sprintf("kernels: Kernel4Timed Âsub cols %d != slab cols %d", n1, slab.N))
	}
	v = v[:d1]
	var generated int64
	var sampled time.Duration
	if s.Dist() == rng.Rademacher {
		// Same fused ±1 path as the untimed kernel (bit-for-bit identical
		// output) with generation under the timer — see Kernel3Timed.
		for j := 0; j < slab.M; j++ {
			cols, vals := slab.RowView(j)
			if len(cols) == 0 {
				continue
			}
			t0 := time.Now()
			s.SetState(blockRow, uint64(j))
			w := s.RawWords(d1)
			sampled += time.Since(t0)
			generated += int64(d1)
			for t, k := range cols {
				axpySign(vals[t], w, ahat.Col(k))
			}
		}
		*sampleTime += sampled
		return generated
	}
	for j := 0; j < slab.M; j++ {
		cols, vals := slab.RowView(j)
		if len(cols) == 0 {
			continue
		}
		t0 := time.Now()
		s.SetState(blockRow, uint64(j))
		s.Fill(v)
		sampled += time.Since(t0)
		generated += int64(d1)
		for t, k := range cols {
			axpy(vals[t], v, ahat.Col(k))
		}
	}
	*sampleTime += sampled
	return generated
}

// Kernel4Pregen is the "pre-generate S in memory" variant of Figure 4: the
// same jki loop structure as Kernel4, but columns of S are read from a
// materialised d1×m column-major matrix instead of being generated. Used to
// demonstrate that regeneration beats re-reading once memory traffic
// dominates.
func Kernel4Pregen(ahat *dense.Matrix, slab *sparse.CSR, sblock *dense.Matrix) {
	d1, n1 := ahat.Rows, ahat.Cols
	if slab.N != n1 {
		panic(fmt.Sprintf("kernels: Kernel4Pregen Âsub cols %d != slab cols %d", n1, slab.N))
	}
	if sblock.Rows != d1 || sblock.Cols != slab.M {
		panic(fmt.Sprintf("kernels: Kernel4Pregen S block %dx%d want %dx%d",
			sblock.Rows, sblock.Cols, d1, slab.M))
	}
	for j := 0; j < slab.M; j++ {
		cols, vals := slab.RowView(j)
		if len(cols) == 0 {
			continue
		}
		sj := sblock.Col(j)
		for t, k := range cols {
			axpy(vals[t], sj, ahat.Col(k))
		}
	}
}

// Kernel3Pregen is the pre-generated-S counterpart of Kernel3 (kji over a
// CSC slab, reading S columns from memory).
func Kernel3Pregen(ahat *dense.Matrix, asub *sparse.CSC, sblock *dense.Matrix) {
	d1, n1 := ahat.Rows, ahat.Cols
	if asub.N != n1 {
		panic(fmt.Sprintf("kernels: Kernel3Pregen Âsub cols %d != Asub cols %d", n1, asub.N))
	}
	if sblock.Rows != d1 || sblock.Cols != asub.M {
		panic(fmt.Sprintf("kernels: Kernel3Pregen S block %dx%d want %dx%d",
			sblock.Rows, sblock.Cols, d1, asub.M))
	}
	for k := 0; k < n1; k++ {
		rows, vals := asub.ColView(k)
		if len(rows) == 0 {
			continue
		}
		col := ahat.Col(k)
		for t, j := range rows {
			axpy(vals[t], sblock.Col(j), col)
		}
	}
}
