package baseline

import (
	"math/rand"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

func setup(t *testing.T, seed int64) (*dense.Matrix, *sparse.CSC, *dense.Matrix) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	d, m, n := 6+r.Intn(10), 8+r.Intn(20), 4+r.Intn(10)
	s := dense.NewMatrix(d, m)
	for k := range s.Data {
		s.Data[k] = r.NormFloat64()
	}
	a := sparse.RandomUniform(m, n, 0.2, seed)
	want := dense.NewMatrix(d, n)
	dense.Gemm(1, s, a.ToDense(), 0, want)
	return s, a, want
}

func TestMKLStyle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, a, want := setup(t, seed)
		at := a.Transpose().ToCSR()
		got := dense.NewMatrix(s.Rows, a.N)
		MKLStyle(s, at, got)
		if got.MaxAbsDiff(want) > 1e-10 {
			t.Fatalf("seed %d: MKLStyle off by %g", seed, got.MaxAbsDiff(want))
		}
	}
}

func TestEigenStyle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, a, want := setup(t, seed)
		got := dense.NewMatrix(s.Rows, a.N)
		EigenStyle(s, a, got)
		if got.MaxAbsDiff(want) > 1e-10 {
			t.Fatalf("seed %d: EigenStyle off by %g", seed, got.MaxAbsDiff(want))
		}
	}
}

func TestJuliaStyle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, a, want := setup(t, seed)
		got := dense.NewMatrix(s.Rows, a.N)
		JuliaStyle(s, a, got)
		if got.MaxAbsDiff(want) > 1e-10 {
			t.Fatalf("seed %d: JuliaStyle off by %g", seed, got.MaxAbsDiff(want))
		}
	}
}

func TestNaive(t *testing.T) {
	s, a, want := setup(t, 99)
	got := dense.NewMatrix(s.Rows, a.N)
	Naive(s, a, got)
	if got.MaxAbsDiff(want) > 1e-10 {
		t.Fatal("Naive disagrees with Gemm oracle")
	}
}

func TestBaselinesOverwriteNotAccumulate(t *testing.T) {
	s, a, want := setup(t, 5)
	got := dense.NewMatrix(s.Rows, a.N)
	got.Fill(123)
	EigenStyle(s, a, got)
	if got.MaxAbsDiff(want) > 1e-10 {
		t.Fatal("EigenStyle accumulated into stale output")
	}
	got.Fill(-7)
	MKLStyle(s, a.Transpose().ToCSR(), got)
	if got.MaxAbsDiff(want) > 1e-10 {
		t.Fatal("MKLStyle accumulated into stale output")
	}
}

func TestBaselineDimensionPanics(t *testing.T) {
	s := dense.NewMatrix(4, 8)
	a := sparse.RandomUniform(9, 5, 0.3, 1) // m=9 != s.Cols=8
	out := dense.NewMatrix(4, 5)
	for i, fn := range []func(){
		func() { EigenStyle(s, a, out) },
		func() { JuliaStyle(s, a, out) },
		func() { MKLStyle(s, a.Transpose().ToCSR(), out) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
