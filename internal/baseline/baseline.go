// Package baseline implements the library-style SpMM competitors of
// Tables II and IV: dense×sparse multiplication with a pre-generated,
// materialised S. These stand in for Intel MKL, Eigen and Julia's
// SparseArrays (see DESIGN.md §1): each mirrors the loop structure and
// storage the corresponding library uses for this operation. They share the
// defining property the paper contrasts against — every use of an entry of
// S is a memory read of a d×m matrix, not a regeneration — which is what
// makes them lose to Algorithms 3/4 once S outgrows the cache.
package baseline

import (
	"fmt"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// MKLStyle computes Â = S·A the way the paper drives MKL: since MKL only
// supports sparse-times-dense, the transposed product Âᵀ = Aᵀ·Sᵀ is
// computed with Aᵀ in CSR and S row-major. (A d×m column-major S is exactly
// an m×d row-major Sᵀ, so the caller passes the usual S.) An
// inspector pass over Aᵀ (row-length histogram, MKL's inspector-executor
// hint stage) precedes execution.
func MKLStyle(s *dense.Matrix, at *sparse.CSR, ahat *dense.Matrix) {
	d := s.Rows
	if at.N != s.Cols || ahat.Rows != d || ahat.Cols != at.M {
		panic(fmt.Sprintf("baseline: MKLStyle dims S=%dx%d Aᵀ=%dx%d Â=%dx%d",
			s.Rows, s.Cols, at.M, at.N, ahat.Rows, ahat.Cols))
	}
	// Inspector stage: estimate the work distribution (MKL uses this to
	// pick an execution schedule; we keep the pass to charge the same
	// analysis cost the inspector-executor model pays).
	maxRow := 0
	for i := 0; i < at.M; i++ {
		if l := at.RowPtr[i+1] - at.RowPtr[i]; l > maxRow {
			maxRow = l
		}
	}
	_ = maxRow
	ahat.Zero()
	// Executor: row i of Âᵀ = Σ_k Aᵀ[i,k] · (row k of Sᵀ); in our
	// column-major view, Â.Col(i) += v · S.Col(k).
	for i := 0; i < at.M; i++ {
		cols, vals := at.RowView(i)
		out := ahat.Col(i)
		for t, k := range cols {
			dense.Axpy(vals[t], s.Col(k), out)
		}
	}
}

// EigenStyle computes Â = S·A the way Eigen's dense·sparse product does:
// iterate the CSC columns of A and accumulate scaled columns of the dense
// left operand into the column-major result.
func EigenStyle(s *dense.Matrix, a *sparse.CSC, ahat *dense.Matrix) {
	d := s.Rows
	if a.M != s.Cols || ahat.Rows != d || ahat.Cols != a.N {
		panic(fmt.Sprintf("baseline: EigenStyle dims S=%dx%d A=%dx%d Â=%dx%d",
			s.Rows, s.Cols, a.M, a.N, ahat.Rows, ahat.Cols))
	}
	ahat.Zero()
	for k := 0; k < a.N; k++ {
		rows, vals := a.ColView(k)
		out := ahat.Col(k)
		for t, j := range rows {
			dense.Axpy(vals[t], s.Col(j), out)
		}
	}
}

// JuliaStyle computes Â = S·A the way Julia's SparseArrays mul! does for
// dense×CSC: the same column-driven accumulation as Eigen but with the
// dense operand walked through an explicit inner index loop rather than an
// axpy call (mirroring the generic broadcast kernel Julia lowers to when
// LoopVectorization is not applied to this product).
func JuliaStyle(s *dense.Matrix, a *sparse.CSC, ahat *dense.Matrix) {
	d := s.Rows
	if a.M != s.Cols || ahat.Rows != d || ahat.Cols != a.N {
		panic(fmt.Sprintf("baseline: JuliaStyle dims S=%dx%d A=%dx%d Â=%dx%d",
			s.Rows, s.Cols, a.M, a.N, ahat.Rows, ahat.Cols))
	}
	ahat.Zero()
	for k := 0; k < a.N; k++ {
		rows, vals := a.ColView(k)
		out := ahat.Col(k)
		for t, j := range rows {
			v := vals[t]
			sj := s.Col(j)
			for i := 0; i < d; i++ {
				out[i] += v * sj[i]
			}
		}
	}
}

// Naive computes Â = S·A with the dense triple loop, treating A as dense.
// It is the correctness oracle for tests and the (deliberately) worst
// baseline.
func Naive(s *dense.Matrix, a *sparse.CSC, ahat *dense.Matrix) {
	d := s.Rows
	ad := a.ToDense()
	if a.M != s.Cols || ahat.Rows != d || ahat.Cols != a.N {
		panic(fmt.Sprintf("baseline: Naive dims S=%dx%d A=%dx%d Â=%dx%d",
			s.Rows, s.Cols, a.M, a.N, ahat.Rows, ahat.Cols))
	}
	dense.Gemm(1, s, ad, 0, ahat)
}
