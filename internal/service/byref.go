package service

import (
	"container/list"
	"context"
	"sync"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// This file is the content-addressed serving surface (DESIGN.md §12):
//
//	PutMatrix      — upload A once, keyed by its fingerprint.
//	SketchRefInto  — sketch by fingerprint: the request carries 32 bytes
//	                 instead of O(nnz), and the answer is bit-identical to
//	                 the inline path for the same (A, d, opts).
//	PatchMatrix    — apply a sparse ΔA: the store gains A+ΔA under its new
//	                 fingerprint, and every cached sketch of A is advanced
//	                 to Â + S·ΔA at cost O(nnz(ΔA)) — no full resketch.
//
// The sketch cache under SketchRefInto is what PatchMatrix advances: it
// maps (fingerprint, d, opts) to a finished Â, so a repeat by-ref request
// costs one dense copy and a post-PATCH request for the new fingerprint is
// served from the incrementally updated Â without ever building a plan
// over the merged matrix. Entries are immutable once inserted (updates
// clone), which is what lets lookups hand the matrix out under no lock.

// DefaultSketchCacheBytes is the Â-cache budget when Config.SketchCacheBytes
// is 0: 64 MiB ≈ a few hundred bench-sized sketches.
const DefaultSketchCacheBytes = 64 << 20

// sketchEntry is one cached Â. The matrix is immutable: PatchMatrix
// derives a new entry from a clone rather than editing in place.
type sketchEntry struct {
	key   planKey
	ahat  *dense.Matrix
	bytes int64
	elem  *list.Element
}

// sketchCache is a byte-bounded LRU of computed sketches. Unlike the plan
// cache there is no single-flight: two racing misses both execute and the
// second insert wins harmlessly (same key ⇒ bit-identical Â).
type sketchCache struct {
	max int64

	mu      sync.Mutex
	entries map[planKey]*sketchEntry
	lru     *list.List
	bytes   int64

	evictions *obs.Counter
}

func newSketchCache(maxBytes int64, r *obs.Registry) *sketchCache {
	if maxBytes == 0 {
		maxBytes = DefaultSketchCacheBytes
	}
	c := &sketchCache{
		max:     maxBytes,
		entries: make(map[planKey]*sketchEntry),
		lru:     list.New(),
	}
	if r != nil {
		c.evictions = r.Counter("sketchsp_ref_sketch_cache_evictions_total",
			"Cached sketches reclaimed by the Â-cache byte budget.")
		r.GaugeFunc("sketchsp_ref_sketch_cache_bytes",
			"Summed bytes of cached sketches Â.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return c.bytes
			})
		r.GaugeFunc("sketchsp_ref_sketch_cache_entries",
			"Cached sketches currently resident.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(c.lru.Len())
			})
	}
	return c
}

// get returns the cached Â for k, or nil. The returned matrix is shared and
// immutable — callers copy out of it, never write into it.
func (c *sketchCache) get(k planKey) *dense.Matrix {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e.ahat
}

// put inserts ahat under k, taking ownership (callers pass a private copy).
// An existing entry is replaced — by-ref misses can race, and both compute
// the same bits, so last-write-wins is sound.
func (c *sketchCache) put(k planKey, ahat *dense.Matrix) {
	bytes := ahat.MemoryBytes()
	c.mu.Lock()
	if old, ok := c.entries[k]; ok {
		c.lru.Remove(old.elem)
		delete(c.entries, k)
		c.bytes -= old.bytes
	}
	e := &sketchEntry{key: k, ahat: ahat, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.bytes += bytes
	for c.max >= 0 && c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*sketchEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.bytes -= old.bytes
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
}

// entriesFor snapshots every cached sketch of the matrix fp — the set
// PatchMatrix advances. The matrices are shared immutable references.
func (c *sketchCache) entriesFor(fp sparse.Fingerprint) []sketchEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []sketchEntry
	for k, e := range c.entries {
		if k.fp == fp {
			out = append(out, sketchEntry{key: k, ahat: e.ahat, bytes: e.bytes})
		}
	}
	return out
}

// refMetrics is the by-reference surface's own metric family. It is kept
// apart from svcMetrics so the sketchsp_service_* set stays exactly the
// inline serving story (TestStatsMetricsReconcile pins its cardinality).
type refMetrics struct {
	sketchHits   *obs.Counter
	sketchMisses *obs.Counter
	patches      *obs.Counter
	deltaUpdates *obs.Counter
}

func newRefMetrics(r *obs.Registry) *refMetrics {
	return &refMetrics{
		sketchHits: r.Counter("sketchsp_ref_sketch_hits_total",
			"By-reference requests served from the Â cache (no execute)."),
		sketchMisses: r.Counter("sketchsp_ref_sketch_misses_total",
			"By-reference requests that executed a plan."),
		patches: r.Counter("sketchsp_ref_patches_total",
			"Applied matrix deltas (ΔA merged into a new stored matrix)."),
		deltaUpdates: r.Counter("sketchsp_ref_delta_sketch_updates_total",
			"Cached sketches advanced incrementally by Â += S·ΔA."),
	}
}

// Store exposes the content-addressed matrix store (stats endpoints, the
// shard coordinator's residency checks, tests).
func (s *Service) Store() *store.Store { return s.store }

// PutMatrix uploads a into the content-addressed store and returns its
// identity. Idempotent by content: re-uploading a resident matrix is a
// cheap fingerprint lookup (Info.Created reports which happened). The
// store deep-copies, so the caller keeps ownership of a.
func (s *Service) PutMatrix(ctx context.Context, a *sparse.CSC) (store.Info, error) {
	if err := s.liveErr(); err != nil {
		return store.Info{}, err
	}
	if a == nil {
		return store.Info{}, core.ErrNilMatrix
	}
	if err := ctx.Err(); err != nil {
		return store.Info{}, err
	}
	return s.store.Put(a)
}

// SketchRefInto computes Â = S·A for the stored matrix fp into the caller's
// d×n matrix. The bits are identical to SketchInto with the matrix inline —
// by-reference changes what crosses the wire, never the answer (the
// differential suite pins this). A fingerprint that is not resident fails
// with store.ErrNotFound; the remedy is PutMatrix then retry, which
// internal/client does automatically.
//
// Repeat requests for the same (fp, d, opts) are served from the sketch
// cache without executing; the first request populates it.
func (s *Service) SketchRefInto(ctx context.Context, ahat *dense.Matrix, fp sparse.Fingerprint, d int, opts core.Options) (core.Stats, error) {
	if d <= 0 {
		return core.Stats{}, core.ErrInvalidSketchSize
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if err := s.admit(ctx); err != nil {
		return core.Stats{}, err
	}
	defer s.exit()

	k := planKey{fp: fp, d: d, opts: opts}
	if cached := s.sketches.get(k); cached != nil {
		ahat.CopyFrom(cached)
		s.refMet.sketchHits.Inc()
		return core.Stats{}, nil
	}
	s.refMet.sketchMisses.Inc()

	p, e, err := s.plan(ctx, k, planSrc{store: s.store, fp: fp})
	if err != nil {
		return core.Stats{}, err
	}
	defer p.Release()
	st, err := p.ExecuteContext(ctx, ahat)
	if err != nil {
		if ctx.Err() != nil {
			s.met.cancels.Inc()
		}
		return core.Stats{}, err
	}
	e.record(st)
	s.sketches.put(k, ahat.Clone())
	return st, nil
}

// SketchRef is SketchRefInto into a fresh d×n matrix; it resolves n from
// the fingerprint (no store round-trip needed — shape is part of identity).
func (s *Service) SketchRef(ctx context.Context, fp sparse.Fingerprint, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	ahat := dense.NewMatrix(maxInt(d, 0), fp.N)
	st, err := s.SketchRefInto(ctx, ahat, fp, d, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return ahat, st, nil
}

// PatchMatrix applies the sparse update ΔA to the stored matrix fp: the
// merged A+ΔA enters the store under its own (content-derived) fingerprint,
// which the returned Info reports. The original matrix stays resident and
// addressable — content addressing has no in-place mutation, so nothing is
// invalidated.
//
// Every sketch of A in the Â cache is advanced incrementally:
//
//	Â(A+ΔA) = S·A + S·ΔA = Â(A) + S·ΔA
//
// computed with a plan over ΔA alone — cost O(nnz(ΔA)), not O(nnz(A)).
// A follow-up SketchRefInto for the new fingerprint under the same (d,
// opts) is then an Â-cache hit: no plan is ever built over the merged
// matrix (the metamorphic suite pins this through the build counters).
// Linearity holds exactly over the reals; in floats the incremental sum
// rounds once per touched entry, and is bit-equal to the full resketch
// whenever the products involved are exactly representable (the integer
// regime the suite uses).
func (s *Service) PatchMatrix(ctx context.Context, fp sparse.Fingerprint, delta *sparse.CSC) (store.Info, error) {
	if err := s.liveErr(); err != nil {
		return store.Info{}, err
	}
	if delta == nil {
		return store.Info{}, core.ErrNilMatrix
	}
	if err := s.admit(ctx); err != nil {
		return store.Info{}, err
	}
	defer s.exit()

	h, err := s.store.Get(fp)
	if err != nil {
		return store.Info{}, err
	}
	defer h.Release()
	if err := delta.Validate(); err != nil {
		return store.Info{}, err
	}
	sum, err := sparse.Add(h.Matrix(), delta)
	if err != nil {
		return store.Info{}, err
	}
	// sparse.Add allocates the merge fresh, so hand it over without another
	// copy. If the delta cancels to an already-stored content (empty ΔA
	// included), this is a duplicate put and Created=false.
	info, err := s.store.PutOwned(sum)
	if err != nil {
		return store.Info{}, err
	}
	s.refMet.patches.Inc()

	// Advance the cached sketches. Each uses an ephemeral plan over ΔA with
	// the *same options* as its cache key: BlockD resolution depends only on
	// (opts, d) and ΔA shares A's shape, so the sampler partition — and
	// hence every generated S entry — matches the one the cached Â saw.
	for _, se := range s.sketches.entriesFor(fp) {
		if err := ctx.Err(); err != nil {
			return info, err
		}
		next, uerr := advanceSketch(se.ahat, delta, se.key.d, se.key.opts)
		if uerr != nil {
			// The merged matrix is stored and correct; a failed advance only
			// costs the next request a full (cache-miss) resketch.
			continue
		}
		s.sketches.put(planKey{fp: info.Fp, d: se.key.d, opts: se.key.opts}, next)
		s.refMet.deltaUpdates.Inc()
	}
	return info, nil
}

// advanceSketch returns Â + S·ΔA as a fresh matrix, leaving ahat untouched.
func advanceSketch(ahat *dense.Matrix, delta *sparse.CSC, d int, opts core.Options) (*dense.Matrix, error) {
	p, err := core.NewPlan(delta, d, opts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	inc := dense.NewMatrix(ahat.Rows, ahat.Cols)
	if _, err := p.Execute(inc); err != nil {
		return nil, err
	}
	next := ahat.Clone()
	for j := 0; j < next.Cols; j++ {
		dst, src := next.Col(j), inc.Col(j)
		for i, v := range src {
			// Skip exact-zero increments: untouched entries keep their bit
			// pattern (adding +0.0 would flip a cached -0.0 to +0.0 and
			// break the bit-identity contract with the inline path).
			if v != 0 {
				dst[i] += v
			}
		}
	}
	return next, nil
}

// liveErr reports ErrClosed after Close.
func (s *Service) liveErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}
