package service

import (
	"testing"
	"time"
)

// TestLatencyQuantilesPinned records a known latency population into the
// live histogram and pins the quantile helper's answers against the exact
// bucket edges those latencies must land on. The histogram reports *upper
// bounds* — the top edge of the bucket the quantile falls in — so every
// expectation below is a power-of-two microsecond value.
//
// Bucket math refresher: latency v lands in bucket i = bits.Len64(v/1µs),
// whose ceiling is 1µs·2^i. So 1.5µs → bucket 1 (edge 2µs), 3µs → bucket 2
// (edge 4µs), 100µs → bucket 7 (edge 128µs), 5ms → bucket 13 (edge
// 8.192ms), 30s → bucket 25 (edge ~33.55s).
func TestLatencyQuantilesPinned(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	record := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			s.met.latency.Observe(d)
		}
	}
	record(1500*time.Nanosecond, 50) // bucket 1, cum 50
	record(3*time.Microsecond, 30)   // bucket 2, cum 80
	record(100*time.Microsecond, 15) // bucket 7, cum 95
	record(5*time.Millisecond, 4)    // bucket 13, cum 99
	record(30*time.Second, 1)        // bucket 25, cum 100

	st := s.Stats()
	if st.Requests != 100 {
		t.Fatalf("Requests = %d, want 100", st.Requests)
	}

	edge := func(i int) time.Duration { return time.Duration(1000 << uint(i)) }
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.01, edge(1)},  // the very first request is in bucket 1
		{0.50, edge(1)},  // cum reaches 50 exactly at bucket 1
		{0.51, edge(2)},  // one past the 2µs bucket
		{0.80, edge(2)},  // cum reaches 80 at bucket 2
		{0.90, edge(7)},  // 80 < 90 <= 95 → 128µs bucket
		{0.95, edge(7)},  // cum reaches 95 at bucket 7
		{0.99, edge(13)}, // 95 < 99 <= 99 → 8.192ms bucket
		{1.00, edge(25)}, // the 30s outlier's bucket edge
	}
	for _, c := range cases {
		if got := st.LatencyQuantile(c.q); got != c.want {
			t.Errorf("LatencyQuantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}

	// The snapshot's P-fields are the same helper applied at Stats() time.
	if st.LatencyP50 != edge(1) || st.LatencyP90 != edge(7) ||
		st.LatencyP95 != edge(7) || st.LatencyP99 != edge(13) {
		t.Errorf("snapshot fields p50=%v p90=%v p95=%v p99=%v",
			st.LatencyP50, st.LatencyP90, st.LatencyP95, st.LatencyP99)
	}
	if st.LatencyMax != 30*time.Second {
		t.Errorf("LatencyMax = %v, want 30s", st.LatencyMax)
	}
	wantMean := (50*1500*time.Nanosecond + 30*3*time.Microsecond +
		15*100*time.Microsecond + 4*5*time.Millisecond + 30*time.Second) / 100
	if st.LatencyMean != wantMean {
		t.Errorf("LatencyMean = %v, want %v", st.LatencyMean, wantMean)
	}

	// Raw bucket snapshot: exactly the five populated buckets.
	wantBuckets := map[int]int64{1: 50, 2: 30, 7: 15, 13: 4, 25: 1}
	for i, c := range st.LatencyHist {
		if c != wantBuckets[i] {
			t.Errorf("LatencyHist[%d] = %d, want %d", i, c, wantBuckets[i])
		}
	}
}

func TestLatencyQuantileEmpty(t *testing.T) {
	var st Stats
	if got := st.LatencyQuantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestBucketCeiling(t *testing.T) {
	if BucketCeiling(0) != time.Microsecond {
		t.Errorf("BucketCeiling(0) = %v", BucketCeiling(0))
	}
	if BucketCeiling(10) != 1024*time.Microsecond {
		t.Errorf("BucketCeiling(10) = %v", BucketCeiling(10))
	}
	// Clamped at both ends.
	if BucketCeiling(-5) != BucketCeiling(0) || BucketCeiling(99) != BucketCeiling(HistBuckets-1) {
		t.Error("BucketCeiling does not clamp")
	}
}
