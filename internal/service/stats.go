package service

import (
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/obs"
)

// HistBuckets is the histogram resolution, shared with (and defined by) the
// obs layer: bucket i counts requests with latency in
// [1µs·2^i, 1µs·2^(i+1)), i.e. 1µs up to ~34s, with bucket 0 absorbing
// sub-microsecond requests and the last bucket everything slower. Exported
// so consumers of Stats.LatencyHist (the /stats endpoint, the benches) can
// size against it.
const HistBuckets = obs.HistBuckets

// BucketCeiling returns the inclusive upper edge of histogram bucket i —
// the latency a quantile read from that bucket reports.
func BucketCeiling(i int) time.Duration { return obs.BucketCeiling(i) }

// EntryStats is the per-cache-entry slice of a Stats snapshot: which plan,
// how hot, and how well its executes balanced. Mean/MaxImbalance aggregate
// the measured core.Stats.Imbalance ratio over this entry's executes
// (1.0 = perfect balance; only parallel rounds report one).
type EntryStats struct {
	// Matrix shape and sketch size identifying the entry (from the key).
	M, N, NNZ int
	D         int
	// Plan summarises what the planner decided for this entry (resolved
	// algorithm, blocking, workers, predicted imbalance, plan/convert
	// time).
	Plan core.PlanStats
	// Executes counts completed executes served from this entry; Steals
	// and Busy accumulate over them.
	Executes int64
	Steals   int64
	Busy     time.Duration
	// MeanImbalance / MaxImbalance aggregate the measured per-round load
	// imbalance ratios. 0 when no parallel round has run.
	MeanImbalance float64
	MaxImbalance  float64
}

// Stats is a point-in-time snapshot of the service counters, the latency
// histogram summary, and the per-entry aggregates in MRU→LRU order.
type Stats struct {
	// Cache counters. Hits counts requests that found an entry (including
	// joining an in-progress single-flight build); Misses counts requests
	// that inserted one; Builds counts successful plan constructions —
	// single-flight keeps Builds ≤ Misses under races. BuildErrors counts
	// failed constructions; Evictions counts LRU evictions.
	Hits, Misses, Builds, BuildErrors, Evictions int64
	// Backpressure counters: Rejections is load shed at the full queue,
	// Cancels counts requests that died on context deadline/cancel while
	// queued, waiting on a build, or mid-execute.
	Rejections, Cancels int64
	// Live gauges.
	InFlight, QueueDepth int64
	CachedPlans          int
	// Latency summary over completed (successful) requests, admission
	// queueing included. The P-fields are derived from LatencyHist via
	// LatencyQuantile at snapshot time; other quantiles can be read from
	// the same snapshot without touching the live histogram.
	Requests                                                                int64
	LatencyMean, LatencyP50, LatencyP90, LatencyP95, LatencyP99, LatencyMax time.Duration
	// LatencyHist is the raw log₂ bucket snapshot: bucket i counts
	// requests with latency in [1µs·2^i, 1µs·2^(i+1)) (bucket 0 also
	// absorbs sub-microsecond requests, the last bucket everything
	// slower). The /stats endpoint serves it verbatim.
	LatencyHist [HistBuckets]int64
	// Entries holds the per-cache-entry aggregates, most recently used
	// first.
	Entries []EntryStats
}

// LatencyQuantile returns an upper bound of the q-quantile (0 < q ≤ 1)
// from the snapshot's bucket boundaries: the top edge of the first bucket
// at which the cumulative count reaches q·total. Quantiles beyond the last
// occupied bucket report LatencyMax; an empty snapshot reports 0. This is
// the single home of the bucket math — Stats(), the /stats endpoint and
// the benches all read quantiles through it.
func (st *Stats) LatencyQuantile(q float64) time.Duration {
	var total int64
	for _, c := range st.LatencyHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var cum int64
	for i, c := range st.LatencyHist {
		cum += c
		if cum >= want {
			return BucketCeiling(i)
		}
	}
	return st.LatencyMax
}

// Stats snapshots the service. It is safe to call concurrently with
// requests; counters are read individually, so the snapshot is coherent
// per-field, not globally atomic.
func (s *Service) Stats() Stats {
	m := s.met
	st := Stats{
		Hits:        m.hits.Value(),
		Misses:      m.misses.Value(),
		Builds:      m.builds.Value(),
		BuildErrors: m.buildErrors.Value(),
		Evictions:   m.evictions.Value(),
		Rejections:  m.rejections.Value(),
		Cancels:     m.cancels.Value(),
		InFlight:    m.inFlight.Value(),
		QueueDepth:  m.queueDepth.Value(),
		Requests:    m.latency.Count(),
		LatencyMax:  time.Duration(m.latency.MaxNS()),
	}
	m.latency.Snapshot(&st.LatencyHist)
	st.LatencyP50 = st.LatencyQuantile(0.50)
	st.LatencyP90 = st.LatencyQuantile(0.90)
	st.LatencyP95 = st.LatencyQuantile(0.95)
	st.LatencyP99 = st.LatencyQuantile(0.99)
	if st.Requests > 0 {
		st.LatencyMean = time.Duration(m.latency.SumNS() / st.Requests)
	}
	s.mu.Lock()
	st.CachedPlans = s.lru.Len()
	st.Entries = make([]EntryStats, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		select {
		case <-e.ready:
		default:
			continue // still building; no plan stats yet
		}
		if e.plan == nil {
			continue
		}
		es := EntryStats{
			M: e.key.fp.M, N: e.key.fp.N, NNZ: e.key.fp.NNZ,
			D:    e.key.d,
			Plan: e.plan.Stats(),
		}
		e.mu.Lock()
		es.Executes = e.executes
		es.Steals = e.steals
		es.Busy = e.busy
		es.MaxImbalance = e.imbMax
		if e.imbN > 0 {
			es.MeanImbalance = e.imbSum / float64(e.imbN)
		}
		e.mu.Unlock()
		st.Entries = append(st.Entries, es)
	}
	s.mu.Unlock()
	return st
}
