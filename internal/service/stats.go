package service

import (
	"math/bits"
	"sync/atomic"
	"time"

	"sketchsp/internal/core"
)

// latencyBuckets is the histogram resolution: bucket i counts requests with
// latency in [1µs·2^i, 1µs·2^(i+1)), i.e. 1µs up to ~34s, with bucket 0
// absorbing sub-microsecond requests and the last bucket everything slower.
const latencyBuckets = 26

// latencyHist is a lock-free log₂ latency histogram. observe is on the
// request hot path and must not allocate.
type latencyHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [latencyBuckets]atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	i := bits.Len64(uint64(ns / 1000)) // 0 for <1µs, 1 for [1µs,2µs), ...
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	h.buckets[i].Add(1)
}

// quantile returns an upper bound of the q-quantile (0 < q ≤ 1) from the
// bucket boundaries: the top edge of the first bucket at which the
// cumulative count reaches q·total. Zero when empty.
func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i := 0; i < latencyBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= want {
			return time.Duration(1000 << uint(i)) // 1µs·2^i
		}
	}
	return time.Duration(h.maxNS.Load())
}

// EntryStats is the per-cache-entry slice of a Stats snapshot: which plan,
// how hot, and how well its executes balanced. Mean/MaxImbalance aggregate
// the measured core.Stats.Imbalance ratio over this entry's executes
// (1.0 = perfect balance; only parallel rounds report one).
type EntryStats struct {
	// Matrix shape and sketch size identifying the entry (from the key).
	M, N, NNZ int
	D         int
	// Plan summarises what the planner decided for this entry (resolved
	// algorithm, blocking, workers, predicted imbalance, plan/convert
	// time).
	Plan core.PlanStats
	// Executes counts completed executes served from this entry; Steals
	// and Busy accumulate over them.
	Executes int64
	Steals   int64
	Busy     time.Duration
	// MeanImbalance / MaxImbalance aggregate the measured per-round load
	// imbalance ratios. 0 when no parallel round has run.
	MeanImbalance float64
	MaxImbalance  float64
}

// Stats is a point-in-time snapshot of the service counters, the latency
// histogram summary, and the per-entry aggregates in MRU→LRU order.
type Stats struct {
	// Cache counters. Hits counts requests that found an entry (including
	// joining an in-progress single-flight build); Misses counts requests
	// that inserted one; Builds counts successful plan constructions —
	// single-flight keeps Builds ≤ Misses under races. BuildErrors counts
	// failed constructions; Evictions counts LRU evictions.
	Hits, Misses, Builds, BuildErrors, Evictions int64
	// Backpressure counters: Rejections is load shed at the full queue,
	// Cancels counts requests that died on context deadline/cancel while
	// queued, waiting on a build, or mid-execute.
	Rejections, Cancels int64
	// Live gauges.
	InFlight, QueueDepth int64
	CachedPlans          int
	// Latency summary over completed (successful) requests, admission
	// queueing included.
	Requests                                                    int64
	LatencyMean, LatencyP50, LatencyP95, LatencyP99, LatencyMax time.Duration
	// Entries holds the per-cache-entry aggregates, most recently used
	// first.
	Entries []EntryStats
}

// Stats snapshots the service. It is safe to call concurrently with
// requests; counters are read individually, so the snapshot is coherent
// per-field, not globally atomic.
func (s *Service) Stats() Stats {
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Builds:      s.builds.Load(),
		BuildErrors: s.buildErrors.Load(),
		Evictions:   s.evictions.Load(),
		Rejections:  s.rejections.Load(),
		Cancels:     s.cancels.Load(),
		InFlight:    s.inFlight.Load(),
		QueueDepth:  s.queueDepth.Load(),
		Requests:    s.hist.count.Load(),
		LatencyP50:  s.hist.quantile(0.50),
		LatencyP95:  s.hist.quantile(0.95),
		LatencyP99:  s.hist.quantile(0.99),
		LatencyMax:  time.Duration(s.hist.maxNS.Load()),
	}
	if st.Requests > 0 {
		st.LatencyMean = time.Duration(s.hist.sumNS.Load() / st.Requests)
	}
	s.mu.Lock()
	st.CachedPlans = s.lru.Len()
	st.Entries = make([]EntryStats, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		select {
		case <-e.ready:
		default:
			continue // still building; no plan stats yet
		}
		if e.plan == nil {
			continue
		}
		es := EntryStats{
			M: e.key.fp.M, N: e.key.fp.N, NNZ: e.key.fp.NNZ,
			D:    e.key.d,
			Plan: e.plan.Stats(),
		}
		e.mu.Lock()
		es.Executes = e.executes
		es.Steals = e.steals
		es.Busy = e.busy
		es.MaxImbalance = e.imbMax
		if e.imbN > 0 {
			es.MeanImbalance = e.imbSum / float64(e.imbN)
		}
		e.mu.Unlock()
		st.Entries = append(st.Entries, es)
	}
	s.mu.Unlock()
	return st
}
