package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// These tests are the -race suite: N goroutines hammering the service with
// overlapping matrices, evictions forced mid-flight, and context
// cancellations. CI runs them with -race -count=2 (see Makefile `race` and
// .github/workflows/ci.yml).

// TestSingleFlightConcurrentMiss releases a herd of goroutines at one cold
// key simultaneously and asserts the single-flight invariant: exactly one
// plan is built, everyone else joins the flight and hits.
func TestSingleFlightConcurrentMiss(t *testing.T) {
	const goroutines = 32
	svc := New(Config{Capacity: 8, MaxInFlight: goroutines})
	defer svc.Close()
	a := sparse.RandomUniform(600, 60, 0.04, 3)
	d := 90
	opts := core.Options{Seed: 5, Workers: 2}

	sk, _ := core.NewSketcher(d, opts)
	want, _ := sk.Sketch(a)

	start := make(chan struct{})
	var wg sync.WaitGroup
	outs := make([]*dense.Matrix, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			outs[g] = dense.NewMatrix(d, a.N)
			_, errs[g] = svc.SketchInto(context.Background(), outs[g], a, d, opts)
		}(g)
	}
	close(start)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		assertBitIdentical(t, "herd", want, outs[g])
	}
	st := svc.Stats()
	if st.Builds != 1 {
		t.Fatalf("single-flight violated: %d plans built for one key", st.Builds)
	}
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("want 1 miss / %d hits, got %d / %d", goroutines-1, st.Misses, st.Hits)
	}
}

// TestConcurrentEvictionHammer drives 12 goroutines over 6 matrices through
// a 2-entry cache: every request forces churn, entries are evicted while
// sibling requests still execute on their plans, and every result must stay
// bit-identical to its reference. Refcounting is what makes this safe; a
// use-after-Close here fails loudly (ErrPlanClosed or a race report).
func TestConcurrentEvictionHammer(t *testing.T) {
	const (
		goroutines = 12
		iters      = 30
		nMatrices  = 6
	)
	svc := New(Config{Capacity: 2, MaxInFlight: 8})
	defer svc.Close()

	mats := make([]*sparse.CSC, nMatrices)
	wants := make([]*dense.Matrix, nMatrices)
	ds := make([]int, nMatrices)
	opts := core.Options{Seed: 9, Workers: 2}
	for i := range mats {
		mats[i] = sparse.RandomUniform(300+40*i, 30+5*i, 0.05, int64(i+1))
		ds[i] = 2 * mats[i].N
		sk, _ := core.NewSketcher(ds[i], opts)
		wants[i], _ = sk.Sketch(mats[i])
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < iters; it++ {
				i := r.Intn(nMatrices)
				out := dense.NewMatrix(ds[i], mats[i].N)
				if _, err := svc.SketchInto(context.Background(), out, mats[i], ds[i], opts); err != nil {
					errCh <- err
					return
				}
				for j := 0; j < out.Cols; j++ {
					wc, gc := wants[i].Col(j), out.Col(j)
					for k := range wc {
						if wc[k] != gc[k] {
							errCh <- errors.New("bit mismatch under eviction churn")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Evictions == 0 {
		t.Fatal("hammer forced no evictions — capacity not stressing the cache")
	}
	if st.CachedPlans > 2 {
		t.Fatalf("cache over capacity: %d plans resident", st.CachedPlans)
	}
	t.Logf("hammer: %d hits / %d misses / %d builds / %d evictions",
		st.Hits, st.Misses, st.Builds, st.Evictions)
}

// TestRequestCancellation covers the cancellation points: dead on arrival,
// cancelled while executing (propagates into the worker pool), and
// cancelled while queued at the admission gate.
func TestRequestCancellation(t *testing.T) {
	svc := New(Config{Capacity: 4, MaxInFlight: 1})
	defer svc.Close()
	big := sparse.RandomUniform(30000, 300, 0.01, 4)
	dBig := 450
	opts := core.Options{Seed: 2, Workers: 2, BlockD: 64}
	ctxBg := context.Background()

	dead, cancel := context.WithCancel(ctxBg)
	cancel()
	if _, _, err := svc.Sketch(dead, big, dBig, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead ctx: err = %v", err)
	}

	// Mid-execute: cancel shortly after the round starts.
	ctx2, cancel2 := context.WithCancel(ctxBg)
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel2()
	}()
	if _, _, err := svc.Sketch(ctx2, big, dBig, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-execute cancel: err = %v", err)
	}

	// Queued at the gate: occupy the single slot with a long execute, then
	// cancel a second request stuck in the admission queue.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		if _, _, err := svc.Sketch(ctxBg, big, dBig, opts); err != nil {
			t.Errorf("slot holder failed: %v", err)
		}
	}()
	waitFor(t, func() bool { return svc.Stats().InFlight == 1 })
	ctx3, cancel3 := context.WithTimeout(ctxBg, 2*time.Millisecond)
	defer cancel3()
	if _, _, err := svc.Sketch(ctx3, big, dBig, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued deadline: err = %v", err)
	}
	<-hold

	if c := svc.Stats().Cancels; c < 3 {
		t.Fatalf("cancel counter %d, want ≥ 3", c)
	}
	// The service must still serve normally after all that.
	small := sparse.RandomUniform(200, 20, 0.1, 5)
	if _, _, err := svc.Sketch(ctxBg, small, 30, opts); err != nil {
		t.Fatalf("post-cancellation request: %v", err)
	}
}

// TestOverloadShedding fills the single in-flight slot and the one queue
// slot, then asserts the next request is shed fast with ErrOverloaded.
func TestOverloadShedding(t *testing.T) {
	svc := New(Config{Capacity: 4, MaxInFlight: 1, MaxQueue: 1})
	defer svc.Close()
	big := sparse.RandomUniform(40000, 300, 0.01, 6)
	dBig := 450
	opts := core.Options{Seed: 8, Workers: 2, BlockD: 64}
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // occupies the slot
		defer wg.Done()
		if _, _, err := svc.Sketch(ctx, big, dBig, opts); err != nil {
			t.Errorf("slot holder: %v", err)
		}
	}()
	waitFor(t, func() bool { return svc.Stats().InFlight == 1 })
	go func() { // occupies the queue
		defer wg.Done()
		if _, _, err := svc.Sketch(ctx, big, dBig, opts); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	waitFor(t, func() bool { return svc.Stats().QueueDepth == 1 })

	if _, _, err := svc.Sketch(ctx, big, dBig, opts); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload: err = %v, want ErrOverloaded", err)
	}
	if svc.Stats().Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", svc.Stats().Rejections)
	}
	wg.Wait()
}

// TestCloseWithInFlight closes the service while requests are mid-air: no
// deadlock, no use-after-Close; every request either succeeds or reports
// ErrClosed, and the service stays terminally closed.
func TestCloseWithInFlight(t *testing.T) {
	svc := New(Config{Capacity: 2, MaxInFlight: 4})
	a := sparse.RandomUniform(5000, 150, 0.02, 7)
	d := 225
	opts := core.Options{Seed: 4, Workers: 2}
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				_, _, err := svc.Sketch(ctx, a, d, opts)
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("goroutine %d: unexpected error %v", g, err)
					return
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	svc.Close()
	svc.Close() // idempotent
	wg.Wait()

	if _, _, err := svc.Sketch(ctx, a, d, opts); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close request: err = %v, want ErrClosed", err)
	}
}

// waitFor polls cond with a hard deadline — the anti-deadlock guard for the
// gating tests.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s (deadlock?)")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
