package service

import (
	"sketchsp/internal/core"
	"sketchsp/internal/obs"
)

// svcMetrics is the service's metric set, registered once per Service on
// its obs.Registry. These handles are the *single* home of the counters —
// Stats() reads the same atomics /metrics scrapes, which is what makes the
// two endpoints incapable of disagreeing (TestStatsMetricsReconcile and the
// server e2e suite pin this).
type svcMetrics struct {
	hits        *obs.Counter
	misses      *obs.Counter
	builds      *obs.Counter
	buildErrors *obs.Counter
	evictions   *obs.Counter
	rejections  *obs.Counter
	cancels     *obs.Counter
	inFlight    *obs.Gauge
	queueDepth  *obs.Gauge
	latency     *obs.Histogram // full request latency, admission included
	queueWait   *obs.Histogram // admission-queue stage (contended path only)
	plan        *core.PlanMetrics
}

// newSvcMetrics registers the service metric families on r. Names follow
// the stack-wide scheme (DESIGN.md §9): sketchsp_service_* for this layer,
// sketchsp_plan_* for the execute stage shared by every cached plan.
func newSvcMetrics(r *obs.Registry) *svcMetrics {
	return &svcMetrics{
		hits: r.Counter("sketchsp_service_cache_hits_total",
			"Requests that found a cached plan (including single-flight joins)."),
		misses: r.Counter("sketchsp_service_cache_misses_total",
			"Requests that inserted a new plan cache entry."),
		builds: r.Counter("sketchsp_service_plan_builds_total",
			"Successful plan constructions (single-flight keeps builds <= misses)."),
		buildErrors: r.Counter("sketchsp_service_plan_build_errors_total",
			"Failed plan constructions."),
		evictions: r.Counter("sketchsp_service_cache_evictions_total",
			"Plans evicted from the LRU cache."),
		rejections: r.Counter("sketchsp_service_shed_total",
			"Requests shed at the full admission queue (ErrOverloaded)."),
		cancels: r.Counter("sketchsp_service_canceled_total",
			"Requests that died on context deadline/cancel while queued, building, or executing."),
		inFlight: r.Gauge("sketchsp_service_in_flight",
			"Requests currently holding an admission slot."),
		queueDepth: r.Gauge("sketchsp_service_queue_depth",
			"Requests waiting for an admission slot."),
		latency: r.Histogram("sketchsp_service_request_seconds",
			"Completed request latency, admission queueing included."),
		queueWait: r.Histogram("sketchsp_service_queue_wait_seconds",
			"Admission-queue wait of requests that found no free slot."),
		plan: core.NewPlanMetrics(r),
	}
}
